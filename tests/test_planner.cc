// Golden tests for the planner: PlanJoin must pick the paper-expected
// algorithm in each operating regime (Sections 4.6 and 5.3.4), the
// physical-plan description must price the same operator tree the executor
// runs, and the cartesian-size arithmetic must saturate instead of wrapping
// (uint64 overflow steered the old planner to nonsense picks).

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "analysis/chapter4_costs.h"
#include "analysis/chapter5_costs.h"
#include "core/algorithm.h"
#include "core/planner.h"

namespace ppj {
namespace {

// ---------------------------------------------------------------------------
// Regime goldens: one operating point per algorithm, each verified against
// the closed-form costs before freezing.
// ---------------------------------------------------------------------------

struct Regime {
  const char* label;
  core::PlannerInput input;
  core::Algorithm expected;
};

core::PlannerInput Input(std::uint64_t a, std::uint64_t b, std::uint64_t n,
                         std::uint64_t s, std::uint64_t m, bool equality,
                         bool exact, double epsilon) {
  core::PlannerInput in;
  in.size_a = a;
  in.size_b = b;
  in.n = n;
  in.s = s;
  in.m = m;
  in.equality_predicate = equality;
  in.exact_output_required = exact;
  in.epsilon = epsilon;
  return in;
}

class PlannerRegimeTest : public ::testing::TestWithParam<Regime> {};

TEST_P(PlannerRegimeTest, PicksPaperExpectedAlgorithm) {
  const Regime& regime = GetParam();
  const core::Plan plan = core::PlanJoin(regime.input);
  EXPECT_EQ(plan.algorithm, regime.expected)
      << "picked " << core::ToString(plan.algorithm) << ": "
      << plan.rationale;
  EXPECT_TRUE(std::isfinite(plan.predicted_transfers));
  EXPECT_GT(plan.predicted_transfers, 0.0);
  EXPECT_FALSE(plan.rationale.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, PlannerRegimeTest,
    ::testing::Values(
        // M >= S: one screening pass records every result; Algorithm 5
        // degenerates to the L + S floor and wins.
        Regime{"memory_covers_result",
               Input(100, 100, 0, 50, 64, false, true, 0.0),
               core::Algorithm::kAlgorithm5},
        // Tiny memory with S << L: Algorithm 5's ceil(S/M) repeated scans
        // explode; Algorithm 4 pays 2L + the windowed filter instead
        // (Section 5.3.4's small-M corner).
        Regime{"tiny_memory_small_result",
               Input(800, 800, 0, 6400, 1, false, true, 0.0),
               core::Algorithm::kAlgorithm4},
        // The paper's Table 5.2 setting (L = 640000, S = 6400, M = 64)
        // with privacy slack: Algorithm 6 undercuts both 4 and 5.
        Regime{"paper_setting_epsilon",
               Input(800, 800, 0, 6400, 64, false, true, 0.01),
               core::Algorithm::kAlgorithm6},
        // N fits in memory (gamma = 1): Algorithm 2 dominates Chapter 4
        // (Section 4.6.1) and the worst-case S keeps Chapter 5 honest.
        Regime{"gamma_one",
               Input(4096, 4096, 8, 4096, 64, false, false, 0.0),
               core::Algorithm::kAlgorithm2},
        // Equijoin with gamma >> 1: Algorithm 3's sorted-B circular
        // scratch wins (Section 4.6.3).
        Regime{"equijoin_high_gamma",
               Input(4096, 4096, 1024, 2097152, 64, true, false, 0.0),
               core::Algorithm::kAlgorithm3},
        // M = 1 with moderate N and a large |B|: Algorithm 1's rolling
        // scratch sorts 2N-sized runs, cheaper than the variant's
        // |B|-sized sorts and Algorithm 2's N passes (Section 4.6.2).
        Regime{"tiny_memory_moderate_n",
               Input(512, 8192, 256, 2097152, 1, false, false, 0.0),
               core::Algorithm::kAlgorithm1},
        // M = 1 with N large relative to log2(|B|)^2: the variant's one
        // full-size sort per A tuple beats the rolling scratch
        // (Section 4.4.2).
        Regime{"tiny_memory_large_n",
               Input(4096, 4096, 1024, 2097152, 1, false, false, 0.0),
               core::Algorithm::kAlgorithm1Variant}),
    [](const ::testing::TestParamInfo<Regime>& pinfo) {
      return pinfo.param.label;
    });

TEST(PlannerTest, ExactOutputNeverPicksChapter4) {
  for (std::uint64_t n : {1u, 16u, 1024u}) {
    for (std::uint64_t m : {1u, 64u}) {
      core::PlannerInput input = Input(512, 512, n, 0, m, true, true, 1e-9);
      const core::Plan plan = core::PlanJoin(input);
      EXPECT_EQ(core::GetAlgorithmInfo(plan.algorithm).chapter, 5)
          << core::ToString(plan.algorithm);
    }
  }
}

TEST(PlannerTest, EqualityGateKeepsAlgorithm3Out) {
  core::PlannerInput input =
      Input(4096, 4096, 1024, 2097152, 64, true, false, 0.0);
  ASSERT_EQ(core::PlanJoin(input).algorithm, core::Algorithm::kAlgorithm3);
  input.equality_predicate = false;
  EXPECT_NE(core::PlanJoin(input).algorithm, core::Algorithm::kAlgorithm3);
}

// ---------------------------------------------------------------------------
// Satellite: saturating cartesian-size arithmetic.
// ---------------------------------------------------------------------------

TEST(PlannerTest, HugeInputsSaturateInsteadOfWrapping) {
  // 2^33 x 2^33 = 2^66 overflows uint64; the saturated planner must keep
  // the cost astronomically large instead of wrapping to ~0 and treating
  // the join as free.
  core::PlannerInput input;
  input.size_a = 1ull << 33;
  input.size_b = 1ull << 33;
  input.m = 64;
  const core::Plan plan = core::PlanJoin(input);
  EXPECT_TRUE(std::isfinite(plan.predicted_transfers));
  EXPECT_GT(plan.predicted_transfers, 1e18);
}

TEST(PlannerTest, OverflowPreservesCostMonotonicity) {
  // Growing the workload must never make the predicted cost shrink —
  // exactly what the pre-saturation wraparound violated.
  core::PlannerInput small_in;
  small_in.size_a = 1ull << 20;
  small_in.size_b = 1ull << 20;
  small_in.m = 64;
  core::PlannerInput huge = small_in;
  huge.size_a = 1ull << 40;
  huge.size_b = 1ull << 40;
  EXPECT_GE(core::PlanJoin(huge).predicted_transfers,
            core::PlanJoin(small_in).predicted_transfers);
}

TEST(PlannerTest, EmptyRelationDoesNotDivideByZero) {
  core::PlannerInput input;
  input.size_a = 0;
  input.size_b = 100;
  input.s = 10;
  input.m = 4;
  const core::Plan plan = core::PlanJoin(input);  // must not crash
  EXPECT_TRUE(std::isfinite(plan.predicted_transfers));
}

// ---------------------------------------------------------------------------
// DescribeAlgorithm: the priced operator tree.
// ---------------------------------------------------------------------------

double SumChildren(const core::PlannedOp& op) {
  double total = 0;
  for (const core::PlannedOp& child : op.children) {
    total += child.predicted_transfers;
  }
  return total;
}

TEST(PlannedOpTest, EveryAlgorithmYieldsAConsistentTree) {
  const core::PlannerInput input = Input(64, 64, 4, 128, 8, true, false, 1e-6);
  for (const core::AlgorithmInfo& info : core::AlgorithmRegistry()) {
    const core::PlannedOp root =
        core::DescribeAlgorithm(info.algorithm, input);
    EXPECT_EQ(root.name, info.root_span);
    ASSERT_FALSE(root.children.empty()) << info.name;
    // The root totals its children, and each interior node totals its own.
    EXPECT_DOUBLE_EQ(root.predicted_transfers, SumChildren(root))
        << info.name;
    for (const core::PlannedOp& op : root.children) {
      EXPECT_FALSE(op.name.empty());
      EXPECT_FALSE(op.formula.empty());
      EXPECT_GE(op.predicted_transfers, 0.0) << info.name << "/" << op.name;
      if (!op.children.empty()) {
        EXPECT_DOUBLE_EQ(op.predicted_transfers, SumChildren(op))
            << info.name << "/" << op.name;
      }
    }
  }
}

TEST(PlannedOpTest, TreeTotalsMatchClosedFormCosts) {
  const core::PlannerInput input = Input(64, 64, 4, 128, 8, true, false, 1e-6);
  const double a = 64, b = 64, n = 4;
  const std::uint64_t l = 64 * 64, s = 128, m = 8;
  struct Expect {
    core::Algorithm alg;
    double cost;
  } cases[] = {
      {core::Algorithm::kAlgorithm1, analysis::CostAlgorithm1(a, b, n)},
      {core::Algorithm::kAlgorithm1Variant,
       analysis::CostAlgorithm1Variant(a, b)},
      {core::Algorithm::kAlgorithm2,
       analysis::CostAlgorithm2(a, b, n, static_cast<double>(m))},
      {core::Algorithm::kAlgorithm3, analysis::CostAlgorithm3(a, b, n)},
      {core::Algorithm::kAlgorithm4, analysis::CostAlgorithm4(l, s)},
      {core::Algorithm::kAlgorithm5, analysis::CostAlgorithm5(l, s, m)},
      {core::Algorithm::kAlgorithm6,
       analysis::CostAlgorithm6(l, s, m, input.epsilon).total},
  };
  for (const Expect& c : cases) {
    const core::PlannedOp root = core::DescribeAlgorithm(c.alg, input);
    // N is known in `input`, so no preprocessing charge: the tree total is
    // the closed-form cost (up to floating-point association).
    EXPECT_NEAR(root.predicted_transfers, c.cost, 1e-9 * c.cost)
        << core::ToString(c.alg);
  }
}

TEST(PlannedOpTest, Algorithm6ResidualStaysNonNegativeInAllRegimes) {
  // The epsilon-partition term is the closed form's residual; it must not
  // go negative in any of CostAlgorithm6's three regimes.
  const core::PlannerInput cases[] = {
      Input(100, 100, 0, 50, 64, false, true, 1e-6),    // M >= S
      Input(800, 800, 0, 6400, 64, false, true, 0.0),   // epsilon = 0
      Input(800, 800, 0, 6400, 64, false, true, 1e-6),  // general
  };
  for (const core::PlannerInput& input : cases) {
    const core::PlannedOp root =
        core::DescribeAlgorithm(core::Algorithm::kAlgorithm6, input);
    for (const core::PlannedOp& op : root.children) {
      EXPECT_GE(op.predicted_transfers, -1e-9) << op.name;
    }
  }
}

TEST(PlannedOpTest, PlanJoinAttachesTheWinningTree) {
  const core::PlannerInput input =
      Input(800, 800, 0, 6400, 64, false, true, 0.01);
  const core::Plan plan = core::PlanJoin(input);
  ASSERT_EQ(plan.algorithm, core::Algorithm::kAlgorithm6);
  EXPECT_EQ(plan.root.name,
            core::GetAlgorithmInfo(plan.algorithm).root_span);
  EXPECT_NEAR(plan.root.predicted_transfers, plan.predicted_transfers,
              1e-9 * plan.predicted_transfers);
  // The operator names are the executor's span names.
  ASSERT_EQ(plan.root.children.size(), 5u);
  EXPECT_EQ(plan.root.children[0].name, "screen");
  EXPECT_EQ(plan.root.children[1].name, "epsilon-partition");
  EXPECT_EQ(plan.root.children[2].name, "salvage");
  EXPECT_EQ(plan.root.children[3].name, "filter");
  EXPECT_EQ(plan.root.children[4].name, "output");
}

// ---------------------------------------------------------------------------
// Chapter 4 term decomposition.
// ---------------------------------------------------------------------------

TEST(Ch4TermsTest, TermsSumToTheClosedFormTotals) {
  const double a = 96, b = 128, n = 7, m = 16;
  EXPECT_NEAR(analysis::TermsAlgorithm1(a, b, n).Total(),
              analysis::CostAlgorithm1(a, b, n), 1e-6);
  EXPECT_NEAR(analysis::TermsAlgorithm1Variant(a, b).Total(),
              analysis::CostAlgorithm1Variant(a, b), 1e-6);
  EXPECT_NEAR(analysis::TermsAlgorithm2(a, b, n, m).Total(),
              analysis::CostAlgorithm2(a, b, n, m), 1e-6);
  EXPECT_NEAR(analysis::TermsAlgorithm3(a, b, n).Total(),
              analysis::CostAlgorithm3(a, b, n), 1e-6);
  EXPECT_NEAR(analysis::TermsAlgorithm3(a, b, n, true).Total(),
              analysis::CostAlgorithm3(a, b, n, true), 1e-6);
  EXPECT_EQ(analysis::TermsAlgorithm3(a, b, n, true).sort, 0.0);
}

}  // namespace
}  // namespace ppj
