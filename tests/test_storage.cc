// Tests for the pluggable host storage: the file and mmap backends must be
// indistinguishable from the in-memory one — identical slot contents,
// identical traces, identical results — including running a complete
// privacy preserving join against regions that live on disk.

#include <cstring>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/algorithm5.h"
#include "core/join_result.h"
#include "crypto/key.h"
#include "relation/generator.h"
#include "sim/host_store.h"
#include "sim/storage_backend.h"

namespace ppj::sim {
namespace {

std::string TempDir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("ppj-storage-" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

std::unique_ptr<StorageBackend> MakeBackendKind(const std::string& kind,
                                                const std::string& tag) {
  if (kind == "mem") return MakeInMemoryBackend();
  auto backend = kind == "file" ? MakeFileBackend(TempDir(tag))
                                : MakeMmapBackend(TempDir(tag));
  EXPECT_TRUE(backend.ok()) << backend.status();
  return backend.ok() ? std::move(*backend) : nullptr;
}

class StorageBackendTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<HostStore> MakeHost(const char* tag) {
    return std::make_unique<HostStore>(
        MakeBackendKind(GetParam(), std::string(tag) + "-" + GetParam()));
  }
};

TEST_P(StorageBackendTest, SlotRoundTrip) {
  auto host = MakeHost("roundtrip");
  const RegionId r = host->CreateRegion("r", 16, 8);
  std::vector<std::uint8_t> slot(16);
  for (int i = 0; i < 16; ++i) slot[i] = static_cast<std::uint8_t>(i * 3);
  ASSERT_TRUE(host->WriteSlot(r, 5, slot).ok());
  EXPECT_EQ(*host->ReadSlot(r, 5), slot);
  // Untouched slots read back zeroed.
  EXPECT_EQ(*host->ReadSlot(r, 0), std::vector<std::uint8_t>(16, 0));
}

TEST_P(StorageBackendTest, ResizePreservesData) {
  auto host = MakeHost("resize");
  const RegionId r = host->CreateRegion("r", 8, 2);
  ASSERT_TRUE(host->WriteSlot(r, 1, {1, 2, 3, 4, 5, 6, 7, 8}).ok());
  ASSERT_TRUE(host->ResizeRegion(r, 6).ok());
  EXPECT_EQ(host->RegionSlots(r), 6u);
  EXPECT_EQ(*host->ReadSlot(r, 1),
            (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  ASSERT_TRUE(host->WriteSlot(r, 5, std::vector<std::uint8_t>(8, 9)).ok());
  EXPECT_EQ((*host->ReadSlot(r, 5))[0], 9);
}

TEST_P(StorageBackendTest, CorruptSlotFlipsBit) {
  auto host = MakeHost("corrupt");
  const RegionId r = host->CreateRegion("r", 4, 1);
  ASSERT_TRUE(host->WriteSlot(r, 0, {0, 0, 0, 0}).ok());
  ASSERT_TRUE(host->CorruptSlot(r, 0, 12).ok());
  EXPECT_EQ((*host->ReadSlot(r, 0))[1], 0x10);
}

TEST_P(StorageBackendTest, MultipleRegionsAreIndependent) {
  auto host = MakeHost("multi");
  const RegionId r1 = host->CreateRegion("a", 4, 2);
  const RegionId r2 = host->CreateRegion("b", 4, 2);
  ASSERT_TRUE(host->WriteSlot(r1, 0, {1, 1, 1, 1}).ok());
  ASSERT_TRUE(host->WriteSlot(r2, 0, {2, 2, 2, 2}).ok());
  EXPECT_EQ((*host->ReadSlot(r1, 0))[0], 1);
  EXPECT_EQ((*host->ReadSlot(r2, 0))[0], 2);
  EXPECT_EQ(host->region_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StorageBackendTest, ::testing::Values("mem", "file", "mmap"),
    [](const ::testing::TestParamInfo<std::string>& pinfo) {
      if (pinfo.param == "mem") return std::string("InMemory");
      if (pinfo.param == "file") return std::string("FileBacked");
      return std::string("MmapBacked");
    });

// ---- Borrowed-view contract ----------------------------------------------

TEST(ReadViewTest, MemAndMmapLendLiveViews) {
  for (const std::string kind : {"mem", "mmap"}) {
    HostStore host(MakeBackendKind(kind, "view-" + kind));
    const RegionId r = host.CreateRegion("r", 8, 6);
    for (std::uint64_t i = 0; i < 6; ++i) {
      ASSERT_TRUE(
          host.WriteSlot(r, i,
                         std::vector<std::uint8_t>(
                             8, static_cast<std::uint8_t>(i + 1)))
              .ok());
    }
    auto view = host.ReadView(r, 1, 3);
    ASSERT_TRUE(view.ok()) << kind << ": " << view.status();
    ASSERT_EQ(view->size(), 3u * 8u);
    EXPECT_EQ((*view)[0], 2) << kind;
    EXPECT_EQ((*view)[2 * 8], 4) << kind;
    // The view is a live window, not a snapshot: writes to the covered
    // slots are visible through it.
    ASSERT_TRUE(
        host.WriteSlot(r, 2, std::vector<std::uint8_t>(8, 0xEE)).ok());
    EXPECT_EQ((*view)[8], 0xEE) << kind;
  }
}

TEST(ReadViewTest, FileBackendFallsBackWithUnimplemented) {
  HostStore host(MakeBackendKind("file", "view-file"));
  const RegionId r = host.CreateRegion("r", 8, 4);
  auto view = host.ReadView(r, 0, 2);
  ASSERT_FALSE(view.ok());
  // Exactly kUnimplemented: that is the signal callers use to fall back to
  // the copying ReadRange path (any other code must propagate).
  EXPECT_EQ(view.status().code(), StatusCode::kUnimplemented);
}

TEST(ReadViewTest, OutOfRangeIsRejected) {
  HostStore host(MakeBackendKind("mmap", "view-range"));
  const RegionId r = host.CreateRegion("r", 8, 4);
  EXPECT_EQ(host.ReadView(r, 3, 2).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(host.ReadView(r + 1, 0, 1).status().code(),
            StatusCode::kNotFound);
}

// ---- Mmap-specific behaviour ----------------------------------------------

TEST(MmapBackendTest, RemapGrowAndShrinkPreservePrefix) {
  HostStore host(MakeBackendKind("mmap", "remap"));
  // 512-byte slots: growing from 8 to 64 slots crosses page boundaries, so
  // the resize is a real munmap + ftruncate + mmap cycle.
  const RegionId r = host.CreateRegion("r", 512, 8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        host.WriteSlot(r, i,
                       std::vector<std::uint8_t>(
                           512, static_cast<std::uint8_t>(0x40 + i)))
            .ok());
  }
  ASSERT_TRUE(host.ResizeRegion(r, 64).ok());
  EXPECT_EQ(host.RegionSlots(r), 64u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ((*host.ReadSlot(r, i))[511],
              static_cast<std::uint8_t>(0x40 + i));
  }
  EXPECT_EQ(*host.ReadSlot(r, 63), std::vector<std::uint8_t>(512, 0));
  ASSERT_TRUE(host.WriteSlot(r, 63,
                             std::vector<std::uint8_t>(512, 0x77))
                  .ok());
  // Shrink below the original size; the retained prefix survives the remap.
  ASSERT_TRUE(host.ResizeRegion(r, 3).ok());
  EXPECT_EQ(host.RegionSlots(r), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*host.ReadSlot(r, i))[0], static_cast<std::uint8_t>(0x40 + i));
  }
  // Views acquired after the resize see the post-remap mapping.
  auto view = host.ReadView(r, 0, 3);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)[0], 0x40);
}

TEST(MmapBackendTest, SyncRegionPersistsThroughFileReopen) {
  const std::string dir = TempDir("msync");
  {
    auto backend = MakeMmapBackend(dir);
    ASSERT_TRUE(backend.ok());
    HostStore host(std::move(*backend));
    const RegionId r = host.CreateRegion("r", 16, 4);
    ASSERT_TRUE(
        host.WriteSlot(r, 2, std::vector<std::uint8_t>(16, 0xAB)).ok());
    ASSERT_TRUE(host.SyncRegion(r).ok());
  }
  // Same region-<id>.bin layout: a file backend pointed at the directory
  // reads what the mmap backend wrote.
  auto reopened = MakeFileBackend(dir);
  ASSERT_TRUE(reopened.ok());
  std::vector<std::uint8_t> slot(16);
  ASSERT_TRUE((*reopened)->ReadSlotInto(0, 16, 2, slot.data()).ok());
  EXPECT_EQ(slot, std::vector<std::uint8_t>(16, 0xAB));
}

TEST(MmapBackendTest, RejectsUnwritableDirectory) {
  auto backend = MakeMmapBackend("/proc/definitely/not/writable");
  EXPECT_FALSE(backend.ok());
}

// ---- Backend parity: same ops, bit-identical world ------------------------

struct ParityOutcome {
  TraceFingerprint trace;
  TraceFingerprint timing;
  std::uint64_t transfers = 0;
  std::uint64_t borrowed_views = 0;
  std::vector<relation::Tuple> tuples;
  std::vector<std::uint8_t> output_bytes;  // sealed output region, verbatim
};

/// Runs the identical Algorithm 5 join (same workload, same keys, same
/// coprocessor seed) against the given backend and captures every surface
/// an adversary or a consumer could compare.
ParityOutcome RunParityJoin(const std::string& kind) {
  ParityOutcome out;
  HostStore host(MakeBackendKind(kind, "parity-" + kind));
  Coprocessor copro(&host, {.memory_tuples = 4, .seed = 9});

  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 8;
  spec.result_size = 11;
  spec.seed = 3;
  auto workload = relation::MakeCellWorkload(spec);
  EXPECT_TRUE(workload.ok());
  const crypto::Ocb key_a(crypto::DeriveKey(1, "A"));
  const crypto::Ocb key_b(crypto::DeriveKey(2, "B"));
  const crypto::Ocb key_out(crypto::DeriveKey(3, "C"));
  auto a = relation::EncryptedRelation::Seal(&host, *workload->a, &key_a);
  auto b = relation::EncryptedRelation::Seal(&host, *workload->b, &key_b);
  EXPECT_TRUE(a.ok() && b.ok());

  const relation::PairAsMultiway multiway(workload->predicate.get());
  core::MultiwayJoin join{{&*a, &*b}, &multiway, &key_out};
  auto outcome = core::RunAlgorithm5(copro, join);
  EXPECT_TRUE(outcome.ok()) << kind << ": " << outcome.status();
  if (!outcome.ok()) return out;

  out.trace = copro.trace().fingerprint();
  out.timing = copro.timing_fingerprint();
  out.transfers = copro.metrics().TupleTransfers();
  out.borrowed_views = copro.borrowed_view_ranges();

  const relation::Schema result_schema = relation::Schema::Concat(
      workload->a->schema(), workload->b->schema());
  auto decoded =
      core::DecodeJoinOutput(host, outcome->output_region,
                             outcome->result_size, key_out, &result_schema);
  EXPECT_TRUE(decoded.ok()) << kind;
  if (decoded.ok()) out.tuples = std::move(*decoded);

  // The sealed output region byte for byte: slot contents, not just
  // decrypted values, must be backend-independent.
  const std::size_t slot_size = host.RegionSlotSize(outcome->output_region);
  for (std::uint64_t i = 0; i < host.RegionSlots(outcome->output_region);
       ++i) {
    auto slot = host.ReadSlot(outcome->output_region, i);
    EXPECT_TRUE(slot.ok());
    if (slot.ok()) {
      out.output_bytes.insert(out.output_bytes.end(), slot->begin(),
                              slot->end());
    }
  }
  EXPECT_EQ(out.output_bytes.size(),
            host.RegionSlots(outcome->output_region) * slot_size);
  return out;
}

TEST(BackendParityTest, IdenticalTracesAndSlotsAcrossMemFileMmap) {
  const ParityOutcome mem = RunParityJoin("mem");
  const ParityOutcome file = RunParityJoin("file");
  const ParityOutcome mmap = RunParityJoin("mmap");

  ASSERT_GT(mem.trace.count, 0u);
  for (const ParityOutcome* other : {&file, &mmap}) {
    EXPECT_EQ(mem.trace, other->trace);
    EXPECT_EQ(mem.timing, other->timing);
    EXPECT_EQ(mem.transfers, other->transfers);
    EXPECT_EQ(mem.tuples.size(), other->tuples.size());
    EXPECT_EQ(mem.output_bytes, other->output_bytes);
  }
  // The physical difference the identical traces hide: mem and mmap served
  // staged ranges as zero-copy borrowed views, the file backend copied.
  EXPECT_GT(mem.borrowed_views, 0u);
  EXPECT_GT(mmap.borrowed_views, 0u);
  EXPECT_EQ(mem.borrowed_views, mmap.borrowed_views);
  EXPECT_EQ(file.borrowed_views, 0u);
}

TEST(FileBackendTest, EndToEndJoinOverDiskRegions) {
  auto backend = MakeFileBackend(TempDir("join"));
  ASSERT_TRUE(backend.ok());
  HostStore host(std::move(*backend));
  Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});

  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 8;
  spec.result_size = 11;
  auto workload = relation::MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  const crypto::Ocb key_a(crypto::DeriveKey(1, "A"));
  const crypto::Ocb key_b(crypto::DeriveKey(2, "B"));
  const crypto::Ocb key_out(crypto::DeriveKey(3, "C"));
  auto a = relation::EncryptedRelation::Seal(&host, *workload->a, &key_a);
  auto b = relation::EncryptedRelation::Seal(&host, *workload->b, &key_b);
  ASSERT_TRUE(a.ok() && b.ok());

  const relation::PairAsMultiway multiway(workload->predicate.get());
  core::MultiwayJoin join{{&*a, &*b}, &multiway, &key_out};
  auto outcome = core::RunAlgorithm5(copro, join);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result_size, 11u);

  const relation::Schema result_schema = relation::Schema::Concat(
      workload->a->schema(), workload->b->schema());
  auto decoded =
      core::DecodeJoinOutput(host, outcome->output_region,
                             outcome->result_size, key_out, &result_schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 11u);
}

TEST(FileBackendTest, RejectsUnwritableDirectory) {
  auto backend = MakeFileBackend("/proc/definitely/not/writable");
  EXPECT_FALSE(backend.ok());
}

// ---- Error taxonomy (docs/ROBUSTNESS.md) ----------------------------------
// Environment-induced I/O failures are retryable kUnavailable and carry the
// errno; a region file that exists but is impossibly short breaks the
// backend's own size invariant and is kInternal — retrying cannot help.

TEST(FileBackendTest, MissingRegionFileIsUnavailableWithErrno) {
  const std::string dir = TempDir("taxonomy-missing");
  auto backend = MakeFileBackend(dir);
  ASSERT_TRUE(backend.ok());
  HostStore host(std::move(*backend));
  const RegionId r = host.CreateRegion("r", 8, 4);
  ASSERT_TRUE(host.WriteSlot(r, 0, std::vector<std::uint8_t>(8, 1)).ok());
  // The host environment loses the region file out from under the backend
  // (crash, eviction, operator error).
  std::uintmax_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    removed += std::filesystem::remove(entry.path()) ? 1 : 0;
  }
  ASSERT_GT(removed, 0u);

  auto read = host.ReadSlot(r, 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(read.status().message().find("errno"), std::string::npos)
      << read.status();

  const Status write = host.WriteSlot(r, 0, std::vector<std::uint8_t>(8, 2));
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.code(), StatusCode::kUnavailable);
  EXPECT_NE(write.message().find("errno"), std::string::npos) << write;
}

TEST(FileBackendTest, TruncatedRegionFileIsInternal) {
  const std::string dir = TempDir("taxonomy-truncated");
  auto backend = MakeFileBackend(dir);
  ASSERT_TRUE(backend.ok());
  HostStore host(std::move(*backend));
  const RegionId r = host.CreateRegion("r", 16, 4);
  ASSERT_TRUE(host.WriteSlot(r, 3, std::vector<std::uint8_t>(16, 7)).ok());
  // Truncate the region file below slot 3's extent: the file opens and
  // seeks fine, but the read comes up short with no errno — a broken size
  // invariant, not a transient environment fault.
  std::filesystem::path file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    file = entry.path();
  }
  ASSERT_FALSE(file.empty());
  std::filesystem::resize_file(file, 16);

  auto read = host.ReadSlot(r, 3);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);
  EXPECT_NE(read.status().message().find("short read"), std::string::npos)
      << read.status();
}

}  // namespace
}  // namespace ppj::sim
