// Tests for the pluggable host storage: the file-backed backend must be
// indistinguishable from the in-memory one — including running a complete
// privacy preserving join against regions that live on disk.

#include <filesystem>

#include <gtest/gtest.h>

#include "core/algorithm5.h"
#include "core/join_result.h"
#include "crypto/key.h"
#include "relation/generator.h"
#include "sim/host_store.h"
#include "sim/storage_backend.h"

namespace ppj::sim {
namespace {

std::string TempDir(const char* tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   (std::string("ppj-storage-") + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

class StorageBackendTest : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<HostStore> MakeHost(const char* tag) {
    if (!GetParam()) return std::make_unique<HostStore>();
    auto backend = MakeFileBackend(TempDir(tag));
    EXPECT_TRUE(backend.ok()) << backend.status();
    return std::make_unique<HostStore>(std::move(*backend));
  }
};

TEST_P(StorageBackendTest, SlotRoundTrip) {
  auto host = MakeHost("roundtrip");
  const RegionId r = host->CreateRegion("r", 16, 8);
  std::vector<std::uint8_t> slot(16);
  for (int i = 0; i < 16; ++i) slot[i] = static_cast<std::uint8_t>(i * 3);
  ASSERT_TRUE(host->WriteSlot(r, 5, slot).ok());
  EXPECT_EQ(*host->ReadSlot(r, 5), slot);
  // Untouched slots read back zeroed.
  EXPECT_EQ(*host->ReadSlot(r, 0), std::vector<std::uint8_t>(16, 0));
}

TEST_P(StorageBackendTest, ResizePreservesData) {
  auto host = MakeHost("resize");
  const RegionId r = host->CreateRegion("r", 8, 2);
  ASSERT_TRUE(host->WriteSlot(r, 1, {1, 2, 3, 4, 5, 6, 7, 8}).ok());
  ASSERT_TRUE(host->ResizeRegion(r, 6).ok());
  EXPECT_EQ(host->RegionSlots(r), 6u);
  EXPECT_EQ(*host->ReadSlot(r, 1),
            (std::vector<std::uint8_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  ASSERT_TRUE(host->WriteSlot(r, 5, std::vector<std::uint8_t>(8, 9)).ok());
  EXPECT_EQ((*host->ReadSlot(r, 5))[0], 9);
}

TEST_P(StorageBackendTest, CorruptSlotFlipsBit) {
  auto host = MakeHost("corrupt");
  const RegionId r = host->CreateRegion("r", 4, 1);
  ASSERT_TRUE(host->WriteSlot(r, 0, {0, 0, 0, 0}).ok());
  ASSERT_TRUE(host->CorruptSlot(r, 0, 12).ok());
  EXPECT_EQ((*host->ReadSlot(r, 0))[1], 0x10);
}

TEST_P(StorageBackendTest, MultipleRegionsAreIndependent) {
  auto host = MakeHost("multi");
  const RegionId r1 = host->CreateRegion("a", 4, 2);
  const RegionId r2 = host->CreateRegion("b", 4, 2);
  ASSERT_TRUE(host->WriteSlot(r1, 0, {1, 1, 1, 1}).ok());
  ASSERT_TRUE(host->WriteSlot(r2, 0, {2, 2, 2, 2}).ok());
  EXPECT_EQ((*host->ReadSlot(r1, 0))[0], 1);
  EXPECT_EQ((*host->ReadSlot(r2, 0))[0], 2);
  EXPECT_EQ(host->region_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Backends, StorageBackendTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "FileBacked" : "InMemory";
                         });

TEST(FileBackendTest, EndToEndJoinOverDiskRegions) {
  auto backend = MakeFileBackend(TempDir("join"));
  ASSERT_TRUE(backend.ok());
  HostStore host(std::move(*backend));
  Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});

  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 8;
  spec.result_size = 11;
  auto workload = relation::MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  const crypto::Ocb key_a(crypto::DeriveKey(1, "A"));
  const crypto::Ocb key_b(crypto::DeriveKey(2, "B"));
  const crypto::Ocb key_out(crypto::DeriveKey(3, "C"));
  auto a = relation::EncryptedRelation::Seal(&host, *workload->a, &key_a);
  auto b = relation::EncryptedRelation::Seal(&host, *workload->b, &key_b);
  ASSERT_TRUE(a.ok() && b.ok());

  const relation::PairAsMultiway multiway(workload->predicate.get());
  core::MultiwayJoin join{{&*a, &*b}, &multiway, &key_out};
  auto outcome = core::RunAlgorithm5(copro, join);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result_size, 11u);

  const relation::Schema result_schema = relation::Schema::Concat(
      workload->a->schema(), workload->b->schema());
  auto decoded =
      core::DecodeJoinOutput(host, outcome->output_region,
                             outcome->result_size, key_out, &result_schema);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 11u);
}

TEST(FileBackendTest, RejectsUnwritableDirectory) {
  auto backend = MakeFileBackend("/proc/definitely/not/writable");
  EXPECT_FALSE(backend.ok());
}

// ---- Error taxonomy (docs/ROBUSTNESS.md) ----------------------------------
// Environment-induced I/O failures are retryable kUnavailable and carry the
// errno; a region file that exists but is impossibly short breaks the
// backend's own size invariant and is kInternal — retrying cannot help.

TEST(FileBackendTest, MissingRegionFileIsUnavailableWithErrno) {
  const std::string dir = TempDir("taxonomy-missing");
  auto backend = MakeFileBackend(dir);
  ASSERT_TRUE(backend.ok());
  HostStore host(std::move(*backend));
  const RegionId r = host.CreateRegion("r", 8, 4);
  ASSERT_TRUE(host.WriteSlot(r, 0, std::vector<std::uint8_t>(8, 1)).ok());
  // The host environment loses the region file out from under the backend
  // (crash, eviction, operator error).
  std::uintmax_t removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    removed += std::filesystem::remove(entry.path()) ? 1 : 0;
  }
  ASSERT_GT(removed, 0u);

  auto read = host.ReadSlot(r, 0);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(read.status().message().find("errno"), std::string::npos)
      << read.status();

  const Status write = host.WriteSlot(r, 0, std::vector<std::uint8_t>(8, 2));
  ASSERT_FALSE(write.ok());
  EXPECT_EQ(write.code(), StatusCode::kUnavailable);
  EXPECT_NE(write.message().find("errno"), std::string::npos) << write;
}

TEST(FileBackendTest, TruncatedRegionFileIsInternal) {
  const std::string dir = TempDir("taxonomy-truncated");
  auto backend = MakeFileBackend(dir);
  ASSERT_TRUE(backend.ok());
  HostStore host(std::move(*backend));
  const RegionId r = host.CreateRegion("r", 16, 4);
  ASSERT_TRUE(host.WriteSlot(r, 3, std::vector<std::uint8_t>(16, 7)).ok());
  // Truncate the region file below slot 3's extent: the file opens and
  // seeks fine, but the read comes up short with no errno — a broken size
  // invariant, not a transient environment fault.
  std::filesystem::path file;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    file = entry.path();
  }
  ASSERT_FALSE(file.empty());
  std::filesystem::resize_file(file, 16);

  auto read = host.ReadSlot(r, 3);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kInternal);
  EXPECT_NE(read.status().message().find("short read"), std::string::npos)
      << read.status();
}

}  // namespace
}  // namespace ppj::sim
