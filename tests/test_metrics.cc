// The service metrics registry (src/common/metrics.h): bucket math,
// snapshot/exposition correctness, null-handle neutrality, concurrent
// publication from many threads (the TSan target), and the request
// lifecycle the scheduler records for every ticket.
//
// Registry-content assertions gate on metrics::Registry::CompiledIn() so
// the suite stays green under -DPPJ_METRICS=OFF; the lifecycle-ordering
// tests run in every build — lifecycle records are part of the request
// API, not the metrics exposition.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "relation/generator.h"
#include "service/service.h"

namespace ppj {
namespace {

using metrics::LabelSet;
using metrics::Registry;

// ---- Bucket math ---------------------------------------------------------

TEST(MetricsBucketTest, LinearRangeIsExact) {
  for (std::uint64_t v = 0; v < metrics::internal::kLinearBuckets; ++v) {
    const std::size_t index = metrics::internal::BucketIndex(v);
    EXPECT_EQ(index, v);
    EXPECT_LE(metrics::internal::BucketLowerBound(index), v);
    EXPECT_GT(metrics::internal::BucketUpperBound(index), v);
  }
}

TEST(MetricsBucketTest, LogLinearRangeBracketsEveryValue) {
  const std::uint64_t cases[] = {32,        33,
                                 63,        64,
                                 1000,      4095,
                                 1ull << 20, (1ull << 40) + 12345,
                                 ~std::uint64_t{0} - 1, ~std::uint64_t{0}};
  for (std::uint64_t v : cases) {
    const std::size_t index = metrics::internal::BucketIndex(v);
    ASSERT_LT(index, metrics::internal::kNumBuckets) << v;
    EXPECT_LE(metrics::internal::BucketLowerBound(index), v) << v;
    if (index + 1 < metrics::internal::kNumBuckets) {
      EXPECT_GT(metrics::internal::BucketUpperBound(index), v) << v;
    }
  }
}

TEST(MetricsBucketTest, BucketsAreMonotone) {
  std::uint64_t prev_upper = 0;
  for (std::size_t i = 0; i + 1 < metrics::internal::kNumBuckets; ++i) {
    const std::uint64_t lower = metrics::internal::BucketLowerBound(i);
    const std::uint64_t upper = metrics::internal::BucketUpperBound(i);
    EXPECT_LT(lower, upper) << i;
    EXPECT_EQ(lower, prev_upper) << "gap or overlap at bucket " << i;
    prev_upper = upper;
  }
}

// Relative bucket width past the linear range is <= 1/4: the quantile
// estimate can never be off by more than 25% of the true value.
TEST(MetricsBucketTest, RelativeErrorBounded) {
  for (std::uint64_t v : {100ull, 10'000ull, 1'000'000ull, 1ull << 33}) {
    const std::size_t index = metrics::internal::BucketIndex(v);
    const double lower =
        static_cast<double>(metrics::internal::BucketLowerBound(index));
    const double upper =
        static_cast<double>(metrics::internal::BucketUpperBound(index));
    EXPECT_LE((upper - lower) / lower, 0.25 + 1e-9) << v;
  }
}

// ---- Registry basics -----------------------------------------------------

TEST(MetricsRegistryTest, CountersAndGaugesRoundTrip) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  LabelSet a = LabelSet::ForTenant("a");
  LabelSet b = LabelSet::ForTenant("b");
  registry.GetCounter("requests", a).Increment();
  registry.GetCounter("requests", a).Increment(4);
  registry.GetCounter("requests", b).Increment(2);
  registry.GetGauge("depth", a).Add(3);
  registry.GetGauge("depth", a).Add(-1);

  const metrics::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.CounterValue("requests", a), 5u);
  EXPECT_EQ(snap.CounterValue("requests", b), 2u);
  EXPECT_EQ(snap.CounterTotal("requests"), 7u);
  EXPECT_EQ(snap.GaugeValue("depth", a), 2);
  EXPECT_EQ(snap.CounterValue("requests", LabelSet::ForTenant("absent")), 0u);
}

TEST(MetricsRegistryTest, SameKeySharesOneCell) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  LabelSet labels = LabelSet::ForTenant("t");
  labels.outcome = "completed";
  metrics::Counter first = registry.GetCounter("c", labels);
  metrics::Counter second = registry.GetCounter("c", labels);
  first.Increment();
  second.Increment();
  EXPECT_EQ(registry.TakeSnapshot().CounterValue("c", labels), 2u);
}

TEST(MetricsRegistryTest, SingleValueHistogramIsExactAtEveryQuantile) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  metrics::Histogram h = registry.GetHistogram("latency");
  for (int i = 0; i < 100; ++i) h.Observe(1'000'000);
  const metrics::Snapshot snap = registry.TakeSnapshot();
  const metrics::HistogramSample* sample =
      snap.FindHistogram("latency", LabelSet{});
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->count, 100u);
  EXPECT_EQ(sample->sum, 100u * 1'000'000u);
  EXPECT_EQ(sample->min, 1'000'000u);
  EXPECT_EQ(sample->max, 1'000'000u);
  // Clamped to [min, max], a single distinct value is exact everywhere.
  for (double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(sample->Quantile(q), 1'000'000u) << q;
  }
}

TEST(MetricsRegistryTest, QuantilesOrderedAndWithinRange) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  metrics::Histogram h = registry.GetHistogram("mixed");
  for (std::uint64_t v = 1; v <= 1000; ++v) h.Observe(v * 137);
  const metrics::Snapshot snap = registry.TakeSnapshot();
  const metrics::HistogramSample* sample =
      snap.FindHistogram("mixed", LabelSet{});
  ASSERT_NE(sample, nullptr);
  const std::uint64_t p50 = sample->Quantile(0.50);
  const std::uint64_t p99 = sample->Quantile(0.99);
  EXPECT_LE(sample->min, p50);
  EXPECT_LE(p50, p99);
  EXPECT_LE(p99, sample->max);
  // Log-linear bounds: p50 within 25% of the true median 500*137.
  EXPECT_NEAR(static_cast<double>(p50), 500.0 * 137, 0.25 * 500 * 137);
}

TEST(MetricsRegistryTest, MergeHistogramsSumsAcrossLabelSets) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  registry.GetHistogram("lat", LabelSet::ForTenant("a")).Observe(10);
  registry.GetHistogram("lat", LabelSet::ForTenant("b")).Observe(30);
  registry.GetHistogram("lat", LabelSet::ForTenant("b")).Observe(50);
  const metrics::HistogramSample merged =
      registry.TakeSnapshot().MergeHistograms("lat");
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 90u);
  EXPECT_EQ(merged.min, 10u);
  EXPECT_EQ(merged.max, 50u);
}

TEST(MetricsRegistryTest, DisabledRegistryIsInertAndEmpty) {
  Registry registry(/*enabled=*/false);
  registry.GetCounter("c", LabelSet::ForTenant("t")).Increment(7);
  registry.GetGauge("g").Set(42);
  registry.GetHistogram("h").Observe(1);
  const metrics::Snapshot snap = registry.TakeSnapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
  EXPECT_EQ(snap.ToPrometheusText(), "");
}

// ---- Exposition formats --------------------------------------------------

TEST(MetricsExpositionTest, PrometheusTextIsWellFormed) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  LabelSet labels = LabelSet::ForTenant("acme");
  labels.outcome = "completed";
  registry.GetCounter("ppj_requests_total", labels).Increment(3);
  registry.GetGauge("ppj_queue_depth", LabelSet::ForTenant("acme")).Set(1);
  metrics::Histogram h =
      registry.GetHistogram("ppj_latency_ns", LabelSet::ForTenant("acme"));
  h.Observe(5);
  h.Observe(100);
  const std::string text = registry.TakeSnapshot().ToPrometheusText();

  EXPECT_NE(text.find("# TYPE ppj_requests_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ppj_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ppj_latency_ns histogram"), std::string::npos);
  EXPECT_NE(text.find("ppj_requests_total{tenant=\"acme\","
                      "outcome=\"completed\"} 3"),
            std::string::npos);
  // Histogram exposition is cumulative and ends with +Inf == _count.
  EXPECT_NE(text.find("le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("ppj_latency_ns_count{tenant=\"acme\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("ppj_latency_ns_sum{tenant=\"acme\"} 105"),
            std::string::npos);
}

TEST(MetricsExpositionTest, LabelValuesAreEscaped) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  LabelSet weird = LabelSet::ForTenant("we\"ird\\te\nnant");
  registry.GetCounter("c", weird).Increment();
  const metrics::Snapshot snap = registry.TakeSnapshot();
  const std::string text = snap.ToPrometheusText();
  EXPECT_NE(text.find("tenant=\"we\\\"ird\\\\te\\nnant\""),
            std::string::npos);
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("we\\\"ird\\\\te\\nnant"), std::string::npos);
}

TEST(MetricsExpositionTest, JsonCarriesPrecomputedQuantiles) {
  if (!Registry::CompiledIn()) GTEST_SKIP() << "metrics compiled out";
  Registry registry;
  metrics::Histogram h = registry.GetHistogram("ppj_latency_ns");
  for (int i = 0; i < 10; ++i) h.Observe(4096);
  const std::string json = registry.TakeSnapshot().ToJson();
  EXPECT_NE(json.find("\"p50\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

// ---- Concurrency hammer (the TSan target) --------------------------------

// Many threads race handle creation (shard-map inserts) against lock-free
// updates through already-created handles, across overlapping label sets.
// Run under -DPPJ_SANITIZE=thread this is the registry's data-race proof;
// in a plain build it still verifies totals are not lost.
TEST(MetricsHammerTest, ConcurrentPublishersLoseNothing) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &barrier, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) std::this_thread::yield();
      LabelSet mine = LabelSet::ForTenant("tenant-" + std::to_string(t % 4));
      metrics::Counter counter = registry.GetCounter("ppj_hammer_total", mine);
      metrics::Histogram hist = registry.GetHistogram("ppj_hammer_ns", mine);
      metrics::Gauge gauge = registry.GetGauge("ppj_hammer_gauge", mine);
      for (int i = 0; i < kOpsPerThread; ++i) {
        counter.Increment();
        hist.Observe(static_cast<std::uint64_t>(i) * 97 + t);
        gauge.Add(1);
        gauge.Add(-1);
        if (i % 512 == 0) {
          // Racing get-or-create on a fresh key against the hot path.
          // (Built with += rather than operator+: GCC 12's -Wrestrict
          // false-positives on the char* + string&& overload here.)
          std::string key = "k";
          key += std::to_string(i / 512);
          registry
              .GetCounter("ppj_hammer_keys_total", LabelSet::ForTenant(key))
              .Increment();
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();

  if (!Registry::CompiledIn()) return;  // null handles: nothing to count
  const metrics::Snapshot snap = registry.TakeSnapshot();
  EXPECT_EQ(snap.CounterTotal("ppj_hammer_total"),
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.MergeHistograms("ppj_hammer_ns").count,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.GaugeTotal("ppj_hammer_gauge"), 0);
}

// Snapshots taken while publishers are mid-flight must be internally
// consistent (never tear a cell) — run alongside the hammer under TSan.
TEST(MetricsHammerTest, SnapshotsRaceCleanlyWithPublishers) {
  Registry registry;
  std::atomic<bool> stop{false};
  std::thread publisher([&] {
    metrics::Histogram h = registry.GetHistogram("ppj_race_ns");
    std::uint64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      h.Observe(++i);
      registry.GetCounter("ppj_race_total").Increment();
    }
  });
  for (int s = 0; s < 50; ++s) {
    const metrics::Snapshot snap = registry.TakeSnapshot();
    const metrics::HistogramSample merged =
        snap.MergeHistograms("ppj_race_ns");
    std::uint64_t bucket_total = 0;
    for (const auto& b : merged.buckets) bucket_total += b.count;
    // Bucket counts and the count field are updated by separate relaxed
    // atomics; a snapshot may catch one ahead of the other by at most the
    // number of in-flight Observe calls (here: one publisher).
    if (merged.count > 0) {
      const std::uint64_t diff = bucket_total > merged.count
                                     ? bucket_total - merged.count
                                     : merged.count - bucket_total;
      EXPECT_LE(diff, 2u);
    }
  }
  stop.store(true);
  publisher.join();
}

// ---- Request lifecycle through the service -------------------------------

// A service wired to a private registry, driving real joins end to end.
class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<service::SovereignJoinService>();
    service::SchedulerOptions sched;
    sched.registry = &registry_;
    ASSERT_TRUE(service_->ConfigureScheduler(sched).ok());
    ASSERT_TRUE(service_->RegisterParty("alice", 1).ok());
    ASSERT_TRUE(service_->RegisterParty("bob", 2).ok());
    ASSERT_TRUE(service_->RegisterParty("carol", 3).ok());
    auto contract =
        service_->CreateContract({"alice", "bob"}, "carol", "equijoin");
    ASSERT_TRUE(contract.ok()) << contract.status();
    contract_ = *contract;
    relation::EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 6;
    spec.seed = 5;
    auto workload = relation::MakeEquijoinWorkload(spec);
    ASSERT_TRUE(workload.ok()) << workload.status();
    workload_ = std::make_unique<relation::TwoTableWorkload>(
        std::move(*workload));
    ASSERT_TRUE(service_
                    ->SubmitRelation(contract_, "alice", *workload_->a, true)
                    .ok());
    ASSERT_TRUE(
        service_->SubmitRelation(contract_, "bob", *workload_->b, true).ok());
  }

  Result<service::Ticket> SubmitJoin(std::uint64_t seed) {
    service::ExecuteOptions options;
    options.algorithm = core::Algorithm::kAlgorithm5;
    options.n = 4;
    options.memory_tuples = 8;
    options.seed = seed;
    return service_->Submit(
        contract_, service::JoinRequest::PairJoin(*workload_->predicate),
        options);
  }

  metrics::Registry registry_;
  std::unique_ptr<service::SovereignJoinService> service_;
  std::string contract_;
  std::unique_ptr<relation::TwoTableWorkload> workload_;
};

TEST_F(LifecycleTest, TimestampsAreMonotone) {
  auto ticket = SubmitJoin(1);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto response = service_->Wait(*ticket);
  ASSERT_TRUE(response.ok()) << response.status();

  auto trace = service_->lifecycle(*ticket);
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->done());
  EXPECT_EQ(trace->outcome, "completed");
  EXPECT_EQ(trace->tenant, "carol");
  EXPECT_EQ(trace->kind, "pair-join");
  EXPECT_EQ(trace->algorithm, "Algorithm 5");
  // submitted -> dequeued -> executing -> finished, strictly ordered.
  EXPECT_GT(trace->submitted_ns, 0u);
  EXPECT_GE(trace->dequeued_ns, trace->submitted_ns);
  EXPECT_GE(trace->executing_ns, trace->dequeued_ns);
  EXPECT_GE(trace->finished_ns, trace->executing_ns);
  // Attribution identity: queue wait + execution == total latency.
  EXPECT_EQ(trace->queue_wait_ns() + trace->execution_ns(),
            trace->latency_ns());
}

TEST_F(LifecycleTest, ReusedRequestsNeverReachExecuting) {
  auto first = SubmitJoin(9);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(service_->Wait(*first).ok());

  auto repeat = SubmitJoin(9);  // identical request: reuse-cache hit
  ASSERT_TRUE(repeat.ok()) << repeat.status();
  auto response = service_->Wait(*repeat);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->reused);

  auto trace = service_->lifecycle(*repeat);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->outcome, "reused");
  // The reuse-cache probe hit, so mark_executing never fired: the request
  // was dequeued and finished without ever entering the executing state.
  EXPECT_EQ(trace->executing_ns, 0u);
  EXPECT_GE(trace->dequeued_ns, trace->submitted_ns);
  EXPECT_GE(trace->finished_ns, trace->dequeued_ns);
}

TEST_F(LifecycleTest, RegistryReconcilesWithSchedulerStats) {
  constexpr std::uint64_t kRequests = 3;
  std::vector<service::Ticket> tickets;
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    auto ticket = SubmitJoin(100 + i);
    ASSERT_TRUE(ticket.ok()) << ticket.status();
    tickets.push_back(*ticket);
  }
  auto repeat = SubmitJoin(100);  // one reuse hit
  ASSERT_TRUE(repeat.ok());
  tickets.push_back(*repeat);
  for (const service::Ticket& t : tickets) {
    ASSERT_TRUE(service_->Wait(t).ok());
  }

  const service::SchedulerStats stats = service_->scheduler_stats();
  EXPECT_EQ(stats.submitted, kRequests + 1);
  EXPECT_EQ(stats.completed, kRequests + 1);  // PR-6 semantics: reuse counts
  EXPECT_EQ(stats.failed, 0u);

  if (!Registry::CompiledIn()) return;
  const metrics::Snapshot snap = service_->MetricsSnapshot();
  EXPECT_EQ(snap.CounterTotal(metrics::kRequestsSubmitted), stats.submitted);
  // Registry outcomes are disjoint; their sum is the scheduler's total.
  LabelSet completed = LabelSet::ForTenant("carol");
  completed.kind = "pair-join";
  completed.algorithm = "Algorithm 5";
  LabelSet reused = completed;
  completed.outcome = "completed";
  reused.outcome = "reused";
  EXPECT_EQ(snap.CounterValue(metrics::kRequestsTotal, completed), kRequests);
  EXPECT_EQ(snap.CounterValue(metrics::kRequestsTotal, reused), 1u);
  LabelSet reuse_hit = LabelSet::ForTenant("carol");
  reuse_hit.kind = "pair-join";
  reuse_hit.algorithm = "Algorithm 5";
  EXPECT_EQ(snap.CounterValue(metrics::kReuseHits, reuse_hit), 1u);
  // Every settled request left the queue and the in-flight set.
  EXPECT_EQ(snap.GaugeTotal(metrics::kQueueDepth), 0);
  EXPECT_EQ(snap.GaugeTotal(metrics::kInFlight), 0);
  // One latency observation per request that ran on a worker.
  EXPECT_EQ(snap.MergeHistograms(metrics::kLatencyNs).count, kRequests + 1);
  EXPECT_EQ(snap.MergeHistograms(metrics::kQueueWaitNs).count, kRequests + 1);
}

TEST_F(LifecycleTest, QuotaRefusalsAreCounted) {
  // A second service with a zero-queue quota: every submit refuses.
  metrics::Registry registry;
  service::SovereignJoinService svc;
  service::SchedulerOptions sched;
  sched.registry = &registry;
  sched.quotas.max_queued = 0;
  ASSERT_TRUE(svc.ConfigureScheduler(sched).ok());
  ASSERT_TRUE(svc.RegisterParty("alice", 1).ok());
  ASSERT_TRUE(svc.RegisterParty("bob", 2).ok());
  ASSERT_TRUE(svc.RegisterParty("carol", 3).ok());
  auto contract = svc.CreateContract({"alice", "bob"}, "carol", "equijoin");
  ASSERT_TRUE(contract.ok());
  ASSERT_TRUE(svc.SubmitRelation(*contract, "alice", *workload_->a, true).ok());
  ASSERT_TRUE(svc.SubmitRelation(*contract, "bob", *workload_->b, true).ok());

  service::ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.n = 4;
  options.memory_tuples = 8;
  auto ticket = svc.Submit(
      *contract, service::JoinRequest::PairJoin(*workload_->predicate),
      options);
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kQuotaExceeded);
  EXPECT_EQ(svc.scheduler_stats().quota_rejected, 1u);
  if (Registry::CompiledIn()) {
    EXPECT_EQ(registry.TakeSnapshot().CounterTotal(metrics::kQuotaRefusals),
              1u);
  }
}

}  // namespace
}  // namespace ppj
