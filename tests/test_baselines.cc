#include <gtest/gtest.h>

#include "baseline/plain_join.h"
#include "baseline/unsafe_commutative.h"
#include "baseline/unsafe_hash_join.h"
#include "baseline/unsafe_nested_loop.h"
#include "baseline/unsafe_sort_merge.h"
#include "core/join_result.h"
#include "core/privacy_auditor.h"
#include "test_util.h"

namespace ppj::baseline {
namespace {

using core::AuditRun;
using core::PrivacyAuditor;
using relation::EquijoinSpec;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

TEST(PlainJoinTest, AllThreeAgreeOnEquijoins) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    EquijoinSpec spec;
    spec.size_a = 24;
    spec.size_b = 32;
    spec.n_max = 4;
    spec.result_size = 14;
    spec.seed = seed;
    auto w = MakeEquijoinWorkload(spec);
    ASSERT_TRUE(w.ok());
    const relation::Schema result_schema =
        relation::Schema::Concat(w->a->schema(), w->b->schema());
    const auto nl = NestedLoopJoin(*w->a, *w->b, *w->predicate,
                                   &result_schema);
    auto sm = SortMergeJoin(*w->a, *w->b, 1, 1, &result_schema);
    auto hj = HashJoin(*w->a, *w->b, 1, 1, &result_schema);
    ASSERT_TRUE(sm.ok());
    ASSERT_TRUE(hj.ok());
    EXPECT_EQ(nl.size(), 14u);
    EXPECT_TRUE(relation::SameTupleMultiset(nl, *sm));
    EXPECT_TRUE(relation::SameTupleMultiset(nl, *hj));
  }
}

TEST(PlainJoinTest, BoundsChecked) {
  EquijoinSpec spec;
  auto w = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(w.ok());
  const relation::Schema rs =
      relation::Schema::Concat(w->a->schema(), w->b->schema());
  EXPECT_FALSE(SortMergeJoin(*w->a, *w->b, 9, 1, &rs).ok());
  EXPECT_FALSE(HashJoin(*w->a, *w->b, 1, 9, &rs).ok());
}

/// Builds a world pair with identical Chapter-4 shape (|A|, |B|, N) but
/// different match distribution, runs `algo`, returns the audit.
template <typename Fn>
core::AuditResult AuditUnsafe(Fn&& algo, bool vary_s) {
  auto runner = [&](std::uint64_t w) -> Result<AuditRun> {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    // Same N; S differs (w=0: minimal, w=1: larger) or content-only.
    spec.result_size = vary_s ? (4 + 8 * w) : 8;
    spec.seed = 13 + w;
    auto workload = MakeEquijoinWorkload(spec);
    if (!workload.ok()) return workload.status();
    auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true,
                           /*copro_seed=*/3);
    PPJ_RETURN_NOT_OK(algo(*world));
    AuditRun run;
    run.fingerprint = world->copro->trace().fingerprint();
    run.retained_events = world->copro->trace().retained_events();
    return run;
  };
  auto audit = PrivacyAuditor::CompareWorlds(runner);
  EXPECT_TRUE(audit.ok()) << audit.status();
  return *audit;
}

TEST(UnsafeBaselineTest, NaiveNestedLoopLeaks) {
  // Section 3.4.1: output puts appear exactly at matches -> trace differs.
  auto audit = AuditUnsafe(
      [](TwoPartyWorld& world) -> Status {
        core::TwoWayJoin join{world.a.get(), world.b.get(),
                              world.workload.predicate.get(),
                              world.key_out.get()};
        return RunUnsafeNestedLoop(*world.copro, join).status();
      },
      /*vary_s=*/true);
  EXPECT_FALSE(audit.identical)
      << "the unsafe nested loop should have failed the audit";
}

TEST(UnsafeBaselineTest, BufferedNestedLoopStillLeaks) {
  // Section 3.4.2: the "incorrect fix".
  auto audit = AuditUnsafe(
      [](TwoPartyWorld& world) -> Status {
        core::TwoWayJoin join{world.a.get(), world.b.get(),
                              world.workload.predicate.get(),
                              world.key_out.get()};
        return RunUnsafeBufferedNestedLoop(*world.copro, join).status();
      },
      /*vary_s=*/true);
  EXPECT_FALSE(audit.identical);
}

TEST(UnsafeBaselineTest, SortMergeLeaksMatchDistribution) {
  // Section 4.5.1: cursor advancement pattern reveals per-key match counts
  // even at the *same* S (different grouping).
  auto runner = [&](std::uint64_t w) -> Result<AuditRun> {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    // Same S = 8; world 0 has N = 1 (8 groups), world 1 has N = 4.
    spec.n_max = (w == 0) ? 1 : 4;
    spec.result_size = 8;
    spec.seed = 21 + w;
    auto workload = MakeEquijoinWorkload(spec);
    if (!workload.ok()) return workload.status();
    auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true, 3);
    core::TwoWayJoin join{world->a.get(), world->b.get(),
                          world->workload.predicate.get(),
                          world->key_out.get()};
    PPJ_RETURN_NOT_OK(RunUnsafeSortMergeJoin(*world->copro, join).status());
    AuditRun run;
    run.fingerprint = world->copro->trace().fingerprint();
    run.retained_events = world->copro->trace().retained_events();
    return run;
  };
  auto audit = PrivacyAuditor::CompareWorlds(runner);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->identical);
}

TEST(UnsafeBaselineTest, SortMergeIsAtLeastCorrect) {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 10;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true);
  core::TwoWayJoin join{world->a.get(), world->b.get(),
                        world->workload.predicate.get(),
                        world->key_out.get()};
  auto outcome = RunUnsafeSortMergeJoin(*world->copro, join);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result_size, 10u);
  auto decoded = core::DecodeJoinOutput(
      world->host, outcome->output_region, outcome->result_size,
      *world->key_out, world->result_schema.get());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 10u);
}

TEST(UnsafeBaselineTest, HashJoinPartitioningLeaksSkew) {
  // Section 4.5.1 footnote: uniform vs skewed key distribution changes the
  // flush cadence.
  auto runner = [&](std::uint64_t w) -> Result<AuditRun> {
    EquijoinSpec spec;
    spec.size_a = 16;
    spec.size_b = 16;
    // world 0: 8 distinct keys (uniform-ish); world 1: one hot key of 8.
    spec.n_max = (w == 0) ? 1 : 8;
    spec.result_size = 8;
    spec.seed = 4;  // same seed: only the grouping differs
    auto workload = MakeEquijoinWorkload(spec);
    if (!workload.ok()) return workload.status();
    auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true, 3);
    core::TwoWayJoin join{world->a.get(), world->b.get(),
                          world->workload.predicate.get(),
                          world->key_out.get()};
    UnsafeHashJoinOptions options;
    options.num_buckets = 4;
    options.bucket_capacity = 4;
    PPJ_RETURN_NOT_OK(
        RunUnsafeHashJoin(*world->copro, join, options).status());
    AuditRun run;
    run.fingerprint = world->copro->trace().fingerprint();
    run.retained_events = world->copro->trace().retained_events();
    return run;
  };
  auto audit = PrivacyAuditor::CompareWorlds(runner);
  ASSERT_TRUE(audit.ok());
  EXPECT_FALSE(audit->identical);
}

TEST(UnsafeBaselineTest, HashJoinIsAtLeastCorrect) {
  EquijoinSpec spec;
  spec.size_a = 16;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 9;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true);
  core::TwoWayJoin join{world->a.get(), world->b.get(),
                        world->workload.predicate.get(),
                        world->key_out.get()};
  auto outcome = RunUnsafeHashJoin(*world->copro, join);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result_size, 9u);
}

TEST(UnsafeBaselineTest, CommutativeEncryptionLeaksDuplicates) {
  // Section 4.5.1: the trace may be clean, but the host-visible token
  // multiset reveals the duplicate distribution.
  auto run = [&](std::uint64_t n_max) {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = n_max;
    spec.result_size = 8;
    spec.seed = 9;
    auto workload = MakeEquijoinWorkload(spec);
    EXPECT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true, 3);
    core::TwoWayJoin join{world->a.get(), world->b.get(),
                          world->workload.predicate.get(),
                          world->key_out.get()};
    auto outcome = RunUnsafeCommutativeJoin(*world->copro, join);
    EXPECT_TRUE(outcome.ok()) << outcome.status();
    return DuplicateHistogram(outcome->tokens_b);
  };
  // Same |B|, same S; the histograms expose N = 1 vs N = 8 immediately.
  EXPECT_NE(run(1), run(8));
}

TEST(UnsafeBaselineTest, CommutativeJoinComputesCorrectSize) {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 11;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true);
  core::TwoWayJoin join{world->a.get(), world->b.get(),
                        world->workload.predicate.get(),
                        world->key_out.get()};
  auto outcome = RunUnsafeCommutativeJoin(*world->copro, join);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->result_size, 11u);
  EXPECT_EQ(outcome->tokens_a.size(), 8u);
  EXPECT_EQ(outcome->tokens_b.size(), 16u);
}

}  // namespace
}  // namespace ppj::baseline
