// Tests for the oblivious operator layer (src/plan/): the algorithm
// registry, plan builders, plan context, and the executor's checkpoint /
// short-circuit semantics. The bit-identity of the refactor itself is
// proven by test_plan_goldens.cc; this file covers the layer's API.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/algorithm5.h"
#include "core/parallel.h"
#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"
#include "plan/ops.h"
#include "relation/generator.h"
#include "test_util.h"

namespace ppj::plan {
namespace {

using relation::EquijoinSpec;
using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

std::unique_ptr<TwoPartyWorld> Ch4World(bool pad_pow2 = false) {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 6;
  spec.seed = 5;
  auto workload = MakeEquijoinWorkload(spec);
  if (!workload.ok()) return nullptr;
  return MakeWorld(std::move(*workload), /*memory_tuples=*/4, pad_pow2);
}

std::unique_ptr<TwoPartyWorld> Ch5World(std::uint64_t memory_tuples = 4) {
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 12;
  spec.result_size = 9;
  spec.seed = 17;
  auto workload = MakeCellWorkload(spec);
  if (!workload.ok()) return nullptr;
  return MakeWorld(std::move(*workload), memory_tuples);
}

std::vector<std::string> OpNames(const PhysicalPlan& plan) {
  std::vector<std::string> names;
  for (const auto& op : plan.ops) names.emplace_back(op->name());
  return names;
}

// ---------------------------------------------------------------------------
// Algorithm registry.
// ---------------------------------------------------------------------------

TEST(AlgorithmRegistryTest, CoversEveryAlgorithmConsistently) {
  int rows = 0;
  for (const core::AlgorithmInfo& info : core::AlgorithmRegistry()) {
    ++rows;
    // Spellings round-trip through the parser and names through ToString.
    auto parsed = core::ParseAlgorithm(info.spelling);
    ASSERT_TRUE(parsed.ok()) << info.spelling;
    EXPECT_EQ(*parsed, info.algorithm);
    EXPECT_EQ(core::ToString(info.algorithm), info.name);
    EXPECT_TRUE(info.chapter == 4 || info.chapter == 5) << info.name;
    EXPECT_EQ(core::IsChapter4(info.algorithm), info.chapter == 4);
    // Chapter 5 = exact output (Definition 3); Chapter 4 pads to N|A|.
    EXPECT_EQ(info.exact_output, info.chapter == 5) << info.name;
    // Parallel engines exist exactly for the Chapter 5 family.
    EXPECT_EQ(info.parallel != nullptr, info.chapter == 5) << info.name;
    ASSERT_NE(info.build, nullptr) << info.name;
  }
  EXPECT_EQ(rows, 7);
}

TEST(AlgorithmRegistryTest, CapabilityFlagsMatchThePaper) {
  EXPECT_TRUE(core::GetAlgorithmInfo(core::Algorithm::kAlgorithm3)
                  .requires_equality);
  EXPECT_TRUE(core::GetAlgorithmInfo(core::Algorithm::kAlgorithm3)
                  .requires_pow2_b);
  EXPECT_TRUE(core::GetAlgorithmInfo(core::Algorithm::kAlgorithm6)
                  .requires_epsilon);
  for (const core::AlgorithmInfo& info : core::AlgorithmRegistry()) {
    if (info.algorithm != core::Algorithm::kAlgorithm3) {
      EXPECT_FALSE(info.requires_equality) << info.name;
    }
    if (info.algorithm != core::Algorithm::kAlgorithm6) {
      EXPECT_FALSE(info.requires_epsilon) << info.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Plan builders: operator sequences and validation.
// ---------------------------------------------------------------------------

TEST(PlanBuilderTest, BuildsTheExpectedOperatorSequences) {
  auto ch4 = Ch4World(/*pad_pow2=*/true);
  auto ch5 = Ch5World();
  ASSERT_NE(ch4, nullptr);
  ASSERT_NE(ch5, nullptr);
  core::TwoWayJoin two_way{ch4->a.get(), ch4->b.get(),
                           ch4->workload.predicate.get(),
                           ch4->key_out.get()};
  const relation::PairAsMultiway pair(ch5->workload.predicate.get());
  core::MultiwayJoin multiway{{ch5->a.get(), ch5->b.get()}, &pair,
                              ch5->key_out.get()};

  struct Expected {
    core::Algorithm alg;
    std::vector<std::string> ops;
  };
  const Expected cases[] = {
      {core::Algorithm::kAlgorithm1, {"resolve-n", "scratch-rotate"}},
      {core::Algorithm::kAlgorithm1Variant, {"resolve-n", "scratch-rotate"}},
      {core::Algorithm::kAlgorithm2, {"resolve-n", "multi-pass-scan"}},
      {core::Algorithm::kAlgorithm3,
       {"resolve-n", "sort-b", "scratch-rotate"}},
      {core::Algorithm::kAlgorithm4, {"ituple-scan", "filter", "output"}},
      {core::Algorithm::kAlgorithm5, {"buffered-emit"}},
      {core::Algorithm::kAlgorithm6,
       {"screen", "epsilon-partition", "salvage", "filter", "output"}},
  };
  for (const Expected& c : cases) {
    const bool ch4_alg = core::IsChapter4(c.alg);
    JoinPlanOptions popts;
    popts.n = 4;
    popts.epsilon = 1e-6;
    auto plan = BuildJoinPlan(c.alg, ch4_alg ? &two_way : nullptr,
                              ch4_alg ? nullptr : &multiway, popts);
    ASSERT_TRUE(plan.ok()) << core::ToString(c.alg) << ": " << plan.status();
    EXPECT_EQ(plan->algorithm, c.alg);
    EXPECT_EQ(plan->root_span,
              core::GetAlgorithmInfo(c.alg).root_span);
    EXPECT_EQ(OpNames(*plan), c.ops) << core::ToString(c.alg);
    for (const auto& op : plan->ops) {
      EXPECT_FALSE(op->cost_formula().empty()) << op->name();
      EXPECT_FALSE(op->trace_shape().empty()) << op->name();
    }
  }
}

TEST(PlanBuilderTest, RejectsTheWrongJoinShape) {
  auto ch5 = Ch5World();
  ASSERT_NE(ch5, nullptr);
  const relation::PairAsMultiway pair(ch5->workload.predicate.get());
  core::MultiwayJoin multiway{{ch5->a.get(), ch5->b.get()}, &pair,
                              ch5->key_out.get()};
  // Chapter 4 builders need a two-way join…
  EXPECT_FALSE(
      BuildJoinPlan(core::Algorithm::kAlgorithm1, nullptr, nullptr, {})
          .ok());
  // …and Chapter 5 builders a multiway description.
  EXPECT_FALSE(
      BuildJoinPlan(core::Algorithm::kAlgorithm5, nullptr, nullptr, {})
          .ok());
  EXPECT_TRUE(
      BuildJoinPlan(core::Algorithm::kAlgorithm5, nullptr, &multiway, {})
          .ok());
}

TEST(PlanBuilderTest, Algorithm3RequiresPowerOfTwoB) {
  auto world = Ch4World(/*pad_pow2=*/false);  // |B| = 16 is pow2, |A| = 8
  ASSERT_NE(world, nullptr);
  core::TwoWayJoin join{world->a.get(), world->b.get(),
                        world->workload.predicate.get(),
                        world->key_out.get()};
  // size_b = 16 is already a power of two, so this succeeds…
  EXPECT_TRUE(BuildJoinPlan(core::Algorithm::kAlgorithm3, &join, nullptr, {})
                  .ok());
  // …but a 12-slot B (unpadded cell workload) is rejected at build time.
  auto odd = Ch5World();
  ASSERT_NE(odd, nullptr);
  core::TwoWayJoin odd_join{odd->a.get(), odd->b.get(),
                            odd->workload.predicate.get(),
                            odd->key_out.get()};
  auto plan =
      BuildJoinPlan(core::Algorithm::kAlgorithm3, &odd_join, nullptr, {});
  EXPECT_FALSE(plan.ok());
}

// ---------------------------------------------------------------------------
// PlanContext.
// ---------------------------------------------------------------------------

TEST(PlanContextTest, WireShapeNeedsExactlyOneJoinDescription) {
  PlanContext neither(nullptr, nullptr);
  EXPECT_FALSE(neither.InitWireShape().ok());
}

TEST(PlanContextTest, RecordsEveryRegionTheOpsCreate) {
  auto world = Ch5World();
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway pair(world->workload.predicate.get());
  core::MultiwayJoin join{{world->a.get(), world->b.get()}, &pair,
                          world->key_out.get()};
  auto plan =
      BuildJoinPlan(core::Algorithm::kAlgorithm5, nullptr, &join, {});
  ASSERT_TRUE(plan.ok());
  PlanContext ctx(nullptr, &join);
  ASSERT_TRUE(PlanExecutor().Run(*world->copro, *plan, ctx).ok());
  ASSERT_FALSE(ctx.regions().empty());
  bool found_output = false;
  for (const RegionUse& region : ctx.regions()) {
    EXPECT_FALSE(region.name.empty());
    if (region.name == "alg5-output") found_output = true;
  }
  EXPECT_TRUE(found_output);
  EXPECT_EQ(ctx.output_region, ctx.regions().back().id);
}

// ---------------------------------------------------------------------------
// PlanExecutor: wrapper equivalence, checkpoints, short-circuit.
// ---------------------------------------------------------------------------

TEST(PlanExecutorTest, MatchesTheCompatibilityWrapperBitForBit) {
  auto via_wrapper = Ch5World();
  auto via_plan = Ch5World();
  ASSERT_NE(via_wrapper, nullptr);
  ASSERT_NE(via_plan, nullptr);

  const relation::PairAsMultiway pair_w(via_wrapper->workload.predicate.get());
  core::MultiwayJoin join_w{{via_wrapper->a.get(), via_wrapper->b.get()},
                            &pair_w, via_wrapper->key_out.get()};
  ASSERT_TRUE(core::RunAlgorithm5(*via_wrapper->copro, join_w).ok());

  const relation::PairAsMultiway pair_p(via_plan->workload.predicate.get());
  core::MultiwayJoin join_p{{via_plan->a.get(), via_plan->b.get()}, &pair_p,
                            via_plan->key_out.get()};
  auto plan =
      BuildJoinPlan(core::Algorithm::kAlgorithm5, nullptr, &join_p, {});
  ASSERT_TRUE(plan.ok());
  PlanContext ctx(nullptr, &join_p);
  ASSERT_TRUE(PlanExecutor().Run(*via_plan->copro, *plan, ctx).ok());

  EXPECT_EQ(via_wrapper->copro->trace().fingerprint(),
            via_plan->copro->trace().fingerprint());
  EXPECT_EQ(via_wrapper->copro->metrics().TupleTransfers(),
            via_plan->copro->metrics().TupleTransfers());
}

TEST(PlanExecutorTest, RecordsOneCheckpointPerExecutedOperator) {
  auto world = Ch5World();
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway pair(world->workload.predicate.get());
  core::MultiwayJoin join{{world->a.get(), world->b.get()}, &pair,
                          world->key_out.get()};
  JoinPlanOptions popts;
  popts.epsilon = 1e-6;
  popts.order_seed = 0xBEEF;
  auto plan =
      BuildJoinPlan(core::Algorithm::kAlgorithm6, nullptr, &join, popts);
  ASSERT_TRUE(plan.ok());
  PlanContext ctx(nullptr, &join);
  ASSERT_TRUE(PlanExecutor().Run(*world->copro, *plan, ctx).ok());
  // S = 9 > M = 4, no blemish on this workload: screen + epsilon-partition
  // + filter + output ran; salvage's ShouldRun kept it out.
  ASSERT_FALSE(ctx.checkpoints.empty());
  EXPECT_EQ(ctx.checkpoints.front().op, "screen");
  EXPECT_EQ(ctx.checkpoints.back().op, "output");
  for (const core::OpCheckpoint& c : ctx.checkpoints) {
    EXPECT_NE(c.op, "salvage");
  }
  // Cumulative fingerprints: the event count never decreases.
  for (std::size_t i = 1; i < ctx.checkpoints.size(); ++i) {
    EXPECT_GE(ctx.checkpoints[i].trace.count,
              ctx.checkpoints[i - 1].trace.count);
  }
}

TEST(PlanExecutorTest, FinishedShortCircuitsTheRemainingOperators) {
  // M = 32 >= S = 9: ScreenOp buffers the whole result, flushes it, and
  // marks the plan finished — no partition, filter, or output op runs.
  auto world = Ch5World(/*memory_tuples=*/32);
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway pair(world->workload.predicate.get());
  core::MultiwayJoin join{{world->a.get(), world->b.get()}, &pair,
                          world->key_out.get()};
  JoinPlanOptions popts;
  popts.epsilon = 1e-6;
  auto plan =
      BuildJoinPlan(core::Algorithm::kAlgorithm6, nullptr, &join, popts);
  ASSERT_TRUE(plan.ok());
  PlanContext ctx(nullptr, &join);
  ASSERT_TRUE(PlanExecutor().Run(*world->copro, *plan, ctx).ok());
  ASSERT_EQ(ctx.checkpoints.size(), 1u);
  EXPECT_EQ(ctx.checkpoints[0].op, "screen");
  EXPECT_TRUE(ctx.finished);
  EXPECT_EQ(ctx.s, 9u);
}

// ---------------------------------------------------------------------------
// RunParallelPlan.
// ---------------------------------------------------------------------------

TEST(RunParallelPlanTest, DispatchesThroughTheRegistry) {
  auto world = Ch5World();
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway pair(world->workload.predicate.get());
  core::MultiwayJoin join{{world->a.get(), world->b.get()}, &pair,
                          world->key_out.get()};
  const sim::CoprocessorOptions opts{.memory_tuples = 4, .seed = 1};
  auto outcome = RunParallelPlan(&world->host, core::Algorithm::kAlgorithm5,
                                 join, /*parallelism=*/2, opts, {});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result_size, 9u);
}

TEST(RunParallelPlanTest, RejectsAlgorithmsWithoutAParallelEngine) {
  auto world = Ch5World();
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway pair(world->workload.predicate.get());
  core::MultiwayJoin join{{world->a.get(), world->b.get()}, &pair,
                          world->key_out.get()};
  const sim::CoprocessorOptions opts{.memory_tuples = 4, .seed = 1};
  auto outcome = RunParallelPlan(&world->host, core::Algorithm::kAlgorithm1,
                                 join, 2, opts, {});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ppj::plan
