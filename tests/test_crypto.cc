#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/aes128.h"
#include "crypto/key.h"
#include "crypto/mlfsr.h"
#include "crypto/ocb.h"
#include "crypto/ocb_stream.h"

namespace ppj::crypto {
namespace {

std::vector<std::uint8_t> FromHex(const std::string& hex) {
  std::vector<std::uint8_t> out(hex.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(
        std::stoul(hex.substr(2 * i, 2), nullptr, 16));
  }
  return out;
}

// Deterministic test plaintext.
std::vector<std::uint8_t> Pattern(std::size_t len, std::uint8_t salt) {
  std::vector<std::uint8_t> out(len);
  for (std::size_t i = 0; i < len; ++i) {
    out[i] = static_cast<std::uint8_t>(i * 131 + salt);
  }
  return out;
}

TEST(Aes128Test, Fips197KnownAnswer) {
  // FIPS-197 Appendix C.1: AES-128 with key 000102...0f, plaintext
  // 00112233445566778899aabbccddeeff -> 69c4e0d86a7b0430d8cdb78070b4c55a.
  Block key, pt;
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    pt[i] = static_cast<std::uint8_t>(i * 0x11);
  }
  const Aes128 aes(key);
  const Block ct = aes.Encrypt(pt);
  const Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(ct, expected);
  EXPECT_EQ(aes.Decrypt(ct), pt);
}

TEST(Aes128Test, EncryptDecryptRoundTripMany) {
  const Aes128 aes(DeriveKey(42, "roundtrip"));
  Block b{};
  for (int i = 0; i < 100; ++i) {
    b[i % 16] ^= static_cast<std::uint8_t>(i * 37 + 1);
    EXPECT_EQ(aes.Decrypt(aes.Encrypt(b)), b);
  }
}

TEST(Aes128Test, GfDoubleKnownBehaviour) {
  Block zero{};
  EXPECT_EQ(GfDouble(zero), zero);
  // Doubling a block with only the top bit set reduces by the polynomial.
  Block top{};
  top[0] = 0x80;
  Block expect{};
  expect[15] = 0x87;
  EXPECT_EQ(GfDouble(top), expect);
  // Doubling with no carry is a plain left shift.
  Block one{};
  one[15] = 0x01;
  Block two{};
  two[15] = 0x02;
  EXPECT_EQ(GfDouble(one), two);
}

TEST(Aes128Test, HardwareMatchesSoftware) {
  // The AES-NI and T-table paths must be the same function. Skipped (not
  // silently passed) on machines without AES-NI so a CI log shows which
  // arm actually ran.
  const Block key = DeriveKey(7, "hw-vs-sw");
  const Aes128 hw(key, Aes128::Backend::kAuto);
  const Aes128 sw(key, Aes128::Backend::kSoftware);
  ASSERT_FALSE(sw.hardware());
  if (!hw.hardware()) GTEST_SKIP() << "no AES-NI on this host";
  Block b{};
  for (int i = 0; i < 256; ++i) {
    b[i % 16] ^= static_cast<std::uint8_t>(i * 41 + 3);
    EXPECT_EQ(hw.Encrypt(b), sw.Encrypt(b));
    EXPECT_EQ(hw.Decrypt(b), sw.Decrypt(b));
  }
}

TEST(Aes128Test, MultiBlockMatchesSingleBlock) {
  // EncryptBlocks/DecryptBlocks must be byte-identical to n sequential
  // single-block calls on both backends, for counts around and beyond the
  // 8-block interleave width (remainder loop included).
  const Block key = DeriveKey(8, "multiblock");
  for (const auto backend : {Aes128::Backend::kAuto,
                             Aes128::Backend::kSoftware}) {
    const Aes128 aes(key, backend);
    for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u, 15u, 16u, 17u,
                          31u, 64u}) {
      const std::vector<std::uint8_t> in = Pattern(n * 16, 0x5A);
      std::vector<std::uint8_t> got(n * 16);
      aes.EncryptBlocks(in.data(), got.data(), n);
      for (std::size_t b = 0; b < n; ++b) {
        Block p;
        std::memcpy(p.data(), in.data() + 16 * b, 16);
        const Block c = aes.Encrypt(p);
        EXPECT_EQ(0, std::memcmp(got.data() + 16 * b, c.data(), 16))
            << "encrypt block " << b << " of " << n;
      }
      std::vector<std::uint8_t> back(n * 16);
      aes.DecryptBlocks(got.data(), back.data(), n);
      EXPECT_EQ(back, in) << "decrypt n=" << n;
    }
  }
}

TEST(Aes128Test, MultiBlockInPlace) {
  // The OCB lane groups cipher their staging buffer in place.
  const Aes128 aes(DeriveKey(9, "inplace"));
  const std::vector<std::uint8_t> in = Pattern(33 * 16, 0xC3);
  std::vector<std::uint8_t> expected(in.size());
  aes.EncryptBlocks(in.data(), expected.data(), 33);
  std::vector<std::uint8_t> buf = in;
  aes.EncryptBlocks(buf.data(), buf.data(), 33);
  EXPECT_EQ(buf, expected);
  aes.DecryptBlocks(buf.data(), buf.data(), 33);
  EXPECT_EQ(buf, in);
}

TEST(Aes128Test, XexBlocksMatchesManualWhitening) {
  // Fused out = E(in ^ mask ^ base) ^ mask ^ base must equal the hand-rolled
  // composition on both backends, across interleave boundaries and the
  // single-block remainder loop.
  const Block key = DeriveKey(10, "xex");
  const Block base = DeriveKey(11, "base");
  for (const auto backend :
       {Aes128::Backend::kAuto, Aes128::Backend::kSoftware}) {
    const Aes128 aes(key, backend);
    for (std::size_t n : {1u, 2u, 7u, 8u, 9u, 16u, 33u, 64u, 100u}) {
      const std::vector<std::uint8_t> in = Pattern(n * 16, 0x3D);
      const std::vector<std::uint8_t> mask = Pattern(n * 16, 0x91);
      std::vector<std::uint8_t> expected(n * 16);
      for (std::size_t i = 0; i < n * 16; ++i) {
        expected[i] = static_cast<std::uint8_t>(in[i] ^ mask[i] ^ base[i % 16]);
      }
      aes.EncryptBlocks(expected.data(), expected.data(), n);
      for (std::size_t i = 0; i < n * 16; ++i) {
        expected[i] =
            static_cast<std::uint8_t>(expected[i] ^ mask[i] ^ base[i % 16]);
      }
      std::vector<std::uint8_t> got(n * 16);
      aes.EncryptXexBlocks(in.data(), mask.data(), base.data(), got.data(), n);
      ASSERT_EQ(got, expected) << "n=" << n;
      std::vector<std::uint8_t> back(n * 16);
      aes.DecryptXexBlocks(got.data(), mask.data(), base.data(), back.data(),
                           n);
      EXPECT_EQ(back, in) << "n=" << n;
    }
  }
}

TEST(OcbTest, RoundTripVariousLengths) {
  const Ocb ocb(DeriveKey(1, "ocb"));
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 100u, 256u}) {
    std::vector<std::uint8_t> pt(len);
    for (std::size_t i = 0; i < len; ++i) {
      pt[i] = static_cast<std::uint8_t>(i * 13 + 7);
    }
    const Block nonce = NonceFromCounter(1000 + len);
    const auto sealed = ocb.Encrypt(nonce, pt);
    EXPECT_EQ(sealed.size(), len + Ocb::kTagSize);
    auto opened = ocb.Decrypt(nonce, sealed);
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(*opened, pt);
  }
}

TEST(OcbTest, Rfc7253KnownAnswers) {
  // RFC 7253 Appendix A, AES-128-OCB-TAGLEN128, empty associated data.
  // With no AD, HASH(K,A) = 0 and the library's checksum/tag pipeline is
  // exactly the RFC's; only nonce processing differs, selected here via
  // NonceMode::kRfc7253. The 16-byte Block carries the RFC's formatted
  // Nonce: num2str(TAGLEN mod 128, 7) || 0* || 1 || N, i.e. for a 96-bit N
  // bytes {00 00 00 01} || N.
  const std::vector<std::uint8_t> key_bytes =
      FromHex("000102030405060708090A0B0C0D0E0F");
  Block key;
  std::memcpy(key.data(), key_bytes.data(), 16);
  const Ocb ocb(key, {.nonce_mode = Ocb::NonceMode::kRfc7253});

  struct Vector {
    const char* nonce_hex;  // 96-bit N
    const char* pt_hex;
    const char* ct_hex;  // ciphertext || tag
  };
  const Vector vectors[] = {
      {"BBAA99887766554433221100", "",
       "785407BFFFC8AD9EDCC5520AC9111EE6"},
      {"BBAA99887766554433221103", "0001020304050607",
       "45DD69F8F5AAE72414054CD1F35D82760B2CD00D2F99BFA9"},
      {"BBAA99887766554433221106", "000102030405060708090A0B0C0D0E0F",
       "5CE88EC2E0692706A915C00AEB8B2396F40E1C743F52436BDF06D8FA1ECA343D"},
  };
  for (const Vector& v : vectors) {
    Block nonce{};
    nonce[3] = 0x01;
    const std::vector<std::uint8_t> n = FromHex(v.nonce_hex);
    ASSERT_EQ(n.size(), 12u);
    std::memcpy(nonce.data() + 4, n.data(), 12);

    const std::vector<std::uint8_t> pt = FromHex(v.pt_hex);
    const std::vector<std::uint8_t> expected = FromHex(v.ct_hex);
    EXPECT_EQ(ocb.Encrypt(nonce, pt), expected) << "N=" << v.nonce_hex;

    auto opened = ocb.Decrypt(nonce, expected);
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(*opened, pt);
  }
}

TEST(OcbTest, WideMatchesScalarAllTailSizes) {
  // The wide path must be byte-identical to the scalar path for every tail
  // length 0..15 at several full-block counts, spanning empty, partial lane
  // groups, kernel interleave boundaries, the exact end of the precomputed
  // offset-prefix table, and the chained-offset fallback beyond it.
  const Block key = DeriveKey(4, "wide");
  const Ocb wide(key, {.wide_kernels = true});
  const Ocb scalar(key, {.wide_kernels = false});
  constexpr std::size_t kPrefix =
      static_cast<std::size_t>(Ocb::kWidePrefixBlocks);
  for (std::size_t blocks : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                             std::size_t{7}, std::size_t{8}, std::size_t{31},
                             std::size_t{32}, std::size_t{33}, kPrefix,
                             kPrefix + 1, kPrefix + 65}) {
    for (std::size_t tail = 0; tail < 16; ++tail) {
      const std::size_t len = blocks * 16 + tail;
      const std::vector<std::uint8_t> pt = Pattern(len, 0x11);
      const Block nonce = NonceFromCounter(9000 + len);
      const auto cw = wide.Encrypt(nonce, pt);
      const auto cs = scalar.Encrypt(nonce, pt);
      ASSERT_EQ(cw, cs) << "len=" << len;
      // Cross-decryption: each path opens the other's output.
      auto ow = wide.Decrypt(nonce, cs);
      auto os = scalar.Decrypt(nonce, cw);
      ASSERT_TRUE(ow.ok() && os.ok()) << "len=" << len;
      EXPECT_EQ(*ow, pt);
      EXPECT_EQ(*os, pt);
    }
  }
}

TEST(OcbTest, SoftwareBackendMatchesAuto) {
  // Same ciphertext regardless of cipher backend: the sealed relations a
  // software-only provider produces open on an AES-NI coprocessor and
  // vice versa.
  const Block key = DeriveKey(5, "backend");
  const Ocb auto_ocb(key);
  const Ocb sw_ocb(key, {.backend = Aes128::Backend::kSoftware});
  for (std::size_t len : {0u, 5u, 16u, 40u, 513u}) {
    const std::vector<std::uint8_t> pt = Pattern(len, 0x77);
    const Block nonce = NonceFromCounter(700 + len);
    EXPECT_EQ(auto_ocb.Encrypt(nonce, pt), sw_ocb.Encrypt(nonce, pt))
        << "len=" << len;
  }
}

TEST(OcbStreamTest, NextBlocksMatchesNextBlock) {
  const Block key = DeriveKey(6, "stream");
  const Block nonce = NonceFromCounter(31337);
  for (std::size_t nblocks : {1u, 2u, 8u, 31u, 32u, 33u, 100u}) {
    const std::vector<std::uint8_t> pt = Pattern(nblocks * 16, 0x42);
    OcbStreamEncryptor one(key, nonce);
    std::vector<std::uint8_t> expect(pt.size());
    for (std::size_t b = 0; b < nblocks; ++b) {
      Block p;
      std::memcpy(p.data(), pt.data() + 16 * b, 16);
      const Block c = one.NextBlock(p);
      std::memcpy(expect.data() + 16 * b, c.data(), 16);
    }
    const Block tag_one = one.Finalize();

    OcbStreamEncryptor many(key, nonce);
    std::vector<std::uint8_t> got(pt.size());
    many.NextBlocks(pt.data(), got.data(), nblocks);
    EXPECT_EQ(got, expect) << "nblocks=" << nblocks;
    EXPECT_EQ(many.Finalize(), tag_one);

    OcbStreamDecryptor dec(key, nonce);
    std::vector<std::uint8_t> back(pt.size());
    dec.NextBlocks(got.data(), back.data(), nblocks);
    EXPECT_EQ(back, pt);
    EXPECT_TRUE(dec.Verify(tag_one).ok());
  }
}

TEST(OcbTest, TamperDetection) {
  const Ocb ocb(DeriveKey(2, "tamper"));
  std::vector<std::uint8_t> pt(48, 0xAB);
  const Block nonce = NonceFromCounter(5);
  auto sealed = ocb.Encrypt(nonce, pt);
  // Flip each byte in turn: every modification must be caught.
  for (std::size_t i = 0; i < sealed.size(); i += 7) {
    auto corrupted = sealed;
    corrupted[i] ^= 0x01;
    auto opened = ocb.Decrypt(nonce, corrupted);
    EXPECT_FALSE(opened.ok()) << "undetected corruption at byte " << i;
    EXPECT_EQ(opened.status().code(), StatusCode::kTampered);
  }
  // Wrong nonce must also fail authentication.
  EXPECT_FALSE(ocb.Decrypt(NonceFromCounter(6), sealed).ok());
}

TEST(OcbTest, SemanticSecurity) {
  // Same plaintext under different nonces: ciphertexts differ — the
  // property that makes decoys indistinguishable (Section 4.3).
  const Ocb ocb(DeriveKey(3, "sem"));
  const std::vector<std::uint8_t> pt(32, 0x00);
  const auto c1 = ocb.Encrypt(NonceFromCounter(1), pt);
  const auto c2 = ocb.Encrypt(NonceFromCounter(2), pt);
  EXPECT_NE(c1, c2);
}

TEST(OcbTest, BlockCipherCallCount) {
  // m + 2 calls for an m-block message (Section 3.3.3).
  EXPECT_EQ(Ocb::BlockCipherCalls(16), 3u);
  EXPECT_EQ(Ocb::BlockCipherCalls(32), 4u);
  EXPECT_EQ(Ocb::BlockCipherCalls(17), 4u);
  EXPECT_EQ(Ocb::BlockCipherCalls(0), 2u);
}

TEST(MlfsrTest, RejectsBadWidths) {
  EXPECT_FALSE(Mlfsr::Create(1, 1).ok());
  EXPECT_FALSE(Mlfsr::Create(64, 1).ok());
  EXPECT_TRUE(Mlfsr::Create(2, 1).ok());
  EXPECT_TRUE(Mlfsr::Create(63, 1).ok());
}

TEST(MlfsrTest, MaximalPeriodSmallWidths) {
  // Exhaustively verify maximality: the register must cycle through all
  // 2^l - 1 nonzero states before repeating. This validates the tap table.
  for (unsigned bits = 2; bits <= 16; ++bits) {
    auto reg = Mlfsr::Create(bits, 1);
    ASSERT_TRUE(reg.ok());
    const std::uint64_t period = reg->period();
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < period; ++i) {
      const std::uint64_t v = reg->Next();
      EXPECT_GE(v, 1u);
      EXPECT_LE(v, period);
      EXPECT_TRUE(seen.insert(v).second)
          << "width " << bits << " repeated state " << v << " at step " << i;
    }
    EXPECT_EQ(seen.size(), period) << "width " << bits << " not maximal";
  }
}

TEST(MlfsrTest, MaximalPeriodMediumWidths) {
  // Wider registers: verify via a cycle-length count (no set, O(1) memory).
  for (unsigned bits : {17u, 18u, 19u, 20u, 21u, 22u}) {
    auto reg = Mlfsr::Create(bits, 1);
    ASSERT_TRUE(reg.ok());
    const std::uint64_t start = reg->Next();
    std::uint64_t steps = 1;
    while (reg->Next() != start) ++steps;
    EXPECT_EQ(steps, reg->period()) << "width " << bits << " not maximal";
  }
}

TEST(MlfsrTest, BitsForCount) {
  EXPECT_EQ(Mlfsr::BitsForCount(1), 2u);
  EXPECT_EQ(Mlfsr::BitsForCount(3), 2u);
  EXPECT_EQ(Mlfsr::BitsForCount(4), 3u);
  EXPECT_EQ(Mlfsr::BitsForCount(640000), 20u);
}

TEST(RandomOrderTest, VisitsEveryIndexExactlyOnce) {
  for (std::uint64_t count : {1u, 5u, 64u, 100u, 1000u}) {
    auto order = RandomOrder::Create(count, 0xABCD);
    ASSERT_TRUE(order.ok());
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t idx = order->Next();
      EXPECT_LT(idx, count);
      EXPECT_TRUE(seen.insert(idx).second) << "index " << idx << " repeated";
    }
    EXPECT_EQ(seen.size(), count);
  }
}

TEST(RandomOrderTest, OrderIsSeedDeterministicAndNonTrivial) {
  auto o1 = RandomOrder::Create(256, 11);
  auto o2 = RandomOrder::Create(256, 11);
  ASSERT_TRUE(o1.ok() && o2.ok());
  bool any_nonsequential = false;
  std::uint64_t prev = 0;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t a = o1->Next();
    EXPECT_EQ(a, o2->Next());
    if (i > 0 && a != prev + 1) any_nonsequential = true;
    prev = a;
  }
  EXPECT_TRUE(any_nonsequential) << "order should not be sequential";
}

TEST(KeyTest, DerivationIsDeterministicAndSeparated) {
  EXPECT_EQ(DeriveKey(1, "a"), DeriveKey(1, "a"));
  EXPECT_NE(DeriveKey(1, "a"), DeriveKey(2, "a"));
  EXPECT_NE(DeriveKey(1, "a"), DeriveKey(1, "b"));
  EXPECT_EQ(BlockToHex(Block{}), std::string(32, '0'));
}

}  // namespace
}  // namespace ppj::crypto
