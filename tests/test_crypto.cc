#include <set>

#include <gtest/gtest.h>

#include "crypto/aes128.h"
#include "crypto/key.h"
#include "crypto/mlfsr.h"
#include "crypto/ocb.h"

namespace ppj::crypto {
namespace {

TEST(Aes128Test, Fips197KnownAnswer) {
  // FIPS-197 Appendix C.1: AES-128 with key 000102...0f, plaintext
  // 00112233445566778899aabbccddeeff -> 69c4e0d86a7b0430d8cdb78070b4c55a.
  Block key, pt;
  for (int i = 0; i < 16; ++i) {
    key[i] = static_cast<std::uint8_t>(i);
    pt[i] = static_cast<std::uint8_t>(i * 0x11);
  }
  const Aes128 aes(key);
  const Block ct = aes.Encrypt(pt);
  const Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30,
                          0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4, 0xc5, 0x5a};
  EXPECT_EQ(ct, expected);
  EXPECT_EQ(aes.Decrypt(ct), pt);
}

TEST(Aes128Test, EncryptDecryptRoundTripMany) {
  const Aes128 aes(DeriveKey(42, "roundtrip"));
  Block b{};
  for (int i = 0; i < 100; ++i) {
    b[i % 16] ^= static_cast<std::uint8_t>(i * 37 + 1);
    EXPECT_EQ(aes.Decrypt(aes.Encrypt(b)), b);
  }
}

TEST(Aes128Test, GfDoubleKnownBehaviour) {
  Block zero{};
  EXPECT_EQ(GfDouble(zero), zero);
  // Doubling a block with only the top bit set reduces by the polynomial.
  Block top{};
  top[0] = 0x80;
  Block expect{};
  expect[15] = 0x87;
  EXPECT_EQ(GfDouble(top), expect);
  // Doubling with no carry is a plain left shift.
  Block one{};
  one[15] = 0x01;
  Block two{};
  two[15] = 0x02;
  EXPECT_EQ(GfDouble(one), two);
}

TEST(OcbTest, RoundTripVariousLengths) {
  const Ocb ocb(DeriveKey(1, "ocb"));
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 33u, 100u, 256u}) {
    std::vector<std::uint8_t> pt(len);
    for (std::size_t i = 0; i < len; ++i) {
      pt[i] = static_cast<std::uint8_t>(i * 13 + 7);
    }
    const Block nonce = NonceFromCounter(1000 + len);
    const auto sealed = ocb.Encrypt(nonce, pt);
    EXPECT_EQ(sealed.size(), len + Ocb::kTagSize);
    auto opened = ocb.Decrypt(nonce, sealed);
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_EQ(*opened, pt);
  }
}

TEST(OcbTest, TamperDetection) {
  const Ocb ocb(DeriveKey(2, "tamper"));
  std::vector<std::uint8_t> pt(48, 0xAB);
  const Block nonce = NonceFromCounter(5);
  auto sealed = ocb.Encrypt(nonce, pt);
  // Flip each byte in turn: every modification must be caught.
  for (std::size_t i = 0; i < sealed.size(); i += 7) {
    auto corrupted = sealed;
    corrupted[i] ^= 0x01;
    auto opened = ocb.Decrypt(nonce, corrupted);
    EXPECT_FALSE(opened.ok()) << "undetected corruption at byte " << i;
    EXPECT_EQ(opened.status().code(), StatusCode::kTampered);
  }
  // Wrong nonce must also fail authentication.
  EXPECT_FALSE(ocb.Decrypt(NonceFromCounter(6), sealed).ok());
}

TEST(OcbTest, SemanticSecurity) {
  // Same plaintext under different nonces: ciphertexts differ — the
  // property that makes decoys indistinguishable (Section 4.3).
  const Ocb ocb(DeriveKey(3, "sem"));
  const std::vector<std::uint8_t> pt(32, 0x00);
  const auto c1 = ocb.Encrypt(NonceFromCounter(1), pt);
  const auto c2 = ocb.Encrypt(NonceFromCounter(2), pt);
  EXPECT_NE(c1, c2);
}

TEST(OcbTest, BlockCipherCallCount) {
  // m + 2 calls for an m-block message (Section 3.3.3).
  EXPECT_EQ(Ocb::BlockCipherCalls(16), 3u);
  EXPECT_EQ(Ocb::BlockCipherCalls(32), 4u);
  EXPECT_EQ(Ocb::BlockCipherCalls(17), 4u);
  EXPECT_EQ(Ocb::BlockCipherCalls(0), 2u);
}

TEST(MlfsrTest, RejectsBadWidths) {
  EXPECT_FALSE(Mlfsr::Create(1, 1).ok());
  EXPECT_FALSE(Mlfsr::Create(64, 1).ok());
  EXPECT_TRUE(Mlfsr::Create(2, 1).ok());
  EXPECT_TRUE(Mlfsr::Create(63, 1).ok());
}

TEST(MlfsrTest, MaximalPeriodSmallWidths) {
  // Exhaustively verify maximality: the register must cycle through all
  // 2^l - 1 nonzero states before repeating. This validates the tap table.
  for (unsigned bits = 2; bits <= 16; ++bits) {
    auto reg = Mlfsr::Create(bits, 1);
    ASSERT_TRUE(reg.ok());
    const std::uint64_t period = reg->period();
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < period; ++i) {
      const std::uint64_t v = reg->Next();
      EXPECT_GE(v, 1u);
      EXPECT_LE(v, period);
      EXPECT_TRUE(seen.insert(v).second)
          << "width " << bits << " repeated state " << v << " at step " << i;
    }
    EXPECT_EQ(seen.size(), period) << "width " << bits << " not maximal";
  }
}

TEST(MlfsrTest, MaximalPeriodMediumWidths) {
  // Wider registers: verify via a cycle-length count (no set, O(1) memory).
  for (unsigned bits : {17u, 18u, 19u, 20u, 21u, 22u}) {
    auto reg = Mlfsr::Create(bits, 1);
    ASSERT_TRUE(reg.ok());
    const std::uint64_t start = reg->Next();
    std::uint64_t steps = 1;
    while (reg->Next() != start) ++steps;
    EXPECT_EQ(steps, reg->period()) << "width " << bits << " not maximal";
  }
}

TEST(MlfsrTest, BitsForCount) {
  EXPECT_EQ(Mlfsr::BitsForCount(1), 2u);
  EXPECT_EQ(Mlfsr::BitsForCount(3), 2u);
  EXPECT_EQ(Mlfsr::BitsForCount(4), 3u);
  EXPECT_EQ(Mlfsr::BitsForCount(640000), 20u);
}

TEST(RandomOrderTest, VisitsEveryIndexExactlyOnce) {
  for (std::uint64_t count : {1u, 5u, 64u, 100u, 1000u}) {
    auto order = RandomOrder::Create(count, 0xABCD);
    ASSERT_TRUE(order.ok());
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t idx = order->Next();
      EXPECT_LT(idx, count);
      EXPECT_TRUE(seen.insert(idx).second) << "index " << idx << " repeated";
    }
    EXPECT_EQ(seen.size(), count);
  }
}

TEST(RandomOrderTest, OrderIsSeedDeterministicAndNonTrivial) {
  auto o1 = RandomOrder::Create(256, 11);
  auto o2 = RandomOrder::Create(256, 11);
  ASSERT_TRUE(o1.ok() && o2.ok());
  bool any_nonsequential = false;
  std::uint64_t prev = 0;
  for (int i = 0; i < 256; ++i) {
    const std::uint64_t a = o1->Next();
    EXPECT_EQ(a, o2->Next());
    if (i > 0 && a != prev + 1) any_nonsequential = true;
    prev = a;
  }
  EXPECT_TRUE(any_nonsequential) << "order should not be sequential";
}

TEST(KeyTest, DerivationIsDeterministicAndSeparated) {
  EXPECT_EQ(DeriveKey(1, "a"), DeriveKey(1, "a"));
  EXPECT_NE(DeriveKey(1, "a"), DeriveKey(2, "a"));
  EXPECT_NE(DeriveKey(1, "a"), DeriveKey(1, "b"));
  EXPECT_EQ(BlockToHex(Block{}), std::string(32, '0'));
}

}  // namespace
}  // namespace ppj::crypto
