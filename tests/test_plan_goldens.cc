// Frozen pre-refactor fingerprint goldens for the plan-engine refactor.
//
// test_batching.cc proves *internal* consistency (batched == scalar,
// wide == narrow kernels); it would still pass if a refactor changed the
// access trace of both sides in lockstep. This suite freezes the absolute
// host-observable fingerprints — trace digest/count, timing digest/count,
// tuple transfers and cipher charges — of every algorithm x {scalar,
// batched} and of the parallel executors, captured from the hand-written
// pre-plan implementations. The operator/plan engine must reproduce them
// bit for bit.
//
// If a change legitimately alters an algorithm's observable behavior the
// constants below must be re-captured (run with PPJ_PRINT_GOLDENS=1 in the
// environment to get copy-pasteable actuals) and the change justified as a
// deliberate protocol change in the PR.

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "core/join_result.h"
#include "core/parallel.h"
#include "test_util.h"

namespace ppj::core {
namespace {

using relation::EquijoinSpec;
using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

/// The absolute host-observable record of one sequential execution.
struct Fingerprint {
  std::uint64_t trace_digest = 0;
  std::uint64_t trace_count = 0;
  std::uint64_t timing_digest = 0;
  std::uint64_t timing_count = 0;
  std::uint64_t transfers = 0;
  std::uint64_t cipher_calls = 0;
};

bool PrintGoldens() { return std::getenv("PPJ_PRINT_GOLDENS") != nullptr; }

void ExpectFingerprint(const char* label, const Fingerprint& expected,
                       const Fingerprint& actual) {
  if (PrintGoldens()) {
    ADD_FAILURE() << label << " = {0x" << std::hex << actual.trace_digest
                  << "ull, " << std::dec << actual.trace_count << ", 0x"
                  << std::hex << actual.timing_digest << "ull, " << std::dec
                  << actual.timing_count << ", " << actual.transfers << ", "
                  << actual.cipher_calls << "},";
    return;
  }
  EXPECT_EQ(expected.trace_digest, actual.trace_digest) << label;
  EXPECT_EQ(expected.trace_count, actual.trace_count) << label;
  EXPECT_EQ(expected.timing_digest, actual.timing_digest) << label;
  EXPECT_EQ(expected.timing_count, actual.timing_count) << label;
  EXPECT_EQ(expected.transfers, actual.transfers) << label;
  EXPECT_EQ(expected.cipher_calls, actual.cipher_calls) << label;
}

std::unique_ptr<TwoPartyWorld> MakeBatchWorld(
    relation::TwoTableWorkload workload, std::uint64_t memory_tuples,
    bool pad_pow2, std::uint64_t batch_slots) {
  auto world = MakeWorld(std::move(workload), memory_tuples, pad_pow2,
                         /*copro_seed=*/42);
  if (world == nullptr) return nullptr;
  world->copro = std::make_unique<sim::Coprocessor>(
      &world->host,
      sim::CoprocessorOptions{.memory_tuples = memory_tuples,
                              .seed = 42,
                              .batch_slots = batch_slots});
  return world;
}

Result<relation::TwoTableWorkload> Ch4Workload() {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 6;
  spec.seed = 5;
  return MakeEquijoinWorkload(spec);
}

Result<relation::TwoTableWorkload> Ch5Workload() {
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 12;
  spec.result_size = 9;
  spec.seed = 17;
  return MakeCellWorkload(spec);
}

Fingerprint Capture(const TwoPartyWorld& world) {
  Fingerprint fp;
  fp.trace_digest = world.copro->trace().fingerprint().digest;
  fp.trace_count = world.copro->trace().fingerprint().count;
  fp.timing_digest = world.copro->timing_fingerprint().digest;
  fp.timing_count = world.copro->timing_fingerprint().count;
  fp.transfers = world.copro->metrics().TupleTransfers();
  fp.cipher_calls = world.copro->metrics().cipher_calls;
  return fp;
}

// ---- Sequential: all six algorithms x {scalar, batched} ------------------

enum class Alg { kAlg1, kAlg1Variant, kAlg2, kAlg3, kAlg4, kAlg5, kAlg6 };

const char* AlgName(Alg a) {
  switch (a) {
    case Alg::kAlg1: return "alg1";
    case Alg::kAlg1Variant: return "alg1v";
    case Alg::kAlg2: return "alg2";
    case Alg::kAlg3: return "alg3";
    case Alg::kAlg4: return "alg4";
    case Alg::kAlg5: return "alg5";
    case Alg::kAlg6: return "alg6";
  }
  return "?";
}

Result<Fingerprint> RunSequential(Alg which, std::uint64_t batch_slots) {
  const bool ch4 = which == Alg::kAlg1 || which == Alg::kAlg1Variant ||
                   which == Alg::kAlg2 || which == Alg::kAlg3;
  PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                       ch4 ? Ch4Workload() : Ch5Workload());
  auto world = MakeBatchWorld(std::move(workload), /*memory_tuples=*/4,
                              which == Alg::kAlg3, batch_slots);
  if (world == nullptr) return Status::Internal("world construction failed");
  if (ch4) {
    TwoWayJoin join{world->a.get(), world->b.get(),
                    world->workload.predicate.get(), world->key_out.get()};
    Result<Ch4Outcome> outcome = Status::Internal("unreachable");
    switch (which) {
      case Alg::kAlg1:
        outcome = RunAlgorithm1(*world->copro, join, {.n = 4});
        break;
      case Alg::kAlg1Variant:
        outcome = RunAlgorithm1Variant(*world->copro, join, {.n = 4});
        break;
      case Alg::kAlg2:
        outcome = RunAlgorithm2(*world->copro, join, {.n = 4});
        break;
      case Alg::kAlg3:
        outcome = RunAlgorithm3(*world->copro, join, {.n = 4});
        break;
      default:
        break;
    }
    PPJ_RETURN_NOT_OK(outcome.status());
  } else {
    const relation::PairAsMultiway multiway(world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    Result<Ch5Outcome> outcome = Status::Internal("unreachable");
    switch (which) {
      case Alg::kAlg4:
        outcome = RunAlgorithm4(*world->copro, join);
        break;
      case Alg::kAlg5:
        outcome = RunAlgorithm5(*world->copro, join);
        break;
      case Alg::kAlg6:
        outcome = RunAlgorithm6(*world->copro, join,
                                {.epsilon = 1e-6, .order_seed = 0xBEEF});
        break;
      default:
        break;
    }
    PPJ_RETURN_NOT_OK(outcome.status());
  }
  return Capture(*world);
}

// Captured from the pre-plan hand-written drivers (commit 0084f1a) on the
// fixed workloads above; scalar (batch_slots=1) and batched (batch_slots=0)
// agree on every field by the test_batching invariant, so one table covers
// both modes.
struct SequentialGolden {
  Alg alg;
  Fingerprint fp;
};

const SequentialGolden kSequentialGoldens[] = {
    {Alg::kAlg1, {0xdef4020e60121a0dull, 3432, 0xe2c325f5f6bd5a25ull, 3432,
                  3400, 20128}},
    {Alg::kAlg1Variant, {0x7ecc8f25fb7178edull, 2856, 0xdb0ba7ffef09e465ull,
                         2856, 2824, 16672}},
    {Alg::kAlg2, {0xf1e1421856ba6855ull, 328, 0x69fea8580042b4a5ull, 328,
                  296, 1248}},
    {Alg::kAlg3, {0xa2d5359c0473a9d5ull, 776, 0xa2ea3cb2f5148065ull, 776,
                  744, 3552}},
    {Alg::kAlg4, {0x17ed116f4766293aull, 7148, 0x700411f0f2b24b10ull, 7148,
                  7139, 42626}},
    {Alg::kAlg5, {0x50d6bc674b03d4e6ull, 330, 0xe9d35686bf74a73dull, 330,
                  321, 1302}},
    {Alg::kAlg6, {0xafd20469dcccb421ull, 7321, 0xcc4202724ce8133bull, 7321,
                  7312, 43318}},
};

class FrozenSequentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FrozenSequentialTest, MatchesPrePlanFingerprints) {
  for (const SequentialGolden& golden : kSequentialGoldens) {
    auto actual = RunSequential(golden.alg, GetParam());
    ASSERT_TRUE(actual.ok()) << AlgName(golden.alg) << ": "
                             << actual.status();
    ExpectFingerprint(AlgName(golden.alg), golden.fp, *actual);
  }
}

INSTANTIATE_TEST_SUITE_P(ScalarAndBatched, FrozenSequentialTest,
                         ::testing::Values(std::uint64_t{1},
                                           std::uint64_t{0}),
                         [](const auto& pinfo) {
                           return pinfo.param == 1 ? "scalar" : "batched";
                         });

// ---- Parallel executors --------------------------------------------------

/// Parallel runs expose per-device transfer counters instead of one trace;
/// the frozen record is the paper's parallel cost model plus result shape.
struct ParallelFingerprint {
  std::uint64_t result_slots = 0;
  std::uint64_t makespan = 0;
  std::uint64_t total = 0;
  std::uint64_t cipher_calls = 0;
};

void ExpectParallel(const char* label, const ParallelFingerprint& expected,
                    const ParallelFingerprint& actual) {
  if (PrintGoldens()) {
    ADD_FAILURE() << label << " = {" << actual.result_slots << ", "
                  << actual.makespan << ", " << actual.total << ", "
                  << actual.cipher_calls << "},";
    return;
  }
  EXPECT_EQ(expected.result_slots, actual.result_slots) << label;
  EXPECT_EQ(expected.makespan, actual.makespan) << label;
  EXPECT_EQ(expected.total, actual.total) << label;
  EXPECT_EQ(expected.cipher_calls, actual.cipher_calls) << label;
}

template <typename Outcome>
ParallelFingerprint CaptureParallel(const Outcome& outcome,
                                    std::uint64_t result_slots) {
  ParallelFingerprint fp;
  fp.result_slots = result_slots;
  fp.makespan = outcome.makespan_transfers;
  for (const sim::TransferMetrics& m : outcome.per_coprocessor) {
    fp.total += m.TupleTransfers();
    fp.cipher_calls += m.cipher_calls;
  }
  return fp;
}

Result<ParallelFingerprint> RunParallel(Alg which, std::uint64_t batch_slots) {
  const sim::CoprocessorOptions base{
      .memory_tuples = 4, .seed = 1, .batch_slots = batch_slots};
  if (which == Alg::kAlg2) {
    PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload, Ch4Workload());
    auto world = MakeBatchWorld(std::move(workload), 4, false, batch_slots);
    if (world == nullptr) return Status::Internal("world construction failed");
    TwoWayJoin join{world->a.get(), world->b.get(),
                    world->workload.predicate.get(), world->key_out.get()};
    PPJ_ASSIGN_OR_RETURN(
        ParallelCh4Outcome outcome,
        RunParallelAlgorithm2(&world->host, join, /*n=*/4,
                              /*parallelism=*/2, base));
    return CaptureParallel(outcome, outcome.output_slots);
  }
  PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload, Ch5Workload());
  auto world = MakeBatchWorld(std::move(workload), 4, false, batch_slots);
  if (world == nullptr) return Status::Internal("world construction failed");
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  Result<ParallelOutcome> outcome = Status::Internal("unreachable");
  switch (which) {
    case Alg::kAlg4:
      outcome = RunParallelAlgorithm4(&world->host, join, 2, base);
      break;
    case Alg::kAlg5:
      outcome = RunParallelAlgorithm5(&world->host, join, 2, base);
      break;
    case Alg::kAlg6:
      outcome = RunParallelAlgorithm6(&world->host, join, 2, base,
                                      {.epsilon = 1e-6,
                                       .order_seed = 0xBEEF});
      break;
    default:
      return Status::Internal("not a parallel algorithm");
  }
  PPJ_RETURN_NOT_OK(outcome.status());
  return CaptureParallel(*outcome, outcome->result_size);
}

struct ParallelGolden {
  Alg alg;
  ParallelFingerprint fp;
};

const ParallelGolden kParallelGoldens[] = {
    {Alg::kAlg2, {32, 148, 296, 1248}},
    {Alg::kAlg4, {9, 3903, 7139, 42626}},
    {Alg::kAlg5, {9, 213, 425, 1718}},
    {Alg::kAlg6, {9, 3944, 7313, 43322}},
};

class FrozenParallelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrozenParallelTest, MatchesPrePlanCostModel) {
  for (const ParallelGolden& golden : kParallelGoldens) {
    auto actual = RunParallel(golden.alg, GetParam());
    ASSERT_TRUE(actual.ok()) << AlgName(golden.alg) << ": "
                             << actual.status();
    ExpectParallel(AlgName(golden.alg), golden.fp, *actual);
  }
}

INSTANTIATE_TEST_SUITE_P(ScalarAndBatched, FrozenParallelTest,
                         ::testing::Values(std::uint64_t{1},
                                           std::uint64_t{0}),
                         [](const auto& pinfo) {
                           return pinfo.param == 1 ? "scalar" : "batched";
                         });

}  // namespace
}  // namespace ppj::core
