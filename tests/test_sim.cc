#include <algorithm>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "crypto/key.h"
#include "sim/coprocessor.h"
#include "sim/host_store.h"
#include "sim/trace.h"
#include "sim/trace_stats.h"

namespace ppj::sim {
namespace {

TEST(HostStoreTest, RegionLifecycle) {
  HostStore host;
  const RegionId r = host.CreateRegion("data", 32, 10);
  EXPECT_EQ(host.RegionSlots(r), 10u);
  EXPECT_EQ(host.RegionSlotSize(r), 32u);
  EXPECT_EQ(host.RegionName(r), "data");

  std::vector<std::uint8_t> slot(32, 0xAA);
  EXPECT_TRUE(host.WriteSlot(r, 3, slot).ok());
  auto read = host.ReadSlot(r, 3);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, slot);
}

TEST(HostStoreTest, BoundsChecking) {
  HostStore host;
  const RegionId r = host.CreateRegion("data", 8, 2);
  EXPECT_EQ(host.ReadSlot(r, 2).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(host.ReadSlot(99, 0).status().code(), StatusCode::kOutOfRange);
  std::vector<std::uint8_t> wrong(7, 0);
  EXPECT_EQ(host.WriteSlot(r, 0, wrong).code(),
            StatusCode::kInvalidArgument);
}

TEST(HostStoreTest, ResizePreservesPrefix) {
  HostStore host;
  const RegionId r = host.CreateRegion("grow", 4, 1);
  std::vector<std::uint8_t> slot = {1, 2, 3, 4};
  ASSERT_TRUE(host.WriteSlot(r, 0, slot).ok());
  ASSERT_TRUE(host.ResizeRegion(r, 3).ok());
  EXPECT_EQ(*host.ReadSlot(r, 0), slot);
  EXPECT_EQ(*host.ReadSlot(r, 2), std::vector<std::uint8_t>(4, 0));
}

TEST(HostStoreTest, CorruptSlotFlipsOneBit) {
  HostStore host;
  const RegionId r = host.CreateRegion("x", 4, 1);
  ASSERT_TRUE(host.WriteSlot(r, 0, {0, 0, 0, 0}).ok());
  ASSERT_TRUE(host.CorruptSlot(r, 0, 9).ok());
  EXPECT_EQ((*host.ReadSlot(r, 0))[1], 0x02);
}

TEST(TraceTest, FingerprintIsOrderAndContentSensitive) {
  AccessTrace t1, t2;
  t1.Record(AccessOp::kGet, 0, 1);
  t1.Record(AccessOp::kPut, 0, 2);
  t2.Record(AccessOp::kPut, 0, 2);
  t2.Record(AccessOp::kGet, 0, 1);
  EXPECT_NE(t1.fingerprint(), t2.fingerprint());
  EXPECT_EQ(t1.event_count(), 2u);

  AccessTrace t3;
  t3.Record(AccessOp::kGet, 0, 1);
  t3.Record(AccessOp::kPut, 0, 2);
  EXPECT_EQ(t1.fingerprint(), t3.fingerprint());
}

TEST(TraceTest, RetentionCapAndDivergence) {
  AccessTrace small(2);
  small.Record(AccessOp::kGet, 0, 0);
  small.Record(AccessOp::kGet, 0, 1);
  small.Record(AccessOp::kGet, 0, 2);
  EXPECT_EQ(small.retained_events().size(), 2u);
  EXPECT_FALSE(small.complete());

  AccessTrace a, b;
  a.Record(AccessOp::kGet, 0, 0);
  a.Record(AccessOp::kGet, 0, 5);
  b.Record(AccessOp::kGet, 0, 0);
  b.Record(AccessOp::kGet, 0, 7);
  EXPECT_EQ(AccessTrace::FirstDivergence(a, b), 1);
  EXPECT_EQ(AccessTrace::FirstDivergence(a, a), -1);
}

class CoprocessorTest : public ::testing::Test {
 protected:
  CoprocessorTest()
      : copro_(&host_, CoprocessorOptions{.memory_tuples = 4, .seed = 7}),
        key_(crypto::DeriveKey(1, "test")) {}

  HostStore host_;
  Coprocessor copro_;
  crypto::Ocb key_;
};

TEST_F(CoprocessorTest, TransfersAreTracedAndCounted) {
  const RegionId r = host_.CreateRegion("r", 16, 4);
  ASSERT_TRUE(copro_.Put(r, 1, std::vector<std::uint8_t>(16, 9)).ok());
  ASSERT_TRUE(copro_.Get(r, 1).ok());
  ASSERT_TRUE(copro_.DiskWrite(r, 1).ok());
  EXPECT_EQ(copro_.metrics().puts, 1u);
  EXPECT_EQ(copro_.metrics().gets, 1u);
  EXPECT_EQ(copro_.metrics().disk_writes, 1u);
  EXPECT_EQ(copro_.metrics().TupleTransfers(), 2u);
  EXPECT_EQ(copro_.trace().event_count(), 3u);
  const auto& events = copro_.trace().retained_events();
  EXPECT_EQ(events[0].op, AccessOp::kPut);
  EXPECT_EQ(events[1].op, AccessOp::kGet);
  EXPECT_EQ(events[2].op, AccessOp::kDiskWrite);
}

TEST_F(CoprocessorTest, SealOpenRoundTrip) {
  const std::vector<std::uint8_t> plain = {1, 2, 3, 4, 5};
  const auto sealed = copro_.Seal(plain, key_);
  EXPECT_EQ(sealed.size(), Coprocessor::SealedSize(plain.size()));
  auto opened = copro_.Open(sealed, key_);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, plain);
  // Fresh nonces: sealing twice yields different ciphertexts.
  EXPECT_NE(copro_.Seal(plain, key_), copro_.Seal(plain, key_));
}

TEST_F(CoprocessorTest, HostTamperingIsDetected) {
  const RegionId r = host_.CreateRegion("r", Coprocessor::SealedSize(8), 1);
  ASSERT_TRUE(
      copro_.PutSealed(r, 0, std::vector<std::uint8_t>(8, 3), key_).ok());
  ASSERT_TRUE(copro_.GetOpen(r, 0, key_).ok());
  // Malicious host flips a ciphertext bit (skip the stored nonce: a nonce
  // flip is also caught, but we target the ciphertext path specifically).
  ASSERT_TRUE(host_.CorruptSlot(r, 0, 16 * 8 + 3).ok());
  auto opened = copro_.GetOpen(r, 0, key_);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kTampered);
}

TEST_F(CoprocessorTest, NonceTamperingIsDetected) {
  const RegionId r = host_.CreateRegion("r", Coprocessor::SealedSize(8), 1);
  ASSERT_TRUE(
      copro_.PutSealed(r, 0, std::vector<std::uint8_t>(8, 3), key_).ok());
  ASSERT_TRUE(host_.CorruptSlot(r, 0, 5).ok());  // inside the nonce
  EXPECT_EQ(copro_.GetOpen(r, 0, key_).status().code(),
            StatusCode::kTampered);
}

class PrefetchOpenTest : public CoprocessorTest {
 protected:
  // Provider-style sealing (counter 0), like EncryptedRelation::Seal.
  RegionId SealRegion(std::size_t plain_size, std::uint64_t slots) {
    const RegionId r =
        host_.CreateRegion("r", Coprocessor::SealedSize(plain_size), slots);
    for (std::uint64_t i = 0; i < slots; ++i) {
      const crypto::Block nonce = Coprocessor::PositionNonce(r, i, 0);
      std::vector<std::uint8_t> slot(Coprocessor::SealedSize(plain_size));
      std::memcpy(slot.data(), nonce.data(), crypto::Ocb::kBlockSize);
      const std::vector<std::uint8_t> plain(plain_size,
                                            static_cast<std::uint8_t>(i));
      key_.EncryptInto(nonce, plain.data(), plain.size(),
                       slot.data() + crypto::Ocb::kBlockSize);
      EXPECT_TRUE(host_.WriteSlot(r, i, slot).ok());
    }
    return r;
  }
};

TEST_F(PrefetchOpenTest, AccountingIdenticalWithAndWithoutPrefetch) {
  const RegionId r = SealRegion(8, 4);
  // Same host, two fresh devices: one consumes a prefetched run, the other
  // the lazy per-slot path. Every observable must coincide.
  Coprocessor lazy(&host_, CoprocessorOptions{.memory_tuples = 4, .seed = 7});
  Coprocessor eager(&host_, CoprocessorOptions{.memory_tuples = 4, .seed = 7});

  auto lazy_run = lazy.GetOpenRange(r, 0, 4, &key_);
  ASSERT_TRUE(lazy_run.ok());
  auto eager_run = eager.GetOpenRange(r, 0, 4, &key_);
  ASSERT_TRUE(eager_run.ok());
  ASSERT_TRUE(eager_run->PrefetchOpen().ok());

  for (std::uint64_t i = 0; i < 4; ++i) {
    auto a = lazy_run->NextOpen();
    auto b = eager_run->NextOpen();
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_TRUE(std::equal(a->begin(), a->end(), b->begin(), b->end()));
  }
  EXPECT_EQ(lazy.trace().fingerprint().digest,
            eager.trace().fingerprint().digest);
  EXPECT_EQ(lazy.timing_fingerprint().digest,
            eager.timing_fingerprint().digest);
  EXPECT_EQ(lazy.metrics().gets, eager.metrics().gets);
  EXPECT_EQ(lazy.metrics().cipher_calls, eager.metrics().cipher_calls);
  EXPECT_EQ(lazy.metrics().prefetch_opens, 0u);
  EXPECT_EQ(eager.metrics().prefetch_opens, 1u);
}

TEST_F(PrefetchOpenTest, TamperResponseFiresAtConsumptionNotPrefetch) {
  const RegionId r = SealRegion(8, 3);
  // Corrupt the ciphertext of slot 1 only (bit offset past the nonce).
  ASSERT_TRUE(host_.CorruptSlot(r, 1, crypto::Ocb::kBlockSize * 8 + 2).ok());
  auto run = copro_.GetOpenRange(r, 0, 3, &key_);
  ASSERT_TRUE(run.ok());
  // Prefetch decrypts everything — including the bad slot — but must not
  // trip the tamper response before the slot is actually consumed.
  ASSERT_TRUE(run->PrefetchOpen().ok());
  EXPECT_FALSE(copro_.disabled());
  EXPECT_TRUE(run->NextOpen().ok());
  const std::uint64_t calls_before_bad = copro_.metrics().cipher_calls;
  auto bad = run->NextOpen();
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTampered);
  // The failed open is still charged, exactly like the scalar path.
  EXPECT_GT(copro_.metrics().cipher_calls, calls_before_bad);
  EXPECT_TRUE(copro_.disabled());
}

TEST_F(PrefetchOpenTest, UnconsumedTamperedSlotNeverCharges) {
  const RegionId r = SealRegion(8, 3);
  ASSERT_TRUE(host_.CorruptSlot(r, 2, crypto::Ocb::kBlockSize * 8 + 2).ok());
  {
    auto run = copro_.GetOpenRange(r, 0, 3, &key_);
    ASSERT_TRUE(run.ok());
    ASSERT_TRUE(run->PrefetchOpen().ok());
    EXPECT_TRUE(run->NextOpen().ok());
    EXPECT_TRUE(run->NextOpen().ok());
    // Slot 2 is staged and prefetch-decrypted, but never consumed.
  }
  EXPECT_FALSE(copro_.disabled());
  EXPECT_EQ(copro_.metrics().gets, 2u);
  // Only the two consumed slots were charged.
  EXPECT_EQ(copro_.metrics().cipher_calls,
            2 * crypto::Ocb::BlockCipherCalls(8));
}

TEST_F(CoprocessorTest, MemoryReservationEnforced) {
  EXPECT_TRUE(copro_.Reserve(3).ok());
  EXPECT_EQ(copro_.free_slots(), 1u);
  EXPECT_EQ(copro_.Reserve(2).code(), StatusCode::kCapacityExceeded);
  copro_.Release(3);
  EXPECT_EQ(copro_.free_slots(), 4u);
}

TEST_F(CoprocessorTest, SecureBufferRespectsCapacity) {
  auto buffer = SecureBuffer::Allocate(copro_, 2);
  ASSERT_TRUE(buffer.ok());
  EXPECT_EQ(copro_.free_slots(), 2u);
  EXPECT_TRUE(buffer->Push({1}).ok());
  EXPECT_TRUE(buffer->Push({2}).ok());
  EXPECT_TRUE(buffer->full());
  EXPECT_EQ(buffer->Push({3}).code(), StatusCode::kCapacityExceeded);
  buffer->Clear();
  EXPECT_TRUE(buffer->Push({4}).ok());
  EXPECT_EQ(buffer->At(0), std::vector<std::uint8_t>{4});
}

TEST_F(CoprocessorTest, SecureBufferReleasesOnDestruction) {
  {
    auto buffer = SecureBuffer::Allocate(copro_, 4);
    ASSERT_TRUE(buffer.ok());
    EXPECT_EQ(copro_.free_slots(), 0u);
    auto denied = SecureBuffer::Allocate(copro_, 1);
    EXPECT_FALSE(denied.ok());
    // Move semantics keep a single owner.
    SecureBuffer moved = std::move(*buffer);
    EXPECT_EQ(copro_.free_slots(), 0u);
  }
  EXPECT_EQ(copro_.free_slots(), 4u);
}

TEST(TraceStatsTest, SummaryCountsAndSequentiality) {
  AccessTrace trace;
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.Record(AccessOp::kGet, 0, i);  // fully sequential region 0
  }
  trace.Record(AccessOp::kPut, 1, 5);
  trace.Record(AccessOp::kPut, 1, 2);  // non-sequential region 1
  trace.Record(AccessOp::kDiskWrite, 1, 2);

  const TraceSummary summary = SummarizeTrace(trace);
  EXPECT_EQ(summary.total_events, 13u);
  ASSERT_TRUE(summary.regions.contains(0));
  ASSERT_TRUE(summary.regions.contains(1));
  const RegionAccessStats& r0 = summary.regions.at(0);
  EXPECT_EQ(r0.gets, 10u);
  EXPECT_EQ(r0.min_index, 0u);
  EXPECT_EQ(r0.max_index, 9u);
  EXPECT_DOUBLE_EQ(r0.sequential_fraction, 1.0);
  const RegionAccessStats& r1 = summary.regions.at(1);
  EXPECT_EQ(r1.puts, 2u);
  EXPECT_EQ(r1.disk_writes, 1u);
  EXPECT_LT(r1.sequential_fraction, 0.5);
  EXPECT_FALSE(summary.ToString().empty());
}

TEST(TraceStatsTest, DiffFlagsDivergentRegions) {
  AccessTrace a, b;
  a.Record(AccessOp::kGet, 0, 1);
  a.Record(AccessOp::kGet, 2, 0);
  b.Record(AccessOp::kGet, 0, 1);
  b.Record(AccessOp::kPut, 0, 1);
  const auto diffs =
      DiffSummaries(SummarizeTrace(a), SummarizeTrace(b));
  EXPECT_FALSE(diffs.empty());
  EXPECT_TRUE(DiffSummaries(SummarizeTrace(a), SummarizeTrace(a)).empty());
}

TEST_F(CoprocessorTest, FixedTimeAccounting) {
  copro_.NoteComparison();
  copro_.NoteComparison();
  copro_.NoteITupleRead();
  copro_.BurnCycles(100);
  EXPECT_EQ(copro_.metrics().comparisons, 2u);
  EXPECT_EQ(copro_.metrics().ituple_reads, 1u);
  EXPECT_GT(copro_.metrics().padded_cycles, 100u);
}

}  // namespace
}  // namespace ppj::sim
