#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/math.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"

namespace ppj {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Tampered("bad tag");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kTampered);
  EXPECT_EQ(s.message(), "bad tag");
  EXPECT_EQ(s.ToString(), "TAMPERED: bad tag");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_NE(StatusCodeToString(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fn = [](bool fail) -> Status {
    PPJ_RETURN_NOT_OK(fail ? Status::NotFound("x") : Status::OK());
    return Status::InvalidArgument("reached");
  };
  EXPECT_EQ(fn(true).code(), StatusCode::kNotFound);
  EXPECT_EQ(fn(false).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("oops"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Result<int>(Status::Internal("e")).ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::NotFound("inner");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    PPJ_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 11);
  EXPECT_EQ(outer(true).status().code(), StatusCode::kNotFound);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 5), 2u);
  EXPECT_EQ(CeilDiv(11, 5), 3u);
  EXPECT_EQ(CeilDiv(0, 5), 0u);
  EXPECT_EQ(CeilDiv(1, 1), 1u);
}

TEST(MathTest, PowersOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1023), 1024u);
  EXPECT_TRUE(IsPowerOfTwo(64));
  EXPECT_FALSE(IsPowerOfTwo(65));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(1024), 10u);
  EXPECT_EQ(FloorLog2(1025), 10u);
}

TEST(MathTest, LogBinomialMatchesExactSmall) {
  // C(10, 3) = 120
  EXPECT_NEAR(std::exp(LogBinomial(10, 3)), 120.0, 1e-9);
  EXPECT_DOUBLE_EQ(LogBinomial(10, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(10, 10), 0.0);
  // C(52, 5) = 2598960
  EXPECT_NEAR(std::exp(LogBinomial(52, 5)), 2598960.0, 1e-3);
}

TEST(MathTest, LogSumExpStable) {
  EXPECT_NEAR(LogSumExp(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  const double ninf = -std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(LogSumExp(ninf, 1.5), 1.5);
  EXPECT_DOUBLE_EQ(LogSumExp(1.5, ninf), 1.5);
  // Huge magnitude difference must not overflow.
  EXPECT_NEAR(LogSumExp(-1000.0, -1.0), -1.0, 1e-12);
}

TEST(MathTest, BitonicCostFormula) {
  // n (log2 n)^2 for n = 1024: 1024 * 100
  EXPECT_NEAR(BitonicTransferCost(1024), 102400.0, 1e-9);
  EXPECT_DOUBLE_EQ(BitonicTransferCost(1), 0.0);
  // Exact comparator count for a power-of-two network:
  // (n/2) * lg(lg+1)/2 = 512 * 55 for n = 1024.
  EXPECT_EQ(BitonicExactComparators(1024), 512u * 55u);
  EXPECT_EQ(BitonicExactComparators(1), 0u);
  EXPECT_EQ(BitonicExactComparators(2), 1u);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(RngTest, BoundedValuesInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    const std::int64_t v = rng.NextInRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> orig = v;
  rng.Shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(HashTest, Fnv1aKnownValue) {
  // FNV-1a 64 of empty input is the offset basis.
  EXPECT_EQ(Fnv1a64(nullptr, 0), 0xcbf29ce484222325ULL);
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("b", 1));
}

TEST(HashTest, RunningHashOrderSensitive) {
  RunningHash h1, h2;
  h1.UpdateU64(1);
  h1.UpdateU64(2);
  h2.UpdateU64(2);
  h2.UpdateU64(1);
  EXPECT_NE(h1.digest(), h2.digest());
  EXPECT_EQ(h1.count(), 2u);
  h1.Reset();
  RunningHash fresh;
  EXPECT_TRUE(h1 == fresh);
}

}  // namespace
}  // namespace ppj
