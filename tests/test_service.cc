#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/plain_join.h"
#include "relation/generator.h"
#include "service/service.h"
#include "crypto/key.h"
#include "sim/storage_backend.h"

namespace ppj::service {
namespace {

using relation::EquijoinSpec;
using relation::MakeEquijoinWorkload;

/// Registers the canonical three parties and a two-provider contract.
class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(service_.RegisterParty("airline", 101).ok());
    ASSERT_TRUE(service_.RegisterParty("agency", 102).ok());
    ASSERT_TRUE(service_.RegisterParty("analyst", 103).ok());
    auto contract = service_.CreateContract(
        {"airline", "agency"}, "analyst", "passenger.key == watchlist.key");
    ASSERT_TRUE(contract.ok()) << contract.status();
    contract_ = *contract;
  }

  Result<relation::TwoTableWorkload> Workload(std::uint64_t seed = 1) {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 9;
    spec.seed = seed;
    return MakeEquijoinWorkload(spec);
  }

  Status Submit(const relation::TwoTableWorkload& w, bool pad = false) {
    PPJ_RETURN_NOT_OK(
        service_.SubmitRelation(contract_, "airline", *w.a, pad));
    return service_.SubmitRelation(contract_, "agency", *w.b, pad);
  }

  SovereignJoinService service_;
  std::string contract_;
};

TEST_F(ServiceTest, RejectsDuplicatePartyAndUnknownContract) {
  EXPECT_EQ(service_.RegisterParty("airline", 1).code(),
            StatusCode::kAlreadyExists);
  auto w = Workload();
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(service_.SubmitRelation("contract-99", "airline", *w->a).code(),
            StatusCode::kNotFound);
}

TEST_F(ServiceTest, ContractArbitrationRefusesOutsiders) {
  auto w = Workload();
  ASSERT_TRUE(w.ok());
  // The analyst is the recipient, not a provider: submission refused.
  EXPECT_EQ(service_.SubmitRelation(contract_, "analyst", *w->a).code(),
            StatusCode::kPrivacyViolation);
  // Unregistered parties cannot even appear in contracts.
  EXPECT_EQ(
      service_.CreateContract({"airline", "ghost"}, "analyst", "x").status()
          .code(),
      StatusCode::kNotFound);
}

TEST_F(ServiceTest, ExecutionNeedsAllSubmissions) {
  auto w = Workload();
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(service_.SubmitRelation(contract_, "airline", *w->a).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  auto delivery = service_.ExecuteJoin(contract_, *w->predicate, options);
  EXPECT_EQ(delivery.status().code(), StatusCode::kFailedPrecondition);
}

class ServiceAlgorithmTest
    : public ServiceTest,
      public ::testing::WithParamInterface<core::Algorithm> {};

TEST_P(ServiceAlgorithmTest, EndToEndDeliversExactJoin) {
  const core::Algorithm alg = GetParam();
  auto w = Workload(7);
  ASSERT_TRUE(w.ok());
  const bool needs_pad = alg == core::Algorithm::kAlgorithm3;
  ASSERT_TRUE(Submit(*w, needs_pad).ok());

  ExecuteOptions options;
  options.algorithm = alg;
  options.n = w->max_matches_per_a;
  options.memory_tuples = 6;
  auto delivery = service_.ExecuteJoin(contract_, *w->predicate, options);
  ASSERT_TRUE(delivery.ok()) << delivery.status() << " for "
                             << ToString(alg);

  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *w->a, *w->b, *w->predicate, delivery->result_schema.get());
  EXPECT_TRUE(relation::SameTupleMultiset(delivery->tuples, truth.expected))
      << ToString(alg) << ": got " << delivery->tuples.size() << ", want "
      << truth.expected.size();
  EXPECT_GT(delivery->metrics.TupleTransfers(), 0u);
  EXPECT_FALSE(delivery->blemish);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ServiceAlgorithmTest,
    ::testing::Values(core::Algorithm::kAlgorithm1,
                      core::Algorithm::kAlgorithm1Variant,
                      core::Algorithm::kAlgorithm2, core::Algorithm::kAlgorithm3,
                      core::Algorithm::kAlgorithm4, core::Algorithm::kAlgorithm5,
                      core::Algorithm::kAlgorithm6),
    [](const ::testing::TestParamInfo<core::Algorithm>& param_info) {
      std::string name = ToString(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST_F(ServiceTest, Chapter4OutputShapeHidesS) {
  // The host-observable output of a Chapter 4 run is N|A| slots; the
  // recipient sees only the true results after decoy filtering.
  auto w = Workload(3);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm2;
  options.n = 4;
  auto delivery = service_.ExecuteJoin(contract_, *w->predicate, options);
  ASSERT_TRUE(delivery.ok());
  EXPECT_EQ(delivery->observable_output_slots, 8u * 4u);
  EXPECT_EQ(delivery->tuples.size(), 9u);
}

TEST_F(ServiceTest, MultiwayThreeProviderJoin) {
  SovereignJoinService service;
  ASSERT_TRUE(service.RegisterParty("h1", 1).ok());
  ASSERT_TRUE(service.RegisterParty("h2", 2).ok());
  ASSERT_TRUE(service.RegisterParty("h3", 3).ok());
  ASSERT_TRUE(service.RegisterParty("research", 4).ok());
  auto contract =
      service.CreateContract({"h1", "h2", "h3"}, "research", "chain-eq");
  ASSERT_TRUE(contract.ok());

  relation::Schema schema({relation::Schema::Int64("k")});
  auto mk = [&](const std::string& name, std::vector<std::int64_t> keys) {
    auto rel = std::make_unique<relation::Relation>(
        name, relation::Schema(schema));
    for (std::int64_t k : keys) EXPECT_TRUE(rel->Append({k}).ok());
    return rel;
  };
  const auto x1 = mk("X1", {1, 2, 3});
  const auto x2 = mk("X2", {2, 3, 3});
  const auto x3 = mk("X3", {3, 5, 2});
  ASSERT_TRUE(service.SubmitRelation(*contract, "h1", *x1).ok());
  ASSERT_TRUE(service.SubmitRelation(*contract, "h2", *x2).ok());
  ASSERT_TRUE(service.SubmitRelation(*contract, "h3", *x3).ok());

  const relation::EqualityPredicate eq(0, 0);
  const relation::ChainPredicate chain({&eq, &eq});
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm4;
  auto delivery = service.ExecuteMultiwayJoin(*contract, chain, options);
  ASSERT_TRUE(delivery.ok()) << delivery.status();
  // k=2: 1*1*1 = 1; k=3: 1*2*1 = 2 -> S = 3.
  EXPECT_EQ(delivery->tuples.size(), 3u);
  // Chapter 4 algorithms must refuse multiway contracts.
  options.algorithm = core::Algorithm::kAlgorithm1;
  EXPECT_FALSE(service.ExecuteMultiwayJoin(*contract, chain, options).ok());
}

TEST_F(ServiceTest, RecipientDifferentKeysCannotCrossDecrypt) {
  // The delivery is sealed for the analyst: decoding the output region with
  // a provider's key must fail authentication. (Exercised indirectly: the
  // service decodes with the right key; here we verify the provider keys
  // differ from the output key by attempting a cross-decrypt.)
  auto w = Workload(11);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  auto delivery = service_.ExecuteJoin(contract_, *w->predicate, options);
  ASSERT_TRUE(delivery.ok());
  EXPECT_EQ(delivery->tuples.size(), 9u);
}

TEST_F(ServiceTest, ContractEnforcesPermittedPredicate) {
  // "only:<name>" contracts refuse every other predicate at the
  // coprocessor before any data is read.
  SovereignJoinService service;
  ASSERT_TRUE(service.RegisterParty("a", 1).ok());
  ASSERT_TRUE(service.RegisterParty("b", 2).ok());
  ASSERT_TRUE(service.RegisterParty("c", 3).ok());
  const relation::EqualityPredicate allowed(1, 1);
  auto contract =
      service.CreateContract({"a", "b"}, "c", "only:" + allowed.name());
  ASSERT_TRUE(contract.ok());
  auto w = Workload(51);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(service.SubmitRelation(*contract, "a", *w->a).ok());
  ASSERT_TRUE(service.SubmitRelation(*contract, "b", *w->b).ok());

  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  // Allowed predicate: executes.
  EXPECT_TRUE(service.ExecuteJoin(*contract, allowed, options).ok());
  // Different predicate: refused as a privacy violation.
  const relation::LessThanPredicate forbidden(1, 1);
  EXPECT_EQ(service.ExecuteJoin(*contract, forbidden, options)
                .status()
                .code(),
            StatusCode::kPrivacyViolation);
  // Aggregates obey the same arbitration.
  const relation::PairAsMultiway forbidden_multiway(&forbidden);
  EXPECT_EQ(service
                .ExecuteAggregate(*contract, forbidden_multiway,
                                  {.kind = core::AggregateKind::kCount},
                                  options)
                .status()
                .code(),
            StatusCode::kPrivacyViolation);
}

TEST_F(ServiceTest, FileBackedServiceDeliversExactJoin) {
  const auto dir = std::filesystem::temp_directory_path() / "ppj-svc-disk";
  std::filesystem::remove_all(dir);
  auto backend = sim::MakeFileBackend(dir.string());
  ASSERT_TRUE(backend.ok());
  SovereignJoinService service(std::move(*backend));
  ASSERT_TRUE(service.RegisterParty("a", 1).ok());
  ASSERT_TRUE(service.RegisterParty("b", 2).ok());
  ASSERT_TRUE(service.RegisterParty("c", 3).ok());
  auto contract = service.CreateContract({"a", "b"}, "c", "eq");
  ASSERT_TRUE(contract.ok());
  auto w = Workload(52);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(service.SubmitRelation(*contract, "a", *w->a).ok());
  ASSERT_TRUE(service.SubmitRelation(*contract, "b", *w->b).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  auto delivery = service.ExecuteJoin(*contract, *w->predicate, options);
  ASSERT_TRUE(delivery.ok()) << delivery.status();
  EXPECT_EQ(delivery->tuples.size(), 9u);
  // The adversary's view is literally on disk.
  EXPECT_TRUE(std::filesystem::exists(dir / "region-0.bin"));
}

TEST_F(ServiceTest, AttestationVerifiesForGenuineService) {
  // A party checks outbound authentication before submitting anything.
  EXPECT_TRUE(SovereignJoinService::VerifyAttestation(
                  ManufacturerRootKey(), service_.attestation())
                  .ok());
  // A chain tampered in transit — or from a counterfeit device — fails.
  auto forged = service_.attestation();
  forged[2].layer.code_digest ^= 1;
  EXPECT_EQ(SovereignJoinService::VerifyAttestation(ManufacturerRootKey(),
                                                    forged)
                .code(),
            StatusCode::kTampered);
  EXPECT_FALSE(SovereignJoinService::VerifyAttestation(
                   crypto::DeriveKey(999, "not-the-root"),
                   service_.attestation())
                   .ok());
}

TEST_F(ServiceTest, AutoAlgorithmSelectionWorksEndToEnd) {
  auto w = Workload(21);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w, /*pad=*/true).ok());
  ExecuteOptions options;
  options.algorithm = kAuto;
  options.n = w->max_matches_per_a;
  options.memory_tuples = 8;
  options.epsilon = 1e-9;
  auto delivery = service_.ExecuteJoin(contract_, *w->predicate, options);
  ASSERT_TRUE(delivery.ok()) << delivery.status();
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *w->a, *w->b, *w->predicate, delivery->result_schema.get());
  EXPECT_TRUE(relation::SameTupleMultiset(delivery->tuples, truth.expected));
}

TEST_F(ServiceTest, ParallelMultiwayExecutionDeliversExactJoin) {
  auto w = Workload(41);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  const relation::PairAsMultiway multiway(w->predicate.get());
  for (core::Algorithm alg : {core::Algorithm::kAlgorithm4,
                            core::Algorithm::kAlgorithm5,
                            core::Algorithm::kAlgorithm6}) {
    ExecuteOptions options;
    options.algorithm = alg;
    options.memory_tuples = 4;
    options.parallelism = 3;
    options.epsilon = 1e-6;
    auto delivery =
        service_.ExecuteMultiwayJoin(contract_, multiway, options);
    ASSERT_TRUE(delivery.ok()) << ToString(alg) << ": "
                               << delivery.status();
    EXPECT_EQ(delivery->tuples.size(), 9u) << ToString(alg);
    EXPECT_GT(delivery->metrics.TupleTransfers(), 0u);
  }
}

TEST_F(ServiceTest, AggregateCountOverJoin) {
  auto w = Workload(31);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  const relation::PairAsMultiway multiway(w->predicate.get());
  ExecuteOptions options;
  options.memory_tuples = 4;
  auto result = service_.ExecuteAggregate(
      contract_, multiway, {.kind = core::AggregateKind::kCount}, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->count, 9);  // the workload's S
}

TEST_F(ServiceTest, AggregateSumOverJoinColumn) {
  auto w = Workload(32);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  const relation::PairAsMultiway multiway(w->predicate.get());
  core::AggregateSpec agg;
  agg.kind = core::AggregateKind::kSum;
  agg.table = 1;   // B side
  agg.column = 1;  // key column
  auto result =
      service_.ExecuteAggregate(contract_, multiway, agg, ExecuteOptions{});
  ASSERT_TRUE(result.ok());
  std::int64_t expected = 0;
  for (const auto& ta : w->a->tuples()) {
    for (const auto& tb : w->b->tuples()) {
      if (w->predicate->Match(ta, tb)) expected += tb.GetInt64(1);
    }
  }
  EXPECT_EQ(result->sum, expected);
}

TEST_F(ServiceTest, GroupByCountOverJoin) {
  auto w = Workload(71);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  const relation::PairAsMultiway multiway(w->predicate.get());
  core::GroupByCountSpec spec;
  spec.table = 0;   // A side
  spec.column = 1;  // the join key
  // The generator's match keys sit at key_base .. key_base+2 for seed 71:
  // derive the domain from the data to keep the test seed-agnostic.
  std::int64_t lo = w->a->tuple(0).GetInt64(1), hi = lo;
  for (const auto& t : w->a->tuples()) {
    lo = std::min(lo, t.GetInt64(1));
    hi = std::max(hi, t.GetInt64(1));
  }
  spec.domain_lo = lo;
  spec.domain_hi = std::min<std::int64_t>(hi, lo + 1000);
  auto hist = service_.ExecuteGroupByCount(contract_, multiway, spec,
                                           ExecuteOptions{});
  ASSERT_TRUE(hist.ok()) << hist.status();
  std::int64_t total = hist->overflow;
  for (std::int64_t c : hist->counts) total += c;
  EXPECT_EQ(total, 9);  // every match lands somewhere
}

TEST_F(ServiceTest, ContractsAreIsolated) {
  // Two contracts on one service: executing one never sees the other's
  // submissions, and deliveries match each contract's own providers.
  SovereignJoinService service;
  for (const char* p : {"a1", "b1", "a2", "b2", "r"}) {
    ASSERT_TRUE(service.RegisterParty(p, 7).ok());
  }
  auto c1 = service.CreateContract({"a1", "b1"}, "r", "one");
  auto c2 = service.CreateContract({"a2", "b2"}, "r", "two");
  ASSERT_TRUE(c1.ok() && c2.ok());

  auto w1 = Workload(61);
  auto w2 = Workload(62);
  ASSERT_TRUE(w1.ok() && w2.ok());
  ASSERT_TRUE(service.SubmitRelation(*c1, "a1", *w1->a).ok());
  ASSERT_TRUE(service.SubmitRelation(*c1, "b1", *w1->b).ok());
  // a1 cannot submit into contract 2.
  EXPECT_EQ(service.SubmitRelation(*c2, "a1", *w2->a).code(),
            StatusCode::kPrivacyViolation);
  ASSERT_TRUE(service.SubmitRelation(*c2, "a2", *w2->a).ok());
  ASSERT_TRUE(service.SubmitRelation(*c2, "b2", *w2->b).ok());

  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  auto d1 = service.ExecuteJoin(*c1, *w1->predicate, options);
  auto d2 = service.ExecuteJoin(*c2, *w2->predicate, options);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->tuples.size(), 9u);
  EXPECT_EQ(d2->tuples.size(), 9u);
  // Different content (different seeds) -> different tuples.
  EXPECT_FALSE(relation::SameTupleMultiset(d1->tuples, d2->tuples));
}

TEST_F(ServiceTest, TraceFingerprintStableAcrossContentChanges) {
  // Service-level repetition of the Definition 3 audit: same shapes,
  // different contents, same trace.
  auto run = [&](std::uint64_t seed) {
    SovereignJoinService service;
    EXPECT_TRUE(service.RegisterParty("a", 1).ok());
    EXPECT_TRUE(service.RegisterParty("b", 2).ok());
    EXPECT_TRUE(service.RegisterParty("c", 3).ok());
    auto contract = service.CreateContract({"a", "b"}, "c", "eq");
    EXPECT_TRUE(contract.ok());
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 9;
    spec.seed = seed;
    auto w = MakeEquijoinWorkload(spec);
    EXPECT_TRUE(w.ok());
    EXPECT_TRUE(service.SubmitRelation(*contract, "a", *w->a).ok());
    EXPECT_TRUE(service.SubmitRelation(*contract, "b", *w->b).ok());
    ExecuteOptions options;
    options.algorithm = core::Algorithm::kAlgorithm5;
    options.seed = 77;
    auto delivery = service.ExecuteJoin(*contract, *w->predicate, options);
    EXPECT_TRUE(delivery.ok());
    return delivery->trace;
  };
  EXPECT_EQ(run(100), run(200));
}

// ---- The unified async request API + contract scheduler -------------------

TEST_F(ServiceTest, SubmitWaitTicketLifecycle) {
  auto w = Workload(21);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;

  auto ticket = service_.Submit(
      contract_, JoinRequest::PairJoin(*w->predicate), options);
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  EXPECT_TRUE(static_cast<bool>(*ticket));

  auto response = service_.Wait(*ticket);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(service_.Poll(*ticket), TicketStatus::kDone);
  EXPECT_EQ(response->kind, JoinRequest::Kind::kPairJoin);
  ASSERT_TRUE(response->delivery.has_value());
  EXPECT_EQ(response->delivery->tuples.size(), 9u);
  EXPECT_FALSE(response->reused);
  EXPECT_FALSE(service_.post_mortem(*ticket).has_value());

  // The response is single-consume; the ticket survives until Release.
  EXPECT_EQ(service_.Wait(*ticket).status().code(),
            StatusCode::kFailedPrecondition);
  service_.Release(*ticket);
  EXPECT_EQ(service_.Poll(*ticket), TicketStatus::kUnknown);
  EXPECT_EQ(service_.Wait(*ticket).status().code(), StatusCode::kNotFound);
}

TEST_F(ServiceTest, UnifiedRequestCoversAllFourKinds) {
  auto w = Workload(23);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  const relation::PairAsMultiway multiway(w->predicate.get());

  auto join = service_.Execute(
      contract_, JoinRequest::PairJoin(*w->predicate), options);
  ASSERT_TRUE(join.ok()) << join.status();
  ASSERT_TRUE(join->delivery.has_value());

  auto mjoin = service_.Execute(
      contract_, JoinRequest::MultiwayJoin(multiway), options);
  ASSERT_TRUE(mjoin.ok()) << mjoin.status();
  ASSERT_TRUE(mjoin->delivery.has_value());
  EXPECT_EQ(mjoin->delivery->tuples.size(), join->delivery->tuples.size());

  auto agg = service_.Execute(
      contract_,
      JoinRequest::Aggregate(multiway, {.kind = core::AggregateKind::kCount}),
      options);
  ASSERT_TRUE(agg.ok()) << agg.status();
  ASSERT_TRUE(agg->aggregate.has_value());
  EXPECT_EQ(static_cast<std::size_t>(agg->aggregate->count),
            join->delivery->tuples.size());

  core::GroupByCountSpec spec;
  spec.table = 0;
  spec.column = 0;
  spec.domain_lo = 0;
  spec.domain_hi = 63;
  auto gb = service_.Execute(contract_,
                             JoinRequest::GroupByCount(multiway, spec),
                             options);
  ASSERT_TRUE(gb.ok()) << gb.status();
  ASSERT_TRUE(gb->group_by.has_value());
  std::int64_t total = gb->group_by->overflow;
  for (std::int64_t c : gb->group_by->counts) total += c;
  EXPECT_EQ(static_cast<std::size_t>(total), join->delivery->tuples.size());
}

TEST_F(ServiceTest, OptionQuotaViolationsGetDistinctStatusCode) {
  SchedulerOptions sched;
  sched.quotas.max_parallelism = 2;
  sched.quotas.max_memory_tuples = 64;
  ASSERT_TRUE(service_.ConfigureScheduler(sched).ok());
  auto w = Workload(31);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());

  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.parallelism = 3;  // over the quota of 2
  auto over_parallel = service_.Submit(
      contract_, JoinRequest::PairJoin(*w->predicate), options);
  EXPECT_EQ(over_parallel.status().code(), StatusCode::kQuotaExceeded);

  options.parallelism = 1;
  options.memory_tuples = 128;  // over the quota of 64
  auto over_memory = service_.Submit(
      contract_, JoinRequest::PairJoin(*w->predicate), options);
  EXPECT_EQ(over_memory.status().code(), StatusCode::kQuotaExceeded);
  // An admission refusal never issues a ticket, so there is no per-ticket
  // post-mortem to read — the status code is the whole diagnostic.

  // A merely contradictory option set stays kInvalidArgument — the caller
  // can tell "too much" from "nonsense".
  options.memory_tuples = 1;
  auto nonsense = service_.Submit(
      contract_, JoinRequest::PairJoin(*w->predicate), options);
  EXPECT_EQ(nonsense.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, AdmissionQueueQuotaRefusesExcessSubmits) {
  SchedulerOptions sched;
  sched.quotas.max_queued = 0;  // every enqueue refused
  ASSERT_TRUE(service_.ConfigureScheduler(sched).ok());
  auto w = Workload(33);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  auto ticket = service_.Submit(
      contract_, JoinRequest::PairJoin(*w->predicate), options);
  EXPECT_EQ(ticket.status().code(), StatusCode::kQuotaExceeded);
  EXPECT_EQ(service_.scheduler_stats().quota_rejected, 1u);
  EXPECT_EQ(service_.scheduler_stats().submitted, 0u);
}

TEST_F(ServiceTest, ConfigureSchedulerFreezesAfterFirstSubmit) {
  auto w = Workload(35);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  ASSERT_TRUE(service_
                  .Execute(contract_, JoinRequest::PairJoin(*w->predicate),
                           options)
                  .ok());
  EXPECT_EQ(service_.ConfigureScheduler(SchedulerOptions{}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(ServiceTest, ReuseCacheServesRepeatedQuery) {
  auto w = Workload(41);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  const JoinRequest request = JoinRequest::PairJoin(*w->predicate);

  auto first = service_.Execute(contract_, request, options);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->reused);

  // Identical query, unchanged relations: served from the sealed
  // intermediate. Same tuples, the original run's observable surface, no
  // fresh coprocessor work.
  auto second = service_.Execute(contract_, request, options);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->reused);
  ASSERT_TRUE(second->delivery.has_value());
  EXPECT_TRUE(second->delivery->reused);
  EXPECT_TRUE(relation::SameTupleMultiset(second->delivery->tuples,
                                          first->delivery->tuples));
  EXPECT_EQ(second->delivery->metrics.TupleTransfers(),
            first->delivery->metrics.TupleTransfers());
  EXPECT_EQ(second->delivery->trace, first->delivery->trace);

  // Any differing option is a different key.
  ExecuteOptions other = options;
  other.seed = 99;
  auto reseeded = service_.Execute(contract_, request, other);
  ASSERT_TRUE(reseeded.ok());
  EXPECT_FALSE(reseeded->reused);

  // Per-request opt-out forces a fresh execution.
  ExecuteOptions no_reuse = options;
  no_reuse.allow_reuse = false;
  auto fresh = service_.Execute(contract_, request, no_reuse);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh->reused);
}

TEST_F(ServiceTest, ResubmitInvalidatesReuseCache) {
  auto w = Workload(43);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  const JoinRequest request = JoinRequest::PairJoin(*w->predicate);

  ASSERT_TRUE(service_.Execute(contract_, request, options).ok());
  auto cached = service_.Execute(contract_, request, options);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->reused);

  // Resubmitting a provider's relation bumps its version: the cached
  // intermediate no longer matches and the next query runs for real.
  ASSERT_TRUE(service_.SubmitRelation(contract_, "airline", *w->a).ok());
  auto after = service_.Execute(contract_, request, options);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->reused);
  EXPECT_TRUE(relation::SameTupleMultiset(after->delivery->tuples,
                                          cached->delivery->tuples));
}

TEST_F(ServiceTest, ConcurrentTenantsMatchSerialExecution) {
  // N tenants, each with its own contract and workload, submit M requests
  // from their own threads. Every delivery must equal the plain-join
  // ground truth — concurrency must never mix up contracts, keys, or
  // snapshots.
  constexpr int kTenants = 4;
  constexpr int kRequestsPerTenant = 4;
  SovereignJoinService service;
  SchedulerOptions sched;
  sched.workers = 4;
  sched.quotas.max_in_flight = 2;
  ASSERT_TRUE(service.ConfigureScheduler(sched).ok());

  struct Tenant {
    std::string contract;
    Result<relation::TwoTableWorkload> workload = Status::Internal("unset");
  };
  std::vector<Tenant> tenants(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    const std::string a = "prov-a-" + std::to_string(t);
    const std::string b = "prov-b-" + std::to_string(t);
    const std::string r = "recipient-" + std::to_string(t);
    ASSERT_TRUE(service.RegisterParty(a, 100 + t).ok());
    ASSERT_TRUE(service.RegisterParty(b, 200 + t).ok());
    ASSERT_TRUE(service.RegisterParty(r, 300 + t).ok());
    auto contract = service.CreateContract({a, b}, r, "equijoin");
    ASSERT_TRUE(contract.ok());
    tenants[t].contract = *contract;
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 5 + t;
    spec.seed = 70 + t;
    tenants[t].workload = MakeEquijoinWorkload(spec);
    ASSERT_TRUE(tenants[t].workload.ok());
    ASSERT_TRUE(service
                    .SubmitRelation(tenants[t].contract, a,
                                    *tenants[t].workload->a)
                    .ok());
    ASSERT_TRUE(service
                    .SubmitRelation(tenants[t].contract, b,
                                    *tenants[t].workload->b)
                    .ok());
  }

  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  options.allow_reuse = false;  // force every request to execute for real

  std::vector<std::vector<Ticket>> tickets(kTenants);
  std::vector<std::thread> submitters;
  submitters.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerTenant; ++i) {
        auto ticket = service.Submit(
            tenants[t].contract,
            JoinRequest::PairJoin(*tenants[t].workload->predicate), options);
        ASSERT_TRUE(ticket.ok()) << ticket.status();
        tickets[t].push_back(*ticket);
      }
    });
  }
  for (std::thread& th : submitters) th.join();

  for (int t = 0; t < kTenants; ++t) {
    const auto& w = *tenants[t].workload;
    for (Ticket ticket : tickets[t]) {
      auto response = service.Wait(ticket);
      ASSERT_TRUE(response.ok()) << response.status();
      ASSERT_TRUE(response->delivery.has_value());
      const relation::GroundTruth truth = relation::ComputeGroundTruth(
          *w.a, *w.b, *w.predicate, response->delivery->result_schema.get());
      EXPECT_TRUE(relation::SameTupleMultiset(response->delivery->tuples,
                                              truth.expected))
          << "tenant " << t;
      service.Release(ticket);
    }
  }

  const SchedulerStats stats = service.scheduler_stats();
  constexpr std::uint64_t kTotal = kTenants * kRequestsPerTenant;
  EXPECT_EQ(stats.submitted, kTotal);
  EXPECT_EQ(stats.completed, kTotal);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.running, 0u);
}

TEST_F(ServiceTest, ConcurrentMixedKindsDeliverConsistentAnswers) {
  // Joins, aggregates, and group-by-counts of one tenant interleave on the
  // worker pool; the aggregate answers must match the materialized join.
  auto w = Workload(47);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  options.allow_reuse = false;
  const relation::PairAsMultiway multiway(w->predicate.get());

  std::vector<Ticket> join_tickets;
  std::vector<Ticket> agg_tickets;
  for (int i = 0; i < 4; ++i) {
    auto jt = service_.Submit(contract_,
                              JoinRequest::PairJoin(*w->predicate), options);
    ASSERT_TRUE(jt.ok()) << jt.status();
    join_tickets.push_back(*jt);
    auto at = service_.Submit(
        contract_,
        JoinRequest::Aggregate(multiway,
                               {.kind = core::AggregateKind::kCount}),
        options);
    ASSERT_TRUE(at.ok()) << at.status();
    agg_tickets.push_back(*at);
  }
  for (std::size_t i = 0; i < join_tickets.size(); ++i) {
    auto join = service_.Wait(join_tickets[i]);
    ASSERT_TRUE(join.ok()) << join.status();
    auto agg = service_.Wait(agg_tickets[i]);
    ASSERT_TRUE(agg.ok()) << agg.status();
    EXPECT_EQ(static_cast<std::size_t>(agg->aggregate->count),
              join->delivery->tuples.size());
  }
}

// ---- Request-level resilience: deadlines, cancellation, drain -------------
// These drive the ContractScheduler directly with synthetic work closures,
// so the timing edges under test (queue expiry, cancel-while-running, drain
// races) are deterministic and independent of join execution time.

class ResilienceTest : public ::testing::Test {
 protected:
  static SchedulerOptions OneWorker() {
    SchedulerOptions options;
    options.workers = 1;
    options.breaker.enabled = false;  // The breaker has its own chaos tests.
    return options;
  }

  /// Work that parks on the fixture's gate until Unblock(), then succeeds.
  ContractScheduler::Work Blocker() {
    return [this](WorkContext&) -> Result<Response> {
      std::unique_lock<std::mutex> lock(mu_);
      started_ = true;
      started_cv_.notify_all();
      unblock_cv_.wait(lock, [this] { return unblocked_; });
      return Response{};
    };
  }

  /// Work that spins at a cooperative checkpoint until its token fires.
  ContractScheduler::Work CancellableSpinner() {
    return [this](WorkContext& ctx) -> Result<Response> {
      {
        std::unique_lock<std::mutex> lock(mu_);
        started_ = true;
      }
      started_cv_.notify_all();
      while (true) {
        Status status = ctx.cancel->Check();
        if (!status.ok()) return status;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    };
  }

  void AwaitStarted() {
    std::unique_lock<std::mutex> lock(mu_);
    started_cv_.wait(lock, [this] { return started_; });
  }

  void Unblock() {
    std::unique_lock<std::mutex> lock(mu_);
    unblocked_ = true;
    unblock_cv_.notify_all();
  }

  std::mutex mu_;
  std::condition_variable started_cv_;
  std::condition_variable unblock_cv_;
  bool started_ = false;
  bool unblocked_ = false;
};

TEST_F(ResilienceTest, QueuedDeadlineExpiresWithoutExecuting) {
  ContractScheduler scheduler(OneWorker());
  auto blocker = scheduler.Submit("tenant", "c-1", {}, Blocker());
  ASSERT_TRUE(blocker.ok()) << blocker.status();
  AwaitStarted();

  // Queued behind the blocker with a 10 ms deadline: by the time the one
  // worker frees up, the deadline is long gone — the request must resolve
  // without its closure ever running.
  std::atomic<bool> executed{false};
  auto doomed = scheduler.Submit(
      "tenant", "c-1", {},
      [&executed](WorkContext&) -> Result<Response> {
        executed = true;
        return Response{};
      },
      /*deadline_ms=*/10);
  ASSERT_TRUE(doomed.ok()) << doomed.status();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Unblock();

  auto result = scheduler.Wait(*doomed);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(executed.load());
  const auto failure = scheduler.post_mortem(*doomed);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->phase, "queue");
  const auto trace = scheduler.lifecycle(*doomed);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->outcome, "deadline_exceeded");
  EXPECT_EQ(trace->executing_ns, 0u);
  EXPECT_TRUE(scheduler.Wait(*blocker).ok());
  EXPECT_EQ(scheduler.stats().deadline_exceeded, 1u);
}

TEST_F(ResilienceTest, CancelQueuedResolvesImmediately) {
  ContractScheduler scheduler(OneWorker());
  auto blocker = scheduler.Submit("tenant", "c-1", {}, Blocker());
  ASSERT_TRUE(blocker.ok()) << blocker.status();
  AwaitStarted();

  std::atomic<bool> executed{false};
  auto queued = scheduler.Submit(
      "tenant", "c-1", {},
      [&executed](WorkContext&) -> Result<Response> {
        executed = true;
        return Response{};
      });
  ASSERT_TRUE(queued.ok()) << queued.status();
  // Still queued (the single worker is parked on the blocker): cancellation
  // resolves the ticket right here, not at some later dequeue.
  ASSERT_TRUE(scheduler.Cancel(*queued).ok());
  auto result = scheduler.Wait(*queued);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_FALSE(executed.load());
  const auto failure = scheduler.post_mortem(*queued);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->phase, "queue");
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
  Unblock();
  EXPECT_TRUE(scheduler.Wait(*blocker).ok());
}

TEST_F(ResilienceTest, CancelRunningStopsAtNextCheckpoint) {
  ContractScheduler scheduler(OneWorker());
  auto ticket = scheduler.Submit("tenant", "c-1", {}, CancellableSpinner());
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  AwaitStarted();
  ASSERT_TRUE(scheduler.Cancel(*ticket).ok());
  auto result = scheduler.Wait(*ticket);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(scheduler.stats().cancelled, 1u);
  // Cancelling a finished request is a precondition failure, an unknown
  // ticket is not found — neither is silently absorbed.
  EXPECT_EQ(scheduler.Cancel(*ticket).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.Cancel(Ticket{99999}).code(), StatusCode::kNotFound);
}

TEST_F(ResilienceTest, ReleaseWhileExecutingIsRefusedAndWaitConsumesOnce) {
  ContractScheduler scheduler(OneWorker());
  auto ticket = scheduler.Submit("tenant", "c-1", {}, Blocker());
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  AwaitStarted();
  // Release on a running ticket is silently refused: the ticket stays live.
  scheduler.Release(*ticket);
  EXPECT_EQ(scheduler.Poll(*ticket), TicketStatus::kRunning);
  Unblock();
  ASSERT_TRUE(scheduler.Wait(*ticket).ok());
  // The response is consumable exactly once; the ticket itself (post-mortem,
  // lifecycle record) survives until an explicit Release.
  EXPECT_EQ(scheduler.Wait(*ticket).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(scheduler.Poll(*ticket), TicketStatus::kDone);
  scheduler.Release(*ticket);
  EXPECT_EQ(scheduler.Poll(*ticket), TicketStatus::kUnknown);
}

TEST_F(ResilienceTest, ShutdownDrainsInFlightWorkCleanly) {
  ContractScheduler scheduler(OneWorker());
  auto ticket = scheduler.Submit("tenant", "c-1", {}, Blocker());
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  AwaitStarted();
  std::thread release([this] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Unblock();
  });
  // The in-flight request finishes well inside the budget: a clean drain.
  EXPECT_TRUE(scheduler.Shutdown(std::chrono::milliseconds(5000)).ok());
  release.join();
  // The drained request's result is still observable after shutdown.
  EXPECT_TRUE(scheduler.Wait(*ticket).ok());
  // Admission is closed forever; shutdown is idempotent.
  EXPECT_EQ(scheduler
                .Submit("tenant", "c-1", {},
                        [](WorkContext&) -> Result<Response> {
                          return Response{};
                        })
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_TRUE(scheduler.Shutdown(std::chrono::milliseconds(1)).ok());
}

TEST_F(ResilienceTest, WaitRacingDrainShutdownResolves) {
  ContractScheduler scheduler(OneWorker());
  // One cooperative runner that only stops when its token fires, and one
  // request still queued behind it.
  auto running = scheduler.Submit("tenant", "c-1", {}, CancellableSpinner());
  ASSERT_TRUE(running.ok()) << running.status();
  auto queued = scheduler.Submit("tenant", "c-1", {},
                                 [](WorkContext&) -> Result<Response> {
                                   return Response{};
                                 });
  ASSERT_TRUE(queued.ok()) << queued.status();
  AwaitStarted();

  Result<Response> running_result = Status::Internal("unset");
  Result<Response> queued_result = Status::Internal("unset");
  std::thread running_waiter(
      [&] { running_result = scheduler.Wait(*running); });
  std::thread queued_waiter(
      [&] { queued_result = scheduler.Wait(*queued); });

  // The runner never finishes on its own, so the drain budget expires, the
  // stragglers are cancelled — and every racing Wait()er unblocks.
  EXPECT_EQ(scheduler.Shutdown(std::chrono::milliseconds(10)).code(),
            StatusCode::kDeadlineExceeded);
  running_waiter.join();
  queued_waiter.join();
  EXPECT_EQ(running_result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(queued_result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(scheduler.stats().cancelled, 2u);
  EXPECT_EQ(scheduler.stats().running, 0u);
}

TEST_F(ServiceTest, CancelLifecycleEdgesAtTheServiceApi) {
  // No scheduler yet: nothing to cancel.
  EXPECT_EQ(service_.Cancel(Ticket{1}).code(), StatusCode::kNotFound);

  auto w = Workload(51);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  const JoinRequest request = JoinRequest::PairJoin(*w->predicate);

  // Completed ticket: cancellation is a precondition failure.
  auto first = service_.Submit(contract_, request, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(service_.Wait(*first).ok());
  EXPECT_EQ(service_.Cancel(*first).code(), StatusCode::kFailedPrecondition);

  // A reuse-cache hit is just as finished as a real execution.
  auto reused = service_.Submit(contract_, request, options);
  ASSERT_TRUE(reused.ok()) << reused.status();
  auto response = service_.Wait(*reused);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->reused);
  EXPECT_EQ(service_.Cancel(*reused).code(),
            StatusCode::kFailedPrecondition);

  // After Release the ticket is unknown — Cancel says so.
  service_.Release(*first);
  service_.Release(*reused);
  EXPECT_EQ(service_.Cancel(*first).code(), StatusCode::kNotFound);
}

TEST_F(ServiceTest, ShutdownClosesAdmissionForGood) {
  auto w = Workload(53);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(Submit(*w).ok());
  ExecuteOptions options;
  options.algorithm = core::Algorithm::kAlgorithm5;
  options.memory_tuples = 6;
  const JoinRequest request = JoinRequest::PairJoin(*w->predicate);
  ASSERT_TRUE(service_.Execute(contract_, request, options).ok());

  EXPECT_TRUE(service_.Shutdown(std::chrono::milliseconds(5000)).ok());
  EXPECT_EQ(service_.Submit(contract_, request, options).status().code(),
            StatusCode::kUnavailable);
  // Idempotent; the destructor afterwards is a no-op.
  EXPECT_TRUE(service_.Shutdown(std::chrono::milliseconds(1)).ok());
}

}  // namespace
}  // namespace ppj::service
