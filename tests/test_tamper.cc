// Failure injection: a *malicious* host (Section 3.3) actively tampering
// with its memory — bit flips, slot reordering, replays — must be detected
// by the coprocessor's authenticated encryption and position binding, and
// every algorithm must abort with kTampered instead of producing output.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/algorithm1.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/join_result.h"
#include "test_util.h"

namespace ppj {
namespace {

using core::MultiwayJoin;
using core::TwoWayJoin;
using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

std::unique_ptr<TwoPartyWorld> FreshWorld(std::uint64_t seed = 3) {
  relation::EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 9;
  spec.seed = seed;
  auto workload = MakeEquijoinWorkload(spec);
  EXPECT_TRUE(workload.ok());
  return MakeWorld(std::move(*workload), 4);
}

TEST(TamperTest, SlotSwapInInputIsDetected) {
  // The host exchanges two authentic sealed slots of B. Both still carry
  // valid tags — only the position binding catches the reorder.
  auto world = FreshWorld();
  const sim::RegionId rb = world->b->region();
  auto s3 = world->host.ReadSlot(rb, 3);
  auto s7 = world->host.ReadSlot(rb, 7);
  ASSERT_TRUE(s3.ok() && s7.ok());
  ASSERT_TRUE(world->host.WriteSlot(rb, 3, *s7).ok());
  ASSERT_TRUE(world->host.WriteSlot(rb, 7, *s3).ok());

  TwoWayJoin join{world->a.get(), world->b.get(),
                  world->workload.predicate.get(), world->key_out.get()};
  auto outcome = core::RunAlgorithm1(*world->copro, join, {.n = 4});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kTampered);
}

TEST(TamperTest, CrossRegionReplayIsDetected) {
  // The host copies an authentic slot of A over a slot of B (same slot
  // size would be needed; here both relations share a schema).
  auto world = FreshWorld();
  auto stolen = world->host.ReadSlot(world->a->region(), 0);
  ASSERT_TRUE(stolen.ok());
  ASSERT_TRUE(world->host.WriteSlot(world->b->region(), 5, *stolen).ok());

  TwoWayJoin join{world->a.get(), world->b.get(),
                  world->workload.predicate.get(), world->key_out.get()};
  auto outcome = core::RunAlgorithm1(*world->copro, join, {.n = 4});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kTampered);
}

TEST(TamperTest, StaleReplayAtSamePositionIsDetected) {
  // The host snapshots a slot the coprocessor later overwrites, then
  // restores the stale version. The nonce prefix still matches the
  // position, but the stale counter's ciphertext no longer matches what T
  // wrote — T's *next read* of that slot must fail... unless the stale
  // value is itself a valid (old) seal for this position. Replay of old
  // versions at the same position is detectable only with freshness state;
  // here we verify the system catches it when the plaintext sizes drifted
  // (region reuse), and document the version-counter limitation.
  sim::HostStore host;
  sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
  const crypto::Ocb key(crypto::DeriveKey(9, "replay"));
  const sim::RegionId r =
      host.CreateRegion("r", sim::Coprocessor::SealedSize(9), 2);
  ASSERT_TRUE(copro.PutSealed(r, 0, std::vector<std::uint8_t>(9, 1), key).ok());
  auto old_version = host.ReadSlot(r, 0);
  ASSERT_TRUE(old_version.ok());
  ASSERT_TRUE(copro.PutSealed(r, 0, std::vector<std::uint8_t>(9, 2), key).ok());
  ASSERT_TRUE(host.WriteSlot(r, 0, *old_version).ok());
  // The stale seal is authentic for this position: it opens, but to the
  // OLD value. This is the documented residual (a freshness counter inside
  // T would close it); the test pins the behaviour so a future fix is
  // visible.
  auto opened = copro.GetOpen(r, 0, key);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ((*opened)[0], 1);
}

TEST(TamperTest, BitFlipFuzzAcrossWholeSlot) {
  // Every single-bit corruption anywhere in a sealed slot must be caught.
  // A fresh device per probe: the tamper response disables a device after
  // its first detection (see TamperResponseDisablesDevice).
  sim::HostStore host;
  const crypto::Ocb key(crypto::DeriveKey(10, "fuzz"));
  const std::size_t plain_size = 24;
  const std::size_t slot_size = sim::Coprocessor::SealedSize(plain_size);
  const sim::RegionId r = host.CreateRegion("r", slot_size, 1);
  for (std::size_t bit = 0; bit < slot_size * 8; bit += 3) {
    sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
    ASSERT_TRUE(copro
                    .PutSealed(r, 0, std::vector<std::uint8_t>(plain_size, 7),
                               key)
                    .ok());
    ASSERT_TRUE(host.CorruptSlot(r, 0, bit).ok());
    auto opened = copro.GetOpen(r, 0, key);
    ASSERT_FALSE(opened.ok()) << "bit " << bit << " flip went undetected";
    EXPECT_EQ(opened.status().code(), StatusCode::kTampered);
  }
}

TEST(TamperTest, TamperResponseDisablesDevice) {
  // Section 2.2.2: detection zeroizes the device and disables it — even
  // untampered slots become unreadable afterwards.
  sim::HostStore host;
  sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
  const crypto::Ocb key(crypto::DeriveKey(11, "response"));
  const std::size_t slot_size = sim::Coprocessor::SealedSize(8);
  const sim::RegionId r = host.CreateRegion("r", slot_size, 2);
  ASSERT_TRUE(copro.PutSealed(r, 0, std::vector<std::uint8_t>(8, 1), key).ok());
  ASSERT_TRUE(copro.PutSealed(r, 1, std::vector<std::uint8_t>(8, 2), key).ok());
  EXPECT_FALSE(copro.disabled());
  ASSERT_TRUE(host.CorruptSlot(r, 0, 200).ok());
  EXPECT_EQ(copro.GetOpen(r, 0, key).status().code(), StatusCode::kTampered);
  EXPECT_TRUE(copro.disabled());
  // Slot 1 is intact, but the device is dead.
  EXPECT_EQ(copro.GetOpen(r, 1, key).status().code(), StatusCode::kTampered);
  EXPECT_EQ(copro.PutSealed(r, 1, std::vector<std::uint8_t>(8, 3), key).code(),
            StatusCode::kTampered);

  // With the response disabled (test instrumentation), probing continues.
  sim::Coprocessor lab(&host, {.memory_tuples = 4,
                               .seed = 2,
                               .tamper_response = false});
  EXPECT_FALSE(lab.GetOpen(r, 0, key).ok());
  EXPECT_FALSE(lab.disabled());
  EXPECT_TRUE(lab.GetOpen(r, 1, key).ok());
}

TEST(TamperTest, MidRunCorruptionAbortsAlgorithm5) {
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 8;
  spec.result_size = 10;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  // Corrupt an input slot before the run (the simulation cannot interleave
  // a corruption "mid-scan", but any scan rereads every slot, so a
  // corruption before the second scan is equivalent to this).
  ASSERT_TRUE(world->host.CorruptSlot(world->a->region(), 2, 200).ok());
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm5(*world->copro, join);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kTampered);
}

TEST(TamperTest, RecipientDetectsTamperedDelivery) {
  relation::CellSpec spec;
  spec.size_a = 6;
  spec.size_b = 6;
  spec.result_size = 8;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm5(*world->copro, join);
  ASSERT_TRUE(outcome.ok());
  // The host tampers with the delivery on its way to P_C.
  ASSERT_TRUE(world->host.CorruptSlot(outcome->output_region, 0, 300).ok());
  auto decoded = core::DecodeJoinOutput(
      world->host, outcome->output_region, outcome->result_size,
      *world->key_out, world->result_schema.get());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kTampered);
}

TEST(TamperTest, WrongKeyCannotOpenDelivery) {
  // A provider (who holds a different session key) cannot read the result
  // destined for the recipient.
  relation::CellSpec spec;
  spec.size_a = 6;
  spec.size_b = 6;
  spec.result_size = 5;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm5(*world->copro, join);
  ASSERT_TRUE(outcome.ok());
  auto decoded = core::DecodeJoinOutput(
      world->host, outcome->output_region, outcome->result_size,
      *world->key_a, world->result_schema.get());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kTampered);
}

// ---- Batched transfer path ------------------------------------------------
// The prefetched ReadRun pipeline stages (and bulk-decrypts) a whole window
// in one physical round trip, so corruption handling has a subtlety the
// scalar path lacks: detection must be *deferred* to the exact consumption
// index — not reported early at staging time, which would leak how far T
// actually reads — and must behave bit-identically to the scalar loop.

/// Seals `slots` slots of payload size 8 into a fresh region (payload byte
/// = slot index) using a throwaway setup device, so the consumer device
/// under test starts with pristine metrics and trace.
sim::RegionId SealConsecutiveSlots(sim::HostStore& host,
                                   const crypto::Ocb& key,
                                   std::uint64_t slots) {
  const sim::RegionId r =
      host.CreateRegion("r", sim::Coprocessor::SealedSize(8), slots);
  sim::Coprocessor setup(&host, {.memory_tuples = 4, .seed = 1});
  for (std::uint64_t i = 0; i < slots; ++i) {
    EXPECT_TRUE(
        setup
            .PutSealed(r, i,
                       std::vector<std::uint8_t>(8,
                                                 static_cast<std::uint8_t>(i)),
                       key)
            .ok());
  }
  return r;
}

TEST(TamperTest, CorruptionInsidePrefetchWindowDetectedAtConsumption) {
  sim::HostStore host;
  const crypto::Ocb key(crypto::DeriveKey(12, "batch"));
  const sim::RegionId r = SealConsecutiveSlots(host, key, 8);
  ASSERT_TRUE(host.CorruptSlot(r, 5, 137).ok());

  sim::Coprocessor copro(&host, {.memory_tuples = 16, .seed = 2});
  auto run = copro.GetOpenRange(r, 0, 8, &key);
  ASSERT_TRUE(run.ok());
  // Prefetching the whole window (corrupted slot included) succeeds: the
  // verdict is deferred to consumption.
  ASSERT_TRUE(run->PrefetchOpen().ok());
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto open = run->NextOpen();
    ASSERT_TRUE(open.ok()) << "slot " << i;
    EXPECT_EQ((*open)[0], static_cast<std::uint8_t>(i));
  }
  auto bad = run->NextOpen();  // Exactly slot 5.
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTampered);
  EXPECT_TRUE(copro.disabled());
}

TEST(TamperTest, ReorderInsidePrefetchWindowDetectedAtFirstSwappedSlot) {
  // Both swapped slots carry valid tags; only the position binding catches
  // the reorder — and it must do so at the first swapped consumption index
  // even when the whole window was bulk-decrypted up front.
  sim::HostStore host;
  const crypto::Ocb key(crypto::DeriveKey(13, "batch-swap"));
  const sim::RegionId r = SealConsecutiveSlots(host, key, 8);
  auto s2 = host.ReadSlot(r, 2);
  auto s6 = host.ReadSlot(r, 6);
  ASSERT_TRUE(s2.ok() && s6.ok());
  ASSERT_TRUE(host.WriteSlot(r, 2, *s6).ok());
  ASSERT_TRUE(host.WriteSlot(r, 6, *s2).ok());

  sim::Coprocessor copro(&host, {.memory_tuples = 16, .seed = 2});
  auto run = copro.GetOpenRange(r, 0, 8, &key);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->PrefetchOpen().ok());
  ASSERT_TRUE(run->NextOpen().ok());
  ASSERT_TRUE(run->NextOpen().ok());
  auto bad = run->NextOpen();  // Slot 2 holds slot 6's (authentic) seal.
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kTampered);
  EXPECT_TRUE(copro.disabled());
}

TEST(TamperTest, PrefetchedAndScalarAgreeAtTheFailurePoint) {
  // Identical devices consume the same corrupted region, one through the
  // scalar loop, one through a prefetched run: same failure index, same
  // verdict, and a bit-identical adversary-visible surface up to the abort.
  sim::HostStore host;
  const crypto::Ocb key(crypto::DeriveKey(14, "batch-eq"));
  const sim::RegionId r = SealConsecutiveSlots(host, key, 8);
  ASSERT_TRUE(host.CorruptSlot(r, 4, 99).ok());

  sim::Coprocessor scalar_dev(&host, {.memory_tuples = 16, .seed = 2});
  std::uint64_t scalar_fail = 8;
  Status scalar_status;
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto open = scalar_dev.GetOpen(r, i, key);
    if (!open.ok()) {
      scalar_fail = i;
      scalar_status = open.status();
      break;
    }
  }

  sim::Coprocessor batched_dev(&host, {.memory_tuples = 16, .seed = 2});
  auto run = batched_dev.GetOpenRange(r, 0, 8, &key);
  ASSERT_TRUE(run.ok());
  ASSERT_TRUE(run->PrefetchOpen().ok());
  std::uint64_t batched_fail = 8;
  Status batched_status;
  for (std::uint64_t i = 0; i < 8; ++i) {
    auto open = run->NextOpen();
    if (!open.ok()) {
      batched_fail = i;
      batched_status = open.status();
      break;
    }
  }

  EXPECT_EQ(scalar_fail, 4u);
  EXPECT_EQ(batched_fail, scalar_fail);
  EXPECT_EQ(scalar_status.code(), StatusCode::kTampered);
  EXPECT_EQ(batched_status.code(), StatusCode::kTampered);
  EXPECT_EQ(batched_dev.metrics().gets, scalar_dev.metrics().gets);
  EXPECT_EQ(batched_dev.trace().fingerprint(),
            scalar_dev.trace().fingerprint());
  EXPECT_EQ(batched_dev.timing_fingerprint(),
            scalar_dev.timing_fingerprint());
}

TEST(TamperTest, RandomFuzzManySlots) {
  // Randomized: corrupt a random bit of a random input slot; Algorithm 4
  // (which touches every slot) must always abort with kTampered.
  Rng rng(0xF00D);
  for (int trial = 0; trial < 20; ++trial) {
    relation::CellSpec spec;
    spec.size_a = 6;
    spec.size_b = 6;
    spec.result_size = 7;
    spec.seed = 100 + trial;
    auto workload = MakeCellWorkload(spec);
    ASSERT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), 2);
    const bool hit_a = rng.NextBelow(2) == 0;
    const sim::RegionId region =
        hit_a ? world->a->region() : world->b->region();
    const std::uint64_t slot = rng.NextBelow(6);
    const std::size_t bits = world->host.RegionSlotSize(region) * 8;
    ASSERT_TRUE(
        world->host.CorruptSlot(region, slot, rng.NextBelow(bits)).ok());
    const relation::PairAsMultiway multiway(world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    auto outcome = core::RunAlgorithm4(*world->copro, join);
    ASSERT_FALSE(outcome.ok()) << "trial " << trial;
    EXPECT_EQ(outcome.status().code(), StatusCode::kTampered);
  }
}

}  // namespace
}  // namespace ppj
