#include <cmath>

#include <gtest/gtest.h>

#include "analysis/chapter4_costs.h"
#include "analysis/chapter5_costs.h"
#include "analysis/hypergeometric.h"
#include "analysis/optimizer.h"
#include "analysis/regions.h"
#include "analysis/smc_cost.h"
#include "common/math.h"

namespace ppj::analysis {
namespace {

double ExactHypergeomPmf(int l, int s, int n, int k) {
  // Brute force via exact binomials (small parameters only).
  auto binom = [](int a, int b) -> double {
    if (b < 0 || b > a) return 0.0;
    double r = 1.0;
    for (int i = 0; i < b; ++i) r = r * (a - i) / (i + 1);
    return r;
  };
  return binom(s, k) * binom(l - s, n - k) / binom(l, n);
}

TEST(HypergeometricTest, PmfMatchesBruteForce) {
  const int l = 40, s = 10, n = 12;
  for (int k = 0; k <= 12; ++k) {
    const double exact = ExactHypergeomPmf(l, s, n, k);
    const double ours = std::exp(LogHypergeomPmf(l, s, n, k));
    if (exact == 0.0) {
      EXPECT_LT(ours, 1e-12) << "k=" << k;
    } else {
      EXPECT_NEAR(ours / exact, 1.0, 1e-9) << "k=" << k;
    }
  }
}

TEST(HypergeometricTest, PmfSumsToOne) {
  const int l = 50, s = 20, n = 15;
  double sum = 0;
  for (int k = 0; k <= n; ++k) sum += std::exp(LogHypergeomPmf(l, s, n, k));
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(HypergeometricTest, TailMatchesBruteForce) {
  const int l = 60, s = 25, n = 20, m = 9;
  double exact = 0;
  for (int k = m + 1; k <= n; ++k) exact += ExactHypergeomPmf(l, s, n, k);
  EXPECT_NEAR(std::exp(LogHypergeomTailGreater(l, s, n, m)) / exact, 1.0,
              1e-8);
}

TEST(HypergeometricTest, TailIsZeroWhenImpossible) {
  // n <= m: cannot exceed m results in a sample of n.
  EXPECT_TRUE(std::isinf(LogHypergeomTailGreater(100, 50, 5, 5)));
  EXPECT_TRUE(std::isinf(LogBlemishUnionBound(100, 50, 10, 10)));
  EXPECT_TRUE(std::isinf(LogBlemishUnionBound(100, 50, 10, 5)));
}

TEST(HypergeometricTest, UnionBoundGrowsWithSegmentSize) {
  // Monotone in the operative (sub-saturation) regime where the bound is
  // far below 1 — the only regime Eqn 5.6's solver ever searches. Once the
  // per-segment tail saturates at ~1 the union bound decays like log(L/n),
  // which is fine: it stays far above any epsilon < 1.
  const std::uint64_t l = 10000, s = 500, m = 16;
  double prev = -1e300;
  for (std::uint64_t n : {24u, 48u, 96u, 144u, 192u}) {
    const double cur = LogBlemishUnionBound(l, s, m, n);
    EXPECT_GT(cur, prev) << "n=" << n;
    prev = cur;
  }
  // Saturated region: bound remains above log(any epsilon of interest).
  for (std::uint64_t n : {768u, 1536u}) {
    EXPECT_GT(LogBlemishUnionBound(l, s, m, n), std::log(1e-3)) << "n=" << n;
  }
}

TEST(OptimizerTest, SwapFixedPointProperty) {
  // Delta* satisfies mu/Delta = 2/log2(mu + Delta) (Eqn 5.1).
  for (std::uint64_t mu : {64u, 512u, 6400u, 25600u}) {
    const double d = OptimalSwapContinuous(mu);
    EXPECT_NEAR(static_cast<double>(mu) / d,
                2.0 / std::log2(static_cast<double>(mu) + d), 1e-6)
        << "mu=" << mu;
  }
}

TEST(OptimizerTest, SwapMagnitudeForPaperSetting) {
  // For S = 6400 the optimum sits in the tens of thousands (the analysis in
  // DESIGN.md reverse-engineers ~5e4 from Table 5.3).
  const double d = OptimalSwapContinuous(6400);
  EXPECT_GT(d, 3e4);
  EXPECT_LT(d, 8e4);
}

TEST(OptimizerTest, IntegerSwapBeatsNeighbours) {
  const std::uint64_t omega = 640000, mu = 6400;
  const std::uint64_t d = OptimalSwapInteger(omega, mu);
  const double at = FilterCostWithDelta(omega, mu, static_cast<double>(d));
  // Allow last-ulp ties: near the optimum the model is extremely flat.
  const double tol = 1.0 + 1e-9;
  EXPECT_LE(at, tol * FilterCostWithDelta(omega, mu,
                                          static_cast<double>(d - 1)));
  EXPECT_LE(at, tol * FilterCostWithDelta(omega, mu,
                                          static_cast<double>(d + 1)));
  // Never exceeds omega - mu.
  EXPECT_EQ(OptimalSwapInteger(10, 8), 2u);
  EXPECT_EQ(OptimalSwapInteger(8, 8), 1u);
}

TEST(OptimizerTest, SegmentSizeLimits) {
  // epsilon = 0 collapses to M (Section 5.3.3's extreme case).
  EXPECT_EQ(OptimalSegmentSize(10000, 500, 16, 0.0), 16u);
  // M >= S: single segment (footnote 1).
  EXPECT_EQ(OptimalSegmentSize(10000, 50, 64, 1e-20), 10000u);
  // Trivially satisfiable bound: whole input in one segment.
  EXPECT_EQ(OptimalSegmentSize(100, 50, 49, 1.0), 100u);
}

TEST(OptimizerTest, SegmentSizeMonotoneInEpsilon) {
  const std::uint64_t l = 640000, s = 6400, m = 64;
  std::uint64_t prev = 0;
  for (double eps : {1e-60, 1e-40, 1e-20, 1e-10, 1e-5}) {
    const std::uint64_t n = OptimalSegmentSize(l, s, m, eps);
    EXPECT_GE(n, prev) << "eps=" << eps;
    EXPECT_GT(n, m);
    prev = n;
  }
}

TEST(OptimizerTest, SegmentSizeSatisfiesBoundTightly) {
  const std::uint64_t l = 640000, s = 6400, m = 64;
  const double eps = 1e-20;
  const std::uint64_t n = OptimalSegmentSize(l, s, m, eps);
  EXPECT_LE(LogBlemishUnionBound(l, s, m, n), std::log(eps));
  // Maximality: one more element breaks the bound.
  EXPECT_GT(LogBlemishUnionBound(l, s, m, n + 1), std::log(eps));
}

TEST(Chapter4CostTest, GammaAndFormulas) {
  EXPECT_EQ(Gamma(10, 4), 3u);
  EXPECT_EQ(Gamma(4, 8), 1u);
  EXPECT_EQ(Gamma(0, 8), 1u);

  // Algorithm 1 at |A| = |B| = 100, N = 4:
  // 100 + 800 + 20000 + 20000 * 9 = 200900.
  EXPECT_NEAR(CostAlgorithm1(100, 100, 4), 100 + 800 + 20000 + 180000, 1e-9);
  // Algorithm 2 at N = 8, M = 4: gamma = 2 -> 100 + 800 + 20000.
  EXPECT_NEAR(CostAlgorithm2(100, 100, 8, 4), 100 + 800 + 20000, 1e-9);
  // Algorithm 3: |A| + N|A| + |B| log2(|B|)^2 + 3|A||B|.
  const double lg = std::log2(100.0);
  EXPECT_NEAR(CostAlgorithm3(100, 100, 4),
              100 + 400 + 100 * lg * lg + 30000, 1e-6);
  EXPECT_NEAR(CostAlgorithm3(100, 100, 4, true), 100 + 400 + 30000, 1e-9);
  // Variant: |A| + 2|A||B| + |A||B| log2(|B|)^2.
  EXPECT_NEAR(CostAlgorithm1Variant(100, 100),
              100 + 20000 + 10000 * lg * lg, 1e-6);
}

TEST(Chapter4CostTest, SfeIsOrdersOfMagnitudeWorse) {
  // Section 4.6.5: for low alpha, SFE is orders of magnitude slower.
  const double b = 1000, n = 10, w = 32;
  const double sfe = CostSfeBits(b, n, SfeParams{.w = w});
  const double ours = CostAlgorithm1Bits(b, b, n, w);
  EXPECT_GT(sfe / ours, 100.0);
}

TEST(Chapter5CostTest, Algorithm5MatchesTable53Exactly) {
  // Table 5.3, Algorithm 5 row: 6.4e7, 1.6e7, 2.6e8.
  EXPECT_NEAR(CostAlgorithm5(640000, 6400, 64), 6400 + 100.0 * 640000, 1e-6);
  EXPECT_NEAR(CostAlgorithm5(640000, 6400, 256), 6400 + 25.0 * 640000, 1e-6);
  EXPECT_NEAR(CostAlgorithm5(2560000, 25600, 256),
              25600 + 100.0 * 2560000, 1e-6);
}

TEST(Chapter5CostTest, Algorithm4MatchesTable53Magnitude) {
  // Table 5.3, Algorithm 4 row: 2.3e8, 2.3e8, 1.2e9 — we require the same
  // order of magnitude (the paper's Delta* convention is not fully pinned).
  const double c1 = CostAlgorithm4(640000, 6400);
  EXPECT_GT(c1, 1.0e8);
  EXPECT_LT(c1, 4.0e8);
  EXPECT_NEAR(CostAlgorithm4(640000, 6400), c1, 1e-9);  // deterministic
  const double c3 = CostAlgorithm4(2560000, 25600);
  EXPECT_GT(c3, 0.5e9);
  EXPECT_LT(c3, 2.5e9);
}

TEST(Chapter5CostTest, Algorithm6MatchesTable53Magnitude) {
  // Table 5.3, Algorithm 6 (eps = 1e-20): 7.4e6, 3.4e6, 1.8e7.
  const Alg6Cost c1 = CostAlgorithm6(640000, 6400, 64, 1e-20);
  EXPECT_GT(c1.total, 3e6);
  EXPECT_LT(c1.total, 1.5e7);
  const Alg6Cost c2 = CostAlgorithm6(640000, 6400, 256, 1e-20);
  EXPECT_GT(c2.total, 1.7e6);
  EXPECT_LT(c2.total, 7e6);
  const Alg6Cost c3 = CostAlgorithm6(2560000, 25600, 256, 1e-20);
  EXPECT_GT(c3.total, 8e6);
  EXPECT_LT(c3.total, 4e7);
  // And the eps = 1e-10 row is cheaper than the 1e-20 row.
  EXPECT_LT(CostAlgorithm6(640000, 6400, 64, 1e-10).total, c1.total);
}

TEST(Chapter5CostTest, OrderingMatchesTable53) {
  // For every setting: SMC > Alg4 > Alg5 > Alg6.
  const Setting settings[] = {{640000, 6400, 64},
                              {640000, 6400, 256},
                              {2560000, 25600, 256}};
  for (const Setting& st : settings) {
    const double smc = CostSmc(st.l, st.s);
    const double a4 = CostAlgorithm4(st.l, st.s);
    const double a5 = CostAlgorithm5(st.l, st.s, st.m);
    const double a6 = CostAlgorithm6(st.l, st.s, st.m, 1e-20).total;
    EXPECT_GT(smc, a4) << st.l;
    EXPECT_GT(a4, a5) << st.l;
    EXPECT_GT(a5, a6) << st.l;
  }
}

TEST(Chapter5CostTest, SmcMatchesTable53) {
  // Table 5.3, SMC row: 1.1e10 for settings 1-2, 4.5e10 for setting 3.
  EXPECT_NEAR(CostSmc(640000, 6400) / 1.1e10, 1.0, 0.1);
  EXPECT_NEAR(CostSmc(2560000, 25600) / 4.5e10, 1.0, 0.1);
}

TEST(Chapter5CostTest, Algorithm6CostReductionVsAlgorithm5) {
  // Table 5.3 bottom row: reduction of Alg6 (1e-20) vs Alg5 is 88%, 79%,
  // 93% — require within +-8 points.
  const double r1 = 1.0 - CostAlgorithm6(640000, 6400, 64, 1e-20).total /
                              CostAlgorithm5(640000, 6400, 64);
  const double r2 = 1.0 - CostAlgorithm6(640000, 6400, 256, 1e-20).total /
                              CostAlgorithm5(640000, 6400, 256);
  const double r3 =
      1.0 - CostAlgorithm6(2560000, 25600, 256, 1e-20).total /
                CostAlgorithm5(2560000, 25600, 256);
  EXPECT_NEAR(r1, 0.88, 0.08);
  EXPECT_NEAR(r2, 0.79, 0.08);
  EXPECT_NEAR(r3, 0.93, 0.08);
}

TEST(Chapter5CostTest, Algorithm6MonotoneDecreasingInEpsilon) {
  // Figure 5.2's shape: cost decreases monotonically as epsilon grows.
  double prev = 1e300;
  for (double eps : {1e-60, 1e-50, 1e-40, 1e-30, 1e-20, 1e-10, 1e-5}) {
    const double c = CostAlgorithm6(640000, 6400, 64, eps).total;
    EXPECT_LT(c, prev) << "eps=" << eps;
    prev = c;
  }
}

TEST(Chapter5CostTest, Algorithm6ApproachesMinimumWithLargeMemory) {
  // Figure 5.3's right edge: M >= S gives the floor L + S.
  EXPECT_DOUBLE_EQ(CostAlgorithm6(640000, 6400, 6400, 1e-20).total,
                   MinimalCost(640000, 6400));
  // And decreasing in M before that.
  double prev = 1e300;
  for (std::uint64_t m : {16u, 64u, 256u, 1024u, 4096u}) {
    const double c = CostAlgorithm6(640000, 6400, m, 1e-20).total;
    EXPECT_LT(c, prev) << "m=" << m;
    prev = c;
  }
}

TEST(Chapter5CostTest, Algorithm5DecreasesWithMemoryLikeFigure51) {
  // Figure 5.1: cost ~ 1/M, approaching L + S as M -> S.
  double prev = 1e300;
  for (std::uint64_t m = 8; m <= 6400; m *= 2) {
    const double c = CostAlgorithm5(640000, 6400, m);
    EXPECT_LE(c, prev) << "m=" << m;
    prev = c;
  }
  EXPECT_DOUBLE_EQ(CostAlgorithm5(640000, 6400, 6400),
                   MinimalCost(640000, 6400));
}

TEST(RegionsTest, Gamma1Algorithm2Dominates) {
  // Section 4.6.1: at gamma = 1, Algorithm 2 beats 1 and 3 everywhere.
  for (double alpha : {0.001, 0.01, 0.1, 1.0}) {
    OperatingPoint pt{1 << 20, alpha, 1.0};
    EXPECT_EQ(BestGeneralJoin(pt), Chapter4Algorithm::kAlgorithm2);
    EXPECT_EQ(BestEquijoin(pt), Chapter4Algorithm::kAlgorithm2);
  }
}

TEST(RegionsTest, GeneralJoinCrossover) {
  // Section 4.6.2: with alpha = 1/|B|, Algorithm 1 wins once gamma > ~4...
  // but the exact threshold is 2 + alpha + 2 log2(2 alpha |B|)^2; at
  // alpha = 1/|B| that is 2 + 1/|B| + 2 -> just above 4.
  const double b = 1 << 20;
  const double alpha = 1.0 / b;
  const double crossover = GeneralJoinCrossoverGamma(alpha, b);
  EXPECT_NEAR(crossover, 4.0, 0.1);
  EXPECT_EQ(BestGeneralJoin({b, alpha, crossover + 1}),
            Chapter4Algorithm::kAlgorithm1);
  EXPECT_EQ(BestGeneralJoin({b, alpha, crossover - 1}),
            Chapter4Algorithm::kAlgorithm2);
}

TEST(RegionsTest, EquijoinAlgorithm3BeatsAlgorithm1) {
  // Section 4.6.3: Algorithm 3 outperforms Algorithm 1 for any alpha, |B|.
  for (double b : {1024.0, 1048576.0}) {
    for (double alpha : {1.0 / b, 0.01, 0.5, 1.0}) {
      EXPECT_LT(RewrittenCost3(b, alpha), RewrittenCost1(b, alpha));
    }
  }
}

TEST(RegionsTest, EquijoinGammaThresholds) {
  // Section 4.6.3: gamma <= 3 -> Algorithm 2; gamma >= 4 -> Algorithm 3.
  const double b = 1 << 20;
  const double alpha = 0.001;
  EXPECT_EQ(BestEquijoin({b, alpha, 3.0}), Chapter4Algorithm::kAlgorithm2);
  EXPECT_EQ(BestEquijoin({b, alpha, 4.0}), Chapter4Algorithm::kAlgorithm3);
  EXPECT_EQ(BestEquijoin({b, alpha, 10.0}), Chapter4Algorithm::kAlgorithm3);
}

}  // namespace
}  // namespace ppj::analysis
