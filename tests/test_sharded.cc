// Sharded oblivious execution: the partitioned host store, the per-shard
// plan, the exchange channel and the union-of-traces privacy rule.
//
// The load-bearing guarantees under test:
//  - shards == 1 executes the *serial* plan and is bit-identical to the
//    frozen pre-refactor fingerprints in test_plan_goldens.cc;
//  - sharded results equal serial results at every shard count;
//  - the sharded surface is backend-invariant (mem == file == mmap);
//  - a stalled shard resolves through the request-deadline path without
//    wedging its sibling shards (chaos);
//  - the union of per-shard traces plus the channel shape is determined by
//    public parameters alone (the Definition 3 rule lifted to shards);
//  - the service end-to-end path and the ppj_shard_* metrics family.

#include <chrono>
#include <filesystem>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/metrics.h"
#include "core/join_result.h"
#include "core/privacy_auditor.h"
#include "plan/sharded.h"
#include "relation/generator.h"
#include "service/service.h"
#include "sim/fault_injector.h"
#include "sim/sharded_store.h"
#include "sim/storage_backend.h"
#include "test_util.h"

namespace ppj::plan {
namespace {

using relation::MakeCellWorkload;

/// Everything one sharded run needs, with the replicas kept alive next to
/// the per-shard join views that point into them.
struct ShardedWorld {
  std::unique_ptr<sim::ShardedStore> store;
  relation::TwoTableWorkload workload;
  std::unique_ptr<crypto::Ocb> key_a, key_b, key_out;
  std::vector<relation::EncryptedRelation> a, b;
  std::unique_ptr<relation::PairAsMultiway> multiway;
  std::vector<core::MultiwayJoin> joins;
  std::vector<const core::MultiwayJoin*> join_ptrs;
  std::unique_ptr<relation::Schema> result_schema;
};

/// The Ch5Workload of test_plan_goldens.cc — the shape the frozen serial
/// fingerprints were captured on.
relation::CellSpec GoldenSpec(std::uint64_t seed = 17) {
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 12;
  spec.result_size = 9;
  spec.seed = seed;
  return spec;
}

Result<std::unique_ptr<ShardedWorld>> MakeShardedWorld(
    const relation::CellSpec& spec,
    std::vector<std::unique_ptr<sim::StorageBackend>> backends) {
  auto world = std::make_unique<ShardedWorld>();
  const unsigned shards = static_cast<unsigned>(backends.size());
  world->store = std::make_unique<sim::ShardedStore>(std::move(backends));
  PPJ_ASSIGN_OR_RETURN(world->workload, MakeCellWorkload(spec));
  world->key_a = std::make_unique<crypto::Ocb>(crypto::DeriveKey(1, "A"));
  world->key_b = std::make_unique<crypto::Ocb>(crypto::DeriveKey(2, "B"));
  world->key_out = std::make_unique<crypto::Ocb>(crypto::DeriveKey(3, "C"));
  PPJ_ASSIGN_OR_RETURN(world->a,
                       ReplicateSealed(*world->store, *world->workload.a,
                                       world->key_a.get()));
  PPJ_ASSIGN_OR_RETURN(world->b,
                       ReplicateSealed(*world->store, *world->workload.b,
                                       world->key_b.get()));
  world->multiway = std::make_unique<relation::PairAsMultiway>(
      world->workload.predicate.get());
  world->joins.resize(shards);
  for (unsigned p = 0; p < shards; ++p) {
    world->joins[p].tables = {&world->a[p], &world->b[p]};
    world->joins[p].predicate = world->multiway.get();
    world->joins[p].output_key = world->key_out.get();
    world->join_ptrs.push_back(&world->joins[p]);
  }
  world->result_schema =
      std::make_unique<relation::Schema>(relation::Schema::Concat(
          world->workload.a->schema(), world->workload.b->schema()));
  return world;
}

std::vector<std::unique_ptr<sim::StorageBackend>> MemBackends(unsigned n) {
  std::vector<std::unique_ptr<sim::StorageBackend>> backends;
  for (unsigned i = 0; i < n; ++i) {
    backends.push_back(sim::MakeInMemoryBackend());
  }
  return backends;
}

std::string TempDir(const std::string& tag) {
  const auto dir =
      std::filesystem::temp_directory_path() / ("ppj-sharded-" + tag);
  std::filesystem::remove_all(dir);
  return dir.string();
}

Result<std::vector<std::unique_ptr<sim::StorageBackend>>> DiskBackends(
    const std::string& kind, const std::string& tag, unsigned n) {
  std::vector<std::unique_ptr<sim::StorageBackend>> backends;
  for (unsigned i = 0; i < n; ++i) {
    const std::string dir = TempDir(tag + "-" + std::to_string(i));
    PPJ_ASSIGN_OR_RETURN(std::unique_ptr<sim::StorageBackend> backend,
                         kind == "file" ? sim::MakeFileBackend(dir)
                                        : sim::MakeMmapBackend(dir));
    backends.push_back(std::move(backend));
  }
  return backends;
}

Result<ShardedOutcome> RunWorld(ShardedWorld& world, core::Algorithm algorithm,
                           const ShardedRunOptions& ropts,
                           const sim::CoprocessorOptions& base = {
                               .memory_tuples = 4, .seed = 42}) {
  return RunShardedJoin(*world.store, algorithm, world.join_ptrs, base,
                        ropts);
}

Result<std::vector<relation::Tuple>> Decode(ShardedWorld& world,
                                            const ShardedOutcome& outcome) {
  return core::DecodeJoinOutput(world.store->shard(0), outcome.output_region,
                                outcome.result_size, *world.key_out,
                                world.result_schema.get());
}

// ---- shards == 1: bit-identical to the frozen serial goldens -------------

/// The kSequentialGoldens rows of test_plan_goldens.cc for the three
/// sharded-capable algorithms (same workload, memory_tuples = 4, seed 42).
struct SerialGolden {
  core::Algorithm algorithm;
  double epsilon;  // 0 = default plan options
  std::uint64_t trace_digest;
  std::uint64_t trace_count;
  std::uint64_t transfers;
};

const SerialGolden kSerialGoldens[] = {
    {core::Algorithm::kAlgorithm4, 0.0, 0x17ed116f4766293aull, 7148, 7139},
    {core::Algorithm::kAlgorithm5, 0.0, 0x50d6bc674b03d4e6ull, 330, 321},
    {core::Algorithm::kAlgorithm6, 1e-6, 0xafd20469dcccb421ull, 7321, 7312},
};

TEST(ShardedPlanTest, SingleShardMatchesFrozenSerialGoldens) {
  for (const SerialGolden& golden : kSerialGoldens) {
    auto world = MakeShardedWorld(GoldenSpec(), MemBackends(1));
    ASSERT_TRUE(world.ok()) << world.status();
    ShardedRunOptions ropts;
    ropts.shards = 1;
    if (golden.epsilon > 0) {
      ropts.epsilon = golden.epsilon;
      ropts.order_seed = 0xBEEF;
    }
    auto outcome = RunWorld(**world, golden.algorithm, ropts);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    ASSERT_EQ(outcome->shard_fingerprints.size(), 1u);
    EXPECT_EQ(outcome->shard_fingerprints[0].digest, golden.trace_digest)
        << core::ToString(golden.algorithm);
    EXPECT_EQ(outcome->shard_fingerprints[0].count, golden.trace_count);
    EXPECT_EQ(outcome->makespan_transfers, golden.transfers);
    // No channel exists in a one-shard run: nothing was sent, and the
    // union surface degenerates to the serial trace (plus an empty channel
    // fingerprint).
    EXPECT_EQ(outcome->channel.messages, 0u);
    EXPECT_EQ(outcome->channel_fingerprint.count, 0u);
  }
}

TEST(ShardedPlanTest, ResultParityAcrossShardCounts) {
  for (core::Algorithm algorithm :
       {core::Algorithm::kAlgorithm4, core::Algorithm::kAlgorithm5,
        core::Algorithm::kAlgorithm6}) {
    std::vector<relation::Tuple> reference;
    for (unsigned shards : {1u, 2u, 4u, 8u}) {
      auto world = MakeShardedWorld(GoldenSpec(), MemBackends(shards));
      ASSERT_TRUE(world.ok()) << world.status();
      ShardedRunOptions ropts;
      ropts.shards = shards;
      ropts.epsilon = 1e-6;
      ropts.order_seed = 0xBEEF;
      auto outcome = RunWorld(**world, algorithm, ropts);
      ASSERT_TRUE(outcome.ok())
          << core::ToString(algorithm) << " shards=" << shards << ": "
          << outcome.status();
      EXPECT_EQ(outcome->result_size, 9u);
      auto tuples = Decode(**world, *outcome);
      ASSERT_TRUE(tuples.ok()) << tuples.status();
      if (shards == 1) {
        reference = std::move(*tuples);
      } else {
        EXPECT_TRUE(relation::SameTupleMultiset(reference, *tuples))
            << core::ToString(algorithm) << " shards=" << shards;
      }
    }
  }
}

TEST(ShardedPlanTest, SpeedupIsMakespanAtEightShards) {
  // The acceptance headline, at test scale: the 8-shard transfer makespan
  // beats the serial count by the work-partitioning factor. (The bench
  // gates the exact 48x48 numbers; this keeps the property in ctest.)
  relation::CellSpec spec = GoldenSpec();
  spec.size_a = 16;
  spec.size_b = 16;
  spec.result_size = 32;
  std::uint64_t serial = 0;
  for (unsigned shards : {1u, 8u}) {
    auto world = MakeShardedWorld(spec, MemBackends(shards));
    ASSERT_TRUE(world.ok()) << world.status();
    auto outcome =
        RunWorld(**world, core::Algorithm::kAlgorithm5, {.shards = shards});
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    if (shards == 1) {
      serial = outcome->makespan_transfers;
    } else {
      EXPECT_LT(outcome->makespan_transfers * 2, serial)
          << "8 shards should at least halve the transfer makespan";
    }
  }
}

TEST(ShardedPlanTest, RejectsChapter4Algorithms) {
  auto world = MakeShardedWorld(GoldenSpec(), MemBackends(2));
  ASSERT_TRUE(world.ok()) << world.status();
  auto outcome = RunWorld(**world, core::Algorithm::kAlgorithm2, {.shards = 2});
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

// ---- Backend parity: mem == file == mmap ---------------------------------

class ShardedBackendParityTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(ShardedBackendParityTest, UnionSurfaceAndResultsBackendInvariant) {
  for (unsigned shards : {2u, 4u}) {
    // Reference surface: in-memory shards.
    auto mem_world = MakeShardedWorld(GoldenSpec(), MemBackends(shards));
    ASSERT_TRUE(mem_world.ok()) << mem_world.status();
    auto mem_outcome =
        RunWorld(**mem_world, core::Algorithm::kAlgorithm5, {.shards = shards});
    ASSERT_TRUE(mem_outcome.ok()) << mem_outcome.status();

    auto backends = DiskBackends(
        GetParam(), GetParam() + "-" + std::to_string(shards), shards);
    ASSERT_TRUE(backends.ok()) << backends.status();
    auto disk_world = MakeShardedWorld(GoldenSpec(), std::move(*backends));
    ASSERT_TRUE(disk_world.ok()) << disk_world.status();
    auto disk_outcome =
        RunWorld(**disk_world, core::Algorithm::kAlgorithm5, {.shards = shards});
    ASSERT_TRUE(disk_outcome.ok()) << disk_outcome.status();

    // Bit-identical adversary surface: every shard's trace, the channel
    // shape, and therefore the union fingerprint.
    ASSERT_EQ(mem_outcome->shard_fingerprints.size(),
              disk_outcome->shard_fingerprints.size());
    for (unsigned p = 0; p < shards; ++p) {
      EXPECT_EQ(mem_outcome->shard_fingerprints[p].digest,
                disk_outcome->shard_fingerprints[p].digest)
          << GetParam() << " shard " << p;
      EXPECT_EQ(mem_outcome->shard_fingerprints[p].count,
                disk_outcome->shard_fingerprints[p].count);
    }
    EXPECT_EQ(mem_outcome->channel_fingerprint.digest,
              disk_outcome->channel_fingerprint.digest);
    EXPECT_EQ(mem_outcome->union_fingerprint.digest,
              disk_outcome->union_fingerprint.digest);
    EXPECT_EQ(mem_outcome->union_fingerprint.count,
              disk_outcome->union_fingerprint.count);
    EXPECT_EQ(mem_outcome->makespan_transfers,
              disk_outcome->makespan_transfers);

    auto mem_tuples = Decode(**mem_world, *mem_outcome);
    auto disk_tuples = Decode(**disk_world, *disk_outcome);
    ASSERT_TRUE(mem_tuples.ok()) << mem_tuples.status();
    ASSERT_TRUE(disk_tuples.ok()) << disk_tuples.status();
    EXPECT_TRUE(relation::SameTupleMultiset(*mem_tuples, *disk_tuples));
  }
}

INSTANTIATE_TEST_SUITE_P(FileAndMmap, ShardedBackendParityTest,
                         ::testing::Values(std::string("file"),
                                           std::string("mmap")));

// ---- Chaos: a stalled shard resolves via the deadline path ---------------

TEST(ShardedChaosTest, StalledShardResolvesViaDeadlineWithoutWedging) {
  // Shard 1's backend stalls forever on its sealed A region; the only
  // bound is the request deadline (the PR-9 resilience path). The run must
  // come back with kDeadlineExceeded — all shard threads joined, none
  // wedged in the exchange.
  std::vector<std::unique_ptr<sim::StorageBackend>> backends;
  backends.push_back(sim::MakeInMemoryBackend());
  auto injector = std::make_unique<sim::FaultInjectingBackend>(
      sim::MakeInMemoryBackend());
  sim::FaultInjectingBackend* faults = injector.get();
  backends.push_back(std::move(injector));
  auto world = MakeShardedWorld(GoldenSpec(), std::move(backends));
  ASSERT_TRUE(world.ok()) << world.status();

  // Setup above ran fault-free; arm the stall for exactly the execution.
  sim::FaultPlan plan;
  plan.stall_region = static_cast<std::uint32_t>((*world)->a[1].region());
  plan.stall_ms = 100;
  faults->Arm(plan);

  CancelToken cancel;
  cancel.SetDeadline(CancelToken::Clock::now() +
                     std::chrono::milliseconds(60));
  sim::CoprocessorOptions base;
  base.memory_tuples = 4;
  base.seed = 42;
  base.cancel = &cancel;
  auto outcome =
      RunWorld(**world, core::Algorithm::kAlgorithm5, {.shards = 2}, base);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded)
      << outcome.status();

  // Siblings were not wedged: a clean rerun on fresh shards succeeds.
  faults->Disarm();
  auto clean = MakeShardedWorld(GoldenSpec(), MemBackends(2));
  ASSERT_TRUE(clean.ok()) << clean.status();
  auto rerun = RunWorld(**clean, core::Algorithm::kAlgorithm5, {.shards = 2});
  ASSERT_TRUE(rerun.ok()) << rerun.status();
  EXPECT_EQ(rerun->result_size, 9u);
}

// ---- The union-of-traces audit rule --------------------------------------

Result<core::ShardedAuditRun> AuditWorld(core::Algorithm algorithm,
                                         unsigned shards,
                                         std::uint64_t world_id) {
  // Shape-equal worlds with disjoint data: the generator seed varies, the
  // public parameters (L, S, M, shards, epsilon) do not.
  auto world =
      MakeShardedWorld(GoldenSpec(31 * world_id + 5), MemBackends(shards));
  if (!world.ok()) return world.status();
  ShardedRunOptions ropts;
  ropts.shards = shards;
  ropts.epsilon = 1e-6;
  ropts.order_seed = 0xBEEF;
  PPJ_ASSIGN_OR_RETURN(ShardedOutcome outcome,
                       RunWorld(**world, algorithm, ropts));
  core::ShardedAuditRun run;
  run.shard_fingerprints = outcome.shard_fingerprints;
  run.channel_fingerprint = outcome.channel_fingerprint;
  return run;
}

TEST(ShardedAuditTest, UnionShapeDeterminedAcrossWorlds) {
  for (core::Algorithm algorithm :
       {core::Algorithm::kAlgorithm4, core::Algorithm::kAlgorithm5,
        core::Algorithm::kAlgorithm6}) {
    for (unsigned shards : {2u, 4u, 8u}) {
      auto verdict = core::ShardedPrivacyAuditor::CompareManyShardedWorlds(
          [&](std::uint64_t world) {
            return AuditWorld(algorithm, shards, world);
          },
          /*count=*/3);
      ASSERT_TRUE(verdict.ok()) << verdict.status();
      EXPECT_TRUE(verdict->identical)
          << core::ToString(algorithm) << " shards=" << shards << ": "
          << verdict->detail;
    }
  }
}

TEST(ShardedAuditTest, DetectsShardCountMismatch) {
  // Sanity of the rule itself: worlds that deployed different shard counts
  // must not compare as identical.
  auto verdict = core::ShardedPrivacyAuditor::CompareShardedWorlds(
      [&](std::uint64_t world) {
        return AuditWorld(core::Algorithm::kAlgorithm5,
                          world == 0 ? 2u : 4u, world);
      });
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  EXPECT_FALSE(verdict->identical);
  EXPECT_NE(verdict->detail.find("shard counts differ"), std::string::npos);
}

// ---- Service end-to-end --------------------------------------------------

class ShardedServiceTest : public ::testing::Test {
 protected:
  Result<service::JoinDelivery> RunService(unsigned shards,
                                           metrics::Registry* registry =
                                               nullptr) {
    service::SovereignJoinService svc;
    service::SchedulerOptions sched;
    sched.registry = registry;
    PPJ_RETURN_NOT_OK(svc.ConfigureScheduler(sched));
    PPJ_RETURN_NOT_OK(svc.RegisterParty("airline", 101));
    PPJ_RETURN_NOT_OK(svc.RegisterParty("agency", 102));
    PPJ_RETURN_NOT_OK(svc.RegisterParty("analyst", 103));
    PPJ_ASSIGN_OR_RETURN(const std::string contract,
                         svc.CreateContract({"airline", "agency"}, "analyst",
                                            "passenger.key == watchlist.key"));
    relation::EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 9;
    spec.seed = 1;
    PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                         relation::MakeEquijoinWorkload(spec));
    PPJ_RETURN_NOT_OK(svc.SubmitRelation(contract, "airline", *workload.a));
    PPJ_RETURN_NOT_OK(svc.SubmitRelation(contract, "agency", *workload.b));
    service::ExecuteOptions options;
    options.algorithm = core::Algorithm::kAlgorithm5;
    options.memory_tuples = 4;
    options.shards = shards;
    PPJ_ASSIGN_OR_RETURN(
        const service::Ticket ticket,
        svc.Submit(contract,
                   service::JoinRequest::PairJoin(*workload.predicate),
                   options));
    PPJ_ASSIGN_OR_RETURN(service::Response response, svc.Wait(ticket));
    if (!response.delivery.has_value()) {
      return Status::Internal("join response carried no delivery");
    }
    return std::move(*response.delivery);
  }
};

TEST_F(ShardedServiceTest, ShardedDeliveryMatchesSerial) {
  auto serial = RunService(/*shards=*/1);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (unsigned shards : {2u, 4u}) {
    auto sharded = RunService(shards);
    ASSERT_TRUE(sharded.ok()) << sharded.status();
    EXPECT_TRUE(
        relation::SameTupleMultiset(serial->tuples, sharded->tuples))
        << "shards=" << shards;
    EXPECT_EQ(serial->observable_output_slots,
              sharded->observable_output_slots);
    // The sharded trace is the union surface — nonzero and distinct from
    // the serial device trace.
    EXPECT_NE(sharded->trace.count, 0u);
    EXPECT_NE(sharded->trace.digest, serial->trace.digest);
  }
}

TEST_F(ShardedServiceTest, OptionValidation) {
  service::TenantQuotas quotas;
  quotas.max_shards = 4;
  service::ExecuteOptions options;

  options.shards = 0;
  EXPECT_EQ(options.Validate(&quotas).code(), StatusCode::kInvalidArgument);

  options.shards = 2;
  options.parallelism = 2;
  EXPECT_EQ(options.Validate(&quotas).code(), StatusCode::kInvalidArgument);

  options.parallelism = 1;
  options.algorithm = core::Algorithm::kAlgorithm2;
  EXPECT_EQ(options.Validate(&quotas).code(), StatusCode::kInvalidArgument);

  options.algorithm = core::Algorithm::kAlgorithm5;
  EXPECT_TRUE(options.Validate(&quotas).ok());

  options.shards = 8;  // over the tenant quota
  EXPECT_EQ(options.Validate(&quotas).code(), StatusCode::kQuotaExceeded);
}

// ---- ppj_shard_* metrics: published, and trace-neutral -------------------

TEST(ShardedMetricsTest, PublishesShardFamilyAndStaysTraceNeutral) {
  // Two shape-equal worlds with different data; publication into an
  // enabled registry vs a disabled one. MetricsNeutralityTest contract:
  // the adversary surface is identical either way, and the published
  // values themselves are functions of the channel shape — so both worlds
  // publish identical numbers.
  auto run = [&](std::uint64_t seed,
                 metrics::Registry* registry) -> Result<ShardedOutcome> {
    auto world = MakeShardedWorld(GoldenSpec(seed), MemBackends(4));
    if (!world.ok()) return world.status();
    PPJ_ASSIGN_OR_RETURN(
        ShardedOutcome outcome,
        RunWorld(**world, core::Algorithm::kAlgorithm5, {.shards = 4}));
    PublishShardMetrics(registry, metrics::LabelSet::ForTenant("analyst"),
                        outcome);
    return outcome;
  };

  metrics::Registry enabled(/*enabled=*/true);
  metrics::Registry disabled(/*enabled=*/false);
  auto a = run(17, &enabled);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = run(170, &disabled);
  ASSERT_TRUE(b.ok()) << b.status();

  // Neutrality: the union surface does not depend on the registry state,
  // and shape-equal worlds produce identical channel observables.
  EXPECT_EQ(a->union_fingerprint.digest, b->union_fingerprint.digest);
  EXPECT_EQ(a->union_fingerprint.count, b->union_fingerprint.count);
  EXPECT_EQ(a->channel.bytes, b->channel.bytes);
  EXPECT_EQ(a->channel.messages, b->channel.messages);
  EXPECT_EQ(a->channel.rounds, b->channel.rounds);

  const metrics::Snapshot on = enabled.TakeSnapshot();
  const metrics::Snapshot off = disabled.TakeSnapshot();
  if (metrics::Registry::CompiledIn()) {
    EXPECT_EQ(on.CounterTotal(metrics::kShardChannelBytes),
              a->channel.bytes);
    EXPECT_EQ(on.CounterTotal(metrics::kShardChannelMessages),
              a->channel.messages);
    EXPECT_EQ(on.CounterTotal(metrics::kShardExchangeRounds),
              a->channel.rounds);
    // One queue-depth gauge per shard, labeled op="shard<i>".
    metrics::LabelSet lead = metrics::LabelSet::ForTenant("analyst");
    lead.op = "shard0";
    EXPECT_GE(on.GaugeValue(metrics::kShardQueueDepth, lead), 0);
    std::size_t depth_gauges = 0;
    for (const auto& gauge : on.gauges) {
      if (gauge.name == metrics::kShardQueueDepth) ++depth_gauges;
    }
    EXPECT_EQ(depth_gauges, 4u);
  } else {
    EXPECT_TRUE(on.counters.empty());
  }
  EXPECT_TRUE(off.counters.empty());
  EXPECT_TRUE(off.gauges.empty());
}

}  // namespace
}  // namespace ppj::plan
