#include <algorithm>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/key.h"
#include "oblivious/bitonic_sort.h"
#include "oblivious/shuffle.h"
#include "oblivious/sort_simd.h"
#include "oblivious/windowed_filter.h"
#include "relation/encrypted_relation.h"
#include "relation/schema.h"
#include "sim/coprocessor.h"

namespace ppj::oblivious {
namespace {

using relation::wire::MakeDecoy;
using relation::wire::MakeReal;

/// Fixture providing a host, coprocessor, key, and helpers to seal simple
/// one-int64 payload slots.
class ObliviousTest : public ::testing::Test {
 protected:
  ObliviousTest()
      : copro_(&host_, {.memory_tuples = 8, .seed = 3}),
        key_(crypto::DeriveKey(10, "oblivious")) {}

  static constexpr std::size_t kPayload = 8;

  std::vector<std::uint8_t> RealOf(std::uint64_t v) {
    std::vector<std::uint8_t> p(kPayload);
    for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return MakeReal(p);
  }

  sim::RegionId MakeRegion(const std::vector<std::vector<std::uint8_t>>&
                               plaintexts) {
    const std::size_t slot =
        sim::Coprocessor::SealedSize(relation::wire::PlainSize(kPayload));
    const sim::RegionId r =
        host_.CreateRegion("data", slot, plaintexts.size());
    for (std::size_t i = 0; i < plaintexts.size(); ++i) {
      EXPECT_TRUE(copro_.PutSealed(r, i, plaintexts[i], key_).ok());
    }
    return r;
  }

  std::vector<std::vector<std::uint8_t>> ReadAll(sim::RegionId r,
                                                 std::uint64_t n) {
    std::vector<std::vector<std::uint8_t>> out;
    for (std::uint64_t i = 0; i < n; ++i) {
      auto p = copro_.GetOpen(r, i, key_);
      EXPECT_TRUE(p.ok());
      out.push_back(*p);
    }
    return out;
  }

  static std::uint64_t ValueOf(const std::vector<std::uint8_t>& plain) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(plain[1 + i]) << (8 * i);
    }
    return v;
  }

  sim::HostStore host_;
  sim::Coprocessor copro_;
  crypto::Ocb key_;
};

/// Comparator over the encoded uint64 payload (reals only in these tests).
PlainLess ValueLess() {
  return [](const std::vector<std::uint8_t>& x,
            const std::vector<std::uint8_t>& y) {
    auto load = [](const std::vector<std::uint8_t>& p) {
      std::uint64_t v = 0;
      for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(p[1 + i]) << (8 * i);
      }
      return v;
    };
    return load(x) < load(y);
  };
}

TEST_F(ObliviousTest, BitonicSortsRandomData) {
  Rng rng(77);
  for (std::uint64_t n : {2u, 8u, 64u, 256u}) {
    std::vector<std::vector<std::uint8_t>> data;
    std::vector<std::uint64_t> values;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t v = rng.NextBelow(1000);
      values.push_back(v);
      data.push_back(RealOf(v));
    }
    const sim::RegionId r = MakeRegion(data);
    ASSERT_TRUE(ObliviousSort(copro_, r, n, key_, ValueLess()).ok());
    const auto sorted = ReadAll(r, n);
    std::sort(values.begin(), values.end());
    for (std::uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(ValueOf(sorted[i]), values[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST_F(ObliviousTest, BitonicRejectsNonPowerOfTwo) {
  const sim::RegionId r = MakeRegion({RealOf(1), RealOf(2), RealOf(3)});
  EXPECT_EQ(ObliviousSort(copro_, r, 3, key_, ValueLess()).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ObliviousTest, BitonicTransferCountMatchesModel) {
  const std::uint64_t n = 64;
  std::vector<std::vector<std::uint8_t>> data;
  for (std::uint64_t i = 0; i < n; ++i) data.push_back(RealOf(n - i));
  const sim::RegionId r = MakeRegion(data);
  const auto before = copro_.metrics();
  ASSERT_TRUE(ObliviousSort(copro_, r, n, key_, ValueLess()).ok());
  const std::uint64_t transfers =
      copro_.metrics().TupleTransfers() - before.TupleTransfers();
  // 4 transfers per comparator; (n/2)*lg(lg+1)/2 comparators.
  EXPECT_EQ(transfers, 4 * BitonicComparators(n));
  EXPECT_EQ(copro_.metrics().comparisons - before.comparisons,
            BitonicComparators(n));
}

TEST_F(ObliviousTest, BitonicTraceIsDataIndependent) {
  // Definition 1's requirement at the primitive level: two different
  // datasets of equal size produce byte-identical traces.
  auto run = [&](std::uint64_t salt) {
    sim::HostStore host;
    sim::Coprocessor copro(&host, {.memory_tuples = 8, .seed = 3});
    const std::size_t slot =
        sim::Coprocessor::SealedSize(relation::wire::PlainSize(kPayload));
    const sim::RegionId r = host.CreateRegion("d", slot, 32);
    Rng rng(salt);
    for (std::uint64_t i = 0; i < 32; ++i) {
      std::vector<std::uint8_t> p(kPayload);
      const std::uint64_t v = rng.NextU64();
      for (int b = 0; b < 8; ++b) {
        p[b] = static_cast<std::uint8_t>(v >> (8 * b));
      }
      EXPECT_TRUE(copro.PutSealed(r, i, MakeReal(p), key_).ok());
    }
    const auto baseline = copro.trace().fingerprint();
    EXPECT_TRUE(ObliviousSort(copro, r, 32, key_, ValueLess()).ok());
    (void)baseline;
    return copro.trace().fingerprint();
  };
  EXPECT_EQ(run(1), run(2));
  EXPECT_EQ(run(2), run(999));
}

TEST_F(ObliviousTest, RealFirstComparatorOrdersRealsAhead) {
  std::vector<std::vector<std::uint8_t>> data;
  // Interleave reals and decoys.
  for (std::uint64_t i = 0; i < 16; ++i) {
    if (i % 3 == 0) {
      data.push_back(RealOf(i));
    } else {
      data.push_back(MakeDecoy(kPayload));
    }
  }
  const sim::RegionId r = MakeRegion(data);
  ASSERT_TRUE(ObliviousSort(copro_, r, 16, key_, RealFirstLess()).ok());
  const auto sorted = ReadAll(r, 16);
  std::size_t reals = 0;
  while (reals < 16 && relation::wire::IsReal(sorted[reals])) ++reals;
  EXPECT_EQ(reals, 6u);  // i in {0,3,6,9,12,15}
  for (std::size_t i = reals; i < 16; ++i) {
    EXPECT_FALSE(relation::wire::IsReal(sorted[i]));
  }
}

class WindowedFilterTest
    : public ObliviousTest,
      public ::testing::WithParamInterface<std::tuple<int, int, int>> {};

TEST_P(WindowedFilterTest, KeepsExactlyTheReals) {
  const auto [omega_i, mu_i, delta_i] = GetParam();
  const std::uint64_t omega = static_cast<std::uint64_t>(omega_i);
  const std::uint64_t mu = static_cast<std::uint64_t>(mu_i);
  const std::uint64_t delta = static_cast<std::uint64_t>(delta_i);

  // Scatter exactly mu reals across omega slots (worst case: reals at the
  // very end, so they must survive every refill round).
  std::vector<std::vector<std::uint8_t>> data(omega, MakeDecoy(kPayload));
  Rng rng(omega * 31 + mu * 7 + delta);
  std::vector<std::uint64_t> positions(omega);
  for (std::uint64_t i = 0; i < omega; ++i) positions[i] = i;
  rng.Shuffle(positions);
  std::vector<std::uint64_t> expected;
  for (std::uint64_t k = 0; k < mu; ++k) {
    data[positions[k]] = RealOf(1000 + k);
    expected.push_back(1000 + k);
  }
  const sim::RegionId src = MakeRegion(data);
  const std::size_t slot =
      sim::Coprocessor::SealedSize(relation::wire::PlainSize(kPayload));
  const sim::RegionId dst = host_.CreateRegion("out", slot, mu);

  auto stats =
      WindowedObliviousFilter(copro_, src, omega, mu, delta, key_, dst);
  ASSERT_TRUE(stats.ok()) << stats.status();

  std::vector<std::uint64_t> got;
  for (const auto& plain : ReadAll(dst, mu)) {
    ASSERT_TRUE(relation::wire::IsReal(plain));
    got.push_back(ValueOf(plain));
  }
  std::sort(got.begin(), got.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(got, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WindowedFilterTest,
    ::testing::Values(std::make_tuple(64, 4, 4), std::make_tuple(64, 4, 16),
                      std::make_tuple(64, 16, 8), std::make_tuple(128, 8, 32),
                      std::make_tuple(100, 7, 13), std::make_tuple(33, 2, 5),
                      std::make_tuple(16, 16, 4), std::make_tuple(17, 1, 1)));

TEST_F(ObliviousTest, FilterFewerRealsThanMuPadsWithDecoys) {
  // mu is an upper bound: with fewer reals the tail of dst is decoys.
  std::vector<std::vector<std::uint8_t>> data(32, MakeDecoy(kPayload));
  data[5] = RealOf(1);
  data[20] = RealOf(2);
  const sim::RegionId src = MakeRegion(data);
  const std::size_t slot =
      sim::Coprocessor::SealedSize(relation::wire::PlainSize(kPayload));
  const sim::RegionId dst = host_.CreateRegion("out", slot, 4);
  ASSERT_TRUE(WindowedObliviousFilter(copro_, src, 32, 4, 8, key_, dst).ok());
  const auto out = ReadAll(dst, 4);
  EXPECT_TRUE(relation::wire::IsReal(out[0]));
  EXPECT_TRUE(relation::wire::IsReal(out[1]));
  EXPECT_FALSE(relation::wire::IsReal(out[2]));
  EXPECT_FALSE(relation::wire::IsReal(out[3]));
}

TEST_F(ObliviousTest, FilterTraceIsDataIndependent) {
  auto run = [&](std::uint64_t salt) {
    sim::HostStore host;
    sim::Coprocessor copro(&host, {.memory_tuples = 8, .seed = 3});
    const std::size_t slot =
        sim::Coprocessor::SealedSize(relation::wire::PlainSize(kPayload));
    const sim::RegionId src = host.CreateRegion("src", slot, 48);
    Rng rng(salt);
    // Same omega and mu; reals in different places.
    std::vector<std::uint64_t> pos(48);
    for (std::uint64_t i = 0; i < 48; ++i) pos[i] = i;
    rng.Shuffle(pos);
    for (std::uint64_t i = 0; i < 48; ++i) {
      const bool real = std::find(pos.begin(), pos.begin() + 6, i) !=
                        pos.begin() + 6;
      std::vector<std::uint8_t> plain =
          real ? RealOf(rng.NextU64() % 100) : MakeDecoy(kPayload);
      EXPECT_TRUE(copro.PutSealed(src, i, plain, key_).ok());
    }
    const sim::RegionId dst = host.CreateRegion("dst", slot, 6);
    EXPECT_TRUE(
        WindowedObliviousFilter(copro, src, 48, 6, 8, key_, dst).ok());
    return copro.trace().fingerprint();
  };
  EXPECT_EQ(run(4), run(5));
}

TEST_F(ObliviousTest, FilterValidatesArguments) {
  const sim::RegionId src = MakeRegion({RealOf(1), RealOf(2)});
  const std::size_t slot =
      sim::Coprocessor::SealedSize(relation::wire::PlainSize(kPayload));
  const sim::RegionId dst = host_.CreateRegion("out", slot, 2);
  EXPECT_FALSE(WindowedObliviousFilter(copro_, src, 0, 1, 1, key_, dst).ok());
  EXPECT_FALSE(WindowedObliviousFilter(copro_, src, 2, 3, 1, key_, dst).ok());
  EXPECT_FALSE(
      WindowedObliviousFilter(copro_, src, 99, 1, 1, key_, dst).ok());
}

TEST_F(ObliviousTest, ShufflePreservesMultisetAndPermutes) {
  const std::uint64_t n = 64;
  std::vector<std::vector<std::uint8_t>> data;
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < n; ++i) {
    data.push_back(RealOf(i));
    values.push_back(i);
  }
  const sim::RegionId r = MakeRegion(data);
  ASSERT_TRUE(ObliviousShuffle(copro_, r, n, key_).ok());
  std::vector<std::uint64_t> got;
  bool moved = false;
  const auto out = ReadAll(r, n);
  for (std::uint64_t i = 0; i < n; ++i) {
    got.push_back(ValueOf(out[i]));
    if (got.back() != i) moved = true;
  }
  EXPECT_TRUE(moved);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, values);
}

// ---- SIMD compare-exchange window (sort_simd.h) ---------------------------
// Referenced from bitonic_sort.cc: the structured SortKey kinds and the
// kernel's raw-row evaluation must stay bit-equivalent to the lambdas. Every
// tier (scalar, SSE2, AVX2 where the CPU has it) is checked against a
// reference that uses only the SortKey's own lambda, over every j from pure
// tail (j < 4) through mixed vector+tail shapes, both directions, and odd
// row sizes that exercise the byte tails of the row-swap kernels.

class SimdSortTest : public ::testing::Test {
 protected:
  /// Applies the scalar window semantics using the SortKey as an opaque
  /// comparator on vector copies — the ground truth the kernels must match.
  static std::vector<std::vector<std::uint8_t>> Reference(
      const std::vector<std::vector<std::uint8_t>>& rows, std::uint64_t j,
      bool ascending, const SortKey& key) {
    std::vector<std::vector<std::uint8_t>> out = rows;
    for (std::uint64_t r = 0; r < j; ++r) {
      const bool out_of_order =
          ascending ? key(out[r + j], out[r]) : key(out[r], out[r + j]);
      if (out_of_order) std::swap(out[r], out[r + j]);
    }
    return out;
  }

  void CheckAllTiers(const SortKey& key, std::size_t row_size,
                     bool random_flags) {
    ASSERT_TRUE(key.Vectorizable());
    std::mt19937 rng(1234 + row_size);
    for (std::uint64_t j = 1; j <= 9; ++j) {
      for (const bool ascending : {false, true}) {
        std::vector<std::vector<std::uint8_t>> rows(
            2 * j, std::vector<std::uint8_t>(row_size));
        for (auto& row : rows) {
          for (auto& byte : row) {
            byte = static_cast<std::uint8_t>(rng());
          }
          if (random_flags) row[0] = static_cast<std::uint8_t>(rng() % 2);
        }
        const auto expected = Reference(rows, j, ascending, key);
        for (const SimdTier tier :
             {SimdTier::kScalar, SimdTier::kSse2, SimdTier::kAvx2}) {
          std::vector<std::uint8_t> flat;
          for (const auto& row : rows) {
            flat.insert(flat.end(), row.begin(), row.end());
          }
          CompareExchangeBlock(flat.data(), row_size, j, ascending, key,
                               tier);
          for (std::uint64_t i = 0; i < 2 * j; ++i) {
            EXPECT_TRUE(std::equal(expected[i].begin(), expected[i].end(),
                                   flat.begin() + i * row_size))
                << "tier " << SimdTierName(tier) << " j=" << j
                << " ascending=" << ascending << " row " << i;
          }
        }
      }
    }
  }
};

TEST_F(SimdSortTest, RealFirstEquivalence) {
  for (const std::size_t row_size : {9u, 17u, 48u}) {
    CheckAllTiers(RealFirstLess(), row_size, /*random_flags=*/true);
  }
}

TEST_F(SimdSortTest, ColumnEquivalence) {
  const relation::Schema schema({relation::Schema::Int64("k")});
  for (const std::size_t row_size : {9u, 19u, 33u}) {
    CheckAllTiers(ColumnLess(&schema, 0), row_size, /*random_flags=*/true);
  }
}

TEST_F(SimdSortTest, TagEquivalence) {
  for (const std::size_t row_size : {9u, 21u, 64u}) {
    CheckAllTiers(TagLess(), row_size, /*random_flags=*/false);
  }
}

TEST_F(SimdSortTest, GenericKeysAreNotVectorizable) {
  const SortKey opaque = [](const std::vector<std::uint8_t>& x,
                            const std::vector<std::uint8_t>& y) {
    return x < y;
  };
  EXPECT_FALSE(opaque.Vectorizable());
  // The structured factories all are.
  EXPECT_TRUE(RealFirstLess().Vectorizable());
  EXPECT_TRUE(TagLess().Vectorizable());
}

TEST_F(SimdSortTest, ActiveTierHasAName) {
  const SimdTier tier = ActiveSimdTier();
  const std::string name = SimdTierName(tier);
  EXPECT_TRUE(name == "scalar" || name == "sse2" || name == "avx2") << name;
#ifdef PPJ_SIMD_DISABLED
  EXPECT_EQ(tier, SimdTier::kScalar);
#endif
}

TEST_F(ObliviousTest, ShuffleTraceIsDataIndependent) {
  auto run = [&](std::uint64_t salt) {
    sim::HostStore host;
    sim::Coprocessor copro(&host, {.memory_tuples = 8, .seed = 9});
    const std::size_t slot =
        sim::Coprocessor::SealedSize(relation::wire::PlainSize(kPayload));
    const sim::RegionId r = host.CreateRegion("d", slot, 16);
    for (std::uint64_t i = 0; i < 16; ++i) {
      EXPECT_TRUE(copro.PutSealed(r, i, RealOf(i * salt), key_).ok());
    }
    EXPECT_TRUE(ObliviousShuffle(copro, r, 16, key_).ok());
    return copro.trace().fingerprint();
  };
  EXPECT_EQ(run(3), run(17));
}

}  // namespace
}  // namespace ppj::oblivious
