// Property-based tests: randomized workloads sweep the whole algorithm
// family and assert the invariants the paper proves — cross-algorithm
// agreement, exactness, trace invariance — plus fuzzing of the crypto and
// oblivious substrates against reference implementations.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/plain_join.h"
#include "common/random.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "core/join_result.h"
#include "crypto/key.h"
#include "crypto/mlfsr.h"
#include "oblivious/bitonic_sort.h"
#include "test_util.h"

namespace ppj {
namespace {

using core::MultiwayJoin;
using core::TwoWayJoin;
using relation::MakeCellWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

// ---------------------------------------------------------------------------
// Cross-algorithm agreement on randomized workloads
// ---------------------------------------------------------------------------

class CrossAlgorithmProperty : public ::testing::TestWithParam<int> {};

TEST_P(CrossAlgorithmProperty, AllSixAlgorithmsAgreeWithGroundTruth) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  Rng rng(seed * 9176 + 3);

  relation::CellSpec spec;
  spec.size_a = 4 + rng.NextBelow(10);
  spec.size_b = 4 + rng.NextBelow(10);
  spec.result_size = rng.NextBelow(spec.size_a * spec.size_b / 2 + 1);
  spec.seed = seed;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  const std::uint64_t n = std::max<std::uint64_t>(
      workload->max_matches_per_a, 1);
  const std::uint64_t memory =
      std::max<std::uint64_t>(2, 1 + rng.NextBelow(8));

  // Ground truth once.
  auto world0 = MakeWorld(std::move(*workload), memory);
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *world0->workload.a, *world0->workload.b, *world0->workload.predicate,
      world0->result_schema.get());

  // Each run gets a fresh world (regions are consumed by the algorithms).
  auto fresh = [&]() {
    relation::CellSpec s2 = spec;
    auto w = MakeCellWorkload(s2);
    EXPECT_TRUE(w.ok());
    return MakeWorld(std::move(*w), memory);
  };

  auto check_ch4 = [&](auto&& run, const char* label) {
    auto world = fresh();
    TwoWayJoin join{world->a.get(), world->b.get(),
                    world->workload.predicate.get(), world->key_out.get()};
    auto outcome = run(*world->copro, join);
    ASSERT_TRUE(outcome.ok()) << label << ": " << outcome.status();
    auto decoded = core::DecodeJoinOutput(
        world->host, outcome->output_region, outcome->output_slots,
        *world->key_out, world->result_schema.get());
    ASSERT_TRUE(decoded.ok()) << label;
    EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected))
        << label << " seed=" << seed << " got " << decoded->size()
        << " want " << truth.expected.size();
  };
  check_ch4(
      [&](sim::Coprocessor& c, const TwoWayJoin& j) {
        return core::RunAlgorithm1(c, j, {.n = n});
      },
      "Algorithm1");
  check_ch4(
      [&](sim::Coprocessor& c, const TwoWayJoin& j) {
        return core::RunAlgorithm2(c, j, {.n = n});
      },
      "Algorithm2");

  auto check_ch5 = [&](auto&& run, const char* label) {
    auto world = fresh();
    const relation::PairAsMultiway multiway(
        world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    auto outcome = run(*world->copro, join);
    ASSERT_TRUE(outcome.ok()) << label << ": " << outcome.status();
    EXPECT_EQ(outcome->result_size, truth.result_size) << label;
    auto decoded = core::DecodeJoinOutput(
        world->host, outcome->output_region, outcome->result_size,
        *world->key_out, world->result_schema.get());
    ASSERT_TRUE(decoded.ok()) << label;
    EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected))
        << label << " seed=" << seed;
  };
  check_ch5(
      [&](sim::Coprocessor& c, const MultiwayJoin& j) {
        return core::RunAlgorithm4(c, j);
      },
      "Algorithm4");
  check_ch5(
      [&](sim::Coprocessor& c, const MultiwayJoin& j) {
        return core::RunAlgorithm5(c, j);
      },
      "Algorithm5");
  check_ch5(
      [&](sim::Coprocessor& c, const MultiwayJoin& j) {
        return core::RunAlgorithm6(c, j, {.epsilon = 1e-9});
      },
      "Algorithm6");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossAlgorithmProperty,
                         ::testing::Range(1, 13));

// ---------------------------------------------------------------------------
// Predicate variety: every predicate family through safe algorithms
// ---------------------------------------------------------------------------

struct PredicateCase {
  const char* name;
  std::function<std::unique_ptr<relation::PairPredicate>()> make;
};

class PredicateVarietyProperty
    : public ::testing::TestWithParam<int> {};

TEST_P(PredicateVarietyProperty, ArbitraryPredicatesThroughAlg1And5) {
  const int which = GetParam();
  // Two int64 attribute relations with overlapping value ranges.
  Rng rng(which * 31 + 7);
  relation::Schema schema(
      {relation::Schema::Int64("x"), relation::Schema::Int64("y")});
  auto a = std::make_unique<relation::Relation>("A",
                                                relation::Schema(schema));
  auto b = std::make_unique<relation::Relation>("B",
                                                relation::Schema(schema));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(a->Append({rng.NextInRange(0, 12),
                           rng.NextInRange(0, 12)})
                    .ok());
    ASSERT_TRUE(b->Append({rng.NextInRange(0, 12),
                           rng.NextInRange(0, 12)})
                    .ok());
  }

  std::unique_ptr<relation::PairPredicate> pred;
  switch (which % 4) {
    case 0:
      pred = std::make_unique<relation::LessThanPredicate>(0, 0);
      break;
    case 1:
      pred = std::make_unique<relation::BandPredicate>(0, 0, 2);
      break;
    case 2:
      pred = std::make_unique<relation::L1NormPredicate>(
          std::vector<std::size_t>{0, 1}, std::vector<std::size_t>{0, 1}, 5);
      break;
    default:
      pred = std::make_unique<relation::EqualityPredicate>(0, 0);
      break;
  }

  relation::TwoTableWorkload workload;
  workload.a = std::move(a);
  workload.b = std::move(b);
  workload.predicate = std::move(pred);
  auto world = MakeWorld(std::move(workload), 4);
  ASSERT_NE(world, nullptr);
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *world->workload.a, *world->workload.b, *world->workload.predicate,
      world->result_schema.get());

  // Algorithm 1 with the safe preprocessing scan (n = 0 -> computed).
  {
    TwoWayJoin join{world->a.get(), world->b.get(),
                    world->workload.predicate.get(), world->key_out.get()};
    auto outcome = core::RunAlgorithm1(*world->copro, join, {.n = 0});
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    auto decoded = core::DecodeJoinOutput(
        world->host, outcome->output_region, outcome->output_slots,
        *world->key_out, world->result_schema.get());
    ASSERT_TRUE(decoded.ok());
    EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected));
  }
  // Algorithm 5 on a fresh coprocessor (inputs were only read, not moved).
  {
    sim::Coprocessor fresh(&world->host, {.memory_tuples = 4, .seed = 9});
    const relation::PairAsMultiway multiway(
        world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    auto outcome = core::RunAlgorithm5(fresh, join);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->result_size, truth.result_size);
  }
}

INSTANTIATE_TEST_SUITE_P(Predicates, PredicateVarietyProperty,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Trace invariance fuzz: random shapes, shape-equal pairs
// ---------------------------------------------------------------------------

class TraceInvarianceProperty : public ::testing::TestWithParam<int> {};

TEST_P(TraceInvarianceProperty, Algorithm4And5TracesDependOnlyOnShape) {
  const auto trial = static_cast<std::uint64_t>(GetParam());
  Rng rng(trial * 1234 + 9);
  const std::uint64_t size_a = 4 + rng.NextBelow(8);
  const std::uint64_t size_b = 4 + rng.NextBelow(8);
  const std::uint64_t s = rng.NextBelow(size_a * size_b / 2 + 1);
  const std::uint64_t m = 2 + rng.NextBelow(6);

  auto run = [&](bool alg4, std::uint64_t content_seed) {
    relation::CellSpec spec;
    spec.size_a = size_a;
    spec.size_b = size_b;
    spec.result_size = s;
    spec.seed = content_seed;
    auto workload = MakeCellWorkload(spec);
    EXPECT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), m, false, 17);
    const relation::PairAsMultiway multiway(
        world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    if (alg4) {
      EXPECT_TRUE(core::RunAlgorithm4(*world->copro, join).ok());
    } else {
      EXPECT_TRUE(core::RunAlgorithm5(*world->copro, join).ok());
    }
    return world->copro->trace().fingerprint();
  };
  EXPECT_EQ(run(true, trial * 2 + 100), run(true, trial * 2 + 101))
      << "Algorithm 4 trace varied at shape (" << size_a << "," << size_b
      << "," << s << "," << m << ")";
  EXPECT_EQ(run(false, trial * 2 + 100), run(false, trial * 2 + 101))
      << "Algorithm 5 trace varied at shape (" << size_a << "," << size_b
      << "," << s << "," << m << ")";
}

INSTANTIATE_TEST_SUITE_P(Trials, TraceInvarianceProperty,
                         ::testing::Range(0, 8));

// ---------------------------------------------------------------------------
// Substrate fuzzing
// ---------------------------------------------------------------------------

TEST(SubstrateFuzz, OcbRoundTripRandomSizes) {
  const crypto::Ocb ocb(crypto::DeriveKey(0xF0, "fuzz"));
  Rng rng(0xFACE);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t size = rng.NextBelow(200);
    std::vector<std::uint8_t> pt(size);
    rng.FillBytes(pt.data(), pt.size());
    const crypto::Block nonce =
        crypto::NonceFromCounter(1000000 + trial);
    const auto sealed = ocb.Encrypt(nonce, pt);
    auto opened = ocb.Decrypt(nonce, sealed);
    ASSERT_TRUE(opened.ok()) << "size " << size;
    EXPECT_EQ(*opened, pt);
    if (!sealed.empty()) {
      auto corrupted = sealed;
      corrupted[rng.NextBelow(corrupted.size())] ^=
          static_cast<std::uint8_t>(1 + rng.NextBelow(255));
      EXPECT_FALSE(ocb.Decrypt(nonce, corrupted).ok()) << "size " << size;
    }
  }
}

TEST(SubstrateFuzz, BitonicAgainstStdSort) {
  const crypto::Ocb key(crypto::DeriveKey(0xB1, "sortfuzz"));
  Rng rng(4242);
  for (std::uint64_t n : {4u, 16u, 32u, 128u}) {
    for (int trial = 0; trial < 3; ++trial) {
      sim::HostStore host;
      sim::Coprocessor copro(&host, {.memory_tuples = 2, .seed = 5});
      const std::size_t slot =
          sim::Coprocessor::SealedSize(relation::wire::PlainSize(8));
      const sim::RegionId r = host.CreateRegion("f", slot, n);
      std::vector<std::uint64_t> values;
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t v = rng.NextBelow(50);  // duplicates likely
        values.push_back(v);
        std::vector<std::uint8_t> p(8);
        for (int b = 0; b < 8; ++b) {
          p[b] = static_cast<std::uint8_t>(v >> (8 * b));
        }
        ASSERT_TRUE(
            copro.PutSealed(r, i, relation::wire::MakeReal(p), key).ok());
      }
      auto less = [](const std::vector<std::uint8_t>& x,
                     const std::vector<std::uint8_t>& y) {
        std::uint64_t vx = 0, vy = 0;
        for (int b = 0; b < 8; ++b) {
          vx |= static_cast<std::uint64_t>(x[1 + b]) << (8 * b);
          vy |= static_cast<std::uint64_t>(y[1 + b]) << (8 * b);
        }
        return vx < vy;
      };
      ASSERT_TRUE(oblivious::ObliviousSort(copro, r, n, key, less).ok());
      std::sort(values.begin(), values.end());
      for (std::uint64_t i = 0; i < n; ++i) {
        auto p = copro.GetOpen(r, i, key);
        ASSERT_TRUE(p.ok());
        std::uint64_t v = 0;
        for (int b = 0; b < 8; ++b) {
          v |= static_cast<std::uint64_t>((*p)[1 + b]) << (8 * b);
        }
        EXPECT_EQ(v, values[i]) << "n=" << n << " trial=" << trial;
      }
    }
  }
}

TEST(SubstrateFuzz, RandomOrderLargeCountIsAPermutation) {
  const std::uint64_t count = 100000;
  auto order = crypto::RandomOrder::Create(count, 0xDADA);
  ASSERT_TRUE(order.ok());
  std::vector<bool> seen(count, false);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t idx = order->Next();
    ASSERT_LT(idx, count);
    ASSERT_FALSE(seen[idx]) << "repeat at step " << i;
    seen[idx] = true;
  }
}

}  // namespace
}  // namespace ppj
