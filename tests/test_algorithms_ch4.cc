#include <gtest/gtest.h>

#include "baseline/plain_join.h"
#include "common/math.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/join_result.h"
#include "core/privacy_auditor.h"
#include "oblivious/bitonic_sort.h"
#include "test_util.h"

namespace ppj::core {
namespace {

using relation::EquijoinSpec;
using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using relation::MakeJaccardWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

/// Runs one Chapter 4 algorithm in a world and decodes the recipient view.
enum class Ch4Alg { kAlg1, kAlg1Variant, kAlg2, kAlg3 };

Result<Ch4Outcome> RunCh4(Ch4Alg which, TwoPartyWorld& world,
                          std::uint64_t n) {
  TwoWayJoin join{world.a.get(), world.b.get(),
                  world.workload.predicate.get(), world.key_out.get()};
  switch (which) {
    case Ch4Alg::kAlg1:
      return RunAlgorithm1(*world.copro, join, {.n = n});
    case Ch4Alg::kAlg1Variant:
      return RunAlgorithm1Variant(*world.copro, join, {.n = n});
    case Ch4Alg::kAlg2:
      return RunAlgorithm2(*world.copro, join, {.n = n});
    case Ch4Alg::kAlg3:
      return RunAlgorithm3(*world.copro, join, {.n = n});
  }
  return Status::Internal("unreachable");
}

void ExpectMatchesGroundTruth(TwoPartyWorld& world,
                              const Ch4Outcome& outcome) {
  auto decoded = DecodeJoinOutput(world.host, outcome.output_region,
                                  outcome.output_slots, *world.key_out,
                                  world.result_schema.get());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *world.workload.a, *world.workload.b, *world.workload.predicate,
      world.result_schema.get());
  EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected))
      << "decoded " << decoded->size() << " tuples, expected "
      << truth.expected.size();
}

struct Ch4Case {
  Ch4Alg alg;
  std::uint64_t size_a, size_b, n, s, memory;
  bool pad_pow2;
};

class Ch4CorrectnessTest : public ::testing::TestWithParam<Ch4Case> {};

TEST_P(Ch4CorrectnessTest, EquijoinMatchesGroundTruth) {
  const Ch4Case& c = GetParam();
  EquijoinSpec spec;
  spec.size_a = c.size_a;
  spec.size_b = c.size_b;
  spec.n_max = c.n;
  spec.result_size = c.s;
  spec.seed = 5;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok()) << workload.status();
  auto world = MakeWorld(std::move(*workload), c.memory, c.pad_pow2);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh4(c.alg, *world, c.n);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ExpectMatchesGroundTruth(*world, *outcome);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Ch4CorrectnessTest,
    ::testing::Values(
        // Algorithm 1: small memory, N power-of-two and not.
        Ch4Case{Ch4Alg::kAlg1, 8, 16, 4, 8, 2, false},
        Ch4Case{Ch4Alg::kAlg1, 12, 20, 3, 7, 2, false},
        Ch4Case{Ch4Alg::kAlg1, 16, 16, 1, 4, 2, false},
        // Algorithm 1 variant.
        Ch4Case{Ch4Alg::kAlg1Variant, 8, 16, 4, 8, 2, false},
        Ch4Case{Ch4Alg::kAlg1Variant, 10, 13, 2, 5, 2, false},
        // Algorithm 2: gamma = 1 (N <= M) and gamma > 1 (N > M).
        Ch4Case{Ch4Alg::kAlg2, 8, 16, 4, 8, 8, false},
        Ch4Case{Ch4Alg::kAlg2, 8, 16, 6, 10, 3, false},
        Ch4Case{Ch4Alg::kAlg2, 12, 24, 8, 16, 2, false},
        // Algorithm 3: needs pow2-padded B.
        Ch4Case{Ch4Alg::kAlg3, 8, 16, 4, 8, 2, true},
        Ch4Case{Ch4Alg::kAlg3, 10, 20, 3, 9, 2, true},
        Ch4Case{Ch4Alg::kAlg3, 16, 13, 2, 6, 2, true}));

TEST(Ch4AlgorithmsTest, GeneralPredicateWorkloads) {
  // Algorithms 1 and 2 take arbitrary predicates: run the synthetic cell
  // workload (non-equality) through both.
  relation::CellSpec spec;
  spec.size_a = 10;
  spec.size_b = 12;
  spec.result_size = 17;
  spec.seed = 7;
  for (Ch4Alg alg : {Ch4Alg::kAlg1, Ch4Alg::kAlg2}) {
    auto workload = MakeCellWorkload(spec);
    ASSERT_TRUE(workload.ok());
    const std::uint64_t n = workload->max_matches_per_a;
    auto world = MakeWorld(std::move(*workload), 4);
    ASSERT_NE(world, nullptr);
    auto outcome = RunCh4(alg, *world, n);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    ExpectMatchesGroundTruth(*world, *outcome);
  }
}

TEST(Ch4AlgorithmsTest, JaccardSimilarityJoin) {
  relation::JaccardSpec spec;
  spec.size_a = 12;
  spec.size_b = 12;
  spec.planted_pairs = 3;
  auto workload = MakeJaccardWorkload(spec);
  ASSERT_TRUE(workload.ok());
  const std::uint64_t n = std::max<std::uint64_t>(
      workload->max_matches_per_a, 1);
  auto world = MakeWorld(std::move(*workload), 4);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh4(Ch4Alg::kAlg1, *world, n);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ExpectMatchesGroundTruth(*world, *outcome);
}

TEST(Ch4AlgorithmsTest, NComputedWhenOmitted) {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 12;
  spec.n_max = 3;
  spec.result_size = 6;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh4(Ch4Alg::kAlg2, *world, /*n=*/0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->n_used, 3u);
  ExpectMatchesGroundTruth(*world, *outcome);
}

TEST(Ch4AlgorithmsTest, Algorithm3RejectsNonEquality) {
  relation::CellSpec spec;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4, /*pad_pow2=*/true);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh4(Ch4Alg::kAlg3, *world, 4);
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kInvalidArgument);
}

TEST(Ch4AlgorithmsTest, Algorithm2OutputSizeHidesResultSize) {
  // The observable output is N|A|-shaped regardless of the true S.
  for (std::uint64_t s : {4u, 8u}) {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = s;
    auto workload = MakeEquijoinWorkload(spec);
    ASSERT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), 8);
    ASSERT_NE(world, nullptr);
    auto outcome = RunCh4(Ch4Alg::kAlg2, *world, 4);
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->output_slots, 8u * 4u);
  }
}

// ---------------------------------------------------------------------------
// Cost-model reconciliation: measured transfers equal the closed forms.
// ---------------------------------------------------------------------------

TEST(Ch4CostReconciliation, Algorithm2TransfersMatchFormulaExactly) {
  // gamma = ceil(N / (M - delta)) with delta = 1 bookkeeping slot.
  const std::uint64_t size_a = 6, size_b = 18, n = 6, m = 4;
  EquijoinSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.n_max = n;
  spec.result_size = 10;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), m);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh4(Ch4Alg::kAlg2, *world, n);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  const std::uint64_t gamma = CeilDiv(n, m - 1);
  const std::uint64_t blk = CeilDiv(n, gamma);
  // gets: |A| + gamma |A| |B|; puts: |A| * gamma * blk.
  EXPECT_EQ(world->copro->metrics().gets, size_a + gamma * size_a * size_b);
  EXPECT_EQ(world->copro->metrics().puts, size_a * gamma * blk);
  EXPECT_EQ(world->copro->metrics().disk_writes, size_a * gamma * blk);
}

TEST(Ch4CostReconciliation, Algorithm1TransfersMatchFormulaExactly) {
  // With N a power of two (scratch = exactly 2N), the measured counts are:
  // gets  = |A| + |A||B| + sort_gets
  // puts  = 2N|A| + |A||B| + sort_puts
  // where each full scratch sort moves 4 * comparators(2N) elements and
  // runs ceil(|B|/N) times per A tuple.
  const std::uint64_t size_a = 4, size_b = 16, n = 4;
  EquijoinSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.n_max = n;
  spec.result_size = 8;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 2);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh4(Ch4Alg::kAlg1, *world, n);
  ASSERT_TRUE(outcome.ok());

  const std::uint64_t sorts_per_a = CeilDiv(size_b, n);  // |B|/N rounds
  const std::uint64_t comparators = oblivious::BitonicComparators(2 * n);
  const std::uint64_t sort_gets = size_a * sorts_per_a * 2 * comparators;
  EXPECT_EQ(world->copro->metrics().gets,
            size_a + size_a * size_b + sort_gets);
  EXPECT_EQ(world->copro->metrics().puts,
            size_a * 2 * n + size_a * size_b + sort_gets);
  EXPECT_EQ(world->copro->metrics().disk_writes, size_a * n);
}

TEST(Ch4CostReconciliation, Algorithm3TransfersMatchFormulaExactly) {
  // B pre-padded to a power of two; the measured counts are:
  // sort: 4 * comparators(|B|p)
  // per (a, b): 3 transfers; per a: 1 get + N puts; disk: N|A|.
  const std::uint64_t size_a = 5, size_b = 16, n = 4;
  EquijoinSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.n_max = n;
  spec.result_size = 9;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 2, /*pad_pow2=*/true);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh4(Ch4Alg::kAlg3, *world, n);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  const std::uint64_t bp = NextPowerOfTwo(size_b);
  const std::uint64_t sort_moves =
      4 * oblivious::BitonicComparators(bp);  // 2 gets + 2 puts each
  EXPECT_EQ(world->copro->metrics().TupleTransfers(),
            sort_moves + size_a          // get each a
                + size_a * n             // initial decoys
                + 3 * size_a * bp);      // get b + get scratch + put scratch
  EXPECT_EQ(world->copro->metrics().disk_writes, size_a * n);
}

// ---------------------------------------------------------------------------
// Definition 1 audits: shape-equal inputs, identical traces.
// ---------------------------------------------------------------------------

class Ch4AuditTest : public ::testing::TestWithParam<Ch4Alg> {};

TEST_P(Ch4AuditTest, TraceIdenticalAcrossShapeEqualInputs) {
  const Ch4Alg alg = GetParam();
  auto runner = [&](std::uint64_t w) -> Result<AuditRun> {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 4 + 3 * w;  // different S — N|A| shape hides it
    spec.seed = 1000 + w * 77;     // entirely different keys/content
    auto workload = MakeEquijoinWorkload(spec);
    if (!workload.ok()) return workload.status();
    auto world = MakeWorld(std::move(*workload), 4,
                           alg == Ch4Alg::kAlg3, /*copro_seed=*/42);
    PPJ_ASSIGN_OR_RETURN(Ch4Outcome outcome, RunCh4(alg, *world, 4));
    (void)outcome;
    AuditRun run;
    run.fingerprint = world->copro->trace().fingerprint();
    run.retained_events = world->copro->trace().retained_events();
    run.retained_complete = world->copro->trace().complete();
    return run;
  };
  auto audit = PrivacyAuditor::CompareManyWorlds(runner, 4);
  ASSERT_TRUE(audit.ok()) << audit.status();
  EXPECT_TRUE(audit->identical) << audit->detail;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Ch4AuditTest,
                         ::testing::Values(Ch4Alg::kAlg1,
                                           Ch4Alg::kAlg1Variant,
                                           Ch4Alg::kAlg2, Ch4Alg::kAlg3));

TEST(Ch4AuditTest2, SkewedVsUniformMatchesSameTrace) {
  // The hash-join leak scenario: skewed vs uniform key distribution. The
  // safe algorithms must be blind to it (same |A|, |B|, N, S).
  auto runner = [&](std::uint64_t w) -> Result<AuditRun> {
    relation::CellSpec spec;
    spec.size_a = 8;
    spec.size_b = 12;
    spec.result_size = 8;
    spec.seed = 5 + w;
    spec.skew_rows = (w == 0) ? 0 : 1;  // world 1: all matches on one row
    auto workload = MakeCellWorkload(spec);
    if (!workload.ok()) return workload.status();
    // Fix N to the worst case 12 so both worlds run the same shape.
    auto world = MakeWorld(std::move(*workload), 4, false, 7);
    PPJ_ASSIGN_OR_RETURN(Ch4Outcome outcome,
                         RunCh4(Ch4Alg::kAlg1, *world, 12));
    (void)outcome;
    AuditRun run;
    run.fingerprint = world->copro->trace().fingerprint();
    run.retained_events = world->copro->trace().retained_events();
    return run;
  };
  auto audit = PrivacyAuditor::CompareWorlds(runner);
  ASSERT_TRUE(audit.ok());
  EXPECT_TRUE(audit->identical) << audit->detail;
}

}  // namespace
}  // namespace ppj::core
