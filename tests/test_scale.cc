// Medium-scale stress runs: orders of magnitude beyond the unit tests,
// still seconds on a laptop. These catch integer-boundary and buffer
// mistakes that tiny inputs cannot, and exercise the Algorithm 6 segment
// machinery at realistic segment counts.

#include <gtest/gtest.h>

#include "common/math.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "core/join_result.h"
#include "test_util.h"

namespace ppj {
namespace {

using core::MultiwayJoin;
using relation::MakeCellWorkload;
using test::MakeWorld;

TEST(ScaleTest, Algorithm5MediumScaleExactness) {
  // L = 96 x 96 = 9216, S = 300, M = 64 -> ceil(S/M) = 5 scans.
  relation::CellSpec spec;
  spec.size_a = 96;
  spec.size_b = 96;
  spec.result_size = 300;
  spec.seed = 77;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 64);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm5(*world->copro, join);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->result_size, 300u);
  EXPECT_EQ(world->copro->metrics().ituple_reads,
            CeilDiv(300, 64) * 96u * 96u);
  EXPECT_EQ(world->copro->metrics().puts, 300u);

  auto decoded = core::DecodeJoinOutput(
      world->host, outcome->output_region, outcome->result_size,
      *world->key_out, world->result_schema.get());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 300u);
}

TEST(ScaleTest, Algorithm6MediumScaleSegments) {
  // L = 128 x 128 = 16384, S = 512, M = 32: dozens of segments, a real
  // windowed filter, and a hypergeometric n* solve at this scale.
  relation::CellSpec spec;
  spec.size_a = 128;
  spec.size_b = 128;
  spec.result_size = 512;
  spec.seed = 99;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 32);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome =
      core::RunAlgorithm6(*world->copro, join, {.epsilon = 1e-9});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->blemish);
  EXPECT_EQ(outcome->result_size, 512u);
  EXPECT_GT(outcome->n_star, 32u);
  // Two passes of L logical reads (screen + main).
  EXPECT_EQ(world->copro->metrics().ituple_reads, 2u * 16384u);

  auto decoded = core::DecodeJoinOutput(
      world->host, outcome->output_region, outcome->result_size,
      *world->key_out, world->result_schema.get());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->size(), 512u);
}

}  // namespace
}  // namespace ppj
