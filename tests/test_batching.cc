// Golden-fingerprint tests for the batched transfer pipeline.
//
// Contract under test (DESIGN.md, "Batched T<->H transfers"): batching is a
// physical-transfer optimization only. A batched run (batch_slots = 0, the
// auto default) and a forced-scalar run (batch_slots = 1) of the same world
// must be indistinguishable in every host-observable dimension the privacy
// argument relies on — the AccessTrace fingerprint (Definition 1/3), the
// timing fingerprint, and the per-tuple transfer counters — and must decode
// to the same join result. Only the number of physical host round trips
// (batch_gets / batch_puts) may differ.

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "core/join_result.h"
#include "core/parallel.h"
#include "core/privacy_auditor.h"
#include "test_util.h"

namespace ppj::core {
namespace {

using relation::EquijoinSpec;
using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

/// Everything the host observes about one execution, plus the decoded
/// recipient view for the correctness half of the comparison.
struct GoldenRecord {
  sim::TraceFingerprint trace;
  sim::TraceFingerprint timing;
  std::uint64_t transfers = 0;
  std::uint64_t cipher_calls = 0;
  std::uint64_t batch_gets = 0;
  std::uint64_t batch_puts = 0;
  std::vector<relation::Tuple> decoded;
};

/// MakeWorld with an explicit batch_slots override. The relations are sealed
/// host-side before the coprocessor touches anything, so swapping the device
/// after construction leaves the world bit-identical.
std::unique_ptr<TwoPartyWorld> MakeBatchWorld(
    relation::TwoTableWorkload workload, std::uint64_t memory_tuples,
    bool pad_pow2, std::uint64_t batch_slots,
    const crypto::Ocb::Options& crypto_options = {}) {
  auto world = MakeWorld(std::move(workload), memory_tuples, pad_pow2,
                         /*copro_seed=*/42, crypto_options);
  if (world == nullptr) return nullptr;
  world->copro = std::make_unique<sim::Coprocessor>(
      &world->host,
      sim::CoprocessorOptions{.memory_tuples = memory_tuples,
                              .seed = 42,
                              .batch_slots = batch_slots});
  return world;
}

Status FillRecord(TwoPartyWorld& world, sim::RegionId output,
                  std::uint64_t slots, GoldenRecord* rec) {
  rec->trace = world.copro->trace().fingerprint();
  rec->timing = world.copro->timing_fingerprint();
  rec->transfers = world.copro->metrics().TupleTransfers();
  rec->cipher_calls = world.copro->metrics().cipher_calls;
  rec->batch_gets = world.copro->metrics().batch_gets;
  rec->batch_puts = world.copro->metrics().batch_puts;
  PPJ_ASSIGN_OR_RETURN(rec->decoded,
                       DecodeJoinOutput(world.host, output, slots,
                                        *world.key_out,
                                        world.result_schema.get()));
  return Status::OK();
}

/// Both runs must agree on every observable; the batched one must show
/// actual amortization — strictly fewer physical round trips than tuple
/// transfers (scalar semantics would need one round trip per transfer).
void ExpectGoldenMatch(const GoldenRecord& scalar,
                       const GoldenRecord& batched) {
  EXPECT_EQ(scalar.trace.digest, batched.trace.digest);
  EXPECT_EQ(scalar.trace.count, batched.trace.count);
  EXPECT_EQ(scalar.timing.digest, batched.timing.digest);
  EXPECT_EQ(scalar.timing.count, batched.timing.count);
  EXPECT_EQ(scalar.transfers, batched.transfers);
  EXPECT_EQ(scalar.cipher_calls, batched.cipher_calls);
  EXPECT_TRUE(relation::SameTupleMultiset(scalar.decoded, batched.decoded))
      << "scalar decoded " << scalar.decoded.size() << " tuples, batched "
      << batched.decoded.size();
  EXPECT_GT(batched.batch_gets, 0u);
  EXPECT_GT(batched.batch_puts, 0u);
  EXPECT_LT(batched.batch_gets + batched.batch_puts, batched.transfers);
}

// ---- Chapter 4 ----------------------------------------------------------

enum class Ch4Alg { kAlg1, kAlg1Variant, kAlg2, kAlg3 };

Result<GoldenRecord> RunCh4Golden(Ch4Alg which, std::uint64_t batch_slots,
                                  const crypto::Ocb::Options& crypto_options =
                                      {}) {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 6;
  spec.seed = 5;
  PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                       MakeEquijoinWorkload(spec));
  auto world = MakeBatchWorld(std::move(workload), /*memory_tuples=*/4,
                              which == Ch4Alg::kAlg3, batch_slots,
                              crypto_options);
  if (world == nullptr) return Status::Internal("world construction failed");
  TwoWayJoin join{world->a.get(), world->b.get(),
                  world->workload.predicate.get(), world->key_out.get()};
  auto run = [&]() -> Result<Ch4Outcome> {
    switch (which) {
      case Ch4Alg::kAlg1:
        return RunAlgorithm1(*world->copro, join, {.n = 4});
      case Ch4Alg::kAlg1Variant:
        return RunAlgorithm1Variant(*world->copro, join, {.n = 4});
      case Ch4Alg::kAlg2:
        return RunAlgorithm2(*world->copro, join, {.n = 4});
      case Ch4Alg::kAlg3:
        return RunAlgorithm3(*world->copro, join, {.n = 4});
    }
    return Status::Internal("unreachable");
  };
  PPJ_ASSIGN_OR_RETURN(Ch4Outcome outcome, run());
  GoldenRecord rec;
  PPJ_RETURN_NOT_OK(FillRecord(*world, outcome.output_region,
                               outcome.output_slots, &rec));
  return rec;
}

class Ch4GoldenTest : public ::testing::TestWithParam<Ch4Alg> {};

TEST_P(Ch4GoldenTest, BatchedMatchesScalarFingerprints) {
  auto scalar = RunCh4Golden(GetParam(), /*batch_slots=*/1);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  auto batched = RunCh4Golden(GetParam(), /*batch_slots=*/0);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ExpectGoldenMatch(*scalar, *batched);
}

// The wide OCB kernels are byte-identical ciphers, so a run on the wide
// path, the scalar-kernel path, and the software-AES fallback must agree on
// *every* golden dimension — traces, timing, transfers, cipher charges and
// the decoded result — not just the batching counters.
TEST_P(Ch4GoldenTest, KernelWidthAndBackendInvisibleInFingerprints) {
  auto wide = RunCh4Golden(GetParam(), /*batch_slots=*/0);
  ASSERT_TRUE(wide.ok()) << wide.status();
  auto scalar_kernels =
      RunCh4Golden(GetParam(), /*batch_slots=*/0, {.wide_kernels = false});
  ASSERT_TRUE(scalar_kernels.ok()) << scalar_kernels.status();
  ExpectGoldenMatch(*wide, *scalar_kernels);
  auto software = RunCh4Golden(GetParam(), /*batch_slots=*/0,
                               {.backend = crypto::Aes128::Backend::kSoftware});
  ASSERT_TRUE(software.ok()) << software.status();
  ExpectGoldenMatch(*wide, *software);
}

INSTANTIATE_TEST_SUITE_P(AllChapter4, Ch4GoldenTest,
                         ::testing::Values(Ch4Alg::kAlg1,
                                           Ch4Alg::kAlg1Variant,
                                           Ch4Alg::kAlg2, Ch4Alg::kAlg3));

// ---- Chapter 5 ----------------------------------------------------------

enum class Ch5Alg { kAlg4, kAlg5, kAlg6 };

Result<GoldenRecord> RunCh5Golden(Ch5Alg which, std::uint64_t batch_slots,
                                  const crypto::Ocb::Options& crypto_options =
                                      {}) {
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 12;
  spec.result_size = 9;
  spec.seed = 17;
  PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                       MakeCellWorkload(spec));
  auto world = MakeBatchWorld(std::move(workload), /*memory_tuples=*/4,
                              /*pad_pow2=*/false, batch_slots,
                              crypto_options);
  if (world == nullptr) return Status::Internal("world construction failed");
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto run = [&]() -> Result<Ch5Outcome> {
    switch (which) {
      case Ch5Alg::kAlg4:
        return RunAlgorithm4(*world->copro, join);
      case Ch5Alg::kAlg5:
        return RunAlgorithm5(*world->copro, join);
      case Ch5Alg::kAlg6:
        return RunAlgorithm6(*world->copro, join,
                             {.epsilon = 1e-6, .order_seed = 0xBEEF});
    }
    return Status::Internal("unreachable");
  };
  PPJ_ASSIGN_OR_RETURN(Ch5Outcome outcome, run());
  GoldenRecord rec;
  PPJ_RETURN_NOT_OK(FillRecord(*world, outcome.output_region,
                               outcome.result_size, &rec));
  return rec;
}

class Ch5GoldenTest : public ::testing::TestWithParam<Ch5Alg> {};

TEST_P(Ch5GoldenTest, BatchedMatchesScalarFingerprints) {
  auto scalar = RunCh5Golden(GetParam(), /*batch_slots=*/1);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  auto batched = RunCh5Golden(GetParam(), /*batch_slots=*/0);
  ASSERT_TRUE(batched.ok()) << batched.status();
  ExpectGoldenMatch(*scalar, *batched);
}

TEST_P(Ch5GoldenTest, KernelWidthAndBackendInvisibleInFingerprints) {
  auto wide = RunCh5Golden(GetParam(), /*batch_slots=*/0);
  ASSERT_TRUE(wide.ok()) << wide.status();
  auto scalar_kernels =
      RunCh5Golden(GetParam(), /*batch_slots=*/0, {.wide_kernels = false});
  ASSERT_TRUE(scalar_kernels.ok()) << scalar_kernels.status();
  ExpectGoldenMatch(*wide, *scalar_kernels);
  auto software = RunCh5Golden(GetParam(), /*batch_slots=*/0,
                               {.backend = crypto::Aes128::Backend::kSoftware});
  ASSERT_TRUE(software.ok()) << software.status();
  ExpectGoldenMatch(*wide, *software);
}

INSTANTIATE_TEST_SUITE_P(AllChapter5, Ch5GoldenTest,
                         ::testing::Values(Ch5Alg::kAlg4, Ch5Alg::kAlg5,
                                           Ch5Alg::kAlg6));

// ---- Parallel execution -------------------------------------------------

/// Parallel outcomes expose per-device transfer counters instead of traces
/// (each worker owns its own device); the golden comparison is over the
/// cost model — makespan and total transfers — plus the decoded result.
TEST(ParallelGoldenTest, BatchedMatchesScalarCostModel) {
  auto run = [](std::uint64_t batch_slots) -> Result<ParallelOutcome> {
    relation::CellSpec spec;
    spec.size_a = 8;
    spec.size_b = 12;
    spec.result_size = 9;
    spec.seed = 17;
    PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                         MakeCellWorkload(spec));
    auto world = MakeBatchWorld(std::move(workload), 4, false, batch_slots);
    if (world == nullptr) {
      return Status::Internal("world construction failed");
    }
    const relation::PairAsMultiway multiway(world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    return RunParallelAlgorithm5(&world->host, join, /*parallelism=*/2,
                                 {.memory_tuples = 4,
                                  .seed = 1,
                                  .batch_slots = batch_slots});
  };
  auto scalar = run(1);
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  auto batched = run(0);
  ASSERT_TRUE(batched.ok()) << batched.status();
  EXPECT_EQ(scalar->result_size, batched->result_size);
  EXPECT_EQ(scalar->makespan_transfers, batched->makespan_transfers);
  EXPECT_EQ(scalar->total_transfers, batched->total_transfers);
  ASSERT_EQ(scalar->per_coprocessor.size(), batched->per_coprocessor.size());
  std::uint64_t batched_ranges = 0;
  for (std::size_t d = 0; d < scalar->per_coprocessor.size(); ++d) {
    EXPECT_EQ(scalar->per_coprocessor[d].TupleTransfers(),
              batched->per_coprocessor[d].TupleTransfers());
    batched_ranges += batched->per_coprocessor[d].batch_gets +
                      batched->per_coprocessor[d].batch_puts;
  }
  EXPECT_GT(batched_ranges, 0u);
  EXPECT_LT(batched_ranges, batched->total_transfers);
}

// ---- Privacy audit on the batched path ----------------------------------

/// Definition 1/3 must keep holding when batching is on: worlds that agree
/// on |A|, |B|, N and S but differ in content and keys must leave identical
/// access traces through the batched pipeline.
TEST(BatchedAuditTest, TraceIdenticalAcrossShapeEqualInputs) {
  auto runner = [](std::uint64_t w) -> Result<AuditRun> {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 4 + 3 * w;  // different S — the N|A| shape hides it
    spec.seed = 1000 + w * 77;     // entirely different keys and content
    PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                         MakeEquijoinWorkload(spec));
    auto world = MakeBatchWorld(std::move(workload), 4, /*pad_pow2=*/false,
                                /*batch_slots=*/0);
    if (world == nullptr) {
      return Status::Internal("world construction failed");
    }
    TwoWayJoin join{world->a.get(), world->b.get(),
                    world->workload.predicate.get(), world->key_out.get()};
    PPJ_ASSIGN_OR_RETURN(Ch4Outcome outcome,
                         RunAlgorithm1(*world->copro, join, {.n = 4}));
    (void)outcome;
    AuditRun run;
    run.fingerprint = world->copro->trace().fingerprint();
    run.retained_events = world->copro->trace().retained_events();
    run.retained_complete = world->copro->trace().complete();
    return run;
  };
  auto audit = PrivacyAuditor::CompareManyWorlds(runner, 3);
  ASSERT_TRUE(audit.ok()) << audit.status();
  EXPECT_TRUE(audit->identical) << audit->detail;
}

}  // namespace
}  // namespace ppj::core
