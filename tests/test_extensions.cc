// Tests for the extension modules: aggregation over joins (the paper's
// future-work item), the cost-model-driven planner, the Section 4.4.3
// memory partition optimizer, parallel Algorithm 6, and the timing
// side-channel model.

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/chapter4_costs.h"
#include "analysis/chapter5_costs.h"
#include "analysis/memory_partition.h"
#include "core/aggregate.h"
#include "core/algorithm4.h"
#include "core/join_result.h"
#include "core/parallel.h"
#include "core/planner.h"
#include "test_util.h"

namespace ppj {
namespace {

using core::MultiwayJoin;
using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

struct AggFixture {
  std::unique_ptr<TwoPartyWorld> world;
  std::unique_ptr<relation::PairAsMultiway> multiway;
  MultiwayJoin join;
};

AggFixture MakeAggFixture(std::uint64_t s, std::uint64_t seed = 5) {
  relation::CellSpec spec;
  spec.size_a = 10;
  spec.size_b = 10;
  spec.result_size = s;
  spec.seed = seed;
  auto workload = MakeCellWorkload(spec);
  EXPECT_TRUE(workload.ok());
  AggFixture fx;
  fx.world = MakeWorld(std::move(*workload), 4);
  fx.multiway = std::make_unique<relation::PairAsMultiway>(
      fx.world->workload.predicate.get());
  fx.join = MultiwayJoin{{fx.world->a.get(), fx.world->b.get()},
                         fx.multiway.get(), fx.world->key_out.get()};
  return fx;
}

TEST(AggregateTest, CountMatchesGroundTruth) {
  AggFixture fx = MakeAggFixture(17);
  auto result = core::RunAggregateJoin(*fx.world->copro, fx.join,
                                       {.kind = core::AggregateKind::kCount});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->count, 17);
  // Reads the whole cartesian space once — cost L, below even L + S.
  EXPECT_EQ(fx.world->copro->metrics().ituple_reads, 100u);
  EXPECT_EQ(fx.world->copro->metrics().puts, 0u);
}

TEST(AggregateTest, SumMinMaxAvgOverJoinColumn) {
  AggFixture fx = MakeAggFixture(9);
  // Aggregate column 0 ("id") of table 0 (A side).
  core::AggregateSpec spec;
  spec.kind = core::AggregateKind::kSum;
  spec.table = 0;
  spec.column = 0;
  auto result = core::RunAggregateJoin(*fx.world->copro, fx.join, spec);
  ASSERT_TRUE(result.ok()) << result.status();

  // Ground truth by plaintext evaluation.
  std::int64_t sum = 0, mn = 0, mx = 0, count = 0;
  bool first = true;
  for (const auto& ta : fx.world->workload.a->tuples()) {
    for (const auto& tb : fx.world->workload.b->tuples()) {
      if (!fx.world->workload.predicate->Match(ta, tb)) continue;
      const std::int64_t v = ta.GetInt64(0);
      sum += v;
      mn = first ? v : std::min(mn, v);
      mx = first ? v : std::max(mx, v);
      first = false;
      ++count;
    }
  }
  EXPECT_EQ(result->count, count);
  EXPECT_EQ(result->sum, sum);
  EXPECT_EQ(result->min, mn);
  EXPECT_EQ(result->max, mx);
  EXPECT_DOUBLE_EQ(result->average,
                   static_cast<double>(sum) / static_cast<double>(count));
}

TEST(AggregateTest, ValidatesSpec) {
  AggFixture fx = MakeAggFixture(3);
  core::AggregateSpec spec;
  spec.kind = core::AggregateKind::kSum;
  spec.table = 5;
  EXPECT_FALSE(core::RunAggregateJoin(*fx.world->copro, fx.join, spec).ok());
  spec.table = 0;
  spec.column = 99;
  EXPECT_FALSE(core::RunAggregateJoin(*fx.world->copro, fx.join, spec).ok());
  spec.column = 2;  // tag: string column, not aggregatable
  EXPECT_FALSE(core::RunAggregateJoin(*fx.world->copro, fx.join, spec).ok());
}

TEST(AggregateTest, TraceIsDataIndependent) {
  auto fingerprint = [&](std::uint64_t seed) {
    AggFixture fx = MakeAggFixture(12, seed);
    auto result = core::RunAggregateJoin(
        *fx.world->copro, fx.join, {.kind = core::AggregateKind::kCount});
    EXPECT_TRUE(result.ok());
    return fx.world->copro->trace().fingerprint();
  };
  EXPECT_EQ(fingerprint(1), fingerprint(2));
}

TEST(GroupByCountTest, HistogramMatchesGroundTruth) {
  // Group matched pairs by B's id column over the known domain [0, 9].
  AggFixture fx = MakeAggFixture(14, 8);
  core::GroupByCountSpec spec;
  spec.table = 1;   // B side of the join
  spec.column = 0;  // id in [0, 10)
  spec.domain_lo = 0;
  spec.domain_hi = 9;
  auto result =
      core::RunGroupByCountJoin(*fx.world->copro, fx.join, spec);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->counts.size(), 10u);
  EXPECT_EQ(result->overflow, 0);

  std::vector<std::int64_t> expected(10, 0);
  std::int64_t total = 0;
  for (const auto& ta : fx.world->workload.a->tuples()) {
    for (const auto& tb : fx.world->workload.b->tuples()) {
      if (!fx.world->workload.predicate->Match(ta, tb)) continue;
      ++expected[static_cast<std::size_t>(tb.GetInt64(0))];
      ++total;
    }
  }
  EXPECT_EQ(result->counts, expected);
  EXPECT_EQ(total, 14);
}

TEST(GroupByCountTest, OverflowBucketAndValidation) {
  AggFixture fx = MakeAggFixture(6, 9);
  core::GroupByCountSpec spec;
  spec.table = 1;
  spec.column = 0;
  spec.domain_lo = 0;
  spec.domain_hi = 3;  // ids 4..9 overflow
  auto result =
      core::RunGroupByCountJoin(*fx.world->copro, fx.join, spec);
  ASSERT_TRUE(result.ok());
  std::int64_t in_domain = 0;
  for (std::int64_t c : result->counts) in_domain += c;
  EXPECT_EQ(in_domain + result->overflow, 6);

  spec.domain_hi = -1;  // empty domain
  EXPECT_FALSE(
      core::RunGroupByCountJoin(*fx.world->copro, fx.join, spec).ok());
  spec.domain_lo = 0;
  spec.domain_hi = 100000;  // too many buckets
  EXPECT_EQ(
      core::RunGroupByCountJoin(*fx.world->copro, fx.join, spec)
          .status()
          .code(),
      StatusCode::kCapacityExceeded);
  spec.domain_hi = 3;
  spec.column = 2;  // string column
  EXPECT_FALSE(
      core::RunGroupByCountJoin(*fx.world->copro, fx.join, spec).ok());
}

TEST(GroupByCountTest, TraceIsDataIndependent) {
  auto fingerprint = [&](std::uint64_t seed) {
    AggFixture fx = MakeAggFixture(12, seed);
    core::GroupByCountSpec spec;
    spec.table = 0;
    spec.column = 0;
    spec.domain_lo = 0;
    spec.domain_hi = 9;
    EXPECT_TRUE(
        core::RunGroupByCountJoin(*fx.world->copro, fx.join, spec).ok());
    return fx.world->copro->trace().fingerprint();
  };
  EXPECT_EQ(fingerprint(3), fingerprint(4));
}

// ---------------------------------------------------------------------------
// Planner
// ---------------------------------------------------------------------------

TEST(PlannerTest, ExactOutputRestrictsToChapter5) {
  core::PlannerInput input;
  input.size_a = 1000;
  input.size_b = 1000;
  input.n = 10;
  input.s = 5000;
  input.m = 64;
  input.exact_output_required = true;
  input.epsilon = 0.0;
  const core::Plan plan = core::PlanJoin(input);
  EXPECT_TRUE(plan.algorithm == core::Algorithm::kAlgorithm4 ||
              plan.algorithm == core::Algorithm::kAlgorithm5);
}

TEST(PlannerTest, EpsilonUnlocksAlgorithm6) {
  core::PlannerInput input;
  input.size_a = 800;
  input.size_b = 800;
  input.s = 6400;
  input.m = 64;
  input.exact_output_required = true;
  input.epsilon = 1e-20;
  const core::Plan plan = core::PlanJoin(input);
  EXPECT_EQ(plan.algorithm, core::Algorithm::kAlgorithm6);
  EXPECT_LT(plan.predicted_transfers,
            analysis::CostAlgorithm5(800 * 800, 6400, 64));
}

TEST(PlannerTest, SmallNWithMemoryPicksAlgorithm2) {
  // gamma = 1 territory: Section 4.6.1 says Algorithm 2 dominates Ch.4;
  // with a generous epsilon = 0 and loose exactness it wins overall too
  // (it avoids both oblivious sorting and repeated scans).
  core::PlannerInput input;
  input.size_a = 1 << 12;
  input.size_b = 1 << 12;
  input.equality_predicate = false;
  input.n = 8;
  input.s = 1 << 12;
  input.m = 64;
  const core::Plan plan = core::PlanJoin(input);
  EXPECT_EQ(plan.algorithm, core::Algorithm::kAlgorithm2);
}

TEST(PlannerTest, EquijoinHighGammaPicksAlgorithm3AmongChapter4) {
  // gamma >= 4 equijoin: Algorithm 3 beats 1 and 2 (Section 4.6.3). Make
  // the Chapter 5 family unattractive via a huge S (their costs scale with
  // S-dependent scans/filters).
  core::PlannerInput input;
  input.size_a = 1 << 12;
  input.size_b = 1 << 12;
  input.equality_predicate = true;
  input.n = 1024;   // gamma = 1024/63 >> 4
  input.s = (1u << 21);
  input.m = 64;
  const core::Plan plan = core::PlanJoin(input);
  EXPECT_EQ(plan.algorithm, core::Algorithm::kAlgorithm3)
      << core::ToString(plan.algorithm) << ": " << plan.rationale;
}

TEST(PlannerTest, PredictionsAreFiniteAndPositive) {
  for (std::uint64_t m : {1u, 16u, 1024u}) {
    for (std::uint64_t s : {1u, 100u, 10000u}) {
      core::PlannerInput input;
      input.size_a = 256;
      input.size_b = 256;
      input.s = s;
      input.m = m;
      input.epsilon = 1e-10;
      const core::Plan plan = core::PlanJoin(input);
      EXPECT_GT(plan.predicted_transfers, 0.0);
      EXPECT_TRUE(std::isfinite(plan.predicted_transfers));
      EXPECT_FALSE(plan.rationale.empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Memory partition (Section 4.4.3)
// ---------------------------------------------------------------------------

TEST(MemoryPartitionTest, LargeNCaseSplitsBetweenBAndResults) {
  // N > F: one A tuple; gamma passes; blk = ceil(N/gamma) <= F.
  const analysis::MemoryPartition p = analysis::OptimalPartition(100, 16);
  EXPECT_EQ(p.tuples_a, 1u);
  EXPECT_EQ(p.passes_over_b, 7u);  // ceil(100/16)
  EXPECT_EQ(p.joined, 15u);        // ceil(100/7)
  EXPECT_LE(p.joined, 16u);
  EXPECT_EQ(p.tuples_b + p.joined, 16u);
}

TEST(MemoryPartitionTest, SmallNCaseHoldsQATuples) {
  // N <= F: Q = floor(F / (1 + N)) A tuples with all their matches.
  const analysis::MemoryPartition p = analysis::OptimalPartition(3, 16);
  EXPECT_EQ(p.tuples_a, 4u);  // 16 / 4
  EXPECT_EQ(p.joined, 12u);
  EXPECT_EQ(p.passes_over_b, 1u);
}

TEST(MemoryPartitionTest, BlockingNeverBeatsNonBlocking) {
  // Section 4.4.3's claim: for any K, N' with K*N' < M the blocked variant
  // costs at least as much as the non-blocking Algorithm 2.
  const double size_a = 1024, size_b = 4096, n = 64, m_free = 15;
  const double base =
      analysis::NonBlockingAlgorithm2Cost(size_a, size_b, n, m_free);
  for (double k : {2.0, 4.0, 8.0}) {
    for (double n_prime : {1.0, 2.0, 4.0}) {
      if (k * n_prime >= m_free + 1) continue;
      EXPECT_GE(analysis::BlockedAlgorithm2Cost(size_a, size_b, n, k,
                                                n_prime),
                base)
          << "K=" << k << " N'=" << n_prime;
    }
  }
}

// ---------------------------------------------------------------------------
// Parallel Algorithm 6
// ---------------------------------------------------------------------------

class ParallelAlg6Test : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelAlg6Test, ExactResultAtAnyWidth) {
  const unsigned p = GetParam();
  relation::CellSpec spec;
  spec.size_a = 16;
  spec.size_b = 16;
  spec.result_size = 40;
  spec.seed = 77;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), /*memory=*/8);
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunParallelAlgorithm6(
      &world->host, join, p, {.memory_tuples = 8, .seed = 2},
      {.epsilon = 1e-6, .order_seed = 0xFEED});
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *world->workload.a, *world->workload.b, *world->workload.predicate,
      world->result_schema.get());
  EXPECT_EQ(outcome->result_size, truth.result_size);
  auto decoded = core::DecodeJoinOutput(
      world->host, outcome->output_region, outcome->result_size,
      *world->key_out, world->result_schema.get());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected));
}

INSTANTIATE_TEST_SUITE_P(Widths, ParallelAlg6Test,
                         ::testing::Values(1u, 2u, 4u));

// ---------------------------------------------------------------------------
// Timing side channel (Sections 3.3.2 / 3.4.2 / 3.4.3)
// ---------------------------------------------------------------------------

sim::TraceFingerprint TimingOfRun(std::uint64_t dataset_seed,
                                  bool enforce_fixed_time) {
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 8;
  spec.result_size = 12;
  spec.seed = dataset_seed;
  auto workload = MakeCellWorkload(spec);
  EXPECT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 2);
  // Rebuild the coprocessor with the requested timing mode.
  world->copro = std::make_unique<sim::Coprocessor>(
      &world->host,
      sim::CoprocessorOptions{.memory_tuples = 2,
                              .seed = 42,
                              .enforce_fixed_time = enforce_fixed_time});
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm4(*world->copro, join);
  EXPECT_TRUE(outcome.ok());
  return world->copro->timing_fingerprint();
}

TEST(TimingAuditTest, FixedTimeEnforcementHidesMatchPattern) {
  // Same shape (S = 12), different match placement: with fixed-time
  // padding the inter-request timing is identical.
  EXPECT_EQ(TimingOfRun(1, true), TimingOfRun(2, true));
}

TEST(TimingAuditTest, WithoutEnforcementTimingLeaks) {
  // With enforcement off, evaluation time tracks match outcomes: the
  // adversary observing inter-request times distinguishes the datasets
  // even though the *access trace* is still identical (Section 3.4.2).
  EXPECT_NE(TimingOfRun(1, false), TimingOfRun(2, false));
}

TEST(TimingAuditTest, AccessTraceAloneStaysClean) {
  // The access-pattern audit cannot see the timing leak — which is exactly
  // why the paper needs the separate fixed-time principle.
  auto trace_of = [&](std::uint64_t seed) {
    relation::CellSpec spec;
    spec.size_a = 8;
    spec.size_b = 8;
    spec.result_size = 12;
    spec.seed = seed;
    auto workload = MakeCellWorkload(spec);
    auto world = MakeWorld(std::move(*workload), 2);
    world->copro = std::make_unique<sim::Coprocessor>(
        &world->host,
        sim::CoprocessorOptions{.memory_tuples = 2,
                                .seed = 42,
                                .enforce_fixed_time = false});
    const relation::PairAsMultiway multiway(world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    EXPECT_TRUE(core::RunAlgorithm4(*world->copro, join).ok());
    return world->copro->trace().fingerprint();
  };
  EXPECT_EQ(trace_of(1), trace_of(2));
}

}  // namespace
}  // namespace ppj
