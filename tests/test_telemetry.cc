// Trace-neutrality goldens for the phase-scoped telemetry layer, plus
// coverage for the trace-summary utilities it reports through.
//
// Contract under test (DESIGN.md / docs/OBSERVABILITY.md): telemetry is an
// observer. A run with a telemetry context installed and a run without one
// must be indistinguishable in every host-observable dimension the privacy
// argument relies on — the AccessTrace fingerprint (Definition 1/3), the
// timing fingerprint, and the per-tuple transfer counters. This must hold
// for every algorithm, with and without batched transfers, serial and
// parallel, and regardless of whether the library was built with
// -DPPJ_TELEMETRY=OFF (where spans compile to nothing).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/telemetry.h"
#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "core/join_result.h"
#include "core/parallel.h"
#include "relation/generator.h"
#include "service/service.h"
#include "sim/trace_stats.h"
#include "test_util.h"

namespace ppj {
namespace {

using core::MultiwayJoin;
using core::TwoWayJoin;
using relation::EquijoinSpec;
using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

// ---- Neutrality goldens: serial algorithms ------------------------------

enum class Alg { kAlg1, kAlg1Variant, kAlg2, kAlg3, kAlg4, kAlg5, kAlg6 };

/// What the host observes about one execution.
struct Observation {
  sim::TraceFingerprint trace;
  sim::TraceFingerprint timing;
  std::uint64_t transfers = 0;
};

std::unique_ptr<TwoPartyWorld> MakeAlgWorld(Alg which,
                                            std::uint64_t batch_slots) {
  Result<relation::TwoTableWorkload> workload =
      Status::Internal("workload not built");
  if (which == Alg::kAlg4 || which == Alg::kAlg5 || which == Alg::kAlg6) {
    relation::CellSpec spec;
    spec.size_a = 8;
    spec.size_b = 12;
    spec.result_size = 9;
    spec.seed = 17;
    workload = MakeCellWorkload(spec);
  } else {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 6;
    spec.seed = 5;
    workload = MakeEquijoinWorkload(spec);
  }
  if (!workload.ok()) return nullptr;
  auto world = MakeWorld(std::move(*workload), /*memory_tuples=*/4,
                         /*pad_pow2=*/which == Alg::kAlg3);
  if (world == nullptr) return nullptr;
  world->copro = std::make_unique<sim::Coprocessor>(
      &world->host, sim::CoprocessorOptions{.memory_tuples = 4,
                                            .seed = 42,
                                            .batch_slots = batch_slots});
  return world;
}

Status RunAlg(Alg which, TwoPartyWorld& world) {
  TwoWayJoin join{world.a.get(), world.b.get(),
                  world.workload.predicate.get(), world.key_out.get()};
  const relation::PairAsMultiway multiway(world.workload.predicate.get());
  MultiwayJoin mjoin{{world.a.get(), world.b.get()}, &multiway,
                    world.key_out.get()};
  switch (which) {
    case Alg::kAlg1:
      return core::RunAlgorithm1(*world.copro, join, {.n = 4}).status();
    case Alg::kAlg1Variant:
      return core::RunAlgorithm1Variant(*world.copro, join, {.n = 4})
          .status();
    case Alg::kAlg2:
      return core::RunAlgorithm2(*world.copro, join, {.n = 4}).status();
    case Alg::kAlg3:
      return core::RunAlgorithm3(*world.copro, join, {.n = 4}).status();
    case Alg::kAlg4:
      return core::RunAlgorithm4(*world.copro, mjoin).status();
    case Alg::kAlg5:
      return core::RunAlgorithm5(*world.copro, mjoin).status();
    case Alg::kAlg6:
      return core::RunAlgorithm6(*world.copro, mjoin,
                                 {.epsilon = 1e-6, .order_seed = 0xBEEF})
          .status();
  }
  return Status::Internal("unreachable");
}

/// Runs `which` with or without a telemetry context on the calling thread
/// and returns the host-observable surface. When observed, the recorder's
/// finished tree is also sanity-checked against the device counters.
Result<Observation> Observe(Alg which, std::uint64_t batch_slots,
                            bool observed) {
  auto world = MakeAlgWorld(which, batch_slots);
  if (world == nullptr) return Status::Internal("world construction failed");
  if (observed) {
    telemetry::TraceRecorder recorder(true);
    {
      telemetry::ScopedContext context(&recorder, world->copro.get());
      PPJ_RETURN_NOT_OK(RunAlg(which, *world));
    }
    auto tree = recorder.TakeTree();
    if (telemetry::TraceRecorder::CompiledIn()) {
      if (tree == nullptr) return Status::Internal("expected a span tree");
      // The tree's inclusive transfers must reconcile with the device.
      if (telemetry::InclusiveMetrics(*tree).TupleTransfers() !=
          world->copro->metrics().TupleTransfers()) {
        return Status::Internal("span tree does not reconcile");
      }
    } else if (tree != nullptr) {
      return Status::Internal("compiled-out build produced a tree");
    }
  } else {
    PPJ_RETURN_NOT_OK(RunAlg(which, *world));
  }
  Observation obs;
  obs.trace = world->copro->trace().fingerprint();
  obs.timing = world->copro->timing_fingerprint();
  obs.transfers = world->copro->metrics().TupleTransfers();
  return obs;
}

void ExpectSameSurface(const Observation& unobserved,
                       const Observation& observed) {
  EXPECT_EQ(unobserved.trace.digest, observed.trace.digest);
  EXPECT_EQ(unobserved.trace.count, observed.trace.count);
  EXPECT_EQ(unobserved.timing.digest, observed.timing.digest);
  EXPECT_EQ(unobserved.timing.count, observed.timing.count);
  EXPECT_EQ(unobserved.transfers, observed.transfers);
}

class NeutralityTest : public ::testing::TestWithParam<Alg> {};

TEST_P(NeutralityTest, ObservedMatchesUnobservedScalar) {
  auto without = Observe(GetParam(), /*batch_slots=*/1, false);
  ASSERT_TRUE(without.ok()) << without.status();
  auto with = Observe(GetParam(), /*batch_slots=*/1, true);
  ASSERT_TRUE(with.ok()) << with.status();
  ExpectSameSurface(*without, *with);
}

TEST_P(NeutralityTest, ObservedMatchesUnobservedBatched) {
  auto without = Observe(GetParam(), /*batch_slots=*/0, false);
  ASSERT_TRUE(without.ok()) << without.status();
  auto with = Observe(GetParam(), /*batch_slots=*/0, true);
  ASSERT_TRUE(with.ok()) << with.status();
  ExpectSameSurface(*without, *with);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, NeutralityTest,
                         ::testing::Values(Alg::kAlg1, Alg::kAlg1Variant,
                                           Alg::kAlg2, Alg::kAlg3,
                                           Alg::kAlg4, Alg::kAlg5,
                                           Alg::kAlg6));

// ---- Neutrality: parallel execution -------------------------------------

/// Parallel workers own their devices; neutrality is over the per-device
/// transfer counters and the cost-model outputs.
TEST(ParallelNeutralityTest, ObservedMatchesUnobserved) {
  auto run = [](bool observed) -> Result<core::ParallelOutcome> {
    relation::CellSpec spec;
    spec.size_a = 8;
    spec.size_b = 12;
    spec.result_size = 9;
    spec.seed = 17;
    PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                         MakeCellWorkload(spec));
    auto world = MakeWorld(std::move(workload), 4);
    if (world == nullptr) {
      return Status::Internal("world construction failed");
    }
    const relation::PairAsMultiway multiway(world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    auto execute = [&]() {
      return core::RunParallelAlgorithm5(&world->host, join,
                                         /*parallelism=*/2,
                                         {.memory_tuples = 4, .seed = 1});
    };
    if (!observed) return execute();
    telemetry::TraceRecorder recorder(true);
    Result<core::ParallelOutcome> outcome =
        Status::Internal("parallel run did not start");
    {
      telemetry::ScopedContext context(&recorder, nullptr);
      PPJ_SPAN("parallel-root");
      outcome = execute();
    }
    auto tree = recorder.TakeTree();
    if (telemetry::TraceRecorder::CompiledIn()) {
      if (tree == nullptr) return Status::Internal("expected a span tree");
      // Two worker subtrees, each bound to its own device; the umbrella
      // node carries no metrics of its own, so inclusive == worker sum.
      const telemetry::SpanNode* par =
          tree->FindPath("parallel-root/parallel-algorithm5");
      if (par == nullptr) return Status::Internal("missing parallel span");
      if (par->Find("worker-0") == nullptr ||
          par->Find("worker-1") == nullptr) {
        return Status::Internal("missing worker subtree");
      }
    }
    return outcome;
  };
  auto without = run(false);
  ASSERT_TRUE(without.ok()) << without.status();
  auto with = run(true);
  ASSERT_TRUE(with.ok()) << with.status();
  EXPECT_EQ(without->result_size, with->result_size);
  EXPECT_EQ(without->makespan_transfers, with->makespan_transfers);
  EXPECT_EQ(without->total_transfers, with->total_transfers);
  ASSERT_EQ(without->per_coprocessor.size(), with->per_coprocessor.size());
  for (std::size_t d = 0; d < without->per_coprocessor.size(); ++d) {
    EXPECT_EQ(without->per_coprocessor[d].TupleTransfers(),
              with->per_coprocessor[d].TupleTransfers());
  }
}

// ---- Neutrality: the service path ---------------------------------------

/// A fresh service, contract and submitted workload per execution, so two
/// runs are bit-comparable (repeated executions on one service shift the
/// host's region ids and therefore the trace, independent of telemetry).
class ServiceTelemetryTest : public ::testing::Test {
 protected:
  Result<service::JoinDelivery> RunOnce(bool telemetry_enabled) {
    service::SovereignJoinService service;
    PPJ_RETURN_NOT_OK(service.RegisterParty("airline", 101));
    PPJ_RETURN_NOT_OK(service.RegisterParty("agency", 102));
    PPJ_RETURN_NOT_OK(service.RegisterParty("analyst", 103));
    PPJ_ASSIGN_OR_RETURN(
        const std::string contract,
        service.CreateContract({"airline", "agency"}, "analyst",
                               "passenger.key == watchlist.key"));
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 9;
    spec.seed = 1;
    PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                         MakeEquijoinWorkload(spec));
    PPJ_RETURN_NOT_OK(service.SubmitRelation(contract, "airline", *workload.a));
    PPJ_RETURN_NOT_OK(service.SubmitRelation(contract, "agency", *workload.b));
    service::ExecuteOptions options;
    options.algorithm = core::Algorithm::kAlgorithm5;
    options.memory_tuples = 4;
    options.telemetry = telemetry_enabled;
    return service.ExecuteJoin(contract, *workload.predicate, options);
  }
};

TEST_F(ServiceTelemetryTest, DeliveryIdenticalWithTelemetryOnAndOff) {
  auto off = RunOnce(/*telemetry_enabled=*/false);
  ASSERT_TRUE(off.ok()) << off.status();
  EXPECT_EQ(off->telemetry, nullptr);

  auto on = RunOnce(/*telemetry_enabled=*/true);
  ASSERT_TRUE(on.ok()) << on.status();

  // Identical adversary surface and identical delivery.
  EXPECT_EQ(off->trace.digest, on->trace.digest);
  EXPECT_EQ(off->trace.count, on->trace.count);
  EXPECT_EQ(off->timing.digest, on->timing.digest);
  EXPECT_EQ(off->timing.count, on->timing.count);
  EXPECT_EQ(off->metrics.TupleTransfers(), on->metrics.TupleTransfers());
  EXPECT_TRUE(relation::SameTupleMultiset(off->tuples, on->tuples));

  if (!telemetry::TraceRecorder::CompiledIn()) {
    EXPECT_EQ(on->telemetry, nullptr);
    return;
  }
  ASSERT_NE(on->telemetry, nullptr);
  // The span tree attributes every transfer the delivery reports.
  EXPECT_EQ(telemetry::InclusiveMetrics(*on->telemetry).TupleTransfers(),
            on->metrics.TupleTransfers());
  const telemetry::SpanNode* alg =
      on->telemetry->FindPath("execute-join/algorithm5");
  ASSERT_NE(alg, nullptr);
  const telemetry::SpanNode* emit = alg->Find("buffered-emit");
  ASSERT_NE(emit, nullptr);
  EXPECT_NE(emit->Find("scan"), nullptr);
  EXPECT_NE(emit->Find("output"), nullptr);
  EXPECT_GE(alg->count, 1u);

  // Self metrics over the whole tree reconcile to the inclusive total.
  std::uint64_t self_sum = 0;
  auto accumulate = [&](const telemetry::SpanNode& node, auto&& rec) -> void {
    self_sum += telemetry::SelfMetrics(node).TupleTransfers();
    for (const auto& child : node.children) rec(*child, rec);
  };
  accumulate(*on->telemetry, accumulate);
  EXPECT_EQ(self_sum, on->metrics.TupleTransfers());
}

TEST_F(ServiceTelemetryTest, ExportersProduceWellFormedDocuments) {
  if (!telemetry::TraceRecorder::CompiledIn()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  auto delivery = RunOnce(/*telemetry_enabled=*/true);
  ASSERT_TRUE(delivery.ok()) << delivery.status();
  ASSERT_NE(delivery->telemetry, nullptr);

  const std::string chrome = telemetry::ToChromeTraceJson(*delivery->telemetry);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(chrome.find("execute-join"), std::string::npos);

  const std::string report =
      telemetry::ToMetricsReportJson(*delivery->telemetry);
  EXPECT_NE(report.find("\"total\""), std::string::npos);
  EXPECT_NE(report.find("execute-join/algorithm5"), std::string::npos);
  EXPECT_NE(report.find("\"tuple_transfers\""), std::string::npos);
}

// ---- Neutrality: the metrics registry -----------------------------------

/// Same contract as the telemetry goldens above, extended to the PR-7
/// metrics layer: the adversary-visible surface must be bit-identical
/// whether the service publishes into an enabled registry, a
/// runtime-disabled registry, or (under -DPPJ_METRICS=OFF) no registry at
/// all. A fresh service per run keeps region-id assignment comparable.
class MetricsNeutralityTest : public ::testing::Test {
 protected:
  /// Runs one async join with the scheduler publishing into `registry`
  /// (nullptr = the process global) and returns the delivery.
  Result<service::JoinDelivery> RunOnce(metrics::Registry* registry) {
    service::SovereignJoinService service;
    service::SchedulerOptions sched;
    sched.registry = registry;
    PPJ_RETURN_NOT_OK(service.ConfigureScheduler(sched));
    PPJ_RETURN_NOT_OK(service.RegisterParty("airline", 101));
    PPJ_RETURN_NOT_OK(service.RegisterParty("agency", 102));
    PPJ_RETURN_NOT_OK(service.RegisterParty("analyst", 103));
    PPJ_ASSIGN_OR_RETURN(
        const std::string contract,
        service.CreateContract({"airline", "agency"}, "analyst",
                               "passenger.key == watchlist.key"));
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 9;
    spec.seed = 1;
    PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                         MakeEquijoinWorkload(spec));
    PPJ_RETURN_NOT_OK(service.SubmitRelation(contract, "airline", *workload.a));
    PPJ_RETURN_NOT_OK(service.SubmitRelation(contract, "agency", *workload.b));
    service::ExecuteOptions options;
    options.algorithm = core::Algorithm::kAlgorithm5;
    options.memory_tuples = 4;
    // The instrumented async path: Submit -> worker -> Wait, so queue-wait
    // and execution histograms actually get observed.
    PPJ_ASSIGN_OR_RETURN(
        const service::Ticket ticket,
        service.Submit(contract,
                       service::JoinRequest::PairJoin(*workload.predicate),
                       options));
    PPJ_ASSIGN_OR_RETURN(service::Response response, service.Wait(ticket));
    if (!response.delivery.has_value()) {
      return Status::Internal("join response carried no delivery");
    }
    return std::move(*response.delivery);
  }

  static void ExpectSameSurface(const service::JoinDelivery& a,
                                const service::JoinDelivery& b) {
    EXPECT_EQ(a.trace.digest, b.trace.digest);
    EXPECT_EQ(a.trace.count, b.trace.count);
    EXPECT_EQ(a.timing.digest, b.timing.digest);
    EXPECT_EQ(a.timing.count, b.timing.count);
    EXPECT_EQ(a.metrics.TupleTransfers(), b.metrics.TupleTransfers());
    EXPECT_TRUE(relation::SameTupleMultiset(a.tuples, b.tuples));
  }
};

TEST_F(MetricsNeutralityTest, SurfaceIdenticalEnabledDisabledAndDefault) {
  metrics::Registry enabled(/*enabled=*/true);
  metrics::Registry disabled(/*enabled=*/false);

  auto with_enabled = RunOnce(&enabled);
  ASSERT_TRUE(with_enabled.ok()) << with_enabled.status();
  auto with_disabled = RunOnce(&disabled);
  ASSERT_TRUE(with_disabled.ok()) << with_disabled.status();
  auto with_global = RunOnce(nullptr);
  ASSERT_TRUE(with_global.ok()) << with_global.status();

  // Definition 1/3 surface: identical whether the registry records
  // everything, nothing, or is the shared process-global instance. Under
  // -DPPJ_METRICS=OFF all three paths take null handles — the same
  // comparison then proves the compiled-out build equals runtime-off.
  ExpectSameSurface(*with_enabled, *with_disabled);
  ExpectSameSurface(*with_enabled, *with_global);

  // And the observer observed (exactly when it is compiled in + enabled).
  const metrics::Snapshot on = enabled.TakeSnapshot();
  const metrics::Snapshot off = disabled.TakeSnapshot();
  if (metrics::Registry::CompiledIn()) {
    EXPECT_EQ(on.CounterTotal(metrics::kRequestsSubmitted), 1u);
    EXPECT_EQ(on.MergeHistograms(metrics::kLatencyNs).count, 1u);
  } else {
    EXPECT_TRUE(on.counters.empty());
    EXPECT_TRUE(on.histograms.empty());
  }
  EXPECT_TRUE(off.counters.empty());
  EXPECT_TRUE(off.histograms.empty());
}

// ---- Span-tree mechanics -------------------------------------------------

TEST(SpanTreeTest, SiblingsMergeByNameAndNestByPath) {
  if (!telemetry::TraceRecorder::CompiledIn()) {
    GTEST_SKIP() << "telemetry compiled out";
  }
  telemetry::TraceRecorder recorder(true);
  {
    telemetry::ScopedContext context(&recorder, nullptr);
    for (int i = 0; i < 3; ++i) {
      PPJ_SPAN("outer");
      { PPJ_SPAN("inner"); }
      { PPJ_SPAN("inner"); }
    }
  }
  auto tree = recorder.TakeTree();
  ASSERT_NE(tree, nullptr);
  const telemetry::SpanNode* outer = tree->Find("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_EQ(outer->children.size(), 1u);  // merged by name
  const telemetry::SpanNode* inner = tree->FindPath("outer/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 6u);
  EXPECT_EQ(tree->FindPath("outer/missing"), nullptr);
  EXPECT_FALSE(outer->has_metrics);  // no device bound
}

TEST(SpanTreeTest, DisabledRecorderYieldsNoTree) {
  telemetry::TraceRecorder recorder(false);
  {
    telemetry::ScopedContext context(&recorder, nullptr);
    PPJ_SPAN("ignored");
  }
  EXPECT_EQ(recorder.TakeTree(), nullptr);
  EXPECT_FALSE(recorder.enabled());
}

// ---- Trace summaries and the region-name registry ------------------------

TEST(TraceSummaryTest, EmptyTraceSummarizes) {
  sim::HostStore host;
  sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
  const sim::TraceSummary summary = sim::SummarizeTrace(copro.trace());
  EXPECT_EQ(summary.total_events, 0u);
  EXPECT_TRUE(summary.regions.empty());
  EXPECT_FALSE(summary.ToString().empty());
  EXPECT_TRUE(sim::DiffSummaries(summary, summary).empty());
}

TEST(TraceSummaryTest, RegistryLabelsAppearInSummariesAndDiffs) {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 6;
  spec.seed = 5;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm5(*world->copro, join);
  ASSERT_TRUE(outcome.ok()) << outcome.status();

  const sim::RegionNameRegistry names =
      sim::RegionNameRegistry::FromHost(world->host);
  const sim::TraceSummary summary = sim::SummarizeTrace(world->copro->trace());
  EXPECT_GT(summary.total_events, 0u);
  const std::string text = summary.ToString(&names);
  // Symbolic names from the host show up next to the region ids.
  EXPECT_NE(text.find("alg5-output"), std::string::npos);
  // Unnamed fallback: an id the registry has never seen prints bare.
  sim::RegionNameRegistry empty;
  EXPECT_EQ(empty.Label(7), "7");
  EXPECT_NE(names.Label(0).find(" ("), std::string::npos);

  // A diff against an empty summary names every touched region.
  const sim::TraceSummary nothing;
  const std::vector<std::string> diff =
      sim::DiffSummaries(nothing, summary, &names);
  EXPECT_FALSE(diff.empty());
  bool labeled = false;
  for (const std::string& line : diff) {
    if (line.find("alg5-output") != std::string::npos) labeled = true;
  }
  EXPECT_TRUE(labeled);
}

TEST(TraceSummaryTest, TruncatedRetentionSummarizesPrefixOnly) {
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 6;
  spec.seed = 5;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  ASSERT_NE(world, nullptr);
  // Replace the device with one that retains only a short trace prefix.
  world->copro = std::make_unique<sim::Coprocessor>(
      &world->host, sim::CoprocessorOptions{.memory_tuples = 4,
                                            .seed = 42,
                                            .max_retained_trace = 8});
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm5(*world->copro, join);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  const sim::TraceSummary summary = sim::SummarizeTrace(world->copro->trace());
  // total_events counts the full trace; the per-region statistics only
  // cover the retained prefix.
  EXPECT_GT(summary.total_events, 8u);
  EXPECT_EQ(summary.total_events, world->copro->trace().fingerprint().count);
  std::uint64_t covered = 0;
  for (const auto& [region, stats] : summary.regions) {
    covered += stats.gets + stats.puts + stats.disk_writes;
  }
  EXPECT_EQ(covered, 8u);
}

TEST(TraceSummaryTest, SequentialScanVsSortingNetworkAccessShape) {
  // Algorithm 5 scans its input sequentially; Algorithm 4 bitonic-sorts the
  // staging buffer. The summary's sequential_fraction separates the two.
  auto run = [](Alg which) -> Result<double> {
    auto world = MakeAlgWorld(which, /*batch_slots=*/1);
    if (world == nullptr) {
      return Status::Internal("world construction failed");
    }
    PPJ_RETURN_NOT_OK(RunAlg(which, *world));
    const sim::TraceSummary summary =
        sim::SummarizeTrace(world->copro->trace());
    double best_sequential = 0.0;
    for (const auto& [region, stats] : summary.regions) {
      if (stats.gets + stats.puts < 32) continue;
      best_sequential = std::max(best_sequential, stats.sequential_fraction);
    }
    return best_sequential;
  };
  auto scan = run(Alg::kAlg5);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_GT(*scan, 0.9);
}

}  // namespace
}  // namespace ppj
