// Measured confirmations of the paper's comparative claims, at reduced
// scale on the executable system (the analytical versions live in
// test_analysis.cc). Each test names the section whose statement it
// checks.

#include <gtest/gtest.h>

#include "core/algorithm1.h"
#include "core/algorithm2.h"
#include "core/algorithm3.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "test_util.h"

namespace ppj {
namespace {

using core::MultiwayJoin;
using core::TwoWayJoin;
using relation::EquijoinSpec;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;

/// Measured tuple transfers of a Chapter 4 algorithm on a fresh world.
template <typename Run>
std::uint64_t MeasureCh4(const EquijoinSpec& spec, std::uint64_t memory,
                         Run&& run) {
  auto workload = MakeEquijoinWorkload(spec);
  EXPECT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), memory, /*pad_pow2=*/true);
  TwoWayJoin join{world->a.get(), world->b.get(),
                  world->workload.predicate.get(), world->key_out.get()};
  EXPECT_TRUE(run(*world->copro, join).ok());
  return world->copro->metrics().TupleTransfers();
}

template <typename Run>
std::uint64_t MeasureCh5(const EquijoinSpec& spec, std::uint64_t memory,
                         Run&& run) {
  auto workload = MakeEquijoinWorkload(spec);
  EXPECT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), memory);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  EXPECT_TRUE(run(*world->copro, join).ok());
  return world->copro->metrics().TupleTransfers();
}

TEST(PaperClaims, Sec461_Gamma1_Algorithm2DominatesMeasured) {
  // gamma = 1 (N <= M): Algorithm 2 beats both Algorithm 1 and the
  // equijoin-specialized Algorithm 3 even though the latter is tailored.
  EquijoinSpec spec;
  spec.size_a = 16;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 12;
  const std::uint64_t m = 8;  // >= N: gamma = 1

  const std::uint64_t c1 = MeasureCh4(spec, m, [&](auto& c, auto& j) {
    return core::RunAlgorithm1(c, j, {.n = spec.n_max});
  });
  const std::uint64_t c2 = MeasureCh4(spec, m, [&](auto& c, auto& j) {
    return core::RunAlgorithm2(c, j, {.n = spec.n_max});
  });
  const std::uint64_t c3 = MeasureCh4(spec, m, [&](auto& c, auto& j) {
    return core::RunAlgorithm3(c, j, {.n = spec.n_max});
  });
  EXPECT_LT(c2, c1);
  EXPECT_LT(c2, c3);
}

TEST(PaperClaims, Sec442_Algorithm1BeatsVariantForSmallAlpha) {
  // Small alpha = N/|B|: the rolling 2N scratch beats sorting |B|-sized
  // buffers per A tuple.
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 64;
  spec.n_max = 2;  // alpha = 1/32
  spec.result_size = 8;
  const std::uint64_t c1 = MeasureCh4(spec, 2, [&](auto& c, auto& j) {
    return core::RunAlgorithm1(c, j, {.n = spec.n_max});
  });
  const std::uint64_t c1v = MeasureCh4(spec, 2, [&](auto& c, auto& j) {
    return core::RunAlgorithm1Variant(c, j, {.n = spec.n_max});
  });
  EXPECT_LT(c1, c1v);
}

TEST(PaperClaims, Sec463_EquijoinHighGamma_Algorithm3Wins) {
  // gamma >> 4 on an equijoin: Algorithm 3 beats both general algorithms.
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 32;
  spec.n_max = 16;
  spec.result_size = 24;
  const std::uint64_t m = 3;  // gamma = ceil(16/2) = 8

  const std::uint64_t c1 = MeasureCh4(spec, m, [&](auto& c, auto& j) {
    return core::RunAlgorithm1(c, j, {.n = spec.n_max});
  });
  const std::uint64_t c2 = MeasureCh4(spec, m, [&](auto& c, auto& j) {
    return core::RunAlgorithm2(c, j, {.n = spec.n_max});
  });
  const std::uint64_t c3 = MeasureCh4(spec, m, [&](auto& c, auto& j) {
    return core::RunAlgorithm3(c, j, {.n = spec.n_max});
  });
  EXPECT_LT(c3, c1);
  EXPECT_LT(c3, c2);
}

TEST(PaperClaims, Sec534_ChapterFiveOrdering_MWellBelowS) {
  // Table 5.1 discussion: with M << S, Algorithm 4 is most expensive,
  // Algorithm 6 cheapest, Algorithm 5 between.
  EquijoinSpec spec;
  spec.size_a = 16;
  spec.size_b = 32;
  spec.n_max = 4;
  spec.result_size = 30;
  const std::uint64_t m = 4;  // M << S = 30

  const std::uint64_t c4 = MeasureCh5(spec, m, [](auto& c, auto& j) {
    return core::RunAlgorithm4(c, j);
  });
  const std::uint64_t c5 = MeasureCh5(spec, m, [](auto& c, auto& j) {
    return core::RunAlgorithm5(c, j);
  });
  const std::uint64_t c6 = MeasureCh5(spec, m, [](auto& c, auto& j) {
    return core::RunAlgorithm6(c, j, {.epsilon = 1e-3});
  });
  EXPECT_LT(c5, c4);
  EXPECT_LT(c6, c4);
  // Note: at this tiny scale Algorithm 6's oblivious-filter constant can
  // exceed Algorithm 5's rescans; the paper's A6 < A5 claim is a
  // large-L statement validated analytically in test_analysis.cc. Here we
  // only pin the unconditional orderings.
}

TEST(PaperClaims, Sec533_LargeMemoryFloor) {
  // Footnote 1: with M >= S, Algorithm 6 needs exactly one pass — its
  // logical reads hit L and writes hit S, the L + S floor.
  EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 10;
  auto workload = MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), /*memory=*/16);  // M >= S
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = core::RunAlgorithm6(*world->copro, join, {.epsilon = 1e-20});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(world->copro->metrics().ituple_reads, 8u * 16u);
  EXPECT_EQ(world->copro->metrics().puts, 10u);
}

TEST(PaperClaims, Sec46_OutputSizeIndependence) {
  // Chapter 4's fixed-size principle, measured: transfers do not vary
  // with the true result size at fixed (|A|, |B|, N).
  auto measure = [&](std::uint64_t s) {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = s;
    return MeasureCh4(spec, 4, [&](auto& c, auto& j) {
      return core::RunAlgorithm2(c, j, {.n = 4});
    });
  };
  const std::uint64_t at4 = measure(4);
  EXPECT_EQ(at4, measure(9));
  EXPECT_EQ(at4, measure(16));
}

TEST(PaperClaims, Ch5_OutputCostScalesWithSNotL) {
  // Definition 3's payoff: Algorithm 5's writes are exactly S, not N|A|.
  for (std::uint64_t s : {4u, 10u, 16u}) {
    EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = s;
    auto workload = MakeEquijoinWorkload(spec);
    ASSERT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), 4);
    const relation::PairAsMultiway multiway(
        world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    ASSERT_TRUE(core::RunAlgorithm5(*world->copro, join).ok());
    EXPECT_EQ(world->copro->metrics().puts, s);
  }
}

}  // namespace
}  // namespace ppj
