#include <gtest/gtest.h>

#include "common/math.h"
#include "core/join_result.h"
#include "core/parallel.h"
#include "crypto/key.h"
#include "oblivious/bitonic_sort.h"
#include "test_util.h"

namespace ppj::core {
namespace {

using relation::MakeCellWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

void ExpectExactParallelResult(TwoPartyWorld& world,
                               const ParallelOutcome& outcome) {
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *world.workload.a, *world.workload.b, *world.workload.predicate,
      world.result_schema.get());
  EXPECT_EQ(outcome.result_size, truth.result_size);
  auto decoded = DecodeJoinOutput(world.host, outcome.output_region,
                                  outcome.result_size, *world.key_out,
                                  world.result_schema.get());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected));
}

class ParallelismSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelismSweep, ParallelAlgorithm5CorrectAtAnyWidth) {
  const unsigned p = GetParam();
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 12;
  spec.result_size = 21;
  spec.seed = 17;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), /*memory=*/4);
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = RunParallelAlgorithm5(&world->host, join, p,
                                       {.memory_tuples = 4, .seed = 1});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ExpectExactParallelResult(*world, *outcome);
}

TEST_P(ParallelismSweep, ParallelAlgorithm4CorrectAtAnyWidth) {
  const unsigned p = GetParam();
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 8;
  spec.result_size = 9;
  spec.seed = 23;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), /*memory=*/4);
  ASSERT_NE(world, nullptr);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  auto outcome = RunParallelAlgorithm4(&world->host, join, p,
                                       {.memory_tuples = 4, .seed = 1});
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ExpectExactParallelResult(*world, *outcome);
}

INSTANTIATE_TEST_SUITE_P(Widths, ParallelismSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(ParallelTest, Algorithm5MakespanShrinksWithParallelism) {
  // The paper's linear-speedup claim, evaluated on the transfer makespan.
  relation::CellSpec spec;
  spec.size_a = 16;
  spec.size_b = 16;
  spec.result_size = 64;
  spec.seed = 5;

  std::uint64_t makespan_p1 = 0, makespan_p4 = 0;
  for (unsigned p : {1u, 4u}) {
    auto workload = MakeCellWorkload(spec);
    ASSERT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), /*memory=*/4);
    ASSERT_NE(world, nullptr);
    const relation::PairAsMultiway multiway(world->workload.predicate.get());
    MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                      world->key_out.get()};
    auto outcome = RunParallelAlgorithm5(&world->host, join, p,
                                         {.memory_tuples = 4, .seed = 1});
    ASSERT_TRUE(outcome.ok());
    // Exclude the shared coordinator screening (entry 0): compare the
    // worker makespan.
    std::uint64_t worker_max = 0;
    for (std::size_t i = 1; i < outcome->per_coprocessor.size(); ++i) {
      worker_max = std::max(worker_max,
                            outcome->per_coprocessor[i].TupleTransfers());
    }
    (p == 1 ? makespan_p1 : makespan_p4) = worker_max;
  }
  // 4 workers each handle 16 of 64 ranks with M = 4 -> 4 scans instead of
  // 16: a 4x reduction in the dominating read term.
  EXPECT_LT(makespan_p4 * 3, makespan_p1);
}

TEST(ParallelTest, ParallelBitonicSortMatchesSequential) {
  sim::HostStore host;
  const crypto::Ocb key(crypto::DeriveKey(77, "psort"));
  const std::size_t payload = 8;
  const std::size_t slot =
      sim::Coprocessor::SealedSize(relation::wire::PlainSize(payload));
  const std::uint64_t n = 128;
  const sim::RegionId region = host.CreateRegion("data", slot, n);

  std::vector<std::unique_ptr<sim::Coprocessor>> copros;
  for (unsigned p = 0; p < 4; ++p) {
    copros.push_back(std::make_unique<sim::Coprocessor>(
        &host, sim::CoprocessorOptions{.memory_tuples = 4,
                                       .seed = 100 + p}));
  }
  Rng rng(55);
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t v = rng.NextBelow(500);
    values.push_back(v);
    std::vector<std::uint8_t> plain(payload);
    for (int b = 0; b < 8; ++b) {
      plain[b] = static_cast<std::uint8_t>(v >> (8 * b));
    }
    ASSERT_TRUE(copros[0]
                    ->PutSealed(region, i,
                                relation::wire::MakeReal(plain), key)
                    .ok());
  }

  auto less = [](const std::vector<std::uint8_t>& x,
                 const std::vector<std::uint8_t>& y) {
    std::uint64_t vx = 0, vy = 0;
    for (int b = 0; b < 8; ++b) {
      vx |= static_cast<std::uint64_t>(x[1 + b]) << (8 * b);
      vy |= static_cast<std::uint64_t>(y[1 + b]) << (8 * b);
    }
    return vx < vy;
  };
  std::vector<sim::Coprocessor*> views;
  for (auto& c : copros) views.push_back(c.get());
  ASSERT_TRUE(ParallelObliviousSort(views, region, n, key, less).ok());

  std::sort(values.begin(), values.end());
  for (std::uint64_t i = 0; i < n; ++i) {
    auto plain = copros[0]->GetOpen(region, i, key);
    ASSERT_TRUE(plain.ok());
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) {
      v |= static_cast<std::uint64_t>((*plain)[1 + b]) << (8 * b);
    }
    EXPECT_EQ(v, values[i]) << "position " << i;
  }
  // Work is genuinely distributed: no device did all the transfers.
  std::uint64_t total = 0, maximum = 0;
  for (const auto& c : copros) {
    total += c->metrics().TupleTransfers();
    maximum = std::max(maximum, c->metrics().TupleTransfers());
  }
  EXPECT_LT(maximum, total);
}

TEST(ParallelTest, ParallelAlgorithm2CorrectAndLinear) {
  // Section 4.4.4: Chapter 4's outer loop over A parallelizes with linear
  // speedup. Verify correctness at several widths and the makespan drop.
  relation::EquijoinSpec spec;
  spec.size_a = 16;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 12;
  spec.seed = 6;

  std::uint64_t makespan_p1 = 0;
  for (unsigned p : {1u, 2u, 4u}) {
    auto workload = relation::MakeEquijoinWorkload(spec);
    ASSERT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), /*memory=*/3);
    ASSERT_NE(world, nullptr);
    TwoWayJoin join{world->a.get(), world->b.get(),
                    world->workload.predicate.get(), world->key_out.get()};
    auto outcome = RunParallelAlgorithm2(&world->host, join, 4, p,
                                         {.memory_tuples = 3, .seed = 1});
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    auto decoded = DecodeJoinOutput(world->host, outcome->output_region,
                                    outcome->output_slots, *world->key_out,
                                    world->result_schema.get());
    ASSERT_TRUE(decoded.ok());
    const relation::GroundTruth truth = relation::ComputeGroundTruth(
        *world->workload.a, *world->workload.b, *world->workload.predicate,
        world->result_schema.get());
    EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected))
        << "P=" << p;
    if (p == 1) {
      makespan_p1 = outcome->makespan_transfers;
    } else {
      // Linear speedup: makespan ~ p1 / p (A divides evenly here).
      EXPECT_NEAR(static_cast<double>(outcome->makespan_transfers),
                  static_cast<double>(makespan_p1) / p,
                  static_cast<double>(makespan_p1) * 0.05)
          << "P=" << p;
    }
  }
}

TEST(ParallelTest, ParallelAlgorithm2RequiresKnownN) {
  relation::EquijoinSpec spec;
  auto workload = relation::MakeEquijoinWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 3);
  TwoWayJoin join{world->a.get(), world->b.get(),
                  world->workload.predicate.get(), world->key_out.get()};
  EXPECT_FALSE(RunParallelAlgorithm2(&world->host, join, 0, 2,
                                     {.memory_tuples = 3})
                   .ok());
}

TEST(ParallelTest, RejectsZeroParallelism) {
  relation::CellSpec spec;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  const relation::PairAsMultiway multiway(world->workload.predicate.get());
  MultiwayJoin join{{world->a.get(), world->b.get()}, &multiway,
                    world->key_out.get()};
  EXPECT_FALSE(RunParallelAlgorithm5(&world->host, join, 0, {}).ok());
  EXPECT_FALSE(RunParallelAlgorithm4(&world->host, join, 0, {}).ok());
}

}  // namespace
}  // namespace ppj::core
