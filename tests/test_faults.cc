// Chaos suite (ctest label "chaos"): deterministic host-fault injection
// against the full join stack. The contracts under test, from
// docs/ROBUSTNESS.md:
//   - transient faults (reads, writes, torn writes, region windows) whose
//     sequence length stays below the retry budget always recover, with the
//     correct join output and an adversary-visible surface bit-identical to
//     the fault-free run;
//   - silent corruption always ends in kTampered (device dead), never in a
//     wrong result;
//   - an exhausted retry budget surfaces kUnavailable — a fault, not an
//     integrity verdict — and leaves the device alive;
//   - the service degrades gracefully: structured per-request failure via
//     post_mortem(ticket), no partial plaintext, contract dead after
//     tampering;
//   - a wedged backend (stall fault) is bounded by the request deadline:
//     the run resolves to kDeadlineExceeded while sibling tenants complete.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/algorithm5.h"
#include "core/join_result.h"
#include "crypto/key.h"
#include "crypto/ocb.h"
#include "relation/generator.h"
#include "service/service.h"
#include "sim/coprocessor.h"
#include "sim/fault_injector.h"
#include "sim/host_store.h"
#include "sim/storage_backend.h"

namespace ppj {
namespace {

using relation::MakeCellWorkload;
using sim::FaultInjectingBackend;
using sim::FaultPlan;

// ---- FaultPlan specs ------------------------------------------------------

TEST(FaultPlanTest, ParsesAndRoundTrips) {
  auto plan = FaultPlan::Parse(
      "seed=7,transient=0.05,torn=0.02,bitflip=0.01,unavail=0.03,"
      "latency=0.5,attempts=3,window=2,cooldown=16");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->seed, 7u);
  EXPECT_DOUBLE_EQ(plan->transient_read_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->transient_write_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->torn_write_rate, 0.02);
  EXPECT_DOUBLE_EQ(plan->bit_flip_rate, 0.01);
  EXPECT_DOUBLE_EQ(plan->region_unavailable_rate, 0.03);
  EXPECT_DOUBLE_EQ(plan->latency_rate, 0.5);
  EXPECT_EQ(plan->transient_attempts, 3u);
  EXPECT_EQ(plan->region_unavailable_attempts, 2u);
  EXPECT_EQ(plan->cooldown_ops, 16u);
  // The canonical string parses back to the same plan.
  auto again = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->ToString(), plan->ToString());
}

TEST(FaultPlanTest, SplitReadWriteRates) {
  auto plan = FaultPlan::Parse("transient-read=0.1,transient-write=0.2");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->transient_read_rate, 0.1);
  EXPECT_DOUBLE_EQ(plan->transient_write_rate, 0.2);
}

TEST(FaultPlanTest, ParsesStallSpelling) {
  auto plan = FaultPlan::Parse("seed=9,stall-region=3,stall-ms=75");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(plan->stall_region.has_value());
  EXPECT_EQ(*plan->stall_region, 3u);
  EXPECT_EQ(plan->stall_ms, 75u);
  // A stall plan is not quiet even with every rate at zero.
  EXPECT_FALSE(plan->Quiet());
  auto again = FaultPlan::Parse(plan->ToString());
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(again->ToString(), plan->ToString());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_EQ(FaultPlan::Parse("bogus=1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("transient").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("transient=1.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("transient=-0.1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("attempts=0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("seed=abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(FaultPlan::Parse("stall-ms=0").status().code(),
            StatusCode::kInvalidArgument);
}

// ---- Injector determinism -------------------------------------------------

std::vector<StatusCode> RunProbeSequence(std::uint64_t seed) {
  FaultInjectingBackend backend(sim::MakeInMemoryBackend());
  EXPECT_TRUE(backend.CreateRegion(0, 16, 32).ok());
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_read_rate = 0.3;
  plan.transient_write_rate = 0.3;
  plan.transient_attempts = 1;
  plan.cooldown_ops = 0;
  backend.Arm(plan);
  std::vector<StatusCode> codes;
  const std::vector<std::uint8_t> bytes(16, 0xAB);
  for (int i = 0; i < 64; ++i) {
    codes.push_back(
        backend.WriteSlot(0, 16, static_cast<std::uint64_t>(i % 32), bytes)
            .code());
    codes.push_back(
        backend.ReadSlot(0, 16, static_cast<std::uint64_t>(i % 32))
            .status()
            .code());
  }
  return codes;
}

TEST(FaultInjectorTest, ScheduleIsDeterministic) {
  const auto first = RunProbeSequence(42);
  const auto second = RunProbeSequence(42);
  EXPECT_EQ(first, second);
  // And actually mixes successes with injected failures.
  EXPECT_TRUE(std::count(first.begin(), first.end(),
                         StatusCode::kUnavailable) > 0);
  EXPECT_TRUE(std::count(first.begin(), first.end(), StatusCode::kOk) > 0);
  // A different seed yields a different schedule.
  EXPECT_NE(first, RunProbeSequence(43));
}

TEST(FaultInjectorTest, UnarmedIsPassThrough) {
  FaultInjectingBackend backend(sim::MakeInMemoryBackend());
  ASSERT_TRUE(backend.CreateRegion(0, 4, 4).ok());
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(backend.WriteSlot(0, 4, 0, bytes).ok());
    auto read = backend.ReadSlot(0, 4, 0);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(*read, bytes);
  }
  EXPECT_EQ(backend.stats().injected_failures(), 0u);
  EXPECT_EQ(backend.stats().ops, 200u);
}

TEST(FaultInjectorTest, TransientSequenceRespectsAttemptsAndCooldown) {
  FaultInjectingBackend backend(sim::MakeInMemoryBackend());
  ASSERT_TRUE(backend.CreateRegion(0, 4, 1).ok());
  FaultPlan plan;
  plan.transient_read_rate = 1.0;  // Fires at the first opportunity.
  plan.transient_attempts = 2;
  plan.cooldown_ops = 8;
  backend.Arm(plan);
  // Two consecutive failures (the configured sequence length)...
  EXPECT_EQ(backend.ReadSlot(0, 4, 0).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(backend.ReadSlot(0, 4, 0).status().code(),
            StatusCode::kUnavailable);
  // ...then the cooldown keeps the next reads clean, so a retry budget of
  // attempts+1 provably recovers.
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(backend.ReadSlot(0, 4, 0).ok()) << "op " << i;
  }
  EXPECT_EQ(backend.stats().transient_read_failures, 2u);
}

TEST(FaultInjectorTest, StallWedgesExactlyTheTargetRegion) {
  FaultInjectingBackend backend(sim::MakeInMemoryBackend());
  ASSERT_TRUE(backend.CreateRegion(0, 4, 1).ok());
  ASSERT_TRUE(backend.CreateRegion(1, 4, 1).ok());
  const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
  ASSERT_TRUE(backend.WriteSlot(0, 4, 0, bytes).ok());
  ASSERT_TRUE(backend.WriteSlot(1, 4, 0, bytes).ok());
  FaultPlan plan;
  plan.stall_region = 0;
  plan.stall_ms = 1;  // Keep the unit test fast; chaos tests go longer.
  backend.Arm(plan);
  // The stalled region fails forever — no cooldown, no recovery.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(backend.ReadSlot(0, 4, 0).status().code(),
              StatusCode::kUnavailable);
  }
  EXPECT_EQ(backend.WriteSlot(0, 4, 0, bytes).code(),
            StatusCode::kUnavailable);
  // The sibling region is untouched.
  EXPECT_TRUE(backend.ReadSlot(1, 4, 0).ok());
  EXPECT_TRUE(backend.WriteSlot(1, 4, 0, bytes).ok());
  EXPECT_EQ(backend.stats().stalled_ops, 9u);
  EXPECT_GT(backend.stats().injected_failures(), 0u);
}

TEST(FaultInjectorTest, BitFlipCorruptsSilently) {
  FaultInjectingBackend backend(sim::MakeInMemoryBackend());
  ASSERT_TRUE(backend.CreateRegion(0, 16, 1).ok());
  const std::vector<std::uint8_t> bytes(16, 0x55);
  ASSERT_TRUE(backend.WriteSlot(0, 16, 0, bytes).ok());
  FaultPlan plan;
  plan.bit_flip_rate = 1.0;
  backend.Arm(plan);
  auto read = backend.ReadSlot(0, 16, 0);
  ASSERT_TRUE(read.ok());  // The operation "succeeds"...
  EXPECT_NE(*read, bytes);  // ...with corrupted data.
  EXPECT_EQ(backend.stats().bit_flips, 1u);
  backend.Disarm();
  // The stored bytes were never touched — the flip was in flight.
  EXPECT_EQ(*backend.ReadSlot(0, 16, 0), bytes);
}

TEST(FaultInjectorTest, TornWriteLeavesDetectableHalfWrite) {
  FaultInjectingBackend backend(sim::MakeInMemoryBackend());
  ASSERT_TRUE(backend.CreateRegion(0, 16, 1).ok());
  FaultPlan plan;
  plan.torn_write_rate = 1.0;
  plan.cooldown_ops = 4;
  backend.Arm(plan);
  const std::vector<std::uint8_t> bytes(16, 0xEE);
  EXPECT_EQ(backend.WriteSlot(0, 16, 0, bytes).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(backend.stats().torn_writes, 1u);
  backend.Disarm();
  auto read = backend.ReadSlot(0, 16, 0);
  ASSERT_TRUE(read.ok());
  EXPECT_NE(*read, bytes);            // Only a prefix landed...
  EXPECT_EQ((*read)[0], 0xEE);        // ...the head of the record...
  EXPECT_EQ((*read)[15], 0x00);       // ...but not the tail.
}

// ---- Coprocessor-level retry ----------------------------------------------

TEST(RetryTest, TransientReadRecoversWithinBudget) {
  // The injector is owned by the host; keep a raw handle for arming
  // (backend calls are serialized by the host's lock).
  auto injector =
      std::make_unique<FaultInjectingBackend>(sim::MakeInMemoryBackend());
  auto* faults = injector.get();
  sim::HostStore host(std::move(injector));
  sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
  const crypto::Ocb key(crypto::DeriveKey(20, "retry"));
  const sim::RegionId r =
      host.CreateRegion("r", sim::Coprocessor::SealedSize(8), 4);
  ASSERT_TRUE(copro.PutSealed(r, 0, std::vector<std::uint8_t>(8, 9), key).ok());
  FaultPlan plan;
  plan.transient_read_rate = 1.0;
  plan.transient_attempts = 2;  // < RetryPolicy::max_attempts (4).
  plan.cooldown_ops = 8;
  faults->Arm(plan);
  auto opened = copro.GetOpen(r, 0, key);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ((*opened)[0], 9);
  EXPECT_EQ(copro.metrics().host_retries, 2u);
  EXPECT_EQ(copro.metrics().backoff_cycles, 64u + 128u);
  EXPECT_FALSE(copro.disabled());
}

TEST(RetryTest, TornWriteRepairedByRetry) {
  auto injector =
      std::make_unique<FaultInjectingBackend>(sim::MakeInMemoryBackend());
  auto* faults = injector.get();
  sim::HostStore host(std::move(injector));
  sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
  const crypto::Ocb key(crypto::DeriveKey(21, "torn"));
  const sim::RegionId r =
      host.CreateRegion("r", sim::Coprocessor::SealedSize(8), 2);
  FaultPlan plan;
  plan.torn_write_rate = 1.0;
  plan.cooldown_ops = 8;
  faults->Arm(plan);
  // The torn first attempt persists garbage; the retry rewrites in full.
  ASSERT_TRUE(copro.PutSealed(r, 0, std::vector<std::uint8_t>(8, 5), key).ok());
  EXPECT_EQ(copro.metrics().host_retries, 1u);
  faults->Disarm();
  auto opened = copro.GetOpen(r, 0, key);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_EQ((*opened)[0], 5);
}

TEST(RetryTest, ExhaustedBudgetIsUnavailableNotTampered) {
  auto injector =
      std::make_unique<FaultInjectingBackend>(sim::MakeInMemoryBackend());
  auto* faults = injector.get();
  sim::HostStore host(std::move(injector));
  sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
  const sim::RegionId r = host.CreateRegion("r", 16, 2);
  FaultPlan plan;
  plan.transient_read_rate = 1.0;
  plan.transient_attempts = 16;  // Outlasts the budget of 4.
  plan.cooldown_ops = 0;
  faults->Arm(plan);
  auto got = copro.Get(r, 0);
  ASSERT_FALSE(got.ok());
  // A persistent outage is a fault, not an integrity verdict: the device
  // stays alive and a later (healthy) transfer works again.
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_FALSE(copro.disabled());
  EXPECT_EQ(copro.metrics().host_retries, 3u);
  faults->Disarm();
  EXPECT_TRUE(copro.Get(r, 0).ok());
}

// ---- Whole-join chaos -----------------------------------------------------

/// A two-party world over fault-injected storage. The injector is armed
/// only after setup (sealing the inputs), so faults hit exactly the
/// execution under test.
struct ChaosWorld {
  std::unique_ptr<sim::HostStore> host;
  FaultInjectingBackend* faults = nullptr;  // owned by host
  relation::TwoTableWorkload workload;
  std::unique_ptr<crypto::Ocb> key_a, key_b, key_out;
  std::unique_ptr<relation::EncryptedRelation> a, b;
  std::unique_ptr<relation::Schema> result_schema;
};

std::unique_ptr<ChaosWorld> MakeChaosWorld(
    std::uint64_t seed, std::unique_ptr<sim::StorageBackend> inner = nullptr) {
  relation::CellSpec spec;
  spec.size_a = 8;
  spec.size_b = 8;
  spec.result_size = 10;
  spec.seed = seed;
  auto workload = MakeCellWorkload(spec);
  EXPECT_TRUE(workload.ok());
  auto world = std::make_unique<ChaosWorld>();
  if (inner == nullptr) inner = sim::MakeInMemoryBackend();
  auto injector = std::make_unique<FaultInjectingBackend>(std::move(inner));
  world->faults = injector.get();
  world->host = std::make_unique<sim::HostStore>(std::move(injector));
  world->workload = std::move(*workload);
  world->key_a = std::make_unique<crypto::Ocb>(crypto::DeriveKey(1, "A"));
  world->key_b = std::make_unique<crypto::Ocb>(crypto::DeriveKey(2, "B"));
  world->key_out = std::make_unique<crypto::Ocb>(crypto::DeriveKey(3, "C"));
  auto a = relation::EncryptedRelation::Seal(world->host.get(),
                                             *world->workload.a,
                                             world->key_a.get());
  auto b = relation::EncryptedRelation::Seal(world->host.get(),
                                             *world->workload.b,
                                             world->key_b.get());
  EXPECT_TRUE(a.ok() && b.ok());
  world->a = std::make_unique<relation::EncryptedRelation>(std::move(*a));
  world->b = std::make_unique<relation::EncryptedRelation>(std::move(*b));
  world->result_schema =
      std::make_unique<relation::Schema>(relation::Schema::Concat(
          world->workload.a->schema(), world->workload.b->schema()));
  return world;
}

struct ChaosRun {
  Status status = Status::OK();
  std::vector<relation::Tuple> tuples;
  sim::TransferMetrics metrics;
  sim::TraceFingerprint trace;
  sim::TraceFingerprint timing;
};

ChaosRun RunJoin(ChaosWorld& world) {
  ChaosRun run;
  sim::Coprocessor copro(world.host.get(), {.memory_tuples = 4, .seed = 42});
  const relation::PairAsMultiway multiway(world.workload.predicate.get());
  core::MultiwayJoin join{{world.a.get(), world.b.get()}, &multiway,
                          world.key_out.get()};
  auto outcome = core::RunAlgorithm5(copro, join);
  run.metrics = copro.metrics();
  run.trace = copro.trace().fingerprint();
  run.timing = copro.timing_fingerprint();
  if (!outcome.ok()) {
    run.status = outcome.status();
    return run;
  }
  auto decoded = core::DecodeJoinOutput(
      *world.host, outcome->output_region, outcome->result_size,
      *world.key_out, world.result_schema.get());
  if (!decoded.ok()) {
    run.status = decoded.status();
    return run;
  }
  run.tuples = std::move(*decoded);
  return run;
}

FaultPlan RecoverableTransientPlan(std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_read_rate = 0.05;
  plan.transient_write_rate = 0.05;
  plan.torn_write_rate = 0.03;
  plan.region_unavailable_rate = 0.02;
  plan.region_unavailable_attempts = 2;
  plan.transient_attempts = 2;  // Sequences stay under the budget of 4.
  plan.latency_rate = 0.05;
  plan.cooldown_ops = 8;
  return plan;
}

TEST(ChaosJoinTest, TransientFaultsRecoverWithCorrectOutput) {
  auto clean = MakeChaosWorld(5);
  const ChaosRun baseline = RunJoin(*clean);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status;

  for (std::uint64_t fault_seed = 1; fault_seed <= 5; ++fault_seed) {
    auto world = MakeChaosWorld(5);
    world->faults->Arm(RecoverableTransientPlan(fault_seed));
    const ChaosRun chaotic = RunJoin(*world);
    ASSERT_TRUE(chaotic.status.ok())
        << "fault seed " << fault_seed << ": " << chaotic.status;
    EXPECT_TRUE(
        relation::SameTupleMultiset(chaotic.tuples, baseline.tuples))
        << "fault seed " << fault_seed;
    // Transient recovery is invisible on the adversary-observable surface:
    // retries happen below the trace, and backoff is charged outside the
    // timing-equalisation counter.
    EXPECT_EQ(chaotic.trace, baseline.trace) << "fault seed " << fault_seed;
    EXPECT_EQ(chaotic.timing, baseline.timing)
        << "fault seed " << fault_seed;
    EXPECT_EQ(chaotic.metrics.TupleTransfers(),
              baseline.metrics.TupleTransfers());
  }
}

TEST(ChaosJoinTest, MmapBackendRecoversUnderTransientFaults) {
  // The zero-copy backend wrapped in the fault injector: the injector owns
  // the bytes it corrupts and deliberately lends no borrowed views, so this
  // drives the mmap backend through the copy + retry staging path — chaos
  // coverage for the fast-path fallback.
  const auto dir = std::filesystem::temp_directory_path() / "ppj-chaos-mmap";
  std::filesystem::remove_all(dir);
  auto mk_mmap = [&dir](const char* sub) {
    auto backend = sim::MakeMmapBackend((dir / sub).string());
    EXPECT_TRUE(backend.ok()) << backend.status();
    return std::move(*backend);
  };

  auto clean = MakeChaosWorld(5, mk_mmap("clean"));
  const ChaosRun baseline = RunJoin(*clean);
  ASSERT_TRUE(baseline.status.ok()) << baseline.status;

  for (std::uint64_t fault_seed = 1; fault_seed <= 3; ++fault_seed) {
    // (Built with += rather than operator+: GCC 12's -Wrestrict
    // false-positives on the char* + string&& overload here.)
    std::string sub = "s";
    sub += std::to_string(fault_seed);
    auto world = MakeChaosWorld(5, mk_mmap(sub.c_str()));
    world->faults->Arm(RecoverableTransientPlan(fault_seed));
    const ChaosRun chaotic = RunJoin(*world);
    ASSERT_TRUE(chaotic.status.ok())
        << "fault seed " << fault_seed << ": " << chaotic.status;
    EXPECT_TRUE(
        relation::SameTupleMultiset(chaotic.tuples, baseline.tuples))
        << "fault seed " << fault_seed;
    EXPECT_EQ(chaotic.trace, baseline.trace) << "fault seed " << fault_seed;
    EXPECT_EQ(chaotic.timing, baseline.timing)
        << "fault seed " << fault_seed;
  }
}

TEST(ChaosJoinTest, AtLeastOneSeedActuallyInjectsFaults) {
  // Guards the test above against a silently quiet plan: across the seeds
  // used there, faults must actually fire and be retried.
  std::uint64_t total_failures = 0;
  std::uint64_t total_retries = 0;
  for (std::uint64_t fault_seed = 1; fault_seed <= 5; ++fault_seed) {
    auto world = MakeChaosWorld(5);
    world->faults->Arm(RecoverableTransientPlan(fault_seed));
    const ChaosRun chaotic = RunJoin(*world);
    total_failures += world->faults->stats().injected_failures();
    total_retries += chaotic.metrics.host_retries;
  }
  EXPECT_GT(total_failures, 0u);
  EXPECT_GT(total_retries, 0u);
}

TEST(ChaosJoinTest, BitFlipsAlwaysEndInTamperedNeverWrongOutput) {
  auto clean = MakeChaosWorld(6);
  const ChaosRun baseline = RunJoin(*clean);
  ASSERT_TRUE(baseline.status.ok());

  for (std::uint64_t fault_seed = 1; fault_seed <= 8; ++fault_seed) {
    auto world = MakeChaosWorld(6);
    FaultPlan plan;
    plan.seed = fault_seed;
    plan.bit_flip_rate = 0.2;
    world->faults->Arm(plan);
    const ChaosRun chaotic = RunJoin(*world);
    if (chaotic.status.ok()) {
      // Every flip landed in data that was never consumed; the output must
      // then be exactly right. Silent wrong output is the one forbidden
      // outcome.
      EXPECT_TRUE(
          relation::SameTupleMultiset(chaotic.tuples, baseline.tuples))
          << "fault seed " << fault_seed;
    } else {
      EXPECT_EQ(chaotic.status.code(), StatusCode::kTampered)
          << "fault seed " << fault_seed << ": " << chaotic.status;
      EXPECT_TRUE(chaotic.tuples.empty());
    }
  }
}

TEST(ChaosJoinTest, GuaranteedBitFlipIsAlwaysDetected) {
  auto world = MakeChaosWorld(7);
  FaultPlan plan;
  plan.bit_flip_rate = 1.0;
  world->faults->Arm(plan);
  const ChaosRun chaotic = RunJoin(*world);
  ASSERT_FALSE(chaotic.status.ok());
  EXPECT_EQ(chaotic.status.code(), StatusCode::kTampered);
  EXPECT_TRUE(chaotic.tuples.empty());
  EXPECT_GT(world->faults->stats().bit_flips, 0u);
}

// ---- Service-level graceful degradation -----------------------------------

class ChaosServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto injector =
        std::make_unique<FaultInjectingBackend>(sim::MakeInMemoryBackend());
    faults_ = injector.get();
    service_ = std::make_unique<service::SovereignJoinService>(
        std::move(injector));
    ASSERT_TRUE(service_->RegisterParty("airline", 101).ok());
    ASSERT_TRUE(service_->RegisterParty("agency", 102).ok());
    ASSERT_TRUE(service_->RegisterParty("analyst", 103).ok());
    auto contract = service_->CreateContract({"airline", "agency"},
                                             "analyst", "any");
    ASSERT_TRUE(contract.ok()) << contract.status();
    contract_ = *contract;

    relation::EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 9;
    spec.seed = 3;
    auto workload = relation::MakeEquijoinWorkload(spec);
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(*workload);
    ASSERT_TRUE(
        service_->SubmitRelation(contract_, "airline", *workload_.a).ok());
    ASSERT_TRUE(
        service_->SubmitRelation(contract_, "agency", *workload_.b).ok());
  }

  service::ExecuteOptions Options() const {
    service::ExecuteOptions options;
    options.algorithm = core::Algorithm::kAlgorithm5;
    options.memory_tuples = 6;
    return options;
  }

  FaultInjectingBackend* faults_ = nullptr;
  std::unique_ptr<service::SovereignJoinService> service_;
  std::string contract_;
  relation::TwoTableWorkload workload_;
};

TEST_F(ChaosServiceTest, TransientFaultsRecoverEndToEnd) {
  FaultPlan plan = RecoverableTransientPlan(11);
  faults_->Arm(plan);
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload_.predicate);
  auto ticket = service_->Submit(contract_, request, Options());
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto response = service_->Wait(*ticket);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_FALSE(service_->post_mortem(*ticket).has_value());
  EXPECT_FALSE(service_->ContractDead(contract_));
  const service::JoinDelivery& delivery = *response->delivery;
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *workload_.a, *workload_.b, *workload_.predicate,
      delivery.result_schema.get());
  EXPECT_TRUE(
      relation::SameTupleMultiset(delivery.tuples, truth.expected));
  service_->Release(*ticket);
}

TEST_F(ChaosServiceTest, CorruptionYieldsStructuredFailureAndDeadContract) {
  FaultPlan plan;
  plan.bit_flip_rate = 1.0;
  faults_->Arm(plan);
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload_.predicate);
  auto ticket = service_->Submit(contract_, request, Options());
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto delivery = service_->Wait(*ticket);
  ASSERT_FALSE(delivery.ok());
  EXPECT_EQ(delivery.status().code(), StatusCode::kTampered);

  // Structured post-mortem: phase, status, partial metrics, verdict.
  ASSERT_TRUE(service_->post_mortem(*ticket).has_value());
  const service::ExecutionFailure failure = *service_->post_mortem(*ticket);
  service_->Release(*ticket);
  EXPECT_EQ(failure.contract_id, contract_);
  EXPECT_TRUE(failure.phase == "algorithm" || failure.phase == "decode")
      << failure.phase;
  EXPECT_EQ(failure.status.code(), StatusCode::kTampered);
  EXPECT_TRUE(failure.device_disabled);
  EXPECT_GT(failure.partial_metrics.TupleTransfers(), 0u);

  // The contract is dead: executions AND submissions are refused.
  EXPECT_TRUE(service_->ContractDead(contract_));
  faults_->Disarm();
  EXPECT_EQ(service_->ExecuteJoin(contract_, *workload_.predicate, Options())
                .status()
                .code(),
            StatusCode::kTampered);
  EXPECT_EQ(
      service_->SubmitRelation(contract_, "airline", *workload_.a).code(),
      StatusCode::kTampered);

  // Other tenants on the same service are unaffected. (The tampered
  // tenant itself is additionally quarantined by its circuit breaker — see
  // TamperTripsTheTenantBreakerInstantly — so the fresh contract here
  // belongs to a different recipient.)
  ASSERT_TRUE(service_->RegisterParty("overseer", 557).ok());
  auto fresh = service_->CreateContract({"airline", "agency"}, "overseer",
                                        "any");
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(service_->ContractDead(*fresh));
  ASSERT_TRUE(
      service_->SubmitRelation(*fresh, "airline", *workload_.a).ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*fresh, "agency", *workload_.b).ok());
  auto delivery2 =
      service_->ExecuteJoin(*fresh, *workload_.predicate, Options());
  EXPECT_TRUE(delivery2.ok()) << delivery2.status();
}

TEST_F(ChaosServiceTest, ExhaustedRetryBudgetReportsUnavailable) {
  FaultPlan plan;
  plan.transient_read_rate = 1.0;
  plan.transient_attempts = 64;  // Hopeless outage, outlasts every budget.
  plan.cooldown_ops = 0;
  faults_->Arm(plan);
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload_.predicate);
  auto ticket = service_->Submit(contract_, request, Options());
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  auto delivery = service_->Wait(*ticket);
  ASSERT_FALSE(delivery.ok());
  EXPECT_EQ(delivery.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(service_->post_mortem(*ticket).has_value());
  const service::ExecutionFailure failure = *service_->post_mortem(*ticket);
  service_->Release(*ticket);
  EXPECT_FALSE(failure.device_disabled);
  // The retry history shows the budget was spent before giving up.
  EXPECT_GT(failure.partial_metrics.host_retries, 0u);
  EXPECT_GT(failure.partial_metrics.backoff_cycles, 0u);
  // An outage is not tampering: the contract survives and recovers.
  EXPECT_FALSE(service_->ContractDead(contract_));
  faults_->Disarm();
  auto retry_ticket = service_->Submit(contract_, request, Options());
  ASSERT_TRUE(retry_ticket.ok()) << retry_ticket.status();
  auto retry = service_->Wait(*retry_ticket);
  EXPECT_TRUE(retry.ok()) << retry.status();
  EXPECT_FALSE(service_->post_mortem(*retry_ticket).has_value());
  service_->Release(*retry_ticket);
}

// ---- Chaos under concurrency ----------------------------------------------
// The scheduler's headline contract: N tenants share one faulty host, yet
// every request sees exactly its own outcome — correct tuples under
// recoverable chaos, and on corruption an isolated per-request post-mortem
// that names its own contract, never a neighbour's.

TEST_F(ChaosServiceTest, ChaosUnderConcurrentTenantsRecovers) {
  constexpr int kExtraTenants = 3;
  constexpr int kRequestsPerTenant = 3;
  struct Tenant {
    std::string contract;
    relation::TwoTableWorkload workload;
  };
  std::vector<Tenant> tenants;
  // Tenant 0 is the fixture's; give every extra tenant its own recipient
  // (its own quota bucket) and its own distinguishable workload, so a
  // cross-tenant mixup cannot hide behind identical data.
  tenants.push_back({contract_, std::move(workload_)});
  for (int t = 0; t < kExtraTenants; ++t) {
    const std::string recipient = "auditor-" + std::to_string(t);
    ASSERT_TRUE(service_->RegisterParty(recipient, 500 + t).ok());
    auto contract = service_->CreateContract({"airline", "agency"},
                                             recipient, "any");
    ASSERT_TRUE(contract.ok());
    relation::EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 4 + t;
    spec.seed = 80 + t;
    auto workload = relation::MakeEquijoinWorkload(spec);
    ASSERT_TRUE(workload.ok());
    ASSERT_TRUE(
        service_->SubmitRelation(*contract, "airline", *workload->a).ok());
    ASSERT_TRUE(
        service_->SubmitRelation(*contract, "agency", *workload->b).ok());
    tenants.push_back({*contract, std::move(*workload)});
  }

  faults_->Arm(RecoverableTransientPlan(17));
  service::ExecuteOptions options = Options();
  options.allow_reuse = false;  // every request executes under chaos

  std::vector<std::vector<service::Ticket>> tickets(tenants.size());
  for (int i = 0; i < kRequestsPerTenant; ++i) {
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      auto ticket = service_->Submit(
          tenants[t].contract,
          service::JoinRequest::PairJoin(*tenants[t].workload.predicate),
          options);
      ASSERT_TRUE(ticket.ok()) << ticket.status();
      tickets[t].push_back(*ticket);
    }
  }
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto& w = tenants[t].workload;
    for (service::Ticket ticket : tickets[t]) {
      auto response = service_->Wait(ticket);
      ASSERT_TRUE(response.ok()) << response.status();
      EXPECT_FALSE(service_->post_mortem(ticket).has_value());
      const relation::GroundTruth truth = relation::ComputeGroundTruth(
          *w.a, *w.b, *w.predicate, response->delivery->result_schema.get());
      EXPECT_TRUE(relation::SameTupleMultiset(response->delivery->tuples,
                                              truth.expected))
          << "tenant " << t;
      service_->Release(ticket);
    }
    EXPECT_FALSE(service_->ContractDead(tenants[t].contract));
  }
  EXPECT_GT(faults_->stats().ops, 0u);
}

TEST_F(ChaosServiceTest, ConcurrentCorruptionIsolatesPerRequestPostMortems) {
  // A second tenant with its own contract over the same providers.
  ASSERT_TRUE(service_->RegisterParty("auditor", 555).ok());
  auto second = service_->CreateContract({"airline", "agency"}, "auditor",
                                         "any");
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*second, "airline", *workload_.a).ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*second, "agency", *workload_.b).ok());

  FaultPlan plan;
  plan.bit_flip_rate = 1.0;
  faults_->Arm(plan);

  // Two interleaved failing requests: each ticket must retain exactly its
  // own post-mortem (a service-global failure slot would race here by
  // construction — that is why post_mortem(ticket) is the only accessor).
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload_.predicate);
  auto t1 = service_->Submit(contract_, request, Options());
  auto t2 = service_->Submit(*second, request, Options());
  ASSERT_TRUE(t1.ok()) << t1.status();
  ASSERT_TRUE(t2.ok()) << t2.status();

  auto r1 = service_->Wait(*t1);
  auto r2 = service_->Wait(*t2);
  ASSERT_FALSE(r1.ok());
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r1.status().code(), StatusCode::kTampered);
  EXPECT_EQ(r2.status().code(), StatusCode::kTampered);

  const auto f1 = service_->post_mortem(*t1);
  const auto f2 = service_->post_mortem(*t2);
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f1->contract_id, contract_);
  EXPECT_EQ(f2->contract_id, *second);
  EXPECT_TRUE(f1->device_disabled);
  EXPECT_TRUE(f2->device_disabled);
  EXPECT_TRUE(f1->phase == "algorithm" || f1->phase == "decode");
  EXPECT_TRUE(f2->phase == "algorithm" || f2->phase == "decode");

  // Both tamper responses fired; both contracts are dead, and the rest of
  // the service keeps working once the storage heals.
  EXPECT_TRUE(service_->ContractDead(contract_));
  EXPECT_TRUE(service_->ContractDead(*second));
  faults_->Disarm();
  ASSERT_TRUE(service_->RegisterParty("fresh", 556).ok());
  auto healthy = service_->CreateContract({"airline", "agency"}, "fresh",
                                          "any");
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*healthy, "airline", *workload_.a).ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*healthy, "agency", *workload_.b).ok());
  EXPECT_TRUE(
      service_->Execute(*healthy, request, Options()).ok());
  service_->Release(*t1);
  service_->Release(*t2);
}

// ---- Deadlines against a wedged backend -----------------------------------

TEST_F(ChaosServiceTest, StalledBackendIsBoundedByDeadline) {
  // Region IDs allocate monotonically per backend: the fixture's two
  // SubmitRelations own regions 0 and 1, the sibling tenant's own 2 and 3,
  // and every scratch region comes later — so stall-region=0 wedges exactly
  // the fixture contract's first input relation and nothing the sibling
  // ever touches.
  service::SchedulerOptions sched;
  sched.workers = 2;  // The stalled request must not block the sibling.
  ASSERT_TRUE(service_->ConfigureScheduler(sched).ok());

  ASSERT_TRUE(service_->RegisterParty("sibling", 900).ok());
  auto sibling = service_->CreateContract({"airline", "agency"}, "sibling",
                                          "any");
  ASSERT_TRUE(sibling.ok());
  relation::EquijoinSpec spec;
  spec.size_a = 8;
  spec.size_b = 16;
  spec.n_max = 4;
  spec.result_size = 7;
  spec.seed = 91;
  auto sibling_workload = relation::MakeEquijoinWorkload(spec);
  ASSERT_TRUE(sibling_workload.ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*sibling, "airline", *sibling_workload->a)
          .ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*sibling, "agency", *sibling_workload->b)
          .ok());

  // Wedge the fixture contract's input region. 120 ms per stalled op
  // against a 200 ms deadline: the first retry survives (t=120 < 200), the
  // second expires (t=240) — deterministic kDeadlineExceeded, never an
  // exhausted retry budget (the budget would need 4 attempts).
  FaultPlan plan;
  plan.seed = 7;
  plan.stall_region = 0;
  plan.stall_ms = 120;
  faults_->Arm(plan);

  service::ExecuteOptions stalled_options = Options();
  stalled_options.deadline_ms = 200;
  const service::JoinRequest stalled_request =
      service::JoinRequest::PairJoin(*workload_.predicate);
  const service::JoinRequest sibling_request =
      service::JoinRequest::PairJoin(*sibling_workload->predicate);

  const auto wall_start = std::chrono::steady_clock::now();
  auto stalled = service_->Submit(contract_, stalled_request,
                                  stalled_options);
  ASSERT_TRUE(stalled.ok()) << stalled.status();
  auto healthy = service_->Submit(*sibling, sibling_request, Options());
  ASSERT_TRUE(healthy.ok()) << healthy.status();

  // The sibling completes correctly while its neighbour is wedged.
  auto sibling_response = service_->Wait(*healthy);
  ASSERT_TRUE(sibling_response.ok()) << sibling_response.status();
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *sibling_workload->a, *sibling_workload->b,
      *sibling_workload->predicate,
      sibling_response->delivery->result_schema.get());
  EXPECT_TRUE(relation::SameTupleMultiset(
      sibling_response->delivery->tuples, truth.expected));

  // The stalled request resolves — no hung worker — to kDeadlineExceeded,
  // well inside a bound set by checkpoint granularity, not by the stall.
  auto outcome = service_->Wait(*stalled);
  const auto wall = std::chrono::steady_clock::now() - wall_start;
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall)
                .count(),
            5000);

  // Structured post-mortem; no partial plaintext anywhere.
  const auto failure = service_->post_mortem(*stalled);
  ASSERT_TRUE(failure.has_value());
  EXPECT_EQ(failure->contract_id, contract_);
  EXPECT_EQ(failure->status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(failure->device_disabled);

  // A deadline is an availability verdict, not an integrity one.
  EXPECT_FALSE(service_->ContractDead(contract_));

  const auto trace = service_->lifecycle(*stalled);
  ASSERT_TRUE(trace.has_value());
  EXPECT_EQ(trace->outcome, "deadline_exceeded");
  EXPECT_EQ(service_->scheduler_stats().deadline_exceeded, 1u);
  EXPECT_GT(faults_->stats().stalled_ops, 0u);

  service_->Release(*stalled);
  service_->Release(*healthy);
}

// ---- Per-tenant circuit breakers ------------------------------------------

TEST_F(ChaosServiceTest, TamperTripsTheTenantBreakerInstantly) {
  service::SchedulerOptions sched;
  sched.workers = 2;
  sched.breaker.failure_threshold = 5;  // Streak far away: tamper trips at 1.
  sched.breaker.cooldown_ms = 3'600'000;  // Effectively never half-open.
  ASSERT_TRUE(service_->ConfigureScheduler(sched).ok());

  FaultPlan plan;
  plan.bit_flip_rate = 1.0;
  faults_->Arm(plan);
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload_.predicate);
  auto tampered = service_->Execute(contract_, request, Options());
  ASSERT_FALSE(tampered.ok());
  EXPECT_EQ(tampered.status().code(), StatusCode::kTampered);
  faults_->Disarm();

  auto stats = service_->scheduler_stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breakers_open, 1u);

  // The dead contract refuses on its own; the breaker's job is the rest of
  // the tenant's work: a *fresh* contract for the same recipient is
  // refused at admission with kCircuitOpen while the breaker holds.
  auto fresh = service_->CreateContract({"airline", "agency"}, "analyst",
                                        "any");
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*fresh, "airline", *workload_.a).ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*fresh, "agency", *workload_.b).ok());
  auto refused = service_->Submit(*fresh, request, Options());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kCircuitOpen);
  EXPECT_EQ(service_->scheduler_stats().breaker_rejected, 1u);

  // Tenant isolation: another recipient executes untouched.
  ASSERT_TRUE(service_->RegisterParty("bystander", 901).ok());
  auto other = service_->CreateContract({"airline", "agency"}, "bystander",
                                        "any");
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*other, "airline", *workload_.a).ok());
  ASSERT_TRUE(
      service_->SubmitRelation(*other, "agency", *workload_.b).ok());
  EXPECT_TRUE(service_->Execute(*other, request, Options()).ok());
}

TEST_F(ChaosServiceTest, ConsecutiveFailuresTripBreakerAndProbeHeals) {
  service::SchedulerOptions sched;
  sched.workers = 2;
  sched.breaker.failure_threshold = 2;
  sched.breaker.cooldown_ms = 0;  // The next submit is the half-open probe.
  ASSERT_TRUE(service_->ConfigureScheduler(sched).ok());

  // A hopeless outage: every retry budget exhausts, outcome "failed".
  FaultPlan plan;
  plan.transient_read_rate = 1.0;
  plan.transient_attempts = 64;
  plan.cooldown_ops = 0;
  faults_->Arm(plan);
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload_.predicate);
  for (int i = 0; i < 2; ++i) {
    auto failed = service_->Execute(contract_, request, Options());
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable) << i;
  }
  auto stats = service_->scheduler_stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breakers_open, 1u);

  // The outage heals; the zero cooldown admits the probe immediately, it
  // succeeds, and the breaker closes for good.
  faults_->Disarm();
  auto healed = service_->Execute(contract_, request, Options());
  EXPECT_TRUE(healed.ok()) << healed.status();
  stats = service_->scheduler_stats();
  EXPECT_EQ(stats.breaker_trips, 1u);       // No re-trip.
  EXPECT_EQ(stats.breakers_open, 0u);       // Closed again.
  EXPECT_EQ(stats.breaker_rejected, 0u);    // Nothing was refused.
  EXPECT_TRUE(service_->Execute(contract_, request, Options()).ok());
}

// ---- The full sweep: every algorithm, scalar/batched/parallel -------------

/// A fully deterministic service world: fingerprints are only comparable
/// between *fresh* services (region IDs allocate monotonically per backend,
/// so two executions on one service trace different scratch-region IDs).
struct SweepWorld {
  FaultInjectingBackend* faults = nullptr;  // owned by service
  std::unique_ptr<service::SovereignJoinService> service;
  std::string contract;
};

SweepWorld MakeSweepWorld(const relation::TwoTableWorkload& workload,
                          bool pad) {
  SweepWorld world;
  auto injector =
      std::make_unique<FaultInjectingBackend>(sim::MakeInMemoryBackend());
  world.faults = injector.get();
  world.service = std::make_unique<service::SovereignJoinService>(
      std::move(injector));
  EXPECT_TRUE(world.service->RegisterParty("airline", 101).ok());
  EXPECT_TRUE(world.service->RegisterParty("agency", 102).ok());
  EXPECT_TRUE(world.service->RegisterParty("analyst", 103).ok());
  auto contract = world.service->CreateContract({"airline", "agency"},
                                                "analyst", "any");
  EXPECT_TRUE(contract.ok()) << contract.status();
  world.contract = *contract;
  EXPECT_TRUE(world.service
                  ->SubmitRelation(world.contract, "airline", *workload.a,
                                   pad)
                  .ok());
  EXPECT_TRUE(world.service
                  ->SubmitRelation(world.contract, "agency", *workload.b,
                                   pad)
                  .ok());
  return world;
}

class ChaosSweepTest : public ::testing::TestWithParam<core::Algorithm> {
 protected:
  void SetUp() override {
    relation::EquijoinSpec spec;
    spec.size_a = 8;
    spec.size_b = 16;
    spec.n_max = 4;
    spec.result_size = 9;
    spec.seed = 3;
    auto workload = relation::MakeEquijoinWorkload(spec);
    ASSERT_TRUE(workload.ok());
    workload_ = std::move(*workload);
  }

  relation::TwoTableWorkload workload_;
};

TEST_P(ChaosSweepTest, RecoversInEveryExecutionMode) {
  const core::Algorithm alg = GetParam();
  const bool needs_pad = alg == core::Algorithm::kAlgorithm3;
  const bool supports_parallel = alg == core::Algorithm::kAlgorithm4 ||
                                 alg == core::Algorithm::kAlgorithm5 ||
                                 alg == core::Algorithm::kAlgorithm6;
  struct Mode {
    const char* name;
    std::uint64_t batch_slots;  // 1 forces the scalar per-slot path.
    unsigned parallelism;
  };
  std::vector<Mode> modes = {{"batched", 0, 1}, {"scalar", 1, 1}};
  if (supports_parallel) modes.push_back({"parallel", 0, 2});

  std::uint64_t injected_failures = 0;
  for (const Mode& mode : modes) {
    SCOPED_TRACE(::testing::Message()
                 << ToString(alg) << " / " << mode.name);
    service::ExecuteOptions options;
    options.algorithm = alg;
    options.n = workload_.max_matches_per_a;
    options.memory_tuples = 6;
    options.batch_slots = mode.batch_slots;
    options.parallelism = mode.parallelism;

    SweepWorld clean = MakeSweepWorld(workload_, needs_pad);
    auto baseline = clean.service->ExecuteJoin(clean.contract,
                                               *workload_.predicate, options);
    ASSERT_TRUE(baseline.ok()) << baseline.status();

    SweepWorld chaotic = MakeSweepWorld(workload_, needs_pad);
    chaotic.faults->Arm(RecoverableTransientPlan(29));
    auto chaos_ticket = chaotic.service->Submit(
        chaotic.contract,
        service::JoinRequest::PairJoin(*workload_.predicate), options);
    ASSERT_TRUE(chaos_ticket.ok()) << chaos_ticket.status();
    auto chaos_response = chaotic.service->Wait(*chaos_ticket);
    ASSERT_TRUE(chaos_response.ok()) << chaos_response.status();
    EXPECT_FALSE(chaotic.service->post_mortem(*chaos_ticket).has_value());
    injected_failures += chaotic.faults->stats().injected_failures();
    const service::JoinDelivery& faulted = *chaos_response->delivery;

    const relation::GroundTruth truth = relation::ComputeGroundTruth(
        *workload_.a, *workload_.b, *workload_.predicate,
        faulted.result_schema.get());
    EXPECT_TRUE(
        relation::SameTupleMultiset(faulted.tuples, truth.expected))
        << "got " << faulted.tuples.size() << ", want "
        << truth.expected.size();

    // Recovery is invisible on the adversary-observable surface.
    EXPECT_EQ(faulted.trace, baseline->trace);
    EXPECT_EQ(faulted.timing, baseline->timing);
    EXPECT_EQ(faulted.metrics.TupleTransfers(),
              baseline->metrics.TupleTransfers());
    chaotic.service->Release(*chaos_ticket);
  }
  // The sweep must exercise real faults, not a quiet plan.
  EXPECT_GT(injected_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ChaosSweepTest,
    ::testing::Values(core::Algorithm::kAlgorithm1,
                      core::Algorithm::kAlgorithm1Variant,
                      core::Algorithm::kAlgorithm2,
                      core::Algorithm::kAlgorithm3,
                      core::Algorithm::kAlgorithm4,
                      core::Algorithm::kAlgorithm5,
                      core::Algorithm::kAlgorithm6),
    [](const ::testing::TestParamInfo<core::Algorithm>& param_info) {
      std::string name = ToString(param_info.param);
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace ppj
