// Tests for the stream-mode OCB (the paper's sequential relation
// encryption, Section 3.3.3) and the outbound-authentication chain
// (Sections 2.2.2 / 3.3.3).

#include <gtest/gtest.h>

#include "common/random.h"
#include "crypto/key.h"
#include "crypto/ocb.h"
#include "crypto/ocb_stream.h"
#include "sim/attestation.h"

namespace ppj {
namespace {

using crypto::Block;
using crypto::NonceFromCounter;

Block Key() { return crypto::DeriveKey(0xABCD, "stream"); }

TEST(OcbStreamTest, RoundTripBlockByBlock) {
  const Block nonce = NonceFromCounter(1);
  crypto::OcbStreamEncryptor enc(Key(), nonce);
  crypto::OcbStreamDecryptor dec(Key(), nonce);
  Rng rng(5);
  std::vector<Block> plaintexts;
  std::vector<Block> ciphertexts;
  for (int i = 0; i < 20; ++i) {
    Block p;
    rng.FillBytes(p.data(), p.size());
    plaintexts.push_back(p);
    ciphertexts.push_back(enc.NextBlock(p));
  }
  const Block tag = enc.Finalize();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dec.NextBlock(ciphertexts[i]), plaintexts[i]) << "block " << i;
  }
  EXPECT_TRUE(dec.Verify(tag).ok());
}

TEST(OcbStreamTest, SealOpenWholeBuffer) {
  Rng rng(6);
  std::vector<std::uint8_t> data(160);
  rng.FillBytes(data.data(), data.size());
  const Block nonce = NonceFromCounter(2);
  const auto sealed = crypto::SealStream(Key(), nonce, data);
  EXPECT_EQ(sealed.size(), data.size() + 16);
  auto opened = crypto::OpenStream(Key(), nonce, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, data);
}

TEST(OcbStreamTest, DetectsBitFlips) {
  std::vector<std::uint8_t> data(64, 0x11);
  const Block nonce = NonceFromCounter(3);
  auto sealed = crypto::SealStream(Key(), nonce, data);
  for (std::size_t i = 0; i < sealed.size(); i += 5) {
    auto bad = sealed;
    bad[i] ^= 0x40;
    EXPECT_FALSE(crypto::OpenStream(Key(), nonce, bad).ok())
        << "byte " << i;
  }
}

TEST(OcbStreamTest, DetectsBlockReordering) {
  // THE property per-block MACs lack: swapping two valid ciphertext blocks
  // breaks the stream tag because offsets encode sequence positions.
  std::vector<std::uint8_t> data(64);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  const Block nonce = NonceFromCounter(4);
  auto sealed = crypto::SealStream(Key(), nonce, data);
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = a + 1; b < 4; ++b) {
      auto bad = sealed;
      for (int k = 0; k < 16; ++k) {
        std::swap(bad[a * 16 + k], bad[b * 16 + k]);
      }
      EXPECT_FALSE(crypto::OpenStream(Key(), nonce, bad).ok())
          << "swap " << a << "<->" << b;
    }
  }
}

TEST(OcbStreamTest, DetectsTruncation) {
  std::vector<std::uint8_t> data(80, 0x22);
  const Block nonce = NonceFromCounter(5);
  auto sealed = crypto::SealStream(Key(), nonce, data);
  // Drop one ciphertext block (keeping the tag in place).
  std::vector<std::uint8_t> truncated;
  truncated.reserve(80);
  for (std::size_t i = 0; i < 64; ++i) truncated.push_back(sealed[i]);
  for (std::size_t i = sealed.size() - 16; i < sealed.size(); ++i) {
    truncated.push_back(sealed[i]);
  }
  EXPECT_FALSE(crypto::OpenStream(Key(), nonce, truncated).ok());
  // Malformed length.
  std::vector<std::uint8_t> ragged(sealed.begin(), sealed.begin() + 30);
  EXPECT_FALSE(crypto::OpenStream(Key(), nonce, ragged).ok());
}

TEST(OcbStreamTest, DifferentNoncesProduceUnrelatedStreams) {
  std::vector<std::uint8_t> data(32, 0x00);
  const auto s1 = crypto::SealStream(Key(), NonceFromCounter(10), data);
  const auto s2 = crypto::SealStream(Key(), NonceFromCounter(11), data);
  EXPECT_NE(s1, s2);
  EXPECT_FALSE(crypto::OpenStream(Key(), NonceFromCounter(11), s1).ok());
}

// ---------------------------------------------------------------------------
// Outbound authentication
// ---------------------------------------------------------------------------

std::vector<sim::SoftwareLayer> TrustedStack() {
  return {{"miniboot", 0x1111}, {"cp-os", 0x2222}, {"ppj-join-app", 0x3333}};
}

sim::OutboundAuthentication BootTrustedDevice(const Block& root) {
  sim::OutboundAuthentication oa(root);
  for (const auto& layer : TrustedStack()) {
    oa.LoadLayer(layer.name, layer.code_digest);
  }
  return oa;
}

TEST(AttestationTest, TrustedStackVerifies) {
  const Block root = crypto::DeriveKey(1, "device-root");
  const sim::OutboundAuthentication oa = BootTrustedDevice(root);
  EXPECT_TRUE(sim::OutboundAuthentication::Verify(root, oa.chain(),
                                                  TrustedStack())
                  .ok());
}

TEST(AttestationTest, ModifiedApplicationCodeIsRejected) {
  const Block root = crypto::DeriveKey(1, "device-root");
  sim::OutboundAuthentication oa(root);
  oa.LoadLayer("miniboot", 0x1111);
  oa.LoadLayer("cp-os", 0x2222);
  oa.LoadLayer("ppj-join-app", 0xBAD);  // trojaned application image
  const Status st = sim::OutboundAuthentication::Verify(root, oa.chain(),
                                                        TrustedStack());
  EXPECT_EQ(st.code(), StatusCode::kTampered);
}

TEST(AttestationTest, ForgedTagIsRejected) {
  const Block root = crypto::DeriveKey(1, "device-root");
  sim::OutboundAuthentication oa = BootTrustedDevice(root);
  auto chain = oa.chain();
  chain[1].tag[0] ^= 0x01;
  EXPECT_EQ(sim::OutboundAuthentication::Verify(root, chain, TrustedStack())
                .code(),
            StatusCode::kTampered);
}

TEST(AttestationTest, MissingOrExtraLayerIsRejected) {
  const Block root = crypto::DeriveKey(1, "device-root");
  sim::OutboundAuthentication oa = BootTrustedDevice(root);
  auto chain = oa.chain();
  auto shorter = chain;
  shorter.pop_back();
  EXPECT_FALSE(sim::OutboundAuthentication::Verify(root, shorter,
                                                   TrustedStack())
                   .ok());
  auto longer = chain;
  longer.push_back(chain.back());
  EXPECT_FALSE(
      sim::OutboundAuthentication::Verify(root, longer, TrustedStack())
          .ok());
}

TEST(AttestationTest, WrongDeviceKeyIsRejected) {
  // A counterfeit device without the manufacturer root cannot attest.
  const Block genuine = crypto::DeriveKey(1, "device-root");
  const Block counterfeit = crypto::DeriveKey(2, "device-root");
  const sim::OutboundAuthentication oa = BootTrustedDevice(counterfeit);
  EXPECT_EQ(sim::OutboundAuthentication::Verify(genuine, oa.chain(),
                                                TrustedStack())
                .code(),
            StatusCode::kTampered);
}

TEST(AttestationTest, LayerSubstitutionInvalidatesSuffix) {
  // Secure bootstrapping's point: swapping the OS layer of one device's
  // chain into another's breaks every link above it.
  const Block root = crypto::DeriveKey(1, "device-root");
  sim::OutboundAuthentication a = BootTrustedDevice(root);
  sim::OutboundAuthentication b(root);
  b.LoadLayer("miniboot", 0x9999);  // different bootstrap
  b.LoadLayer("cp-os", 0x2222);
  b.LoadLayer("ppj-join-app", 0x3333);
  auto spliced = a.chain();
  spliced[1] = b.chain()[1];  // graft B's (valid-in-B) OS link into A
  EXPECT_FALSE(
      sim::OutboundAuthentication::Verify(root, spliced, TrustedStack())
          .ok());
}

}  // namespace
}  // namespace ppj
