#include <gtest/gtest.h>

#include "crypto/key.h"
#include "relation/encrypted_relation.h"
#include "relation/generator.h"
#include "relation/predicate.h"
#include "relation/relation.h"
#include "relation/schema.h"
#include "relation/tuple.h"
#include "sim/coprocessor.h"

namespace ppj::relation {
namespace {

Schema TestSchema() {
  return Schema({Schema::Int64("id"), Schema::Double("score"),
                 Schema::String("name", 8), Schema::Set("tags", 4)});
}

TEST(SchemaTest, LayoutAndLookup) {
  const Schema s = TestSchema();
  EXPECT_EQ(s.num_columns(), 4u);
  EXPECT_EQ(s.tuple_size(), 8u + 8u + 8u + (4u + 16u));
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.offset(2), 16u);
  EXPECT_EQ(s.offset(3), 24u);
  EXPECT_EQ(*s.ColumnIndex("name"), 2u);
  EXPECT_FALSE(s.ColumnIndex("nope").ok());
}

TEST(SchemaTest, EqualityAndConcat) {
  const Schema a = TestSchema();
  const Schema b = TestSchema();
  EXPECT_TRUE(a == b);
  const Schema c = Schema::Concat(a, b);
  EXPECT_EQ(c.num_columns(), 8u);
  EXPECT_EQ(c.tuple_size(), 2 * a.tuple_size());
  // Name clash resolved with suffix.
  EXPECT_TRUE(c.ColumnIndex("id").ok());
  EXPECT_TRUE(c.ColumnIndex("id_r").ok());
}

TEST(TupleTest, MakeValidatesTypesAndWidths) {
  const Schema s = TestSchema();
  EXPECT_TRUE(Tuple::Make(&s, {std::int64_t{1}, 2.5, std::string("bob"),
                               std::vector<std::uint32_t>{3, 1}})
                  .ok());
  // Arity mismatch.
  EXPECT_FALSE(Tuple::Make(&s, {std::int64_t{1}}).ok());
  // Type mismatch.
  EXPECT_FALSE(Tuple::Make(&s, {2.5, 2.5, std::string("b"),
                                std::vector<std::uint32_t>{}})
                   .ok());
  // String too long for width 8.
  EXPECT_FALSE(Tuple::Make(&s, {std::int64_t{1}, 2.5,
                                std::string("very long string"),
                                std::vector<std::uint32_t>{}})
                   .ok());
  // Set beyond capacity 4.
  EXPECT_FALSE(Tuple::Make(&s, {std::int64_t{1}, 2.5, std::string("b"),
                                std::vector<std::uint32_t>{1, 2, 3, 4, 5}})
                   .ok());
}

TEST(TupleTest, SerializeRoundTripAllTypes) {
  const Schema s = TestSchema();
  auto t = Tuple::Make(&s, {std::int64_t{-42}, 3.25, std::string("alice"),
                            std::vector<std::uint32_t>{9, 2, 9, 5}});
  ASSERT_TRUE(t.ok());
  const auto bytes = t->Serialize();
  EXPECT_EQ(bytes.size(), s.tuple_size());
  auto back = Tuple::Deserialize(&s, bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, *t);
  EXPECT_EQ(back->GetInt64(0), -42);
  EXPECT_DOUBLE_EQ(back->GetDouble(1), 3.25);
  EXPECT_EQ(back->GetString(2), "alice");
  // Sets are canonicalized: sorted + deduplicated.
  EXPECT_EQ(back->GetSet(3), (std::vector<std::uint32_t>{2, 5, 9}));
}

TEST(TupleTest, DeserializeRejectsMalformed) {
  const Schema s = TestSchema();
  EXPECT_FALSE(Tuple::Deserialize(&s, std::vector<std::uint8_t>(3)).ok());
  std::vector<std::uint8_t> bytes(s.tuple_size(), 0);
  bytes[24] = 200;  // set count beyond capacity 4
  EXPECT_FALSE(Tuple::Deserialize(&s, bytes).ok());
}

TEST(PredicateTest, Equality) {
  const Schema s = TestSchema();
  auto a = Tuple::Make(&s, {std::int64_t{7}, 0.0, std::string("x"),
                            std::vector<std::uint32_t>{}});
  auto b = Tuple::Make(&s, {std::int64_t{7}, 1.0, std::string("y"),
                            std::vector<std::uint32_t>{}});
  auto c = Tuple::Make(&s, {std::int64_t{8}, 0.0, std::string("x"),
                            std::vector<std::uint32_t>{}});
  const EqualityPredicate eq(0, 0);
  EXPECT_TRUE(eq.Match(*a, *b));
  EXPECT_FALSE(eq.Match(*a, *c));
  EXPECT_TRUE(eq.is_equality());
}

TEST(PredicateTest, LessThanAndBand) {
  const Schema s = TestSchema();
  auto mk = [&](std::int64_t v) {
    return *Tuple::Make(&s, {v, 0.0, std::string(""),
                             std::vector<std::uint32_t>{}});
  };
  const LessThanPredicate lt(0, 0);
  EXPECT_TRUE(lt.Match(mk(1), mk(2)));
  EXPECT_FALSE(lt.Match(mk(2), mk(2)));
  EXPECT_FALSE(lt.is_equality());

  const BandPredicate band(0, 0, 3);
  EXPECT_TRUE(band.Match(mk(10), mk(13)));
  EXPECT_TRUE(band.Match(mk(13), mk(10)));
  EXPECT_FALSE(band.Match(mk(10), mk(14)));
}

TEST(PredicateTest, L1Norm) {
  const Schema s({Schema::Int64("x"), Schema::Int64("y")});
  auto mk = [&](std::int64_t x, std::int64_t y) {
    return *Tuple::Make(&s, {x, y});
  };
  const L1NormPredicate l1({0, 1}, {0, 1}, 5);
  EXPECT_TRUE(l1.Match(mk(1, 2), mk(3, 4)));   // |1-3|+|2-4| = 4
  EXPECT_FALSE(l1.Match(mk(0, 0), mk(3, 4)));  // 7 > 5
}

TEST(PredicateTest, Jaccard) {
  EXPECT_DOUBLE_EQ(JaccardPredicate::Coefficient({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardPredicate::Coefficient({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardPredicate::Coefficient({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardPredicate::Coefficient({}, {}), 0.0);

  const Schema s({Schema::Int64("id"), Schema::Set("f", 4)});
  auto mk = [&](std::vector<std::uint32_t> set) {
    return *Tuple::Make(&s, {std::int64_t{0}, std::move(set)});
  };
  const JaccardPredicate j(1, 1, 0.4);
  EXPECT_TRUE(j.Match(mk({1, 2, 3}), mk({2, 3, 4})));
  EXPECT_FALSE(j.Match(mk({1, 2, 3}), mk({3, 4, 5})));  // 1/5 <= 0.4
}

TEST(PredicateTest, ChainAndLambda) {
  const Schema s({Schema::Int64("k")});
  auto mk = [&](std::int64_t v) { return *Tuple::Make(&s, {v}); };
  const EqualityPredicate eq(0, 0);
  const ChainPredicate chain({&eq, &eq});
  std::vector<Tuple> good = {mk(1), mk(1), mk(1)};
  std::vector<Tuple> bad = {mk(1), mk(1), mk(2)};
  EXPECT_TRUE(chain.Satisfy(good));
  EXPECT_FALSE(chain.Satisfy(bad));

  const LambdaPredicate lam("sum<5", [](const Tuple& a, const Tuple& b) {
    return a.GetInt64(0) + b.GetInt64(0) < 5;
  });
  EXPECT_TRUE(lam.Match(mk(1), mk(2)));
  EXPECT_FALSE(lam.Match(mk(3), mk(3)));
}

TEST(RelationTest, AppendAndMultisetEquality) {
  Relation r("R", Schema({Schema::Int64("k")}));
  ASSERT_TRUE(r.Append({std::int64_t{1}}).ok());
  ASSERT_TRUE(r.Append({std::int64_t{2}}).ok());
  EXPECT_EQ(r.size(), 2u);
  EXPECT_FALSE(r.Append({2.5}).ok());

  std::vector<Tuple> x = {r.tuple(0), r.tuple(1)};
  std::vector<Tuple> y = {r.tuple(1), r.tuple(0)};
  EXPECT_TRUE(SameTupleMultiset(x, y));
  std::vector<Tuple> z = {r.tuple(0), r.tuple(0)};
  EXPECT_FALSE(SameTupleMultiset(x, z));
}

TEST(WireTest, RealAndDecoyFraming) {
  const std::vector<std::uint8_t> payload = {9, 8, 7};
  const auto real = wire::MakeReal(payload);
  EXPECT_TRUE(wire::IsReal(real));
  EXPECT_EQ(wire::Payload(real), payload);
  const auto decoy = wire::MakeDecoy(3);
  EXPECT_FALSE(wire::IsReal(decoy));
  EXPECT_EQ(decoy.size(), real.size());
}

TEST(EncryptedRelationTest, SealFetchRoundTrip) {
  sim::HostStore host;
  sim::Coprocessor copro(&host, {});
  const crypto::Ocb key(crypto::DeriveKey(5, "er"));

  Relation r("R", Schema({Schema::Int64("k"), Schema::String("v", 8)}));
  ASSERT_TRUE(r.Append({std::int64_t{10}, std::string("ten")}).ok());
  ASSERT_TRUE(r.Append({std::int64_t{20}, std::string("twenty")}).ok());

  auto sealed = EncryptedRelation::Seal(&host, r, &key, 4);
  ASSERT_TRUE(sealed.ok());
  EXPECT_EQ(sealed->size(), 2u);
  EXPECT_EQ(sealed->padded_size(), 4u);

  auto f0 = sealed->Fetch(copro, 0);
  ASSERT_TRUE(f0.ok());
  EXPECT_TRUE(f0->real);
  EXPECT_EQ(f0->tuple.GetInt64(0), 10);
  auto f3 = sealed->Fetch(copro, 3);
  ASSERT_TRUE(f3.ok());
  EXPECT_FALSE(f3->real);  // padding
  EXPECT_EQ(copro.metrics().gets, 2u);
}

TEST(EncryptedRelationTest, TamperedSlotDetected) {
  sim::HostStore host;
  sim::Coprocessor copro(&host, {});
  const crypto::Ocb key(crypto::DeriveKey(6, "er2"));
  Relation r("R", Schema({Schema::Int64("k")}));
  ASSERT_TRUE(r.Append({std::int64_t{1}}).ok());
  auto sealed = EncryptedRelation::Seal(&host, r, &key);
  ASSERT_TRUE(sealed.ok());
  ASSERT_TRUE(host.CorruptSlot(sealed->region(), 0, 17 * 8).ok());
  EXPECT_EQ(sealed->Fetch(copro, 0).status().code(), StatusCode::kTampered);
}

TEST(GeneratorTest, EquijoinShapeIsExact) {
  for (std::uint64_t n : {1u, 2u, 4u, 8u}) {
    for (std::uint64_t s : {8u, 12u, 16u}) {
      if (s < n) continue;
      EquijoinSpec spec;
      spec.size_a = 32;
      spec.size_b = 32;
      spec.n_max = n;
      spec.result_size = s;
      spec.seed = n * 100 + s;
      auto w = MakeEquijoinWorkload(spec);
      ASSERT_TRUE(w.ok()) << w.status();
      const GroundTruth truth =
          ComputeGroundTruth(*w->a, *w->b, *w->predicate, nullptr);
      EXPECT_EQ(truth.result_size, s) << "n=" << n << " s=" << s;
      EXPECT_EQ(truth.max_matches_per_a, n) << "n=" << n << " s=" << s;
    }
  }
}

TEST(GeneratorTest, EquijoinRejectsInfeasibleShapes) {
  EquijoinSpec spec;
  spec.size_a = 2;
  spec.size_b = 8;
  spec.n_max = 1;
  spec.result_size = 8;  // needs 8 groups > size_a
  EXPECT_FALSE(MakeEquijoinWorkload(spec).ok());
  spec.n_max = 0;
  EXPECT_FALSE(MakeEquijoinWorkload(spec).ok());
}

TEST(GeneratorTest, CellWorkloadExactSAndSkew) {
  CellSpec spec;
  spec.size_a = 16;
  spec.size_b = 16;
  spec.result_size = 13;
  spec.seed = 3;
  auto w = MakeCellWorkload(spec);
  ASSERT_TRUE(w.ok());
  const GroundTruth truth =
      ComputeGroundTruth(*w->a, *w->b, *w->predicate, nullptr);
  EXPECT_EQ(truth.result_size, 13u);
  EXPECT_EQ(truth.max_matches_per_a, w->max_matches_per_a);

  spec.skew_rows = 1;  // all matches on one A row
  auto skewed = MakeCellWorkload(spec);
  ASSERT_TRUE(skewed.ok());
  EXPECT_EQ(skewed->max_matches_per_a, 13u);
}

TEST(GeneratorTest, ZipfWorkloadShapeAndSkew) {
  ZipfSpec spec;
  spec.size_a = 16;
  spec.size_b = 64;
  spec.num_keys = 8;
  spec.seed = 3;

  spec.exponent = 0.0;  // uniform
  auto uniform = MakeZipfEquijoinWorkload(spec);
  ASSERT_TRUE(uniform.ok());
  spec.exponent = 2.0;  // heavily skewed
  auto skewed = MakeZipfEquijoinWorkload(spec);
  ASSERT_TRUE(skewed.ok());

  // Every B tuple matches exactly one A tuple (A covers the key universe),
  // so S = |B| in both cases; the skew concentrates matches on one key.
  EXPECT_EQ(uniform->result_size, 64u);
  EXPECT_EQ(skewed->result_size, 64u);
  EXPECT_GT(skewed->max_matches_per_a, uniform->max_matches_per_a);
  // Ground truth agrees with the recorded shape.
  const GroundTruth truth =
      ComputeGroundTruth(*skewed->a, *skewed->b, *skewed->predicate,
                         nullptr);
  EXPECT_EQ(truth.max_matches_per_a, skewed->max_matches_per_a);
}

TEST(GeneratorTest, ZipfRejectsEmptyUniverse) {
  ZipfSpec spec;
  spec.num_keys = 0;
  EXPECT_FALSE(MakeZipfEquijoinWorkload(spec).ok());
}

TEST(GeneratorTest, JaccardWorkloadHasPlantedMatches) {
  JaccardSpec spec;
  spec.planted_pairs = 4;
  spec.threshold = 0.5;
  auto w = MakeJaccardWorkload(spec);
  ASSERT_TRUE(w.ok());
  EXPECT_GE(w->result_size, 1u);
  const GroundTruth truth =
      ComputeGroundTruth(*w->a, *w->b, *w->predicate, nullptr);
  EXPECT_EQ(truth.result_size, w->result_size);
}

}  // namespace
}  // namespace ppj::relation
