#include <optional>

#include <gtest/gtest.h>

#include "common/math.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "core/cartesian.h"
#include "core/join_result.h"
#include "core/privacy_auditor.h"
#include "test_util.h"

namespace ppj::core {
namespace {

using relation::MakeCellWorkload;
using relation::MakeEquijoinWorkload;
using test::MakeWorld;
using test::TwoPartyWorld;

enum class Ch5Alg { kAlg4, kAlg5, kAlg6 };

Result<Ch5Outcome> RunCh5(Ch5Alg which, TwoPartyWorld& world,
                          double epsilon = 1e-6,
                          std::uint64_t forced_segment = 0) {
  const relation::PairAsMultiway multiway(world.workload.predicate.get());
  MultiwayJoin join{{world.a.get(), world.b.get()}, &multiway,
                    world.key_out.get()};
  switch (which) {
    case Ch5Alg::kAlg4:
      return RunAlgorithm4(*world.copro, join);
    case Ch5Alg::kAlg5:
      return RunAlgorithm5(*world.copro, join);
    case Ch5Alg::kAlg6:
      return RunAlgorithm6(*world.copro, join,
                           {.epsilon = epsilon,
                            .order_seed = 0xBEEF,
                            .forced_segment_size = forced_segment});
  }
  return Status::Internal("unreachable");
}

void ExpectExactResult(TwoPartyWorld& world, const Ch5Outcome& outcome) {
  const relation::GroundTruth truth = relation::ComputeGroundTruth(
      *world.workload.a, *world.workload.b, *world.workload.predicate,
      world.result_schema.get());
  EXPECT_EQ(outcome.result_size, truth.result_size);
  auto decoded = DecodeJoinOutput(world.host, outcome.output_region,
                                  outcome.result_size, *world.key_out,
                                  world.result_schema.get());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Chapter 5 contract: the exact result, nothing else — every slot real.
  EXPECT_EQ(decoded->size(), truth.result_size);
  EXPECT_TRUE(relation::SameTupleMultiset(*decoded, truth.expected));
}

TEST(CartesianTest, DecomposeComposeRoundTrip) {
  CartesianIndex idx({3, 4, 5});
  EXPECT_EQ(idx.size(), 60u);
  for (std::uint64_t i = 0; i < 60; ++i) {
    const auto parts = idx.Decompose(i);
    EXPECT_LT(parts[0], 3u);
    EXPECT_LT(parts[1], 4u);
    EXPECT_LT(parts[2], 5u);
    EXPECT_EQ(idx.Compose(parts), i);
  }
  // Row-major: last table varies fastest.
  EXPECT_EQ(idx.Decompose(1), (std::vector<std::uint64_t>{0, 0, 1}));
  EXPECT_EQ(idx.Decompose(5), (std::vector<std::uint64_t>{0, 1, 0}));
}

TEST(CartesianTest, SequentialReaderCachesPrefix) {
  relation::CellSpec spec;
  spec.size_a = 4;
  spec.size_b = 8;
  spec.result_size = 3;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 4);
  ASSERT_NE(world, nullptr);
  ITupleReader reader(world->copro.get(), {world->a.get(), world->b.get()});
  for (std::uint64_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(reader.Fetch(i).ok());
  }
  // Sequential scan: 32 B fetches + 4 A fetches (prefix cached).
  EXPECT_EQ(world->copro->metrics().gets, 32u + 4u);
  EXPECT_EQ(world->copro->metrics().ituple_reads, 32u);
}

struct Ch5Case {
  Ch5Alg alg;
  std::uint64_t size_a, size_b, s, memory;
  double epsilon;
};

class Ch5CorrectnessTest : public ::testing::TestWithParam<Ch5Case> {};

TEST_P(Ch5CorrectnessTest, ExactResultOnCellWorkload) {
  const Ch5Case& c = GetParam();
  relation::CellSpec spec;
  spec.size_a = c.size_a;
  spec.size_b = c.size_b;
  spec.result_size = c.s;
  spec.seed = c.size_a * 13 + c.s;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok()) << workload.status();
  auto world = MakeWorld(std::move(*workload), c.memory);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh5(c.alg, *world, c.epsilon);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->blemish);
  ExpectExactResult(*world, *outcome);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Ch5CorrectnessTest,
    ::testing::Values(
        // Algorithm 4: works with tiny memory.
        Ch5Case{Ch5Alg::kAlg4, 8, 8, 5, 0, 0},
        Ch5Case{Ch5Alg::kAlg4, 12, 16, 20, 0, 0},
        Ch5Case{Ch5Alg::kAlg4, 16, 16, 1, 0, 0},
        // Algorithm 5: multiple scans (S > M) and single scan (S <= M).
        Ch5Case{Ch5Alg::kAlg5, 8, 8, 12, 4, 0},
        Ch5Case{Ch5Alg::kAlg5, 12, 16, 7, 16, 0},
        Ch5Case{Ch5Alg::kAlg5, 10, 10, 25, 3, 0},
        // Algorithm 6: S > M path and M >= S shortcut.
        Ch5Case{Ch5Alg::kAlg6, 12, 12, 24, 6, 1e-6},
        Ch5Case{Ch5Alg::kAlg6, 16, 16, 10, 4, 1e-9},
        Ch5Case{Ch5Alg::kAlg6, 8, 8, 3, 16, 1e-6}));

TEST(Ch5AlgorithmsTest, EmptyResultHandled) {
  relation::CellSpec spec;
  spec.size_a = 6;
  spec.size_b = 6;
  spec.result_size = 0;
  for (Ch5Alg alg : {Ch5Alg::kAlg4, Ch5Alg::kAlg5, Ch5Alg::kAlg6}) {
    auto workload = MakeCellWorkload(spec);
    ASSERT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), 4);
    ASSERT_NE(world, nullptr);
    auto outcome = RunCh5(alg, *world);
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->result_size, 0u);
  }
}

TEST(Ch5AlgorithmsTest, ThreeWayJoinChainPredicate) {
  // X1 ⋈ X2 ⋈ X3 on key equality chains — the J > 2 path.
  relation::Schema schema({relation::Schema::Int64("k")});
  auto mk = [&](const std::string& name,
                std::vector<std::int64_t> keys) {
    auto rel = std::make_unique<relation::Relation>(
        name, relation::Schema(schema));
    for (std::int64_t k : keys) EXPECT_TRUE(rel->Append({k}).ok());
    return rel;
  };
  auto x1 = mk("X1", {1, 2, 3, 4});
  auto x2 = mk("X2", {2, 2, 3, 9});
  auto x3 = mk("X3", {3, 2, 7, 2});
  // Expected chain matches k1 == k2 == k3:
  // k=2: 1 (X1) * 2 (X2) * 2 (X3) = 4; k=3: 1 * 1 * 1 = 1 -> S = 5.

  sim::HostStore host;
  sim::Coprocessor copro(&host, {.memory_tuples = 4, .seed = 1});
  const crypto::Ocb key1(crypto::DeriveKey(1, "x1"));
  const crypto::Ocb key2(crypto::DeriveKey(2, "x2"));
  const crypto::Ocb key3(crypto::DeriveKey(3, "x3"));
  const crypto::Ocb key_out(crypto::DeriveKey(4, "out"));
  auto e1 = relation::EncryptedRelation::Seal(&host, *x1, &key1);
  auto e2 = relation::EncryptedRelation::Seal(&host, *x2, &key2);
  auto e3 = relation::EncryptedRelation::Seal(&host, *x3, &key3);
  ASSERT_TRUE(e1.ok() && e2.ok() && e3.ok());

  const relation::EqualityPredicate eq(0, 0);
  const relation::ChainPredicate chain({&eq, &eq});
  MultiwayJoin join{{&*e1, &*e2, &*e3}, &chain, &key_out};

  for (Ch5Alg alg : {Ch5Alg::kAlg4, Ch5Alg::kAlg5, Ch5Alg::kAlg6}) {
    sim::Coprocessor fresh(&host, {.memory_tuples = 4, .seed = 1});
    Result<Ch5Outcome> outcome = Status::Internal("unset");
    switch (alg) {
      case Ch5Alg::kAlg4:
        outcome = RunAlgorithm4(fresh, join);
        break;
      case Ch5Alg::kAlg5:
        outcome = RunAlgorithm5(fresh, join);
        break;
      case Ch5Alg::kAlg6:
        outcome = RunAlgorithm6(fresh, join, {.epsilon = 1e-6});
        break;
    }
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_EQ(outcome->result_size, 5u) << "alg " << static_cast<int>(alg);
  }
}

// ---------------------------------------------------------------------------
// Cost reconciliation against the Chapter 5 closed forms.
// ---------------------------------------------------------------------------

TEST(Ch5CostReconciliation, Algorithm5ReadsAndWritesMatchEqn53) {
  const std::uint64_t size_a = 8, size_b = 8, s = 11, m = 4;
  relation::CellSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.result_size = s;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), m);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh5(Ch5Alg::kAlg5, *world);
  ASSERT_TRUE(outcome.ok());

  const std::uint64_t l = size_a * size_b;
  // Read cost ceil(S/M) L in logical iTuple reads; write cost exactly S.
  EXPECT_EQ(world->copro->metrics().ituple_reads, CeilDiv(s, m) * l);
  EXPECT_EQ(world->copro->metrics().puts, s);
  EXPECT_EQ(world->copro->metrics().disk_writes, s);
}

TEST(Ch5CostReconciliation, Algorithm4StagesExactlyLOTuples) {
  const std::uint64_t size_a = 8, size_b = 8, s = 6;
  relation::CellSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.result_size = s;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), 0);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh5(Ch5Alg::kAlg4, *world);
  ASSERT_TRUE(outcome.ok());
  const std::uint64_t l = size_a * size_b;
  EXPECT_EQ(outcome->staging_slots, l);
  EXPECT_EQ(world->copro->metrics().ituple_reads, l);
  // One staged put per iTuple, plus the filter's transfers on top.
  EXPECT_GE(world->copro->metrics().puts, l);
}

TEST(Ch5CostReconciliation, Algorithm6StagingMatchesSegmentModel) {
  const std::uint64_t size_a = 16, size_b = 16, s = 30, m = 8;
  relation::CellSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.result_size = s;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), m);
  ASSERT_NE(world, nullptr);
  // Force a known segment size to pin the model (small enough that
  // blemish is impossible: n = m means <= m results per segment).
  auto outcome = RunCh5(Ch5Alg::kAlg6, *world, 1e-6, /*forced_segment=*/m);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_FALSE(outcome->blemish);
  const std::uint64_t l = size_a * size_b;
  EXPECT_EQ(outcome->staging_slots, CeilDiv(l, m) * m);
  // Screening pass + processing pass.
  EXPECT_EQ(world->copro->metrics().ituple_reads, 2 * l);
  ExpectExactResult(*world, *outcome);
}

TEST(Ch5CostReconciliation, Algorithm6LargeMemoryShortcutCostsLPlusS) {
  const std::uint64_t size_a = 8, size_b = 8, s = 5;
  relation::CellSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.result_size = s;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), /*memory=*/64);  // M >= S
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh5(Ch5Alg::kAlg6, *world, 1e-20);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(world->copro->metrics().ituple_reads, size_a * size_b);
  EXPECT_EQ(world->copro->metrics().puts, s);
  ExpectExactResult(*world, *outcome);
}

// ---------------------------------------------------------------------------
// Blemish path.
// ---------------------------------------------------------------------------

TEST(Ch5BlemishTest, ForcedBlemishSalvagesCorrectly) {
  // Segment size far above M with a dense result set guarantees overflow.
  const std::uint64_t size_a = 8, size_b = 8, s = 40, m = 4;
  relation::CellSpec spec;
  spec.size_a = size_a;
  spec.size_b = size_b;
  spec.result_size = s;
  auto workload = MakeCellWorkload(spec);
  ASSERT_TRUE(workload.ok());
  auto world = MakeWorld(std::move(*workload), m);
  ASSERT_NE(world, nullptr);
  auto outcome = RunCh5(Ch5Alg::kAlg6, *world, 1e-6, /*forced_segment=*/64);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->blemish);
  // The salvage action still delivers the exact result.
  ExpectExactResult(*world, *outcome);
}

// ---------------------------------------------------------------------------
// Definition 3 audits.
// ---------------------------------------------------------------------------

class Ch5AuditTest : public ::testing::TestWithParam<Ch5Alg> {};

TEST_P(Ch5AuditTest, TraceIdenticalAcrossShapeEqualInputs) {
  // Definition 3 fixes table sizes AND |f(...)| = S; contents and match
  // *placement* vary wildly across worlds (including maximal skew).
  const Ch5Alg alg = GetParam();
  auto runner = [&](std::uint64_t w) -> Result<AuditRun> {
    relation::CellSpec spec;
    spec.size_a = 8;
    spec.size_b = 12;
    spec.result_size = 10;
    spec.seed = 31 * w + 5;
    spec.skew_rows = (w % 2 == 0) ? 0 : 2;
    auto workload = MakeCellWorkload(spec);
    if (!workload.ok()) return workload.status();
    auto world = MakeWorld(std::move(*workload), 4, false, /*seed=*/99);
    PPJ_ASSIGN_OR_RETURN(Ch5Outcome outcome, RunCh5(alg, *world, 1e-6));
    if (outcome.blemish) {
      return Status::Internal("unexpected blemish during audit");
    }
    AuditRun run;
    run.fingerprint = world->copro->trace().fingerprint();
    run.retained_events = world->copro->trace().retained_events();
    return run;
  };
  auto audit = PrivacyAuditor::CompareManyWorlds(runner, 4);
  ASSERT_TRUE(audit.ok()) << audit.status();
  EXPECT_TRUE(audit->identical) << audit->detail;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Ch5AuditTest,
                         ::testing::Values(Ch5Alg::kAlg4, Ch5Alg::kAlg5,
                                           Ch5Alg::kAlg6));

TEST(Ch5AuditTest2, BlemishTraceDiffersFromCleanTrace) {
  // The epsilon-probability privacy loss is real: with identical shape
  // parameters, a dataset whose matches happen to crowd one random segment
  // triggers the salvage path and its trace differs from a clean run's.
  // Search dataset seeds until both behaviours appear (the segment size is
  // chosen borderline: expected matches per segment == M).
  struct Observed {
    bool blemish;
    sim::TraceFingerprint trace;
  };
  auto run_seed = [&](std::uint64_t seed) -> Observed {
    relation::CellSpec spec;
    spec.size_a = 8;
    spec.size_b = 8;
    spec.result_size = 20;
    spec.seed = seed;
    auto workload = MakeCellWorkload(spec);
    EXPECT_TRUE(workload.ok());
    auto world = MakeWorld(std::move(*workload), /*memory=*/5, false, 11);
    auto outcome = RunCh5(Ch5Alg::kAlg6, *world, 1e-6, /*forced_segment=*/16);
    EXPECT_TRUE(outcome.ok());
    return Observed{outcome->blemish, world->copro->trace().fingerprint()};
  };
  std::optional<Observed> clean, blemished;
  for (std::uint64_t seed = 1; seed <= 60 && (!clean || !blemished);
       ++seed) {
    const Observed o = run_seed(seed);
    if (o.blemish && !blemished) blemished = o;
    if (!o.blemish && !clean) clean = o;
  }
  ASSERT_TRUE(clean.has_value() && blemished.has_value())
      << "could not find both a clean and a blemished dataset";
  EXPECT_NE(clean->trace, blemished->trace);
}

}  // namespace
}  // namespace ppj::core
