#ifndef PPJ_TESTS_TEST_UTIL_H_
#define PPJ_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "common/math.h"
#include "crypto/key.h"
#include "crypto/ocb.h"
#include "relation/encrypted_relation.h"
#include "relation/generator.h"
#include "sim/coprocessor.h"
#include "sim/host_store.h"

namespace ppj::test {

/// A fully wired two-party world: host, coprocessor, sealed relations, and
/// the keys — everything an algorithm run needs. Used by correctness tests
/// and by privacy audits (which build one world per dataset).
struct TwoPartyWorld {
  sim::HostStore host;
  std::unique_ptr<sim::Coprocessor> copro;
  relation::TwoTableWorkload workload;
  std::unique_ptr<crypto::Ocb> key_a;
  std::unique_ptr<crypto::Ocb> key_b;
  std::unique_ptr<crypto::Ocb> key_out;
  std::unique_ptr<relation::EncryptedRelation> a;
  std::unique_ptr<relation::EncryptedRelation> b;
  std::unique_ptr<relation::Schema> result_schema;

  TwoPartyWorld() = default;
  TwoPartyWorld(const TwoPartyWorld&) = delete;
  TwoPartyWorld& operator=(const TwoPartyWorld&) = delete;
};

/// Builds a world around a generated workload. `pad_b_pow2` also pads A
/// (harmless) so in-place-sorting algorithms apply. `crypto_options` selects
/// the cipher backend / kernel width for all three keys — the wide-vs-scalar
/// fingerprint goldens build otherwise-identical worlds that differ only
/// here.
inline std::unique_ptr<TwoPartyWorld> MakeWorld(
    relation::TwoTableWorkload workload, std::uint64_t memory_tuples,
    bool pad_pow2 = false, std::uint64_t copro_seed = 42,
    const crypto::Ocb::Options& crypto_options = {}) {
  auto world = std::make_unique<TwoPartyWorld>();
  world->workload = std::move(workload);
  world->copro = std::make_unique<sim::Coprocessor>(
      &world->host, sim::CoprocessorOptions{.memory_tuples = memory_tuples,
                                            .seed = copro_seed});
  world->key_a = std::make_unique<crypto::Ocb>(crypto::DeriveKey(1, "A"),
                                               crypto_options);
  world->key_b = std::make_unique<crypto::Ocb>(crypto::DeriveKey(2, "B"),
                                               crypto_options);
  world->key_out = std::make_unique<crypto::Ocb>(crypto::DeriveKey(3, "C"),
                                                 crypto_options);

  const std::uint64_t pad_a =
      pad_pow2 ? NextPowerOfTwo(world->workload.a->size()) : 0;
  const std::uint64_t pad_b =
      pad_pow2 ? NextPowerOfTwo(world->workload.b->size()) : 0;
  auto a = relation::EncryptedRelation::Seal(
      &world->host, *world->workload.a, world->key_a.get(), pad_a);
  auto b = relation::EncryptedRelation::Seal(
      &world->host, *world->workload.b, world->key_b.get(), pad_b);
  if (!a.ok() || !b.ok()) return nullptr;
  world->a =
      std::make_unique<relation::EncryptedRelation>(std::move(*a));
  world->b =
      std::make_unique<relation::EncryptedRelation>(std::move(*b));
  world->result_schema =
      std::make_unique<relation::Schema>(relation::Schema::Concat(
          world->workload.a->schema(), world->workload.b->schema()));
  return world;
}

}  // namespace ppj::test

#endif  // PPJ_TESTS_TEST_UTIL_H_
