#!/usr/bin/env python3
"""Perf-regression gate over BENCH result lines (ROADMAP item 4).

Every bench harness emits machine-readable lines of the form

    BENCH {"bench":"service_throughput","params":{...},"tuple_transfers":0,"wall_ns":123}

(see bench/bench_util.h). This tool compares the BENCH lines of a fresh run
against a committed baseline file under bench_data/ and fails (exit 1) when
any gated metric regressed by more than --tolerance (default 10%).

Modes:
  # Compare a captured run (file or '-' for stdin) against a baseline:
  bench_gate.py --baseline bench_data/BENCH_service_smoke.json --input run.txt

  # Run the bench itself N times (best-of-N damps scheduler noise):
  bench_gate.py --baseline bench_data/BENCH_micro_crypto.json \
      --runs 3 --command './build/bench/bench_micro_crypto --benchmark_filter=BM_OcbSeal'

  # Self-test of the gate logic (machine-independent; wired into ctest):
  bench_gate.py --self-test

Matching: records pair up by bench name plus every *shape* param present in
both records (sizes, counts, configuration); *measured* params
(joins_per_sec, p50_ms, ...) and wall_ns/tuple_transfers are gated, each
with a direction (higher-better or lower-better). A baseline record with no
matching current record is itself a failure — a silently vanished bench
must not pass the gate.
"""

import argparse
import json
import re
import shlex
import subprocess
import sys

# google-benchmark interleaves its colourised console table with the BENCH
# lines, leaving ANSI escapes glued to the start of the line.
ANSI = re.compile(r"\x1b\[[0-9;]*m")

# Measured metrics and their direction. Everything else inside params is a
# shape key and must match exactly for two records to pair up.
HIGHER_BETTER = {
    "joins_per_sec",
    "tuples_per_sec",
    "bytes_per_second",
    "items_per_second",
    # Relative win of one configuration over another (bench_storage's
    # mmap-vs-file ratio): committed as a baseline so the zero-copy
    # advantage itself is regression-gated.
    "speedup_x",
}
LOWER_BETTER = {
    "p50_ms",
    "p99_ms",
    "wall_ms",
}
# Top-level fields gated alongside params. tuple_transfers is a determinism
# check, not a perf metric: any change at all fails the gate.
TOP_LEVEL_LOWER_BETTER = {"wall_ns"}
EXACT_MATCH = {"tuple_transfers"}
# Measured-but-not-gated noise (google-benchmark bookkeeping).
IGNORED = {"iterations", "real_time", "cpu_time"}


def parse_bench_lines(text):
    """Returns the list of parsed BENCH JSON payloads in `text`."""
    records = []
    for line in text.splitlines():
        line = ANSI.sub("", line).strip()
        if not line.startswith("BENCH "):
            continue
        try:
            records.append(json.loads(line[len("BENCH "):]))
        except json.JSONDecodeError as err:
            print(f"bench_gate: unparseable BENCH line ({err}): {line}",
                  file=sys.stderr)
            sys.exit(2)
    return records


def shape_of(record):
    """The identity of a record: bench name + non-measured params."""
    params = record.get("params", {})
    shape = {
        k: v
        for k, v in sorted(params.items())
        if k not in HIGHER_BETTER | LOWER_BETTER | IGNORED
    }
    return (record.get("bench", "?"), tuple(shape.items()))


def gated_metrics(record):
    """(name, value, higher_is_better) triples this record exposes."""
    out = []
    for k, v in sorted(record.get("params", {}).items()):
        if k in HIGHER_BETTER:
            out.append((k, float(v), True))
        elif k in LOWER_BETTER:
            out.append((k, float(v), False))
    for k in TOP_LEVEL_LOWER_BETTER:
        if record.get(k):  # 0 means "not measured" for wall_ns
            out.append((k, float(record[k]), False))
    return out


def merge_best(runs):
    """Best-of-N merge: per shape, keep the best value of every metric."""
    merged = {}
    for records in runs:
        for rec in records:
            key = shape_of(rec)
            if key not in merged:
                merged[key] = json.loads(json.dumps(rec))  # deep copy
                continue
            best = merged[key]
            for name, value, higher in gated_metrics(rec):
                container = best["params"] if name in best.get("params", {}) \
                    else best
                old = float(container.get(name, value))
                container[name] = max(old, value) if higher \
                    else min(old, value)
    return list(merged.values())


def compare(baseline_records, current_records, tolerance):
    """Returns a list of failure strings (empty = gate passes)."""
    failures = []
    current_by_shape = {shape_of(r): r for r in current_records}
    for base in baseline_records:
        key = shape_of(base)
        cur = current_by_shape.get(key)
        if cur is None:
            failures.append(
                f"{key[0]}: no matching BENCH record in the current run "
                f"(shape {dict(key[1])})")
            continue
        for name, base_value, higher in gated_metrics(base):
            container = cur.get("params", {}) if name in cur.get("params", {}) \
                else cur
            if name not in container:
                failures.append(f"{key[0]}: metric '{name}' missing from the "
                                "current run")
                continue
            cur_value = float(container[name])
            if base_value == 0:
                continue  # nothing to regress against
            if higher:
                regression = (base_value - cur_value) / base_value
            else:
                regression = (cur_value - base_value) / base_value
            direction = "higher-better" if higher else "lower-better"
            if regression > tolerance:
                failures.append(
                    f"{key[0]}: {name} regressed {regression:+.1%} "
                    f"(baseline {base_value:g}, current {cur_value:g}, "
                    f"{direction}, tolerance {tolerance:.0%})")
            else:
                print(f"bench_gate: OK {key[0]}.{name} "
                      f"{regression:+.1%} vs baseline "
                      f"({base_value:g} -> {cur_value:g}, {direction})")
        for name in EXACT_MATCH:
            if name in base and name in cur and base[name] != cur[name]:
                failures.append(
                    f"{key[0]}: {name} changed {base[name]} -> {cur[name]} "
                    "(deterministic transfer count must not drift)")
    return failures


def self_test():
    """Machine-independent check that the gate logic gates."""
    base = parse_bench_lines(
        'BENCH {"bench":"svc","params":{"contracts":8,"joins_per_sec":1000.0,'
        '"p99_ms":10.0},"tuple_transfers":42,"wall_ns":5000}\n')
    ok = parse_bench_lines(
        'BENCH {"bench":"svc","params":{"contracts":8,"joins_per_sec":950.0,'
        '"p99_ms":10.5},"tuple_transfers":42,"wall_ns":5200}\n')
    slow = parse_bench_lines(
        'BENCH {"bench":"svc","params":{"contracts":8,"joins_per_sec":800.0,'
        '"p99_ms":10.0},"tuple_transfers":42,"wall_ns":5000}\n')
    latency = parse_bench_lines(
        'BENCH {"bench":"svc","params":{"contracts":8,"joins_per_sec":1000.0,'
        '"p99_ms":13.0},"tuple_transfers":42,"wall_ns":5000}\n')
    drift = parse_bench_lines(
        'BENCH {"bench":"svc","params":{"contracts":8,"joins_per_sec":1000.0,'
        '"p99_ms":10.0},"tuple_transfers":43,"wall_ns":5000}\n')
    missing = parse_bench_lines(
        'BENCH {"bench":"other","params":{"contracts":8,"joins_per_sec":1.0,'
        '"p99_ms":1.0},"tuple_transfers":0,"wall_ns":1}\n')
    shape_change = parse_bench_lines(
        'BENCH {"bench":"svc","params":{"contracts":16,"joins_per_sec":1000.0,'
        '"p99_ms":10.0},"tuple_transfers":42,"wall_ns":5000}\n')
    merged = merge_best([parse_bench_lines(
        'BENCH {"bench":"svc","params":{"contracts":8,"joins_per_sec":700.0,'
        '"p99_ms":20.0},"tuple_transfers":42,"wall_ns":9000}\n'), ok])

    cases = [
        ("within tolerance passes", compare(base, ok, 0.10), False),
        ("-20% throughput fails", compare(base, slow, 0.10), True),
        ("+30% p99 fails", compare(base, latency, 0.10), True),
        ("transfer drift fails", compare(base, drift, 0.10), True),
        ("missing bench fails", compare(base, missing, 0.10), True),
        ("shape change is a missing bench", compare(base, shape_change, 0.10),
         True),
        ("best-of-N uses the best run", compare(base, merged, 0.10), False),
        ("loose tolerance admits the regression", compare(base, slow, 0.25),
         False),
    ]
    bad = 0
    for name, failures, expect_fail in cases:
        got_fail = bool(failures)
        verdict = "ok" if got_fail == expect_fail else "WRONG"
        if got_fail != expect_fail:
            bad += 1
        print(f"self-test [{verdict}] {name}: "
              f"{failures if failures else 'pass'}")
    if bad:
        print(f"bench_gate: self-test FAILED ({bad} wrong verdicts)",
              file=sys.stderr)
        return 1
    print("bench_gate: self-test passed")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--baseline", action="append", default=[],
                    help="committed bench_data/BENCH_*.json baseline "
                         "(repeatable)")
    ap.add_argument("--input", action="append", default=[],
                    help="file with a captured run's stdout ('-' = stdin; "
                         "repeatable)")
    ap.add_argument("--command", action="append", default=[],
                    help="bench command to run and capture (repeatable)")
    ap.add_argument("--runs", type=int, default=1,
                    help="run each --command N times, gate on best-of-N")
    ap.add_argument("--tolerance", type=float, default=0.10,
                    help="allowed relative regression (default 0.10)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate logic itself and exit")
    args = ap.parse_args()

    if args.self_test:
        sys.exit(self_test())
    if not args.baseline or (not args.input and not args.command):
        ap.error("need --baseline plus --input or --command "
                 "(or --self-test)")

    baseline_records = []
    for path in args.baseline:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        # Baseline files hold raw BENCH lines; bare-JSON-per-line files
        # (the original BENCH_service.json format) are accepted too.
        records = parse_bench_lines(text)
        if not records:
            records = [json.loads(line) for line in text.splitlines()
                       if line.strip()]
        baseline_records.extend(records)

    runs = []
    for path in args.input:
        text = sys.stdin.read() if path == "-" else open(
            path, encoding="utf-8").read()
        runs.append(parse_bench_lines(text))
    for command in args.command:
        for i in range(max(1, args.runs)):
            print(f"bench_gate: run {i + 1}/{args.runs}: {command}")
            proc = subprocess.run(shlex.split(command), capture_output=True,
                                  text=True)
            if proc.returncode != 0:
                print(proc.stdout, file=sys.stderr)
                print(proc.stderr, file=sys.stderr)
                print(f"bench_gate: command failed "
                      f"(exit {proc.returncode}): {command}", file=sys.stderr)
                sys.exit(2)
            runs.append(parse_bench_lines(proc.stdout))

    current_records = merge_best(runs)
    if not current_records:
        print("bench_gate: no BENCH lines found in the current run",
              file=sys.stderr)
        sys.exit(2)

    failures = compare(baseline_records, current_records, args.tolerance)
    if failures:
        for failure in failures:
            print(f"bench_gate: FAIL {failure}", file=sys.stderr)
        sys.exit(1)
    print("bench_gate: all benches within tolerance")


if __name__ == "__main__":
    main()
