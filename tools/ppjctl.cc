// ppjctl — command-line driver for the ppj library.
//
//   ppjctl join  [--alg=1|1v|2|3|4|5|6|auto] [--size-a=N] [--size-b=N]
//                [--s=N] [--n=N] [--m=N] [--eps=X] [--parallel=P]
//                [--storage-dir=PATH] [--seed=N] [--batch=N]
//       --batch bounds one batched T<->H range transfer in slots:
//       0 = auto-sized from free device memory (default), 1 = force the
//       scalar per-slot path. The metrics dump reports the physical
//       round trips as batch_gets/batch_puts.
//       Generates a synthetic workload, runs the chosen algorithm through
//       the sovereign join service (or the parallel executors), prints the
//       delivered result size and the host-observable metrics.
//
//   ppjctl plan  --size-a=N --size-b=N [--n=N] [--s=N] [--m=N] [--eps=X]
//                [--equality] [--exact]
//       Prints the planner's choice and predicted cost.
//
//   ppjctl costs [--l=N] [--s=N] [--m=N] [--eps=X]
//       Prints the Chapter 5 model costs (Table 5.1 instantiation).
//
//   ppjctl audit [--alg=...] [--size-a=N] [--size-b=N] [--s=N] [--m=N]
//       Runs the Definition 3 trace audit on two shape-equal worlds and
//       reports the verdict.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "analysis/chapter5_costs.h"
#include "analysis/smc_cost.h"
#include "core/algorithm4.h"
#include "core/algorithm5.h"
#include "core/algorithm6.h"
#include "core/join_result.h"
#include "core/planner.h"
#include "core/privacy_auditor.h"
#include "crypto/key.h"
#include "relation/generator.h"
#include "service/service.h"
#include "sim/storage_backend.h"
#include "sim/trace_stats.h"

namespace {

using namespace ppj;  // NOLINT: tool-local convenience

/// Minimal --key=value flag access.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const std::string prefix = "--" + key + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return fallback;
  }
  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) const {
    const std::string v = Get(key, "");
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    const std::string v = Get(key, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }
  bool Has(const std::string& key) const {
    const std::string flag = "--" + key;
    for (const std::string& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// --alg: "auto", or one of core::ParseAlgorithm's spellings. Returns
/// false (after printing the error) on anything else.
bool ParseAlgorithmFlag(const std::string& s,
                        std::optional<core::Algorithm>* out) {
  if (s == "auto") {
    *out = service::kAuto;
    return true;
  }
  Result<core::Algorithm> alg = core::ParseAlgorithm(s);
  if (!alg.ok()) {
    std::fprintf(stderr, "alg: %s\n", alg.status().ToString().c_str());
    return false;
  }
  *out = *alg;
  return true;
}

int RunJoin(const Flags& flags) {
  relation::EquijoinSpec spec;
  spec.size_a = flags.GetU64("size-a", 32);
  spec.size_b = flags.GetU64("size-b", 32);
  spec.n_max = flags.GetU64("n", 4);
  spec.result_size = flags.GetU64("s", 16);
  spec.seed = flags.GetU64("seed", 1);
  auto workload = relation::MakeEquijoinWorkload(spec);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  std::unique_ptr<service::SovereignJoinService> svc_holder;
  const std::string storage_dir = flags.Get("storage-dir", "");
  if (storage_dir.empty()) {
    svc_holder = std::make_unique<service::SovereignJoinService>();
  } else {
    auto backend = sim::MakeFileBackend(storage_dir);
    if (!backend.ok()) {
      std::fprintf(stderr, "storage: %s\n",
                   backend.status().ToString().c_str());
      return 1;
    }
    svc_holder = std::make_unique<service::SovereignJoinService>(
        std::move(*backend));
  }
  service::SovereignJoinService& svc = *svc_holder;
  if (!svc.RegisterParty("alice", 1).ok() ||
      !svc.RegisterParty("bob", 2).ok() ||
      !svc.RegisterParty("carol", 3).ok()) {
    return 1;
  }
  auto contract = svc.CreateContract({"alice", "bob"}, "carol", "equijoin");
  if (!contract.ok()) return 1;
  if (!svc.SubmitRelation(*contract, "alice", *workload->a, true).ok() ||
      !svc.SubmitRelation(*contract, "bob", *workload->b, true).ok()) {
    return 1;
  }

  service::ExecuteOptions options;
  if (!ParseAlgorithmFlag(flags.Get("alg", "auto"), &options.algorithm)) {
    return 64;
  }
  options.n = spec.n_max;
  options.memory_tuples = flags.GetU64("m", 8);
  options.epsilon = flags.GetDouble("eps", 1e-9);
  options.seed = flags.GetU64("seed", 1);
  options.parallelism =
      static_cast<unsigned>(flags.GetU64("parallel", 1));
  options.batch_slots = flags.GetU64("batch", 0);

  Result<service::JoinDelivery> delivery = Status::Internal("unset");
  if (options.parallelism > 1) {
    const relation::PairAsMultiway multiway(workload->predicate.get());
    delivery = svc.ExecuteMultiwayJoin(*contract, multiway, options);
  } else {
    delivery = svc.ExecuteJoin(*contract, *workload->predicate, options);
  }
  if (!delivery.ok()) {
    std::fprintf(stderr, "join: %s\n",
                 delivery.status().ToString().c_str());
    return 1;
  }
  std::printf("algorithm        %s\n",
              options.algorithm ? core::ToString(*options.algorithm).c_str()
                                : "auto (planner)");
  std::printf("workload         |A|=%llu |B|=%llu N=%llu S=%llu M=%llu\n",
              static_cast<unsigned long long>(spec.size_a),
              static_cast<unsigned long long>(spec.size_b),
              static_cast<unsigned long long>(spec.n_max),
              static_cast<unsigned long long>(spec.result_size),
              static_cast<unsigned long long>(options.memory_tuples));
  std::printf("delivered        %zu tuples\n", delivery->tuples.size());
  std::printf("host observed    %s\n",
              delivery->metrics.ToString().c_str());
  std::printf("trace            %s\n",
              delivery->trace.ToString().c_str());
  std::printf("batched I/O      %llu gathers, %llu scatters for %llu "
              "tuple transfers\n",
              static_cast<unsigned long long>(delivery->metrics.batch_gets),
              static_cast<unsigned long long>(delivery->metrics.batch_puts),
              static_cast<unsigned long long>(
                  delivery->metrics.TupleTransfers()));
  if (delivery->blemish) std::printf("NOTE: blemish salvage occurred\n");
  return 0;
}

int RunPlan(const Flags& flags) {
  core::PlannerInput input;
  input.size_a = flags.GetU64("size-a", 1024);
  input.size_b = flags.GetU64("size-b", 1024);
  input.n = flags.GetU64("n", 0);
  input.s = flags.GetU64("s", 0);
  input.m = flags.GetU64("m", 64);
  input.epsilon = flags.GetDouble("eps", 0.0);
  input.equality_predicate = flags.Has("equality");
  input.exact_output_required = flags.Has("exact");
  const core::Plan plan = core::PlanJoin(input);
  std::printf("plan        %s\n", core::ToString(plan.algorithm).c_str());
  std::printf("predicted   %.3g tuple transfers\n",
              plan.predicted_transfers);
  std::printf("rationale   %s\n", plan.rationale.c_str());
  return 0;
}

int RunCosts(const Flags& flags) {
  const std::uint64_t l = flags.GetU64("l", 640000);
  const std::uint64_t s = flags.GetU64("s", 6400);
  const std::uint64_t m = flags.GetU64("m", 64);
  const double eps = flags.GetDouble("eps", 1e-20);
  std::printf("L=%llu S=%llu M=%llu eps=%g\n",
              static_cast<unsigned long long>(l),
              static_cast<unsigned long long>(s),
              static_cast<unsigned long long>(m), eps);
  std::printf("  SMC (Eqn 5.8)   %.3g\n", analysis::CostSmc(l, s));
  std::printf("  Algorithm 4     %.3g\n", analysis::CostAlgorithm4(l, s));
  std::printf("  Algorithm 5     %.3g\n",
              analysis::CostAlgorithm5(l, s, m));
  const analysis::Alg6Cost c6 = analysis::CostAlgorithm6(l, s, m, eps);
  std::printf("  Algorithm 6     %.3g  (n*=%llu, segments=%llu)\n",
              c6.total, static_cast<unsigned long long>(c6.n_star),
              static_cast<unsigned long long>(c6.segments));
  std::printf("  floor L + S     %.3g\n", analysis::MinimalCost(l, s));
  return 0;
}

int RunAudit(const Flags& flags) {
  const std::uint64_t size_a = flags.GetU64("size-a", 8);
  const std::uint64_t size_b = flags.GetU64("size-b", 12);
  const std::uint64_t s = flags.GetU64("s", 10);
  const std::uint64_t m = flags.GetU64("m", 4);
  const std::string alg = flags.Get("alg", "5");

  auto runner = [&](std::uint64_t world) -> Result<core::AuditRun> {
    relation::CellSpec spec;
    spec.size_a = size_a;
    spec.size_b = size_b;
    spec.result_size = s;
    spec.seed = 31 * world + 5;
    auto workload = relation::MakeCellWorkload(spec);
    if (!workload.ok()) return workload.status();
    sim::HostStore host;
    sim::Coprocessor copro(
        &host, {.memory_tuples = m, .seed = 7,
                .max_retained_trace = 1u << 22});
    const crypto::Ocb key_a(crypto::DeriveKey(1, "A"));
    const crypto::Ocb key_b(crypto::DeriveKey(2, "B"));
    const crypto::Ocb key_out(crypto::DeriveKey(3, "C"));
    auto ea = relation::EncryptedRelation::Seal(&host, *workload->a,
                                                &key_a);
    auto eb = relation::EncryptedRelation::Seal(&host, *workload->b,
                                                &key_b);
    if (!ea.ok() || !eb.ok()) return Status::Internal("seal failed");
    const relation::PairAsMultiway multiway(workload->predicate.get());
    core::MultiwayJoin join{{&*ea, &*eb}, &multiway, &key_out};
    Status st = Status::OK();
    if (alg == "4") {
      st = core::RunAlgorithm4(copro, join).status();
    } else if (alg == "6") {
      st = core::RunAlgorithm6(copro, join, {.epsilon = 1e-9}).status();
    } else {
      st = core::RunAlgorithm5(copro, join).status();
    }
    PPJ_RETURN_NOT_OK(st);
    core::AuditRun run;
    run.fingerprint = copro.trace().fingerprint();
    run.retained_events = copro.trace().retained_events();
    if (world == 0) {
      std::printf("%s", sim::SummarizeTrace(copro.trace()).ToString().c_str());
    }
    return run;
  };
  auto audit = core::PrivacyAuditor::CompareWorlds(runner);
  if (!audit.ok()) {
    std::fprintf(stderr, "audit: %s\n", audit.status().ToString().c_str());
    return 1;
  }
  std::printf("verdict: %s\n",
              audit->identical ? "SAFE — traces identical"
                               : ("LEAKS — " + audit->detail).c_str());
  return audit->identical ? 0 : 2;
}

void Usage() {
  std::fprintf(stderr,
               "usage: ppjctl <join|plan|costs|audit> [--key=value ...]\n"
               "see the header of tools/ppjctl.cc for the full flag list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 64;
  }
  const Flags flags(argc, argv);
  const std::string command = argv[1];
  if (command == "join") return RunJoin(flags);
  if (command == "plan") return RunPlan(flags);
  if (command == "costs") return RunCosts(flags);
  if (command == "audit") return RunAudit(flags);
  Usage();
  return 64;
}
