// ppjctl — command-line driver for the ppj library.
//
//   Global flags (every command):
//     --log-level=debug|info|warning|error
//       Minimum severity the library logs to stderr (default: warning).
//
//   ppjctl join  [--alg=1|1v|2|3|4|5|6|auto] [--size-a=N] [--size-b=N]
//                [--s=N] [--n=N] [--m=N] [--eps=X] [--parallel=P]
//                [--shards=P]
//                [--backend=mem|file|mmap] [--storage-dir=PATH]
//                [--seed=N] [--batch=N] [--fault-plan=SPEC]
//                [--deadline-ms=N]
//                [--trace-out=FILE] [--metrics-json=FILE]
//       --shards=P runs the join over P sealed shards (partitioned host
//       store, one coprocessor per shard, results gathered over the
//       trace-visible exchange channel — docs/ARCHITECTURE.md "Sharded
//       execution"). Mutually exclusive with --parallel; Chapter 5
//       algorithms only. The metrics line then reports the union surface
//       (per-shard traces plus channel traffic).
//       --backend picks the host storage: mem (default), file (one file
//       per region, read/written per call) or mmap (regions mapped into
//       the process, range transfers borrow views — the zero-copy fast
//       path). file/mmap store under --storage-dir, or a temp directory
//       when none is given; --storage-dir alone still means file. The
//       join, report and explain commands all take the flag; delivered
//       results and metrics are backend-independent.
//       --batch bounds one batched T<->H range transfer in slots:
//       0 = auto-sized from free device memory (default), 1 = force the
//       scalar per-slot path. The metrics dump reports the physical
//       round trips as batch_gets/batch_puts.
//       --fault-plan wraps the host storage in the deterministic fault
//       injector and arms it for the execution (setup stays fault-free).
//       SPEC is comma-separated key=value pairs, e.g.
//       "seed=7,transient=0.05,torn=0.02,unavail=0.01" — see
//       docs/ROBUSTNESS.md. The run prints a fault summary: what was
//       injected, and the retries/backoff the device spent recovering.
//       The wedged-backend fault is "stall-region=R,stall-ms=M": every op
//       on region R sleeps M ms of wall clock and fails, forever.
//       --deadline-ms arms a per-request time budget (0 = none): an
//       expired run exits nonzero with a deadline_exceeded post-mortem —
//       the only bound on a stalled backend.
//       --trace-out writes the execution's telemetry span tree as Chrome
//       trace-event JSON (open in chrome://tracing or ui.perfetto.dev);
//       --metrics-json writes the flat per-phase metrics report keyed by
//       span path. See docs/OBSERVABILITY.md.
//       Generates a synthetic workload, runs the chosen algorithm through
//       the sovereign join service (or the parallel executors), prints the
//       delivered result size and the host-observable metrics.
//
//   ppjctl report [--alg=1|1v|2|3|4|5|6] [--size-a=N] [--size-b=N] [--s=N]
//                 [--n=N] [--m=N] [--eps=X] [--parallel=P] [--seed=N]
//                 [--batch=N] [--fault-plan=SPEC]
//       Runs the join with telemetry and prints the measured per-phase
//       transfer counts next to the Chapter 4/5 cost-model predictions.
//
//   ppjctl plan  --size-a=N --size-b=N [--n=N] [--s=N] [--m=N] [--eps=X]
//                [--equality] [--exact]
//       Prints the planner's choice and predicted cost.
//
//   ppjctl explain [--alg=1|1v|2|3|4|5|6|auto] [--size-a=N] [--size-b=N]
//                  [--s=N] [--n=N] [--m=N] [--eps=X] [--seed=N] [--batch=N]
//                  [--shards=P]
//       Prints the physical plan: the operator tree the plan executor will
//       run, each operator's predicted tuple transfers and the closed-form
//       formula it was priced by, plus the planner's rationale. Then runs
//       the join with telemetry and prints predicted vs. measured transfers
//       per top-level operator, ending with one machine-readable
//       "BENCH {...}" JSON line.
//
//   ppjctl costs [--l=N] [--s=N] [--m=N] [--eps=X]
//       Prints the Chapter 5 model costs (Table 5.1 instantiation).
//
//   ppjctl stats [--requests=N] [--alg=...] [--size-a=N] [--size-b=N]
//                [--s=N] [--n=N] [--m=N] [--format=prom|json] [--out=FILE]
//       Drives a short request series through the service against a
//       private metrics registry — N distinct joins plus one exact repeat
//       (a reuse-cache hit) — then prints the registry snapshot in
//       Prometheus text exposition format (default) or JSON. This is the
//       same data Service::MetricsSnapshot() serves in-process: per-tenant
//       request/outcome counters, queue-wait / execution / latency
//       histograms, quota-refusal and reuse-hit counters, retry rollups.
//       --out writes the exposition to FILE (non-zero exit if the write
//       fails). With -DPPJ_METRICS=OFF the registry is compiled out and
//       stats says so. See docs/OBSERVABILITY.md ("Service metrics").
//
//   ppjctl audit [--alg=...] [--size-a=N] [--size-b=N] [--s=N] [--m=N]
//       Runs the Definition 3 trace audit on two shape-equal worlds and
//       reports the verdict (regions print their symbolic host names).

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "analysis/chapter4_costs.h"
#include "analysis/chapter5_costs.h"
#include "analysis/smc_cost.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/telemetry.h"
#include "core/algorithm.h"
#include "core/join_result.h"
#include "core/planner.h"
#include "core/privacy_auditor.h"
#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"
#include "crypto/key.h"
#include "relation/generator.h"
#include "service/service.h"
#include "sim/fault_injector.h"
#include "sim/storage_backend.h"
#include "sim/trace_stats.h"

namespace {

using namespace ppj;  // NOLINT: tool-local convenience

/// Minimal --key=value flag access. Flags may appear anywhere on the
/// command line, before or after the command word.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::string_view(argv[i]).rfind("--", 0) == 0) {
        args_.emplace_back(argv[i]);
      }
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    const std::string prefix = "--" + key + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return fallback;
  }
  std::uint64_t GetU64(const std::string& key, std::uint64_t fallback) const {
    const std::string v = Get(key, "");
    return v.empty() ? fallback : std::strtoull(v.c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& key, double fallback) const {
    const std::string v = Get(key, "");
    return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
  }
  bool Has(const std::string& key) const {
    const std::string flag = "--" + key;
    for (const std::string& a : args_) {
      if (a == flag) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> args_;
};

/// --alg: "auto", or one of core::ParseAlgorithm's spellings. Returns
/// false (after logging the error) on anything else.
bool ParseAlgorithmFlag(const std::string& s,
                        std::optional<core::Algorithm>* out) {
  if (s == "auto") {
    *out = service::kAuto;
    return true;
  }
  Result<core::Algorithm> alg = core::ParseAlgorithm(s);
  if (!alg.ok()) {
    PPJ_LOG(kError) << "alg: " << alg.status().ToString();
    return false;
  }
  *out = *alg;
  return true;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.close();
  if (!out) {
    PPJ_LOG(kError) << "cannot write " << path;
    return false;
  }
  return true;
}

/// One synthetic-workload join executed through the service, plus the
/// inputs that shaped it — shared by `join` and `report`.
struct JoinRun {
  relation::EquijoinSpec spec;
  service::ExecuteOptions options;
  service::JoinDelivery delivery;
  /// The scheduler's lifecycle record for the ticket — queue-wait vs
  /// execution attribution. Captured before the function-local service is
  /// destroyed; available in every build (lifecycle records are part of
  /// the request API, not the metrics exposition).
  std::optional<service::RequestTrace> trace;
  /// --fault-plan state: the armed plan and what it actually injected.
  bool faults_armed = false;
  sim::FaultPlan fault_plan;
  sim::FaultStats fault_stats;
};

Result<JoinRun> ExecuteJoinFromFlags(const Flags& flags,
                                     const std::string& default_alg,
                                     const std::string& force_alg = "") {
  JoinRun run;
  relation::EquijoinSpec& spec = run.spec;
  spec.size_a = flags.GetU64("size-a", 32);
  spec.size_b = flags.GetU64("size-b", 32);
  spec.n_max = flags.GetU64("n", 4);
  spec.result_size = flags.GetU64("s", 16);
  spec.seed = flags.GetU64("seed", 1);
  PPJ_ASSIGN_OR_RETURN(relation::TwoTableWorkload workload,
                       relation::MakeEquijoinWorkload(spec));

  // Backend selection: --backend=mem|file|mmap, defaulting to mem, or to
  // file when only --storage-dir is given (the historical spelling). The
  // disk backends get a per-process temp directory when no --storage-dir
  // names one.
  const std::string storage_dir = flags.Get("storage-dir", "");
  const std::string backend_kind =
      flags.Get("backend", storage_dir.empty() ? "mem" : "file");
  std::unique_ptr<sim::StorageBackend> backend;
  if (backend_kind == "mem") {
    if (!storage_dir.empty()) {
      return Status::InvalidArgument(
          "--backend=mem does not take a --storage-dir");
    }
    backend = sim::MakeInMemoryBackend();
  } else if (backend_kind == "file" || backend_kind == "mmap") {
    std::string dir = storage_dir;
    if (dir.empty()) {
      dir = (std::filesystem::temp_directory_path() /
             ("ppjctl-" + backend_kind + "-" + std::to_string(::getpid())))
                .string();
    }
    if (backend_kind == "file") {
      PPJ_ASSIGN_OR_RETURN(backend, sim::MakeFileBackend(dir));
    } else {
      PPJ_ASSIGN_OR_RETURN(backend, sim::MakeMmapBackend(dir));
    }
  } else {
    return Status::InvalidArgument(
        "bad --backend flag: want mem, file or mmap");
  }
  sim::FaultInjectingBackend* faults = nullptr;
  const std::string fault_spec = flags.Get("fault-plan", "");
  if (!fault_spec.empty()) {
    PPJ_ASSIGN_OR_RETURN(run.fault_plan, sim::FaultPlan::Parse(fault_spec));
    auto injector =
        std::make_unique<sim::FaultInjectingBackend>(std::move(backend));
    faults = injector.get();
    backend = std::move(injector);
  }
  auto svc_holder =
      std::make_unique<service::SovereignJoinService>(std::move(backend));
  service::SovereignJoinService& svc = *svc_holder;
  PPJ_RETURN_NOT_OK(svc.RegisterParty("alice", 1));
  PPJ_RETURN_NOT_OK(svc.RegisterParty("bob", 2));
  PPJ_RETURN_NOT_OK(svc.RegisterParty("carol", 3));
  PPJ_ASSIGN_OR_RETURN(
      std::string contract,
      svc.CreateContract({"alice", "bob"}, "carol", "equijoin"));
  PPJ_RETURN_NOT_OK(svc.SubmitRelation(contract, "alice", *workload.a, true));
  PPJ_RETURN_NOT_OK(svc.SubmitRelation(contract, "bob", *workload.b, true));

  service::ExecuteOptions& options = run.options;
  const std::string alg_flag =
      force_alg.empty() ? flags.Get("alg", default_alg) : force_alg;
  if (!ParseAlgorithmFlag(alg_flag, &options.algorithm)) {
    return Status::InvalidArgument("bad --alg flag");
  }
  options.n = spec.n_max;
  options.memory_tuples = flags.GetU64("m", 8);
  options.epsilon = flags.GetDouble("eps", 1e-9);
  options.seed = flags.GetU64("seed", 1);
  options.parallelism =
      static_cast<unsigned>(flags.GetU64("parallel", 1));
  options.shards = static_cast<unsigned>(flags.GetU64("shards", 1));
  options.batch_slots = flags.GetU64("batch", 0);
  options.deadline_ms = flags.GetU64("deadline-ms", 0);

  // Setup above (sealing, submissions) runs fault-free; the plan is armed
  // for exactly the execution under test.
  if (faults != nullptr) {
    faults->Arm(run.fault_plan);
    run.faults_armed = true;
  }
  // The unified async API: submit the request (a pair join — values of
  // --parallel > 1 dispatch to the parallel executors inside the service),
  // then block on its ticket.
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload.predicate);
  Result<service::Ticket> ticket = svc.Submit(contract, request, options);
  Result<service::Response> response =
      ticket.ok() ? svc.Wait(*ticket) : ticket.status();
  if (ticket.ok()) run.trace = svc.lifecycle(*ticket);
  if (faults != nullptr) run.fault_stats = faults->stats();
  if (!response.ok()) {
    // Graceful degradation: surface the structured post-mortem the service
    // kept for this ticket — which phase died, the status (including
    // deadline/cancellation verdicts), the retry history, the tamper
    // verdict. Admission refusals (no ticket) have no post-mortem; their
    // status is the whole story.
    const std::optional<service::ExecutionFailure> failure =
        ticket.ok() ? svc.post_mortem(*ticket) : std::nullopt;
    if (failure.has_value()) {
      const service::ExecutionFailure& f = *failure;
      std::fprintf(stderr, "execution failed in phase '%s': %s\n",
                   f.phase.c_str(), f.status.ToString().c_str());
      if (run.trace.has_value()) {
        std::fprintf(stderr, "  outcome '%s'\n", run.trace->outcome.c_str());
      }
      std::fprintf(
          stderr, "  retries %llu, backoff %llu cycles, device %s\n",
          static_cast<unsigned long long>(f.partial_metrics.host_retries),
          static_cast<unsigned long long>(f.partial_metrics.backoff_cycles),
          f.device_disabled ? "DISABLED (tamper response fired)" : "alive");
      if (faults != nullptr) {
        std::fprintf(stderr, "  injected faults %s\n",
                     run.fault_stats.ToString().c_str());
      }
    }
    return response.status();
  }
  run.delivery = std::move(*response->delivery);
  return run;
}

int RunJoin(const Flags& flags) {
  Result<JoinRun> run = ExecuteJoinFromFlags(flags, "auto");
  if (!run.ok()) {
    PPJ_LOG(kError) << "join: " << run.status().ToString();
    return 1;
  }
  const relation::EquijoinSpec& spec = run->spec;
  const service::ExecuteOptions& options = run->options;
  const service::JoinDelivery& delivery = run->delivery;
  std::printf("algorithm        %s\n",
              options.algorithm ? core::ToString(*options.algorithm).c_str()
                                : "auto (planner)");
  std::printf("workload         |A|=%llu |B|=%llu N=%llu S=%llu M=%llu\n",
              static_cast<unsigned long long>(spec.size_a),
              static_cast<unsigned long long>(spec.size_b),
              static_cast<unsigned long long>(spec.n_max),
              static_cast<unsigned long long>(spec.result_size),
              static_cast<unsigned long long>(options.memory_tuples));
  if (options.shards > 1) {
    std::printf("sharding         %u sealed shards (exchange-gathered)\n",
                options.shards);
  }
  std::printf("delivered        %zu tuples\n", delivery.tuples.size());
  std::printf("host observed    %s\n", delivery.metrics.ToString().c_str());
  std::printf("trace            %s\n", delivery.trace.ToString().c_str());
  std::printf("batched I/O      %llu gathers, %llu scatters for %llu "
              "tuple transfers\n",
              static_cast<unsigned long long>(delivery.metrics.batch_gets),
              static_cast<unsigned long long>(delivery.metrics.batch_puts),
              static_cast<unsigned long long>(
                  delivery.metrics.TupleTransfers()));
  if (run->faults_armed) {
    std::printf("fault plan       %s\n", run->fault_plan.ToString().c_str());
    std::printf("faults injected  %s\n", run->fault_stats.ToString().c_str());
    std::printf("recovery         %llu retries, %llu backoff cycles\n",
                static_cast<unsigned long long>(
                    delivery.metrics.host_retries),
                static_cast<unsigned long long>(
                    delivery.metrics.backoff_cycles));
  }
  if (delivery.blemish) std::printf("NOTE: blemish salvage occurred\n");

  const std::string trace_out = flags.Get("trace-out", "");
  const std::string metrics_json = flags.Get("metrics-json", "");
  if (!trace_out.empty() || !metrics_json.empty()) {
    if (delivery.telemetry == nullptr) {
      PPJ_LOG(kError) << "no telemetry tree (library built with "
                         "PPJ_TELEMETRY=OFF?) — nothing to export";
      return 1;
    }
    if (!trace_out.empty()) {
      if (!WriteFile(trace_out,
                     telemetry::ToChromeTraceJson(*delivery.telemetry))) {
        return 1;
      }
      std::printf("trace written    %s (chrome://tracing, ui.perfetto.dev)\n",
                  trace_out.c_str());
    }
    if (!metrics_json.empty()) {
      if (!WriteFile(metrics_json,
                     telemetry::ToMetricsReportJson(*delivery.telemetry))) {
        return 1;
      }
      std::printf("metrics written  %s\n", metrics_json.c_str());
    }
  }
  return 0;
}

void PrintPhaseRows(const telemetry::SpanNode& node,
                    const std::string& prefix) {
  const std::string path =
      prefix.empty() ? node.name : prefix + "/" + node.name;
  std::printf("  %-42s %8llu %12llu %10.3f\n", path.c_str(),
              static_cast<unsigned long long>(node.count),
              static_cast<unsigned long long>(
                  telemetry::InclusiveMetrics(node).TupleTransfers()),
              static_cast<double>(node.wall_ns) / 1e6);
  for (const auto& child : node.children) PrintPhaseRows(*child, path);
}

int RunReport(const Flags& flags) {
  Result<JoinRun> run = ExecuteJoinFromFlags(flags, "5");
  if (!run.ok()) {
    PPJ_LOG(kError) << "report: " << run.status().ToString();
    return 1;
  }
  const relation::EquijoinSpec& spec = run->spec;
  const service::ExecuteOptions& options = run->options;
  const service::JoinDelivery& delivery = run->delivery;
  if (delivery.telemetry == nullptr) {
    PPJ_LOG(kError) << "report needs the telemetry layer "
                       "(build with -DPPJ_TELEMETRY=ON)";
    return 1;
  }

  std::printf("measured per-phase costs\n");
  std::printf("  %-42s %8s %12s %10s\n", "phase", "count", "transfers",
              "wall-ms");
  for (const auto& child : delivery.telemetry->children) {
    PrintPhaseRows(*child, "");
  }
  std::printf("  %-42s %8s %12llu\n", "total (host observed)", "",
              static_cast<unsigned long long>(
                  delivery.metrics.TupleTransfers()));

  // Scheduler attribution: how much of the request's wall time was spent
  // waiting for a worker vs. actually executing. Same timestamps the
  // registry's ppj_queue_wait_ns / ppj_execution_ns histograms observe.
  if (run->trace.has_value() && run->trace->done()) {
    const service::RequestTrace& t = *run->trace;
    std::printf("\nrequest lifecycle (scheduler attribution)\n");
    std::printf("  queue wait  %10.3f ms\n",
                static_cast<double>(t.queue_wait_ns()) / 1e6);
    std::printf("  execution   %10.3f ms%s\n",
                static_cast<double>(t.execution_ns()) / 1e6,
                t.outcome == "reused" ? "  (reuse-cache hit)" : "");
    std::printf("  total       %10.3f ms  (outcome: %s)\n",
                static_cast<double>(t.latency_ns()) / 1e6,
                t.outcome.c_str());
  }
  if (run->faults_armed) {
    std::printf("\nfault summary\n");
    std::printf("  plan      %s\n", run->fault_plan.ToString().c_str());
    std::printf("  injected  %s\n", run->fault_stats.ToString().c_str());
    std::printf("  recovery  %llu retries, %llu backoff cycles\n",
                static_cast<unsigned long long>(
                    delivery.metrics.host_retries),
                static_cast<unsigned long long>(
                    delivery.metrics.backoff_cycles));
  }

  // Model comparison — the closed-form Chapter 4/5 predictions for the
  // same workload shape.
  if (!options.algorithm) {
    std::printf("\nmodel: planner-selected algorithm; pass an explicit "
                "--alg for a cost-model comparison\n");
    return 0;
  }
  // The prediction comes off the planner's per-operator tree for this
  // workload shape — no per-algorithm switch; the registry and
  // DescribeAlgorithm own the formulas.
  core::PlannerInput model_input;
  model_input.size_a = spec.size_a;
  model_input.size_b = spec.size_b;
  model_input.n = spec.n_max;
  model_input.s = spec.result_size;
  model_input.m = options.memory_tuples;
  model_input.epsilon = options.epsilon;
  model_input.equality_predicate = true;
  const core::PlannedOp model =
      core::DescribeAlgorithm(*options.algorithm, model_input);
  const double predicted = model.predicted_transfers;
  if (*options.algorithm == core::Algorithm::kAlgorithm6) {
    const analysis::Alg6Cost c6 = analysis::CostAlgorithm6(
        spec.size_a * spec.size_b, spec.result_size, options.memory_tuples,
        options.epsilon);
    std::printf("\nmodel n*=%llu segments=%llu\n",
                static_cast<unsigned long long>(c6.n_star),
                static_cast<unsigned long long>(c6.segments));
  }
  std::printf("\nmodel predicted  %.4g tuple transfers (%s)\n", predicted,
              core::ToString(*options.algorithm).c_str());
  std::printf("measured         %llu tuple transfers (ratio %.3f)\n",
              static_cast<unsigned long long>(
                  delivery.metrics.TupleTransfers()),
              predicted > 0
                  ? static_cast<double>(delivery.metrics.TupleTransfers()) /
                        predicted
                  : 0.0);
  return 0;
}

int RunPlan(const Flags& flags) {
  core::PlannerInput input;
  input.size_a = flags.GetU64("size-a", 1024);
  input.size_b = flags.GetU64("size-b", 1024);
  input.n = flags.GetU64("n", 0);
  input.s = flags.GetU64("s", 0);
  input.m = flags.GetU64("m", 64);
  input.epsilon = flags.GetDouble("eps", 0.0);
  input.equality_predicate = flags.Has("equality");
  input.exact_output_required = flags.Has("exact");
  const core::Plan plan = core::PlanJoin(input);
  std::printf("plan        %s\n", core::ToString(plan.algorithm).c_str());
  std::printf("predicted   %.3g tuple transfers\n",
              plan.predicted_transfers);
  std::printf("rationale   %s\n", plan.rationale.c_str());
  return 0;
}

void PrintPlannedOp(const core::PlannedOp& op, int depth) {
  std::printf("  %*s%-*s %12.4g   %s\n", 2 * depth, "",
              40 - 2 * depth, op.name.c_str(), op.predicted_transfers,
              op.formula.c_str());
  for (const core::PlannedOp& child : op.children) {
    PrintPlannedOp(child, depth + 1);
  }
}

int RunExplain(const Flags& flags) {
  // Same workload shape ExecuteJoinFromFlags will generate, so the
  // prediction and the measurement describe the same join.
  core::PlannerInput input;
  input.size_a = flags.GetU64("size-a", 32);
  input.size_b = flags.GetU64("size-b", 32);
  input.n = flags.GetU64("n", 4);
  input.s = flags.GetU64("s", 16);
  input.m = flags.GetU64("m", 8);
  input.epsilon = flags.GetDouble("eps", 1e-9);
  input.equality_predicate = true;
  // --shards switches the predicted tree to the shard-local operators plus
  // the exchange op, priced as the per-shard makespan.
  input.shards = static_cast<unsigned>(flags.GetU64("shards", 1));

  const std::string alg_flag = flags.Get("alg", "auto");
  core::Algorithm algorithm = core::Algorithm::kAlgorithm5;
  std::string rationale;
  if (alg_flag == "auto") {
    const core::Plan plan = core::PlanJoin(input);
    algorithm = plan.algorithm;
    rationale = plan.rationale + " (planner-selected)";
  } else {
    Result<core::Algorithm> parsed = core::ParseAlgorithm(alg_flag);
    if (!parsed.ok()) {
      PPJ_LOG(kError) << "explain: " << parsed.status().ToString();
      return 1;
    }
    algorithm = *parsed;
    rationale = std::string(core::GetAlgorithmInfo(algorithm).summary);
  }
  const core::AlgorithmInfo& info = core::GetAlgorithmInfo(algorithm);
  const core::PlannedOp model = core::DescribeAlgorithm(algorithm, input);

  std::printf("algorithm    %s (chapter %d)\n", info.name,
              info.chapter);
  std::printf("rationale    %s\n", rationale.c_str());
  std::printf("workload     |A|=%llu |B|=%llu N=%llu S=%llu M=%llu "
              "eps=%g\n",
              static_cast<unsigned long long>(input.size_a),
              static_cast<unsigned long long>(input.size_b),
              static_cast<unsigned long long>(input.n),
              static_cast<unsigned long long>(input.s),
              static_cast<unsigned long long>(input.m), input.epsilon);
  std::printf("\npredicted operator tree (tuple transfers)\n");
  std::printf("  %-40s %12s   %s\n", "operator", "predicted", "formula");
  PrintPlannedOp(model, 0);

  // Run the join and line measured per-operator transfers up against the
  // prediction. The operator names in the planned tree are the span names
  // the executor emits, so the join is a name join on the telemetry tree.
  Result<JoinRun> run =
      ExecuteJoinFromFlags(flags, "auto", std::string(info.spelling));
  if (!run.ok()) {
    PPJ_LOG(kError) << "explain: " << run.status().ToString();
    return 1;
  }
  const service::JoinDelivery& delivery = run->delivery;
  if (delivery.telemetry == nullptr) {
    std::printf("\n(no telemetry tree — library built with "
                "-DPPJ_TELEMETRY=OFF; predicted tree only)\n");
    return 0;
  }
  // Sharded runs nest each device's subtree under its shard span; the lead
  // shard (shard-0) runs the full plan including the exchange op.
  const std::string measured_prefix =
      input.shards > 1 ? "shard-0/" + std::string(info.root_span)
                       : std::string(info.root_span);
  const telemetry::SpanNode* measured_root =
      delivery.telemetry->FindPath("execute-join/" + measured_prefix);
  if (measured_root == nullptr) {
    measured_root = delivery.telemetry->FindPath("execute-multiway-join/" +
                                                 measured_prefix);
  }
  std::printf("\npredicted vs measured per operator\n");
  std::printf("  %-40s %12s %12s\n", "operator", "predicted", "measured");
  std::string ops_json;
  for (const core::PlannedOp& op : model.children) {
    const telemetry::SpanNode* node =
        measured_root != nullptr ? measured_root->Find(op.name) : nullptr;
    const double measured =
        node != nullptr
            ? static_cast<double>(
                  telemetry::InclusiveMetrics(*node).TupleTransfers())
            : 0.0;
    std::printf("  %-40s %12.4g %12.4g\n", op.name.c_str(),
                op.predicted_transfers, measured);
    if (!ops_json.empty()) ops_json += ",";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"op\":\"%s\",\"predicted\":%.17g,\"measured\":%.17g}",
                  op.name.c_str(), op.predicted_transfers, measured);
    ops_json += buf;
  }
  std::printf("  %-40s %12.4g %12llu\n", "total (host observed)",
              model.predicted_transfers,
              static_cast<unsigned long long>(
                  delivery.metrics.TupleTransfers()));
  std::printf("\nBENCH {\"bench\":\"explain\",\"params\":{"
              "\"algorithm\":\"%s\",\"size_a\":%llu,\"size_b\":%llu,"
              "\"s\":%llu,\"m\":%llu},\"predicted_total\":%.17g,"
              "\"measured_total\":%llu,\"ops\":[%s]}\n",
              info.name,
              static_cast<unsigned long long>(input.size_a),
              static_cast<unsigned long long>(input.size_b),
              static_cast<unsigned long long>(input.s),
              static_cast<unsigned long long>(input.m),
              model.predicted_transfers,
              static_cast<unsigned long long>(
                  delivery.metrics.TupleTransfers()),
              ops_json.c_str());
  return 0;
}

int RunCosts(const Flags& flags) {
  const std::uint64_t l = flags.GetU64("l", 640000);
  const std::uint64_t s = flags.GetU64("s", 6400);
  const std::uint64_t m = flags.GetU64("m", 64);
  const double eps = flags.GetDouble("eps", 1e-20);
  std::printf("L=%llu S=%llu M=%llu eps=%g\n",
              static_cast<unsigned long long>(l),
              static_cast<unsigned long long>(s),
              static_cast<unsigned long long>(m), eps);
  std::printf("  SMC (Eqn 5.8)   %.3g\n", analysis::CostSmc(l, s));
  std::printf("  Algorithm 4     %.3g\n", analysis::CostAlgorithm4(l, s));
  std::printf("  Algorithm 5     %.3g\n",
              analysis::CostAlgorithm5(l, s, m));
  const analysis::Alg6Cost c6 = analysis::CostAlgorithm6(l, s, m, eps);
  std::printf("  Algorithm 6     %.3g  (n*=%llu, segments=%llu)\n",
              c6.total, static_cast<unsigned long long>(c6.n_star),
              static_cast<unsigned long long>(c6.segments));
  std::printf("  floor L + S     %.3g\n", analysis::MinimalCost(l, s));
  return 0;
}

int RunStats(const Flags& flags) {
  if (!metrics::Registry::CompiledIn()) {
    std::printf(
        "metrics registry compiled out (-DPPJ_METRICS=OFF) — nothing to "
        "expose.\nLifecycle records still work: see `ppjctl report` for "
        "per-request queue-wait attribution.\n");
    return 0;
  }
  // A private registry so the exposition shows exactly this command's
  // request series, not whatever else the process global accumulated.
  metrics::Registry registry;

  relation::EquijoinSpec spec;
  spec.size_a = flags.GetU64("size-a", 16);
  spec.size_b = flags.GetU64("size-b", 16);
  spec.n_max = flags.GetU64("n", 4);
  spec.result_size = flags.GetU64("s", 8);
  spec.seed = flags.GetU64("seed", 1);
  Result<relation::TwoTableWorkload> workload =
      relation::MakeEquijoinWorkload(spec);
  if (!workload.ok()) {
    PPJ_LOG(kError) << "stats: " << workload.status().ToString();
    return 1;
  }

  service::SovereignJoinService svc;
  service::SchedulerOptions sched;
  sched.registry = &registry;
  Status status = svc.ConfigureScheduler(sched);
  if (status.ok()) status = svc.RegisterParty("alice", 1);
  if (status.ok()) status = svc.RegisterParty("bob", 2);
  if (status.ok()) status = svc.RegisterParty("carol", 3);
  Result<std::string> contract =
      status.ok() ? svc.CreateContract({"alice", "bob"}, "carol", "equijoin")
                  : status;
  if (contract.ok()) {
    status = svc.SubmitRelation(*contract, "alice", *workload->a, true);
  } else {
    status = contract.status();
  }
  if (status.ok()) {
    status = svc.SubmitRelation(*contract, "bob", *workload->b, true);
  }
  if (!status.ok()) {
    PPJ_LOG(kError) << "stats: " << status.ToString();
    return 1;
  }

  service::ExecuteOptions options;
  if (!ParseAlgorithmFlag(flags.Get("alg", "5"), &options.algorithm)) {
    return 1;
  }
  options.n = spec.n_max;
  options.memory_tuples = flags.GetU64("m", 8);
  options.epsilon = flags.GetDouble("eps", 1e-9);
  options.batch_slots = flags.GetU64("batch", 0);

  // N distinct requests (the seed is part of the reuse-cache key) plus one
  // exact repeat of the last — a reuse hit, so the exposition shows the
  // ppj_reuse_hits_total counter and a request whose lifecycle never
  // reached `executing`.
  const service::JoinRequest request =
      service::JoinRequest::PairJoin(*workload->predicate);
  const std::uint64_t requests = flags.GetU64("requests", 4);
  for (std::uint64_t i = 0; i <= requests; ++i) {
    options.seed = i < requests ? 100 + i : 100 + requests - 1;
    Result<service::Ticket> ticket = svc.Submit(*contract, request, options);
    Result<service::Response> response =
        ticket.ok() ? svc.Wait(*ticket) : ticket.status();
    if (!response.ok()) {
      PPJ_LOG(kError) << "stats: request " << i << ": "
                      << response.status().ToString();
      return 1;
    }
    if (ticket.ok()) svc.Release(*ticket);
  }

  const metrics::Snapshot snapshot = svc.MetricsSnapshot();
  const std::string format = flags.Get("format", "prom");
  if (format != "prom" && format != "json") {
    PPJ_LOG(kError) << "stats: unknown --format '" << format
                    << "' (want prom|json)";
    return 64;
  }
  const std::string text =
      format == "json" ? snapshot.ToJson() : snapshot.ToPrometheusText();
  const std::string out = flags.Get("out", "");
  if (out.empty()) {
    std::fputs(text.c_str(), stdout);
  } else {
    if (!WriteFile(out, text)) return 1;
    std::printf("stats written    %s (%s)\n", out.c_str(), format.c_str());
  }
  return 0;
}

int RunAudit(const Flags& flags) {
  const std::uint64_t size_a = flags.GetU64("size-a", 8);
  const std::uint64_t size_b = flags.GetU64("size-b", 12);
  const std::uint64_t s = flags.GetU64("s", 10);
  const std::uint64_t m = flags.GetU64("m", 4);
  const std::string alg = flags.Get("alg", "5");

  auto runner = [&](std::uint64_t world) -> Result<core::AuditRun> {
    relation::CellSpec spec;
    spec.size_a = size_a;
    spec.size_b = size_b;
    spec.result_size = s;
    spec.seed = 31 * world + 5;
    auto workload = relation::MakeCellWorkload(spec);
    if (!workload.ok()) return workload.status();
    sim::HostStore host;
    sim::Coprocessor copro(
        &host, {.memory_tuples = m, .seed = 7,
                .max_retained_trace = 1u << 22});
    const crypto::Ocb key_a(crypto::DeriveKey(1, "A"));
    const crypto::Ocb key_b(crypto::DeriveKey(2, "B"));
    const crypto::Ocb key_out(crypto::DeriveKey(3, "C"));
    auto ea = relation::EncryptedRelation::Seal(&host, *workload->a,
                                                &key_a);
    auto eb = relation::EncryptedRelation::Seal(&host, *workload->b,
                                                &key_b);
    if (!ea.ok() || !eb.ok()) return Status::Internal("seal failed");
    const relation::PairAsMultiway multiway(workload->predicate.get());
    core::MultiwayJoin join{{&*ea, &*eb}, &multiway, &key_out};
    // Drive the physical plan directly (instead of the RunAlgorithmN
    // wrappers) so the executor's per-operator checkpoints reach the
    // auditor: a divergence then names the guilty operator.
    core::Algorithm algorithm = core::Algorithm::kAlgorithm5;
    if (alg == "4") algorithm = core::Algorithm::kAlgorithm4;
    if (alg == "6") algorithm = core::Algorithm::kAlgorithm6;
    plan::JoinPlanOptions popts;
    popts.epsilon = 1e-9;
    PPJ_ASSIGN_OR_RETURN(
        plan::PhysicalPlan physical,
        plan::BuildJoinPlan(algorithm, nullptr, &join, popts));
    plan::PlanContext ctx(nullptr, &join);
    PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
    core::AuditRun run;
    run.fingerprint = copro.trace().fingerprint();
    run.retained_events = copro.trace().retained_events();
    run.checkpoints = ctx.checkpoints;
    if (world == 0) {
      // Snapshot after the run so algorithm-created output/staging
      // regions get their symbolic names in the summary.
      const sim::RegionNameRegistry names =
          sim::RegionNameRegistry::FromHost(host);
      std::printf("%s",
                  sim::SummarizeTrace(copro.trace()).ToString(&names).c_str());
    }
    return run;
  };
  auto audit = core::PrivacyAuditor::CompareWorlds(runner);
  if (!audit.ok()) {
    PPJ_LOG(kError) << "audit: " << audit.status().ToString();
    return 1;
  }
  std::printf("verdict: %s\n",
              audit->identical ? "SAFE — traces identical"
                               : ("LEAKS — " + audit->detail).c_str());
  return audit->identical ? 0 : 2;
}

void Usage() {
  std::fprintf(stderr,
               "usage: ppjctl <join|report|plan|explain|costs|stats|audit> "
               "[--key=value ...]\n"
               "see the header of tools/ppjctl.cc for the full flag list\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 64;
  }
  const Flags flags(argc, argv);
  const std::string level = flags.Get("log-level", "");
  if (!level.empty()) {
    if (level == "debug") {
      Logger::SetMinLevel(LogLevel::kDebug);
    } else if (level == "info") {
      Logger::SetMinLevel(LogLevel::kInfo);
    } else if (level == "warning") {
      Logger::SetMinLevel(LogLevel::kWarning);
    } else if (level == "error") {
      Logger::SetMinLevel(LogLevel::kError);
    } else {
      std::fprintf(stderr,
                   "unknown --log-level '%s' "
                   "(want debug|info|warning|error)\n",
                   level.c_str());
      return 64;
    }
  }
  std::string command;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--", 0) != 0) {
      command = argv[i];
      break;
    }
  }
  if (command == "join") return RunJoin(flags);
  if (command == "report") return RunReport(flags);
  if (command == "plan") return RunPlan(flags);
  if (command == "explain") return RunExplain(flags);
  if (command == "costs") return RunCosts(flags);
  if (command == "stats") return RunStats(flags);
  if (command == "audit") return RunAudit(flags);
  Usage();
  return 64;
}
