file(REMOVE_RECURSE
  "CMakeFiles/aggregate_stats.dir/aggregate_stats.cpp.o"
  "CMakeFiles/aggregate_stats.dir/aggregate_stats.cpp.o.d"
  "aggregate_stats"
  "aggregate_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
