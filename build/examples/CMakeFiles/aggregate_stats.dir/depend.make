# Empty dependencies file for aggregate_stats.
# This may be replaced when dependencies are built.
