file(REMOVE_RECURSE
  "CMakeFiles/epidemiology.dir/epidemiology.cpp.o"
  "CMakeFiles/epidemiology.dir/epidemiology.cpp.o.d"
  "epidemiology"
  "epidemiology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemiology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
