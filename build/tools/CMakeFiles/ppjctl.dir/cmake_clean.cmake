file(REMOVE_RECURSE
  "CMakeFiles/ppjctl.dir/ppjctl.cc.o"
  "CMakeFiles/ppjctl.dir/ppjctl.cc.o.d"
  "ppjctl"
  "ppjctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppjctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
