# Empty compiler generated dependencies file for ppjctl.
# This may be replaced when dependencies are built.
