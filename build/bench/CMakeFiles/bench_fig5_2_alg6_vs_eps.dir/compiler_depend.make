# Empty compiler generated dependencies file for bench_fig5_2_alg6_vs_eps.
# This may be replaced when dependencies are built.
