file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_2_alg6_vs_eps.dir/bench_fig5_2_alg6_vs_eps.cc.o"
  "CMakeFiles/bench_fig5_2_alg6_vs_eps.dir/bench_fig5_2_alg6_vs_eps.cc.o.d"
  "bench_fig5_2_alg6_vs_eps"
  "bench_fig5_2_alg6_vs_eps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_2_alg6_vs_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
