# Empty dependencies file for bench_measured_vs_model.
# This may be replaced when dependencies are built.
