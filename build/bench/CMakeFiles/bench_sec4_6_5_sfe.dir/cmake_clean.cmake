file(REMOVE_RECURSE
  "CMakeFiles/bench_sec4_6_5_sfe.dir/bench_sec4_6_5_sfe.cc.o"
  "CMakeFiles/bench_sec4_6_5_sfe.dir/bench_sec4_6_5_sfe.cc.o.d"
  "bench_sec4_6_5_sfe"
  "bench_sec4_6_5_sfe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec4_6_5_sfe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
