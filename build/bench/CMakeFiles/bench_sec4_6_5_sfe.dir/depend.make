# Empty dependencies file for bench_sec4_6_5_sfe.
# This may be replaced when dependencies are built.
