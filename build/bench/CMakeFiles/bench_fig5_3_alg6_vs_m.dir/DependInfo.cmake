
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_3_alg6_vs_m.cc" "bench/CMakeFiles/bench_fig5_3_alg6_vs_m.dir/bench_fig5_3_alg6_vs_m.cc.o" "gcc" "bench/CMakeFiles/bench_fig5_3_alg6_vs_m.dir/bench_fig5_3_alg6_vs_m.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppj_service.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_oblivious.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
