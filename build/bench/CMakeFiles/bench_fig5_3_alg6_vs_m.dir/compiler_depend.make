# Empty compiler generated dependencies file for bench_fig5_3_alg6_vs_m.
# This may be replaced when dependencies are built.
