# Empty compiler generated dependencies file for bench_table5_3_costs.
# This may be replaced when dependencies are built.
