# Empty dependencies file for bench_micro_oblivious.
# This may be replaced when dependencies are built.
