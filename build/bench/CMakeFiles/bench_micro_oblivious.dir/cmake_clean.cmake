file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_oblivious.dir/bench_micro_oblivious.cc.o"
  "CMakeFiles/bench_micro_oblivious.dir/bench_micro_oblivious.cc.o.d"
  "bench_micro_oblivious"
  "bench_micro_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
