file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_joins.dir/bench_micro_joins.cc.o"
  "CMakeFiles/bench_micro_joins.dir/bench_micro_joins.cc.o.d"
  "bench_micro_joins"
  "bench_micro_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
