# Empty dependencies file for bench_micro_joins.
# This may be replaced when dependencies are built.
