file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_1_alg5_vs_m.dir/bench_fig5_1_alg5_vs_m.cc.o"
  "CMakeFiles/bench_fig5_1_alg5_vs_m.dir/bench_fig5_1_alg5_vs_m.cc.o.d"
  "bench_fig5_1_alg5_vs_m"
  "bench_fig5_1_alg5_vs_m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_1_alg5_vs_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
