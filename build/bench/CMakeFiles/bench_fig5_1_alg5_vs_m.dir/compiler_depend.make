# Empty compiler generated dependencies file for bench_fig5_1_alg5_vs_m.
# This may be replaced when dependencies are built.
