# Empty dependencies file for bench_fig5_4_alg6_settings.
# This may be replaced when dependencies are built.
