file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_4_alg6_settings.dir/bench_fig5_4_alg6_settings.cc.o"
  "CMakeFiles/bench_fig5_4_alg6_settings.dir/bench_fig5_4_alg6_settings.cc.o.d"
  "bench_fig5_4_alg6_settings"
  "bench_fig5_4_alg6_settings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_4_alg6_settings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
