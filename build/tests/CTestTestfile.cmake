# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_crypto[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_relation[1]_include.cmake")
include("/root/repo/build/tests/test_oblivious[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms_ch4[1]_include.cmake")
include("/root/repo/build/tests/test_algorithms_ch5[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_service[1]_include.cmake")
include("/root/repo/build/tests/test_tamper[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_substrate2[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_paper_claims[1]_include.cmake")
include("/root/repo/build/tests/test_scale[1]_include.cmake")
