file(REMOVE_RECURSE
  "CMakeFiles/test_substrate2.dir/test_substrate2.cc.o"
  "CMakeFiles/test_substrate2.dir/test_substrate2.cc.o.d"
  "test_substrate2"
  "test_substrate2.pdb"
  "test_substrate2[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_substrate2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
