# Empty compiler generated dependencies file for test_substrate2.
# This may be replaced when dependencies are built.
