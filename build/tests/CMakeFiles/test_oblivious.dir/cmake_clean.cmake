file(REMOVE_RECURSE
  "CMakeFiles/test_oblivious.dir/test_oblivious.cc.o"
  "CMakeFiles/test_oblivious.dir/test_oblivious.cc.o.d"
  "test_oblivious"
  "test_oblivious.pdb"
  "test_oblivious[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
