# Empty dependencies file for test_oblivious.
# This may be replaced when dependencies are built.
