# Empty dependencies file for test_algorithms_ch4.
# This may be replaced when dependencies are built.
