file(REMOVE_RECURSE
  "CMakeFiles/test_algorithms_ch5.dir/test_algorithms_ch5.cc.o"
  "CMakeFiles/test_algorithms_ch5.dir/test_algorithms_ch5.cc.o.d"
  "test_algorithms_ch5"
  "test_algorithms_ch5.pdb"
  "test_algorithms_ch5[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_algorithms_ch5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
