# Empty compiler generated dependencies file for test_algorithms_ch5.
# This may be replaced when dependencies are built.
