file(REMOVE_RECURSE
  "libppj_analysis.a"
)
