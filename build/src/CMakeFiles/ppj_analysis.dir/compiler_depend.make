# Empty compiler generated dependencies file for ppj_analysis.
# This may be replaced when dependencies are built.
