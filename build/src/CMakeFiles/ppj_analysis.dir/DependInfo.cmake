
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/chapter4_costs.cc" "src/CMakeFiles/ppj_analysis.dir/analysis/chapter4_costs.cc.o" "gcc" "src/CMakeFiles/ppj_analysis.dir/analysis/chapter4_costs.cc.o.d"
  "/root/repo/src/analysis/chapter5_costs.cc" "src/CMakeFiles/ppj_analysis.dir/analysis/chapter5_costs.cc.o" "gcc" "src/CMakeFiles/ppj_analysis.dir/analysis/chapter5_costs.cc.o.d"
  "/root/repo/src/analysis/hypergeometric.cc" "src/CMakeFiles/ppj_analysis.dir/analysis/hypergeometric.cc.o" "gcc" "src/CMakeFiles/ppj_analysis.dir/analysis/hypergeometric.cc.o.d"
  "/root/repo/src/analysis/memory_partition.cc" "src/CMakeFiles/ppj_analysis.dir/analysis/memory_partition.cc.o" "gcc" "src/CMakeFiles/ppj_analysis.dir/analysis/memory_partition.cc.o.d"
  "/root/repo/src/analysis/optimizer.cc" "src/CMakeFiles/ppj_analysis.dir/analysis/optimizer.cc.o" "gcc" "src/CMakeFiles/ppj_analysis.dir/analysis/optimizer.cc.o.d"
  "/root/repo/src/analysis/regions.cc" "src/CMakeFiles/ppj_analysis.dir/analysis/regions.cc.o" "gcc" "src/CMakeFiles/ppj_analysis.dir/analysis/regions.cc.o.d"
  "/root/repo/src/analysis/smc_cost.cc" "src/CMakeFiles/ppj_analysis.dir/analysis/smc_cost.cc.o" "gcc" "src/CMakeFiles/ppj_analysis.dir/analysis/smc_cost.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
