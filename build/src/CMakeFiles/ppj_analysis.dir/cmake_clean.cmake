file(REMOVE_RECURSE
  "CMakeFiles/ppj_analysis.dir/analysis/chapter4_costs.cc.o"
  "CMakeFiles/ppj_analysis.dir/analysis/chapter4_costs.cc.o.d"
  "CMakeFiles/ppj_analysis.dir/analysis/chapter5_costs.cc.o"
  "CMakeFiles/ppj_analysis.dir/analysis/chapter5_costs.cc.o.d"
  "CMakeFiles/ppj_analysis.dir/analysis/hypergeometric.cc.o"
  "CMakeFiles/ppj_analysis.dir/analysis/hypergeometric.cc.o.d"
  "CMakeFiles/ppj_analysis.dir/analysis/memory_partition.cc.o"
  "CMakeFiles/ppj_analysis.dir/analysis/memory_partition.cc.o.d"
  "CMakeFiles/ppj_analysis.dir/analysis/optimizer.cc.o"
  "CMakeFiles/ppj_analysis.dir/analysis/optimizer.cc.o.d"
  "CMakeFiles/ppj_analysis.dir/analysis/regions.cc.o"
  "CMakeFiles/ppj_analysis.dir/analysis/regions.cc.o.d"
  "CMakeFiles/ppj_analysis.dir/analysis/smc_cost.cc.o"
  "CMakeFiles/ppj_analysis.dir/analysis/smc_cost.cc.o.d"
  "libppj_analysis.a"
  "libppj_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
