
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/attestation.cc" "src/CMakeFiles/ppj_sim.dir/sim/attestation.cc.o" "gcc" "src/CMakeFiles/ppj_sim.dir/sim/attestation.cc.o.d"
  "/root/repo/src/sim/coprocessor.cc" "src/CMakeFiles/ppj_sim.dir/sim/coprocessor.cc.o" "gcc" "src/CMakeFiles/ppj_sim.dir/sim/coprocessor.cc.o.d"
  "/root/repo/src/sim/host_store.cc" "src/CMakeFiles/ppj_sim.dir/sim/host_store.cc.o" "gcc" "src/CMakeFiles/ppj_sim.dir/sim/host_store.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/CMakeFiles/ppj_sim.dir/sim/metrics.cc.o" "gcc" "src/CMakeFiles/ppj_sim.dir/sim/metrics.cc.o.d"
  "/root/repo/src/sim/storage_backend.cc" "src/CMakeFiles/ppj_sim.dir/sim/storage_backend.cc.o" "gcc" "src/CMakeFiles/ppj_sim.dir/sim/storage_backend.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/ppj_sim.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/ppj_sim.dir/sim/trace.cc.o.d"
  "/root/repo/src/sim/trace_stats.cc" "src/CMakeFiles/ppj_sim.dir/sim/trace_stats.cc.o" "gcc" "src/CMakeFiles/ppj_sim.dir/sim/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppj_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
