file(REMOVE_RECURSE
  "CMakeFiles/ppj_sim.dir/sim/attestation.cc.o"
  "CMakeFiles/ppj_sim.dir/sim/attestation.cc.o.d"
  "CMakeFiles/ppj_sim.dir/sim/coprocessor.cc.o"
  "CMakeFiles/ppj_sim.dir/sim/coprocessor.cc.o.d"
  "CMakeFiles/ppj_sim.dir/sim/host_store.cc.o"
  "CMakeFiles/ppj_sim.dir/sim/host_store.cc.o.d"
  "CMakeFiles/ppj_sim.dir/sim/metrics.cc.o"
  "CMakeFiles/ppj_sim.dir/sim/metrics.cc.o.d"
  "CMakeFiles/ppj_sim.dir/sim/storage_backend.cc.o"
  "CMakeFiles/ppj_sim.dir/sim/storage_backend.cc.o.d"
  "CMakeFiles/ppj_sim.dir/sim/trace.cc.o"
  "CMakeFiles/ppj_sim.dir/sim/trace.cc.o.d"
  "CMakeFiles/ppj_sim.dir/sim/trace_stats.cc.o"
  "CMakeFiles/ppj_sim.dir/sim/trace_stats.cc.o.d"
  "libppj_sim.a"
  "libppj_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
