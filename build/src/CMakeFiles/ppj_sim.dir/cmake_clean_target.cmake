file(REMOVE_RECURSE
  "libppj_sim.a"
)
