# Empty dependencies file for ppj_sim.
# This may be replaced when dependencies are built.
