file(REMOVE_RECURSE
  "CMakeFiles/ppj_crypto.dir/crypto/aes128.cc.o"
  "CMakeFiles/ppj_crypto.dir/crypto/aes128.cc.o.d"
  "CMakeFiles/ppj_crypto.dir/crypto/key.cc.o"
  "CMakeFiles/ppj_crypto.dir/crypto/key.cc.o.d"
  "CMakeFiles/ppj_crypto.dir/crypto/mlfsr.cc.o"
  "CMakeFiles/ppj_crypto.dir/crypto/mlfsr.cc.o.d"
  "CMakeFiles/ppj_crypto.dir/crypto/ocb.cc.o"
  "CMakeFiles/ppj_crypto.dir/crypto/ocb.cc.o.d"
  "CMakeFiles/ppj_crypto.dir/crypto/ocb_stream.cc.o"
  "CMakeFiles/ppj_crypto.dir/crypto/ocb_stream.cc.o.d"
  "libppj_crypto.a"
  "libppj_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
