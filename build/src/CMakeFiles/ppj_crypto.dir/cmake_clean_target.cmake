file(REMOVE_RECURSE
  "libppj_crypto.a"
)
