# Empty compiler generated dependencies file for ppj_crypto.
# This may be replaced when dependencies are built.
