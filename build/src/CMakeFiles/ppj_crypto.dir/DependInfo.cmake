
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cc" "src/CMakeFiles/ppj_crypto.dir/crypto/aes128.cc.o" "gcc" "src/CMakeFiles/ppj_crypto.dir/crypto/aes128.cc.o.d"
  "/root/repo/src/crypto/key.cc" "src/CMakeFiles/ppj_crypto.dir/crypto/key.cc.o" "gcc" "src/CMakeFiles/ppj_crypto.dir/crypto/key.cc.o.d"
  "/root/repo/src/crypto/mlfsr.cc" "src/CMakeFiles/ppj_crypto.dir/crypto/mlfsr.cc.o" "gcc" "src/CMakeFiles/ppj_crypto.dir/crypto/mlfsr.cc.o.d"
  "/root/repo/src/crypto/ocb.cc" "src/CMakeFiles/ppj_crypto.dir/crypto/ocb.cc.o" "gcc" "src/CMakeFiles/ppj_crypto.dir/crypto/ocb.cc.o.d"
  "/root/repo/src/crypto/ocb_stream.cc" "src/CMakeFiles/ppj_crypto.dir/crypto/ocb_stream.cc.o" "gcc" "src/CMakeFiles/ppj_crypto.dir/crypto/ocb_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
