
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oblivious/bitonic_sort.cc" "src/CMakeFiles/ppj_oblivious.dir/oblivious/bitonic_sort.cc.o" "gcc" "src/CMakeFiles/ppj_oblivious.dir/oblivious/bitonic_sort.cc.o.d"
  "/root/repo/src/oblivious/shuffle.cc" "src/CMakeFiles/ppj_oblivious.dir/oblivious/shuffle.cc.o" "gcc" "src/CMakeFiles/ppj_oblivious.dir/oblivious/shuffle.cc.o.d"
  "/root/repo/src/oblivious/windowed_filter.cc" "src/CMakeFiles/ppj_oblivious.dir/oblivious/windowed_filter.cc.o" "gcc" "src/CMakeFiles/ppj_oblivious.dir/oblivious/windowed_filter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppj_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
