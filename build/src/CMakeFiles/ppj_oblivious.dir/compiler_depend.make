# Empty compiler generated dependencies file for ppj_oblivious.
# This may be replaced when dependencies are built.
