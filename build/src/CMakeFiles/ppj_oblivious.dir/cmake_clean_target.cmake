file(REMOVE_RECURSE
  "libppj_oblivious.a"
)
