# Empty dependencies file for ppj_oblivious.
# This may be replaced when dependencies are built.
