file(REMOVE_RECURSE
  "CMakeFiles/ppj_oblivious.dir/oblivious/bitonic_sort.cc.o"
  "CMakeFiles/ppj_oblivious.dir/oblivious/bitonic_sort.cc.o.d"
  "CMakeFiles/ppj_oblivious.dir/oblivious/shuffle.cc.o"
  "CMakeFiles/ppj_oblivious.dir/oblivious/shuffle.cc.o.d"
  "CMakeFiles/ppj_oblivious.dir/oblivious/windowed_filter.cc.o"
  "CMakeFiles/ppj_oblivious.dir/oblivious/windowed_filter.cc.o.d"
  "libppj_oblivious.a"
  "libppj_oblivious.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_oblivious.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
