file(REMOVE_RECURSE
  "CMakeFiles/ppj_common.dir/common/hash.cc.o"
  "CMakeFiles/ppj_common.dir/common/hash.cc.o.d"
  "CMakeFiles/ppj_common.dir/common/logging.cc.o"
  "CMakeFiles/ppj_common.dir/common/logging.cc.o.d"
  "CMakeFiles/ppj_common.dir/common/math.cc.o"
  "CMakeFiles/ppj_common.dir/common/math.cc.o.d"
  "CMakeFiles/ppj_common.dir/common/random.cc.o"
  "CMakeFiles/ppj_common.dir/common/random.cc.o.d"
  "CMakeFiles/ppj_common.dir/common/status.cc.o"
  "CMakeFiles/ppj_common.dir/common/status.cc.o.d"
  "libppj_common.a"
  "libppj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
