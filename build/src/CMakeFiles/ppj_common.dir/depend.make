# Empty dependencies file for ppj_common.
# This may be replaced when dependencies are built.
