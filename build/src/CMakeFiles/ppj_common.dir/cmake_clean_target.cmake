file(REMOVE_RECURSE
  "libppj_common.a"
)
