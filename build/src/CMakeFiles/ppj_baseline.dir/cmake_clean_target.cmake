file(REMOVE_RECURSE
  "libppj_baseline.a"
)
