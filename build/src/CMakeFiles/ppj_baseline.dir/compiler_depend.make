# Empty compiler generated dependencies file for ppj_baseline.
# This may be replaced when dependencies are built.
