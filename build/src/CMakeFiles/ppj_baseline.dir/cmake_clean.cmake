file(REMOVE_RECURSE
  "CMakeFiles/ppj_baseline.dir/baseline/plain_join.cc.o"
  "CMakeFiles/ppj_baseline.dir/baseline/plain_join.cc.o.d"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_commutative.cc.o"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_commutative.cc.o.d"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_hash_join.cc.o"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_hash_join.cc.o.d"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_nested_loop.cc.o"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_nested_loop.cc.o.d"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_sort_merge.cc.o"
  "CMakeFiles/ppj_baseline.dir/baseline/unsafe_sort_merge.cc.o.d"
  "libppj_baseline.a"
  "libppj_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
