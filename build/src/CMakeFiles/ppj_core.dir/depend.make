# Empty dependencies file for ppj_core.
# This may be replaced when dependencies are built.
