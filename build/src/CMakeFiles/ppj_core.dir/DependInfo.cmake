
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/ppj_core.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/algorithm1.cc" "src/CMakeFiles/ppj_core.dir/core/algorithm1.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/algorithm1.cc.o.d"
  "/root/repo/src/core/algorithm2.cc" "src/CMakeFiles/ppj_core.dir/core/algorithm2.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/algorithm2.cc.o.d"
  "/root/repo/src/core/algorithm3.cc" "src/CMakeFiles/ppj_core.dir/core/algorithm3.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/algorithm3.cc.o.d"
  "/root/repo/src/core/algorithm4.cc" "src/CMakeFiles/ppj_core.dir/core/algorithm4.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/algorithm4.cc.o.d"
  "/root/repo/src/core/algorithm5.cc" "src/CMakeFiles/ppj_core.dir/core/algorithm5.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/algorithm5.cc.o.d"
  "/root/repo/src/core/algorithm6.cc" "src/CMakeFiles/ppj_core.dir/core/algorithm6.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/algorithm6.cc.o.d"
  "/root/repo/src/core/cartesian.cc" "src/CMakeFiles/ppj_core.dir/core/cartesian.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/cartesian.cc.o.d"
  "/root/repo/src/core/join_result.cc" "src/CMakeFiles/ppj_core.dir/core/join_result.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/join_result.cc.o.d"
  "/root/repo/src/core/join_spec.cc" "src/CMakeFiles/ppj_core.dir/core/join_spec.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/join_spec.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/CMakeFiles/ppj_core.dir/core/parallel.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/parallel.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/CMakeFiles/ppj_core.dir/core/planner.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/planner.cc.o.d"
  "/root/repo/src/core/privacy_auditor.cc" "src/CMakeFiles/ppj_core.dir/core/privacy_auditor.cc.o" "gcc" "src/CMakeFiles/ppj_core.dir/core/privacy_auditor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppj_oblivious.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_relation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
