file(REMOVE_RECURSE
  "libppj_core.a"
)
