file(REMOVE_RECURSE
  "CMakeFiles/ppj_core.dir/core/aggregate.cc.o"
  "CMakeFiles/ppj_core.dir/core/aggregate.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/algorithm1.cc.o"
  "CMakeFiles/ppj_core.dir/core/algorithm1.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/algorithm2.cc.o"
  "CMakeFiles/ppj_core.dir/core/algorithm2.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/algorithm3.cc.o"
  "CMakeFiles/ppj_core.dir/core/algorithm3.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/algorithm4.cc.o"
  "CMakeFiles/ppj_core.dir/core/algorithm4.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/algorithm5.cc.o"
  "CMakeFiles/ppj_core.dir/core/algorithm5.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/algorithm6.cc.o"
  "CMakeFiles/ppj_core.dir/core/algorithm6.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/cartesian.cc.o"
  "CMakeFiles/ppj_core.dir/core/cartesian.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/join_result.cc.o"
  "CMakeFiles/ppj_core.dir/core/join_result.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/join_spec.cc.o"
  "CMakeFiles/ppj_core.dir/core/join_spec.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/parallel.cc.o"
  "CMakeFiles/ppj_core.dir/core/parallel.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/planner.cc.o"
  "CMakeFiles/ppj_core.dir/core/planner.cc.o.d"
  "CMakeFiles/ppj_core.dir/core/privacy_auditor.cc.o"
  "CMakeFiles/ppj_core.dir/core/privacy_auditor.cc.o.d"
  "libppj_core.a"
  "libppj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
