file(REMOVE_RECURSE
  "libppj_service.a"
)
