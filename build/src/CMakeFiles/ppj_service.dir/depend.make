# Empty dependencies file for ppj_service.
# This may be replaced when dependencies are built.
