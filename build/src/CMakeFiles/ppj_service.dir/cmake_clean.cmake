file(REMOVE_RECURSE
  "CMakeFiles/ppj_service.dir/service/contract.cc.o"
  "CMakeFiles/ppj_service.dir/service/contract.cc.o.d"
  "CMakeFiles/ppj_service.dir/service/party.cc.o"
  "CMakeFiles/ppj_service.dir/service/party.cc.o.d"
  "CMakeFiles/ppj_service.dir/service/service.cc.o"
  "CMakeFiles/ppj_service.dir/service/service.cc.o.d"
  "libppj_service.a"
  "libppj_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
