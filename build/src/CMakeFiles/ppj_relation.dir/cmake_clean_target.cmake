file(REMOVE_RECURSE
  "libppj_relation.a"
)
