# Empty dependencies file for ppj_relation.
# This may be replaced when dependencies are built.
