file(REMOVE_RECURSE
  "CMakeFiles/ppj_relation.dir/relation/encrypted_relation.cc.o"
  "CMakeFiles/ppj_relation.dir/relation/encrypted_relation.cc.o.d"
  "CMakeFiles/ppj_relation.dir/relation/generator.cc.o"
  "CMakeFiles/ppj_relation.dir/relation/generator.cc.o.d"
  "CMakeFiles/ppj_relation.dir/relation/predicate.cc.o"
  "CMakeFiles/ppj_relation.dir/relation/predicate.cc.o.d"
  "CMakeFiles/ppj_relation.dir/relation/relation.cc.o"
  "CMakeFiles/ppj_relation.dir/relation/relation.cc.o.d"
  "CMakeFiles/ppj_relation.dir/relation/schema.cc.o"
  "CMakeFiles/ppj_relation.dir/relation/schema.cc.o.d"
  "CMakeFiles/ppj_relation.dir/relation/tuple.cc.o"
  "CMakeFiles/ppj_relation.dir/relation/tuple.cc.o.d"
  "libppj_relation.a"
  "libppj_relation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppj_relation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
