
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relation/encrypted_relation.cc" "src/CMakeFiles/ppj_relation.dir/relation/encrypted_relation.cc.o" "gcc" "src/CMakeFiles/ppj_relation.dir/relation/encrypted_relation.cc.o.d"
  "/root/repo/src/relation/generator.cc" "src/CMakeFiles/ppj_relation.dir/relation/generator.cc.o" "gcc" "src/CMakeFiles/ppj_relation.dir/relation/generator.cc.o.d"
  "/root/repo/src/relation/predicate.cc" "src/CMakeFiles/ppj_relation.dir/relation/predicate.cc.o" "gcc" "src/CMakeFiles/ppj_relation.dir/relation/predicate.cc.o.d"
  "/root/repo/src/relation/relation.cc" "src/CMakeFiles/ppj_relation.dir/relation/relation.cc.o" "gcc" "src/CMakeFiles/ppj_relation.dir/relation/relation.cc.o.d"
  "/root/repo/src/relation/schema.cc" "src/CMakeFiles/ppj_relation.dir/relation/schema.cc.o" "gcc" "src/CMakeFiles/ppj_relation.dir/relation/schema.cc.o.d"
  "/root/repo/src/relation/tuple.cc" "src/CMakeFiles/ppj_relation.dir/relation/tuple.cc.o" "gcc" "src/CMakeFiles/ppj_relation.dir/relation/tuple.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ppj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ppj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
