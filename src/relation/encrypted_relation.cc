#include "relation/encrypted_relation.h"

#include <cstring>

namespace ppj::relation {

namespace wire {

std::vector<std::uint8_t> MakeReal(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out(1 + payload.size());
  out[0] = kReal;
  std::memcpy(out.data() + 1, payload.data(), payload.size());
  return out;
}

std::vector<std::uint8_t> MakeDecoy(std::size_t payload_size) {
  // All-zero payload: a fixed pattern (Section 4.3) that additionally
  // deserializes cleanly under every schema, so decoys can share the code
  // path of real tuples end to end.
  std::vector<std::uint8_t> out(1 + payload_size, kDecoyFill);
  out[0] = kDecoy;
  return out;
}

bool IsReal(const std::vector<std::uint8_t>& plaintext) {
  return !plaintext.empty() && plaintext[0] == kReal;
}

std::vector<std::uint8_t> Payload(
    const std::vector<std::uint8_t>& plaintext) {
  return std::vector<std::uint8_t>(plaintext.begin() + 1, plaintext.end());
}

}  // namespace wire

Result<EncryptedRelation> EncryptedRelation::Seal(sim::HostStore* host,
                                                  const Relation& rel,
                                                  const crypto::Ocb* key,
                                                  std::uint64_t padded_slots) {
  if (host == nullptr || key == nullptr) {
    return Status::InvalidArgument("Seal requires a host and a key");
  }
  if (padded_slots == 0) padded_slots = rel.size();
  if (padded_slots < rel.size()) {
    return Status::InvalidArgument("padded_slots smaller than relation");
  }

  const std::size_t plain_size = wire::PlainSize(rel.schema().tuple_size());
  const std::size_t slot_size = sim::Coprocessor::SealedSize(plain_size);

  EncryptedRelation out;
  out.region_ = host->CreateRegion(rel.name(), slot_size, padded_slots);
  out.size_ = rel.size();
  out.padded_size_ = padded_slots;
  out.schema_ = rel.schema_ptr();
  out.key_ = key;

  // Provider-side sealing (host writes by the data owner, not traced).
  // The nonce binds (region, index) with the provider's counter value 0;
  // coprocessor re-seals use counters >= 1, so nonces never repeat per key.
  auto seal_slot = [&](std::uint64_t index,
                       const std::vector<std::uint8_t>& plain) {
    const crypto::Block nonce =
        sim::Coprocessor::PositionNonce(out.region_, index, 0);
    std::vector<std::uint8_t> slot(crypto::Ocb::kBlockSize + plain.size() +
                                   crypto::Ocb::kTagSize);
    std::memcpy(slot.data(), nonce.data(), crypto::Ocb::kBlockSize);
    key->EncryptInto(nonce, plain.data(), plain.size(),
                     slot.data() + crypto::Ocb::kBlockSize);
    return slot;
  };

  for (std::uint64_t i = 0; i < padded_slots; ++i) {
    std::vector<std::uint8_t> plain =
        i < rel.size() ? wire::MakeReal(rel.tuple(i).Serialize())
                       : wire::MakeDecoy(rel.schema().tuple_size());
    PPJ_RETURN_NOT_OK(host->WriteSlot(out.region_, i, seal_slot(i, plain)));
  }
  return out;
}

Result<EncryptedRelation::FetchedTuple> EncryptedRelation::Fetch(
    sim::Coprocessor& copro, std::uint64_t index) const {
  PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> plain,
                       copro.GetOpen(region_, index, *key_));
  const bool real = wire::IsReal(plain);
  PPJ_ASSIGN_OR_RETURN(Tuple tuple,
                       Tuple::Deserialize(schema_, wire::Payload(plain)));
  return FetchedTuple{std::move(tuple), real};
}

Status EncryptedRelation::FetchInto(sim::Coprocessor& copro,
                                    std::uint64_t index, Tuple* tuple,
                                    bool* real) const {
  PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> plain,
                       copro.GetOpen(region_, index, *key_));
  *real = wire::IsReal(plain);
  return Tuple::DeserializeInto(
      schema_, wire::PayloadView(std::span<const std::uint8_t>(plain)),
      tuple);
}

Result<EncryptedRelation::FetchRun> EncryptedRelation::FetchRange(
    sim::Coprocessor& copro, std::uint64_t first, std::uint64_t count) const {
  PPJ_ASSIGN_OR_RETURN(sim::ReadRun run,
                       copro.GetOpenRange(region_, first, count, key_));
  PPJ_RETURN_NOT_OK(run.PrefetchOpen());
  return FetchRun(std::move(run), schema_);
}

Result<EncryptedRelation::FetchedTuple> EncryptedRelation::FetchRun::Next() {
  PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> plain, run_.NextOpen());
  const bool real = wire::IsReal(plain);
  PPJ_ASSIGN_OR_RETURN(Tuple tuple,
                       Tuple::Deserialize(schema_, wire::PayloadView(plain)));
  return FetchedTuple{std::move(tuple), real};
}

Status EncryptedRelation::FetchRun::NextInto(Tuple* tuple, bool* real) {
  PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> plain, run_.NextOpen());
  *real = wire::IsReal(plain);
  return Tuple::DeserializeInto(schema_, wire::PayloadView(plain), tuple);
}

}  // namespace ppj::relation
