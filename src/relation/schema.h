#ifndef PPJ_RELATION_SCHEMA_H_
#define PPJ_RELATION_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace ppj::relation {

/// Column types supported by the fixed-width tuple codec. The paper assumes
/// fixed-size tuples throughout (Section 4.1), which is what makes sealed
/// slots uniform and decoys indistinguishable; variable-width data must be
/// declared with a fixed maximum width.
enum class ColumnType : std::uint8_t {
  kInt64 = 0,   ///< 8 bytes, two's complement, little endian.
  kDouble = 1,  ///< 8 bytes, IEEE-754.
  kString = 2,  ///< Fixed `width` bytes, NUL padded.
  kSet = 3,     ///< Up to `width`/4 uint32 elements; set-valued attribute
                ///< for similarity predicates (Jaccard), count-prefixed.
};

/// One column of a schema.
struct Column {
  std::string name;
  ColumnType type = ColumnType::kInt64;
  /// Byte width of the encoded value. Fixed 8 for kInt64/kDouble; caller
  /// chosen for kString; for kSet it is 4 + 4 * max_elements.
  std::uint32_t width = 8;
};

/// Fixed-width relational schema. Equal schemas produce equal tuple byte
/// sizes, which Definition 1/3 require of the comparison inputs.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Convenience factories.
  static Column Int64(const std::string& name);
  static Column Double(const std::string& name);
  static Column String(const std::string& name, std::uint32_t width);
  static Column Set(const std::string& name, std::uint32_t max_elements);

  const std::vector<Column>& columns() const { return columns_; }
  std::size_t num_columns() const { return columns_.size(); }

  /// Byte size of one encoded tuple.
  std::size_t tuple_size() const { return tuple_size_; }

  /// Byte offset of column `i` within an encoded tuple.
  std::size_t offset(std::size_t i) const { return offsets_[i]; }

  /// Index of the column named `name`.
  Result<std::size_t> ColumnIndex(const std::string& name) const;

  /// Structural equality (names, types, widths).
  bool operator==(const Schema& other) const;

  /// Concatenation, used to build the schema of a join result.
  static Schema Concat(const Schema& left, const Schema& right);

  std::string ToString() const;

 private:
  std::vector<Column> columns_;
  std::vector<std::size_t> offsets_;
  std::size_t tuple_size_ = 0;
};

}  // namespace ppj::relation

#endif  // PPJ_RELATION_SCHEMA_H_
