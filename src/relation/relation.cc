#include "relation/relation.h"

#include <algorithm>
#include <sstream>

namespace ppj::relation {

Status Relation::Append(std::vector<Value> values) {
  PPJ_ASSIGN_OR_RETURN(Tuple t, Tuple::Make(&schema_, std::move(values)));
  tuples_.push_back(std::move(t));
  return Status::OK();
}

std::string Relation::ToString(std::size_t max_rows) const {
  std::ostringstream os;
  os << name_ << " " << schema_.ToString() << " [" << tuples_.size()
     << " tuples]";
  for (std::size_t i = 0; i < tuples_.size() && i < max_rows; ++i) {
    os << "\n  " << tuples_[i].ToString();
  }
  if (tuples_.size() > max_rows) os << "\n  ...";
  return os.str();
}

bool SameTupleMultiset(const std::vector<Tuple>& a,
                       const std::vector<Tuple>& b) {
  if (a.size() != b.size()) return false;
  std::vector<std::string> ka, kb;
  ka.reserve(a.size());
  kb.reserve(b.size());
  for (const Tuple& t : a) ka.push_back(t.ToString());
  for (const Tuple& t : b) kb.push_back(t.ToString());
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  return ka == kb;
}

}  // namespace ppj::relation
