#include "relation/generator.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/random.h"

namespace ppj::relation {

namespace {

Schema MakeKeySchema() {
  return Schema({Schema::Int64("id"), Schema::Int64("key"),
                 Schema::String("tag", 12)});
}

std::string Tag(const char* prefix, std::uint64_t i, std::uint64_t seed) {
  // Short content marker; differs across seeds so audit pairs differ in
  // every byte that is not structurally forced.
  return std::string(prefix) + std::to_string((i * 31 + seed * 7) % 100000);
}

}  // namespace

Result<TwoTableWorkload> MakeEquijoinWorkload(const EquijoinSpec& spec) {
  if (spec.n_max == 0 || spec.n_max > spec.size_b) {
    return Status::InvalidArgument("need 1 <= N <= |B|");
  }
  if (spec.result_size < spec.n_max || spec.result_size > spec.size_b) {
    return Status::InvalidArgument("need N <= S <= |B|");
  }
  // Match groups: group g is one A tuple joined by c_g B tuples, c_0 = N,
  // remaining S - N spread over groups of size <= N.
  std::vector<std::uint64_t> group_sizes;
  group_sizes.push_back(spec.n_max);
  std::uint64_t remaining = spec.result_size - spec.n_max;
  while (remaining > 0) {
    const std::uint64_t c = std::min(remaining, spec.n_max);
    group_sizes.push_back(c);
    remaining -= c;
  }
  if (group_sizes.size() > spec.size_a) {
    return Status::InvalidArgument(
        "not enough A tuples for the requested S at this N");
  }

  Rng rng(spec.seed);
  const std::int64_t key_base =
      static_cast<std::int64_t>(1000 + (spec.seed % 17) * 10000);

  auto a = std::make_unique<Relation>("A", MakeKeySchema());
  auto b = std::make_unique<Relation>("B", MakeKeySchema());

  // Matching part.
  std::uint64_t b_rows = 0;
  for (std::size_t g = 0; g < group_sizes.size(); ++g) {
    const std::int64_t key = key_base + static_cast<std::int64_t>(g);
    PPJ_RETURN_NOT_OK(a->Append({static_cast<std::int64_t>(rng.NextU64() >> 1),
                                 key, Tag("a", g, spec.seed)}));
    for (std::uint64_t j = 0; j < group_sizes[g]; ++j) {
      PPJ_RETURN_NOT_OK(
          b->Append({static_cast<std::int64_t>(rng.NextU64() >> 1), key,
                     Tag("b", b_rows, spec.seed)}));
      ++b_rows;
    }
  }
  // Non-matching filler with disjoint key ranges.
  for (std::uint64_t i = a->size(); i < spec.size_a; ++i) {
    PPJ_RETURN_NOT_OK(a->Append({static_cast<std::int64_t>(rng.NextU64() >> 1),
                                 key_base + 1000000 +
                                     static_cast<std::int64_t>(i),
                                 Tag("a", i, spec.seed)}));
  }
  for (std::uint64_t i = b->size(); i < spec.size_b; ++i) {
    PPJ_RETURN_NOT_OK(b->Append({static_cast<std::int64_t>(rng.NextU64() >> 1),
                                 key_base + 2000000 +
                                     static_cast<std::int64_t>(i),
                                 Tag("b", i, spec.seed)}));
  }

  TwoTableWorkload out;
  out.a = std::move(a);
  out.b = std::move(b);
  out.predicate = std::make_unique<EqualityPredicate>(1, 1);  // key == key
  out.max_matches_per_a = spec.n_max;
  out.result_size = spec.result_size;
  return out;
}

Result<TwoTableWorkload> MakeCellWorkload(const CellSpec& spec) {
  const std::uint64_t l = spec.size_a * spec.size_b;
  if (spec.result_size > l) {
    return Status::InvalidArgument("S exceeds |A| * |B|");
  }
  if (spec.skew_rows > 0 &&
      spec.result_size > spec.skew_rows * spec.size_b) {
    return Status::InvalidArgument("S exceeds skewed row capacity");
  }

  Rng rng(spec.seed * 0x9e37 + 11);
  auto a = std::make_unique<Relation>("A", MakeKeySchema());
  auto b = std::make_unique<Relation>("B", MakeKeySchema());
  for (std::uint64_t i = 0; i < spec.size_a; ++i) {
    PPJ_RETURN_NOT_OK(a->Append({static_cast<std::int64_t>(i),
                                 static_cast<std::int64_t>(rng.NextU64() >> 1),
                                 Tag("a", i, spec.seed)}));
  }
  for (std::uint64_t i = 0; i < spec.size_b; ++i) {
    PPJ_RETURN_NOT_OK(b->Append({static_cast<std::int64_t>(i),
                                 static_cast<std::int64_t>(rng.NextU64() >> 1),
                                 Tag("b", i, spec.seed)}));
  }

  // Choose exactly S distinct cells of the |A| x |B| grid.
  std::vector<std::uint64_t> cells;
  if (spec.skew_rows == 0) {
    std::unordered_set<std::uint64_t> chosen;
    while (chosen.size() < spec.result_size) {
      chosen.insert(rng.NextBelow(l));
    }
    cells.assign(chosen.begin(), chosen.end());
  } else {
    // All matches land on the first skew_rows rows of A — the pathological
    // distribution Section 5.1.1 worries about.
    std::unordered_set<std::uint64_t> chosen;
    const std::uint64_t capacity = spec.skew_rows * spec.size_b;
    while (chosen.size() < spec.result_size) {
      chosen.insert(rng.NextBelow(capacity));
    }
    cells.assign(chosen.begin(), chosen.end());
  }

  auto match_set = std::make_shared<std::unordered_set<std::uint64_t>>();
  std::vector<std::uint64_t> per_row(spec.size_a, 0);
  for (std::uint64_t cell : cells) {
    match_set->insert(cell);
    per_row[cell / spec.size_b]++;
  }
  const std::uint64_t n_max =
      *std::max_element(per_row.begin(), per_row.end());

  const std::uint64_t size_b = spec.size_b;
  auto fn = [match_set, size_b](const Tuple& ta, const Tuple& tb) {
    const auto cell = static_cast<std::uint64_t>(ta.GetInt64(0)) * size_b +
                      static_cast<std::uint64_t>(tb.GetInt64(0));
    return match_set->contains(cell);
  };

  TwoTableWorkload out;
  out.a = std::move(a);
  out.b = std::move(b);
  out.predicate =
      std::make_unique<LambdaPredicate>("synthetic-cell-match", fn);
  out.max_matches_per_a = n_max;
  out.result_size = spec.result_size;
  return out;
}

Result<TwoTableWorkload> MakeZipfEquijoinWorkload(const ZipfSpec& spec) {
  if (spec.num_keys == 0) {
    return Status::InvalidArgument("need at least one key");
  }
  Rng rng(spec.seed * 977 + 13);

  // Zipf CDF over the key universe.
  std::vector<double> cdf(spec.num_keys);
  double total = 0;
  for (std::uint64_t k = 0; k < spec.num_keys; ++k) {
    total += 1.0 /
             std::pow(static_cast<double>(k + 1), spec.exponent);
    cdf[k] = total;
  }
  auto sample_key = [&]() -> std::uint64_t {
    const double u = rng.NextDouble() * total;
    for (std::uint64_t k = 0; k < spec.num_keys; ++k) {
      if (u <= cdf[k]) return k;
    }
    return spec.num_keys - 1;
  };

  auto a = std::make_unique<Relation>("A", MakeKeySchema());
  auto b = std::make_unique<Relation>("B", MakeKeySchema());
  const std::int64_t base = 7000;
  for (std::uint64_t i = 0; i < spec.size_a; ++i) {
    // A holds distinct keys: the first num_keys rows cover the universe,
    // the rest never match.
    const std::int64_t key =
        i < spec.num_keys ? base + static_cast<std::int64_t>(i)
                          : base + 1000000 + static_cast<std::int64_t>(i);
    PPJ_RETURN_NOT_OK(a->Append({static_cast<std::int64_t>(i), key,
                                 Tag("a", i, spec.seed)}));
  }
  for (std::uint64_t i = 0; i < spec.size_b; ++i) {
    PPJ_RETURN_NOT_OK(
        b->Append({static_cast<std::int64_t>(i),
                   base + static_cast<std::int64_t>(sample_key()),
                   Tag("b", i, spec.seed)}));
  }

  TwoTableWorkload out;
  out.predicate = std::make_unique<EqualityPredicate>(1, 1);
  const GroundTruth truth =
      ComputeGroundTruth(*a, *b, *out.predicate, nullptr);
  out.a = std::move(a);
  out.b = std::move(b);
  out.max_matches_per_a = truth.max_matches_per_a;
  out.result_size = truth.result_size;
  return out;
}

Result<TwoTableWorkload> MakeJaccardWorkload(const JaccardSpec& spec) {
  if (spec.set_size == 0 || spec.set_size > spec.universe) {
    return Status::InvalidArgument("set_size must be in [1, universe]");
  }
  Rng rng(spec.seed * 131 + 7);
  Schema schema({Schema::Int64("id"), Schema::Set("features", spec.set_size)});
  auto a = std::make_unique<Relation>("A", Schema(schema));
  auto b = std::make_unique<Relation>("B", Schema(schema));

  auto random_set = [&]() {
    std::unordered_set<std::uint32_t> s;
    while (s.size() < spec.set_size) {
      s.insert(static_cast<std::uint32_t>(rng.NextBelow(spec.universe)));
    }
    return std::vector<std::uint32_t>(s.begin(), s.end());
  };

  std::vector<std::vector<std::uint32_t>> a_sets;
  for (std::uint64_t i = 0; i < spec.size_a; ++i) a_sets.push_back(random_set());

  for (std::uint64_t i = 0; i < spec.size_a; ++i) {
    PPJ_RETURN_NOT_OK(
        a->Append({static_cast<std::int64_t>(i), a_sets[i]}));
  }
  for (std::uint64_t i = 0; i < spec.size_b; ++i) {
    std::vector<std::uint32_t> set;
    if (i < spec.planted_pairs && i < spec.size_a) {
      // Near-duplicate of A[i]: drop one element, add one — Jaccard stays
      // high, guaranteeing planted matches.
      set = a_sets[i];
      if (!set.empty()) set.pop_back();
      set.push_back(static_cast<std::uint32_t>(rng.NextBelow(spec.universe)));
    } else {
      set = random_set();
    }
    PPJ_RETURN_NOT_OK(b->Append({static_cast<std::int64_t>(i), set}));
  }

  auto predicate = std::make_unique<JaccardPredicate>(1, 1, spec.threshold);
  const GroundTruth truth =
      ComputeGroundTruth(*a, *b, *predicate, nullptr);

  TwoTableWorkload out;
  out.a = std::move(a);
  out.b = std::move(b);
  out.predicate = std::move(predicate);
  out.max_matches_per_a = truth.max_matches_per_a;
  out.result_size = truth.result_size;
  return out;
}

GroundTruth ComputeGroundTruth(const Relation& a, const Relation& b,
                               const PairPredicate& pred,
                               const Schema* result_schema) {
  GroundTruth truth;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t row_matches = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (pred.Match(a.tuple(i), b.tuple(j))) {
        ++row_matches;
        ++truth.result_size;
        if (result_schema != nullptr) {
          truth.expected.push_back(
              Tuple::Concat(result_schema, a.tuple(i), b.tuple(j)));
        }
      }
    }
    truth.max_matches_per_a = std::max(truth.max_matches_per_a, row_matches);
  }
  return truth;
}

}  // namespace ppj::relation
