#include "relation/predicate.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace ppj::relation {

bool EqualityPredicate::Match(const Tuple& a, const Tuple& b) const {
  return a.value(col_a_) == b.value(col_b_);
}

std::string EqualityPredicate::name() const {
  std::ostringstream os;
  os << "A[" << col_a_ << "] == B[" << col_b_ << "]";
  return os.str();
}

bool LessThanPredicate::Match(const Tuple& a, const Tuple& b) const {
  return a.GetInt64(col_a_) < b.GetInt64(col_b_);
}

std::string LessThanPredicate::name() const {
  std::ostringstream os;
  os << "A[" << col_a_ << "] < B[" << col_b_ << "]";
  return os.str();
}

bool BandPredicate::Match(const Tuple& a, const Tuple& b) const {
  const std::int64_t d = a.GetInt64(col_a_) - b.GetInt64(col_b_);
  return d <= width_ && d >= -width_;
}

std::string BandPredicate::name() const {
  std::ostringstream os;
  os << "|A[" << col_a_ << "] - B[" << col_b_ << "]| <= " << width_;
  return os.str();
}

bool L1NormPredicate::Match(const Tuple& a, const Tuple& b) const {
  std::int64_t sum = 0;
  for (std::size_t i = 0; i < cols_a_.size(); ++i) {
    const std::int64_t d = a.GetInt64(cols_a_[i]) - b.GetInt64(cols_b_[i]);
    sum += d >= 0 ? d : -d;
  }
  return sum <= threshold_;
}

std::string L1NormPredicate::name() const {
  std::ostringstream os;
  os << "L1(A, B; " << cols_a_.size() << " attrs) <= " << threshold_;
  return os.str();
}

double JaccardPredicate::Coefficient(const std::vector<std::uint32_t>& x,
                                     const std::vector<std::uint32_t>& y) {
  if (x.empty() && y.empty()) return 0.0;
  std::size_t inter = 0, i = 0, j = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] == y[j]) {
      ++inter;
      ++i;
      ++j;
    } else if (x[i] < y[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = x.size() + y.size() - inter;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

bool JaccardPredicate::Match(const Tuple& a, const Tuple& b) const {
  return Coefficient(a.GetSet(col_a_), b.GetSet(col_b_)) > f_;
}

std::string JaccardPredicate::name() const {
  std::ostringstream os;
  os << "Jaccard(A[" << col_a_ << "], B[" << col_b_ << "]) > " << f_;
  return os.str();
}

bool ChainPredicate::Satisfy(std::span<const Tuple> ituple) const {
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (!links_[i]->Match(ituple[i], ituple[i + 1])) return false;
  }
  return true;
}

std::string ChainPredicate::name() const {
  std::ostringstream os;
  os << "chain(";
  for (std::size_t i = 0; i < links_.size(); ++i) {
    if (i > 0) os << " AND ";
    os << links_[i]->name();
  }
  os << ")";
  return os.str();
}

}  // namespace ppj::relation
