#ifndef PPJ_RELATION_PREDICATE_H_
#define PPJ_RELATION_PREDICATE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "relation/tuple.h"

namespace ppj::relation {

/// A two-way join predicate over tuples of an outer relation A and an inner
/// relation B. The paper's central point is that predicates are *arbitrary*
/// — the general algorithms (1, 2, 4, 5, 6) never look inside Match, they
/// only guarantee that evaluating it is observationally silent (fixed time,
/// fixed output size).
class PairPredicate {
 public:
  virtual ~PairPredicate() = default;

  /// True when (a, b) belongs to the join result.
  virtual bool Match(const Tuple& a, const Tuple& b) const = 0;

  /// Human-readable description for contracts and logs.
  virtual std::string name() const = 0;

  /// True only for predicates Algorithm 3 (sort-based equijoin) can use:
  /// equality on a single attribute pair.
  virtual bool is_equality() const { return false; }
};

/// Equality on one attribute of each side: a.col_a == b.col_b. The only
/// predicate the specialized Algorithm 3 supports.
class EqualityPredicate : public PairPredicate {
 public:
  EqualityPredicate(std::size_t col_a, std::size_t col_b)
      : col_a_(col_a), col_b_(col_b) {}

  bool Match(const Tuple& a, const Tuple& b) const override;
  std::string name() const override;
  bool is_equality() const override { return true; }

  std::size_t col_a() const { return col_a_; }
  std::size_t col_b() const { return col_b_; }

 private:
  std::size_t col_a_;
  std::size_t col_b_;
};

/// a.col_a < b.col_b on int64 attributes — the "arbitrary predicates, e.g.
/// <" the introduction calls out as unsupported by protocol approaches.
class LessThanPredicate : public PairPredicate {
 public:
  LessThanPredicate(std::size_t col_a, std::size_t col_b)
      : col_a_(col_a), col_b_(col_b) {}

  bool Match(const Tuple& a, const Tuple& b) const override;
  std::string name() const override;

 private:
  std::size_t col_a_;
  std::size_t col_b_;
};

/// |a.col_a - b.col_b| <= width on int64 attributes (band join).
class BandPredicate : public PairPredicate {
 public:
  BandPredicate(std::size_t col_a, std::size_t col_b, std::int64_t width)
      : col_a_(col_a), col_b_(col_b), width_(width) {}

  bool Match(const Tuple& a, const Tuple& b) const override;
  std::string name() const override;

 private:
  std::size_t col_a_;
  std::size_t col_b_;
  std::int64_t width_;
};

/// Sum over paired int64 columns of |a_i - b_i| <= threshold — the L1-norm
/// fuzzy match of Section 4.6.5's circuit-size discussion and the
/// do-not-fly profile matching scenario.
class L1NormPredicate : public PairPredicate {
 public:
  L1NormPredicate(std::vector<std::size_t> cols_a,
                  std::vector<std::size_t> cols_b, std::int64_t threshold)
      : cols_a_(std::move(cols_a)),
        cols_b_(std::move(cols_b)),
        threshold_(threshold) {}

  bool Match(const Tuple& a, const Tuple& b) const override;
  std::string name() const override;

 private:
  std::vector<std::size_t> cols_a_;
  std::vector<std::size_t> cols_b_;
  std::int64_t threshold_;
};

/// Jaccard coefficient of two set-valued attributes > f (Chapter 1's
/// similarity-predicate example: |intersection| / |union| > f).
class JaccardPredicate : public PairPredicate {
 public:
  JaccardPredicate(std::size_t col_a, std::size_t col_b, double f)
      : col_a_(col_a), col_b_(col_b), f_(f) {}

  bool Match(const Tuple& a, const Tuple& b) const override;
  std::string name() const override;

  /// Jaccard coefficient of two sorted unique sets.
  static double Coefficient(const std::vector<std::uint32_t>& x,
                            const std::vector<std::uint32_t>& y);

 private:
  std::size_t col_a_;
  std::size_t col_b_;
  double f_;
};

/// Arbitrary user-supplied match function.
class LambdaPredicate : public PairPredicate {
 public:
  LambdaPredicate(std::string name,
                  std::function<bool(const Tuple&, const Tuple&)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  bool Match(const Tuple& a, const Tuple& b) const override {
    return fn_(a, b);
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<bool(const Tuple&, const Tuple&)> fn_;
};

/// Join predicate over J tables (Chapter 5): satisfy(iTuple) where an
/// iTuple is one element of D = X_1 x ... x X_J.
class MultiwayPredicate {
 public:
  virtual ~MultiwayPredicate() = default;

  virtual bool Satisfy(std::span<const Tuple> ituple) const = 0;
  virtual std::string name() const = 0;
};

/// Adapts a two-way predicate to the J = 2 multiway interface.
class PairAsMultiway : public MultiwayPredicate {
 public:
  explicit PairAsMultiway(const PairPredicate* pair) : pair_(pair) {}

  bool Satisfy(std::span<const Tuple> ituple) const override {
    return pair_->Match(ituple[0], ituple[1]);
  }
  std::string name() const override { return pair_->name(); }

 private:
  const PairPredicate* pair_;
};

/// Conjunction of pairwise predicates along a chain X_1 ⋈ X_2 ⋈ ... ⋈ X_J:
/// predicate i relates tables i and i+1.
class ChainPredicate : public MultiwayPredicate {
 public:
  explicit ChainPredicate(std::vector<const PairPredicate*> links)
      : links_(std::move(links)) {}

  bool Satisfy(std::span<const Tuple> ituple) const override;
  std::string name() const override;

 private:
  std::vector<const PairPredicate*> links_;
};

/// Arbitrary multiway match function.
class LambdaMultiway : public MultiwayPredicate {
 public:
  LambdaMultiway(std::string name,
                 std::function<bool(std::span<const Tuple>)> fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}

  bool Satisfy(std::span<const Tuple> ituple) const override {
    return fn_(ituple);
  }
  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::function<bool(std::span<const Tuple>)> fn_;
};

}  // namespace ppj::relation

#endif  // PPJ_RELATION_PREDICATE_H_
