#ifndef PPJ_RELATION_ENCRYPTED_RELATION_H_
#define PPJ_RELATION_ENCRYPTED_RELATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crypto/ocb.h"
#include "relation/relation.h"
#include "sim/coprocessor.h"
#include "sim/host_store.h"

namespace ppj::relation {

/// Wire format of every plaintext slot that flows through the coprocessor:
/// one flag byte followed by a fixed-width payload.
///
///   flag = 1  — a real tuple (input tuple or join result).
///   flag = 0  — a decoy / padding slot: fixed pattern of the same length,
///               indistinguishable after semantically secure encryption
///               (Section 4.3 "Decoys").
///
/// Using the same framing for inputs, scratch arrays and outputs lets the
/// oblivious primitives prioritize "real before decoy" uniformly.
namespace wire {

constexpr std::uint8_t kReal = 1;
constexpr std::uint8_t kDecoy = 0;
constexpr std::uint8_t kDecoyFill = 0x00;

/// flag + payload.
std::vector<std::uint8_t> MakeReal(const std::vector<std::uint8_t>& payload);

/// flag + fixed decoy pattern of `payload_size` bytes.
std::vector<std::uint8_t> MakeDecoy(std::size_t payload_size);

bool IsReal(const std::vector<std::uint8_t>& plaintext);

/// Payload bytes (everything after the flag).
std::vector<std::uint8_t> Payload(const std::vector<std::uint8_t>& plaintext);

/// Zero-copy variants for the batched transfer path.
inline bool IsReal(std::span<const std::uint8_t> plaintext) {
  return !plaintext.empty() && plaintext[0] == kReal;
}
inline std::span<const std::uint8_t> PayloadView(
    std::span<const std::uint8_t> plaintext) {
  return plaintext.subspan(1);
}

/// Total plaintext size for a payload of `payload_size` bytes.
inline std::size_t PlainSize(std::size_t payload_size) {
  return 1 + payload_size;
}

}  // namespace wire

/// A relation sealed into a host region, one slot per tuple, under a data
/// provider's symmetric key. Sealing happens provider-side (it is not part
/// of the coprocessor's observable trace); fetching happens inside the
/// coprocessor and is traced.
///
/// Slots may include trailing *padding* entries (flag = 0) so oblivious
/// sorting can run on power-of-two sizes; padding never matches a predicate
/// because the algorithms consult the flag inside the coprocessor.
class EncryptedRelation {
 public:
  /// Seals `rel` into a fresh region of `host` under `key`. `padded_slots`
  /// of 0 means "exactly rel.size() slots"; otherwise must be >= rel.size()
  /// and the excess is filled with decoy padding. Each slot's nonce is
  /// bound to its (region, index) position — a host that later reorders
  /// slots is detected by the coprocessor (see Coprocessor::GetOpen).
  static Result<EncryptedRelation> Seal(sim::HostStore* host,
                                        const Relation& rel,
                                        const crypto::Ocb* key,
                                        std::uint64_t padded_slots = 0);

  sim::RegionId region() const { return region_; }
  /// Number of real tuples.
  std::uint64_t size() const { return size_; }
  /// Number of slots including padding.
  std::uint64_t padded_size() const { return padded_size_; }
  const Schema* schema() const { return schema_; }
  const crypto::Ocb* key() const { return key_; }
  std::size_t payload_size() const { return schema_->tuple_size(); }

  /// Coprocessor-side fetch: Get + authenticate + decrypt + decode. Returns
  /// the tuple and whether the slot was real (false = padding). kTampered
  /// when the host modified the slot.
  struct FetchedTuple {
    Tuple tuple;
    bool real;
  };
  Result<FetchedTuple> Fetch(sim::Coprocessor& copro,
                             std::uint64_t index) const;

  /// Fetch decoding into caller-owned storage, reusing `tuple`'s value
  /// buffers across calls (Tuple::DeserializeInto) — built for scan loops.
  Status FetchInto(sim::Coprocessor& copro, std::uint64_t index, Tuple* tuple,
                   bool* real) const;

  /// Batched counterpart of Fetch: one physical host round trip stages
  /// [first, first+count) and Next() performs the per-slot open + decode
  /// with scalar-identical accounting (see Coprocessor::GetOpenRange).
  class FetchRun {
   public:
    Result<FetchedTuple> Next();
    /// Next() into caller-owned storage; see EncryptedRelation::FetchInto.
    Status NextInto(Tuple* tuple, bool* real);
    std::uint64_t position() const { return run_.position(); }
    std::uint64_t remaining() const { return run_.remaining(); }

   private:
    friend class EncryptedRelation;
    FetchRun(sim::ReadRun run, const Schema* schema)
        : run_(std::move(run)), schema_(schema) {}

    sim::ReadRun run_;
    const Schema* schema_;
  };
  Result<FetchRun> FetchRange(sim::Coprocessor& copro, std::uint64_t first,
                              std::uint64_t count) const;

 private:
  EncryptedRelation() = default;

  sim::RegionId region_ = 0;
  std::uint64_t size_ = 0;
  std::uint64_t padded_size_ = 0;
  const Schema* schema_ = nullptr;
  const crypto::Ocb* key_ = nullptr;
};

}  // namespace ppj::relation

#endif  // PPJ_RELATION_ENCRYPTED_RELATION_H_
