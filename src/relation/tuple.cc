#include "relation/tuple.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <sstream>

namespace ppj::relation {

namespace {

void PutU64(std::vector<std::uint8_t>& out, std::size_t off,
            std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint64_t GetU64(std::span<const std::uint8_t> in, std::size_t off) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, in.data() + off, 8);
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in[off + i]) << (8 * i);
    }
    return v;
  }
}

void PutU32(std::vector<std::uint8_t>& out, std::size_t off,
            std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::uint32_t GetU32(std::span<const std::uint8_t> in, std::size_t off) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t v;
    std::memcpy(&v, in.data() + off, 4);
    return v;
  } else {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in[off + i]) << (8 * i);
    }
    return v;
  }
}

bool TypeMatches(ColumnType type, const Value& v) {
  switch (type) {
    case ColumnType::kInt64:
      return std::holds_alternative<std::int64_t>(v);
    case ColumnType::kDouble:
      return std::holds_alternative<double>(v);
    case ColumnType::kString:
      return std::holds_alternative<std::string>(v);
    case ColumnType::kSet:
      return std::holds_alternative<std::vector<std::uint32_t>>(v);
  }
  return false;
}

}  // namespace

Tuple::Tuple(const Schema* schema, std::vector<Value> values)
    : schema_(schema), values_(std::move(values)) {
  // Normalise sets: sorted + unique, so equality and Jaccard are canonical.
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (auto* set = std::get_if<std::vector<std::uint32_t>>(&values_[i])) {
      std::sort(set->begin(), set->end());
      set->erase(std::unique(set->begin(), set->end()), set->end());
    }
  }
}

Result<Tuple> Tuple::Make(const Schema* schema, std::vector<Value> values) {
  if (schema == nullptr) {
    return Status::InvalidArgument("Tuple::Make requires a schema");
  }
  if (values.size() != schema->num_columns()) {
    return Status::InvalidArgument("tuple arity does not match schema");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    const Column& col = schema->columns()[i];
    if (!TypeMatches(col.type, values[i])) {
      return Status::InvalidArgument("value type mismatch for column '" +
                                     col.name + "'");
    }
    if (col.type == ColumnType::kString &&
        std::get<std::string>(values[i]).size() > col.width) {
      return Status::InvalidArgument("string exceeds fixed width of column '" +
                                     col.name + "'");
    }
    if (col.type == ColumnType::kSet &&
        std::get<std::vector<std::uint32_t>>(values[i]).size() >
            (col.width - 4) / 4) {
      return Status::InvalidArgument("set exceeds capacity of column '" +
                                     col.name + "'");
    }
  }
  return Tuple(schema, std::move(values));
}

std::int64_t Tuple::GetInt64(std::size_t i) const {
  return std::get<std::int64_t>(values_[i]);
}

double Tuple::GetDouble(std::size_t i) const {
  return std::get<double>(values_[i]);
}

const std::string& Tuple::GetString(std::size_t i) const {
  return std::get<std::string>(values_[i]);
}

const std::vector<std::uint32_t>& Tuple::GetSet(std::size_t i) const {
  return std::get<std::vector<std::uint32_t>>(values_[i]);
}

std::vector<std::uint8_t> Tuple::Serialize() const {
  assert(schema_ != nullptr);
  std::vector<std::uint8_t> out(schema_->tuple_size(), 0);
  for (std::size_t i = 0; i < values_.size(); ++i) {
    const Column& col = schema_->columns()[i];
    const std::size_t off = schema_->offset(i);
    switch (col.type) {
      case ColumnType::kInt64: {
        PutU64(out, off, static_cast<std::uint64_t>(GetInt64(i)));
        break;
      }
      case ColumnType::kDouble: {
        std::uint64_t bits;
        const double d = GetDouble(i);
        std::memcpy(&bits, &d, 8);
        PutU64(out, off, bits);
        break;
      }
      case ColumnType::kString: {
        const std::string& s = GetString(i);
        std::memcpy(&out[off], s.data(), s.size());
        break;
      }
      case ColumnType::kSet: {
        const auto& set = GetSet(i);
        PutU32(out, off, static_cast<std::uint32_t>(set.size()));
        for (std::size_t j = 0; j < set.size(); ++j) {
          PutU32(out, off + 4 + 4 * j, set[j]);
        }
        break;
      }
    }
  }
  return out;
}

Result<Tuple> Tuple::Deserialize(const Schema* schema,
                                 std::span<const std::uint8_t> bytes) {
  if (schema == nullptr) {
    return Status::InvalidArgument("Tuple::Deserialize requires a schema");
  }
  if (bytes.size() != schema->tuple_size()) {
    return Status::InvalidArgument(
        "encoded tuple size does not match schema: got " +
        std::to_string(bytes.size()) + ", want " +
        std::to_string(schema->tuple_size()));
  }
  std::vector<Value> values;
  values.reserve(schema->num_columns());
  for (std::size_t i = 0; i < schema->num_columns(); ++i) {
    const Column& col = schema->columns()[i];
    const std::size_t off = schema->offset(i);
    switch (col.type) {
      case ColumnType::kInt64:
        values.emplace_back(static_cast<std::int64_t>(GetU64(bytes, off)));
        break;
      case ColumnType::kDouble: {
        const std::uint64_t bits = GetU64(bytes, off);
        double d;
        std::memcpy(&d, &bits, 8);
        values.emplace_back(d);
        break;
      }
      case ColumnType::kString: {
        std::size_t len = col.width;
        while (len > 0 && bytes[off + len - 1] == 0) --len;
        values.emplace_back(
            std::string(reinterpret_cast<const char*>(&bytes[off]), len));
        break;
      }
      case ColumnType::kSet: {
        const std::uint32_t count = GetU32(bytes, off);
        if (count > (col.width - 4) / 4) {
          return Status::InvalidArgument("malformed set count in column '" +
                                         col.name + "'");
        }
        std::vector<std::uint32_t> set(count);
        for (std::uint32_t j = 0; j < count; ++j) {
          set[j] = GetU32(bytes, off + 4 + 4 * j);
        }
        values.emplace_back(std::move(set));
        break;
      }
    }
  }
  return Tuple(schema, std::move(values));
}

Status Tuple::DeserializeInto(const Schema* schema,
                              std::span<const std::uint8_t> bytes,
                              Tuple* out) {
  if (schema == nullptr || out == nullptr) {
    return Status::InvalidArgument(
        "Tuple::DeserializeInto requires a schema and an output tuple");
  }
  if (bytes.size() != schema->tuple_size()) {
    return Status::InvalidArgument(
        "encoded tuple size does not match schema: got " +
        std::to_string(bytes.size()) + ", want " +
        std::to_string(schema->tuple_size()));
  }
  out->schema_ = schema;
  out->values_.resize(schema->num_columns());
  for (std::size_t i = 0; i < schema->num_columns(); ++i) {
    const Column& col = schema->columns()[i];
    const std::size_t off = schema->offset(i);
    Value& slot = out->values_[i];
    switch (col.type) {
      case ColumnType::kInt64:
        slot = static_cast<std::int64_t>(GetU64(bytes, off));
        break;
      case ColumnType::kDouble: {
        const std::uint64_t bits = GetU64(bytes, off);
        double d;
        std::memcpy(&d, &bits, 8);
        slot = d;
        break;
      }
      case ColumnType::kString: {
        std::size_t len = col.width;
        while (len > 0 && bytes[off + len - 1] == 0) --len;
        if (auto* s = std::get_if<std::string>(&slot)) {
          s->assign(reinterpret_cast<const char*>(&bytes[off]), len);
        } else {
          slot = std::string(reinterpret_cast<const char*>(&bytes[off]), len);
        }
        break;
      }
      case ColumnType::kSet: {
        const std::uint32_t count = GetU32(bytes, off);
        if (count > (col.width - 4) / 4) {
          return Status::InvalidArgument("malformed set count in column '" +
                                         col.name + "'");
        }
        auto* set = std::get_if<std::vector<std::uint32_t>>(&slot);
        if (set == nullptr) {
          slot = std::vector<std::uint32_t>();
          set = std::get_if<std::vector<std::uint32_t>>(&slot);
        }
        set->resize(count);
        for (std::uint32_t j = 0; j < count; ++j) {
          (*set)[j] = GetU32(bytes, off + 4 + 4 * j);
        }
        // Same canonicalization the Tuple constructor applies.
        std::sort(set->begin(), set->end());
        set->erase(std::unique(set->begin(), set->end()), set->end());
        break;
      }
    }
  }
  return Status::OK();
}

Tuple Tuple::Concat(const Schema* schema, const Tuple& left,
                    const Tuple& right) {
  std::vector<Value> values = left.values_;
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(schema, std::move(values));
}

bool Tuple::operator==(const Tuple& other) const {
  return values_ == other.values_;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    const Value& v = values_[i];
    if (const auto* p = std::get_if<std::int64_t>(&v)) {
      os << *p;
    } else if (const auto* d = std::get_if<double>(&v)) {
      os << *d;
    } else if (const auto* s = std::get_if<std::string>(&v)) {
      os << '"' << *s << '"';
    } else {
      const auto& set = std::get<std::vector<std::uint32_t>>(v);
      os << "{";
      for (std::size_t j = 0; j < set.size(); ++j) {
        if (j > 0) os << ",";
        os << set[j];
      }
      os << "}";
    }
  }
  os << ")";
  return os.str();
}

}  // namespace ppj::relation
