#ifndef PPJ_RELATION_TUPLE_H_
#define PPJ_RELATION_TUPLE_H_

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relation/schema.h"

namespace ppj::relation {

/// A typed cell value. kSet values are kept sorted and deduplicated.
using Value = std::variant<std::int64_t, double, std::string,
                           std::vector<std::uint32_t>>;

/// One relational tuple: typed values under a Schema, with a fixed-width
/// binary codec. The codec is what actually flows through the simulated
/// coprocessor; Tuple is the convenient typed view on either end.
class Tuple {
 public:
  Tuple() = default;
  Tuple(const Schema* schema, std::vector<Value> values);

  /// Builds a tuple, validating arity and value/column type agreement.
  static Result<Tuple> Make(const Schema* schema, std::vector<Value> values);

  const Schema& schema() const { return *schema_; }
  const std::vector<Value>& values() const { return values_; }
  const Value& value(std::size_t i) const { return values_[i]; }

  std::int64_t GetInt64(std::size_t i) const;
  double GetDouble(std::size_t i) const;
  const std::string& GetString(std::size_t i) const;
  const std::vector<std::uint32_t>& GetSet(std::size_t i) const;

  /// Fixed-width little-endian encoding; size == schema.tuple_size().
  std::vector<std::uint8_t> Serialize() const;

  /// Inverse of Serialize. Fails on size mismatch or malformed set counts.
  static Result<Tuple> Deserialize(const Schema* schema,
                                   std::span<const std::uint8_t> bytes);
  static Result<Tuple> Deserialize(const Schema* schema,
                                   const std::vector<std::uint8_t>& bytes) {
    return Deserialize(schema, std::span<const std::uint8_t>(bytes));
  }

  /// Deserialize reusing `out`'s existing value storage (no allocation when
  /// `out` was last decoded under the same schema). Equivalent results to
  /// Deserialize; built for per-tuple decode loops.
  static Status DeserializeInto(const Schema* schema,
                                std::span<const std::uint8_t> bytes,
                                Tuple* out);

  /// Concatenation of two tuples under Schema::Concat semantics. `schema`
  /// must be the concatenated schema (owned by the caller).
  static Tuple Concat(const Schema* schema, const Tuple& left,
                      const Tuple& right);

  bool operator==(const Tuple& other) const;

  std::string ToString() const;

 private:
  const Schema* schema_ = nullptr;
  std::vector<Value> values_;
};

}  // namespace ppj::relation

#endif  // PPJ_RELATION_TUPLE_H_
