#ifndef PPJ_RELATION_RELATION_H_
#define PPJ_RELATION_RELATION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relation/tuple.h"

namespace ppj::relation {

/// An in-memory plaintext relation: what a data provider holds before
/// sealing and what a recipient reconstructs after decoy filtering. The
/// schema is owned by the relation so tuples can reference it stably.
class Relation {
 public:
  Relation(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  // The schema is referenced by contained tuples, so relations are move-only
  // with the default moves disabled too (moving would invalidate pointers).
  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const Schema* schema_ptr() const { return &schema_; }

  std::size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }
  const Tuple& tuple(std::size_t i) const { return tuples_[i]; }
  const std::vector<Tuple>& tuples() const { return tuples_; }

  /// Appends a tuple built from raw values; validates against the schema.
  Status Append(std::vector<Value> values);

  /// Appends an already-validated tuple (must reference this schema).
  void AppendTuple(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  std::string ToString(std::size_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Tuple> tuples_;
};

/// Multiset equality of two tuple collections — the correctness check used
/// throughout the tests ("same join result, any order").
bool SameTupleMultiset(const std::vector<Tuple>& a,
                       const std::vector<Tuple>& b);

}  // namespace ppj::relation

#endif  // PPJ_RELATION_RELATION_H_
