#ifndef PPJ_RELATION_GENERATOR_H_
#define PPJ_RELATION_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relation/predicate.h"
#include "relation/relation.h"

namespace ppj::relation {

/// A complete two-table workload: relations, predicate, and the ground-truth
/// shape parameters the paper's algorithms and definitions are stated in.
struct TwoTableWorkload {
  std::unique_ptr<Relation> a;
  std::unique_ptr<Relation> b;
  std::unique_ptr<PairPredicate> predicate;
  /// N: maximum number of B tuples matching any single A tuple (Chapter 4).
  std::uint64_t max_matches_per_a = 0;
  /// S: total number of matching pairs; L = |A| * |B| (Chapter 5).
  std::uint64_t result_size = 0;
};

/// Parameters for an equijoin workload with exact control of N and S.
struct EquijoinSpec {
  std::uint64_t size_a = 64;
  std::uint64_t size_b = 64;
  /// Exact maximum fan-out: at least one A tuple matches exactly N B tuples
  /// and none matches more. Must satisfy 1 <= N <= size_b.
  std::uint64_t n_max = 4;
  /// Exact total result size; N <= S, S <= size_b, and the construction
  /// needs ceil(S / N) <= size_a distinct match groups.
  std::uint64_t result_size = 8;
  /// Perturbs keys and payloads so that two workloads with identical shape
  /// have entirely different content (Definition 1 audit pairs).
  std::uint64_t seed = 1;
};

/// Builds A and B with schema (id:int64, key:int64, tag:string[12]) joined
/// on `key`, with exactly the requested N and S. Non-matching tuples get
/// keys from disjoint ranges.
Result<TwoTableWorkload> MakeEquijoinWorkload(const EquijoinSpec& spec);

/// Parameters for an arbitrary-predicate workload with exact control of S.
struct CellSpec {
  std::uint64_t size_a = 64;
  std::uint64_t size_b = 64;
  /// Exact number of matching (a, b) pairs out of L = size_a * size_b.
  std::uint64_t result_size = 8;
  std::uint64_t seed = 1;
  /// Skew: 0 spreads matches uniformly at random over the L cells; k > 0
  /// concentrates all matches on the first k rows of A (the worst-case
  /// distribution of Section 5.1.1's discussion). result_size must then be
  /// <= k * size_b.
  std::uint64_t skew_rows = 0;
};

/// Builds a workload whose predicate is an arbitrary (non-equality) match
/// over the pair of `id` attributes, selecting exactly S of the L cells.
/// This exercises the "general join, arbitrary predicate" code paths with a
/// precisely controlled result shape.
Result<TwoTableWorkload> MakeCellWorkload(const CellSpec& spec);

/// Parameters for a skewed equijoin: B's join keys follow a Zipf
/// distribution (the hash-join leak scenario of Section 4.5.1's footnote).
struct ZipfSpec {
  std::uint64_t size_a = 32;
  std::uint64_t size_b = 64;
  /// Key universe; A holds one tuple per key (up to size_a of them).
  std::uint64_t num_keys = 16;
  /// Zipf exponent; 0 = uniform, >= 1 strongly skewed.
  double exponent = 1.0;
  std::uint64_t seed = 1;
};

/// Builds the skewed workload; N and S are computed exhaustively and
/// returned in the workload's shape fields.
Result<TwoTableWorkload> MakeZipfEquijoinWorkload(const ZipfSpec& spec);

/// Builds a similarity workload: A and B carry set-valued attributes and the
/// predicate is Jaccard(a.features, b.features) > f. Ground-truth N and S
/// are computed by exhaustive evaluation.
struct JaccardSpec {
  std::uint64_t size_a = 32;
  std::uint64_t size_b = 32;
  std::uint32_t universe = 64;       ///< Element ids drawn from [0, universe).
  std::uint32_t set_size = 8;        ///< Elements per tuple.
  double threshold = 0.5;            ///< Match when coefficient > threshold.
  std::uint64_t seed = 1;
  std::uint64_t planted_pairs = 4;   ///< Near-duplicate pairs planted across
                                     ///< A and B to guarantee matches.
};
Result<TwoTableWorkload> MakeJaccardWorkload(const JaccardSpec& spec);

/// Ground truth by exhaustive plaintext evaluation: result size S, maximum
/// fan-out N, and the full expected result (concatenated tuples under
/// `result_schema`).
struct GroundTruth {
  std::uint64_t result_size = 0;
  std::uint64_t max_matches_per_a = 0;
  std::vector<Tuple> expected;
};
GroundTruth ComputeGroundTruth(const Relation& a, const Relation& b,
                               const PairPredicate& pred,
                               const Schema* result_schema);

}  // namespace ppj::relation

#endif  // PPJ_RELATION_GENERATOR_H_
