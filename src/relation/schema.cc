#include "relation/schema.h"

#include <sstream>

namespace ppj::relation {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  offsets_.reserve(columns_.size());
  std::size_t off = 0;
  for (const Column& c : columns_) {
    offsets_.push_back(off);
    off += c.width;
  }
  tuple_size_ = off;
}

Column Schema::Int64(const std::string& name) {
  return Column{name, ColumnType::kInt64, 8};
}

Column Schema::Double(const std::string& name) {
  return Column{name, ColumnType::kDouble, 8};
}

Column Schema::String(const std::string& name, std::uint32_t width) {
  return Column{name, ColumnType::kString, width};
}

Column Schema::Set(const std::string& name, std::uint32_t max_elements) {
  return Column{name, ColumnType::kSet, 4 + 4 * max_elements};
}

Result<std::size_t> Schema::ColumnIndex(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return Status::NotFound("no column named '" + name + "'");
}

bool Schema::operator==(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const Column& a = columns_[i];
    const Column& b = other.columns_[i];
    if (a.name != b.name || a.type != b.type || a.width != b.width) {
      return false;
    }
  }
  return true;
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Column> cols = left.columns_;
  for (Column c : right.columns_) {
    // Disambiguate duplicated names the SQL way: suffix the right side.
    bool clash = false;
    for (const Column& l : left.columns_) {
      if (l.name == c.name) {
        clash = true;
        break;
      }
    }
    if (clash) c.name += "_r";
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << ":";
    switch (columns_[i].type) {
      case ColumnType::kInt64:
        os << "int64";
        break;
      case ColumnType::kDouble:
        os << "double";
        break;
      case ColumnType::kString:
        os << "string[" << columns_[i].width << "]";
        break;
      case ColumnType::kSet:
        os << "set[" << (columns_[i].width - 4) / 4 << "]";
        break;
    }
  }
  os << ")";
  return os.str();
}

}  // namespace ppj::relation
