#include "oblivious/windowed_filter.h"

#include <algorithm>

#include "common/math.h"
#include "oblivious/bitonic_sort.h"
#include "relation/encrypted_relation.h"

namespace ppj::oblivious {

Result<FilterStats> WindowedObliviousFilter(sim::Coprocessor& copro,
                                            sim::RegionId src,
                                            std::uint64_t omega,
                                            std::uint64_t mu,
                                            std::uint64_t delta,
                                            const crypto::Ocb& key,
                                            sim::RegionId dst) {
  if (omega == 0 || mu == 0 || mu > omega) {
    return Status::InvalidArgument("need 0 < mu <= omega");
  }
  if (delta == 0) delta = 1;
  if (copro.host()->RegionSlots(src) < omega) {
    return Status::OutOfRange("src region smaller than omega");
  }
  if (copro.host()->RegionSlots(dst) < mu) {
    return Status::OutOfRange("dst region smaller than mu");
  }
  const std::size_t slot_size = copro.host()->RegionSlotSize(src);
  if (copro.host()->RegionSlotSize(dst) != slot_size) {
    return Status::InvalidArgument("src/dst slot sizes differ");
  }
  const std::size_t payload_size =
      slot_size - crypto::Ocb::kBlockSize - crypto::Ocb::kTagSize - 1;

  FilterStats stats;
  const std::uint64_t window = std::min(mu + delta, omega);
  const std::uint64_t padded = NextPowerOfTwo(window);
  stats.buffer_size = padded;

  // Buffer lives in *host* memory (the coprocessor cannot hold mu + delta
  // tuples); T touches it only through traced transfers.
  const sim::RegionId buffer =
      copro.host()->CreateRegion("filter-buffer", slot_size, padded);

  // Move an element src[s] -> buffer[b] through T, re-sealed.
  auto copy_in = [&](std::uint64_t s, std::uint64_t b) -> Status {
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> plain,
                         copro.GetOpen(src, s, key));
    PPJ_RETURN_NOT_OK(copro.PutSealed(buffer, b, plain, key));
    stats.copy_transfers += 2;
    return Status::OK();
  };

  // Fill the initial window and pad the power-of-two tail with decoys.
  std::uint64_t consumed = 0;
  for (; consumed < window; ++consumed) {
    PPJ_RETURN_NOT_OK(copy_in(consumed, consumed));
  }
  const std::vector<std::uint8_t> decoy =
      relation::wire::MakeDecoy(payload_size);
  for (std::uint64_t b = window; b < padded; ++b) {
    PPJ_RETURN_NOT_OK(copro.PutSealed(buffer, b, decoy, key));
    stats.copy_transfers += 1;
  }

  const PlainLess less = RealFirstLess();
  PPJ_RETURN_NOT_OK(ObliviousSort(copro, buffer, padded, key, less));
  ++stats.sort_invocations;

  // Refill the swap area and re-sort until the source is exhausted. All at
  // most mu real elements always survive in the top mu buffer positions.
  while (consumed < omega) {
    const std::uint64_t chunk = std::min(delta, omega - consumed);
    for (std::uint64_t j = 0; j < chunk; ++j) {
      PPJ_RETURN_NOT_OK(copy_in(consumed + j, mu + j));
    }
    // Any unused tail of the swap area still holds decoys from the previous
    // round (sorted behind the reals), so no extra writes are needed; the
    // chunk size is a function of public parameters only.
    consumed += chunk;
    PPJ_RETURN_NOT_OK(ObliviousSort(copro, buffer, padded, key, less));
    ++stats.sort_invocations;
  }

  // Emit the top mu slots.
  for (std::uint64_t i = 0; i < mu; ++i) {
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> plain,
                         copro.GetOpen(buffer, i, key));
    PPJ_RETURN_NOT_OK(copro.PutSealed(dst, i, plain, key));
    stats.copy_transfers += 2;
  }
  return stats;
}

}  // namespace ppj::oblivious
