#include "oblivious/windowed_filter.h"

#include <algorithm>
#include <span>

#include "common/math.h"
#include "common/telemetry.h"
#include "oblivious/bitonic_sort.h"
#include "relation/encrypted_relation.h"

namespace ppj::oblivious {

Result<FilterStats> WindowedObliviousFilter(sim::Coprocessor& copro,
                                            sim::RegionId src,
                                            std::uint64_t omega,
                                            std::uint64_t mu,
                                            std::uint64_t delta,
                                            const crypto::Ocb& key,
                                            sim::RegionId dst) {
  if (omega == 0 || mu == 0 || mu > omega) {
    return Status::InvalidArgument("need 0 < mu <= omega");
  }
  if (delta == 0) delta = 1;
  if (copro.host()->RegionSlots(src) < omega) {
    return Status::OutOfRange("src region smaller than omega");
  }
  if (copro.host()->RegionSlots(dst) < mu) {
    return Status::OutOfRange("dst region smaller than mu");
  }
  const std::size_t slot_size = copro.host()->RegionSlotSize(src);
  if (copro.host()->RegionSlotSize(dst) != slot_size) {
    return Status::InvalidArgument("src/dst slot sizes differ");
  }
  const std::size_t payload_size =
      slot_size - crypto::Ocb::kBlockSize - crypto::Ocb::kTagSize - 1;

  PPJ_DEVICE_SPAN(&copro, "windowed-filter");
  FilterStats stats;
  const std::uint64_t window = std::min(mu + delta, omega);
  const std::uint64_t padded = NextPowerOfTwo(window);
  stats.buffer_size = padded;

  // Buffer lives in *host* memory (the coprocessor cannot hold mu + delta
  // tuples); T touches it only through traced transfers.
  const sim::RegionId buffer =
      copro.host()->CreateRegion("filter-buffer", slot_size, padded);

  // All of the filter's copies are sequential, so they move through the
  // batched range-transfer layer in chunks of the batch limit. The staged
  // bytes are sealed ciphertext (no secure slots consumed); per element the
  // accounting is the scalar GetOpen/PutSealed pair, in the scalar order.
  const std::uint64_t limit =
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1));
  std::vector<std::uint8_t> plain;

  // Move cnt elements sregion[s0..) -> dregion[d0..) through T, re-sealed.
  auto copy_range = [&](sim::RegionId sregion, std::uint64_t s0,
                        sim::RegionId dregion, std::uint64_t d0,
                        std::uint64_t cnt) -> Status {
    for (std::uint64_t done = 0; done < cnt;) {
      const std::uint64_t chunk = std::min(limit, cnt - done);
      PPJ_ASSIGN_OR_RETURN(
          sim::ReadRun in,
          copro.GetOpenRange(sregion, s0 + done, chunk, &key));
      PPJ_RETURN_NOT_OK(in.PrefetchOpen());
      PPJ_ASSIGN_OR_RETURN(
          sim::WriteRun out,
          copro.PutSealedRange(dregion, d0 + done, chunk, &key));
      for (std::uint64_t e = 0; e < chunk; ++e) {
        PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> s, in.NextOpen());
        plain.assign(s.begin(), s.end());
        PPJ_RETURN_NOT_OK(out.Append(plain));
      }
      PPJ_RETURN_NOT_OK(out.Flush());
      done += chunk;
      stats.copy_transfers += 2 * chunk;
    }
    return Status::OK();
  };

  // Fill the initial window and pad the power-of-two tail with decoys.
  std::uint64_t consumed = 0;
  {
    PPJ_SPAN("fill");
    PPJ_RETURN_NOT_OK(copy_range(src, 0, buffer, 0, window));
    consumed = window;
    const std::vector<std::uint8_t> decoy =
        relation::wire::MakeDecoy(payload_size);
    for (std::uint64_t b = window; b < padded;) {
      const std::uint64_t chunk = std::min(limit, padded - b);
      PPJ_ASSIGN_OR_RETURN(sim::WriteRun out,
                           copro.PutSealedRange(buffer, b, chunk, &key));
      for (std::uint64_t e = 0; e < chunk; ++e) {
        PPJ_RETURN_NOT_OK(out.Append(decoy));
      }
      PPJ_RETURN_NOT_OK(out.Flush());
      b += chunk;
      stats.copy_transfers += chunk;
    }
  }

  const SortKey less = RealFirstLess();
  PPJ_RETURN_NOT_OK(ObliviousSort(copro, buffer, padded, key, less));
  ++stats.sort_invocations;

  // Refill the swap area and re-sort until the source is exhausted. All at
  // most mu real elements always survive in the top mu buffer positions.
  while (consumed < omega) {
    const std::uint64_t chunk = std::min(delta, omega - consumed);
    {
      PPJ_SPAN("refill");
      PPJ_RETURN_NOT_OK(copy_range(src, consumed, buffer, mu, chunk));
    }
    // Any unused tail of the swap area still holds decoys from the previous
    // round (sorted behind the reals), so no extra writes are needed; the
    // chunk size is a function of public parameters only.
    consumed += chunk;
    PPJ_RETURN_NOT_OK(ObliviousSort(copro, buffer, padded, key, less));
    ++stats.sort_invocations;
  }

  // Emit the top mu slots.
  PPJ_SPAN("emit");
  PPJ_RETURN_NOT_OK(copy_range(buffer, 0, dst, 0, mu));
  return stats;
}

}  // namespace ppj::oblivious
