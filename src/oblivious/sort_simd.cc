#include "oblivious/sort_simd.h"

#include <algorithm>
#include <cstring>

// Same gating shape as the AES tiers (crypto/aes128.cc): hardware paths
// compile only on x86-64 GCC/Clang, each carrying its own target attribute
// so the translation unit itself needs no -mavx2; -DPPJ_SIMD=OFF defines
// PPJ_SIMD_DISABLED and pins the scalar tier at runtime.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__)) && \
    !defined(PPJ_SIMD_DISABLED)
#define PPJ_SORT_SIMD 1
#include <immintrin.h>
#endif

namespace ppj::oblivious {

namespace {

// Row-level re-implementations of the structured comparators. These must
// stay bit-equivalent to the lambdas built by RealFirstLess / ColumnLess /
// TagLess in bitonic_sort.cc — the sorter swaps rows based on these and
// replays accounting assuming the scalar path would have swapped the same
// pairs.

bool RowIsReal(const std::uint8_t* row) { return row[0] == 1; }

std::uint64_t LoadU64Le(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

// TagLess memcpys the tag in native order; match it exactly.
std::uint64_t LoadTag(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);
  return v;
}

bool RowLess(const SortKey& key, const std::uint8_t* x,
             const std::uint8_t* y) {
  switch (key.kind) {
    case SortKey::Kind::kRealFirst:
      return RowIsReal(x) && !RowIsReal(y);
    case SortKey::Kind::kColumnInt64: {
      const bool xr = RowIsReal(x);
      const bool yr = RowIsReal(y);
      if (xr != yr) return xr;  // padding after all real tuples
      if (!xr) return false;
      return static_cast<std::int64_t>(LoadU64Le(x + key.key_offset)) <
             static_cast<std::int64_t>(LoadU64Le(y + key.key_offset));
    }
    case SortKey::Kind::kTag:
      return LoadTag(x + key.key_offset) < LoadTag(y + key.key_offset);
    case SortKey::Kind::kGeneric:
      break;
  }
  return false;  // Unreachable: callers require key.Vectorizable().
}

void SwapRowsScalar(std::uint8_t* a, std::uint8_t* b, std::size_t n) {
  std::swap_ranges(a, a + n, b);
}

#ifdef PPJ_SORT_SIMD

// SSE2 is x86-64 baseline: no target attribute, no runtime check needed.
void SwapRowsSse2(std::uint8_t* a, std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<__m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<__m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), vb);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b + i), va);
  }
  for (; i < n; ++i) std::swap(a[i], b[i]);
}

__attribute__((target("avx2"))) void SwapRowsAvx2(std::uint8_t* a,
                                                  std::uint8_t* b,
                                                  std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<__m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a + i), vb);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(b + i), va);
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i va = _mm_loadu_si128(reinterpret_cast<__m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<__m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a + i), vb);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(b + i), va);
  }
  for (; i < n; ++i) std::swap(a[i], b[i]);
}

/// Four comparator pairs at once for the 8-byte-key orderings: the keys of
/// lanes r..r+3 are packed into one vector per side, compared packed, and
/// the movemask drives per-lane row swaps. The decision is
/// `less(first, second)` with (first, second) = ascending ? (y, x) : (x, y)
/// — exactly the scalar window's out-of-order test.
__attribute__((target("avx2"))) void CompareExchangeBlockAvx2(
    std::uint8_t* rows, std::size_t row_size, std::uint64_t j,
    bool ascending, const SortKey& key) {
  const std::size_t stride = j * row_size;
  std::uint64_t r = 0;
  if (key.kind == SortKey::Kind::kColumnInt64 ||
      key.kind == SortKey::Kind::kTag) {
    const std::size_t off = key.key_offset;
    const __m256i sign_flip = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ull));
    for (; r + 4 <= j; r += 4) {
      std::uint8_t* x[4];
      std::uint8_t* y[4];
      for (int lane = 0; lane < 4; ++lane) {
        x[lane] = rows + (r + static_cast<std::uint64_t>(lane)) * row_size;
        y[lane] = x[lane] + stride;
      }
      // NB: plain statements, not lambdas — a lambda is its own function
      // and does not inherit the enclosing target("avx2") attribute.
      const __m256i kx =
          _mm256_set_epi64x(static_cast<long long>(LoadTag(x[3] + off)),
                            static_cast<long long>(LoadTag(x[2] + off)),
                            static_cast<long long>(LoadTag(x[1] + off)),
                            static_cast<long long>(LoadTag(x[0] + off)));
      const __m256i ky =
          _mm256_set_epi64x(static_cast<long long>(LoadTag(y[3] + off)),
                            static_cast<long long>(LoadTag(y[2] + off)),
                            static_cast<long long>(LoadTag(y[1] + off)),
                            static_cast<long long>(LoadTag(y[0] + off)));
      const __m256i first = ascending ? ky : kx;
      const __m256i second = ascending ? kx : ky;
      __m256i lt;  // lane = -1 where first < second under the ordering
      if (key.kind == SortKey::Kind::kTag) {
        // Unsigned compare via sign-bit flip + signed cmpgt.
        lt = _mm256_cmpgt_epi64(_mm256_xor_si256(second, sign_flip),
                                _mm256_xor_si256(first, sign_flip));
      } else {
        lt = _mm256_cmpgt_epi64(second, first);  // signed int64 column
      }
      if (key.kind == SortKey::Kind::kColumnInt64) {
        // Fold in the flag logic: less = (fr & !sr) | (fr & sr & lt),
        // where fr/sr are the "first/second is real" lane masks.
        const __m256i fx = _mm256_set_epi64x(
            x[3][0] == 1 ? -1 : 0, x[2][0] == 1 ? -1 : 0,
            x[1][0] == 1 ? -1 : 0, x[0][0] == 1 ? -1 : 0);
        const __m256i fy = _mm256_set_epi64x(
            y[3][0] == 1 ? -1 : 0, y[2][0] == 1 ? -1 : 0,
            y[1][0] == 1 ? -1 : 0, y[0][0] == 1 ? -1 : 0);
        const __m256i fr = ascending ? fy : fx;
        const __m256i sr = ascending ? fx : fy;
        lt = _mm256_or_si256(_mm256_andnot_si256(sr, fr),
                             _mm256_and_si256(_mm256_and_si256(fr, sr), lt));
      }
      const int mask =
          _mm256_movemask_pd(_mm256_castsi256_pd(lt));
      for (int lane = 0; lane < 4; ++lane) {
        if (mask & (1 << lane)) SwapRowsAvx2(x[lane], y[lane], row_size);
      }
    }
  }
  // Tail pairs (and the flag-only ordering, whose "key" is one byte):
  // scalar decision, vector row movement.
  for (; r < j; ++r) {
    std::uint8_t* x = rows + r * row_size;
    std::uint8_t* y = x + stride;
    const bool out_of_order =
        ascending ? RowLess(key, y, x) : RowLess(key, x, y);
    if (out_of_order) SwapRowsAvx2(x, y, row_size);
  }
}

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

#endif  // PPJ_SORT_SIMD

template <void (*SwapRows)(std::uint8_t*, std::uint8_t*, std::size_t)>
void CompareExchangeBlockWith(std::uint8_t* rows, std::size_t row_size,
                              std::uint64_t j, bool ascending,
                              const SortKey& key) {
  const std::size_t stride = j * row_size;
  for (std::uint64_t r = 0; r < j; ++r) {
    std::uint8_t* x = rows + r * row_size;
    std::uint8_t* y = x + stride;
    const bool out_of_order =
        ascending ? RowLess(key, y, x) : RowLess(key, x, y);
    if (out_of_order) SwapRows(x, y, row_size);
  }
}

}  // namespace

SimdTier ActiveSimdTier() {
#ifdef PPJ_SORT_SIMD
  return HasAvx2() ? SimdTier::kAvx2 : SimdTier::kSse2;
#else
  return SimdTier::kScalar;
#endif
}

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "unknown";
}

void CompareExchangeBlock(std::uint8_t* rows, std::size_t row_size,
                          std::uint64_t j, bool ascending, const SortKey& key,
                          SimdTier tier) {
#ifdef PPJ_SORT_SIMD
  if (tier == SimdTier::kAvx2 && HasAvx2()) {
    CompareExchangeBlockAvx2(rows, row_size, j, ascending, key);
    return;
  }
  if (tier == SimdTier::kSse2 || tier == SimdTier::kAvx2) {
    CompareExchangeBlockWith<SwapRowsSse2>(rows, row_size, j, ascending, key);
    return;
  }
#else
  (void)tier;
#endif
  CompareExchangeBlockWith<SwapRowsScalar>(rows, row_size, j, ascending, key);
}

}  // namespace ppj::oblivious
