#include "oblivious/bitonic_sort.h"

#include <algorithm>
#include <cstring>
#include <span>

#include "common/math.h"
#include "common/telemetry.h"
#include "oblivious/sort_simd.h"
#include "relation/encrypted_relation.h"
#include "relation/tuple.h"

namespace ppj::oblivious {

namespace {

/// One oblivious compare-exchange: both elements travel through T and are
/// written back re-encrypted under fresh nonces whether or not they
/// swapped, so the host learns nothing from the exchange.
Status CompareExchange(sim::Coprocessor& copro, sim::RegionId region,
                       std::uint64_t i, std::uint64_t j, bool ascending,
                       const crypto::Ocb& key, const SortKey& less) {
  PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> pi,
                       copro.GetOpen(region, i, key));
  PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> pj,
                       copro.GetOpen(region, j, key));
  copro.NoteComparison();
  const bool out_of_order = ascending ? less(pj, pi) : less(pi, pj);
  if (out_of_order) std::swap(pi, pj);
  PPJ_RETURN_NOT_OK(copro.PutSealed(region, i, pi, key));
  PPJ_RETURN_NOT_OK(copro.PutSealed(region, j, pj, key));
  return Status::OK();
}

}  // namespace

Status ObliviousSort(sim::Coprocessor& copro, sim::RegionId region,
                     std::uint64_t n, const crypto::Ocb& key,
                     const SortKey& less) {
  if (n == 0 || n == 1) return Status::OK();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "bitonic sort needs a power-of-two size; pad with decoys");
  }
  PPJ_DEVICE_SPAN(&copro, "bitonic-sort");
  const SimdTier tier = ActiveSimdTier();
  // The two staging slots for the elements under comparison are the "+2"
  // of the paper's M + 2 memory model; no buffer reservation needed.
  //
  // Batched stages: within stage (k, j) the comparators partition the array
  // into disjoint aligned blocks of 2j slots — pairs (i, i+j) with
  // (i & j) == 0 — and no slot is read after it is written. When a block
  // fits the batch limit, one GetOpenRange stages its sealed slots and one
  // PutSealedRange scatters them back per block, while every comparator
  // still performs the scalar per-slot accounting in the scalar order:
  // Get(i), Get(i+j), compare, Put(i), Put(i+j). The staged bytes are
  // sealed ciphertext (untrusted data, no secure slots consumed), so the
  // window is a transfer-granularity knob, not a memory commitment.
  const std::uint64_t limit =
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 2));
  std::vector<std::uint8_t> pi;
  std::vector<std::uint8_t> pj;
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      const std::uint64_t block = 2 * j;
      if (block <= limit) {
        for (std::uint64_t base = 0; base < n; base += block) {
          PPJ_ASSIGN_OR_RETURN(sim::ReadRun in,
                               copro.GetOpenRange(region, base, block, &key));
          PPJ_RETURN_NOT_OK(in.PrefetchOpen());
          PPJ_ASSIGN_OR_RETURN(
              sim::WriteRun out,
              copro.PutSealedRange(region, base, block, &key));
          std::uint8_t* arena = in.MutablePlainArena();
          if (arena != nullptr && less.Vectorizable()) {
            // SIMD fast path. Two phases with identical observable effect
            // to the scalar loop below:
            //   1. Data movement only — the vector kernel swaps out-of-order
            //      rows in the prefetched plaintext arena. The direction is
            //      per-block constant: the block is aligned to 2j and
            //      k >= 2j, so bit k of every index i in it equals bit k of
            //      `base`.
            //   2. Accounting replay — per comparator, the exact scalar
            //      sequence: Get(i), Get(l), compare charge, Put(i),
            //      Put(l). OpenAt hands back the (already swapped) arena
            //      row at each position, which is precisely the plaintext
            //      the scalar path would seal there, so ciphertexts, trace,
            //      timing and metrics are all bit-identical.
            const bool ascending = (base & k) == 0;
            CompareExchangeBlock(arena, in.PlainSlotSize(), j, ascending,
                                 less, tier);
            for (std::uint64_t i = base; i < base + j; ++i) {
              const std::uint64_t l = i ^ j;  // == i + j within the block
              PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> si,
                                   in.OpenAt(i));
              PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> sl,
                                   in.OpenAt(l));
              copro.NoteComparison();
              PPJ_RETURN_NOT_OK(out.SealAt(i, si));
              PPJ_RETURN_NOT_OK(out.SealAt(l, sl));
            }
            PPJ_RETURN_NOT_OK(out.Flush());
            continue;
          }
          for (std::uint64_t i = base; i < base + j; ++i) {
            const std::uint64_t l = i ^ j;  // == i + j within the block
            PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> si,
                                 in.OpenAt(i));
            pi.assign(si.begin(), si.end());
            PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> sl,
                                 in.OpenAt(l));
            pj.assign(sl.begin(), sl.end());
            copro.NoteComparison();
            const bool ascending = (i & k) == 0;
            const bool out_of_order = ascending ? less(pj, pi) : less(pi, pj);
            if (out_of_order) std::swap(pi, pj);
            PPJ_RETURN_NOT_OK(out.SealAt(i, pi));
            PPJ_RETURN_NOT_OK(out.SealAt(l, pj));
          }
          PPJ_RETURN_NOT_OK(out.Flush());
        }
        continue;
      }
      for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t l = i ^ j;
        if (l > i) {
          const bool ascending = (i & k) == 0;
          PPJ_RETURN_NOT_OK(
              CompareExchange(copro, region, i, l, ascending, key, less));
        }
      }
    }
  }
  return Status::OK();
}

// The structured keys carry both forms of the ordering: the lambda (the
// scalar/ground truth, always correct) and the Kind + key_offset the
// sort_simd.cc row kernels re-implement. Changing one side requires
// changing the other — SimdSortTest.*Equivalence cross-checks them.

SortKey RealFirstLess() {
  return SortKey(
      SortKey::Kind::kRealFirst, 0,
      [](const std::vector<std::uint8_t>& x,
         const std::vector<std::uint8_t>& y) {
        return relation::wire::IsReal(x) && !relation::wire::IsReal(y);
      });
}

SortKey ColumnLess(const relation::Schema* schema, std::size_t col) {
  const std::size_t off = schema->offset(col);
  return SortKey(
      SortKey::Kind::kColumnInt64, 1 + off,
      [off](const std::vector<std::uint8_t>& x,
            const std::vector<std::uint8_t>& y) {
        const bool xr = relation::wire::IsReal(x);
        const bool yr = relation::wire::IsReal(y);
        if (xr != yr) return xr;  // padding after all real tuples
        if (!xr) return false;
        // int64 little-endian at offset off within the payload (skip the
        // flag).
        auto load = [off](const std::vector<std::uint8_t>& p) {
          std::uint64_t v = 0;
          for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(p[1 + off + i]) << (8 * i);
          }
          return static_cast<std::int64_t>(v);
        };
        return load(x) < load(y);
      });
}

SortKey TagLess() {
  return SortKey(SortKey::Kind::kTag, 1,
                 [](const std::vector<std::uint8_t>& x,
                    const std::vector<std::uint8_t>& y) {
                   std::uint64_t tx = 0, ty = 0;
                   std::memcpy(&tx, x.data() + 1, 8);
                   std::memcpy(&ty, y.data() + 1, 8);
                   return tx < ty;
                 });
}

std::uint64_t BitonicComparators(std::uint64_t n) {
  if (n <= 1) return 0;
  const unsigned lg = FloorLog2(n);
  return (n / 2) * (static_cast<std::uint64_t>(lg) * (lg + 1) / 2);
}

}  // namespace ppj::oblivious
