#include "oblivious/shuffle.h"

#include <cstring>

#include "common/math.h"
#include "oblivious/bitonic_sort.h"

namespace ppj::oblivious {

Status ObliviousShuffle(sim::Coprocessor& copro, sim::RegionId region,
                        std::uint64_t n, const crypto::Ocb& key) {
  if (n <= 1) return Status::OK();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("oblivious shuffle needs power-of-two n");
  }
  const std::size_t slot_size = copro.host()->RegionSlotSize(region);
  const std::size_t plain_size =
      slot_size - crypto::Ocb::kBlockSize - crypto::Ocb::kTagSize;

  // Tagged staging region: plaintext' = flag byte + 8-byte tag + original
  // plaintext. The tag is drawn inside T and never visible to the host.
  const std::size_t tagged_plain = 1 + 8 + plain_size;
  const sim::RegionId tagged = copro.host()->CreateRegion(
      "shuffle-tags", sim::Coprocessor::SealedSize(tagged_plain), n);

  for (std::uint64_t i = 0; i < n; ++i) {
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> plain,
                         copro.GetOpen(region, i, key));
    std::vector<std::uint8_t> t(tagged_plain);
    t[0] = 1;
    const std::uint64_t tag = copro.rng().NextU64();
    std::memcpy(t.data() + 1, &tag, 8);
    std::memcpy(t.data() + 9, plain.data(), plain.size());
    PPJ_RETURN_NOT_OK(copro.PutSealed(tagged, i, t, key));
  }

  PPJ_RETURN_NOT_OK(ObliviousSort(copro, tagged, n, key, TagLess()));

  for (std::uint64_t i = 0; i < n; ++i) {
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> t,
                         copro.GetOpen(tagged, i, key));
    std::vector<std::uint8_t> plain(t.begin() + 9, t.end());
    PPJ_RETURN_NOT_OK(copro.PutSealed(region, i, plain, key));
  }
  return Status::OK();
}

}  // namespace ppj::oblivious
