#ifndef PPJ_OBLIVIOUS_BITONIC_SORT_H_
#define PPJ_OBLIVIOUS_BITONIC_SORT_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "crypto/ocb.h"
#include "relation/schema.h"
#include "sim/coprocessor.h"

namespace ppj::oblivious {

/// Strict-weak ordering over slot *plaintexts* (wire format: flag byte +
/// payload). Evaluated inside the coprocessor after authenticated
/// decryption; the adversary never observes its outcome because every
/// compare-exchange re-seals and writes back both elements regardless of
/// whether they swapped.
using PlainLess = std::function<bool(const std::vector<std::uint8_t>&,
                                     const std::vector<std::uint8_t>&)>;

/// Obliviously sorts slots [0, n) of `region` with Batcher's bitonic
/// network (Section 4.4.1 / 5.2.2). n must be a power of two — callers pad
/// with decoy slots, which the standard comparators order last.
///
/// Access pattern: the fixed network schedule of ~ (1/4) n (log2 n)^2
/// compare-exchanges, each transferring 2 elements in and 2 out — i.e.
/// n (log2 n)^2 tuple transfers, the cost the paper charges for an
/// oblivious sort. The schedule depends only on n, never on the data.
Status ObliviousSort(sim::Coprocessor& copro, sim::RegionId region,
                     std::uint64_t n, const crypto::Ocb& key,
                     const PlainLess& less);

/// Comparator placing real tuples before decoys ("giving lower priority to
/// decoy tuples"). Ties are left untouched.
PlainLess RealFirstLess();

/// Comparator for Algorithm 3: ascending by int64 column `col` of `schema`,
/// with decoy/padding slots ordered last.
PlainLess ColumnLess(const relation::Schema* schema, std::size_t col);

/// Comparator by a little-endian uint64 tag prepended to the payload —
/// used by the oblivious shuffle.
PlainLess TagLess();

/// Exact number of compare-exchange operations the network performs on n
/// elements (n a power of two).
std::uint64_t BitonicComparators(std::uint64_t n);

}  // namespace ppj::oblivious

#endif  // PPJ_OBLIVIOUS_BITONIC_SORT_H_
