#ifndef PPJ_OBLIVIOUS_BITONIC_SORT_H_
#define PPJ_OBLIVIOUS_BITONIC_SORT_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "crypto/ocb.h"
#include "relation/schema.h"
#include "sim/coprocessor.h"

namespace ppj::oblivious {

/// Strict-weak ordering over slot *plaintexts* (wire format: flag byte +
/// payload). Evaluated inside the coprocessor after authenticated
/// decryption; the adversary never observes its outcome because every
/// compare-exchange re-seals and writes back both elements regardless of
/// whether they swapped.
using PlainLess = std::function<bool(const std::vector<std::uint8_t>&,
                                     const std::vector<std::uint8_t>&)>;

/// A sort ordering: always usable as a plain comparator, plus enough
/// structure — what kind of key, at what byte offset in the row — for the
/// batched sort window to evaluate it directly on raw plaintext rows, the
/// precondition of the SIMD compare-exchange inner loop (sort_simd.h).
/// The standard orderings (RealFirstLess, ColumnLess, TagLess) carry their
/// structure; arbitrary callables convert implicitly to an opaque key that
/// sorts correctly through the scalar path alone.
struct SortKey {
  enum class Kind : std::uint8_t {
    kGeneric,      ///< Opaque comparator; scalar evaluation only.
    kRealFirst,    ///< Real tuples before decoys (flag byte only).
    kColumnInt64,  ///< Decoys last, then ascending int64 LE at key_offset.
    kTag,          ///< Ascending uint64 tag at key_offset; no flag logic.
  };

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SortKey> &&
                std::is_invocable_r_v<bool, F&,
                                      const std::vector<std::uint8_t>&,
                                      const std::vector<std::uint8_t>&>>>
  SortKey(F&& f)  // NOLINT(google-explicit-constructor): see above.
      : less(std::forward<F>(f)) {}

  SortKey(Kind k, std::size_t offset, PlainLess l)
      : kind(k), key_offset(offset), less(std::move(l)) {}

  bool operator()(const std::vector<std::uint8_t>& x,
                  const std::vector<std::uint8_t>& y) const {
    return less(x, y);
  }

  /// True when the batched window may evaluate this key directly on rows
  /// of the prefetched plaintext arena (the SIMD fast path); the kernel's
  /// row evaluation is bit-equivalent to calling `less`.
  bool Vectorizable() const { return kind != Kind::kGeneric; }

  Kind kind = Kind::kGeneric;
  /// Absolute byte offset of the 8-byte key within a plaintext row
  /// (kColumnInt64 / kTag): 1 flag byte + the payload offset.
  std::size_t key_offset = 0;
  PlainLess less;
};

/// Obliviously sorts slots [0, n) of `region` with Batcher's bitonic
/// network (Section 4.4.1 / 5.2.2). n must be a power of two — callers pad
/// with decoy slots, which the standard comparators order last.
///
/// Access pattern: the fixed network schedule of ~ (1/4) n (log2 n)^2
/// compare-exchanges, each transferring 2 elements in and 2 out — i.e.
/// n (log2 n)^2 tuple transfers, the cost the paper charges for an
/// oblivious sort. The schedule depends only on n, never on the data.
Status ObliviousSort(sim::Coprocessor& copro, sim::RegionId region,
                     std::uint64_t n, const crypto::Ocb& key,
                     const SortKey& less);

/// Comparator placing real tuples before decoys ("giving lower priority to
/// decoy tuples"). Ties are left untouched.
SortKey RealFirstLess();

/// Comparator for Algorithm 3: ascending by int64 column `col` of `schema`,
/// with decoy/padding slots ordered last.
SortKey ColumnLess(const relation::Schema* schema, std::size_t col);

/// Comparator by a little-endian uint64 tag prepended to the payload —
/// used by the oblivious shuffle.
SortKey TagLess();

/// Exact number of compare-exchange operations the network performs on n
/// elements (n a power of two).
std::uint64_t BitonicComparators(std::uint64_t n);

}  // namespace ppj::oblivious

#endif  // PPJ_OBLIVIOUS_BITONIC_SORT_H_
