#ifndef PPJ_OBLIVIOUS_SHUFFLE_H_
#define PPJ_OBLIVIOUS_SHUFFLE_H_

#include <cstdint>

#include "common/status.h"
#include "crypto/ocb.h"
#include "sim/coprocessor.h"

namespace ppj::oblivious {

/// Obliviously permutes slots [0, n) of `region` (sealed under `key`) into
/// a uniformly random order unknown to the host: each element is tagged
/// inside the coprocessor with a random 64-bit key, the tagged list is
/// bitonically sorted by tag, and the tags are stripped. n must be a power
/// of two. The access pattern depends only on n.
///
/// Used by the unsafe hash/commutative baselines of Section 4.5.1 (which
/// the paper prescribes to "obliviously shuffle A" first) and available as
/// a building block.
Status ObliviousShuffle(sim::Coprocessor& copro, sim::RegionId region,
                        std::uint64_t n, const crypto::Ocb& key);

}  // namespace ppj::oblivious

#endif  // PPJ_OBLIVIOUS_SHUFFLE_H_
