#ifndef PPJ_OBLIVIOUS_SORT_SIMD_H_
#define PPJ_OBLIVIOUS_SORT_SIMD_H_

#include <cstddef>
#include <cstdint>

#include "oblivious/bitonic_sort.h"

namespace ppj::oblivious {

/// Vector width of the sort inner loop, resolved once per process — the
/// same runtime-dispatch shape as the AES tier in crypto/aes128.cc.
/// Building with -DPPJ_SIMD=OFF (the PPJ_SIMD_DISABLED definition) pins
/// the scalar tier for A/B testing and golden cross-checks.
enum class SimdTier : std::uint8_t {
  kScalar,  ///< Portable byte loop.
  kSse2,    ///< Scalar key compare, 16-byte-vector row swap.
  kAvx2,    ///< 4-lane packed key compare, 32-byte-vector row swap.
};

SimdTier ActiveSimdTier();
const char* SimdTierName(SimdTier tier);

/// The data movement of one aligned bitonic block: `rows` holds 2j rows of
/// `row_size` plaintext bytes; comparator pairs are (r, r + j) for
/// r in [0, j), all with the same direction `ascending` (within an aligned
/// block of stage (k, j), bit k of the index is constant). Rows that
/// compare out of order are swapped in place.
///
/// Pure data movement — no trace, timing or cipher accounting happens
/// here; the caller replays the scalar per-comparator accounting
/// afterwards. Requires key.Vectorizable(); any j and row_size are
/// accepted (vector kernels peel scalar tails).
void CompareExchangeBlock(std::uint8_t* rows, std::size_t row_size,
                          std::uint64_t j, bool ascending, const SortKey& key,
                          SimdTier tier);

}  // namespace ppj::oblivious

#endif  // PPJ_OBLIVIOUS_SORT_SIMD_H_
