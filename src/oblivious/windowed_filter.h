#ifndef PPJ_OBLIVIOUS_WINDOWED_FILTER_H_
#define PPJ_OBLIVIOUS_WINDOWED_FILTER_H_

#include <cstdint>

#include "common/result.h"
#include "common/status.h"
#include "crypto/ocb.h"
#include "sim/coprocessor.h"

namespace ppj::oblivious {

/// Statistics of one windowed-filter execution, for reconciling measured
/// costs against the Section 5.2.2 model.
struct FilterStats {
  std::uint64_t sort_invocations = 0;
  std::uint64_t buffer_size = 0;      ///< mu + delta, padded to a power of 2.
  std::uint64_t copy_transfers = 0;   ///< refill gets + puts (lower order).
};

/// The optimized oblivious decoy filter of Section 5.2.2.
///
/// Input: slots [0, omega) of `src`, sealed under `key`, of which at most
/// `mu` are real join results and the rest are decoys. Output: the real
/// results packed into slots [0, mu) of `dst` (followed by decoys when
/// fewer than mu reals exist).
///
/// Instead of obliviously sorting all omega elements (cost
/// omega (log2 omega)^2), the filter keeps a buffer of mu + delta elements
/// in host memory: it sorts the buffer real-first, overwrites the bottom
/// delta slots with the next delta source elements, and repeats —
/// (omega - mu)/delta sorts of mu + delta elements, exactly the recurrence
/// whose optimal delta is Eqn 5.1's Delta*.
///
/// The access pattern is a fixed function of (omega, mu, delta); nothing
/// about which slots are real leaks.
Result<FilterStats> WindowedObliviousFilter(sim::Coprocessor& copro,
                                            sim::RegionId src,
                                            std::uint64_t omega,
                                            std::uint64_t mu,
                                            std::uint64_t delta,
                                            const crypto::Ocb& key,
                                            sim::RegionId dst);

}  // namespace ppj::oblivious

#endif  // PPJ_OBLIVIOUS_WINDOWED_FILTER_H_
