#include "plan/context.h"

#include "relation/encrypted_relation.h"

namespace ppj::plan {

Status PlanContext::InitWireShape() {
  if ((two_way_ == nullptr) == (multiway_ == nullptr)) {
    return Status::InvalidArgument(
        "PlanContext needs exactly one join description");
  }
  payload = two_way_ != nullptr ? two_way_->JoinedPayloadSize()
                                : multiway_->JoinedPayloadSize();
  slot = sim::Coprocessor::SealedSize(relation::wire::PlainSize(payload));
  decoy = relation::wire::MakeDecoy(payload);
  return Status::OK();
}

sim::RegionId PlanContext::CreateRegion(sim::Coprocessor& copro,
                                        const std::string& name,
                                        std::uint64_t slots) {
  const sim::RegionId id = copro.host()->CreateRegion(name, slot, slots);
  regions_.push_back(RegionUse{name, id, slots});
  return id;
}

core::Ch4Outcome TakeCh4Outcome(const PlanContext& ctx) {
  core::Ch4Outcome out;
  out.output_region = ctx.output_region;
  out.output_slots = ctx.output_slots;
  out.n_used = ctx.n;
  return out;
}

core::Ch5Outcome TakeCh5Outcome(const PlanContext& ctx) {
  core::Ch5Outcome out;
  out.output_region = ctx.output_region;
  out.result_size = ctx.s;
  out.staging_slots = ctx.staging_slots;
  out.n_star = ctx.n_star;
  out.blemish = ctx.blemish;
  return out;
}

}  // namespace ppj::plan
