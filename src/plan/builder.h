#ifndef PPJ_PLAN_BUILDER_H_
#define PPJ_PLAN_BUILDER_H_

#include <cstdint>

#include "common/result.h"
#include "core/algorithm.h"
#include "core/join_spec.h"
#include "plan/executor.h"

namespace ppj::plan {

/// Knobs the plan builders accept — the union of the per-algorithm option
/// structs, with the same defaults. Unknown-to-an-algorithm fields are
/// ignored by its builder.
struct JoinPlanOptions {
  /// Chapter 4 output-shape parameter N (0 = safe preprocessing scan).
  std::uint64_t n = 0;
  /// Algorithm 2: memory slots reserved for bookkeeping.
  std::uint64_t bookkeeping_slots = 1;
  /// Algorithm 3: B arrives already sorted on the join attribute.
  bool provider_sorted = false;
  /// Algorithm 6: privacy slack (privacy level 1 - epsilon).
  double epsilon = 1e-20;
  /// Algorithm 6: seed of the MLFSR visiting order.
  std::uint64_t order_seed = 0x5eed;
  /// Algorithm 6: test override of the derived segment size n*.
  std::uint64_t forced_segment_size = 0;
  /// Algorithms 4/6: test override of the filter swap distance delta.
  std::uint64_t filter_delta = 0;
};

/// Builds the physical plan for `algorithm` via the core algorithm
/// registry. Exactly one join description must be non-null: the Chapter 4
/// family takes `two_way`, the Chapter 5 family `multiway`. All input
/// validation happens at build time, before any device span opens or host
/// region exists — matching the monolithic drivers, which validated before
/// touching the coprocessor.
Result<PhysicalPlan> BuildJoinPlan(core::Algorithm algorithm,
                                   const core::TwoWayJoin* two_way,
                                   const core::MultiwayJoin* multiway,
                                   const JoinPlanOptions& options);

// Per-algorithm builders with the registry's uniform signature. Prefer
// BuildJoinPlan; these exist so core/algorithm.cc can register them.
Result<PhysicalPlan> BuildAlgorithm1Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options);
Result<PhysicalPlan> BuildAlgorithm1VariantPlan(
    const core::TwoWayJoin* two_way, const core::MultiwayJoin* multiway,
    const JoinPlanOptions& options);
Result<PhysicalPlan> BuildAlgorithm2Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options);
Result<PhysicalPlan> BuildAlgorithm3Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options);
Result<PhysicalPlan> BuildAlgorithm4Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options);
Result<PhysicalPlan> BuildAlgorithm5Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options);
Result<PhysicalPlan> BuildAlgorithm6Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options);

}  // namespace ppj::plan

#endif  // PPJ_PLAN_BUILDER_H_
