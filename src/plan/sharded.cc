#include "plan/sharded.h"

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/telemetry.h"
#include "plan/builder.h"
#include "plan/executor.h"
#include "plan/ops.h"
#include "plan/ops_shard.h"

namespace ppj::plan {
namespace {

/// Folds the full sharded adversary surface into one fingerprint: every
/// shard's trace fingerprint in shard order, then the channel's. The
/// auditor's union rule compares exactly this value across shape-equal
/// worlds. count = total trace events + channel events, so a run that
/// moves a different *number* of events can never collide.
sim::TraceFingerprint UnionFingerprint(
    const std::vector<sim::TraceFingerprint>& shards,
    const sim::TraceFingerprint& channel) {
  RunningHash hash;
  std::uint64_t count = 0;
  for (const sim::TraceFingerprint& fp : shards) {
    hash.UpdateU64(fp.digest);
    hash.UpdateU64(fp.count);
    count += fp.count;
  }
  hash.UpdateU64(channel.digest);
  hash.UpdateU64(channel.count);
  count += channel.count;
  return sim::TraceFingerprint{hash.digest(), count};
}

/// The shards == 1 degenerate case: the *serial* plan on shard 0 — same
/// builder, same executor, unmodified base options — so the trace, timing
/// and transfer surface is bit-identical to the frozen plan goldens by
/// construction (no shard ops, no channel).
Result<ShardedOutcome> RunSingleShard(sim::ShardedStore& store,
                                      core::Algorithm algorithm,
                                      const core::MultiwayJoin& join,
                                      const sim::CoprocessorOptions& base,
                                      const ShardedRunOptions& options) {
  JoinPlanOptions plan_options;
  plan_options.epsilon = options.epsilon;
  plan_options.order_seed = options.order_seed;
  PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       BuildJoinPlan(algorithm, nullptr, &join, plan_options));
  sim::Coprocessor copro(&store.shard(0), base);
  PlanContext ctx(nullptr, &join);
  ctx.cancel = base.cancel;
  PlanExecutor executor;
  PPJ_RETURN_NOT_OK(executor.Run(copro, plan, ctx));

  ShardedOutcome out;
  out.output_region = ctx.output_region;
  out.result_size = ctx.output_slots;
  out.blemish = ctx.blemish;
  out.per_shard.push_back(copro.metrics());
  out.shard_fingerprints.push_back(copro.trace().fingerprint());
  out.channel.max_mailbox_depth.assign(1, 0);
  out.union_fingerprint =
      UnionFingerprint(out.shard_fingerprints, out.channel_fingerprint);
  out.makespan_transfers = copro.metrics().TupleTransfers();
  out.total_transfers = out.makespan_transfers;
  out.lead_checkpoints = ctx.checkpoints;
  return out;
}

}  // namespace

Result<PhysicalPlan> BuildShardedPlan(core::Algorithm algorithm,
                                      const ShardedRunOptions& options) {
  const core::AlgorithmInfo& info = core::GetAlgorithmInfo(algorithm);
  PhysicalPlan plan;
  plan.algorithm = algorithm;
  plan.root_span = info.root_span;
  switch (algorithm) {
    case core::Algorithm::kAlgorithm5:
      plan.ops.push_back(std::make_unique<ShardScreenOp>("shard5-output"));
      plan.ops.push_back(std::make_unique<ShardRankEmitOp>());
      plan.ops.push_back(std::make_unique<ShardExchangeOp>(
          ShardExchangeOp::Mode::kOutputSlices, "shard5-output"));
      break;
    case core::Algorithm::kAlgorithm4:
      plan.ops.push_back(std::make_unique<ShardITupleScanOp>());
      plan.ops.push_back(std::make_unique<ShardExchangeOp>(
          ShardExchangeOp::Mode::kCountsAndStaging, "shard4-output"));
      // Lead-only tail (workers finish inside the exchange): the standard
      // serial decoy filter over the fully gathered staging region.
      plan.ops.push_back(std::make_unique<WindowedFilterOp>(0, "shard4-output"));
      plan.ops.push_back(std::make_unique<EmitOutputOp>());
      break;
    case core::Algorithm::kAlgorithm6:
      plan.ops.push_back(std::make_unique<ShardScreenOp>("shard6-output"));
      plan.ops.push_back(std::make_unique<ShardSegmentEmitOp>(
          options.epsilon, options.order_seed));
      plan.ops.push_back(std::make_unique<ShardExchangeOp>(
          ShardExchangeOp::Mode::kSegmentsAndBlemish, "shard6-output"));
      plan.ops.push_back(std::make_unique<SalvageOp>());
      plan.ops.push_back(std::make_unique<WindowedFilterOp>(0, "shard6-output"));
      plan.ops.push_back(std::make_unique<EmitOutputOp>());
      break;
    default:
      return Status::InvalidArgument(
          std::string(info.name) +
          " has no sharded execution plan (Chapter 5 exact/epsilon "
          "algorithms only)");
  }
  return plan;
}

Result<std::vector<relation::EncryptedRelation>> ReplicateSealed(
    sim::ShardedStore& store, const relation::Relation& rel,
    const crypto::Ocb* key, std::uint64_t padded_slots) {
  std::vector<relation::EncryptedRelation> replicas;
  replicas.reserve(store.shard_count());
  for (unsigned p = 0; p < store.shard_count(); ++p) {
    PPJ_ASSIGN_OR_RETURN(
        relation::EncryptedRelation sealed,
        relation::EncryptedRelation::Seal(&store.shard(p), rel, key,
                                          padded_slots));
    replicas.push_back(std::move(sealed));
  }
  return replicas;
}

Result<ShardedOutcome> RunShardedJoin(
    sim::ShardedStore& store, core::Algorithm algorithm,
    const std::vector<const core::MultiwayJoin*>& joins,
    const sim::CoprocessorOptions& base_options,
    const ShardedRunOptions& options) {
  const unsigned shards = options.shards;
  if (shards == 0 || shards != store.shard_count()) {
    return Status::InvalidArgument(
        "shard count must match the sharded store");
  }
  if (joins.size() != shards) {
    return Status::InvalidArgument("need one join description per shard");
  }
  for (const core::MultiwayJoin* join : joins) {
    if (join == nullptr) return Status::InvalidArgument("null shard join");
    PPJ_RETURN_NOT_OK(join->Validate());
  }
  if (shards == 1) {
    return RunSingleShard(store, algorithm, *joins[0], base_options, options);
  }

  sim::ShardChannel channel(shards);
  std::vector<ShardEnv> envs(shards);
  std::vector<std::unique_ptr<sim::Coprocessor>> copros;
  std::vector<std::unique_ptr<PlanContext>> ctxs;
  std::vector<PhysicalPlan> plans;
  copros.reserve(shards);
  ctxs.reserve(shards);
  plans.reserve(shards);
  for (unsigned p = 0; p < shards; ++p) {
    sim::CoprocessorOptions opt = base_options;
    // Worker seed offsets follow the parallel-engine convention (alg5
    // workers: +1000, ..., alg2: +4000); the lead keeps the base seed so a
    // one-shard deployment seeds exactly like the serial device.
    if (p > 0) opt.seed = base_options.seed + 5000 + p;
    copros.push_back(std::make_unique<sim::Coprocessor>(&store.shard(p), opt));
    envs[p] = ShardEnv{p, shards, &channel, &store};
    ctxs.push_back(std::make_unique<PlanContext>(nullptr, joins[p]));
    ctxs[p]->shard = &envs[p];
    ctxs[p]->cancel = base_options.cancel;
    PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                         BuildShardedPlan(algorithm, options));
    plans.push_back(std::move(plan));
  }

  std::vector<Status> statuses(shards);
  {
    const telemetry::SpanHandle tparent = telemetry::CurrentSpan();
    std::vector<std::thread> threads;
    threads.reserve(shards);
    for (unsigned p = 0; p < shards; ++p) {
      threads.emplace_back([&, p] {
        telemetry::ScopedContext tctx(tparent, copros[p].get());
        const std::string sname = "shard-" + std::to_string(p);
        PPJ_SPAN(sname);
        PlanExecutor executor;
        statuses[p] = executor.Run(*copros[p], plans[p], *ctxs[p]);
        // A failing shard poisons the channel so siblings blocked in the
        // exchange resolve with this status instead of wedging.
        if (!statuses[p].ok()) channel.Abort(statuses[p]);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (const Status& status : statuses) PPJ_RETURN_NOT_OK(status);

  ShardedOutcome out;
  out.output_region = ctxs[0]->output_region;
  out.result_size = ctxs[0]->output_slots;
  out.blemish = ctxs[0]->blemish;
  for (unsigned p = 0; p < shards; ++p) {
    const sim::TransferMetrics& m = copros[p]->metrics();
    out.per_shard.push_back(m);
    out.shard_fingerprints.push_back(copros[p]->trace().fingerprint());
    out.makespan_transfers =
        std::max(out.makespan_transfers, m.TupleTransfers());
    out.total_transfers += m.TupleTransfers();
  }
  out.channel = channel.stats();
  out.channel_fingerprint = channel.fingerprint();
  out.union_fingerprint =
      UnionFingerprint(out.shard_fingerprints, out.channel_fingerprint);
  out.lead_checkpoints = ctxs[0]->checkpoints;
  return out;
}

void PublishShardMetrics(metrics::Registry* registry,
                         const metrics::LabelSet& labels,
                         const ShardedOutcome& outcome) {
  metrics::Registry& reg =
      registry != nullptr ? *registry : metrics::Registry::Global();
  reg.GetCounter(metrics::kShardChannelBytes, labels)
      .Increment(outcome.channel.bytes);
  reg.GetCounter(metrics::kShardChannelMessages, labels)
      .Increment(outcome.channel.messages);
  reg.GetCounter(metrics::kShardExchangeRounds, labels)
      .Increment(outcome.channel.rounds);
  for (std::size_t i = 0; i < outcome.channel.max_mailbox_depth.size(); ++i) {
    metrics::LabelSet shard_labels = labels;
    shard_labels.op = "shard" + std::to_string(i);
    reg.GetGauge(metrics::kShardQueueDepth, shard_labels)
        .Set(outcome.channel.max_mailbox_depth[i]);
  }
}

}  // namespace ppj::plan
