#ifndef PPJ_PLAN_OPS_H_
#define PPJ_PLAN_OPS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "plan/context.h"
#include "plan/operator.h"
#include "relation/tuple.h"

namespace ppj::plan {

/// Evaluates the join predicate for one staged tuple pair (Chapter 4) or
/// one assembled iTuple (Chapter 5) and records the oblivious
/// match-evaluation note. The enclosing scan operator stages the inputs
/// and invokes Run once per comparison — the predicate is *always*
/// evaluated, for every pair, which is what keeps the evaluation count a
/// pure function of the input shape.
class PredicateEvaluateOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "predicate-evaluate"; }
  std::string_view cost_formula() const override {
    return "0 (in-device; one evaluation per staged pair)";
  }
  std::string_view trace_shape() const override {
    return "no host accesses; |A||B| (resp. L) evaluation notes";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

  // Staging area, set by the enclosing scan before each Run.
  const relation::Tuple* a = nullptr;  ///< Two-way: provider A tuple.
  const relation::Tuple* b = nullptr;  ///< Two-way: provider B tuple.
  bool a_real = false;
  bool b_real = false;
  const core::ITupleReader::Fetched* fetched = nullptr;  ///< Multiway.
  bool hit = false;  ///< Result of the last evaluation.
};

/// Resolves the Chapter 4 output-shape parameter N: the configured hint,
/// or the safe preprocessing scan (ComputeMaxMatches) when unknown; never
/// zero. Writes PlanContext::n.
class ResolveNOp final : public ObliviousOp {
 public:
  explicit ResolveNOp(std::uint64_t hint) : hint_(hint) {}
  std::string_view name() const override { return "resolve-n"; }
  std::string_view cost_formula() const override {
    return "0 if N known, else |A| + |A||B| (preprocessing scan)";
  }
  std::string_view trace_shape() const override {
    return "function of |A|, |B| only (full scan when N unknown)";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  std::uint64_t hint_ = 0;
};

/// Oblivious (bitonic) sort of provider B on the equality column, padding
/// last — Algorithm 3's preprocessing step. In-place over B's region;
/// every compare-exchange re-seals under B's key with fresh nonces.
class ObliviousSortOp final : public ObliviousOp {
 public:
  ObliviousSortOp(std::size_t col_b, bool provider_sorted)
      : col_b_(col_b), provider_sorted_(provider_sorted) {}
  std::string_view name() const override { return "sort-b"; }
  std::string_view cost_formula() const override {
    return "|B| log2(|B|)^2, or 0 when the provider pre-sorted";
  }
  std::string_view trace_shape() const override {
    return "fixed bitonic network over |B| slots (data-independent)";
  }
  bool ShouldRun(const PlanContext& ctx) const override;
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  std::size_t col_b_ = 0;
  bool provider_sorted_ = false;
};

/// The Chapter 4 mix-and-flush core: per A tuple, stream B through the
/// device writing exactly one oTuple per comparison into a scratch region,
/// and emit N slots of N|A|-shaped output. Three rotation disciplines:
///  - kRolling (Algorithm 1): 2N rolling scratch, bitonic sort every N
///    comparisons pushes reals ahead of decoys.
///  - kFullSort (Algorithm 1 variant): |B|-sized buffer, one full-size
///    oblivious sort per A tuple.
///  - kRing (Algorithm 3): N-slot circular scratch over sorted B; matches
///    overwrite the ring in place, no sort needed.
class ScratchRotateOp final : public ObliviousOp {
 public:
  enum class Mode { kRolling, kFullSort, kRing };
  explicit ScratchRotateOp(Mode mode) : mode_(mode) {}
  std::string_view name() const override { return "scratch-rotate"; }
  std::string_view cost_formula() const override;
  std::string_view trace_shape() const override {
    return "function of |A|, |B|, N only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  Status RunRolling(sim::Coprocessor& copro, PlanContext& ctx);
  Status RunFullSort(sim::Coprocessor& copro, PlanContext& ctx);
  Status RunRing(sim::Coprocessor& copro, PlanContext& ctx);

  PredicateEvaluateOp eval_;
  Mode mode_;
};

/// Algorithm 2's large-memory core: gamma passes over B per A tuple, an
/// in-memory block of ceil(N/gamma) results per pass, fixed-size
/// decoy-padded flushes. No oblivious sort anywhere.
class MultiPassScanOp final : public ObliviousOp {
 public:
  explicit MultiPassScanOp(std::uint64_t bookkeeping_slots)
      : bookkeeping_slots_(bookkeeping_slots) {}
  std::string_view name() const override { return "multi-pass-scan"; }
  std::string_view cost_formula() const override {
    return "|A| + gamma |A||B| (mix) + N|A| (output), gamma = ceil(N/M)";
  }
  std::string_view trace_shape() const override {
    return "function of |A|, |B|, N, M only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
  std::uint64_t bookkeeping_slots_ = 1;
};

/// Algorithm 4's first pass: one oTuple out per iTuple in, unconditionally
/// (real result or decoy), into an L-slot staging region. Constructs the
/// shared ITupleReader and publishes S. Completes the plan early when
/// S == 0 (the empty output size is itself public).
class ITupleScanOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "ituple-scan"; }
  std::string_view cost_formula() const override {
    return "2L (L iTuple reads + L staging writes)";
  }
  std::string_view trace_shape() const override {
    return "function of L only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
};

/// Algorithm 5 in one operator: repeated full scans over the iTuple space,
/// buffering up to M results past the persistent cursor and flushing them
/// at each scan boundary — the only observable output points.
class BufferedEmitOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "buffered-emit"; }
  std::string_view cost_formula() const override {
    return "ceil(S/M) L (scans) + S (output)";
  }
  std::string_view trace_shape() const override {
    return "function of L, S, M only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
};

/// Algorithm 6's screening pass: learns S with one sequential scan while
/// opportunistically buffering results. When everything fit (M >= S) the
/// operator flushes straight from memory and completes the plan — total
/// cost L + S, footnote 1 of Section 5.3.3.
class ScreenOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "screen"; }
  std::string_view cost_formula() const override {
    return "L (screening scan; + S flush when M >= S)";
  }
  std::string_view trace_shape() const override {
    return "function of L only (flush adds S, which is public)";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
};

/// Algorithm 6's main pass: visit iTuples in MLFSR-random order, buffer
/// matches, flush exactly M decoy-padded oTuples per n*-sized segment into
/// staging. Sets the blemish flag on segment overflow — the
/// epsilon-probability event the privacy level budgets for.
class EpsilonPartitionOp final : public ObliviousOp {
 public:
  EpsilonPartitionOp(double epsilon, std::uint64_t order_seed,
                     std::uint64_t forced_segment_size)
      : epsilon_(epsilon),
        order_seed_(order_seed),
        forced_segment_size_(forced_segment_size) {}
  std::string_view name() const override { return "epsilon-partition"; }
  std::string_view cost_formula() const override {
    return "L (random-order scan) + ceil(L/n*) M (staging flushes)";
  }
  std::string_view trace_shape() const override {
    return "function of L, S, M, epsilon only (seeded visiting order)";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
  double epsilon_ = 1e-20;
  std::uint64_t order_seed_ = 0x5eed;
  std::uint64_t forced_segment_size_ = 0;
};

/// Algorithm 6's salvage action (Section 5.3.3): after a blemish,
/// re-output everything with an Algorithm 5 sweep. Runs only when the
/// blemish flag is set — the extra scans' existence is the privacy loss
/// the epsilon bound budgets for.
class SalvageOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "salvage"; }
  std::string_view cost_formula() const override {
    return "CostAlgorithm5(L, S, M), charged with probability <= epsilon";
  }
  std::string_view trace_shape() const override {
    return "Algorithm 5's shape; occurrence itself is the epsilon event";
  }
  bool ShouldRun(const PlanContext& ctx) const override;
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;
};

/// Oblivious decoy filter: staging_slots oTuples -> exactly S results via
/// the windowed bitonic filter (Section 5.2). Shared tail of Algorithms 4
/// and 6.
class WindowedFilterOp final : public ObliviousOp {
 public:
  WindowedFilterOp(std::uint64_t filter_delta, std::string output_name)
      : filter_delta_(filter_delta), output_name_(std::move(output_name)) {}
  std::string_view name() const override { return "filter"; }
  std::string_view cost_formula() const override {
    return "(omega - S)/delta (S + delta) log2(S + delta)^2, omega = "
           "staging slots";
  }
  std::string_view trace_shape() const override {
    return "function of staging slots, S, delta only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  std::uint64_t filter_delta_ = 0;
  std::string output_name_;
};

/// Marks the S output slots delivered: one observable disk event per
/// result slot (pure accounting; the sealed bytes are already in place).
class EmitOutputOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "output"; }
  std::string_view cost_formula() const override {
    return "0 transfers; S disk events";
  }
  std::string_view trace_shape() const override {
    return "function of S only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;
};

}  // namespace ppj::plan

#endif  // PPJ_PLAN_OPS_H_
