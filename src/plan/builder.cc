#include "plan/builder.h"

#include <memory>
#include <string>

#include "common/math.h"
#include "plan/ops.h"
#include "relation/predicate.h"

namespace ppj::plan {

namespace {

/// Chapter 4 prologue: the family is two-way; validation runs here, before
/// any coprocessor interaction.
Result<PhysicalPlan> Ch4Plan(core::Algorithm algorithm,
                             const core::TwoWayJoin* two_way) {
  const core::AlgorithmInfo& info = core::GetAlgorithmInfo(algorithm);
  if (two_way == nullptr) {
    return Status::InvalidArgument(std::string(info.name) +
                                   " needs a two-way join description");
  }
  PPJ_RETURN_NOT_OK(two_way->Validate());
  PhysicalPlan plan;
  plan.algorithm = algorithm;
  plan.root_span = info.root_span;
  return plan;
}

/// Chapter 5 prologue: the family is multiway.
Result<PhysicalPlan> Ch5Plan(core::Algorithm algorithm,
                             const core::MultiwayJoin* multiway) {
  const core::AlgorithmInfo& info = core::GetAlgorithmInfo(algorithm);
  if (multiway == nullptr) {
    return Status::InvalidArgument(std::string(info.name) +
                                   " needs a multiway join description");
  }
  PPJ_RETURN_NOT_OK(multiway->Validate());
  PhysicalPlan plan;
  plan.algorithm = algorithm;
  plan.root_span = info.root_span;
  return plan;
}

}  // namespace

Result<PhysicalPlan> BuildAlgorithm1Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options) {
  (void)multiway;
  PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       Ch4Plan(core::Algorithm::kAlgorithm1, two_way));
  plan.ops.push_back(std::make_unique<ResolveNOp>(options.n));
  plan.ops.push_back(
      std::make_unique<ScratchRotateOp>(ScratchRotateOp::Mode::kRolling));
  return plan;
}

Result<PhysicalPlan> BuildAlgorithm1VariantPlan(
    const core::TwoWayJoin* two_way, const core::MultiwayJoin* multiway,
    const JoinPlanOptions& options) {
  (void)multiway;
  PPJ_ASSIGN_OR_RETURN(
      PhysicalPlan plan,
      Ch4Plan(core::Algorithm::kAlgorithm1Variant, two_way));
  plan.ops.push_back(std::make_unique<ResolveNOp>(options.n));
  plan.ops.push_back(
      std::make_unique<ScratchRotateOp>(ScratchRotateOp::Mode::kFullSort));
  return plan;
}

Result<PhysicalPlan> BuildAlgorithm2Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options) {
  (void)multiway;
  PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       Ch4Plan(core::Algorithm::kAlgorithm2, two_way));
  plan.ops.push_back(std::make_unique<ResolveNOp>(options.n));
  plan.ops.push_back(
      std::make_unique<MultiPassScanOp>(options.bookkeeping_slots));
  return plan;
}

Result<PhysicalPlan> BuildAlgorithm3Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options) {
  (void)multiway;
  PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       Ch4Plan(core::Algorithm::kAlgorithm3, two_way));
  if (!two_way->predicate->is_equality()) {
    return Status::InvalidArgument(
        "Algorithm 3 is the sort-based equijoin; it needs an "
        "EqualityPredicate (use Algorithm 1/2 for general predicates)");
  }
  const auto* eq =
      dynamic_cast<const relation::EqualityPredicate*>(two_way->predicate);
  if (eq == nullptr) {
    return Status::InvalidArgument(
        "equality predicate must be an EqualityPredicate instance");
  }
  if (!IsPowerOfTwo(two_way->b->padded_size())) {
    return Status::InvalidArgument(
        "Algorithm 3 needs B sealed into a power-of-two padded region for "
        "the oblivious sort");
  }
  plan.ops.push_back(std::make_unique<ResolveNOp>(options.n));
  plan.ops.push_back(
      std::make_unique<ObliviousSortOp>(eq->col_b(), options.provider_sorted));
  plan.ops.push_back(
      std::make_unique<ScratchRotateOp>(ScratchRotateOp::Mode::kRing));
  return plan;
}

Result<PhysicalPlan> BuildAlgorithm4Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options) {
  (void)two_way;
  PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       Ch5Plan(core::Algorithm::kAlgorithm4, multiway));
  plan.ops.push_back(std::make_unique<ITupleScanOp>());
  plan.ops.push_back(std::make_unique<WindowedFilterOp>(options.filter_delta,
                                                        "alg4-output"));
  plan.ops.push_back(std::make_unique<EmitOutputOp>());
  return plan;
}

Result<PhysicalPlan> BuildAlgorithm5Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options) {
  (void)two_way;
  (void)options;
  PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       Ch5Plan(core::Algorithm::kAlgorithm5, multiway));
  plan.ops.push_back(std::make_unique<BufferedEmitOp>());
  return plan;
}

Result<PhysicalPlan> BuildAlgorithm6Plan(const core::TwoWayJoin* two_way,
                                         const core::MultiwayJoin* multiway,
                                         const JoinPlanOptions& options) {
  (void)two_way;
  PPJ_ASSIGN_OR_RETURN(PhysicalPlan plan,
                       Ch5Plan(core::Algorithm::kAlgorithm6, multiway));
  plan.ops.push_back(std::make_unique<ScreenOp>());
  plan.ops.push_back(std::make_unique<EpsilonPartitionOp>(
      options.epsilon, options.order_seed, options.forced_segment_size));
  plan.ops.push_back(std::make_unique<SalvageOp>());
  plan.ops.push_back(std::make_unique<WindowedFilterOp>(options.filter_delta,
                                                        "alg6-output"));
  plan.ops.push_back(std::make_unique<EmitOutputOp>());
  return plan;
}

Result<PhysicalPlan> BuildJoinPlan(core::Algorithm algorithm,
                                   const core::TwoWayJoin* two_way,
                                   const core::MultiwayJoin* multiway,
                                   const JoinPlanOptions& options) {
  const core::AlgorithmInfo& info = core::GetAlgorithmInfo(algorithm);
  if (info.build == nullptr) {
    return Status::InvalidArgument(std::string(info.name) +
                                   " has no registered plan builder");
  }
  return info.build(two_way, multiway, options);
}

}  // namespace ppj::plan
