#include "plan/executor.h"

#include <string>

#include "common/telemetry.h"
#include "core/parallel.h"

namespace ppj::plan {

Status PlanExecutor::Run(sim::Coprocessor& copro, PhysicalPlan& plan,
                         PlanContext& ctx) {
  PPJ_RETURN_NOT_OK(ctx.InitWireShape());
  metrics::Registry& registry = ctx.metrics_registry != nullptr
                                    ? *ctx.metrics_registry
                                    : metrics::Registry::Global();
  // Lend the plan's arena pool to the device for the duration of the run;
  // restore on every exit path so the coprocessor never outlives a pool it
  // still points at.
  copro.set_arena_pool(&ctx.arena_pool);
  struct PoolGuard {
    sim::Coprocessor* copro;
    ~PoolGuard() { copro->set_arena_pool(nullptr); }
  } pool_guard{&copro};
  PPJ_DEVICE_SPAN(&copro, plan.root_span);
  for (const std::unique_ptr<ObliviousOp>& op : plan.ops) {
    if (ctx.finished) break;
    // Cooperative checkpoint at the operator boundary: data-independent
    // (runs whether or not the operator would), so an uncancelled run's
    // trace shape and fingerprints are untouched.
    if (ctx.cancel != nullptr) PPJ_RETURN_NOT_OK(ctx.cancel->Check());
    if (!op->ShouldRun(ctx)) continue;
    // Per-operator retry attribution: like the checkpoint below, a pure
    // read of the device's public counters (trace-neutral). Fault-free
    // runs have zero deltas and touch the registry not at all.
    const std::uint64_t retries_before = copro.metrics().host_retries;
    const std::uint64_t backoff_before = copro.metrics().backoff_cycles;
    PPJ_SPAN(op->name());
    PPJ_RETURN_NOT_OK(op->Run(copro, ctx));
    ctx.checkpoints.push_back(core::OpCheckpoint{
        std::string(op->name()), copro.trace().fingerprint()});
    const std::uint64_t retries = copro.metrics().host_retries - retries_before;
    const std::uint64_t backoff =
        copro.metrics().backoff_cycles - backoff_before;
    if (retries != 0 || backoff != 0) {
      metrics::LabelSet labels;
      labels.algorithm = core::ToString(plan.algorithm);
      labels.op = std::string(op->name());
      if (retries != 0) {
        registry.GetCounter(metrics::kOpHostRetries, labels).Increment(retries);
      }
      if (backoff != 0) {
        registry.GetCounter(metrics::kOpBackoffCycles, labels)
            .Increment(backoff);
      }
    }
  }
  return Status::OK();
}

Result<core::ParallelOutcome> RunParallelPlan(
    sim::HostStore* host, core::Algorithm algorithm,
    const core::MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& copro_options,
    const core::ParallelRunOptions& run_options) {
  const core::AlgorithmInfo& info = core::GetAlgorithmInfo(algorithm);
  if (info.parallel == nullptr) {
    return Status::InvalidArgument(
        std::string(info.name) +
        " has no registered service-level parallel engine");
  }
  return info.parallel(host, join, parallelism, copro_options, run_options);
}

}  // namespace ppj::plan
