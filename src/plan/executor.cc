#include "plan/executor.h"

#include <string>

#include "common/telemetry.h"
#include "core/parallel.h"

namespace ppj::plan {

Status PlanExecutor::Run(sim::Coprocessor& copro, PhysicalPlan& plan,
                         PlanContext& ctx) {
  PPJ_RETURN_NOT_OK(ctx.InitWireShape());
  PPJ_DEVICE_SPAN(&copro, plan.root_span);
  for (const std::unique_ptr<ObliviousOp>& op : plan.ops) {
    if (ctx.finished) break;
    if (!op->ShouldRun(ctx)) continue;
    PPJ_SPAN(op->name());
    PPJ_RETURN_NOT_OK(op->Run(copro, ctx));
    ctx.checkpoints.push_back(core::OpCheckpoint{
        std::string(op->name()), copro.trace().fingerprint()});
  }
  return Status::OK();
}

Result<core::ParallelOutcome> RunParallelPlan(
    sim::HostStore* host, core::Algorithm algorithm,
    const core::MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& copro_options,
    const core::ParallelRunOptions& run_options) {
  const core::AlgorithmInfo& info = core::GetAlgorithmInfo(algorithm);
  if (info.parallel == nullptr) {
    return Status::InvalidArgument(
        std::string(info.name) +
        " has no registered service-level parallel engine");
  }
  return info.parallel(host, join, parallelism, copro_options, run_options);
}

}  // namespace ppj::plan
