#include <algorithm>

#include "plan/ops.h"

namespace ppj::plan {

Status PredicateEvaluateOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  if (ctx.two_way() != nullptr) {
    hit = a_real && b_real && ctx.two_way()->predicate->Match(*a, *b);
  } else {
    hit = fetched->real &&
          ctx.multiway()->predicate->Satisfy(*fetched->components);
  }
  copro.NoteMatchEvaluation(hit);
  return Status::OK();
}

Status ResolveNOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  std::uint64_t n = hint_;
  if (n == 0) {
    PPJ_ASSIGN_OR_RETURN(n, core::ComputeMaxMatches(copro, *ctx.two_way()));
  }
  ctx.n = std::max<std::uint64_t>(n, 1);
  return Status::OK();
}

Status EmitOutputOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  for (std::uint64_t k = 0; k < ctx.output_slots; ++k) {
    PPJ_RETURN_NOT_OK(copro.DiskWrite(ctx.output_region, k));
  }
  return Status::OK();
}

}  // namespace ppj::plan
