#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "analysis/optimizer.h"
#include "common/math.h"
#include "common/telemetry.h"
#include "crypto/mlfsr.h"
#include "plan/ops_shard.h"
#include "sim/shard_channel.h"
#include "sim/sharded_store.h"

namespace ppj::plan {
namespace {

// Fixed-size control envelope: every data-dependent scalar that crosses the
// channel (a result size, a blemish flag) travels in exactly these 16 bytes,
// so the adversary-visible message size never depends on the value.
constexpr std::size_t kControlBytes = 16;

sim::ChannelMessage MakeControl(std::uint64_t value, std::uint64_t flags) {
  sim::ChannelMessage msg;
  msg.slots = 1;
  msg.bytes.resize(kControlBytes);
  for (unsigned i = 0; i < 8; ++i) {
    msg.bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
    msg.bytes[8 + i] = static_cast<std::uint8_t>(flags >> (8 * i));
  }
  return msg;
}

Status ParseControl(const sim::ChannelMessage& msg, std::uint64_t* value,
                    std::uint64_t* flags) {
  if (msg.bytes.size() != kControlBytes || msg.slots != 1) {
    return Status::Internal("malformed shard control envelope");
  }
  *value = 0;
  *flags = 0;
  for (unsigned i = 0; i < 8; ++i) {
    *value |= static_cast<std::uint64_t>(msg.bytes[i]) << (8 * i);
    *flags |= static_cast<std::uint64_t>(msg.bytes[8 + i]) << (8 * i);
  }
  return Status::OK();
}

/// Host-side gather of `count` sealed slots into a channel message, staged
/// through the sending shard's arena pool. The bytes move verbatim — no
/// re-sealing — which is exactly why all shards must share region-creation
/// histories (see ShardedStore): the position-bound nonces only verify on
/// the receiver because (region, index) match.
Result<sim::ChannelMessage> StageSlice(const ShardEnv& env,
                                       sim::HostStore& host,
                                       sim::RegionId region,
                                       std::uint64_t first,
                                       std::uint64_t count) {
  sim::ChannelMessage msg;
  msg.slots = count;
  if (count == 0) return msg;
  const std::size_t bytes = count * host.RegionSlotSize(region);
  sim::ArenaLease lease = env.store != nullptr
                              ? env.store->arena_pool(env.shard_id).Acquire(bytes)
                              : sim::ArenaLease();
  if (!lease.empty()) {
    PPJ_RETURN_NOT_OK(host.ReadRange(region, first, count, lease.data(), bytes));
    msg.bytes.assign(lease.data(), lease.data() + bytes);
  } else {
    msg.bytes.resize(bytes);
    PPJ_RETURN_NOT_OK(
        host.ReadRange(region, first, count, msg.bytes.data(), bytes));
  }
  return msg;
}

/// Lead-side scatter of a gathered slice into its global position. The
/// expected width is computed from public parameters; a mismatch means a
/// shard violated the protocol, not a data-dependent condition.
Status ApplySlice(sim::HostStore& host, sim::RegionId region,
                  std::uint64_t first, std::uint64_t expect,
                  const sim::ChannelMessage& msg) {
  if (msg.slots != expect) {
    return Status::Internal("shard exchange slice width mismatch");
  }
  if (expect == 0) return Status::OK();
  const std::size_t bytes = expect * host.RegionSlotSize(region);
  if (msg.bytes.size() != bytes) {
    return Status::Internal("shard exchange slice byte-length mismatch");
  }
  return host.WriteRange(region, first, expect, msg.bytes.data(), bytes);
}

Status RequireShardEnv(const PlanContext& ctx, const ShardEnv** env) {
  if (ctx.shard == nullptr || ctx.shard->channel == nullptr) {
    return Status::InvalidArgument(
        "shard operator requires a sharded execution environment");
  }
  *env = ctx.shard;
  return Status::OK();
}

/// Public-parameter block partition: element range [lo, hi) owned by shard
/// `id` out of `count` when `total` elements are split into ceil-sized
/// blocks. Used for ranks (Alg 5), iTuple indices (Alg 4) and segment
/// indices (Alg 6) alike — never for anything data-dependent.
void BlockRange(std::uint64_t total, unsigned id, unsigned count,
                std::uint64_t* lo, std::uint64_t* hi) {
  const std::uint64_t blk = CeilDiv(total, static_cast<std::uint64_t>(count));
  *lo = std::min<std::uint64_t>(total, id * blk);
  *hi = std::min<std::uint64_t>(total, (id + 1) * blk);
}

}  // namespace

Status ShardScreenOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const ShardEnv* env = nullptr;
  PPJ_RETURN_NOT_OK(RequireShardEnv(ctx, &env));
  if (env->lead()) {
    // The lead screens its replica — the full L-read pass of the serial
    // algorithms — and broadcasts S. Deliberately no Algorithm 6
    // buffered-all fast path here: the sharded plan always proceeds to the
    // partitioned main pass so the per-shard trace shape stays uniform.
    PPJ_ASSIGN_OR_RETURN(const std::uint64_t s,
                         core::ScreenResultSize(copro, *ctx.multiway()));
    ctx.s = s;
    env->channel->BeginRound("screen-broadcast");
    for (unsigned p = 1; p < env->shard_count; ++p) {
      PPJ_RETURN_NOT_OK(env->channel->Send(0, p, MakeControl(s, 0)));
    }
  } else {
    PPJ_ASSIGN_OR_RETURN(sim::ChannelMessage msg,
                         env->channel->Recv(env->shard_id, 0, ctx.cancel));
    std::uint64_t value = 0;
    std::uint64_t flags = 0;
    PPJ_RETURN_NOT_OK(ParseControl(msg, &value, &flags));
    ctx.s = value;
  }
  if (ctx.s == 0) {
    // Empty result: the size is public, so every shard finishes now. Only
    // the lead owns the delivered (empty) output region.
    if (env->lead()) {
      ctx.output_region = ctx.CreateRegion(copro, output_name_, 0);
      ctx.output_slots = 0;
    }
    ctx.finished = true;
  }
  return Status::OK();
}

Status ShardRankEmitOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const ShardEnv* env = nullptr;
  PPJ_RETURN_NOT_OK(RequireShardEnv(ctx, &env));
  const core::MultiwayJoin& join = *ctx.multiway();
  const std::uint64_t m = copro.memory_tuples();
  if (m == 0) {
    return Status::CapacityExceeded(
        "sharded Algorithm 5 needs at least one result slot");
  }
  const std::uint64_t s = ctx.s;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  BlockRange(s, env->shard_id, env->shard_count, &lo, &hi);

  // Every shard creates the S-slot output region — including shards whose
  // rank range is empty — so region-creation histories stay identical and
  // the gathered slices authenticate on the lead.
  const sim::RegionId out = ctx.CreateRegion(copro, "shard5-output", s);
  ctx.output_region = out;
  ctx.output_slots = s;
  if (lo >= hi) return Status::OK();

  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer,
                       sim::SecureBuffer::Allocate(copro, m));
  ctx.reader.emplace(&copro, join.tables);
  core::ITupleReader& reader = *ctx.reader;
  const std::uint64_t l = reader.index().size();

  // Algorithm 5's scan-per-bufferful loop restricted to the global rank
  // window [lo, hi): slots land at their *global* indices, so no slot moves
  // twice and the position-bound nonces are final.
  std::uint64_t cursor = lo;
  std::uint64_t written = lo;
  reader.set_batch_hint(copro.BatchLimit(buffer.capacity()));
  while (cursor < hi) {
    buffer.Clear();
    const std::uint64_t take = std::min<std::uint64_t>(m, hi - cursor);
    std::uint64_t rank = 0;
    {
      PPJ_SPAN("scan");
      for (std::uint64_t idx = 0; idx < l; ++idx) {
        PPJ_ASSIGN_OR_RETURN(core::ITupleReader::Fetched fetched,
                             reader.Fetch(idx));
        eval_.fetched = &fetched;
        PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
        if (eval_.hit) {
          if (rank >= cursor && rank < cursor + take) {
            PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
                core::ITupleReader::JoinedPayload(*fetched.components))));
          }
          ++rank;
        }
      }
    }
    PPJ_SPAN("output");
    PPJ_ASSIGN_OR_RETURN(
        sim::WriteRun flush,
        copro.PutSealedRange(out, written, buffer.size(), join.output_key));
    for (std::size_t k = 0; k < buffer.size(); ++k) {
      PPJ_RETURN_NOT_OK(flush.Append(buffer.At(k)));
      PPJ_RETURN_NOT_OK(copro.DiskWrite(out, written + k));
    }
    PPJ_RETURN_NOT_OK(flush.Flush());
    written += buffer.size();
    cursor += take;
  }
  return Status::OK();
}

Status ShardITupleScanOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const ShardEnv* env = nullptr;
  PPJ_RETURN_NOT_OK(RequireShardEnv(ctx, &env));
  const core::MultiwayJoin& join = *ctx.multiway();
  ctx.reader.emplace(&copro, join.tables);
  core::ITupleReader& reader = *ctx.reader;
  const std::uint64_t l = reader.index().size();

  // Full-size staging on every shard (identical region histories); this
  // shard fills only its iTuple window, at global indices.
  const sim::RegionId staging = ctx.CreateRegion(copro, "shard4-staging", l);
  ctx.staging_region = staging;
  ctx.staging_slots = l;

  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  BlockRange(l, env->shard_id, env->shard_count, &lo, &hi);

  reader.set_batch_hint(
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1)));
  core::BatchedSealWriter writer(&copro, staging, join.output_key);
  std::uint64_t s = 0;
  {
    PPJ_SPAN("mix");
    for (std::uint64_t idx = lo; idx < hi; ++idx) {
      PPJ_ASSIGN_OR_RETURN(core::ITupleReader::Fetched fetched,
                           reader.Fetch(idx));
      eval_.fetched = &fetched;
      PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
      if (eval_.hit) {
        ++s;
        PPJ_RETURN_NOT_OK(writer.Put(
            idx, relation::wire::MakeReal(
                     core::ITupleReader::JoinedPayload(*fetched.components))));
      } else {
        PPJ_RETURN_NOT_OK(writer.Put(idx, ctx.decoy));
      }
    }
    PPJ_RETURN_NOT_OK(writer.Flush());
  }

  // Shard-local match count; the exchange aggregates the global S on the
  // lead inside a fixed-size envelope.
  ctx.s = s;
  return Status::OK();
}

Status ShardSegmentEmitOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const ShardEnv* env = nullptr;
  PPJ_RETURN_NOT_OK(RequireShardEnv(ctx, &env));
  const core::MultiwayJoin& join = *ctx.multiway();
  const std::uint64_t m = copro.memory_tuples();
  if (m == 0) {
    return Status::CapacityExceeded(
        "sharded Algorithm 6 needs at least one result slot");
  }
  ctx.reader.emplace(&copro, join.tables);
  core::ITupleReader& reader = *ctx.reader;
  const std::uint64_t l = reader.index().size();

  // n* from the global (L, S, M, epsilon) — identical on every shard, so
  // the segment grid is shared and the staging regions line up.
  const std::uint64_t n_star = analysis::OptimalSegmentSize(l, ctx.s, m, epsilon_);
  ctx.n_star = n_star;
  const std::uint64_t segments = CeilDiv(l, n_star);
  const std::uint64_t staging_slots = segments * m;
  ctx.staging_slots = staging_slots;
  ctx.staging_region = ctx.CreateRegion(copro, "shard6-staging", staging_slots);

  std::uint64_t seg_lo = 0;
  std::uint64_t seg_hi = 0;
  BlockRange(segments, env->shard_id, env->shard_count, &seg_lo, &seg_hi);
  if (seg_lo >= seg_hi) return Status::OK();

  // All shards walk the same MLFSR order (same seed — Section 5.3.5's
  // shared visiting order); this shard evaluates only the positions that
  // fall inside its segment range.
  PPJ_ASSIGN_OR_RETURN(crypto::RandomOrder order,
                       crypto::RandomOrder::Create(l, order_seed_));
  for (std::uint64_t skip = 0; skip < seg_lo * n_star; ++skip) order.Next();

  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer,
                       sim::SecureBuffer::Allocate(copro, m));
  const std::uint64_t pos_hi = std::min<std::uint64_t>(seg_hi * n_star, l);
  bool blemish = false;
  std::uint64_t seg = seg_lo;
  std::uint64_t in_segment = 0;
  {
    PPJ_SPAN("main");
    for (std::uint64_t pos = seg_lo * n_star; pos < pos_hi; ++pos) {
      const std::uint64_t idx = order.Next();
      PPJ_ASSIGN_OR_RETURN(core::ITupleReader::Fetched fetched,
                           reader.Fetch(idx));
      eval_.fetched = &fetched;
      PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
      if (eval_.hit) {
        if (buffer.full()) {
          blemish = true;  // segment overflow: the epsilon-probability event
        } else {
          PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
              core::ITupleReader::JoinedPayload(*fetched.components))));
        }
      }
      ++in_segment;
      if (in_segment == n_star || pos + 1 == pos_hi) {
        PPJ_ASSIGN_OR_RETURN(
            sim::WriteRun flush,
            copro.PutSealedRange(ctx.staging_region, seg * m, m,
                                 join.output_key));
        for (std::uint64_t k = 0; k < m; ++k) {
          PPJ_RETURN_NOT_OK(
              flush.Append(k < buffer.size() ? buffer.At(k) : ctx.decoy));
        }
        PPJ_RETURN_NOT_OK(flush.Flush());
        buffer.Clear();
        in_segment = 0;
        ++seg;
      }
    }
  }
  ctx.blemish = blemish;
  return Status::OK();
}

std::string_view ShardExchangeOp::cost_formula() const {
  switch (mode_) {
    case Mode::kOutputSlices:
      return "S - ceil(S/P) gathered slots; no control envelopes";
    case Mode::kCountsAndStaging:
      return "L - ceil(L/P) gathered slots + P-1 count envelopes";
    case Mode::kSegmentsAndBlemish:
      return "(segments - ceil(segments/P)) M gathered slots + P-1 "
             "blemish envelopes";
  }
  return "";
}

Status ShardExchangeOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  switch (mode_) {
    case Mode::kOutputSlices:
      return RunOutputSlices(copro, ctx);
    case Mode::kCountsAndStaging:
      return RunCountsAndStaging(copro, ctx);
    case Mode::kSegmentsAndBlemish:
      return RunSegmentsAndBlemish(copro, ctx);
  }
  return Status::Internal("unknown shard exchange mode");
}

Status ShardExchangeOp::RunOutputSlices(sim::Coprocessor& copro,
                                        PlanContext& ctx) {
  const ShardEnv* env = nullptr;
  PPJ_RETURN_NOT_OK(RequireShardEnv(ctx, &env));
  const std::uint64_t s = ctx.s;
  if (!env->lead()) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    BlockRange(s, env->shard_id, env->shard_count, &lo, &hi);
    PPJ_ASSIGN_OR_RETURN(
        sim::ChannelMessage msg,
        StageSlice(*env, *copro.host(), ctx.output_region, lo, hi - lo));
    PPJ_RETURN_NOT_OK(env->channel->Send(env->shard_id, 0, std::move(msg)));
    ctx.finished = true;
    return Status::OK();
  }
  env->channel->BeginRound("exchange-output");
  for (unsigned p = 1; p < env->shard_count; ++p) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    BlockRange(s, p, env->shard_count, &lo, &hi);
    PPJ_ASSIGN_OR_RETURN(sim::ChannelMessage msg,
                         env->channel->Recv(0, p, ctx.cancel));
    PPJ_RETURN_NOT_OK(
        ApplySlice(*copro.host(), ctx.output_region, lo, hi - lo, msg));
  }
  return Status::OK();
}

Status ShardExchangeOp::RunCountsAndStaging(sim::Coprocessor& copro,
                                            PlanContext& ctx) {
  const ShardEnv* env = nullptr;
  PPJ_RETURN_NOT_OK(RequireShardEnv(ctx, &env));
  const std::uint64_t l = ctx.staging_slots;
  if (!env->lead()) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    BlockRange(l, env->shard_id, env->shard_count, &lo, &hi);
    PPJ_RETURN_NOT_OK(
        env->channel->Send(env->shard_id, 0, MakeControl(ctx.s, 0)));
    PPJ_ASSIGN_OR_RETURN(
        sim::ChannelMessage msg,
        StageSlice(*env, *copro.host(), ctx.staging_region, lo, hi - lo));
    PPJ_RETURN_NOT_OK(env->channel->Send(env->shard_id, 0, std::move(msg)));
    ctx.finished = true;
    return Status::OK();
  }
  // Per-lane FIFO ordering guarantees the count envelope arrives before the
  // staging slice on each worker's lane, so two sweeps over the workers —
  // one per round — drain exactly the right messages.
  env->channel->BeginRound("exchange-counts");
  std::uint64_t total = ctx.s;
  for (unsigned p = 1; p < env->shard_count; ++p) {
    PPJ_ASSIGN_OR_RETURN(sim::ChannelMessage msg,
                         env->channel->Recv(0, p, ctx.cancel));
    std::uint64_t value = 0;
    std::uint64_t flags = 0;
    PPJ_RETURN_NOT_OK(ParseControl(msg, &value, &flags));
    total += value;
  }
  env->channel->BeginRound("exchange-staging");
  for (unsigned p = 1; p < env->shard_count; ++p) {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    BlockRange(l, p, env->shard_count, &lo, &hi);
    PPJ_ASSIGN_OR_RETURN(sim::ChannelMessage msg,
                         env->channel->Recv(0, p, ctx.cancel));
    PPJ_RETURN_NOT_OK(
        ApplySlice(*copro.host(), ctx.staging_region, lo, hi - lo, msg));
  }
  ctx.s = total;
  if (total == 0) {
    ctx.output_region = ctx.CreateRegion(copro, empty_output_name_, 0);
    ctx.output_slots = 0;
    ctx.finished = true;
  }
  return Status::OK();
}

Status ShardExchangeOp::RunSegmentsAndBlemish(sim::Coprocessor& copro,
                                              PlanContext& ctx) {
  const ShardEnv* env = nullptr;
  PPJ_RETURN_NOT_OK(RequireShardEnv(ctx, &env));
  const std::uint64_t m = copro.memory_tuples();
  const std::uint64_t segments = m == 0 ? 0 : ctx.staging_slots / m;
  if (!env->lead()) {
    std::uint64_t seg_lo = 0;
    std::uint64_t seg_hi = 0;
    BlockRange(segments, env->shard_id, env->shard_count, &seg_lo, &seg_hi);
    PPJ_RETURN_NOT_OK(env->channel->Send(env->shard_id, 0,
                                         MakeControl(ctx.blemish ? 1 : 0, 0)));
    // The segment gather is unconditional — it happens whether or not any
    // shard blemished, and a shard with no segments still sends a
    // zero-width slice — so the channel shape never depends on the data.
    PPJ_ASSIGN_OR_RETURN(
        sim::ChannelMessage msg,
        StageSlice(*env, *copro.host(), ctx.staging_region, seg_lo * m,
                   (seg_hi - seg_lo) * m));
    PPJ_RETURN_NOT_OK(env->channel->Send(env->shard_id, 0, std::move(msg)));
    ctx.finished = true;
    return Status::OK();
  }
  env->channel->BeginRound("exchange-blemish");
  for (unsigned p = 1; p < env->shard_count; ++p) {
    PPJ_ASSIGN_OR_RETURN(sim::ChannelMessage msg,
                         env->channel->Recv(0, p, ctx.cancel));
    std::uint64_t value = 0;
    std::uint64_t flags = 0;
    PPJ_RETURN_NOT_OK(ParseControl(msg, &value, &flags));
    if (value != 0) ctx.blemish = true;
  }
  env->channel->BeginRound("exchange-segments");
  for (unsigned p = 1; p < env->shard_count; ++p) {
    std::uint64_t seg_lo = 0;
    std::uint64_t seg_hi = 0;
    BlockRange(segments, p, env->shard_count, &seg_lo, &seg_hi);
    PPJ_ASSIGN_OR_RETURN(sim::ChannelMessage msg,
                         env->channel->Recv(0, p, ctx.cancel));
    PPJ_RETURN_NOT_OK(ApplySlice(*copro.host(), ctx.staging_region,
                                 seg_lo * m, (seg_hi - seg_lo) * m, msg));
  }
  return Status::OK();
}

}  // namespace ppj::plan
