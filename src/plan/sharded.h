#ifndef PPJ_PLAN_SHARDED_H_
#define PPJ_PLAN_SHARDED_H_

#include <cstdint>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "core/algorithm.h"
#include "core/join_spec.h"
#include "core/privacy_auditor.h"
#include "relation/encrypted_relation.h"
#include "sim/coprocessor.h"
#include "sim/shard_channel.h"
#include "sim/sharded_store.h"

namespace ppj::plan {

/// Knobs of one sharded execution. The shard count is fixed by the calling
/// contract (ExecuteOptions::shards at the service layer) — a deployment
/// parameter, never derived from the data.
struct ShardedRunOptions {
  unsigned shards = 1;
  /// Algorithm 6 privacy slack / visiting-order seed, as in the serial and
  /// parallel engines.
  double epsilon = 1e-20;
  std::uint64_t order_seed = 0x5eed;
};

/// What a sharded run produced, plus the full adversary surface needed for
/// the union-of-traces audit: every shard's trace fingerprint and the
/// channel's message-shape fingerprint.
struct ShardedOutcome {
  /// Delivered output region — lives in shard 0 (the lead).
  sim::RegionId output_region = 0;
  std::uint64_t result_size = 0;
  bool blemish = false;  ///< Algorithm 6 epsilon event (any shard).

  std::vector<sim::TransferMetrics> per_shard;
  std::vector<sim::TraceFingerprint> shard_fingerprints;
  sim::ChannelStats channel;
  sim::TraceFingerprint channel_fingerprint;
  /// Hash over (every shard's fingerprint in shard order, then the channel
  /// fingerprint): the single value the auditor's union rule compares.
  sim::TraceFingerprint union_fingerprint;

  /// Parallel completion time in the paper's transfer-count model: the
  /// maximum TupleTransfers of any single shard (cf. ParallelOutcome).
  std::uint64_t makespan_transfers = 0;
  std::uint64_t total_transfers = 0;

  /// Per-operator checkpoints of the lead shard's plan.
  std::vector<core::OpCheckpoint> lead_checkpoints;
};

/// Builds the shard-local physical plan for `algorithm` (4, 5 or 6): the
/// shard-local variants of the serial operators plus the exchange op that
/// moves sealed slots through the ShardChannel. Every shard runs the same
/// plan; lead/worker divergence is internal to the shard operators.
Result<PhysicalPlan> BuildShardedPlan(core::Algorithm algorithm,
                                      const ShardedRunOptions& options);

/// Seals `rel` into every shard of `store`, in shard order, under `key`.
/// Because all sharded inputs are replicated through this helper (and all
/// plan regions are created on every shard), region-creation histories are
/// identical across shards — the invariant that lets the exchange move
/// sealed slots without re-sealing (see ShardedStore). Provider-side
/// sealing: not traced, exactly like the unsharded ingest path.
Result<std::vector<relation::EncryptedRelation>> ReplicateSealed(
    sim::ShardedStore& store, const relation::Relation& rel,
    const crypto::Ocb* key, std::uint64_t padded_slots = 0);

/// Runs `algorithm` over `store`'s shards: one coprocessor per shard (seed
/// base + 5000 + p for workers; the lead keeps the base seed, so a
/// one-shard run is the serial run), one thread per shard, the shard-local
/// plan on each, with the exchange completing on the lead. `joins[p]` is
/// shard p's view of the same logical join — same shape, tables sealed in
/// shard p (via ReplicateSealed). With options.shards == 1 this executes
/// the *serial* plan on shard 0, bit-identical to the frozen plan goldens.
///
/// A failing shard aborts the channel, so sibling shards blocked in the
/// exchange resolve immediately with the failing status; a stalled shard
/// is bounded by base_options.cancel's deadline (the PR-9 resilience path).
Result<ShardedOutcome> RunShardedJoin(
    sim::ShardedStore& store, core::Algorithm algorithm,
    const std::vector<const core::MultiwayJoin*>& joins,
    const sim::CoprocessorOptions& base_options,
    const ShardedRunOptions& options);

/// Publishes the ppj_shard_* family from one finished run: channel bytes /
/// messages / exchange rounds (counters) and the per-shard mailbox
/// high-water marks (gauges, op="shard<i>"). All inputs are functions of
/// the adversary-visible channel shape, so publication is trace-neutral.
void PublishShardMetrics(metrics::Registry* registry,
                         const metrics::LabelSet& labels,
                         const ShardedOutcome& outcome);

}  // namespace ppj::plan

#endif  // PPJ_PLAN_SHARDED_H_
