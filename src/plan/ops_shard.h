#ifndef PPJ_PLAN_OPS_SHARD_H_
#define PPJ_PLAN_OPS_SHARD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "plan/context.h"
#include "plan/operator.h"
#include "plan/ops.h"

namespace ppj::plan {

// Shard-local operators (plan/sharded.h): each runs inside one shard's
// coprocessor against that shard's replica of the sealed inputs, with the
// cross-shard structure carried by the ShardChannel. Their trace-shape
// contract extends the unsharded one: the *union* of the per-shard traces
// plus the channel's message sizes/ordering must be a function of the
// public shape parameters (L, S, M, epsilon) and the contract-fixed shard
// count P only. Work partitioning is always by public parameters (result
// ranks, iTuple indices, segment indices) — never by tuple contents.

/// Sharded screening prologue (Algorithms 5 and 6): the lead shard runs
/// the L-read screening pass on its replica and broadcasts S to every
/// sibling in fixed-size control messages; siblings block on the
/// broadcast. S == 0 completes the plan on every shard (the empty output
/// size is public), with the lead creating the empty output region.
class ShardScreenOp final : public ObliviousOp {
 public:
  explicit ShardScreenOp(std::string output_name)
      : output_name_(std::move(output_name)) {}
  std::string_view name() const override { return "shard-screen"; }
  std::string_view cost_formula() const override {
    return "L on the lead shard; P-1 one-slot control broadcasts";
  }
  std::string_view trace_shape() const override {
    return "function of L and P only (S rides a fixed-size envelope)";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  std::string output_name_;
};

/// Sharded Algorithm 5 core: shard p emits the results with global match
/// ranks [p*ceil(S/P), (p+1)*ceil(S/P)) — a partition of the *output* by
/// public parameters — into its local copy of the S-slot output region,
/// using Algorithm 5's scan-per-bufferful loop over the full local
/// replica. Every shard creates the region (identical region histories;
/// see ShardedStore) even when its rank range is empty.
class ShardRankEmitOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "shard-rank-emit"; }
  std::string_view cost_formula() const override {
    return "ceil(ceil(S/P)/M) L scans + ceil(S/P) output per shard";
  }
  std::string_view trace_shape() const override {
    return "function of L, S, M, P only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
};

/// Sharded Algorithm 4 first pass: shard p scans iTuple indices
/// [p*ceil(L/P), (p+1)*ceil(L/P)), writing one oTuple per iTuple at the
/// *global* staging index so the gathered region authenticates on the
/// lead. Publishes the shard-local match count in ctx.s; the exchange
/// aggregates the total on the lead.
class ShardITupleScanOp final : public ObliviousOp {
 public:
  std::string_view name() const override { return "shard-ituple-scan"; }
  std::string_view cost_formula() const override {
    return "2 ceil(L/P) per shard (reads + staging writes)";
  }
  std::string_view trace_shape() const override {
    return "function of L and P only";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
};

/// Sharded Algorithm 6 main pass: shards own contiguous segment ranges of
/// the shared MLFSR visiting order (identical order seed everywhere, as in
/// Section 5.3.5), each flushing exactly M decoy-padded oTuples per
/// segment into its local staging copy. Segment overflow sets the local
/// blemish flag — the epsilon-probability event.
class ShardSegmentEmitOp final : public ObliviousOp {
 public:
  ShardSegmentEmitOp(double epsilon, std::uint64_t order_seed)
      : epsilon_(epsilon), order_seed_(order_seed) {}
  std::string_view name() const override { return "shard-segment-emit"; }
  std::string_view cost_formula() const override {
    return "ceil(L/P) random-order reads + ceil(segments/P) M flushes";
  }
  std::string_view trace_shape() const override {
    return "function of L, S, M, epsilon, P only (seeded order)";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  PredicateEvaluateOp eval_;
  double epsilon_ = 1e-20;
  std::uint64_t order_seed_ = 0x5eed;
};

/// The oblivious cross-shard exchange: sealed slots move between shards as
/// raw host-to-host ciphertext (no re-sealing — position-bound nonces
/// authenticate because region histories are identical), and every
/// message's size and lane ordering is part of the adversary-visible
/// channel trace. Data-dependent values (partial counts, blemish flags)
/// travel in fixed-size control envelopes. All gather traffic flows
/// worker -> lead; widths are functions of (L, S, M, epsilon, P) only,
/// and the gather happens unconditionally (for Algorithm 6 even when a
/// blemish forces a salvage) so the channel shape never depends on data.
class ShardExchangeOp final : public ObliviousOp {
 public:
  enum class Mode {
    kOutputSlices,       ///< Alg 5: gather rank slices of the output.
    kCountsAndStaging,   ///< Alg 4: gather counts, then staging slices.
    kSegmentsAndBlemish, ///< Alg 6: gather blemish flags + segment slices.
  };
  ShardExchangeOp(Mode mode, std::string empty_output_name)
      : mode_(mode), empty_output_name_(std::move(empty_output_name)) {}
  std::string_view name() const override { return "exchange"; }
  std::string_view cost_formula() const override;
  std::string_view trace_shape() const override {
    return "channel messages only; sizes are functions of L, S, M, "
           "epsilon, P";
  }
  Status Run(sim::Coprocessor& copro, PlanContext& ctx) override;

 private:
  Status RunOutputSlices(sim::Coprocessor& copro, PlanContext& ctx);
  Status RunCountsAndStaging(sim::Coprocessor& copro, PlanContext& ctx);
  Status RunSegmentsAndBlemish(sim::Coprocessor& copro, PlanContext& ctx);

  Mode mode_;
  std::string empty_output_name_;
};

}  // namespace ppj::plan

#endif  // PPJ_PLAN_OPS_SHARD_H_
