#include <algorithm>
#include <span>
#include <vector>

#include "common/math.h"
#include "common/telemetry.h"
#include "core/host_retry.h"
#include "oblivious/bitonic_sort.h"
#include "plan/ops.h"
#include "relation/encrypted_relation.h"

namespace ppj::plan {

namespace {

/// Joined payload = a bytes || b bytes.
std::vector<std::uint8_t> JoinedBytes(const relation::Tuple& a,
                                      const relation::Tuple& b) {
  std::vector<std::uint8_t> bytes = a.Serialize();
  const std::vector<std::uint8_t> bb = b.Serialize();
  bytes.insert(bytes.end(), bb.begin(), bb.end());
  return bytes;
}

/// H copies `count` sealed slots from `src` to `dst` at dst_base and
/// persists them — the paper's "Request H to write first N of scratch[] to
/// disk". A host-side move of ciphertext T already produced: no transfers,
/// one observable disk event per slot. H retries its own transient I/O
/// (bounded, untraced) like any storage client.
Status HostFlushToOutput(sim::Coprocessor& copro, sim::RegionId src,
                         std::uint64_t count, sim::RegionId dst,
                         std::uint64_t dst_base) {
  for (std::uint64_t k = 0; k < count; ++k) {
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> sealed,
                         core::ReadSlotWithRetry(*copro.host(), src, k));
    PPJ_RETURN_NOT_OK(
        core::WriteSlotWithRetry(*copro.host(), dst, dst_base + k, sealed));
    PPJ_RETURN_NOT_OK(copro.DiskWrite(dst, dst_base + k));
  }
  return Status::OK();
}

}  // namespace

bool ObliviousSortOp::ShouldRun(const PlanContext& ctx) const {
  (void)ctx;
  return !provider_sorted_;
}

Status ObliviousSortOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const core::TwoWayJoin& join = *ctx.two_way();
  return oblivious::ObliviousSort(
      copro, join.b->region(), join.b->padded_size(), *join.b->key(),
      oblivious::ColumnLess(join.b->schema(), col_b_));
}

std::string_view ScratchRotateOp::cost_formula() const {
  switch (mode_) {
    case Mode::kRolling:
      return "|A| + 2|A||B| (mix) + 2|A||B| log2(2N)^2 (sort) + 2N|A| "
             "(output)";
    case Mode::kFullSort:
      return "|A| + 2|A||B| (mix) + |A||B| log2(|B|)^2 (sort)";
    case Mode::kRing:
      return "|A| + 3|A||B| (mix) + N|A| (output)";
  }
  return "?";
}

Status ScratchRotateOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  switch (mode_) {
    case Mode::kRolling:
      return RunRolling(copro, ctx);
    case Mode::kFullSort:
      return RunFullSort(copro, ctx);
    case Mode::kRing:
      return RunRing(copro, ctx);
  }
  return Status::InvalidArgument("unknown scratch rotation mode");
}

Status ScratchRotateOp::RunRolling(sim::Coprocessor& copro,
                                   PlanContext& ctx) {
  const core::TwoWayJoin& join = *ctx.two_way();
  const std::uint64_t n = ctx.n;

  // Scratch of 2N oTuples in host memory, padded to a power of two for the
  // bitonic network (exactly 2N when N is a power of two).
  const std::uint64_t scratch_slots = NextPowerOfTwo(2 * n);
  const sim::RegionId scratch =
      ctx.CreateRegion(copro, "alg1-scratch", scratch_slots);
  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId output =
      ctx.CreateRegion(copro, "alg1-output", size_a * n);

  const oblivious::SortKey real_first = oblivious::RealFirstLess();

  // Batched sequential scans of the inputs and a windowed writer for the
  // scratch: per slot the accounting is scalar-identical, only the physical
  // transfer granularity changes. The writer is flushed before every
  // ObliviousSort (which reads the scratch region) and the sort itself
  // leaves no writes pending.
  core::BatchedScan ascan(&copro, join.a);
  core::BatchedScan bscan(&copro, join.b);
  core::BatchedSealWriter writer(&copro, scratch, join.output_key);
  relation::Tuple a, b;
  bool a_real = false, b_real = false;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    {
      PPJ_SPAN("reset");
      // Reset the scratch with fresh indistinguishable decoys.
      for (std::uint64_t k = 0; k < scratch_slots; ++k) {
        PPJ_RETURN_NOT_OK(writer.Put(k, ctx.decoy));
      }
      PPJ_RETURN_NOT_OK(writer.Flush());
    }
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    {
      PPJ_SPAN("mix");
      std::uint64_t i = 0;
      for (std::uint64_t bi = 0; bi < size_b; ++bi) {
        PPJ_RETURN_NOT_OK(bscan.FetchInto(bi, &b, &b_real));
        eval_.a = &a;
        eval_.b = &b;
        eval_.a_real = a_real;
        eval_.b_real = b_real;
        PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
        // Exactly one oTuple out per comparison, always to the same rolling
        // slot — the fixed-size principle of Section 3.4.3.
        const std::uint64_t pos = n + (i % n);
        if (eval_.hit) {
          PPJ_RETURN_NOT_OK(writer.Put(
              pos, relation::wire::MakeReal(JoinedBytes(a, b))));
        } else {
          PPJ_RETURN_NOT_OK(writer.Put(pos, ctx.decoy));
        }
        ++i;
        if (i % n == 0) {
          PPJ_RETURN_NOT_OK(writer.Flush());
          PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
              copro, scratch, scratch_slots, *join.output_key, real_first));
        }
      }
      if (i % n != 0) {
        PPJ_RETURN_NOT_OK(writer.Flush());
        PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
            copro, scratch, scratch_slots, *join.output_key, real_first));
      }
    }
    PPJ_SPAN("output");
    PPJ_RETURN_NOT_OK(HostFlushToOutput(copro, scratch, n, output, ai * n));
  }

  ctx.output_region = output;
  ctx.output_slots = size_a * n;
  return Status::OK();
}

Status ScratchRotateOp::RunFullSort(sim::Coprocessor& copro,
                                    PlanContext& ctx) {
  const core::TwoWayJoin& join = *ctx.two_way();
  const std::uint64_t n = ctx.n;

  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const std::uint64_t buffer_slots = NextPowerOfTwo(size_b);
  const sim::RegionId buffer =
      ctx.CreateRegion(copro, "alg1v-buffer", buffer_slots);
  const sim::RegionId output =
      ctx.CreateRegion(copro, "alg1v-output", size_a * n);

  const oblivious::SortKey real_first = oblivious::RealFirstLess();

  // Same batching discipline as Algorithm 1: windowed input scans, windowed
  // buffer writes, flush before the sort reads the buffer.
  core::BatchedScan ascan(&copro, join.a);
  core::BatchedScan bscan(&copro, join.b);
  core::BatchedSealWriter writer(&copro, buffer, join.output_key);
  relation::Tuple a, b;
  bool a_real = false, b_real = false;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    {
      PPJ_SPAN("mix");
      for (std::uint64_t bi = 0; bi < size_b; ++bi) {
        PPJ_RETURN_NOT_OK(bscan.FetchInto(bi, &b, &b_real));
        eval_.a = &a;
        eval_.b = &b;
        eval_.a_real = a_real;
        eval_.b_real = b_real;
        PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
        if (eval_.hit) {
          PPJ_RETURN_NOT_OK(writer.Put(
              bi, relation::wire::MakeReal(JoinedBytes(a, b))));
        } else {
          PPJ_RETURN_NOT_OK(writer.Put(bi, ctx.decoy));
        }
      }
      for (std::uint64_t k = size_b; k < buffer_slots; ++k) {
        PPJ_RETURN_NOT_OK(writer.Put(k, ctx.decoy));
      }
      PPJ_RETURN_NOT_OK(writer.Flush());
    }
    PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(copro, buffer, buffer_slots,
                                               *join.output_key, real_first));
    PPJ_SPAN("output");
    PPJ_RETURN_NOT_OK(HostFlushToOutput(copro, buffer, n, output, ai * n));
  }

  ctx.output_region = output;
  ctx.output_slots = size_a * n;
  return Status::OK();
}

Status ScratchRotateOp::RunRing(sim::Coprocessor& copro, PlanContext& ctx) {
  const core::TwoWayJoin& join = *ctx.two_way();
  const std::uint64_t n = ctx.n;

  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId scratch = ctx.CreateRegion(copro, "alg3-scratch", n);
  const sim::RegionId output =
      ctx.CreateRegion(copro, "alg3-output", size_a * n);

  // Windowed input scans and chunked read/write windows over the rolling
  // scratch ring. A chunk covers [p, p+c) with c <= n - p, so it never
  // crosses the ring's wrap: within a chunk each slot is read exactly once
  // and only then rewritten, which makes the pre-chunk staged copies the
  // values the scalar loop would have read. Per slot the accounting — Get B,
  // Get scratch, Put scratch — is scalar-identical and in scalar order; the
  // deferred writes are flushed before the next chunk restages.
  core::BatchedScan ascan(&copro, join.a);
  core::BatchedScan bscan(&copro, join.b);
  core::BatchedSealWriter reset(&copro, scratch, join.output_key);
  const std::uint64_t limit =
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1));
  relation::Tuple a, b;
  bool a_real = false, b_real = false;
  std::vector<std::uint8_t> t;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    {
      PPJ_SPAN("reset");
      for (std::uint64_t k = 0; k < n; ++k) {
        PPJ_RETURN_NOT_OK(reset.Put(k, ctx.decoy));
      }
      PPJ_RETURN_NOT_OK(reset.Flush());
    }
    {
      PPJ_SPAN("mix");
      std::uint64_t i = 0;
      while (i < size_b) {
        const std::uint64_t p = i % n;
        const std::uint64_t c = std::min({limit, n - p, size_b - i});
        PPJ_ASSIGN_OR_RETURN(
            sim::ReadRun in,
            copro.GetOpenRange(scratch, p, c, join.output_key));
        PPJ_RETURN_NOT_OK(in.PrefetchOpen());
        PPJ_ASSIGN_OR_RETURN(
            sim::WriteRun out_run,
            copro.PutSealedRange(scratch, p, c, join.output_key));
        for (std::uint64_t e = 0; e < c; ++e, ++i) {
          PPJ_RETURN_NOT_OK(bscan.FetchInto(i, &b, &b_real));
          PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> s,
                               in.NextOpen());
          t.assign(s.begin(), s.end());
          eval_.a = &a;
          eval_.b = &b;
          eval_.a_real = a_real;
          eval_.b_real = b_real;
          PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
          if (eval_.hit) {
            PPJ_RETURN_NOT_OK(out_run.Append(
                relation::wire::MakeReal(JoinedBytes(a, b))));
          } else {
            // Write back what was read, re-encrypted: indistinguishable from
            // a fresh result to the host.
            PPJ_RETURN_NOT_OK(out_run.Append(t));
          }
        }
        PPJ_RETURN_NOT_OK(out_run.Flush());
      }
    }
    PPJ_SPAN("output");
    // H persists the N scratch slots for this A tuple, retrying its own
    // transient I/O (bounded, untraced) like any storage client.
    for (std::uint64_t k = 0; k < n; ++k) {
      PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> sealed,
                           core::ReadSlotWithRetry(*copro.host(), scratch, k));
      PPJ_RETURN_NOT_OK(core::WriteSlotWithRetry(*copro.host(), output,
                                                 ai * n + k, sealed));
      PPJ_RETURN_NOT_OK(copro.DiskWrite(output, ai * n + k));
    }
  }

  ctx.output_region = output;
  ctx.output_slots = size_a * n;
  return Status::OK();
}

Status MultiPassScanOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const core::TwoWayJoin& join = *ctx.two_way();
  const std::uint64_t n = ctx.n;

  if (copro.memory_tuples() <= bookkeeping_slots_) {
    return Status::CapacityExceeded(
        "Algorithm 2 needs memory beyond bookkeeping; use Algorithm 1");
  }
  const std::uint64_t m_free = copro.memory_tuples() - bookkeeping_slots_;
  const std::uint64_t gamma = std::max<std::uint64_t>(1, CeilDiv(n, m_free));
  const std::uint64_t blk = CeilDiv(n, gamma);

  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer joined,
                       sim::SecureBuffer::Allocate(copro, blk));

  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId output =
      ctx.CreateRegion(copro, "alg2-output", size_a * gamma * blk);

  // Windowed input scans; per slot the accounting is scalar-identical.
  core::BatchedScan ascan(&copro, join.a);
  core::BatchedScan bscan(&copro, join.b);
  relation::Tuple a, b;
  bool a_real = false, b_real = false;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    std::int64_t last = -1;  // position of the last *stored* B match
    for (std::uint64_t pass = 0; pass < gamma; ++pass) {
      joined.Clear();
      {
        PPJ_SPAN("mix");
        std::int64_t current = 0;
        std::int64_t pass_last = last;
        for (std::uint64_t bi = 0; bi < size_b; ++bi) {
          PPJ_RETURN_NOT_OK(bscan.FetchInto(bi, &b, &b_real));
          // Predicate always evaluated; its result is used only when this
          // pass is still collecting beyond the previous pass's cursor.
          eval_.a = &a;
          eval_.b = &b;
          eval_.a_real = a_real;
          eval_.b_real = b_real;
          PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
          if (current > last && !joined.full() && eval_.hit) {
            PPJ_RETURN_NOT_OK(joined.Push(
                relation::wire::MakeReal(JoinedBytes(a, b))));
            pass_last = current;
          }
          ++current;
        }
        last = pass_last;
      }
      PPJ_SPAN("output");
      // Fixed-size flush: blk oTuples per pass, decoy-padded; the sealed
      // slots land on the host in one scatter (DiskWrite is pure accounting
      // and does not read the region).
      const std::uint64_t base = (ai * gamma + pass) * blk;
      PPJ_ASSIGN_OR_RETURN(
          sim::WriteRun flush,
          copro.PutSealedRange(output, base, blk, join.output_key));
      for (std::uint64_t k = 0; k < blk; ++k) {
        const std::vector<std::uint8_t>& plain =
            k < joined.size() ? joined.At(k) : ctx.decoy;
        PPJ_RETURN_NOT_OK(flush.Append(plain));
        PPJ_RETURN_NOT_OK(copro.DiskWrite(output, base + k));
      }
      PPJ_RETURN_NOT_OK(flush.Flush());
    }
  }

  ctx.output_region = output;
  ctx.output_slots = size_a * gamma * blk;
  return Status::OK();
}

}  // namespace ppj::plan
