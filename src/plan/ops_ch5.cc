#include <algorithm>
#include <vector>

#include "analysis/optimizer.h"
#include "common/math.h"
#include "common/telemetry.h"
#include "core/algorithm5.h"
#include "crypto/mlfsr.h"
#include "oblivious/windowed_filter.h"
#include "plan/ops.h"
#include "relation/encrypted_relation.h"

namespace ppj::plan {

Status ITupleScanOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const core::MultiwayJoin& join = *ctx.multiway();
  ctx.reader.emplace(&copro, join.tables);
  core::ITupleReader& reader = *ctx.reader;
  const std::uint64_t l = reader.index().size();

  const sim::RegionId staging = ctx.CreateRegion(copro, "alg4-staging", l);

  // One oTuple out per iTuple in, unconditionally. The scan and the
  // staging writes both move through the batched layer; the writer is
  // flushed before the filter reads the staging region.
  reader.set_batch_hint(
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1)));
  core::BatchedSealWriter writer(&copro, staging, join.output_key);
  std::uint64_t s = 0;
  {
    PPJ_SPAN("mix");
    for (std::uint64_t idx = 0; idx < l; ++idx) {
      PPJ_ASSIGN_OR_RETURN(core::ITupleReader::Fetched fetched,
                           reader.Fetch(idx));
      eval_.fetched = &fetched;
      PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
      if (eval_.hit) {
        ++s;
        PPJ_RETURN_NOT_OK(writer.Put(
            idx, relation::wire::MakeReal(
                     core::ITupleReader::JoinedPayload(*fetched.components))));
      } else {
        PPJ_RETURN_NOT_OK(writer.Put(idx, ctx.decoy));
      }
    }
    PPJ_RETURN_NOT_OK(writer.Flush());
  }

  ctx.s = s;
  ctx.staging_region = staging;
  ctx.staging_slots = l;
  if (s == 0) {
    // Nothing to deliver; the empty output size is itself part of the
    // (public) output.
    ctx.output_region = ctx.CreateRegion(copro, "alg4-output", 0);
    ctx.output_slots = 0;
    ctx.finished = true;
  }
  return Status::OK();
}

Status BufferedEmitOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const core::MultiwayJoin& join = *ctx.multiway();
  const std::uint64_t m = copro.memory_tuples();
  if (m == 0) {
    return Status::CapacityExceeded(
        "Algorithm 5 needs at least one result slot; use Algorithm 4");
  }
  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer,
                       sim::SecureBuffer::Allocate(copro, m));

  ctx.reader.emplace(&copro, join.tables);
  core::ITupleReader& reader = *ctx.reader;
  const std::uint64_t l = reader.index().size();

  // Output grows by at most M per scan; final size is exactly S.
  const sim::RegionId output = ctx.CreateRegion(copro, "alg5-output", 0);

  std::int64_t pindex = -1;  // index of the last *flushed* result
  std::uint64_t written = 0;
  for (;;) {
    buffer.Clear();
    std::int64_t last_stored = pindex;
    bool overflow = false;
    // One coprocessor-memory's worth of slots per host round trip. The
    // staged run holds *sealed* bytes (untrusted data, no secure slots
    // consumed — each slot still opens one at a time into the same scratch
    // slot the scalar path uses), so the window is a transfer-granularity
    // knob, not a memory commitment. It only changes how slots move, never
    // which slots or in what order.
    reader.set_batch_hint(copro.BatchLimit(buffer.capacity()));
    {
      PPJ_SPAN("scan");
      for (std::uint64_t idx = 0; idx < l; ++idx) {
        PPJ_ASSIGN_OR_RETURN(core::ITupleReader::Fetched fetched,
                             reader.Fetch(idx));
        eval_.fetched = &fetched;
        PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
        if (eval_.hit && static_cast<std::int64_t>(idx) > pindex) {
          if (!buffer.full()) {
            PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
                core::ITupleReader::JoinedPayload(*fetched.components))));
            last_stored = static_cast<std::int64_t>(idx);
          } else {
            overflow = true;  // more results remain: another scan is needed
          }
        }
      }
    }
    {
      PPJ_SPAN("output");
      // Flush at the scan boundary — the only observable output point. The
      // sealed slots land on the host in one scatter (DiskWrite is pure
      // accounting and does not read the region).
      PPJ_RETURN_NOT_OK(
          copro.host()->ResizeRegion(output, written + buffer.size()));
      PPJ_ASSIGN_OR_RETURN(
          sim::WriteRun flush,
          copro.PutSealedRange(output, written, buffer.size(),
                               join.output_key));
      for (std::size_t k = 0; k < buffer.size(); ++k) {
        PPJ_RETURN_NOT_OK(flush.Append(buffer.At(k)));
        PPJ_RETURN_NOT_OK(copro.DiskWrite(output, written + k));
      }
      PPJ_RETURN_NOT_OK(flush.Flush());
    }
    written += buffer.size();
    if (!overflow) break;
    pindex = last_stored;
  }

  ctx.output_region = output;
  ctx.output_slots = written;
  ctx.s = written;
  ctx.staging_slots = 0;  // Algorithm 5 writes no intermediate oTuples
  return Status::OK();
}

Status ScreenOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const core::MultiwayJoin& join = *ctx.multiway();
  const std::uint64_t m = copro.memory_tuples();
  if (m == 0) {
    return Status::CapacityExceeded(
        "Algorithm 6 needs at least one result slot; use Algorithm 4");
  }
  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer_holder,
                       sim::SecureBuffer::Allocate(copro, m));
  ctx.buffer.emplace(std::move(buffer_holder));
  sim::SecureBuffer& buffer = *ctx.buffer;

  ctx.reader.emplace(&copro, join.tables);
  core::ITupleReader& reader = *ctx.reader;
  const std::uint64_t l = reader.index().size();

  // The screening scan is sequential, so it moves through the batched
  // transfer layer; the hint is withdrawn afterwards because the main pass
  // visits iTuples in MLFSR-random order, where staged runs would go to
  // waste (a staged-but-unconsumed slot is never traced or charged, but the
  // physical gather still costs wall clock).
  reader.set_batch_hint(
      copro.BatchLimit(std::max<std::uint64_t>(buffer.capacity(), 1)));
  std::uint64_t s = 0;
  bool overflow = false;
  for (std::uint64_t idx = 0; idx < l; ++idx) {
    PPJ_ASSIGN_OR_RETURN(core::ITupleReader::Fetched fetched,
                         reader.Fetch(idx));
    eval_.fetched = &fetched;
    PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
    if (eval_.hit) {
      ++s;
      if (!overflow && !buffer.full()) {
        PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
            core::ITupleReader::JoinedPayload(*fetched.components))));
      } else {
        overflow = true;
      }
    }
  }
  reader.set_batch_hint(1);

  ctx.s = s;
  ctx.buffered_all = !overflow;
  if (s == 0) {
    ctx.output_region = ctx.CreateRegion(copro, "alg6-output", 0);
    ctx.output_slots = 0;
    ctx.finished = true;
    return Status::OK();
  }
  if (ctx.buffered_all) {
    // M >= S case: flush straight from memory; total cost L + S.
    PPJ_SPAN("output");
    ctx.n_star = l;
    ctx.output_region = ctx.CreateRegion(copro, "alg6-output", s);
    PPJ_ASSIGN_OR_RETURN(
        sim::WriteRun flush,
        copro.PutSealedRange(ctx.output_region, 0, buffer.size(),
                             join.output_key));
    for (std::size_t k = 0; k < buffer.size(); ++k) {
      PPJ_RETURN_NOT_OK(flush.Append(buffer.At(k)));
      PPJ_RETURN_NOT_OK(copro.DiskWrite(ctx.output_region, k));
    }
    PPJ_RETURN_NOT_OK(flush.Flush());
    ctx.output_slots = s;
    ctx.finished = true;
  }
  return Status::OK();
}

Status EpsilonPartitionOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const core::MultiwayJoin& join = *ctx.multiway();
  const std::uint64_t m = copro.memory_tuples();
  core::ITupleReader& reader = *ctx.reader;
  sim::SecureBuffer& buffer = *ctx.buffer;
  const std::uint64_t l = reader.index().size();

  // --- Segment size n* (Eqn 5.6, maximized; see DESIGN.md). ---
  const std::uint64_t n_star =
      forced_segment_size_ > 0
          ? forced_segment_size_
          : analysis::OptimalSegmentSize(l, ctx.s, m, epsilon_);
  ctx.n_star = n_star;
  const std::uint64_t segments = CeilDiv(l, n_star);
  const std::uint64_t staging_slots = segments * m;
  ctx.staging_slots = staging_slots;

  ctx.staging_region = ctx.CreateRegion(copro, "alg6-staging", staging_slots);

  // --- Main pass in MLFSR-random order, flushing M oTuples per segment. ---
  PPJ_ASSIGN_OR_RETURN(crypto::RandomOrder order,
                       crypto::RandomOrder::Create(l, order_seed_));
  bool blemish = false;
  buffer.Clear();
  std::uint64_t seg = 0;
  std::uint64_t in_segment = 0;
  {
    PPJ_SPAN("main");
    for (std::uint64_t visited = 0; visited < l; ++visited) {
      const std::uint64_t idx = order.Next();
      PPJ_ASSIGN_OR_RETURN(core::ITupleReader::Fetched fetched,
                           reader.Fetch(idx));
      eval_.fetched = &fetched;
      PPJ_RETURN_NOT_OK(eval_.Run(copro, ctx));
      if (eval_.hit) {
        if (buffer.full()) {
          blemish = true;  // segment overflow: the epsilon-probability event
        } else {
          PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
              core::ITupleReader::JoinedPayload(*fetched.components))));
        }
      }
      ++in_segment;
      if (in_segment == n_star || visited + 1 == l) {
        // Fixed-size flush: exactly M oTuples, decoy padded, landing on the
        // host in one scatter. Nothing reads the staging region before the
        // final filter pass, which starts after every segment has flushed.
        PPJ_ASSIGN_OR_RETURN(
            sim::WriteRun flush,
            copro.PutSealedRange(ctx.staging_region, seg * m, m,
                                 join.output_key));
        for (std::uint64_t k = 0; k < m; ++k) {
          PPJ_RETURN_NOT_OK(
              flush.Append(k < buffer.size() ? buffer.At(k) : ctx.decoy));
        }
        PPJ_RETURN_NOT_OK(flush.Flush());
        buffer.Clear();
        in_segment = 0;
        ++seg;
      }
    }
  }
  ctx.blemish = blemish;
  return Status::OK();
}

bool SalvageOp::ShouldRun(const PlanContext& ctx) const {
  return ctx.blemish;
}

Status SalvageOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  // Salvage action (Section 5.3.3): re-output everything with an
  // Algorithm 5 sweep. Correct, but the extra scans' existence depends on
  // the data — the privacy loss the epsilon bound budgets for.
  ctx.buffer.reset();  // hand the memory back for Algorithm 5's buffer
  PPJ_ASSIGN_OR_RETURN(core::Ch5Outcome salvage,
                       core::RunAlgorithm5(copro, *ctx.multiway()));
  ctx.output_region = salvage.output_region;
  ctx.output_slots = salvage.result_size;
  ctx.s = salvage.result_size;
  // n_star, staging_slots and the blemish flag keep the Algorithm 6 values.
  ctx.finished = true;
  return Status::OK();
}

Status WindowedFilterOp::Run(sim::Coprocessor& copro, PlanContext& ctx) {
  const std::uint64_t delta =
      filter_delta_ > 0
          ? filter_delta_
          : analysis::OptimalSwapInteger(ctx.staging_slots, ctx.s);
  ctx.output_region = ctx.CreateRegion(copro, output_name_, ctx.s);
  PPJ_ASSIGN_OR_RETURN(
      oblivious::FilterStats stats,
      oblivious::WindowedObliviousFilter(copro, ctx.staging_region,
                                         ctx.staging_slots, ctx.s, delta,
                                         *ctx.output_key(),
                                         ctx.output_region));
  (void)stats;
  ctx.output_slots = ctx.s;
  return Status::OK();
}

}  // namespace ppj::plan
