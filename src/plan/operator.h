#ifndef PPJ_PLAN_OPERATOR_H_
#define PPJ_PLAN_OPERATOR_H_

#include <string_view>

#include "common/status.h"

namespace ppj::sim {
class Coprocessor;
}  // namespace ppj::sim

namespace ppj::plan {

class PlanContext;

/// One oblivious physical operator — a reusable building block of the
/// paper's six join algorithms (full iTuple scans, windowed decoy
/// filtering, oblivious sort, scratch-region rotation, padded output
/// writing). A PhysicalPlan is an ordered list of these; the PlanExecutor
/// runs them through one engine in scalar, batched or parallel mode.
///
/// The contract every operator must honor is *trace neutrality*: the
/// ordered list of host accesses, the timing trace and the transfer
/// counters an operator produces depend only on the public shape
/// parameters (|A|, |B|, N, L, S, M, epsilon), never on tuple contents.
/// The fingerprint-golden suites (tests/test_plan_goldens.cc,
/// tests/test_batching.cc, tests/test_faults.cc) enforce this
/// bit-identically against the pre-operator-layer implementations.
class ObliviousOp {
 public:
  virtual ~ObliviousOp() = default;

  /// Stable operator name. It is the telemetry span the executor opens
  /// around Run, the key planner-side PlannedOp trees join against for
  /// predicted-vs-measured reconciliation, and the label on the privacy
  /// auditor's per-operator trace checkpoints.
  virtual std::string_view name() const = 0;

  /// Closed-form transfer-cost term this operator accounts for, in the
  /// paper's notation (declared cost metadata; the numeric prediction for
  /// a concrete shape comes from core::DescribeAlgorithm / analysis/).
  virtual std::string_view cost_formula() const = 0;

  /// One-line statement of the operator's trace-shape contract: which
  /// shape parameters its host-access pattern is a function of.
  virtual std::string_view trace_shape() const = 0;

  /// Whether the operator participates in this execution. Checked by the
  /// executor before opening the operator span, so a skipped operator
  /// leaves no telemetry node (data-independent skips only — e.g. the
  /// salvage operator keys off the blemish flag, whose occurrence the
  /// epsilon bound budgets for).
  virtual bool ShouldRun(const PlanContext& ctx) const {
    (void)ctx;
    return true;
  }

  /// Executes the operator. All host interaction goes through `copro`;
  /// all cross-operator state (resolved N, screened S, staging regions,
  /// the shared iTuple reader / secure buffer) lives in `ctx`.
  virtual Status Run(sim::Coprocessor& copro, PlanContext& ctx) = 0;
};

}  // namespace ppj::plan

#endif  // PPJ_PLAN_OPERATOR_H_
