#ifndef PPJ_PLAN_CONTEXT_H_
#define PPJ_PLAN_CONTEXT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "core/cartesian.h"
#include "core/join_result.h"
#include "core/join_spec.h"
#include "core/privacy_auditor.h"
#include "sim/arena_pool.h"
#include "sim/coprocessor.h"

namespace ppj::sim {
class ShardChannel;
class ShardedStore;
}  // namespace ppj::sim

namespace ppj::plan {

/// Shard placement of one plan execution: which shard of a ShardedStore
/// this PlanContext's coprocessor owns, how many shards the contract fixed
/// (public by construction — never data-dependent), and the channel the
/// exchange operators move sealed slots through. nullptr on the PlanContext
/// of an unsharded run; shard 0 is always the lead/coordinator.
struct ShardEnv {
  unsigned shard_id = 0;
  unsigned shard_count = 1;
  sim::ShardChannel* channel = nullptr;
  sim::ShardedStore* store = nullptr;

  bool lead() const { return shard_id == 0; }
};

/// One host region created on behalf of a plan: the symbolic name, the id
/// the host assigned, and its slot count at creation time. Region lifecycle
/// ownership lives here rather than in the individual algorithms — every
/// operator allocates through PlanContext::CreateRegion, so a finished run
/// can enumerate exactly which regions the plan touched (ppjctl explain,
/// audit summaries).
struct RegionUse {
  std::string name;
  sim::RegionId id = 0;
  std::uint64_t slots = 0;
};

/// Shared mutable state threaded through the operators of one physical
/// plan execution. Exactly one of the two join descriptions is set (the
/// Chapter 4 family is two-way, the Chapter 5 family multiway); the rest
/// is cross-operator plumbing that used to be local variables of the
/// monolithic RunAlgorithmN drivers.
///
/// A PlanContext is single-use: build it, run the plan, read the outcome.
class PlanContext {
 public:
  PlanContext(const core::TwoWayJoin* two_way,
              const core::MultiwayJoin* multiway)
      : two_way_(two_way), multiway_(multiway) {}

  const core::TwoWayJoin* two_way() const { return two_way_; }
  const core::MultiwayJoin* multiway() const { return multiway_; }

  /// The recipient key joined payloads are sealed under.
  const crypto::Ocb* output_key() const {
    return two_way_ != nullptr ? two_way_->output_key : multiway_->output_key;
  }

  /// Derives the sealed wire shape (payload size, slot size, the decoy
  /// plaintext) from the join description. Pure host-side computation —
  /// no coprocessor interaction — called once by the executor before the
  /// first operator.
  Status InitWireShape();

  /// Creates a host region of `slots` slots of the plan's sealed slot
  /// size and records it in regions(). All operator allocations go
  /// through here; creation order determines sim::RegionId assignment and
  /// is therefore part of the frozen trace shape.
  sim::RegionId CreateRegion(sim::Coprocessor& copro, const std::string& name,
                             std::uint64_t slots);

  const std::vector<RegionUse>& regions() const { return regions_; }

  // --- Sealed wire shape (InitWireShape) ---
  std::size_t payload = 0;  ///< Joined payload bytes (a || b || ...).
  std::size_t slot = 0;     ///< Sealed slot size for that payload.
  std::vector<std::uint8_t> decoy;  ///< Decoy plaintext, one per plan.

  /// Staging-arena pool shared by every operator of this plan: the
  /// executor wires it into the coprocessor for the duration of the run,
  /// so consecutive range transfers (thousands per sort, a handful of
  /// distinct sizes) recycle their sealed/plaintext arenas instead of
  /// allocating. Purely internal staging — invisible to traces, metrics
  /// and fingerprints. Declared before `reader`/`buffer` (which can hold
  /// lease-bearing runs) so it is destroyed after them.
  sim::ArenaPool arena_pool;

  // --- Cross-operator state ---
  std::uint64_t n = 0;  ///< Resolved N (Chapter 4; ResolveNOp).
  std::uint64_t s = 0;  ///< True result size S (Chapter 5 scans).
  bool buffered_all = false;  ///< Alg 6 screen kept every result in memory.
  bool blemish = false;       ///< Alg 6 segment overflow (epsilon event).
  std::uint64_t n_star = 0;   ///< Alg 6 segment size actually used.
  sim::RegionId staging_region = 0;
  std::uint64_t staging_slots = 0;
  /// Shared iTuple reader (Chapter 5): constructed by the first scan
  /// operator, reused by later passes so batching hints and the cartesian
  /// index survive operator boundaries.
  std::optional<core::ITupleReader> reader;
  /// Shared secure buffer (Algorithm 6): the salvage operator releases it
  /// before re-running Algorithm 5, exactly like the monolithic driver.
  std::optional<sim::SecureBuffer> buffer;

  // --- Outcome ---
  sim::RegionId output_region = 0;
  std::uint64_t output_slots = 0;  ///< Ch.4: N|A| slots; Ch.5: S results.
  /// Set by an operator that completed the plan early (empty result,
  /// everything-buffered fast path, blemish salvage). The executor skips
  /// all remaining operators.
  bool finished = false;

  /// Cumulative trace fingerprint after each executed operator, recorded
  /// by the executor (read-only on the trace: trace-neutral).
  std::vector<core::OpCheckpoint> checkpoints;

  /// Registry for per-operator retry attribution
  /// (ppj_op_host_retries_total{algorithm,op}): the executor publishes the
  /// host_retries/backoff_cycles delta each operator accrued. nullptr =
  /// metrics::Registry::Global(). Like the checkpoints, this only *reads*
  /// public counters — trace-neutral.
  metrics::Registry* metrics_registry = nullptr;

  /// Shard placement when this context is one shard of a sharded
  /// execution (plan/sharded.h); nullptr for unsharded runs. The shard
  /// operators read id/count/channel from here; every other operator is
  /// shard-oblivious.
  const ShardEnv* shard = nullptr;

  /// Cooperative cancellation token for this request, or nullptr when the
  /// run has no deadline and cannot be cancelled. The executor checks it
  /// once per operator boundary — a data-independent checkpoint, so an
  /// uncancelled run's trace and fingerprints are unaffected
  /// (docs/ROBUSTNESS.md#deadlines-cancellation-and-circuit-breakers).
  const CancelToken* cancel = nullptr;

 private:
  const core::TwoWayJoin* two_way_ = nullptr;
  const core::MultiwayJoin* multiway_ = nullptr;
  std::vector<RegionUse> regions_;
};

/// Outcome extraction once a plan has run to completion.
core::Ch4Outcome TakeCh4Outcome(const PlanContext& ctx);
core::Ch5Outcome TakeCh5Outcome(const PlanContext& ctx);

}  // namespace ppj::plan

#endif  // PPJ_PLAN_CONTEXT_H_
