#ifndef PPJ_PLAN_EXECUTOR_H_
#define PPJ_PLAN_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/algorithm.h"
#include "plan/context.h"
#include "plan/operator.h"

namespace ppj::plan {

/// An executable physical plan: which paper algorithm it implements, the
/// root device span it runs under, and the ordered operator list. Built by
/// the per-algorithm builders (plan/builder.h) via the core algorithm
/// registry; single-use, like the PlanContext it runs against.
struct PhysicalPlan {
  core::Algorithm algorithm = core::Algorithm::kAlgorithm5;
  std::string root_span;
  std::vector<std::unique_ptr<ObliviousOp>> ops;
};

/// Runs a physical plan: one engine for every algorithm and for scalar and
/// batched transfer modes alike (the transfer granularity is a Coprocessor
/// property, not a plan property). Per operator the executor opens a
/// telemetry span named after the operator and records the cumulative
/// trace fingerprint into PlanContext::checkpoints — both read-only on the
/// frozen trace/timing/transfer surface, so executing through the engine
/// is bit-identical to the former monolithic drivers.
class PlanExecutor {
 public:
  Status Run(sim::Coprocessor& copro, PhysicalPlan& plan, PlanContext& ctx);
};

/// Runs the registered parallel engine for `algorithm` (the Chapter 5
/// multi-coprocessor executors of Section 5.3.5). Fails for algorithms
/// without a registered service-level parallel engine.
Result<core::ParallelOutcome> RunParallelPlan(
    sim::HostStore* host, core::Algorithm algorithm,
    const core::MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& copro_options,
    const core::ParallelRunOptions& run_options);

}  // namespace ppj::plan

#endif  // PPJ_PLAN_EXECUTOR_H_
