#include "common/telemetry.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "sim/coprocessor.h"

namespace ppj::telemetry {
namespace {

/// Per-thread telemetry context. Installed by ScopedContext; read by every
/// Span. A null recorder makes spans single-branch no-ops, so uninstrumented
/// threads (and all threads when no recorder is active) pay one TLS load.
struct ThreadState {
  TraceRecorder* recorder = nullptr;
  SpanNode* current = nullptr;
  const sim::Coprocessor* copro = nullptr;
  std::uint32_t ordinal = 0;
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

void AppendJsonString(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void AppendMetricsFields(std::ostringstream& os,
                         const sim::TransferMetrics& m) {
  os << "\"gets\":" << m.gets << ",\"puts\":" << m.puts
     << ",\"tuple_transfers\":" << m.TupleTransfers()
     << ",\"disk_writes\":" << m.disk_writes
     << ",\"ituple_reads\":" << m.ituple_reads
     << ",\"cipher_calls\":" << m.cipher_calls
     << ",\"comparisons\":" << m.comparisons
     << ",\"padded_cycles\":" << m.padded_cycles
     << ",\"batch_gets\":" << m.batch_gets
     << ",\"batch_puts\":" << m.batch_puts
     << ",\"host_retries\":" << m.host_retries
     << ",\"backoff_cycles\":" << m.backoff_cycles;
}

}  // namespace

const SpanNode* SpanNode::Find(std::string_view child_name) const {
  for (const auto& child : children) {
    if (child->name == child_name) return child.get();
  }
  return nullptr;
}

const SpanNode* SpanNode::FindPath(std::string_view path) const {
  const SpanNode* node = this;
  while (node != nullptr && !path.empty()) {
    const std::size_t slash = path.find('/');
    const std::string_view head =
        slash == std::string_view::npos ? path : path.substr(0, slash);
    path = slash == std::string_view::npos ? std::string_view{}
                                           : path.substr(slash + 1);
    node = node->Find(head);
  }
  return node;
}

sim::TransferMetrics InclusiveMetrics(const SpanNode& node) {
  if (node.has_metrics) return node.metrics;
  sim::TransferMetrics sum;
  for (const auto& child : node.children) sum += InclusiveMetrics(*child);
  return sum;
}

sim::TransferMetrics SelfMetrics(const SpanNode& node) {
  sim::TransferMetrics children_sum;
  for (const auto& child : node.children) {
    children_sum += InclusiveMetrics(*child);
  }
  return InclusiveMetrics(node) - children_sum;
}

TraceRecorder::TraceRecorder(bool enabled)
    : enabled_(enabled && CompiledIn()),
      epoch_(std::chrono::steady_clock::now()) {
  root_.name = "trace";
}

bool TraceRecorder::CompiledIn() {
#if defined(PPJ_TELEMETRY_DISABLED)
  return false;
#else
  return true;
#endif
}

std::uint64_t TraceRecorder::NowNs() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

std::uint32_t TraceRecorder::AssignOrdinal() {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_ordinal_++;
}

std::unique_ptr<SpanNode> TraceRecorder::TakeTree() {
  if (!enabled_) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto out = std::make_unique<SpanNode>(std::move(root_));
  root_ = SpanNode{};
  root_.name = "trace";
  out->count = 1;
  out->wall_ns = 0;
  for (const auto& child : out->children) out->wall_ns += child->wall_ns;
  return out;
}

SpanHandle CurrentSpan() {
  const ThreadState& ts = Tls();
  return SpanHandle{ts.recorder, ts.current};
}

ScopedContext::ScopedContext(TraceRecorder* recorder,
                             const sim::Coprocessor* copro)
    : ScopedContext(SpanHandle{recorder, recorder != nullptr
                                             ? &recorder->root_
                                             : nullptr},
                    copro) {}

ScopedContext::ScopedContext(const SpanHandle& parent,
                             const sim::Coprocessor* copro) {
  ThreadState& ts = Tls();
  saved_[0] = ts.recorder;
  saved_[1] = ts.current;
  saved_[2] = const_cast<sim::Coprocessor*>(ts.copro);
  saved_[3] = reinterpret_cast<void*>(static_cast<std::uintptr_t>(ts.ordinal));
  if (parent.recorder != nullptr && parent.recorder->enabled()) {
    ts.recorder = parent.recorder;
    ts.current = parent.node;
    ts.copro = copro;
    ts.ordinal = parent.recorder->AssignOrdinal();
  } else {
    ts.recorder = nullptr;
    ts.current = nullptr;
    ts.copro = nullptr;
    ts.ordinal = 0;
  }
}

ScopedContext::~ScopedContext() {
  ThreadState& ts = Tls();
  ts.recorder = static_cast<TraceRecorder*>(saved_[0]);
  ts.current = static_cast<SpanNode*>(saved_[1]);
  ts.copro = static_cast<const sim::Coprocessor*>(saved_[2]);
  ts.ordinal =
      static_cast<std::uint32_t>(reinterpret_cast<std::uintptr_t>(saved_[3]));
}

ScopedDevice::ScopedDevice(const sim::Coprocessor* copro) {
  ThreadState& ts = Tls();
  saved_ = ts.copro;
  if (ts.recorder != nullptr) ts.copro = copro;
}

ScopedDevice::~ScopedDevice() {
  Tls().copro = static_cast<const sim::Coprocessor*>(saved_);
}

Span::Span(std::string_view name) {
  ThreadState& ts = Tls();
  if (ts.recorder == nullptr) return;
  recorder_ = ts.recorder;
  copro_ = ts.copro;
  t0_ns_ = recorder_->NowNs();
  if (copro_ != nullptr) at_open_ = copro_->metrics();
  std::lock_guard<std::mutex> lock(recorder_->mutex_);
  parent_ = ts.current;
  for (const auto& child : parent_->children) {
    if (child->name == name) {
      node_ = child.get();
      break;
    }
  }
  if (node_ == nullptr) {
    auto node = std::make_unique<SpanNode>();
    node->name = std::string(name);
    node->start_ns = t0_ns_;
    node->thread_ordinal = ts.ordinal;
    node_ = node.get();
    parent_->children.push_back(std::move(node));
  }
  ts.current = node_;
}

Span::~Span() {
  if (recorder_ == nullptr) return;
  const std::uint64_t t1_ns = recorder_->NowNs();
  sim::TransferMetrics delta;
  if (copro_ != nullptr) delta = copro_->metrics() - at_open_;
  std::lock_guard<std::mutex> lock(recorder_->mutex_);
  node_->count += 1;
  node_->wall_ns += t1_ns - t0_ns_;
  if (copro_ != nullptr) {
    node_->has_metrics = true;
    node_->metrics += delta;
  }
  Tls().current = parent_;
}

// ---- Exporters -----------------------------------------------------------

namespace {

/// Emits one complete event for `node` at synthetic timestamp `ts_ns`, then
/// lays its children out sequentially inside it. Merged nodes (count > 1)
/// have no single real interval, so the layout is synthetic by construction:
/// positions show nesting and relative width, not historical start times.
void EmitChromeEvents(const SpanNode& node, std::uint64_t ts_ns, bool* first,
                      std::ostringstream& os) {
  if (!*first) os << ",\n";
  *first = false;
  os << "{\"name\":";
  AppendJsonString(os, node.name);
  os << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << node.thread_ordinal
     << ",\"ts\":" << (ts_ns / 1000.0) << ",\"dur\":"
     << (node.wall_ns / 1000.0) << ",\"args\":{\"count\":" << node.count
     << ',';
  AppendMetricsFields(os, InclusiveMetrics(node));
  os << "}}";
  std::uint64_t child_ts = ts_ns;
  for (const auto& child : node.children) {
    EmitChromeEvents(*child, child_ts, first, os);
    child_ts += child->wall_ns;
  }
}

void EmitReportEntries(const SpanNode& node, const std::string& prefix,
                       bool* first, std::ostringstream& os) {
  const std::string path =
      prefix.empty() ? node.name : prefix + "/" + node.name;
  if (!*first) os << ",\n";
  *first = false;
  os << "    {\"path\":";
  AppendJsonString(os, path);
  os << ",\"count\":" << node.count << ",\"wall_ns\":" << node.wall_ns
     << ",\"thread\":" << node.thread_ordinal << ",\"inclusive\":{";
  AppendMetricsFields(os, InclusiveMetrics(node));
  os << "},\"self\":{";
  AppendMetricsFields(os, SelfMetrics(node));
  os << "}}";
  for (const auto& child : node.children) {
    EmitReportEntries(*child, path, first, os);
  }
}

}  // namespace

std::string ToChromeTraceJson(const SpanNode& root) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  // Skip the synthetic "trace" root; top-level spans start at ts 0 in
  // sequence (their merged durations have no meaningful absolute offsets).
  std::uint64_t ts_ns = 0;
  for (const auto& child : root.children) {
    EmitChromeEvents(*child, ts_ns, &first, os);
    ts_ns += child->wall_ns;
  }
  os << "\n]}\n";
  return os.str();
}

std::string ToMetricsReportJson(const SpanNode& root) {
  std::ostringstream os;
  os << "{\n  \"total\":{";
  AppendMetricsFields(os, InclusiveMetrics(root));
  os << ",\"wall_ns\":" << root.wall_ns << "},\n  \"spans\":[\n";
  bool first = true;
  for (const auto& child : root.children) {
    EmitReportEntries(*child, "", &first, os);
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace ppj::telemetry
