#ifndef PPJ_COMMON_RESULT_H_
#define PPJ_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace ppj {

/// Either a value of type T or a non-OK Status, Arrow-style. Accessing the
/// value of an errored Result is a programming error and asserts in debug
/// builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value. Implicit by design so functions can
  /// `return value;`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error Status (must be non-OK).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result constructed from OK status without a value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Moves the value out, or returns `fallback` when errored.
  T ValueOr(T fallback) && {
    return ok() ? std::move(std::get<T>(repr_)) : std::move(fallback);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace ppj

/// Evaluates an expression yielding Result<T>; assigns its value to `lhs` or
/// propagates the error Status to the caller.
#define PPJ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define PPJ_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define PPJ_ASSIGN_OR_RETURN_NAME(a, b) PPJ_ASSIGN_OR_RETURN_CONCAT(a, b)
#define PPJ_ASSIGN_OR_RETURN(lhs, expr) \
  PPJ_ASSIGN_OR_RETURN_IMPL(            \
      PPJ_ASSIGN_OR_RETURN_NAME(_ppj_result_, __LINE__), lhs, expr)

#endif  // PPJ_COMMON_RESULT_H_
