#ifndef PPJ_COMMON_TELEMETRY_H_
#define PPJ_COMMON_TELEMETRY_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "sim/metrics.h"

namespace ppj::sim {
class Coprocessor;
}  // namespace ppj::sim

namespace ppj::telemetry {

/// Phase-scoped telemetry: an RAII span tree recording wall-clock time and
/// per-phase TransferMetrics deltas, so measured costs can be attributed to
/// the closed-form terms of the Chapter 4/5 cost models (sort, scan, output,
/// mix, filter, ...).
///
/// Trace-neutrality invariant (load-bearing — see docs/OBSERVABILITY.md and
/// tests/test_telemetry.cc): telemetry only ever *reads* the coprocessor's
/// public counters. It never issues a Get/Put, never charges a cycle, never
/// draws device randomness. The adversary-visible surface of Definitions 1
/// and 3 — the access trace, the timing fingerprint, TupleTransfers() — is
/// bit-identical with telemetry enabled, disabled, or compiled out
/// (-DPPJ_TELEMETRY=OFF).
///
/// Sibling spans with the same name under the same parent are merged into
/// one node (count, wall time and metrics accumulate). The tree size is
/// therefore O(distinct span paths), independent of how many iterations a
/// phase runs — scale-safe for multi-million-transfer executions.
struct SpanNode {
  std::string name;
  /// Number of times this span path was entered.
  std::uint64_t count = 0;
  /// First entry, in ns relative to the recorder's construction.
  std::uint64_t start_ns = 0;
  /// Total accumulated wall-clock time across all entries.
  std::uint64_t wall_ns = 0;
  /// Ordinal of the first thread that opened the span (0 = root thread).
  std::uint32_t thread_ordinal = 0;
  /// True when a coprocessor was bound while the span was open; `metrics`
  /// then holds the accumulated counter delta over the span's lifetime.
  bool has_metrics = false;
  sim::TransferMetrics metrics;
  std::vector<std::unique_ptr<SpanNode>> children;

  /// Direct child by name, or nullptr.
  const SpanNode* Find(std::string_view child_name) const;
  /// Descendant by '/'-separated path relative to this node, or nullptr.
  const SpanNode* FindPath(std::string_view path) const;
};

/// Inclusive metrics of a span: its own recorded delta when a device was
/// bound (nested same-device spans are already included in the delta),
/// otherwise the sum of the children's inclusive metrics (the parallel
/// coordinator case, where each worker subtree has its own device).
sim::TransferMetrics InclusiveMetrics(const SpanNode& node);

/// Exclusive (self) metrics: inclusive minus the children's inclusive
/// metrics, clamped at zero per counter. Summing self over a whole tree
/// reproduces the root's inclusive totals.
sim::TransferMetrics SelfMetrics(const SpanNode& node);

/// Collects one execution's span tree. Thread-safe: worker threads attach
/// via ScopedContext and produce correctly-nested per-worker subtrees.
/// A disabled recorder (enabled = false, or the library compiled with
/// PPJ_TELEMETRY=OFF) makes every span a no-op.
class TraceRecorder {
 public:
  TraceRecorder() : TraceRecorder(true) {}
  explicit TraceRecorder(bool enabled);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// False when constructed disabled or when telemetry is compiled out.
  bool enabled() const { return enabled_; }

  /// False when the library was built with -DPPJ_TELEMETRY=OFF.
  static bool CompiledIn();

  /// Detaches and returns the finished tree (root node "trace"); nullptr
  /// when disabled. Call after every span has closed and every attached
  /// thread has detached; the recorder is reset to an empty tree.
  std::unique_ptr<SpanNode> TakeTree();

 private:
  friend class Span;
  friend class ScopedContext;

  std::uint64_t NowNs() const;
  std::uint32_t AssignOrdinal();

  bool enabled_;
  std::chrono::steady_clock::time_point epoch_;
  std::mutex mutex_;
  SpanNode root_;
  std::uint32_t next_ordinal_ = 0;
};

/// Cross-thread parenting handle: capture on the coordinating thread with
/// CurrentSpan(), hand to a worker's ScopedContext so its spans nest under
/// the coordinator's current span.
struct SpanHandle {
  TraceRecorder* recorder = nullptr;
  SpanNode* node = nullptr;
};

/// The calling thread's recorder and open span (both null when no context
/// is installed). Safe to call anywhere; never allocates.
SpanHandle CurrentSpan();

/// Installs a telemetry context on the calling thread for its lifetime:
/// spans opened on this thread attach to `recorder`'s tree (or under the
/// captured parent span for the worker-thread form) and snapshot `copro`'s
/// counters (may be null — spans then record wall time only). Restores the
/// previous thread state on destruction; contexts nest.
class ScopedContext {
 public:
  ScopedContext(TraceRecorder* recorder, const sim::Coprocessor* copro);
  ScopedContext(const SpanHandle& parent, const sim::Coprocessor* copro);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  void* saved_[4];
};

/// Rebinds the active coprocessor for the current scope (e.g. an algorithm
/// entered with a device the caller's context does not know about).
class ScopedDevice {
 public:
  explicit ScopedDevice(const sim::Coprocessor* copro);
  ~ScopedDevice();

  ScopedDevice(const ScopedDevice&) = delete;
  ScopedDevice& operator=(const ScopedDevice&) = delete;

 private:
  const void* saved_;
};

/// RAII span. Opening records a wall-clock and metrics snapshot; closing
/// accumulates the deltas into the (per-path-merged) tree node. No-op when
/// the thread has no enabled context. Use via PPJ_SPAN.
class Span {
 public:
  explicit Span(std::string_view name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  SpanNode* node_ = nullptr;
  SpanNode* parent_ = nullptr;
  const sim::Coprocessor* copro_ = nullptr;
  sim::TransferMetrics at_open_;
  std::uint64_t t0_ns_ = 0;
};

/// ScopedDevice + Span fused: binds `copro` as the active device, then
/// opens the span, so the span's metrics delta is snapshotted from that
/// device. The entry-point instrumentation of the join algorithms, the
/// bitonic sorter and the windowed filter. Use via PPJ_DEVICE_SPAN.
class DeviceSpan {
 public:
  DeviceSpan(const sim::Coprocessor* copro, std::string_view name)
      : device_(copro), span_(name) {}

 private:
  ScopedDevice device_;
  Span span_;
};

// ---- Exporters -----------------------------------------------------------

/// Chrome trace-event JSON (catapult format), loadable in chrome://tracing
/// and https://ui.perfetto.dev. One complete ("ph":"X") event per span node,
/// on track tid = thread ordinal, with the metrics delta in args. Merged
/// nodes render as one event of the accumulated duration, laid out
/// sequentially inside their parent.
std::string ToChromeTraceJson(const SpanNode& root);

/// Flat metrics report keyed by '/'-joined span path: per path the entry
/// count, wall time, inclusive and self metrics; plus a "total" block with
/// the root's inclusive metrics. Self counts over the whole tree sum to the
/// totals, making per-phase transfers reconcile against the flat
/// TransferMetrics the delivery reports.
std::string ToMetricsReportJson(const SpanNode& root);

}  // namespace ppj::telemetry

#define PPJ_TELEMETRY_CONCAT_INNER(a, b) a##b
#define PPJ_TELEMETRY_CONCAT(a, b) PPJ_TELEMETRY_CONCAT_INNER(a, b)

#if !defined(PPJ_TELEMETRY_DISABLED)
/// Opens an RAII telemetry span for the rest of the enclosing scope.
#define PPJ_SPAN(name) \
  ::ppj::telemetry::Span PPJ_TELEMETRY_CONCAT(ppj_span_, __LINE__)(name)
/// PPJ_SPAN with the metrics source pinned to `copro` (a Coprocessor*).
#define PPJ_DEVICE_SPAN(copro, name)                                 \
  ::ppj::telemetry::DeviceSpan PPJ_TELEMETRY_CONCAT(ppj_dspan_,      \
                                                    __LINE__)(copro, name)
#else
// Arguments are still evaluated-as-discarded so locals used only for span
// names do not become unused-variable errors in telemetry-off builds.
#define PPJ_SPAN(name) static_cast<void>(name)
#define PPJ_DEVICE_SPAN(copro, name) \
  static_cast<void>(copro), static_cast<void>(name)
#endif

#endif  // PPJ_COMMON_TELEMETRY_H_
