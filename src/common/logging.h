#ifndef PPJ_COMMON_LOGGING_H_
#define PPJ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ppj {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal thread-safe logger writing to stderr. Off by default above
/// kWarning so tests and benchmarks stay quiet; examples raise verbosity.
class Logger {
 public:
  static void SetMinLevel(LogLevel level);
  static LogLevel min_level();
  static void Log(LogLevel level, const std::string& message);
};

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ppj

#define PPJ_LOG(level)                                               \
  if (::ppj::LogLevel::level < ::ppj::Logger::min_level()) {         \
  } else                                                             \
    ::ppj::internal::LogMessage(::ppj::LogLevel::level).stream()

#endif  // PPJ_COMMON_LOGGING_H_
