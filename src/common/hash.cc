#include "common/hash.h"

namespace ppj {

namespace {
constexpr std::uint64_t kPrime = 0x100000001b3ULL;
constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
}  // namespace

std::uint64_t Fnv1a64(std::span<const std::byte> bytes) {
  std::uint64_t h = kOffsetBasis;
  for (std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kPrime;
  }
  return h;
}

std::uint64_t Fnv1a64(const void* data, std::size_t size) {
  return Fnv1a64(
      std::span<const std::byte>(static_cast<const std::byte*>(data), size));
}

void RunningHash::Update(const void* data, std::size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = state_;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  state_ = h;
  ++count_;
}

void RunningHash::UpdateU64(std::uint64_t v) { Update(&v, sizeof(v)); }

void RunningHash::Reset() {
  state_ = kOffsetBasis;
  count_ = 0;
}

}  // namespace ppj
