#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <unordered_map>

namespace ppj::metrics {

namespace {

void AppendEscaped(std::string& out, std::string_view value) {
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
}

void AppendLabel(std::string& out, std::string_view key,
                 const std::string& value, bool& first) {
  if (value.empty()) return;
  if (!first) out += ',';
  first = false;
  out += key;
  out += "=\"";
  AppendEscaped(out, value);
  out += '"';
}

// JSON string escaping for exposition (label values and names are plain
// identifiers in practice, but stay correct for arbitrary input).
void AppendJsonString(std::string& out, std::string_view value) {
  out += '"';
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonLabels(std::string& out, const LabelSet& labels) {
  out += '{';
  bool first = true;
  auto field = [&](std::string_view key, const std::string& value) {
    if (value.empty()) return;
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, key);
    out += ':';
    AppendJsonString(out, value);
  };
  field("tenant", labels.tenant);
  field("kind", labels.kind);
  field("algorithm", labels.algorithm);
  field("outcome", labels.outcome);
  field("op", labels.op);
  out += '}';
}

void AtomicMinimize(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value < cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMaximize(std::atomic<std::uint64_t>& slot, std::uint64_t value) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::string LabelSet::ToPrometheus() const {
  if (empty()) return "";
  std::string out = "{";
  bool first = true;
  AppendLabel(out, "tenant", tenant, first);
  AppendLabel(out, "kind", kind, first);
  AppendLabel(out, "algorithm", algorithm, first);
  AppendLabel(out, "outcome", outcome, first);
  AppendLabel(out, "op", op, first);
  out += '}';
  return out;
}

std::string LabelSet::ToKey() const {
  // \x1f is an invalid character in every label value we emit, so the join
  // is collision-free.
  std::string key;
  key.reserve(tenant.size() + kind.size() + algorithm.size() +
              outcome.size() + op.size() + 4);
  key += tenant;
  key += '\x1f';
  key += kind;
  key += '\x1f';
  key += algorithm;
  key += '\x1f';
  key += outcome;
  key += '\x1f';
  key += op;
  return key;
}

namespace internal {

std::size_t BucketIndex(std::uint64_t value) {
  if (value < kLinearBuckets) return static_cast<std::size_t>(value);
  const std::size_t octave = std::bit_width(value) - 1;  // >= kFirstOctave
  const std::size_t sub = (value >> (octave - 2)) & (kSubBuckets - 1);
  return kLinearBuckets + (octave - kFirstOctave) * kSubBuckets + sub;
}

std::uint64_t BucketLowerBound(std::size_t index) {
  if (index < kLinearBuckets) return index;
  const std::size_t rel = index - kLinearBuckets;
  const std::size_t octave = kFirstOctave + rel / kSubBuckets;
  const std::size_t sub = rel % kSubBuckets;
  return (std::uint64_t{kSubBuckets} + sub) << (octave - 2);
}

std::uint64_t BucketUpperBound(std::size_t index) {
  if (index < kLinearBuckets) return index + 1;
  const std::size_t rel = index - kLinearBuckets;
  const std::size_t octave = kFirstOctave + rel / kSubBuckets;
  const std::size_t sub = rel % kSubBuckets;
  if (octave == 63 && sub == kSubBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{kSubBuckets} + sub + 1) << (octave - 2);
}

}  // namespace internal

void Histogram::Observe(std::uint64_t value) {
  if (cell_ == nullptr) return;
  cell_->buckets[internal::BucketIndex(value)].fetch_add(
      1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  cell_->sum.fetch_add(value, std::memory_order_relaxed);
  AtomicMinimize(cell_->min, value);
  AtomicMaximize(cell_->max, value);
}

std::uint64_t HistogramSample::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(
                                     std::ceil(q * static_cast<double>(count))));
  std::uint64_t seen = 0;
  for (const Bucket& b : buckets) {
    if (seen + b.count < rank) {
      seen += b.count;
      continue;
    }
    // Interpolate within [lower, upper) by rank position.
    const std::uint64_t lower =
        internal::BucketLowerBound(internal::BucketIndex(
            b.upper == ~std::uint64_t{0} ? b.upper : b.upper - 1));
    const double frac = b.count == 0
                            ? 0.0
                            : static_cast<double>(rank - seen) /
                                  static_cast<double>(b.count);
    const double width = static_cast<double>(b.upper - lower);
    std::uint64_t v =
        lower + static_cast<std::uint64_t>(std::llround(frac * width));
    return std::clamp(v, min, max);
  }
  return max;
}

// ---- Registry ------------------------------------------------------------

struct Registry::Shard {
  mutable std::mutex mu;
  // Keys: name + '\x1e' + labels.ToKey(). Cells are heap-stable; handles
  // hold raw pointers that stay valid for the registry's lifetime.
  std::unordered_map<std::string, std::unique_ptr<internal::CounterCell>>
      counters;
  std::unordered_map<std::string, std::unique_ptr<internal::GaugeCell>> gauges;
  std::unordered_map<std::string, std::unique_ptr<internal::HistogramCell>>
      histograms;
  // Name + labels per key, for snapshotting.
  std::unordered_map<std::string, std::pair<std::string, LabelSet>> meta;
};

Registry::Registry(bool enabled)
    : enabled_(enabled && CompiledIn()),
      shards_(enabled_ ? std::make_unique<Shard[]>(kShards) : nullptr) {}

Registry::~Registry() = default;

Registry& Registry::Global() {
  static Registry* global = new Registry(true);  // leaked: outlive all users
  return *global;
}

bool Registry::CompiledIn() {
#ifdef PPJ_METRICS_DISABLED
  return false;
#else
  return true;
#endif
}

Registry::Shard& Registry::ShardFor(std::string_view key) const {
  return shards_[std::hash<std::string_view>{}(key) % kShards];
}

namespace {
std::string MapKey(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  key += '\x1e';
  key += labels.ToKey();
  return key;
}
}  // namespace

Counter Registry::GetCounter(std::string_view name, const LabelSet& labels) {
  if (!enabled_) return Counter{};
  const std::string key = MapKey(name, labels);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& cell = shard.counters[key];
  if (cell == nullptr) {
    cell = std::make_unique<internal::CounterCell>();
    shard.meta.emplace(key, std::make_pair(std::string(name), labels));
  }
  return Counter{cell.get()};
}

Gauge Registry::GetGauge(std::string_view name, const LabelSet& labels) {
  if (!enabled_) return Gauge{};
  const std::string key = MapKey(name, labels);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& cell = shard.gauges[key];
  if (cell == nullptr) {
    cell = std::make_unique<internal::GaugeCell>();
    shard.meta.emplace(key, std::make_pair(std::string(name), labels));
  }
  return Gauge{cell.get()};
}

Histogram Registry::GetHistogram(std::string_view name,
                                 const LabelSet& labels) {
  if (!enabled_) return Histogram{};
  const std::string key = MapKey(name, labels);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto& cell = shard.histograms[key];
  if (cell == nullptr) {
    cell = std::make_unique<internal::HistogramCell>();
    shard.meta.emplace(key, std::make_pair(std::string(name), labels));
  }
  return Histogram{cell.get()};
}

Snapshot Registry::TakeSnapshot() const {
  Snapshot snap;
  if (!enabled_) return snap;
  for (std::size_t i = 0; i < kShards; ++i) {
    Shard& shard = shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [key, cell] : shard.counters) {
      const auto& [name, labels] = shard.meta.at(key);
      snap.counters.push_back(
          {name, labels, cell->value.load(std::memory_order_relaxed)});
    }
    for (const auto& [key, cell] : shard.gauges) {
      const auto& [name, labels] = shard.meta.at(key);
      snap.gauges.push_back(
          {name, labels, cell->value.load(std::memory_order_relaxed)});
    }
    for (const auto& [key, cell] : shard.histograms) {
      const auto& [name, labels] = shard.meta.at(key);
      HistogramSample sample;
      sample.name = name;
      sample.labels = labels;
      sample.count = cell->count.load(std::memory_order_relaxed);
      sample.sum = cell->sum.load(std::memory_order_relaxed);
      if (sample.count > 0) {
        sample.min = cell->min.load(std::memory_order_relaxed);
        sample.max = cell->max.load(std::memory_order_relaxed);
      }
      for (std::size_t b = 0; b < internal::kNumBuckets; ++b) {
        const std::uint64_t n =
            cell->buckets[b].load(std::memory_order_relaxed);
        if (n > 0) {
          sample.buckets.push_back({internal::BucketUpperBound(b), n});
        }
      }
      snap.histograms.push_back(std::move(sample));
    }
  }
  auto by_name_labels = [](const auto& a, const auto& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.labels.ToKey() < b.labels.ToKey();
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name_labels);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name_labels);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name_labels);
  return snap;
}

// ---- Snapshot queries ----------------------------------------------------

const HistogramSample* Snapshot::FindHistogram(std::string_view name,
                                               const LabelSet& labels) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name && h.labels == labels) return &h;
  }
  return nullptr;
}

std::uint64_t Snapshot::CounterValue(std::string_view name,
                                     const LabelSet& labels) const {
  for (const CounterSample& c : counters) {
    if (c.name == name && c.labels == labels) return c.value;
  }
  return 0;
}

std::int64_t Snapshot::GaugeValue(std::string_view name,
                                  const LabelSet& labels) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name && g.labels == labels) return g.value;
  }
  return 0;
}

std::uint64_t Snapshot::CounterTotal(std::string_view name) const {
  std::uint64_t total = 0;
  for (const CounterSample& c : counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

std::int64_t Snapshot::GaugeTotal(std::string_view name) const {
  std::int64_t total = 0;
  for (const GaugeSample& g : gauges) {
    if (g.name == name) total += g.value;
  }
  return total;
}

HistogramSample Snapshot::MergeHistograms(std::string_view name) const {
  HistogramSample merged;
  merged.name = std::string(name);
  std::map<std::uint64_t, std::uint64_t> buckets;
  bool any = false;
  for (const HistogramSample& h : histograms) {
    if (h.name != name || h.count == 0) continue;
    merged.count += h.count;
    merged.sum += h.sum;
    merged.min = any ? std::min(merged.min, h.min) : h.min;
    merged.max = any ? std::max(merged.max, h.max) : h.max;
    any = true;
    for (const auto& b : h.buckets) buckets[b.upper] += b.count;
  }
  merged.buckets.reserve(buckets.size());
  for (const auto& [upper, count] : buckets) {
    merged.buckets.push_back({upper, count});
  }
  return merged;
}

// ---- Exposition ----------------------------------------------------------

std::string Snapshot::ToPrometheusText() const {
  std::string out;
  std::string last_family;
  auto type_line = [&](const std::string& name, std::string_view type) {
    if (name == last_family) return;
    last_family = name;
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };
  for (const CounterSample& c : counters) {
    type_line(c.name, "counter");
    out += c.name;
    out += c.labels.ToPrometheus();
    out += ' ';
    out += std::to_string(c.value);
    out += '\n';
  }
  for (const GaugeSample& g : gauges) {
    type_line(g.name, "gauge");
    out += g.name;
    out += g.labels.ToPrometheus();
    out += ' ';
    out += std::to_string(g.value);
    out += '\n';
  }
  for (const HistogramSample& h : histograms) {
    type_line(h.name, "histogram");
    // Cumulative buckets; le is the exclusive upper bound of our storage
    // buckets, which is a valid inclusive bound for integer-valued samples
    // (v < upper  <=>  v <= upper-1; we report `upper` as le, conservative
    // by construction and exact at bucket edges for the merged view).
    std::uint64_t cumulative = 0;
    for (const auto& b : h.buckets) {
      cumulative += b.count;
      out += h.name;
      out += "_bucket";
      LabelSet with_le = h.labels;
      std::string labels = with_le.ToPrometheus();
      if (labels.empty()) {
        labels = "{le=\"" +
                 (b.upper == ~std::uint64_t{0} ? std::string("+Inf")
                                               : std::to_string(b.upper)) +
                 "\"}";
      } else {
        labels.back() = ',';
        labels += "le=\"";
        labels += b.upper == ~std::uint64_t{0} ? std::string("+Inf")
                                               : std::to_string(b.upper);
        labels += "\"}";
      }
      out += labels;
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    {
      out += h.name;
      out += "_bucket";
      std::string labels = h.labels.ToPrometheus();
      if (labels.empty()) {
        labels = "{le=\"+Inf\"}";
      } else {
        labels.back() = ',';
        labels += "le=\"+Inf\"}";
      }
      out += labels;
      out += ' ';
      out += std::to_string(h.count);
      out += '\n';
    }
    out += h.name;
    out += "_sum";
    out += h.labels.ToPrometheus();
    out += ' ';
    out += std::to_string(h.sum);
    out += '\n';
    out += h.name;
    out += "_count";
    out += h.labels.ToPrometheus();
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

std::string Snapshot::ToJson() const {
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const CounterSample& c : counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, c.name);
    out += ",\"labels\":";
    AppendJsonLabels(out, c.labels);
    out += ",\"value\":";
    out += std::to_string(c.value);
    out += '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const GaugeSample& g : gauges) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, g.name);
    out += ",\"labels\":";
    AppendJsonLabels(out, g.labels);
    out += ",\"value\":";
    out += std::to_string(g.value);
    out += '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const HistogramSample& h : histograms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, h.name);
    out += ",\"labels\":";
    AppendJsonLabels(out, h.labels);
    out += ",\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"min\":";
    out += std::to_string(h.min);
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += ",\"p50\":";
    out += std::to_string(h.Quantile(0.50));
    out += ",\"p99\":";
    out += std::to_string(h.Quantile(0.99));
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const auto& b : h.buckets) {
      if (!bfirst) out += ',';
      bfirst = false;
      out += "{\"le\":";
      out += b.upper == ~std::uint64_t{0} ? std::string("\"+Inf\"")
                                          : std::to_string(b.upper);
      out += ",\"count\":";
      out += std::to_string(b.count);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace ppj::metrics
