#ifndef PPJ_COMMON_STATUS_H_
#define PPJ_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace ppj {

/// Error categories used across the library. The set mirrors the failure
/// modes of the paper's system: protocol violations detected by the secure
/// coprocessor (tampering), capacity violations of the coprocessor memory,
/// transient faults of the untrusted host's storage, and ordinary usage
/// errors. The fault taxonomy (docs/ROBUSTNESS.md) splits host failures in
/// two: kUnavailable is *retryable* — the bounded-backoff retry policy may
/// recover it — while kTampered is an *integrity* failure that permanently
/// kills the device.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed inconsistent parameters.
  kOutOfRange,        ///< Index beyond a host region or relation bound.
  kCapacityExceeded,  ///< Coprocessor free memory (M tuple slots) exhausted.
  kTampered,          ///< Authenticated decryption failed: host misbehaved.
  kPrivacyViolation,  ///< An operation would leak beyond the definition.
  kNotFound,          ///< Named region / party / contract unknown.
  kAlreadyExists,     ///< Duplicate registration.
  kFailedPrecondition,///< API called in the wrong order.
  kUnimplemented,     ///< Feature intentionally not provided.
  kInternal,          ///< Invariant breakage; indicates a library bug.
  kUnavailable,       ///< Transient host/storage fault; safe to retry.
  kQuotaExceeded,     ///< A tenant quota refused the request (admission).
  kCancelled,         ///< The caller cancelled the request (cooperative).
  kDeadlineExceeded,  ///< The request's time budget expired.
  kCircuitOpen,       ///< The tenant's circuit breaker refused admission.
};

/// Returns a stable, human-readable name such as "TAMPERED".
std::string_view StatusCodeToString(StatusCode code);

/// Value-semantic error carrier in the style of Arrow/RocksDB. Functions in
/// this library never throw on expected failure paths; they return Status
/// (or Result<T>) instead. The OK status is cheap to copy and test.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Tampered(std::string msg) {
    return Status(StatusCode::kTampered, std::move(msg));
  }
  static Status PrivacyViolation(std::string msg) {
    return Status(StatusCode::kPrivacyViolation, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status QuotaExceeded(std::string msg) {
    return Status(StatusCode::kQuotaExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status CircuitOpen(std::string msg) {
    return Status(StatusCode::kCircuitOpen, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace ppj

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define PPJ_RETURN_NOT_OK(expr)                    \
  do {                                             \
    ::ppj::Status _ppj_status = (expr);            \
    if (!_ppj_status.ok()) return _ppj_status;     \
  } while (false)

#endif  // PPJ_COMMON_STATUS_H_
