#include "common/random.h"

#include <cassert>
#include <cstring>

namespace ppj {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's unbiased bounded generation.
  std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(NextU64());  // full range
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

void Rng::FillBytes(void* out, std::size_t size) {
  auto* p = static_cast<unsigned char*>(out);
  while (size >= 8) {
    const std::uint64_t v = NextU64();
    std::memcpy(p, &v, 8);
    p += 8;
    size -= 8;
  }
  if (size > 0) {
    const std::uint64_t v = NextU64();
    std::memcpy(p, &v, size);
  }
}

}  // namespace ppj
