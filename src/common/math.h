#ifndef PPJ_COMMON_MATH_H_
#define PPJ_COMMON_MATH_H_

#include <cstdint>
#include <vector>

namespace ppj {

/// Numeric helpers used by the analytical cost models of Chapters 4 and 5.
/// Everything probability-flavoured works in the natural-log domain because
/// the paper's privacy parameter sweeps reach down to epsilon = 1e-60, far
/// below what a plain double product of binomial coefficients survives.

/// ln(n choose k) via lgamma. Requires 0 <= k <= n; returns -inf-free exact
/// 0.0 for k == 0 or k == n.
double LogBinomial(std::uint64_t n, std::uint64_t k);

/// log base 2 of x; x > 0.
double Log2(double x);

/// ln(exp(a) + exp(b)) computed stably. Accepts -infinity for "probability
/// zero" summands.
double LogSumExp(double a, double b);

/// ln(sum_i exp(v_i)), stable; empty input yields -infinity.
double LogSumExp(const std::vector<double>& values);

/// ceil(a / b) for positive integers; b > 0.
std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b);

/// Smallest power of two >= x (x >= 1). Saturates at 2^63.
std::uint64_t NextPowerOfTwo(std::uint64_t x);

/// True when x is a power of two (x >= 1).
bool IsPowerOfTwo(std::uint64_t x);

/// floor(log2(x)) for x >= 1.
unsigned FloorLog2(std::uint64_t x);

/// Cost of a bitonic sorting network over n elements, measured in element
/// transfers between the secure coprocessor and the host: each of the
/// ~ (1/4) n (log2 n)^2 compare-exchange steps moves two elements in and two
/// out, i.e. n (log2 n)^2 transfers as the paper states (Section 4.4.1).
/// This is the closed-form the paper uses (n need not be a power of two in
/// the formula; implementations pad).
double BitonicTransferCost(double n);

/// Number of compare-exchange operations of the concrete padded bitonic
/// network this library executes for n elements (n >= 1). Exact count, used
/// to reconcile measured transfers with the model.
std::uint64_t BitonicExactComparators(std::uint64_t n);

}  // namespace ppj

#endif  // PPJ_COMMON_MATH_H_
