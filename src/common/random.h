#ifndef PPJ_COMMON_RANDOM_H_
#define PPJ_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

namespace ppj {

/// Deterministic, seedable pseudo-random source (xoshiro256**). Used for
/// workload generation, decoy nonces and oblivious-shuffle tags. Everything
/// in the library is reproducible given the seed, which the tests rely on.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();

  /// Uniform value in [0, bound) via Lemire rejection; bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform value in [lo, hi] inclusive; lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  /// Fills `out` with random bytes.
  void FillBytes(void* out, std::size_t size);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace ppj

#endif  // PPJ_COMMON_RANDOM_H_
