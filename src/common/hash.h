#ifndef PPJ_COMMON_HASH_H_
#define PPJ_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace ppj {

/// 64-bit FNV-1a over a byte range.
std::uint64_t Fnv1a64(std::span<const std::byte> bytes);
std::uint64_t Fnv1a64(const void* data, std::size_t size);

/// Incremental FNV-1a accumulator. Used by AccessTrace so that traces with
/// hundreds of millions of events can be compared for equality in O(1)
/// memory (Definition 1 / Definition 3 audits).
class RunningHash {
 public:
  RunningHash() = default;

  void Update(const void* data, std::size_t size);
  void UpdateU64(std::uint64_t v);

  std::uint64_t digest() const { return state_; }
  std::uint64_t count() const { return count_; }

  void Reset();

  bool operator==(const RunningHash& other) const {
    return state_ == other.state_ && count_ == other.count_;
  }

 private:
  static constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  std::uint64_t state_ = kOffsetBasis;
  std::uint64_t count_ = 0;
};

}  // namespace ppj

#endif  // PPJ_COMMON_HASH_H_
