#include "common/status.h"

namespace ppj {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kCapacityExceeded:
      return "CAPACITY_EXCEEDED";
    case StatusCode::kTampered:
      return "TAMPERED";
    case StatusCode::kPrivacyViolation:
      return "PRIVACY_VIOLATION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kQuotaExceeded:
      return "QUOTA_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCircuitOpen:
      return "CIRCUIT_OPEN";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ppj
