#include "common/math.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ppj {

double LogBinomial(std::uint64_t n, std::uint64_t k) {
  assert(k <= n);
  if (k == 0 || k == n) return 0.0;
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

double Log2(double x) { return std::log2(x); }

double LogSumExp(double a, double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  const double m = std::max(a, b);
  return m + std::log(std::exp(a - m) + std::exp(b - m));
}

double LogSumExp(const std::vector<double>& values) {
  double acc = -std::numeric_limits<double>::infinity();
  for (double v : values) acc = LogSumExp(acc, v);
  return acc;
}

std::uint64_t CeilDiv(std::uint64_t a, std::uint64_t b) {
  assert(b > 0);
  return a / b + (a % b != 0 ? 1 : 0);
}

std::uint64_t NextPowerOfTwo(std::uint64_t x) {
  assert(x >= 1);
  std::uint64_t p = 1;
  while (p < x && p < (std::uint64_t{1} << 63)) p <<= 1;
  return p;
}

bool IsPowerOfTwo(std::uint64_t x) { return x >= 1 && (x & (x - 1)) == 0; }

unsigned FloorLog2(std::uint64_t x) {
  assert(x >= 1);
  unsigned r = 0;
  while (x >>= 1) ++r;
  return r;
}

double BitonicTransferCost(double n) {
  if (n <= 1.0) return 0.0;
  const double lg = std::log2(n);
  return n * lg * lg;
}

std::uint64_t BitonicExactComparators(std::uint64_t n) {
  if (n <= 1) return 0;
  const std::uint64_t p = NextPowerOfTwo(n);
  const unsigned lg = FloorLog2(p);
  // A power-of-two bitonic network has lg*(lg+1)/2 stages of p/2 comparators.
  return (p / 2) * (static_cast<std::uint64_t>(lg) * (lg + 1) / 2);
}

}  // namespace ppj
