#ifndef PPJ_COMMON_METRICS_H_
#define PPJ_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ppj::metrics {

/// Process-wide service metrics: lock-sharded counters, gauges and
/// log-linear histograms keyed by (name, labels), with Prometheus-text and
/// JSON exposition. This is the *cross-request* observability layer — the
/// PR-2 telemetry span trees observe one execution at a time; the registry
/// accumulates queue waits, per-tenant fairness, quota refusals, reuse-cache
/// hits and retry storms across every request the service ever served.
///
/// Trace-neutrality invariant (load-bearing — docs/OBSERVABILITY.md,
/// tests/test_telemetry.cc): like telemetry, the registry is an *observer*.
/// Instrumentation points only ever read public counters and wall clocks;
/// they never issue a Get/Put, never charge a model cycle, never draw
/// device randomness. The adversary-visible surface of Definitions 1 and 3
/// is bit-identical with metrics enabled, disabled at runtime, or compiled
/// out (-DPPJ_METRICS=OFF).
///
/// Label cardinality is bounded by construction: the schema is the fixed
/// five-field set below, and every value is an already-adversary-visible
/// request attribute (tenant name, request kind, algorithm, outcome,
/// operator name) — never data-dependent, so the exposition itself cannot
/// leak beyond the definitions.
struct LabelSet {
  std::string tenant;
  std::string kind;       ///< JoinRequest kind ("pair-join", ...).
  std::string algorithm;  ///< Resolved core::Algorithm name.
  std::string outcome;    ///< completed|failed|refused|reused|cancelled.
  std::string op;         ///< Plan-operator name (per-op attribution).

  /// Named constructor for the common tenant-only label set; set further
  /// fields on the returned value.
  static LabelSet ForTenant(std::string tenant_name) {
    LabelSet labels;
    labels.tenant = std::move(tenant_name);
    return labels;
  }

  bool operator==(const LabelSet&) const = default;
  bool empty() const {
    return tenant.empty() && kind.empty() && algorithm.empty() &&
           outcome.empty() && op.empty();
  }
  /// `{tenant="a",outcome="failed"}` — only non-empty fields, stable field
  /// order; "" for an all-empty set.
  std::string ToPrometheus() const;
  /// Canonical map key (field-order-stable, collision-free).
  std::string ToKey() const;
};

namespace internal {

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<std::int64_t> value{0};
};

/// Log-linear bucketing: 32 unit-width buckets for values < 32, then 4
/// sub-buckets per power of two. Relative quantile error is bounded by
/// 1/4 of the bucket width — good enough for p50/p99 latency attribution
/// at any scale from nanoseconds to hours, in 268 fixed buckets.
inline constexpr std::size_t kLinearBuckets = 32;
inline constexpr std::size_t kSubBuckets = 4;
inline constexpr std::size_t kFirstOctave = 5;  // 2^5 == kLinearBuckets
inline constexpr std::size_t kNumBuckets =
    kLinearBuckets + (64 - kFirstOctave) * kSubBuckets;

std::size_t BucketIndex(std::uint64_t value);
/// Exclusive upper bound of a bucket (UINT64_MAX for the last octave).
std::uint64_t BucketUpperBound(std::size_t index);
/// Inclusive lower bound of a bucket.
std::uint64_t BucketLowerBound(std::size_t index);

struct HistogramCell {
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<std::uint64_t> min{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max{0};
};

}  // namespace internal

/// Monotonic counter handle. Cheap to copy; thread-safe (one relaxed
/// fetch_add per Increment). A null handle (disabled or compiled-out
/// registry) no-ops.
class Counter {
 public:
  Counter() = default;
  void Increment(std::uint64_t delta = 1) {
    if (cell_ != nullptr) {
      cell_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::uint64_t value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed)
                            : 0;
  }

 private:
  friend class Registry;
  explicit Counter(internal::CounterCell* cell) : cell_(cell) {}
  internal::CounterCell* cell_ = nullptr;
};

/// Instantaneous value handle (queue depth, in-flight requests).
class Gauge {
 public:
  Gauge() = default;
  void Set(std::int64_t value) {
    if (cell_ != nullptr) cell_->value.store(value, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    if (cell_ != nullptr) {
      cell_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  std::int64_t value() const {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed)
                            : 0;
  }

 private:
  friend class Registry;
  explicit Gauge(internal::GaugeCell* cell) : cell_(cell) {}
  internal::GaugeCell* cell_ = nullptr;
};

/// Log-linear histogram handle. Observe() is wait-free (a handful of
/// relaxed atomic ops); quantiles are computed at snapshot time.
class Histogram {
 public:
  Histogram() = default;
  void Observe(std::uint64_t value);

 private:
  friend class Registry;
  explicit Histogram(internal::HistogramCell* cell) : cell_(cell) {}
  internal::HistogramCell* cell_ = nullptr;
};

// ---- Snapshots -----------------------------------------------------------

struct CounterSample {
  std::string name;
  LabelSet labels;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  LabelSet labels;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  LabelSet labels;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  struct Bucket {
    std::uint64_t upper = 0;  ///< Exclusive upper bound.
    std::uint64_t count = 0;  ///< Non-cumulative per-bucket count.
  };
  /// Only non-empty buckets, ascending by upper bound.
  std::vector<Bucket> buckets;

  /// Bucket-interpolated quantile, clamped to [min, max]. q in [0, 1];
  /// 0 when the histogram is empty.
  std::uint64_t Quantile(double q) const;
};

/// Point-in-time copy of a registry. Samples are sorted by (name, label
/// key) so exposition output is deterministic.
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Exact-match lookups; nullptr / 0 when absent.
  const HistogramSample* FindHistogram(std::string_view name,
                                       const LabelSet& labels) const;
  std::uint64_t CounterValue(std::string_view name,
                             const LabelSet& labels) const;
  std::int64_t GaugeValue(std::string_view name, const LabelSet& labels) const;

  /// Sum over every sample of `name`, all label sets.
  std::uint64_t CounterTotal(std::string_view name) const;
  std::int64_t GaugeTotal(std::string_view name) const;
  /// Bucket-wise merge of every histogram named `name` (labels cleared) —
  /// e.g. the all-tenant latency distribution.
  HistogramSample MergeHistograms(std::string_view name) const;

  /// Prometheus text exposition format (one # TYPE line per family;
  /// histograms expose cumulative _bucket{le=...}, _sum and _count).
  std::string ToPrometheusText() const;
  /// The same data as a JSON document, with p50/p99 precomputed per
  /// histogram.
  std::string ToJson() const;
};

/// The registry: get-or-create metric handles by (name, labels), snapshot
/// on demand. Thread-safe throughout; handle creation takes one shard lock,
/// updates through handles are lock-free. Construct disabled (or build with
/// -DPPJ_METRICS=OFF) and every handle becomes a no-op while Snapshot()
/// returns an empty document — behavior-neutral by construction.
class Registry {
 public:
  Registry() : Registry(true) {}
  explicit Registry(bool enabled);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default instance every service publishes into unless
  /// explicitly pointed elsewhere (service::SchedulerOptions::registry).
  static Registry& Global();

  /// False when the library was built with -DPPJ_METRICS=OFF.
  static bool CompiledIn();
  /// False when constructed disabled or when metrics are compiled out.
  bool enabled() const { return enabled_; }

  Counter GetCounter(std::string_view name, const LabelSet& labels = {});
  Gauge GetGauge(std::string_view name, const LabelSet& labels = {});
  Histogram GetHistogram(std::string_view name, const LabelSet& labels = {});

  Snapshot TakeSnapshot() const;

 private:
  struct Shard;
  Shard& ShardFor(std::string_view key) const;

  bool enabled_;
  static constexpr std::size_t kShards = 16;
  std::unique_ptr<Shard[]> shards_;
};

// ---- Metric-name constants (the service's label schema) ------------------
// docs/OBSERVABILITY.md#service-metrics documents each family.

/// Admissions, labeled {tenant}.
inline constexpr std::string_view kRequestsSubmitted =
    "ppj_requests_submitted_total";
/// Terminal request outcomes, labeled {tenant, kind, algorithm, outcome}
/// with disjoint outcomes
/// completed|failed|reused|cancelled|deadline_exceeded.
inline constexpr std::string_view kRequestsTotal = "ppj_requests_total";
/// Admission/validation refusals, labeled {tenant, outcome="refused"}.
inline constexpr std::string_view kQuotaRefusals = "ppj_quota_refusals_total";
/// Circuit-breaker families, labeled {tenant}: state is a gauge
/// (0=closed, 1=open, 2=half-open); trips count closed→open transitions;
/// refusals count admissions rejected while open.
inline constexpr std::string_view kBreakerState = "ppj_breaker_state";
inline constexpr std::string_view kBreakerTrips = "ppj_breaker_trips_total";
inline constexpr std::string_view kBreakerRefusals =
    "ppj_breaker_refusals_total";
/// Reuse-cache hits, labeled {tenant, kind, algorithm}.
inline constexpr std::string_view kReuseHits = "ppj_reuse_hits_total";
/// Gauges, labeled {tenant}.
inline constexpr std::string_view kQueueDepth = "ppj_queue_depth";
inline constexpr std::string_view kInFlight = "ppj_requests_in_flight";
/// Lifecycle histograms (ns), labeled {tenant}.
inline constexpr std::string_view kQueueWaitNs = "ppj_queue_wait_ns";
inline constexpr std::string_view kExecutionNs = "ppj_execution_ns";
inline constexpr std::string_view kLatencyNs = "ppj_request_latency_ns";
/// TransferMetrics rollups, labeled {tenant, algorithm}.
inline constexpr std::string_view kHostRetries = "ppj_host_retries_total";
inline constexpr std::string_view kBackoffCycles =
    "ppj_backoff_cycles_total";
inline constexpr std::string_view kTupleTransfers =
    "ppj_tuple_transfers_total";
/// Per-operator retry attribution from the plan executor, labeled
/// {algorithm, op}.
inline constexpr std::string_view kOpHostRetries =
    "ppj_op_host_retries_total";
inline constexpr std::string_view kOpBackoffCycles =
    "ppj_op_backoff_cycles_total";
/// Sharded-execution channel accounting, labeled {tenant, algorithm}. All
/// values derive from the adversary-visible channel shape (message sizes,
/// rounds, mailbox depths), so publishing them is trace-neutral by
/// construction — the MetricsNeutrality suite pins this. Queue depth is the
/// per-shard inbound-mailbox high-water mark, labeled additionally with
/// {op="shard<i>"}.
inline constexpr std::string_view kShardQueueDepth = "ppj_shard_queue_depth";
inline constexpr std::string_view kShardChannelBytes =
    "ppj_shard_channel_bytes_total";
inline constexpr std::string_view kShardChannelMessages =
    "ppj_shard_channel_messages_total";
inline constexpr std::string_view kShardExchangeRounds =
    "ppj_shard_exchange_rounds_total";

}  // namespace ppj::metrics

#endif  // PPJ_COMMON_METRICS_H_
