#ifndef PPJ_COMMON_CANCEL_H_
#define PPJ_COMMON_CANCEL_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace ppj {

/// Cooperative cancellation handle for one request (docs/ROBUSTNESS.md,
/// "Deadlines and cooperative cancellation"). The scheduler owns one token
/// per admitted request; the execution layers hold a const pointer and call
/// Check() at *data-independent* checkpoints — operator boundaries in the
/// plan executor, retry-loop iterations in the coprocessor's transfer
/// recovery. Checkpoint placement is the trace-neutrality argument: a
/// checkpoint never depends on tuple values, and an uncancelled Check() has
/// no observable effect, so the trace/timing fingerprints of a run that is
/// not cancelled are bit-identical to a build without the resilience layer.
///
/// Thread safety: Cancel() and SetDeadline() may race with any number of
/// Check() calls — all state is a pair of relaxed atomics. Cancellation is
/// sticky; there is no reset (tokens are per-request and die with the
/// ticket).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Idempotent; takes effect at the next Check().
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute deadline. A zero time_since_epoch means "no
  /// deadline" and is never produced by a live steady clock.
  void SetDeadline(Clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }

  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True when a deadline is armed and has passed.
  bool deadline_expired() const {
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    return deadline != 0 &&
           Clock::now().time_since_epoch().count() >= deadline;
  }

  /// The cooperative checkpoint: OK to continue, kCancelled after Cancel(),
  /// kDeadlineExceeded after the armed deadline passed. Explicit
  /// cancellation wins over an expired deadline (the caller asked first).
  Status Check() const {
    if (cancel_requested()) {
      return Status::Cancelled("request cancelled by caller");
    }
    if (deadline_expired()) {
      return Status::DeadlineExceeded("request deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  /// Steady-clock ns since epoch; 0 = no deadline armed.
  std::atomic<std::int64_t> deadline_ns_{0};
};

}  // namespace ppj

#endif  // PPJ_COMMON_CANCEL_H_
