#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace ppj {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kWarning)};
std::mutex& LogMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void Logger::SetMinLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel Logger::min_level() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < min_level()) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::cerr << "[ppj:" << LevelName(level) << "] " << message << "\n";
}

}  // namespace ppj
