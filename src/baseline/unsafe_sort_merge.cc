#include "baseline/unsafe_sort_merge.h"

#include "common/math.h"
#include "oblivious/bitonic_sort.h"
#include "relation/encrypted_relation.h"

namespace ppj::baseline {

Result<core::Ch5Outcome> RunUnsafeSortMergeJoin(
    sim::Coprocessor& copro, const core::TwoWayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  const auto* eq =
      dynamic_cast<const relation::EqualityPredicate*>(join.predicate);
  if (eq == nullptr) {
    return Status::InvalidArgument("sort-merge needs an EqualityPredicate");
  }
  if (!IsPowerOfTwo(join.a->padded_size()) ||
      !IsPowerOfTwo(join.b->padded_size())) {
    return Status::InvalidArgument(
        "sort-merge baseline needs power-of-two padded regions");
  }

  // Oblivious sorts: safe on their own.
  PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
      copro, join.a->region(), join.a->padded_size(), *join.a->key(),
      oblivious::ColumnLess(join.a->schema(), eq->col_a())));
  PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
      copro, join.b->region(), join.b->padded_size(), *join.b->key(),
      oblivious::ColumnLess(join.b->schema(), eq->col_b())));

  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(join.JoinedPayloadSize()));
  const sim::RegionId output =
      copro.host()->CreateRegion("unsafe-sm-output", slot, 0);

  // Classic merge: THE LEAK — which cursor advances (visible as which
  // region the next Get touches) depends on the data.
  std::uint64_t written = 0;
  std::uint64_t i = 0;
  std::uint64_t j = 0;
  const std::uint64_t na = join.a->size();  // reals sort before padding
  const std::uint64_t nb = join.b->size();
  while (i < na && j < nb) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple a,
                         join.a->Fetch(copro, i));
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple b,
                         join.b->Fetch(copro, j));
    copro.NoteComparison();
    const std::int64_t ka = a.tuple.GetInt64(eq->col_a());
    const std::int64_t kb = b.tuple.GetInt64(eq->col_b());
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      // Emit the group cross product, rescanning B's equal-key run per A.
      std::uint64_t j_end = j;
      while (j_end < nb) {
        PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple bj,
                             join.b->Fetch(copro, j_end));
        copro.NoteComparison();
        if (bj.tuple.GetInt64(eq->col_b()) != ka) break;
        std::vector<std::uint8_t> bytes = a.tuple.Serialize();
        const std::vector<std::uint8_t> bb = bj.tuple.Serialize();
        bytes.insert(bytes.end(), bb.begin(), bb.end());
        PPJ_RETURN_NOT_OK(copro.host()->ResizeRegion(output, written + 1));
        PPJ_RETURN_NOT_OK(copro.PutSealed(output, written,
                                          relation::wire::MakeReal(bytes),
                                          *join.output_key));
        ++written;
        ++j_end;
      }
      ++i;  // next A tuple re-merges against the same B group start
    }
  }

  core::Ch5Outcome out;
  out.output_region = output;
  out.result_size = written;
  return out;
}

}  // namespace ppj::baseline
