#include "baseline/plain_join.h"

#include <algorithm>
#include <unordered_map>

namespace ppj::baseline {

using relation::Relation;
using relation::Schema;
using relation::Tuple;

std::vector<Tuple> NestedLoopJoin(const Relation& a, const Relation& b,
                                  const relation::PairPredicate& pred,
                                  const Schema* result_schema) {
  std::vector<Tuple> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) {
      if (pred.Match(a.tuple(i), b.tuple(j))) {
        out.push_back(Tuple::Concat(result_schema, a.tuple(i), b.tuple(j)));
      }
    }
  }
  return out;
}

Result<std::vector<Tuple>> SortMergeJoin(const Relation& a, const Relation& b,
                                         std::size_t col_a, std::size_t col_b,
                                         const Schema* result_schema) {
  if (col_a >= a.schema().num_columns() ||
      col_b >= b.schema().num_columns()) {
    return Status::InvalidArgument("join column out of range");
  }
  std::vector<std::size_t> ia(a.size()), ib(b.size());
  for (std::size_t i = 0; i < ia.size(); ++i) ia[i] = i;
  for (std::size_t i = 0; i < ib.size(); ++i) ib[i] = i;
  std::sort(ia.begin(), ia.end(), [&](std::size_t x, std::size_t y) {
    return a.tuple(x).GetInt64(col_a) < a.tuple(y).GetInt64(col_a);
  });
  std::sort(ib.begin(), ib.end(), [&](std::size_t x, std::size_t y) {
    return b.tuple(x).GetInt64(col_b) < b.tuple(y).GetInt64(col_b);
  });

  std::vector<Tuple> out;
  std::size_t i = 0, j = 0;
  while (i < ia.size() && j < ib.size()) {
    const std::int64_t ka = a.tuple(ia[i]).GetInt64(col_a);
    const std::int64_t kb = b.tuple(ib[j]).GetInt64(col_b);
    if (ka < kb) {
      ++i;
    } else if (ka > kb) {
      ++j;
    } else {
      // Emit the full cross product of the equal-key groups.
      std::size_t j_end = j;
      while (j_end < ib.size() &&
             b.tuple(ib[j_end]).GetInt64(col_b) == ka) {
        ++j_end;
      }
      std::size_t i_end = i;
      while (i_end < ia.size() &&
             a.tuple(ia[i_end]).GetInt64(col_a) == ka) {
        ++i_end;
      }
      for (std::size_t x = i; x < i_end; ++x) {
        for (std::size_t y = j; y < j_end; ++y) {
          out.push_back(
              Tuple::Concat(result_schema, a.tuple(ia[x]), b.tuple(ib[y])));
        }
      }
      i = i_end;
      j = j_end;
    }
  }
  return out;
}

Result<std::vector<Tuple>> HashJoin(const Relation& a, const Relation& b,
                                    std::size_t col_a, std::size_t col_b,
                                    const Schema* result_schema) {
  if (col_a >= a.schema().num_columns() ||
      col_b >= b.schema().num_columns()) {
    return Status::InvalidArgument("join column out of range");
  }
  std::unordered_map<std::int64_t, std::vector<std::size_t>> build;
  for (std::size_t j = 0; j < b.size(); ++j) {
    build[b.tuple(j).GetInt64(col_b)].push_back(j);
  }
  std::vector<Tuple> out;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto it = build.find(a.tuple(i).GetInt64(col_a));
    if (it == build.end()) continue;
    for (std::size_t j : it->second) {
      out.push_back(Tuple::Concat(result_schema, a.tuple(i), b.tuple(j)));
    }
  }
  return out;
}

}  // namespace ppj::baseline
