#ifndef PPJ_BASELINE_UNSAFE_COMMUTATIVE_H_
#define PPJ_BASELINE_UNSAFE_COMMUTATIVE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::baseline {

/// Outcome of the commutative-encryption false start (Section 4.5.1): the
/// host receives deterministic re-encryptions of both join columns and can
/// sort-merge them itself.
struct CommutativeOutcome {
  /// Deterministic per-key tokens of A's and B's join columns, as the host
  /// sees them. Equal plaintext keys produce equal tokens — that is the
  /// point, and the leak.
  std::vector<std::uint64_t> tokens_a;
  std::vector<std::uint64_t> tokens_b;
  /// Number of matching (a, b) token pairs (the correct equijoin size).
  std::uint64_t result_size = 0;
};

/// The commutative-encryption adaptation: T obliviously shuffles A (and B),
/// then re-encrypts each join key under one shared *deterministic*
/// symmetric encryption and hands the tokens to the host, which sort-merges
/// them without further coprocessor involvement. Correct, and the access
/// pattern is even data independent — but the *token multiset* leaks the
/// full duplicate distribution of both relations (the paper: "it leaks the
/// distribution of the duplicates"). The leak analyzer below quantifies it.
Result<CommutativeOutcome> RunUnsafeCommutativeJoin(
    sim::Coprocessor& copro, const core::TwoWayJoin& join);

/// The adversary's view: duplicate-frequency histogram of a token list
/// (how many keys occur once, twice, ...). Two shape-equal relations with
/// different skew produce different histograms — a distinguisher the
/// Definition 1 trace audit cannot see but the host trivially computes.
std::vector<std::uint64_t> DuplicateHistogram(
    const std::vector<std::uint64_t>& tokens);

}  // namespace ppj::baseline

#endif  // PPJ_BASELINE_UNSAFE_COMMUTATIVE_H_
