#include "baseline/unsafe_hash_join.h"

#include "common/hash.h"
#include "common/math.h"
#include "oblivious/shuffle.h"
#include "relation/encrypted_relation.h"

namespace ppj::baseline {

namespace {

std::uint64_t BucketOf(std::int64_t key, std::uint64_t buckets) {
  const std::uint64_t h = Fnv1a64(&key, sizeof(key));
  return h % buckets;
}

}  // namespace

Result<core::Ch5Outcome> RunUnsafeHashJoin(
    sim::Coprocessor& copro, const core::TwoWayJoin& join,
    const UnsafeHashJoinOptions& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  const auto* eq =
      dynamic_cast<const relation::EqualityPredicate*>(join.predicate);
  if (eq == nullptr) {
    return Status::InvalidArgument("hash join needs an EqualityPredicate");
  }
  if (!IsPowerOfTwo(join.a->padded_size())) {
    return Status::InvalidArgument(
        "hash-join baseline needs a power-of-two padded A region");
  }
  const std::uint64_t nb = options.num_buckets;
  const std::uint64_t cap = options.bucket_capacity;

  // Oblivious shuffle of A first, as the paper's pseudocode prescribes.
  PPJ_RETURN_NOT_OK(oblivious::ObliviousShuffle(
      copro, join.a->region(), join.a->padded_size(), *join.a->key()));

  // Bucket regions for A in host memory; epoch-based flushing.
  const std::size_t a_plain =
      relation::wire::PlainSize(join.a->schema()->tuple_size());
  const std::size_t a_slot = sim::Coprocessor::SealedSize(a_plain);
  const sim::RegionId bucket_region = copro.host()->CreateRegion(
      "unsafe-hash-buckets", a_slot, 0);
  const std::vector<std::uint8_t> a_decoy =
      relation::wire::MakeDecoy(join.a->schema()->tuple_size());

  // In-memory plaintext copies for the (plain) bucket join afterwards; the
  // leak of interest is the flush pattern above, so the post-partition join
  // is kept simple.
  std::vector<std::vector<relation::Tuple>> bucket_tuples(nb);

  std::vector<std::vector<std::vector<std::uint8_t>>> pending(nb);
  std::uint64_t flushed_epochs = 0;
  auto flush_all = [&]() -> Status {
    // Fill every bucket to capacity with decoys and write the epoch out.
    const std::uint64_t base = flushed_epochs * nb * cap;
    PPJ_RETURN_NOT_OK(
        copro.host()->ResizeRegion(bucket_region, base + nb * cap));
    for (std::uint64_t bkt = 0; bkt < nb; ++bkt) {
      for (std::uint64_t k = 0; k < cap; ++k) {
        const std::vector<std::uint8_t>& plain =
            k < pending[bkt].size() ? pending[bkt][k] : a_decoy;
        PPJ_RETURN_NOT_OK(copro.PutSealed(bucket_region, base + bkt * cap + k,
                                          plain, *join.output_key));
      }
      pending[bkt].clear();
    }
    ++flushed_epochs;
    return Status::OK();
  };

  for (std::uint64_t ai = 0; ai < join.a->padded_size(); ++ai) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple a,
                         join.a->Fetch(copro, ai));
    if (a.real) {
      const std::uint64_t bkt = BucketOf(a.tuple.GetInt64(eq->col_a()), nb);
      pending[bkt].push_back(
          relation::wire::MakeReal(a.tuple.Serialize()));
      bucket_tuples[bkt].push_back(a.tuple);
      // THE LEAK: when any bucket fills, everything is flushed — the number
      // of reads between flushes reveals the key-distribution skew.
      if (pending[bkt].size() >= cap) PPJ_RETURN_NOT_OK(flush_all());
    }
  }
  PPJ_RETURN_NOT_OK(flush_all());

  // Join corresponding buckets against B (plain nested loop per bucket).
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(join.JoinedPayloadSize()));
  const sim::RegionId output =
      copro.host()->CreateRegion("unsafe-hash-output", slot, 0);
  std::uint64_t written = 0;
  for (std::uint64_t bi = 0; bi < join.b->padded_size(); ++bi) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple b,
                         join.b->Fetch(copro, bi));
    if (!b.real) continue;
    const std::uint64_t bkt = BucketOf(b.tuple.GetInt64(eq->col_b()), nb);
    for (const relation::Tuple& a : bucket_tuples[bkt]) {
      copro.NoteComparison();
      if (join.predicate->Match(a, b.tuple)) {
        std::vector<std::uint8_t> bytes = a.Serialize();
        const std::vector<std::uint8_t> bb = b.tuple.Serialize();
        bytes.insert(bytes.end(), bb.begin(), bb.end());
        PPJ_RETURN_NOT_OK(copro.host()->ResizeRegion(output, written + 1));
        PPJ_RETURN_NOT_OK(copro.PutSealed(output, written,
                                          relation::wire::MakeReal(bytes),
                                          *join.output_key));
        ++written;
      }
    }
  }

  core::Ch5Outcome out;
  out.output_region = output;
  out.result_size = written;
  return out;
}

}  // namespace ppj::baseline
