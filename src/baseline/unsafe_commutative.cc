#include "baseline/unsafe_commutative.h"

#include <algorithm>
#include <map>

#include "common/math.h"
#include "crypto/aes128.h"
#include "crypto/key.h"
#include "oblivious/shuffle.h"
#include "relation/encrypted_relation.h"

namespace ppj::baseline {

Result<CommutativeOutcome> RunUnsafeCommutativeJoin(
    sim::Coprocessor& copro, const core::TwoWayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  const auto* eq =
      dynamic_cast<const relation::EqualityPredicate*>(join.predicate);
  if (eq == nullptr) {
    return Status::InvalidArgument(
        "commutative-encryption join needs an EqualityPredicate");
  }
  if (!IsPowerOfTwo(join.a->padded_size()) ||
      !IsPowerOfTwo(join.b->padded_size())) {
    return Status::InvalidArgument(
        "commutative baseline needs power-of-two padded regions");
  }

  // Oblivious shuffles, as prescribed: they hide *which input position* a
  // token came from, but not the token equalities themselves.
  PPJ_RETURN_NOT_OK(oblivious::ObliviousShuffle(
      copro, join.a->region(), join.a->padded_size(), *join.a->key()));
  PPJ_RETURN_NOT_OK(oblivious::ObliviousShuffle(
      copro, join.b->region(), join.b->padded_size(), *join.b->key()));

  // Deterministic symmetric re-encryption of the join keys with one shared
  // key: equal keys -> equal tokens (AES of the key value, truncated).
  const crypto::Aes128 det(crypto::DeriveKey(0xC0DE, "commutative-token"));
  auto tokenize = [&](std::int64_t key) {
    crypto::Block in{};
    for (int i = 0; i < 8; ++i) {
      in[i] = static_cast<std::uint8_t>(static_cast<std::uint64_t>(key) >>
                                        (8 * i));
    }
    const crypto::Block out = det.Encrypt(in);
    std::uint64_t token = 0;
    for (int i = 0; i < 8; ++i) {
      token |= static_cast<std::uint64_t>(out[i]) << (8 * i);
    }
    return token;
  };

  CommutativeOutcome out;
  for (std::uint64_t i = 0; i < join.a->padded_size(); ++i) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple a,
                         join.a->Fetch(copro, i));
    if (a.real) {
      out.tokens_a.push_back(tokenize(a.tuple.GetInt64(eq->col_a())));
    }
  }
  for (std::uint64_t i = 0; i < join.b->padded_size(); ++i) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple b,
                         join.b->Fetch(copro, i));
    if (b.real) {
      out.tokens_b.push_back(tokenize(b.tuple.GetInt64(eq->col_b())));
    }
  }

  // The host's own sort-merge over the tokens (no coprocessor involved).
  std::vector<std::uint64_t> sa = out.tokens_a;
  std::vector<std::uint64_t> sb = out.tokens_b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t i = 0, j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] < sb[j]) {
      ++i;
    } else if (sa[i] > sb[j]) {
      ++j;
    } else {
      std::size_t ie = i, je = j;
      while (ie < sa.size() && sa[ie] == sa[i]) ++ie;
      while (je < sb.size() && sb[je] == sb[j]) ++je;
      out.result_size += (ie - i) * (je - j);
      i = ie;
      j = je;
    }
  }
  return out;
}

std::vector<std::uint64_t> DuplicateHistogram(
    const std::vector<std::uint64_t>& tokens) {
  std::map<std::uint64_t, std::uint64_t> counts;
  for (std::uint64_t t : tokens) ++counts[t];
  std::uint64_t max_count = 0;
  for (const auto& [token, c] : counts) max_count = std::max(max_count, c);
  std::vector<std::uint64_t> hist(max_count + 1, 0);
  for (const auto& [token, c] : counts) ++hist[c];
  return hist;
}

}  // namespace ppj::baseline
