#ifndef PPJ_BASELINE_UNSAFE_NESTED_LOOP_H_
#define PPJ_BASELINE_UNSAFE_NESTED_LOOP_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::baseline {

/// The "straightforward, but unsafe" adaptation of Section 3.4.1: T reads
/// a, reads each b, and outputs a result tuple *only when the pair
/// matches*. Input and output stay encrypted — yet the host learns exactly
/// which (a, b) pairs joined by watching whether an output was produced
/// before the next B read. Kept in the library as the negative control for
/// the privacy auditor and the motivating example for the fixed-time /
/// fixed-size design principles.
Result<core::Ch5Outcome> RunUnsafeNestedLoop(sim::Coprocessor& copro,
                                             const core::TwoWayJoin& join);

/// The "incorrect fix" of Section 3.4.2: buffer up to M results inside T
/// and flush whenever the buffer fills. Flush positions still correlate
/// with the match distribution, so it also fails the audit.
Result<core::Ch5Outcome> RunUnsafeBufferedNestedLoop(
    sim::Coprocessor& copro, const core::TwoWayJoin& join);

}  // namespace ppj::baseline

#endif  // PPJ_BASELINE_UNSAFE_NESTED_LOOP_H_
