#ifndef PPJ_BASELINE_UNSAFE_SORT_MERGE_H_
#define PPJ_BASELINE_UNSAFE_SORT_MERGE_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::baseline {

/// The sort-merge false start of Section 4.5.1. Both relations are
/// obliviously sorted (that part is safe), but the *merge* advances the A
/// or B cursor depending on how the keys compare — so the interleaving of
/// A-reads and B-reads in the trace reveals the number of matches per
/// tuple. Negative control for the auditor; also a correct (plaintext-
/// equivalent) equijoin, so the output itself is right.
///
/// Requires an EqualityPredicate and power-of-two padded A and B regions.
/// Sorts both input regions in place.
Result<core::Ch5Outcome> RunUnsafeSortMergeJoin(sim::Coprocessor& copro,
                                                const core::TwoWayJoin& join);

}  // namespace ppj::baseline

#endif  // PPJ_BASELINE_UNSAFE_SORT_MERGE_H_
