#ifndef PPJ_BASELINE_PLAIN_JOIN_H_
#define PPJ_BASELINE_PLAIN_JOIN_H_

#include <vector>

#include "common/result.h"
#include "relation/predicate.h"
#include "relation/relation.h"

namespace ppj::baseline {

/// Plaintext reference joins. These run outside any privacy machinery and
/// serve as correctness oracles for the secure algorithms and as the
/// classical algorithms whose "straightforward adaptations" Chapter 3/4
/// show to be unsafe.

/// Classic nested loop join: every pair evaluated.
std::vector<relation::Tuple> NestedLoopJoin(
    const relation::Relation& a, const relation::Relation& b,
    const relation::PairPredicate& pred,
    const relation::Schema* result_schema);

/// Classic sort-merge equijoin on int64 key columns.
Result<std::vector<relation::Tuple>> SortMergeJoin(
    const relation::Relation& a, const relation::Relation& b,
    std::size_t col_a, std::size_t col_b,
    const relation::Schema* result_schema);

/// Classic hash equijoin on int64 key columns (build on B, probe with A).
Result<std::vector<relation::Tuple>> HashJoin(
    const relation::Relation& a, const relation::Relation& b,
    std::size_t col_a, std::size_t col_b,
    const relation::Schema* result_schema);

}  // namespace ppj::baseline

#endif  // PPJ_BASELINE_PLAIN_JOIN_H_
