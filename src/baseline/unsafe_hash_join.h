#ifndef PPJ_BASELINE_UNSAFE_HASH_JOIN_H_
#define PPJ_BASELINE_UNSAFE_HASH_JOIN_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::baseline {

struct UnsafeHashJoinOptions {
  std::uint64_t num_buckets = 4;
  std::uint64_t bucket_capacity = 8;  ///< p in the paper's footnote
};

/// The grace-hash false start of Section 4.5.1. A is obliviously shuffled,
/// then partitioned into hash buckets; whenever one bucket fills, *all*
/// buckets are padded with decoys and flushed. The flush cadence — how many
/// tuples T reads between bucket writes — tracks the skew of the join-key
/// distribution (a uniform relation flushes after ~ num_buckets * capacity
/// reads, a skewed one after ~ capacity reads), so partitioning leaks.
/// The corresponding buckets are then joined pairwise to produce the
/// (correct) result.
///
/// Requires an EqualityPredicate and power-of-two padded A region.
Result<core::Ch5Outcome> RunUnsafeHashJoin(
    sim::Coprocessor& copro, const core::TwoWayJoin& join,
    const UnsafeHashJoinOptions& options = {});

}  // namespace ppj::baseline

#endif  // PPJ_BASELINE_UNSAFE_HASH_JOIN_H_
