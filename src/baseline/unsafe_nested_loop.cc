#include "baseline/unsafe_nested_loop.h"

#include "relation/encrypted_relation.h"

namespace ppj::baseline {

namespace {

std::vector<std::uint8_t> Joined(
    const relation::EncryptedRelation::FetchedTuple& a,
    const relation::EncryptedRelation::FetchedTuple& b) {
  std::vector<std::uint8_t> bytes = a.tuple.Serialize();
  const std::vector<std::uint8_t> bb = b.tuple.Serialize();
  bytes.insert(bytes.end(), bb.begin(), bb.end());
  return relation::wire::MakeReal(bytes);
}

}  // namespace

Result<core::Ch5Outcome> RunUnsafeNestedLoop(sim::Coprocessor& copro,
                                             const core::TwoWayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(join.JoinedPayloadSize()));
  const sim::RegionId output =
      copro.host()->CreateRegion("unsafe-nl-output", slot, 0);

  std::uint64_t written = 0;
  for (std::uint64_t ai = 0; ai < join.a->size(); ++ai) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple a,
                         join.a->Fetch(copro, ai));
    for (std::uint64_t bi = 0; bi < join.b->padded_size(); ++bi) {
      PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple b,
                           join.b->Fetch(copro, bi));
      copro.NoteComparison();
      if (a.real && b.real && join.predicate->Match(a.tuple, b.tuple)) {
        // THE LEAK: a put appears in the trace exactly when a pair matches.
        PPJ_RETURN_NOT_OK(copro.host()->ResizeRegion(output, written + 1));
        PPJ_RETURN_NOT_OK(
            copro.PutSealed(output, written, Joined(a, b), *join.output_key));
        ++written;
      }
    }
  }
  core::Ch5Outcome out;
  out.output_region = output;
  out.result_size = written;
  return out;
}

Result<core::Ch5Outcome> RunUnsafeBufferedNestedLoop(
    sim::Coprocessor& copro, const core::TwoWayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  const std::uint64_t m = std::max<std::uint64_t>(copro.memory_tuples(), 1);
  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer,
                       sim::SecureBuffer::Allocate(copro, m));
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(join.JoinedPayloadSize()));
  const sim::RegionId output =
      copro.host()->CreateRegion("unsafe-bnl-output", slot, 0);

  std::uint64_t written = 0;
  auto flush = [&]() -> Status {
    PPJ_RETURN_NOT_OK(
        copro.host()->ResizeRegion(output, written + buffer.size()));
    for (std::size_t k = 0; k < buffer.size(); ++k) {
      PPJ_RETURN_NOT_OK(copro.PutSealed(output, written + k, buffer.At(k),
                                        *join.output_key));
    }
    written += buffer.size();
    buffer.Clear();
    return Status::OK();
  };

  for (std::uint64_t ai = 0; ai < join.a->size(); ++ai) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple a,
                         join.a->Fetch(copro, ai));
    for (std::uint64_t bi = 0; bi < join.b->padded_size(); ++bi) {
      PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple b,
                           join.b->Fetch(copro, bi));
      copro.NoteComparison();
      if (a.real && b.real && join.predicate->Match(a.tuple, b.tuple)) {
        PPJ_RETURN_NOT_OK(buffer.Push(Joined(a, b)));
        // STILL A LEAK: the *when* of the flush tracks the match density
        // (Section 3.4.2 — the adversary estimates the distribution).
        if (buffer.full()) PPJ_RETURN_NOT_OK(flush());
      }
    }
  }
  PPJ_RETURN_NOT_OK(flush());
  core::Ch5Outcome out;
  out.output_region = output;
  out.result_size = written;
  return out;
}

}  // namespace ppj::baseline
