#ifndef PPJ_CORE_ALGORITHM4_H_
#define PPJ_CORE_ALGORITHM4_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::core {

struct Algorithm4Options {
  /// Swap size of the final windowed oblivious filter; 0 = the optimal
  /// Delta* of Eqn 5.1.
  std::uint64_t filter_delta = 0;
};

/// Algorithm 4 (Section 5.3.1) — exact privacy preserving join for
/// coprocessors with *small* memory (needs only the two staging slots).
///
/// One pass over the L iTuples of D = X_1 x ... x X_J writes exactly one
/// oTuple per iTuple — the real join result when satisfy() holds, a decoy
/// otherwise — so the host sees a pattern determined by L alone. The
/// optimized windowed oblivious filter of Section 5.2.2 then strips the
/// L - S decoys, leaving exactly the S results (Definition 3's exact-output
/// requirement).
///
/// Transfer cost (Eqn 5.2): 2L + ((L-S)/Delta*)(S+Delta*) log2(S+Delta*)^2.
Result<Ch5Outcome> RunAlgorithm4(sim::Coprocessor& copro,
                                 const MultiwayJoin& join,
                                 const Algorithm4Options& options = {});

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM4_H_
