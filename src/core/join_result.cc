#include "core/join_result.h"

#include <cstring>

#include "core/host_retry.h"
#include "relation/encrypted_relation.h"
#include "sim/coprocessor.h"

namespace ppj::core {

Result<std::vector<std::uint8_t>> OpenSealedSlot(
    const std::vector<std::uint8_t>& slot, const crypto::Ocb& key) {
  if (slot.size() < crypto::Ocb::kBlockSize + crypto::Ocb::kTagSize) {
    return Status::Tampered("sealed slot too small");
  }
  crypto::Block nonce;
  std::memcpy(nonce.data(), slot.data(), crypto::Ocb::kBlockSize);
  const std::vector<std::uint8_t> body(slot.begin() + crypto::Ocb::kBlockSize,
                                       slot.end());
  return key.Decrypt(nonce, body);
}

Result<std::vector<relation::Tuple>> DecodeJoinOutput(
    const sim::HostStore& host, sim::RegionId region, std::uint64_t slots,
    const crypto::Ocb& key, const relation::Schema* result_schema) {
  std::vector<relation::Tuple> out;
  for (std::uint64_t i = 0; i < slots; ++i) {
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> sealed,
                         ReadSlotWithRetry(host, region, i));
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> plain,
                         OpenSealedSlot(sealed, key));
    if (!relation::wire::IsReal(plain)) continue;  // decoy: drop silently
    PPJ_ASSIGN_OR_RETURN(
        relation::Tuple tuple,
        relation::Tuple::Deserialize(result_schema,
                                     relation::wire::Payload(plain)));
    out.push_back(std::move(tuple));
  }
  return out;
}

}  // namespace ppj::core
