#ifndef PPJ_CORE_ALGORITHM5_H_
#define PPJ_CORE_ALGORITHM5_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::core {

/// Algorithm 5 (Section 5.3.2) — exact privacy preserving join for
/// coprocessors with *large* memory, no oblivious sorting needed.
///
/// T repeatedly scans all L iTuples in a fixed order; each scan collects the
/// next M results in coprocessor memory (resuming past the pindex cursor of
/// the previously flushed result) and flushes them *at the scan boundary* —
/// never mid-scan, which would reveal where the M-th match sits (the leak
/// Section 5.3.2 opens with). ceil(S/M) scans emit exactly S results.
///
/// The per-scan bookkeeping tracks whether any match beyond the stored ones
/// was seen, so the final scan is detected without an extra pass, matching
/// the paper's ceil(S/M) L read cost. The trace is a function of (L, S, M).
///
/// Transfer cost (Eqn 5.3): S + ceil(S/M) L.
Result<Ch5Outcome> RunAlgorithm5(sim::Coprocessor& copro,
                                 const MultiwayJoin& join);

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM5_H_
