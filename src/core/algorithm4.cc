#include "core/algorithm4.h"

#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"

// Algorithm 4 as a thin plan builder: the body lives in the operator layer
// (plan/ops_ch5.cc — ITupleScanOp + WindowedFilterOp + EmitOutputOp).

namespace ppj::core {

Result<Ch5Outcome> RunAlgorithm4(sim::Coprocessor& copro,
                                 const MultiwayJoin& join,
                                 const Algorithm4Options& options) {
  plan::JoinPlanOptions popts;
  popts.filter_delta = options.filter_delta;
  PPJ_ASSIGN_OR_RETURN(
      plan::PhysicalPlan physical,
      plan::BuildJoinPlan(Algorithm::kAlgorithm4, nullptr, &join, popts));
  plan::PlanContext ctx(nullptr, &join);
  PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
  return plan::TakeCh5Outcome(ctx);
}

}  // namespace ppj::core
