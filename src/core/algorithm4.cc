#include "core/algorithm4.h"

#include <algorithm>

#include "analysis/optimizer.h"
#include "common/telemetry.h"
#include "core/cartesian.h"
#include "oblivious/windowed_filter.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

Result<Ch5Outcome> RunAlgorithm4(sim::Coprocessor& copro,
                                 const MultiwayJoin& join,
                                 const Algorithm4Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "algorithm4");
  ITupleReader reader(&copro, join.tables);
  const std::uint64_t l = reader.index().size();

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  const sim::RegionId staging =
      copro.host()->CreateRegion("alg4-staging", slot, l);

  // Pass 1: one oTuple out per iTuple in, unconditionally. The scan and the
  // staging writes both move through the batched layer; the writer is
  // flushed before the filter below reads the staging region.
  reader.set_batch_hint(
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1)));
  BatchedSealWriter writer(&copro, staging, join.output_key);
  std::uint64_t s = 0;
  {
    PPJ_SPAN("mix");
    for (std::uint64_t idx = 0; idx < l; ++idx) {
      PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
      const bool hit =
          fetched.real && join.predicate->Satisfy(*fetched.components);
      copro.NoteMatchEvaluation(hit);
      if (hit) {
        ++s;
        PPJ_RETURN_NOT_OK(writer.Put(
            idx, relation::wire::MakeReal(
                     ITupleReader::JoinedPayload(*fetched.components))));
      } else {
        PPJ_RETURN_NOT_OK(writer.Put(idx, decoy));
      }
    }
    PPJ_RETURN_NOT_OK(writer.Flush());
  }

  Ch5Outcome out;
  out.result_size = s;
  out.staging_slots = l;
  if (s == 0) {
    // Nothing to deliver; the empty output size is itself part of the
    // (public) output.
    out.output_region = copro.host()->CreateRegion("alg4-output", slot, 0);
    return out;
  }

  // Pass 2: oblivious decoy filtering, L -> S.
  const std::uint64_t delta =
      options.filter_delta > 0 ? options.filter_delta
                               : analysis::OptimalSwapInteger(l, s);
  out.output_region = copro.host()->CreateRegion("alg4-output", slot, s);
  PPJ_ASSIGN_OR_RETURN(oblivious::FilterStats stats,
                       oblivious::WindowedObliviousFilter(
                           copro, staging, l, s, delta, *join.output_key,
                           out.output_region));
  (void)stats;
  PPJ_SPAN("output");
  for (std::uint64_t k = 0; k < s; ++k) {
    PPJ_RETURN_NOT_OK(copro.DiskWrite(out.output_region, k));
  }
  return out;
}

}  // namespace ppj::core
