#ifndef PPJ_CORE_PRIVACY_AUDITOR_H_
#define PPJ_CORE_PRIVACY_AUDITOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/trace.h"

namespace ppj::core {

/// Running trace fingerprint observed at the end of one physical-plan
/// operator. The PlanExecutor records one per executed operator; the
/// auditor uses matching checkpoint sequences to attribute a trace
/// divergence to the first operator whose cumulative fingerprint differs.
struct OpCheckpoint {
  std::string op;
  sim::TraceFingerprint trace;
};

/// What one audited execution produced: the complete trace fingerprint and
/// the retained event prefix for divergence diagnostics.
struct AuditRun {
  sim::TraceFingerprint fingerprint;
  std::vector<sim::AccessEvent> retained_events;
  bool retained_complete = false;
  /// Per-operator checkpoints when the run went through the PlanExecutor
  /// (empty otherwise; attribution is then skipped).
  std::vector<OpCheckpoint> checkpoints;
};

/// Verdict of a Definition 1 / Definition 3 audit.
struct AuditResult {
  bool identical = false;
  sim::TraceFingerprint fingerprint_a;
  sim::TraceFingerprint fingerprint_b;
  /// Index of the first retained event where the traces diverge; -1 if the
  /// retained prefixes agree (divergence may still exist beyond retention
  /// when identical == false).
  std::int64_t first_divergence = -1;
  /// Name of the first physical-plan operator whose cumulative trace
  /// fingerprint differs between the two runs; empty when the runs carried
  /// no checkpoints or the divergence could not be attributed.
  std::string divergent_op;
  std::string detail;
};

/// Empirically checks the paper's security definitions: an algorithm is
/// privacy preserving iff its ordered list of host accesses is identical
/// across any two input instances with equal public shape parameters
/// (|A|,|B|,N for Definition 1; table sizes and |f(...)| for Definition 3).
///
/// The caller supplies a factory that builds world `w` (relations with
/// different *contents* but the same shape), runs the algorithm on a
/// freshly seeded coprocessor, and returns the observed trace. The auditor
/// compares the traces of worlds 0 and 1.
///
/// This is a falsification tool, not a proof: equal traces on adversarially
/// chosen shape-equal inputs is the property the paper proves; unequal
/// traces is a demonstrated leak (the unsafe baselines fail here).
class PrivacyAuditor {
 public:
  using WorldRunner = std::function<Result<AuditRun>(std::uint64_t world)>;

  /// Runs worlds 0 and 1 and compares traces.
  static Result<AuditResult> CompareWorlds(const WorldRunner& run);

  /// Runs `count` worlds and requires all traces pairwise identical.
  static Result<AuditResult> CompareManyWorlds(const WorldRunner& run,
                                               std::uint64_t count);
};

/// The full adversary surface of one *sharded* execution: every shard's
/// trace fingerprint (in shard order) plus the channel's message-shape
/// fingerprint. The sharded security claim extends Definitions 1/3: the
/// honest-but-curious host sees all shards and all inter-shard traffic, so
/// the *union* — not any single shard's trace — must be a function of the
/// public shape parameters (and the contract-fixed shard count) only.
struct ShardedAuditRun {
  std::vector<sim::TraceFingerprint> shard_fingerprints;
  sim::TraceFingerprint channel_fingerprint;
};

/// Verdict of a union-of-traces audit. On divergence, `detail` names the
/// first differing component: "shard <i>" or "channel".
struct ShardedAuditResult {
  bool identical = false;
  std::string detail;
};

class ShardedPrivacyAuditor {
 public:
  using WorldRunner =
      std::function<Result<ShardedAuditRun>(std::uint64_t world)>;

  /// Runs worlds 0 and 1 and compares the union surfaces.
  static Result<ShardedAuditResult> CompareShardedWorlds(
      const WorldRunner& run);

  /// Runs `count` worlds and requires all union surfaces pairwise
  /// identical.
  static Result<ShardedAuditResult> CompareManyShardedWorlds(
      const WorldRunner& run, std::uint64_t count);
};

}  // namespace ppj::core

#endif  // PPJ_CORE_PRIVACY_AUDITOR_H_
