#include "core/cartesian.h"

#include <cassert>

namespace ppj::core {

CartesianIndex::CartesianIndex(std::vector<std::uint64_t> table_sizes)
    : sizes_(std::move(table_sizes)) {
  assert(!sizes_.empty());
  strides_.assign(sizes_.size(), 1);
  for (std::size_t i = sizes_.size(); i-- > 1;) {
    strides_[i - 1] = strides_[i] * sizes_[i];
  }
  size_ = strides_[0] * sizes_[0];
}

std::vector<std::uint64_t> CartesianIndex::Decompose(
    std::uint64_t index) const {
  std::vector<std::uint64_t> out(sizes_.size());
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    out[i] = index / strides_[i];
    index %= strides_[i];
  }
  return out;
}

std::uint64_t CartesianIndex::Compose(
    const std::vector<std::uint64_t>& indices) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out += indices[i] * strides_[i];
  }
  return out;
}

namespace {
std::vector<std::uint64_t> TableSizes(
    const std::vector<const relation::EncryptedRelation*>& tables) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(tables.size());
  for (const auto* t : tables) sizes.push_back(t->size());
  return sizes;
}
}  // namespace

ITupleReader::ITupleReader(
    sim::Coprocessor* copro,
    std::vector<const relation::EncryptedRelation*> tables)
    : copro_(copro),
      tables_(std::move(tables)),
      index_(TableSizes(tables_)),
      cached_index_(tables_.size()),
      cached_tuple_(tables_.size()),
      cached_real_(tables_.size(), false) {
  for (const auto* t : tables_) payload_size_ += t->schema()->tuple_size();
}

Result<ITupleReader::Fetched> ITupleReader::Fetch(std::uint64_t logical) {
  const std::vector<std::uint64_t> parts = index_.Decompose(logical);
  Fetched out;
  out.components.reserve(tables_.size());
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (!cached_index_[t].has_value() || *cached_index_[t] != parts[t]) {
      PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple fetched,
                           tables_[t]->Fetch(*copro_, parts[t]));
      cached_index_[t] = parts[t];
      cached_tuple_[t] = std::move(fetched.tuple);
      cached_real_[t] = fetched.real;
    }
    out.components.push_back(cached_tuple_[t]);
    out.real = out.real && cached_real_[t];
  }
  copro_->NoteITupleRead();
  return out;
}

std::vector<std::uint8_t> ITupleReader::JoinedPayload(
    const std::vector<relation::Tuple>& components) {
  std::vector<std::uint8_t> payload;
  for (const relation::Tuple& t : components) {
    const std::vector<std::uint8_t> bytes = t.Serialize();
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  return payload;
}

}  // namespace ppj::core
