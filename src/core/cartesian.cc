#include "core/cartesian.h"

#include <algorithm>
#include <cassert>

namespace ppj::core {

CartesianIndex::CartesianIndex(std::vector<std::uint64_t> table_sizes)
    : sizes_(std::move(table_sizes)) {
  assert(!sizes_.empty());
  strides_.assign(sizes_.size(), 1);
  for (std::size_t i = sizes_.size(); i-- > 1;) {
    strides_[i - 1] = strides_[i] * sizes_[i];
  }
  size_ = strides_[0] * sizes_[0];
}

std::vector<std::uint64_t> CartesianIndex::Decompose(
    std::uint64_t index) const {
  std::vector<std::uint64_t> out(sizes_.size());
  DecomposeInto(index, out.data());
  return out;
}

void CartesianIndex::DecomposeInto(std::uint64_t index,
                                   std::uint64_t* out) const {
  for (std::size_t i = 0; i < sizes_.size(); ++i) {
    out[i] = index / strides_[i];
    index %= strides_[i];
  }
}

std::uint64_t CartesianIndex::Compose(
    const std::vector<std::uint64_t>& indices) const {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < indices.size(); ++i) {
    out += indices[i] * strides_[i];
  }
  return out;
}

namespace {
std::vector<std::uint64_t> TableSizes(
    const std::vector<const relation::EncryptedRelation*>& tables) {
  std::vector<std::uint64_t> sizes;
  sizes.reserve(tables.size());
  for (const auto* t : tables) sizes.push_back(t->size());
  return sizes;
}
}  // namespace

ITupleReader::ITupleReader(
    sim::Coprocessor* copro,
    std::vector<const relation::EncryptedRelation*> tables)
    : copro_(copro),
      tables_(std::move(tables)),
      index_(TableSizes(tables_)),
      parts_(tables_.size()),
      cached_index_(tables_.size()),
      cached_tuple_(tables_.size()),
      cached_real_(tables_.size(), false) {
  for (const auto* t : tables_) payload_size_ += t->schema()->tuple_size();
}

Result<ITupleReader::Fetched> ITupleReader::Fetch(std::uint64_t logical) {
  if (has_last_ && logical == last_logical_ + 1) {
    // Sequential scan: advance the per-table odometer without divisions.
    const std::vector<std::uint64_t>& sizes = index_.table_sizes();
    for (std::size_t t = tables_.size(); t-- > 0;) {
      if (++parts_[t] < sizes[t]) break;
      parts_[t] = 0;
    }
  } else {
    index_.DecomposeInto(logical, parts_.data());
  }
  last_logical_ = logical;
  has_last_ = true;
  Fetched out;
  const std::size_t last = tables_.size() - 1;
  for (std::size_t t = 0; t < tables_.size(); ++t) {
    if (!cached_index_[t].has_value() || *cached_index_[t] != parts_[t]) {
      bool real = false;
      if (t == last && batch_hint_ > 1) {
        // The innermost table varies fastest under a sequential scan of D,
        // so stage the next run of its slots in one host round trip. The
        // staged range is a function of (position, hint) only — never of
        // data — and consumption below performs the same per-slot Get
        // accounting as the scalar path.
        if (!run_.has_value() || run_->remaining() == 0 ||
            run_->position() != parts_[t]) {
          const std::uint64_t count = std::min<std::uint64_t>(
              batch_hint_, tables_[t]->size() - parts_[t]);
          PPJ_ASSIGN_OR_RETURN(
              relation::EncryptedRelation::FetchRun run,
              tables_[t]->FetchRange(*copro_, parts_[t], count));
          run_ = std::move(run);
        }
        PPJ_RETURN_NOT_OK(run_->NextInto(&cached_tuple_[t], &real));
      } else {
        // Scalar pipeline exactly as before the batched layer existed: one
        // GetOpen round trip and an allocating decode per component.
        PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple f,
                             tables_[t]->Fetch(*copro_, parts_[t]));
        cached_tuple_[t] = std::move(f.tuple);
        real = f.real;
      }
      cached_index_[t] = parts_[t];
      cached_real_[t] = real;
    }
    out.real = out.real && cached_real_[t];
  }
  out.components = &cached_tuple_;
  copro_->NoteITupleRead();
  return out;
}

std::vector<std::uint8_t> ITupleReader::JoinedPayload(
    const std::vector<relation::Tuple>& components) {
  std::vector<std::uint8_t> payload;
  for (const relation::Tuple& t : components) {
    const std::vector<std::uint8_t> bytes = t.Serialize();
    payload.insert(payload.end(), bytes.begin(), bytes.end());
  }
  return payload;
}

}  // namespace ppj::core
