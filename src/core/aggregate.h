#ifndef PPJ_CORE_AGGREGATE_H_
#define PPJ_CORE_AGGREGATE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/join_spec.h"

namespace ppj::core {

/// Privacy preserving aggregation over a join — the extension the paper's
/// conclusions single out: "Aggregation queries output statistics over the
/// join of two tables. It is not necessary to materialize the join result
/// ... we only need to worry about leaking information when accessing the
/// input tables, but not the output tables."
///
/// The coprocessor scans the L iTuples once in a fixed order, keeps the
/// running aggregate in its own memory (a handful of slots), and emits a
/// single sealed value at the end. The access pattern is a function of L
/// alone — strictly cheaper than any materializing algorithm (cost L + 1,
/// below even the L + S floor of joins) and trivially privacy preserving.
enum class AggregateKind {
  kCount,  ///< |join result|
  kSum,    ///< sum over matches of an int64 column of one input table
  kMin,    ///< min over matches (int64)
  kMax,    ///< max over matches (int64)
  kAvg,    ///< mean over matches: sum and count accumulated together
};

struct AggregateSpec {
  AggregateKind kind = AggregateKind::kCount;
  /// Which joined table the aggregated column lives in (ignored for COUNT).
  std::size_t table = 0;
  /// Which column of that table (int64; ignored for COUNT).
  std::size_t column = 0;
};

/// The aggregate value delivered to the recipient.
struct AggregateResult {
  std::int64_t count = 0;     ///< matches seen (always computed)
  std::int64_t sum = 0;       ///< kSum / kAvg
  std::int64_t min = 0;       ///< kMin (undefined when count == 0)
  std::int64_t max = 0;       ///< kMax (undefined when count == 0)
  double average = 0.0;       ///< kAvg (0 when count == 0)
};

/// Runs the aggregation. Transfer cost: the input scan only (L logical
/// reads); the single output value is delivered out-of-band (its size is
/// fixed, so it reveals nothing beyond the query's own answer).
Result<AggregateResult> RunAggregateJoin(sim::Coprocessor& copro,
                                         const MultiwayJoin& join,
                                         const AggregateSpec& spec);

/// GROUP BY COUNT over a join — the lightweight post-join mining operation
/// the federated-architecture line of work (Section 2.2.3, Bhattacharjee
/// et al.) runs on top of privacy preserving joins. The group universe
/// must be declared up front ([lo, hi] of an int64 column): the histogram
/// the coprocessor maintains — and the output it emits — then has a fixed,
/// data-independent size, so the access pattern depends on L and the
/// declared domain only. Values outside the domain land in an overflow
/// bucket rather than leaking through a variable-size output.
struct GroupByCountSpec {
  std::size_t table = 0;   ///< joined table holding the grouping column
  std::size_t column = 0;  ///< int64 column
  std::int64_t domain_lo = 0;
  std::int64_t domain_hi = 0;  ///< inclusive; hi - lo + 1 <= 4096 buckets
};

struct GroupByCountResult {
  std::int64_t domain_lo = 0;
  /// counts[v - domain_lo] = matches whose group value is v.
  std::vector<std::int64_t> counts;
  /// Matches with group values outside [lo, hi].
  std::int64_t overflow = 0;
};

Result<GroupByCountResult> RunGroupByCountJoin(sim::Coprocessor& copro,
                                               const MultiwayJoin& join,
                                               const GroupByCountSpec& spec);

}  // namespace ppj::core

#endif  // PPJ_CORE_AGGREGATE_H_
