#ifndef PPJ_CORE_PLANNER_H_
#define PPJ_CORE_PLANNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/algorithm.h"

namespace ppj::core {

/// Workload description the planner chooses from. The paper derives the
/// winning algorithm per operating point analytically (Section 4.6,
/// Section 5.3.4); the planner operationalizes those derivations so a
/// caller needn't re-read the paper.
struct PlannerInput {
  std::uint64_t size_a = 0;
  std::uint64_t size_b = 0;
  /// True when the predicate is a plain single-attribute equality —
  /// unlocks Algorithm 3.
  bool equality_predicate = false;
  /// Maximum matches per A tuple, when known a priori (0 = unknown; the
  /// Chapter 4 family then needs a preprocessing scan, which the planner
  /// charges).
  std::uint64_t n = 0;
  /// Expected result size (for the Chapter 5 family). 0 = unknown; the
  /// planner assumes the worst case S = L for sizing.
  std::uint64_t s = 0;
  /// Coprocessor free memory in tuples.
  std::uint64_t m = 64;
  /// Definition 3 strictness: when true, N|A|-shaped outputs are not
  /// acceptable (N itself is sensitive) and only Algorithms 4/5/6 qualify.
  bool exact_output_required = false;
  /// Largest acceptable privacy slack for Algorithm 6; 0 disables it.
  double epsilon = 0.0;
  /// Sharded execution (plan/sharded.h): number of sealed shards the
  /// contract fixed. 1 = unsharded. With shards > 1 only the Chapter 5
  /// family is admissible, the cost trees switch to the shard-local
  /// operators plus the `exchange` op, and per-scan terms are priced as
  /// the *makespan* — the maximum any single shard transfers — which is
  /// the parallel completion time in the paper's transfer-count model.
  unsigned shards = 1;
};

/// One node of a physical plan description: an operator (or cost term
/// inside an operator) with the closed-form formula it was priced by and
/// its predicted tuple transfers. Leaf names match the span names the plan
/// executor emits, so a predicted tree can be joined against a measured
/// telemetry tree node-for-node.
struct PlannedOp {
  std::string name;
  std::string formula;
  double predicted_transfers = 0;
  std::vector<PlannedOp> children;
};

/// A chosen algorithm with its predicted communication cost and the
/// operator tree the plan executor will run, priced per operator.
struct Plan {
  Algorithm algorithm = Algorithm::kAlgorithm5;
  double predicted_transfers = 0;
  std::string rationale;
  /// Root of the per-operator cost breakdown; `root.name` is the
  /// algorithm's device span, children are the executable operators in
  /// plan order. `root.predicted_transfers` sums the children and equals
  /// `predicted_transfers` for the winning algorithm.
  PlannedOp root;
};

/// Prices the operator tree of one specific algorithm for this workload,
/// whether or not the planner would pick it. Used by `PlanJoin` for the
/// winner and by `ppjctl explain` for any requested algorithm.
PlannedOp DescribeAlgorithm(Algorithm algorithm, const PlannerInput& input);

/// Picks the cheapest admissible algorithm by the paper's cost models.
Plan PlanJoin(const PlannerInput& input);

}  // namespace ppj::core

#endif  // PPJ_CORE_PLANNER_H_
