#include "core/join_spec.h"

#include <algorithm>

#include "common/telemetry.h"
#include "core/cartesian.h"

namespace ppj::core {

namespace {
std::uint64_t ScanBatchLimit(const sim::Coprocessor& copro) {
  // The staged bytes are sealed ciphertext (untrusted data, no secure slots
  // consumed), so the window is a transfer-granularity knob sized from M.
  return copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1));
}
}  // namespace

BatchedScan::BatchedScan(sim::Coprocessor* copro,
                         const relation::EncryptedRelation* rel)
    : copro_(copro), rel_(rel), limit_(ScanBatchLimit(*copro)) {}

Status BatchedScan::FetchInto(std::uint64_t index, relation::Tuple* tuple,
                              bool* real) {
  if (limit_ <= 1) {
    // Scalar pipeline exactly as before the batched layer existed.
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple f,
                         rel_->Fetch(*copro_, index));
    *tuple = std::move(f.tuple);
    *real = f.real;
    return Status::OK();
  }
  if (!run_.has_value() || run_->remaining() == 0 ||
      run_->position() != index) {
    const std::uint64_t count =
        std::min<std::uint64_t>(limit_, rel_->padded_size() - index);
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchRun run,
                         rel_->FetchRange(*copro_, index, count));
    run_ = std::move(run);
  }
  return run_->NextInto(tuple, real);
}

BatchedSealWriter::BatchedSealWriter(sim::Coprocessor* copro,
                                     sim::RegionId region,
                                     const crypto::Ocb* key)
    : copro_(copro),
      region_(region),
      key_(key),
      limit_(ScanBatchLimit(*copro)) {}

Status BatchedSealWriter::Put(std::uint64_t index,
                              const std::vector<std::uint8_t>& plain) {
  if (!run_.has_value() || run_->remaining() == 0 ||
      run_->position() != index) {
    PPJ_RETURN_NOT_OK(Flush());
    const std::uint64_t slots = copro_->host()->RegionSlots(region_);
    const std::uint64_t count = std::min<std::uint64_t>(limit_, slots - index);
    PPJ_ASSIGN_OR_RETURN(sim::WriteRun run,
                         copro_->PutSealedRange(region_, index, count, key_));
    run_ = std::move(run);
  }
  return run_->Append(plain);
}

Status BatchedSealWriter::Flush() {
  if (run_.has_value()) {
    PPJ_RETURN_NOT_OK(run_->Flush());
    run_.reset();
  }
  return Status::OK();
}

Status TwoWayJoin::Validate() const {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("join requires relations A and B");
  }
  if (predicate == nullptr) {
    return Status::InvalidArgument("join requires a predicate");
  }
  if (output_key == nullptr) {
    return Status::InvalidArgument("join requires an output key");
  }
  if (a->size() == 0 || b->size() == 0) {
    return Status::InvalidArgument("empty input relation");
  }
  return Status::OK();
}

std::size_t MultiwayJoin::JoinedPayloadSize() const {
  std::size_t size = 0;
  for (const auto* t : tables) size += t->schema()->tuple_size();
  return size;
}

std::uint64_t MultiwayJoin::CartesianSize() const {
  std::uint64_t l = 1;
  for (const auto* t : tables) l *= t->size();
  return l;
}

Status MultiwayJoin::Validate() const {
  if (tables.empty()) {
    return Status::InvalidArgument("join requires at least one table");
  }
  for (const auto* t : tables) {
    if (t == nullptr || t->size() == 0) {
      return Status::InvalidArgument("null or empty input table");
    }
  }
  if (predicate == nullptr) {
    return Status::InvalidArgument("join requires a predicate");
  }
  if (output_key == nullptr) {
    return Status::InvalidArgument("join requires an output key");
  }
  return Status::OK();
}

Result<std::uint64_t> ComputeMaxMatches(sim::Coprocessor& copro,
                                        const TwoWayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "screen");
  std::uint64_t n = 0;
  BatchedScan ascan(&copro, join.a);
  BatchedScan bscan(&copro, join.b);
  relation::Tuple a, b;
  bool a_real = false, b_real = false;
  for (std::uint64_t i = 0; i < join.a->size(); ++i) {
    PPJ_RETURN_NOT_OK(ascan.FetchInto(i, &a, &a_real));
    std::uint64_t row = 0;
    for (std::uint64_t j = 0; j < join.b->size(); ++j) {
      PPJ_RETURN_NOT_OK(bscan.FetchInto(j, &b, &b_real));
      const bool hit = a_real && b_real && join.predicate->Match(a, b);
      copro.NoteMatchEvaluation(hit);
      if (hit) ++row;
    }
    n = std::max(n, row);
  }
  return n;
}

Result<std::uint64_t> ScreenResultSize(sim::Coprocessor& copro,
                                       const MultiwayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "screen");
  ITupleReader reader(&copro, join.tables);
  reader.set_batch_hint(ScanBatchLimit(copro));
  std::uint64_t s = 0;
  for (std::uint64_t idx = 0; idx < reader.index().size(); ++idx) {
    PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
    const bool hit =
        fetched.real && join.predicate->Satisfy(*fetched.components);
    copro.NoteMatchEvaluation(hit);
    if (hit) ++s;
  }
  return s;
}

}  // namespace ppj::core
