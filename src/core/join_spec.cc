#include "core/join_spec.h"

#include "core/cartesian.h"

namespace ppj::core {

Status TwoWayJoin::Validate() const {
  if (a == nullptr || b == nullptr) {
    return Status::InvalidArgument("join requires relations A and B");
  }
  if (predicate == nullptr) {
    return Status::InvalidArgument("join requires a predicate");
  }
  if (output_key == nullptr) {
    return Status::InvalidArgument("join requires an output key");
  }
  if (a->size() == 0 || b->size() == 0) {
    return Status::InvalidArgument("empty input relation");
  }
  return Status::OK();
}

std::size_t MultiwayJoin::JoinedPayloadSize() const {
  std::size_t size = 0;
  for (const auto* t : tables) size += t->schema()->tuple_size();
  return size;
}

std::uint64_t MultiwayJoin::CartesianSize() const {
  std::uint64_t l = 1;
  for (const auto* t : tables) l *= t->size();
  return l;
}

Status MultiwayJoin::Validate() const {
  if (tables.empty()) {
    return Status::InvalidArgument("join requires at least one table");
  }
  for (const auto* t : tables) {
    if (t == nullptr || t->size() == 0) {
      return Status::InvalidArgument("null or empty input table");
    }
  }
  if (predicate == nullptr) {
    return Status::InvalidArgument("join requires a predicate");
  }
  if (output_key == nullptr) {
    return Status::InvalidArgument("join requires an output key");
  }
  return Status::OK();
}

Result<std::uint64_t> ComputeMaxMatches(sim::Coprocessor& copro,
                                        const TwoWayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  std::uint64_t n = 0;
  for (std::uint64_t i = 0; i < join.a->size(); ++i) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple a,
                         join.a->Fetch(copro, i));
    std::uint64_t row = 0;
    for (std::uint64_t j = 0; j < join.b->size(); ++j) {
      PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple b,
                           join.b->Fetch(copro, j));
      const bool hit =
          a.real && b.real && join.predicate->Match(a.tuple, b.tuple);
      copro.NoteMatchEvaluation(hit);
      if (hit) ++row;
    }
    n = std::max(n, row);
  }
  return n;
}

Result<std::uint64_t> ScreenResultSize(sim::Coprocessor& copro,
                                       const MultiwayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  ITupleReader reader(&copro, join.tables);
  std::uint64_t s = 0;
  for (std::uint64_t idx = 0; idx < reader.index().size(); ++idx) {
    PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
    const bool hit =
        fetched.real && join.predicate->Satisfy(fetched.components);
    copro.NoteMatchEvaluation(hit);
    if (hit) ++s;
  }
  return s;
}

}  // namespace ppj::core
