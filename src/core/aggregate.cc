#include "core/aggregate.h"

#include <algorithm>

#include "core/cartesian.h"

namespace ppj::core {

Result<AggregateResult> RunAggregateJoin(sim::Coprocessor& copro,
                                         const MultiwayJoin& join,
                                         const AggregateSpec& spec) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (spec.kind != AggregateKind::kCount) {
    if (spec.table >= join.tables.size()) {
      return Status::InvalidArgument("aggregate table index out of range");
    }
    const relation::Schema* schema = join.tables[spec.table]->schema();
    if (spec.column >= schema->num_columns()) {
      return Status::InvalidArgument("aggregate column index out of range");
    }
    if (schema->columns()[spec.column].type !=
        relation::ColumnType::kInt64) {
      return Status::InvalidArgument(
          "aggregation currently supports int64 columns");
    }
  }

  // The running state fits in a constant number of slots; reserve one to
  // model it against M (even M = 1 suffices).
  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer state,
                       sim::SecureBuffer::Allocate(
                           copro, std::min<std::uint64_t>(
                                      1, copro.memory_tuples())));
  (void)state;

  ITupleReader reader(&copro, join.tables);
  reader.set_batch_hint(
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1)));
  AggregateResult out;
  bool first = true;
  for (std::uint64_t idx = 0; idx < reader.index().size(); ++idx) {
    PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
    const bool hit =
        fetched.real && join.predicate->Satisfy(*fetched.components);
    copro.NoteMatchEvaluation(hit);
    if (!hit) continue;
    ++out.count;
    if (spec.kind == AggregateKind::kCount) continue;
    const std::int64_t v =
        (*fetched.components)[spec.table].GetInt64(spec.column);
    out.sum += v;
    if (first) {
      out.min = v;
      out.max = v;
      first = false;
    } else {
      out.min = std::min(out.min, v);
      out.max = std::max(out.max, v);
    }
  }
  if (out.count > 0) {
    out.average =
        static_cast<double>(out.sum) / static_cast<double>(out.count);
  }
  return out;
}

Result<GroupByCountResult> RunGroupByCountJoin(sim::Coprocessor& copro,
                                               const MultiwayJoin& join,
                                               const GroupByCountSpec& spec) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (spec.table >= join.tables.size()) {
    return Status::InvalidArgument("group-by table index out of range");
  }
  const relation::Schema* schema = join.tables[spec.table]->schema();
  if (spec.column >= schema->num_columns() ||
      schema->columns()[spec.column].type != relation::ColumnType::kInt64) {
    return Status::InvalidArgument(
        "group-by needs an int64 column in range");
  }
  if (spec.domain_hi < spec.domain_lo) {
    return Status::InvalidArgument("empty group domain");
  }
  const std::uint64_t buckets =
      static_cast<std::uint64_t>(spec.domain_hi - spec.domain_lo) + 1;
  if (buckets > 4096) {
    return Status::CapacityExceeded(
        "group domain exceeds 4096 buckets: the histogram must fit the "
        "coprocessor's constant working memory");
  }

  GroupByCountResult out;
  out.domain_lo = spec.domain_lo;
  out.counts.assign(buckets, 0);

  ITupleReader reader(&copro, join.tables);
  reader.set_batch_hint(
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1)));
  for (std::uint64_t idx = 0; idx < reader.index().size(); ++idx) {
    PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
    const bool hit =
        fetched.real && join.predicate->Satisfy(*fetched.components);
    copro.NoteMatchEvaluation(hit);
    if (!hit) continue;
    const std::int64_t v =
        (*fetched.components)[spec.table].GetInt64(spec.column);
    if (v < spec.domain_lo || v > spec.domain_hi) {
      ++out.overflow;
    } else {
      ++out.counts[static_cast<std::size_t>(v - spec.domain_lo)];
    }
  }
  return out;
}

}  // namespace ppj::core
