#include "core/algorithm2.h"

#include "common/math.h"
#include "common/telemetry.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

Result<Ch4Outcome> RunAlgorithm2(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm2Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "algorithm2");
  std::uint64_t n = options.n;
  if (n == 0) {
    PPJ_ASSIGN_OR_RETURN(n, ComputeMaxMatches(copro, join));
  }
  n = std::max<std::uint64_t>(n, 1);

  if (copro.memory_tuples() <= options.bookkeeping_slots) {
    return Status::CapacityExceeded(
        "Algorithm 2 needs memory beyond bookkeeping; use Algorithm 1");
  }
  const std::uint64_t m_free =
      copro.memory_tuples() - options.bookkeeping_slots;
  const std::uint64_t gamma = std::max<std::uint64_t>(1, CeilDiv(n, m_free));
  const std::uint64_t blk = CeilDiv(n, gamma);

  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer joined,
                       sim::SecureBuffer::Allocate(copro, blk));

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId output = copro.host()->CreateRegion(
      "alg2-output", slot, size_a * gamma * blk);

  // Windowed input scans; per slot the accounting is scalar-identical.
  BatchedScan ascan(&copro, join.a);
  BatchedScan bscan(&copro, join.b);
  relation::Tuple a, b;
  bool a_real = false, b_real = false;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    std::int64_t last = -1;  // position of the last *stored* B match
    for (std::uint64_t pass = 0; pass < gamma; ++pass) {
      joined.Clear();
      {
        PPJ_SPAN("mix");
        std::int64_t current = 0;
        std::int64_t pass_last = last;
        for (std::uint64_t bi = 0; bi < size_b; ++bi) {
          PPJ_RETURN_NOT_OK(bscan.FetchInto(bi, &b, &b_real));
          // Predicate always evaluated; its result is used only when this
          // pass is still collecting beyond the previous pass's cursor.
          const bool hit = a_real && b_real && join.predicate->Match(a, b);
          copro.NoteMatchEvaluation(hit);
          if (current > last && !joined.full() && hit) {
            std::vector<std::uint8_t> bytes = a.Serialize();
            const std::vector<std::uint8_t> bb = b.Serialize();
            bytes.insert(bytes.end(), bb.begin(), bb.end());
            PPJ_RETURN_NOT_OK(joined.Push(relation::wire::MakeReal(bytes)));
            pass_last = current;
          }
          ++current;
        }
        last = pass_last;
      }
      PPJ_SPAN("output");
      // Fixed-size flush: blk oTuples per pass, decoy-padded; the sealed
      // slots land on the host in one scatter (DiskWrite is pure accounting
      // and does not read the region).
      const std::uint64_t base = (ai * gamma + pass) * blk;
      PPJ_ASSIGN_OR_RETURN(
          sim::WriteRun flush,
          copro.PutSealedRange(output, base, blk, join.output_key));
      for (std::uint64_t k = 0; k < blk; ++k) {
        const std::vector<std::uint8_t>& plain =
            k < joined.size() ? joined.At(k) : decoy;
        PPJ_RETURN_NOT_OK(flush.Append(plain));
        PPJ_RETURN_NOT_OK(copro.DiskWrite(output, base + k));
      }
      PPJ_RETURN_NOT_OK(flush.Flush());
    }
  }

  return Ch4Outcome{output, size_a * gamma * blk, n};
}

}  // namespace ppj::core
