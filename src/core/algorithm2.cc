#include "core/algorithm2.h"

#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"

// Algorithm 2 as a thin plan builder: the body lives in the operator layer
// (plan/ops_ch4.cc — ResolveNOp + MultiPassScanOp).

namespace ppj::core {

Result<Ch4Outcome> RunAlgorithm2(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm2Options& options) {
  plan::JoinPlanOptions popts;
  popts.n = options.n;
  popts.bookkeeping_slots = options.bookkeeping_slots;
  PPJ_ASSIGN_OR_RETURN(
      plan::PhysicalPlan physical,
      plan::BuildJoinPlan(Algorithm::kAlgorithm2, &join, nullptr, popts));
  plan::PlanContext ctx(&join, nullptr);
  PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
  return plan::TakeCh4Outcome(ctx);
}

}  // namespace ppj::core
