#ifndef PPJ_CORE_JOIN_SPEC_H_
#define PPJ_CORE_JOIN_SPEC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crypto/ocb.h"
#include "relation/encrypted_relation.h"
#include "relation/predicate.h"
#include "sim/coprocessor.h"

namespace ppj::core {

/// Windowed sequential fetcher over an encrypted relation for the nested
/// scan loops of Chapter 4: upcoming slots are staged through the batched
/// range-transfer layer (EncryptedRelation::FetchRange) in runs sized by
/// the coprocessor's batch limit. Per slot the accounting is
/// scalar-identical; a non-successor index (a restarted inner scan) simply
/// restages. With a batch limit of 1 every fetch takes the plain scalar
/// path, which is what the golden-fingerprint tests compare against.
class BatchedScan {
 public:
  BatchedScan(sim::Coprocessor* copro, const relation::EncryptedRelation* rel);

  /// Scalar-equivalent of rel->Fetch(copro, index), decoding into
  /// caller-owned storage (Tuple::DeserializeInto) on the batched path.
  Status FetchInto(std::uint64_t index, relation::Tuple* tuple, bool* real);

 private:
  sim::Coprocessor* copro_;
  const relation::EncryptedRelation* rel_;
  std::uint64_t limit_;
  std::optional<relation::EncryptedRelation::FetchRun> run_;
};

/// Windowed sequential sealer: scalar-equivalent PutSealed calls whose
/// physical host writes are deferred into batch-limit WriteRun windows
/// (Coprocessor::PutSealedRange). Callers must Flush() before anything
/// reads — or restages — the covered slots.
class BatchedSealWriter {
 public:
  BatchedSealWriter(sim::Coprocessor* copro, sim::RegionId region,
                    const crypto::Ocb* key);

  /// Scalar-equivalent of PutSealed(region, index, plain, key).
  Status Put(std::uint64_t index, const std::vector<std::uint8_t>& plain);

  /// Issues the deferred physical writes of the open window.
  Status Flush();

 private:
  sim::Coprocessor* copro_;
  sim::RegionId region_;
  const crypto::Ocb* key_;
  std::uint64_t limit_;
  std::optional<sim::WriteRun> run_;
};

/// Inputs of a two-way join as the Chapter 4 algorithms consume them.
/// Result tuples (and decoys) are sealed under `output_key` — in the full
/// system that is the session key T shares with the recipient P_C, so
/// neither the host nor the data providers can read the output
/// (Section 3.2).
struct TwoWayJoin {
  const relation::EncryptedRelation* a = nullptr;
  const relation::EncryptedRelation* b = nullptr;
  const relation::PairPredicate* predicate = nullptr;
  const crypto::Ocb* output_key = nullptr;

  /// Payload size of a joined tuple: |a tuple| + |b tuple| bytes.
  std::size_t JoinedPayloadSize() const {
    return a->schema()->tuple_size() + b->schema()->tuple_size();
  }

  Status Validate() const;
};

/// Inputs of a J-way join (Chapter 5).
struct MultiwayJoin {
  std::vector<const relation::EncryptedRelation*> tables;
  const relation::MultiwayPredicate* predicate = nullptr;
  const crypto::Ocb* output_key = nullptr;

  std::size_t JoinedPayloadSize() const;
  /// L = product of table sizes.
  std::uint64_t CartesianSize() const;

  Status Validate() const;
};

/// Computes N — the maximum number of B tuples matching any single A tuple
/// — by the safe preprocessing pass of Section 4.3 ("run a nested loop join
/// without outputting any result tuple"; it reads both relations in a fixed
/// pattern and emits nothing, so it leaks nothing).
Result<std::uint64_t> ComputeMaxMatches(sim::Coprocessor& copro,
                                        const TwoWayJoin& join);

/// Screening pass of Algorithm 6: counts S = |join result| by reading every
/// iTuple once and outputting nothing.
Result<std::uint64_t> ScreenResultSize(sim::Coprocessor& copro,
                                       const MultiwayJoin& join);

}  // namespace ppj::core

#endif  // PPJ_CORE_JOIN_SPEC_H_
