#include "core/host_retry.h"

#include "sim/coprocessor.h"

namespace ppj::core {

namespace {
std::uint32_t MaxAttempts() {
  return sim::CoprocessorOptions::RetryPolicy{}.max_attempts;
}
}  // namespace

Result<std::vector<std::uint8_t>> ReadSlotWithRetry(const sim::HostStore& host,
                                                    sim::RegionId region,
                                                    std::uint64_t index) {
  const std::uint32_t max_attempts = MaxAttempts();
  Result<std::vector<std::uint8_t>> slot = host.ReadSlot(region, index);
  for (std::uint32_t attempt = 1;
       attempt < max_attempts && !slot.ok() &&
       slot.status().code() == StatusCode::kUnavailable;
       ++attempt) {
    slot = host.ReadSlot(region, index);
  }
  return slot;
}

Status WriteSlotWithRetry(sim::HostStore& host, sim::RegionId region,
                          std::uint64_t index,
                          const std::vector<std::uint8_t>& bytes) {
  const std::uint32_t max_attempts = MaxAttempts();
  // A torn write persists a partial slot before failing kUnavailable; the
  // retry rewrites the slot in full from `bytes`, repairing the tear.
  Status status = host.WriteSlot(region, index, bytes);
  for (std::uint32_t attempt = 1;
       attempt < max_attempts && !status.ok() &&
       status.code() == StatusCode::kUnavailable;
       ++attempt) {
    status = host.WriteSlot(region, index, bytes);
  }
  return status;
}

}  // namespace ppj::core
