#ifndef PPJ_CORE_ALGORITHM6_H_
#define PPJ_CORE_ALGORITHM6_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::core {

struct Algorithm6Options {
  /// Privacy parameter: the join is privacy preserving with probability at
  /// least 1 - epsilon (Section 5.3.3). Smaller epsilon = smaller segments
  /// = more flushes = higher cost. epsilon = 0 degenerates to Algorithm 4's
  /// one-output-per-input behaviour.
  double epsilon = 1e-20;
  /// Seed of the MLFSR random read order. Part of the coprocessor's
  /// internal randomness; the induced order is data independent.
  std::uint64_t order_seed = 0x5eed;
  /// Override the optimal segment size (testing only); 0 = solve Eqn 5.6.
  std::uint64_t forced_segment_size = 0;
  /// Swap size of the final filter; 0 = optimal Delta*.
  std::uint64_t filter_delta = 0;
};

/// Algorithm 6 (Section 5.3.3) — trades a sliver of privacy (level
/// 1 - epsilon) for substantial efficiency.
///
/// A screening pass counts S; the segment size n* is the largest one whose
/// blemish union bound P_M(n) stays within epsilon (Eqn 5.6). T then visits
/// the L iTuples in MLFSR-random order, buffering results in memory and
/// flushing exactly M oTuples (results + decoys) per segment; a final
/// windowed oblivious filter reduces the ceil(L/n*) M staged oTuples to the
/// S real results.
///
/// Blemish case: a segment with more than M results. Probability <= epsilon
/// by construction. When it happens the implementation performs the
/// paper's "salvage action": it re-outputs everything with an Algorithm 5
/// sweep — correct, but the extra access pattern is data dependent, so the
/// outcome carries blemish = true and the privacy auditor will flag the
/// trace (this is exactly the advertised epsilon-probability privacy loss).
///
/// When M >= S the screening pass itself captures every result and the cost
/// collapses to the minimum L + S (footnote 1).
///
/// Transfer cost (Eqn 5.7, squared-log form; see DESIGN.md):
///   2L + ceil(L/n*) M + ((ceil(L/n*)M - S)/Delta*)(S+Delta*) log2(S+Delta*)^2.
Result<Ch5Outcome> RunAlgorithm6(sim::Coprocessor& copro,
                                 const MultiwayJoin& join,
                                 const Algorithm6Options& options = {});

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM6_H_
