#include "core/algorithm5.h"

#include <algorithm>

#include "common/telemetry.h"
#include "core/cartesian.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

Result<Ch5Outcome> RunAlgorithm5(sim::Coprocessor& copro,
                                 const MultiwayJoin& join) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "algorithm5");
  const std::uint64_t m = copro.memory_tuples();
  if (m == 0) {
    return Status::CapacityExceeded(
        "Algorithm 5 needs at least one result slot; use Algorithm 4");
  }
  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer,
                       sim::SecureBuffer::Allocate(copro, m));

  ITupleReader reader(&copro, join.tables);
  const std::uint64_t l = reader.index().size();
  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));

  // Output grows by at most M per scan; final size is exactly S.
  const sim::RegionId output =
      copro.host()->CreateRegion("alg5-output", slot, 0);

  std::int64_t pindex = -1;  // index of the last *flushed* result
  std::uint64_t written = 0;
  for (;;) {
    buffer.Clear();
    std::int64_t last_stored = pindex;
    bool overflow = false;
    // One coprocessor-memory's worth of slots per host round trip. The
    // staged run holds *sealed* bytes (untrusted data, no secure slots
    // consumed — each slot still opens one at a time into the same scratch
    // slot the scalar path uses), so the window is a transfer-granularity
    // knob, not a memory commitment. It only changes how slots move, never
    // which slots or in what order.
    reader.set_batch_hint(copro.BatchLimit(buffer.capacity()));
    {
      PPJ_SPAN("scan");
      for (std::uint64_t idx = 0; idx < l; ++idx) {
        PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
        const bool hit =
            fetched.real && join.predicate->Satisfy(*fetched.components);
        copro.NoteMatchEvaluation(hit);
        if (hit && static_cast<std::int64_t>(idx) > pindex) {
          if (!buffer.full()) {
            PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
                ITupleReader::JoinedPayload(*fetched.components))));
            last_stored = static_cast<std::int64_t>(idx);
          } else {
            overflow = true;  // more results remain: another scan is needed
          }
        }
      }
    }
    {
      PPJ_SPAN("output");
      // Flush at the scan boundary — the only observable output point. The
      // sealed slots land on the host in one scatter (DiskWrite is pure
      // accounting and does not read the region).
      PPJ_RETURN_NOT_OK(
          copro.host()->ResizeRegion(output, written + buffer.size()));
      PPJ_ASSIGN_OR_RETURN(
          sim::WriteRun flush,
          copro.PutSealedRange(output, written, buffer.size(),
                               join.output_key));
      for (std::size_t k = 0; k < buffer.size(); ++k) {
        PPJ_RETURN_NOT_OK(flush.Append(buffer.At(k)));
        PPJ_RETURN_NOT_OK(copro.DiskWrite(output, written + k));
      }
      PPJ_RETURN_NOT_OK(flush.Flush());
    }
    written += buffer.size();
    if (!overflow) break;
    pindex = last_stored;
  }

  Ch5Outcome out;
  out.output_region = output;
  out.result_size = written;
  out.staging_slots = 0;  // Algorithm 5 writes no intermediate oTuples
  return out;
}

}  // namespace ppj::core
