#include "core/algorithm5.h"

#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"

// Algorithm 5 as a thin plan builder: the body lives in the operator layer
// (plan/ops_ch5.cc — BufferedEmitOp).

namespace ppj::core {

Result<Ch5Outcome> RunAlgorithm5(sim::Coprocessor& copro,
                                 const MultiwayJoin& join) {
  PPJ_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                       plan::BuildJoinPlan(Algorithm::kAlgorithm5, nullptr,
                                           &join, plan::JoinPlanOptions{}));
  plan::PlanContext ctx(nullptr, &join);
  PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
  return plan::TakeCh5Outcome(ctx);
}

}  // namespace ppj::core
