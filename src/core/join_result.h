#ifndef PPJ_CORE_JOIN_RESULT_H_
#define PPJ_CORE_JOIN_RESULT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crypto/ocb.h"
#include "relation/relation.h"
#include "sim/host_store.h"
#include "sim/metrics.h"

namespace ppj::core {

/// Outcome of a Chapter 4 algorithm: a host region of `output_slots` sealed
/// oTuples (real results mixed with decoys) destined for the recipient. The
/// output size is N|A|-shaped and *does not* reveal the true result size —
/// that is the Chapter 4 privacy contract.
struct Ch4Outcome {
  sim::RegionId output_region = 0;
  std::uint64_t output_slots = 0;
  std::uint64_t n_used = 0;  ///< The N the run was sized for.
};

/// Outcome of a Chapter 5 algorithm: exactly S real results, no padding
/// (Definition 3's exact-result requirement).
struct Ch5Outcome {
  sim::RegionId output_region = 0;
  std::uint64_t result_size = 0;     ///< S.
  std::uint64_t staging_slots = 0;   ///< Pre-filter oTuples (diagnostics).
  std::uint64_t n_star = 0;          ///< Algorithm 6 segment size, else 0.
  bool blemish = false;              ///< Algorithm 6 overflow + salvage.
};

/// Recipient-side decoding: opens `slots` sealed oTuples of `region` under
/// the recipient's key, drops decoys, and deserializes the joined payloads
/// as concatenated tuples of `schemas` (one per joined table, in order),
/// flattened under `result_schema`. This runs at P_C, not inside the
/// coprocessor, so it is untraced.
Result<std::vector<relation::Tuple>> DecodeJoinOutput(
    const sim::HostStore& host, sim::RegionId region, std::uint64_t slots,
    const crypto::Ocb& key, const relation::Schema* result_schema);

/// Opens one sealed slot (nonce || ciphertext || tag) outside the
/// coprocessor — the primitive data providers and recipients use.
Result<std::vector<std::uint8_t>> OpenSealedSlot(
    const std::vector<std::uint8_t>& slot, const crypto::Ocb& key);

}  // namespace ppj::core

#endif  // PPJ_CORE_JOIN_RESULT_H_
