#ifndef PPJ_CORE_CARTESIAN_H_
#define PPJ_CORE_CARTESIAN_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "relation/encrypted_relation.h"
#include "sim/coprocessor.h"

namespace ppj::core {

/// Row-major index over D = X_1 x ... x X_J without materializing D
/// (Section 5.2.1: "a logical index can be easily converted into the
/// individual index of each of the J tuples and D need not be
/// materialized").
class CartesianIndex {
 public:
  explicit CartesianIndex(std::vector<std::uint64_t> table_sizes);

  /// L = product of table sizes.
  std::uint64_t size() const { return size_; }
  std::size_t arity() const { return sizes_.size(); }
  const std::vector<std::uint64_t>& table_sizes() const { return sizes_; }

  /// Per-table indices of the logical element `index` (row-major: the last
  /// table varies fastest).
  std::vector<std::uint64_t> Decompose(std::uint64_t index) const;

  /// Allocation-free Decompose into caller storage (size must be arity()).
  void DecomposeInto(std::uint64_t index, std::uint64_t* out) const;

  /// Inverse of Decompose.
  std::uint64_t Compose(const std::vector<std::uint64_t>& indices) const;

 private:
  std::vector<std::uint64_t> sizes_;
  std::vector<std::uint64_t> strides_;
  std::uint64_t size_ = 0;
};

/// Fetches iTuples through the coprocessor, caching unchanged prefix
/// components so a sequential scan of D costs ~L raw transfers rather than
/// J*L. One call = one *logical* iTuple read in the Chapter 5 cost metric
/// regardless of how many component tuples actually moved. The caching
/// decision depends only on the requested index sequence (public), never on
/// tuple contents, so it cannot perturb trace equality.
class ITupleReader {
 public:
  ITupleReader(sim::Coprocessor* copro,
               std::vector<const relation::EncryptedRelation*> tables);

  const CartesianIndex& index() const { return index_; }

  /// The iTuple at logical position `logical`; `real` is false when any
  /// component is a padding slot. `components` points at the reader's
  /// per-table cache and is valid until the next Fetch call.
  struct Fetched {
    const std::vector<relation::Tuple>* components = nullptr;
    bool real = true;
  };
  Result<Fetched> Fetch(std::uint64_t logical);

  /// Declares how many upcoming Fetch calls are sequential in the logical
  /// index, letting the reader stage the innermost (fastest-varying) table
  /// through the batched range-transfer path. <= 1 keeps the scalar path;
  /// callers size the hint from free device slots (Coprocessor::BatchLimit).
  /// The hint only changes *how* component slots move, never which slots
  /// are accessed or in what order, so traces are unaffected.
  void set_batch_hint(std::uint64_t slots) { batch_hint_ = slots; }

  /// Serialized concatenation of the component tuples — the payload of a
  /// join-result oTuple.
  static std::vector<std::uint8_t> JoinedPayload(
      const std::vector<relation::Tuple>& components);

  /// Byte size of a joined payload for these tables.
  std::size_t joined_payload_size() const { return payload_size_; }

 private:
  sim::Coprocessor* copro_;
  std::vector<const relation::EncryptedRelation*> tables_;
  CartesianIndex index_;
  std::size_t payload_size_ = 0;
  std::uint64_t batch_hint_ = 1;
  std::optional<relation::EncryptedRelation::FetchRun> run_;
  std::vector<std::uint64_t> parts_;  // Decompose scratch / odometer state.
  std::uint64_t last_logical_ = 0;
  bool has_last_ = false;
  // Cache of the last fetched component index/tuple per table; the tuple
  // vector doubles as the components view handed out by Fetch.
  std::vector<std::optional<std::uint64_t>> cached_index_;
  std::vector<relation::Tuple> cached_tuple_;
  std::vector<bool> cached_real_;
};

}  // namespace ppj::core

#endif  // PPJ_CORE_CARTESIAN_H_
