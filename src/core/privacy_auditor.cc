#include "core/privacy_auditor.h"

#include <sstream>

namespace ppj::core {

namespace {

AuditResult Compare(const AuditRun& a, const AuditRun& b) {
  AuditResult out;
  out.fingerprint_a = a.fingerprint;
  out.fingerprint_b = b.fingerprint;
  out.identical = a.fingerprint == b.fingerprint;
  if (!out.identical) {
    const std::size_t n =
        std::min(a.retained_events.size(), b.retained_events.size());
    out.first_divergence = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(a.retained_events[i] == b.retained_events[i])) {
        out.first_divergence = static_cast<std::int64_t>(i);
        break;
      }
    }
    std::ostringstream os;
    os << "trace mismatch: " << a.fingerprint.ToString() << " vs "
       << b.fingerprint.ToString();
    if (out.first_divergence >= 0) {
      const auto i = static_cast<std::size_t>(out.first_divergence);
      os << "; first divergence at event " << i << ": "
         << ToString(a.retained_events[i]) << " vs "
         << ToString(b.retained_events[i]);
    } else if (a.fingerprint.count != b.fingerprint.count) {
      os << "; event counts differ (" << a.fingerprint.count << " vs "
         << b.fingerprint.count << ")";
    } else {
      os << "; divergence beyond retained prefix";
    }
    out.detail = os.str();
  }
  return out;
}

}  // namespace

Result<AuditResult> PrivacyAuditor::CompareWorlds(const WorldRunner& run) {
  PPJ_ASSIGN_OR_RETURN(AuditRun a, run(0));
  PPJ_ASSIGN_OR_RETURN(AuditRun b, run(1));
  return Compare(a, b);
}

Result<AuditResult> PrivacyAuditor::CompareManyWorlds(const WorldRunner& run,
                                                      std::uint64_t count) {
  if (count < 2) {
    return Status::InvalidArgument("need at least two worlds to compare");
  }
  PPJ_ASSIGN_OR_RETURN(AuditRun first, run(0));
  for (std::uint64_t w = 1; w < count; ++w) {
    PPJ_ASSIGN_OR_RETURN(AuditRun other, run(w));
    AuditResult result = Compare(first, other);
    if (!result.identical) return result;
  }
  AuditResult ok;
  ok.identical = true;
  ok.fingerprint_a = first.fingerprint;
  ok.fingerprint_b = first.fingerprint;
  return ok;
}

}  // namespace ppj::core
