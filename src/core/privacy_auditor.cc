#include "core/privacy_auditor.h"

#include <sstream>

namespace ppj::core {

namespace {

ShardedAuditResult CompareSharded(const ShardedAuditRun& a,
                                  const ShardedAuditRun& b) {
  ShardedAuditResult out;
  out.identical = true;
  std::ostringstream os;
  if (a.shard_fingerprints.size() != b.shard_fingerprints.size()) {
    out.identical = false;
    os << "shard counts differ (" << a.shard_fingerprints.size() << " vs "
       << b.shard_fingerprints.size() << ")";
    out.detail = os.str();
    return out;
  }
  for (std::size_t i = 0; i < a.shard_fingerprints.size(); ++i) {
    if (!(a.shard_fingerprints[i] == b.shard_fingerprints[i])) {
      out.identical = false;
      os << "shard " << i << " trace mismatch: "
         << a.shard_fingerprints[i].ToString() << " vs "
         << b.shard_fingerprints[i].ToString();
      out.detail = os.str();
      return out;
    }
  }
  if (!(a.channel_fingerprint == b.channel_fingerprint)) {
    out.identical = false;
    os << "channel shape mismatch: " << a.channel_fingerprint.ToString()
       << " vs " << b.channel_fingerprint.ToString();
    out.detail = os.str();
  }
  return out;
}

AuditResult Compare(const AuditRun& a, const AuditRun& b) {
  AuditResult out;
  out.fingerprint_a = a.fingerprint;
  out.fingerprint_b = b.fingerprint;
  out.identical = a.fingerprint == b.fingerprint;
  if (!out.identical) {
    const std::size_t n =
        std::min(a.retained_events.size(), b.retained_events.size());
    out.first_divergence = -1;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(a.retained_events[i] == b.retained_events[i])) {
        out.first_divergence = static_cast<std::int64_t>(i);
        break;
      }
    }
    std::ostringstream os;
    os << "trace mismatch: " << a.fingerprint.ToString() << " vs "
       << b.fingerprint.ToString();
    if (out.first_divergence >= 0) {
      const auto i = static_cast<std::size_t>(out.first_divergence);
      os << "; first divergence at event " << i << ": "
         << ToString(a.retained_events[i]) << " vs "
         << ToString(b.retained_events[i]);
    } else if (a.fingerprint.count != b.fingerprint.count) {
      os << "; event counts differ (" << a.fingerprint.count << " vs "
         << b.fingerprint.count << ")";
    } else {
      os << "; divergence beyond retained prefix";
    }
    // Attribute the divergence to a physical-plan operator: walk the two
    // checkpoint sequences while they name the same operators and report
    // the first one whose cumulative fingerprint differs. A mismatched
    // operator *name* means the plans themselves took different shapes at
    // that position — itself an attribution.
    const std::size_t ckpts =
        std::min(a.checkpoints.size(), b.checkpoints.size());
    for (std::size_t i = 0; i < ckpts; ++i) {
      if (a.checkpoints[i].op != b.checkpoints[i].op) {
        out.divergent_op = a.checkpoints[i].op;
        os << "; plans diverge at operator " << i << " ('"
           << a.checkpoints[i].op << "' vs '" << b.checkpoints[i].op
           << "')";
        break;
      }
      if (!(a.checkpoints[i].trace == b.checkpoints[i].trace)) {
        out.divergent_op = a.checkpoints[i].op;
        os << "; first divergent operator: '" << out.divergent_op << "'";
        break;
      }
    }
    if (out.divergent_op.empty() && a.checkpoints.size() != b.checkpoints.size()) {
      const AuditRun& longer =
          a.checkpoints.size() > b.checkpoints.size() ? a : b;
      out.divergent_op = longer.checkpoints[ckpts].op;
      os << "; operator counts differ (" << a.checkpoints.size() << " vs "
         << b.checkpoints.size() << "), first unmatched: '"
         << out.divergent_op << "'";
    }
    out.detail = os.str();
  }
  return out;
}

}  // namespace

Result<AuditResult> PrivacyAuditor::CompareWorlds(const WorldRunner& run) {
  PPJ_ASSIGN_OR_RETURN(AuditRun a, run(0));
  PPJ_ASSIGN_OR_RETURN(AuditRun b, run(1));
  return Compare(a, b);
}

Result<AuditResult> PrivacyAuditor::CompareManyWorlds(const WorldRunner& run,
                                                      std::uint64_t count) {
  if (count < 2) {
    return Status::InvalidArgument("need at least two worlds to compare");
  }
  PPJ_ASSIGN_OR_RETURN(AuditRun first, run(0));
  for (std::uint64_t w = 1; w < count; ++w) {
    PPJ_ASSIGN_OR_RETURN(AuditRun other, run(w));
    AuditResult result = Compare(first, other);
    if (!result.identical) return result;
  }
  AuditResult ok;
  ok.identical = true;
  ok.fingerprint_a = first.fingerprint;
  ok.fingerprint_b = first.fingerprint;
  return ok;
}

Result<ShardedAuditResult> ShardedPrivacyAuditor::CompareShardedWorlds(
    const WorldRunner& run) {
  PPJ_ASSIGN_OR_RETURN(ShardedAuditRun a, run(0));
  PPJ_ASSIGN_OR_RETURN(ShardedAuditRun b, run(1));
  return CompareSharded(a, b);
}

Result<ShardedAuditResult> ShardedPrivacyAuditor::CompareManyShardedWorlds(
    const WorldRunner& run, std::uint64_t count) {
  if (count < 2) {
    return Status::InvalidArgument("need at least two worlds to compare");
  }
  PPJ_ASSIGN_OR_RETURN(ShardedAuditRun first, run(0));
  for (std::uint64_t w = 1; w < count; ++w) {
    PPJ_ASSIGN_OR_RETURN(ShardedAuditRun other, run(w));
    ShardedAuditResult result = CompareSharded(first, other);
    if (!result.identical) return result;
  }
  ShardedAuditResult ok;
  ok.identical = true;
  return ok;
}

}  // namespace ppj::core
