#ifndef PPJ_CORE_ALGORITHM1_H_
#define PPJ_CORE_ALGORITHM1_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::core {

/// Options shared by Algorithm 1 and its Section 4.4.2 variant.
struct Algorithm1Options {
  /// N — the maximum number of B tuples matching any A tuple. 0 means "run
  /// the safe preprocessing pass of Section 4.3 to compute it" (a nested
  /// loop that outputs nothing). A too-small N is unsafe to fix by
  /// re-running (Section 4.3), so the algorithms never guess.
  std::uint64_t n = 0;
};

/// Algorithm 1 (Section 4.4.1) — general join for secure coprocessors with
/// *small* memories. Uses a host-resident scratch array of 2N slots: each
/// comparison emits exactly one oTuple (result or decoy) into the rolling
/// half of the scratch; after every N outputs the scratch is obliviously
/// sorted real-first so accumulated results survive in the front half. The
/// final front N slots are written to disk per A tuple.
///
/// Coprocessor memory demand: the two staging slots only (M can be 0).
/// Transfer cost: |A| + 2N|A| + 2|A||B| + 2|A||B| log2(2N)^2, up to
/// power-of-two padding of the scratch (exact when 2N is a power of two).
Result<Ch4Outcome> RunAlgorithm1(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm1Options& options = {});

/// The Section 4.4.2 variant: no rolling scratch; for each A tuple it
/// writes |B| oTuples and obliviously sorts all of them once, keeping the
/// first N. Cost |A| + 2|A||B| + |A||B| log2(|B|)^2 — worse than
/// Algorithm 1 for small alpha = N/|B|, which is why the paper drops it.
Result<Ch4Outcome> RunAlgorithm1Variant(sim::Coprocessor& copro,
                                        const TwoWayJoin& join,
                                        const Algorithm1Options& options = {});

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM1_H_
