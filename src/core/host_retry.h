#ifndef PPJ_CORE_HOST_RETRY_H_
#define PPJ_CORE_HOST_RETRY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/host_store.h"

namespace ppj::core {

/// Host-side bounded retry for raw slot I/O that runs *outside* the
/// coprocessor: the recipient's delivery reads and H's own disk-to-disk
/// copies (Algorithm 1/3 "request H to write scratch to disk"). These
/// touch the same fallible storage the coprocessor does but have no device
/// to charge backoff to and no trace — they apply the same kUnavailable
/// policy (default RetryPolicy budget) with a local loop. Any other status,
/// including kTampered, returns immediately.
Result<std::vector<std::uint8_t>> ReadSlotWithRetry(const sim::HostStore& host,
                                                    sim::RegionId region,
                                                    std::uint64_t index);
Status WriteSlotWithRetry(sim::HostStore& host, sim::RegionId region,
                          std::uint64_t index,
                          const std::vector<std::uint8_t>& bytes);

}  // namespace ppj::core

#endif  // PPJ_CORE_HOST_RETRY_H_
