#include "core/algorithm.h"

namespace ppj::core {

std::string ToString(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAlgorithm1:
      return "Algorithm 1";
    case Algorithm::kAlgorithm1Variant:
      return "Algorithm 1 (variant)";
    case Algorithm::kAlgorithm2:
      return "Algorithm 2";
    case Algorithm::kAlgorithm3:
      return "Algorithm 3";
    case Algorithm::kAlgorithm4:
      return "Algorithm 4";
    case Algorithm::kAlgorithm5:
      return "Algorithm 5";
    case Algorithm::kAlgorithm6:
      return "Algorithm 6";
  }
  return "?";
}

Result<Algorithm> ParseAlgorithm(const std::string& s) {
  if (s == "1") return Algorithm::kAlgorithm1;
  if (s == "1v") return Algorithm::kAlgorithm1Variant;
  if (s == "2") return Algorithm::kAlgorithm2;
  if (s == "3") return Algorithm::kAlgorithm3;
  if (s == "4") return Algorithm::kAlgorithm4;
  if (s == "5") return Algorithm::kAlgorithm5;
  if (s == "6") return Algorithm::kAlgorithm6;
  return Status::InvalidArgument("unknown algorithm '" + s +
                                 "' (expected 1, 1v, 2, 3, 4, 5 or 6)");
}

bool IsChapter4(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAlgorithm1:
    case Algorithm::kAlgorithm1Variant:
    case Algorithm::kAlgorithm2:
    case Algorithm::kAlgorithm3:
      return true;
    default:
      return false;
  }
}

}  // namespace ppj::core
