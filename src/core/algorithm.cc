#include "core/algorithm.h"

#include "core/parallel.h"
#include "plan/builder.h"

namespace ppj::core {

namespace {

// Uniform-signature adapters over the Section 5.3.5 parallel engines.
Result<ParallelOutcome> ParallelAlg4(sim::HostStore* host,
                                     const MultiwayJoin& join,
                                     unsigned parallelism,
                                     const sim::CoprocessorOptions& copro,
                                     const ParallelRunOptions& run) {
  (void)run;
  return RunParallelAlgorithm4(host, join, parallelism, copro);
}

Result<ParallelOutcome> ParallelAlg5(sim::HostStore* host,
                                     const MultiwayJoin& join,
                                     unsigned parallelism,
                                     const sim::CoprocessorOptions& copro,
                                     const ParallelRunOptions& run) {
  (void)run;
  return RunParallelAlgorithm5(host, join, parallelism, copro);
}

Result<ParallelOutcome> ParallelAlg6(sim::HostStore* host,
                                     const MultiwayJoin& join,
                                     unsigned parallelism,
                                     const sim::CoprocessorOptions& copro,
                                     const ParallelRunOptions& run) {
  ParallelAlgorithm6Options options;
  options.epsilon = run.epsilon;
  options.order_seed = run.order_seed;
  return RunParallelAlgorithm6(host, join, parallelism, copro, options);
}

}  // namespace

const std::vector<AlgorithmInfo>& AlgorithmRegistry() {
  static const std::vector<AlgorithmInfo> kRegistry = {
      {Algorithm::kAlgorithm1, "Algorithm 1", "1", "algorithm1", 4,
       /*requires_equality=*/false, /*requires_pow2_b=*/false,
       /*requires_epsilon=*/false, /*exact_output=*/false,
       /*supports_parallel=*/false,
       "N-padded output, tiny memory, rolling oblivious scratch",
       &plan::BuildAlgorithm1Plan, nullptr},
      {Algorithm::kAlgorithm1Variant, "Algorithm 1 (variant)", "1v",
       "algorithm1-variant", 4,
       /*requires_equality=*/false, /*requires_pow2_b=*/false,
       /*requires_epsilon=*/false, /*exact_output=*/false,
       /*supports_parallel=*/false,
       "N-padded output, one full-size oblivious sort per A tuple",
       &plan::BuildAlgorithm1VariantPlan, nullptr},
      {Algorithm::kAlgorithm2, "Algorithm 2", "2", "algorithm2", 4,
       /*requires_equality=*/false, /*requires_pow2_b=*/false,
       /*requires_epsilon=*/false, /*exact_output=*/false,
       /*supports_parallel=*/false,
       "N-padded output, gamma passes, no oblivious sort",
       &plan::BuildAlgorithm2Plan, nullptr},
      {Algorithm::kAlgorithm3, "Algorithm 3", "3", "algorithm3", 4,
       /*requires_equality=*/true, /*requires_pow2_b=*/true,
       /*requires_epsilon=*/false, /*exact_output=*/false,
       /*supports_parallel=*/false,
       "equijoin specialization with sorted B and circular scratch",
       &plan::BuildAlgorithm3Plan, nullptr},
      {Algorithm::kAlgorithm4, "Algorithm 4", "4", "algorithm4", 5,
       /*requires_equality=*/false, /*requires_pow2_b=*/false,
       /*requires_epsilon=*/false, /*exact_output=*/true,
       /*supports_parallel=*/true,
       "exact output, minimal memory (2 slots)", &plan::BuildAlgorithm4Plan,
       &ParallelAlg4},
      {Algorithm::kAlgorithm5, "Algorithm 5", "5", "algorithm5", 5,
       /*requires_equality=*/false, /*requires_pow2_b=*/false,
       /*requires_epsilon=*/false, /*exact_output=*/true,
       /*supports_parallel=*/true,
       "exact output, no oblivious sort, needs M slots",
       &plan::BuildAlgorithm5Plan, &ParallelAlg5},
      {Algorithm::kAlgorithm6, "Algorithm 6", "6", "algorithm6", 5,
       /*requires_equality=*/false, /*requires_pow2_b=*/false,
       /*requires_epsilon=*/true, /*exact_output=*/true,
       /*supports_parallel=*/true,
       "exact output, privacy level 1 - epsilon", &plan::BuildAlgorithm6Plan,
       &ParallelAlg6},
  };
  return kRegistry;
}

const AlgorithmInfo& GetAlgorithmInfo(Algorithm algorithm) {
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    if (info.algorithm == algorithm) return info;
  }
  // Unreachable for valid enum values; keep a deterministic fallback.
  return AlgorithmRegistry().front();
}

std::string ToString(Algorithm algorithm) {
  return GetAlgorithmInfo(algorithm).name;
}

Result<Algorithm> ParseAlgorithm(const std::string& s) {
  for (const AlgorithmInfo& info : AlgorithmRegistry()) {
    if (s == info.spelling) return info.algorithm;
  }
  return Status::InvalidArgument("unknown algorithm '" + s +
                                 "' (expected 1, 1v, 2, 3, 4, 5 or 6)");
}

bool IsChapter4(Algorithm algorithm) {
  return GetAlgorithmInfo(algorithm).chapter == 4;
}

}  // namespace ppj::core
