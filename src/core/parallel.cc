#include "core/parallel.h"

#include <algorithm>
#include <memory>
#include <span>
#include <thread>

#include "analysis/optimizer.h"
#include "common/math.h"
#include "common/telemetry.h"
#include "core/algorithm5.h"
#include "core/cartesian.h"
#include "crypto/mlfsr.h"
#include "oblivious/sort_simd.h"
#include "oblivious/windowed_filter.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

namespace {

/// Worker body of parallel Algorithm 5: emit results with global match
/// ranks in [rank_lo, rank_hi) into the shared output region at slots
/// [rank_lo, rank_hi), using Algorithm 5's scan-per-bufferful loop. Rank
/// selection is a function of the public parameters only.
Status Alg5Worker(sim::Coprocessor& copro, const MultiwayJoin& join,
                  std::uint64_t rank_lo, std::uint64_t rank_hi,
                  sim::RegionId out) {
  const std::uint64_t m = copro.memory_tuples();
  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer,
                       sim::SecureBuffer::Allocate(copro, m));
  ITupleReader reader(&copro, join.tables);
  const std::uint64_t l = reader.index().size();

  std::uint64_t cursor = rank_lo;  // next rank this worker must emit
  std::uint64_t written = rank_lo;
  // Batched scans, as in the single-device Algorithm 5: the staged run is
  // sealed ciphertext, a transfer-granularity knob only.
  reader.set_batch_hint(copro.BatchLimit(buffer.capacity()));
  while (cursor < rank_hi) {
    buffer.Clear();
    const std::uint64_t take = std::min<std::uint64_t>(m, rank_hi - cursor);
    std::uint64_t rank = 0;
    {
      PPJ_SPAN("scan");
      for (std::uint64_t idx = 0; idx < l; ++idx) {
        PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
        const bool hit =
            fetched.real && join.predicate->Satisfy(*fetched.components);
        copro.NoteMatchEvaluation(hit);
        if (hit) {
          if (rank >= cursor && rank < cursor + take) {
            PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
                ITupleReader::JoinedPayload(*fetched.components))));
          }
          ++rank;
        }
      }
    }
    PPJ_SPAN("output");
    PPJ_ASSIGN_OR_RETURN(
        sim::WriteRun flush,
        copro.PutSealedRange(out, written, buffer.size(), join.output_key));
    for (std::size_t k = 0; k < buffer.size(); ++k) {
      PPJ_RETURN_NOT_OK(flush.Append(buffer.At(k)));
      PPJ_RETURN_NOT_OK(copro.DiskWrite(out, written + k));
    }
    PPJ_RETURN_NOT_OK(flush.Flush());
    written += buffer.size();
    cursor += take;
  }
  return Status::OK();
}

void Accumulate(ParallelOutcome& out, const sim::Coprocessor& copro) {
  out.per_coprocessor.push_back(copro.metrics());
  out.makespan_transfers =
      std::max(out.makespan_transfers, copro.metrics().TupleTransfers());
  out.total_transfers += copro.metrics().TupleTransfers();
}

/// The windowed decoy filter of Section 5.2.2 with its inner sorts executed
/// as parallel bitonic sweeps across all devices. The lead coprocessor
/// (copros[0]) performs the sequential copy-in/copy-out; the sorts are
/// where the bulk of the transfers live.
Status ParallelDecoyFilter(std::vector<sim::Coprocessor*>& copros,
                           sim::RegionId src, std::uint64_t omega,
                           std::uint64_t mu, const crypto::Ocb& key,
                           sim::RegionId dst, std::size_t payload_size) {
  sim::Coprocessor& lead = *copros[0];
  // Metric-less umbrella span: the lead's sequential copies and the sort
  // workers run on different devices, so each inner phase binds its own.
  PPJ_SPAN("parallel-filter");
  const std::vector<std::uint8_t> decoy =
      relation::wire::MakeDecoy(payload_size);
  const std::uint64_t delta = analysis::OptimalSwapInteger(omega, mu);
  const std::uint64_t window = std::min(mu + delta, omega);
  const std::uint64_t padded = NextPowerOfTwo(window);
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload_size));
  const sim::RegionId buffer =
      lead.host()->CreateRegion("parallel-filter-buffer", slot, padded);

  // The lead device's sequential copies move through the batched layer in
  // batch-limit chunks, exactly like the single-device windowed filter.
  const std::uint64_t limit =
      lead.BatchLimit(std::max<std::uint64_t>(lead.memory_tuples(), 1));
  std::vector<std::uint8_t> plain;
  auto copy_range = [&](sim::RegionId sregion, std::uint64_t s0,
                        sim::RegionId dregion, std::uint64_t d0,
                        std::uint64_t cnt, bool disk) -> Status {
    for (std::uint64_t done = 0; done < cnt;) {
      const std::uint64_t step = std::min(limit, cnt - done);
      PPJ_ASSIGN_OR_RETURN(
          sim::ReadRun in, lead.GetOpenRange(sregion, s0 + done, step, &key));
      PPJ_RETURN_NOT_OK(in.PrefetchOpen());
      PPJ_ASSIGN_OR_RETURN(
          sim::WriteRun out,
          lead.PutSealedRange(dregion, d0 + done, step, &key));
      for (std::uint64_t e = 0; e < step; ++e) {
        PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> s, in.NextOpen());
        plain.assign(s.begin(), s.end());
        PPJ_RETURN_NOT_OK(out.Append(plain));
        if (disk) PPJ_RETURN_NOT_OK(lead.DiskWrite(dregion, d0 + done + e));
      }
      PPJ_RETURN_NOT_OK(out.Flush());
      done += step;
    }
    return Status::OK();
  };

  std::uint64_t consumed = 0;
  {
    PPJ_DEVICE_SPAN(&lead, "fill");
    PPJ_RETURN_NOT_OK(copy_range(src, 0, buffer, 0, window, /*disk=*/false));
    consumed = window;
    for (std::uint64_t b = window; b < padded;) {
      const std::uint64_t step = std::min(limit, padded - b);
      PPJ_ASSIGN_OR_RETURN(sim::WriteRun out,
                           lead.PutSealedRange(buffer, b, step, &key));
      for (std::uint64_t e = 0; e < step; ++e) {
        PPJ_RETURN_NOT_OK(out.Append(decoy));
      }
      PPJ_RETURN_NOT_OK(out.Flush());
      b += step;
    }
  }
  const oblivious::SortKey less = oblivious::RealFirstLess();
  PPJ_RETURN_NOT_OK(ParallelObliviousSort(copros, buffer, padded, key, less));
  while (consumed < omega) {
    const std::uint64_t chunk = std::min(delta, omega - consumed);
    {
      PPJ_DEVICE_SPAN(&lead, "refill");
      PPJ_RETURN_NOT_OK(
          copy_range(src, consumed, buffer, mu, chunk, /*disk=*/false));
    }
    consumed += chunk;
    PPJ_RETURN_NOT_OK(
        ParallelObliviousSort(copros, buffer, padded, key, less));
  }
  PPJ_DEVICE_SPAN(&lead, "emit");
  PPJ_RETURN_NOT_OK(copy_range(buffer, 0, dst, 0, mu, /*disk=*/true));
  return Status::OK();
}

}  // namespace

Result<ParallelOutcome> RunParallelAlgorithm5(
    sim::HostStore* host, const MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& base_options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (parallelism == 0) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  // Metric-less umbrella span: every device below binds its own subtree
  // (the coordinator inside "screen", each worker inside "worker-<p>").
  PPJ_SPAN("parallel-algorithm5");

  // Coordinator screens for S (Section 5.3.5: "one T serves as the
  // coordinator of parallelism").
  sim::CoprocessorOptions coord_options = base_options;
  sim::Coprocessor coordinator(host, coord_options);
  PPJ_ASSIGN_OR_RETURN(const std::uint64_t s,
                       ScreenResultSize(coordinator, join));

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const sim::RegionId output = host->CreateRegion("par5-output", slot, s);

  ParallelOutcome out;
  out.output_region = output;
  out.result_size = s;
  Accumulate(out, coordinator);
  if (s == 0) return out;

  const std::uint64_t blk = CeilDiv(s, parallelism);
  // Worker output slices share the single output region; slice p starts at
  // rank p*blk. Regions and coprocessors are created up front so ids and
  // seeds are deterministic.
  std::vector<std::unique_ptr<sim::Coprocessor>> copros;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  for (unsigned p = 0; p < parallelism; ++p) {
    const std::uint64_t lo = std::min<std::uint64_t>(s, p * blk);
    const std::uint64_t hi = std::min<std::uint64_t>(s, (p + 1) * blk);
    if (lo >= hi) break;
    sim::CoprocessorOptions opt = base_options;
    opt.seed = base_options.seed + 1000 + p;
    copros.push_back(std::make_unique<sim::Coprocessor>(host, opt));
    ranges.emplace_back(lo, hi);
  }

  std::vector<Status> statuses(copros.size());
  {
    const telemetry::SpanHandle tparent = telemetry::CurrentSpan();
    std::vector<std::thread> threads;
    threads.reserve(copros.size());
    for (std::size_t p = 0; p < copros.size(); ++p) {
      threads.emplace_back([&, p] {
        telemetry::ScopedContext tctx(tparent, copros[p].get());
        const std::string wname = "worker-" + std::to_string(p);
        PPJ_SPAN(wname);
        // Each worker writes into its slice of the shared output region:
        // model it with a per-worker sub-range via a dedicated region view.
        statuses[p] = Alg5Worker(*copros[p], join, ranges[p].first,
                                 ranges[p].second, output);
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const Status& st : statuses) PPJ_RETURN_NOT_OK(st);
  for (const auto& c : copros) Accumulate(out, *c);
  return out;
}

Result<ParallelOutcome> RunParallelAlgorithm4(
    sim::HostStore* host, const MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& base_options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (parallelism == 0) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  PPJ_SPAN("parallel-algorithm4");

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  std::uint64_t l = 1;
  for (const auto* t : join.tables) l *= t->size();
  const sim::RegionId staging = host->CreateRegion("par4-staging", slot, l);

  std::vector<std::unique_ptr<sim::Coprocessor>> copros;
  for (unsigned p = 0; p < parallelism; ++p) {
    sim::CoprocessorOptions opt = base_options;
    opt.seed = base_options.seed + 2000 + p;
    copros.push_back(std::make_unique<sim::Coprocessor>(host, opt));
  }

  // Phase 1: partition the iTuple range; one oTuple out per iTuple in.
  const std::uint64_t chunk = CeilDiv(l, parallelism);
  std::vector<Status> statuses(copros.size(), Status::OK());
  std::vector<std::uint64_t> counts(copros.size(), 0);
  {
    const telemetry::SpanHandle tparent = telemetry::CurrentSpan();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < copros.size(); ++p) {
      threads.emplace_back([&, p] {
        sim::Coprocessor& copro = *copros[p];
        telemetry::ScopedContext tctx(tparent, &copro);
        const std::string wname = "worker-" + std::to_string(p);
        PPJ_SPAN(wname);
        PPJ_SPAN("mix");
        ITupleReader reader(&copro, join.tables);
        reader.set_batch_hint(copro.BatchLimit(
            std::max<std::uint64_t>(copro.memory_tuples(), 1)));
        BatchedSealWriter writer(&copro, staging, join.output_key);
        const std::uint64_t lo = std::min<std::uint64_t>(l, p * chunk);
        const std::uint64_t hi = std::min<std::uint64_t>(l, (p + 1) * chunk);
        for (std::uint64_t idx = lo; idx < hi; ++idx) {
          auto fetched = reader.Fetch(idx);
          if (!fetched.ok()) {
            statuses[p] = fetched.status();
            return;
          }
          const bool hit = fetched->real &&
                           join.predicate->Satisfy(*fetched->components);
          copro.NoteMatchEvaluation(hit);
          Status st;
          if (hit) {
            ++counts[p];
            st = writer.Put(idx, relation::wire::MakeReal(
                ITupleReader::JoinedPayload(*fetched->components)));
          } else {
            st = writer.Put(idx, decoy);
          }
          if (!st.ok()) {
            statuses[p] = st;
            return;
          }
        }
        // Phase 2 reads the staging region only after all workers join.
        statuses[p] = writer.Flush();
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const Status& st : statuses) PPJ_RETURN_NOT_OK(st);
  std::uint64_t s = 0;
  for (std::uint64_t c : counts) s += c;

  ParallelOutcome out;
  out.result_size = s;
  if (s == 0) {
    out.output_region = host->CreateRegion("par4-output", slot, 0);
    for (const auto& c : copros) Accumulate(out, *c);
    return out;
  }

  // Phase 2: decoy filter. The windowed filter's inner sorts run as
  // parallel bitonic sweeps across all coprocessors.
  out.output_region = host->CreateRegion("par4-output", slot, s);
  std::vector<sim::Coprocessor*> views;
  views.reserve(copros.size());
  for (auto& c : copros) views.push_back(c.get());
  PPJ_RETURN_NOT_OK(ParallelDecoyFilter(views, staging, l, s,
                                        *join.output_key, out.output_region,
                                        payload));
  for (const auto& c : copros) Accumulate(out, *c);
  return out;
}

Result<ParallelCh4Outcome> RunParallelAlgorithm2(
    sim::HostStore* host, const TwoWayJoin& join, std::uint64_t n,
    unsigned parallelism, const sim::CoprocessorOptions& base_options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (parallelism == 0) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  if (n == 0) {
    return Status::InvalidArgument(
        "parallel Algorithm 2 needs N known a priori (run the safe "
        "preprocessing scan first)");
  }
  PPJ_SPAN("parallel-algorithm2");
  const std::uint64_t m = base_options.memory_tuples;
  if (m <= 1) {
    return Status::CapacityExceeded("Algorithm 2 needs memory beyond the "
                                    "bookkeeping slot");
  }
  const std::uint64_t m_free = m - 1;  // delta = 1 bookkeeping slot
  const std::uint64_t gamma = std::max<std::uint64_t>(1, CeilDiv(n, m_free));
  const std::uint64_t blk = CeilDiv(n, gamma);

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);
  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId output = host->CreateRegion(
      "par2-output", slot, size_a * gamma * blk);

  std::vector<std::unique_ptr<sim::Coprocessor>> copros;
  for (unsigned p = 0; p < parallelism; ++p) {
    sim::CoprocessorOptions opt = base_options;
    opt.seed = base_options.seed + 4000 + p;
    copros.push_back(std::make_unique<sim::Coprocessor>(host, opt));
  }

  const std::uint64_t chunk = CeilDiv(size_a, parallelism);
  std::vector<Status> statuses(copros.size(), Status::OK());
  {
    const telemetry::SpanHandle tparent = telemetry::CurrentSpan();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < copros.size(); ++p) {
      threads.emplace_back([&, p] {
        sim::Coprocessor& copro = *copros[p];
        telemetry::ScopedContext tctx(tparent, &copro);
        const std::string wname = "worker-" + std::to_string(p);
        PPJ_SPAN(wname);
        auto buffer = sim::SecureBuffer::Allocate(copro, blk);
        if (!buffer.ok()) {
          statuses[p] = buffer.status();
          return;
        }
        const std::uint64_t lo = std::min<std::uint64_t>(size_a, p * chunk);
        const std::uint64_t hi =
            std::min<std::uint64_t>(size_a, (p + 1) * chunk);
        BatchedScan ascan(&copro, join.a);
        BatchedScan bscan(&copro, join.b);
        relation::Tuple a, b;
        bool a_real = false, b_real = false;
        for (std::uint64_t ai = lo; ai < hi; ++ai) {
          Status ast = ascan.FetchInto(ai, &a, &a_real);
          if (!ast.ok()) {
            statuses[p] = ast;
            return;
          }
          std::int64_t last = -1;
          for (std::uint64_t pass = 0; pass < gamma; ++pass) {
            buffer->Clear();
            std::int64_t current = 0;
            std::int64_t pass_last = last;
            for (std::uint64_t bi = 0; bi < size_b; ++bi) {
              Status bst = bscan.FetchInto(bi, &b, &b_real);
              if (!bst.ok()) {
                statuses[p] = bst;
                return;
              }
              const bool hit =
                  a_real && b_real && join.predicate->Match(a, b);
              copro.NoteMatchEvaluation(hit);
              if (current > last && !buffer->full() && hit) {
                std::vector<std::uint8_t> bytes = a.Serialize();
                const std::vector<std::uint8_t> bb = b.Serialize();
                bytes.insert(bytes.end(), bb.begin(), bb.end());
                Status st =
                    buffer->Push(relation::wire::MakeReal(bytes));
                if (!st.ok()) {
                  statuses[p] = st;
                  return;
                }
                pass_last = current;
              }
              ++current;
            }
            last = pass_last;
            const std::uint64_t base = (ai * gamma + pass) * blk;
            auto flush =
                copro.PutSealedRange(output, base, blk, join.output_key);
            if (!flush.ok()) {
              statuses[p] = flush.status();
              return;
            }
            for (std::uint64_t k = 0; k < blk; ++k) {
              const std::vector<std::uint8_t>& plain =
                  k < buffer->size() ? buffer->At(k) : decoy;
              Status st = flush->Append(plain);
              if (st.ok()) st = copro.DiskWrite(output, base + k);
              if (!st.ok()) {
                statuses[p] = st;
                return;
              }
            }
            Status st = flush->Flush();
            if (!st.ok()) {
              statuses[p] = st;
              return;
            }
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const Status& st : statuses) PPJ_RETURN_NOT_OK(st);

  ParallelCh4Outcome out;
  out.output_region = output;
  out.output_slots = size_a * gamma * blk;
  out.n_used = n;
  for (const auto& c : copros) {
    out.per_coprocessor.push_back(c->metrics());
    out.makespan_transfers =
        std::max(out.makespan_transfers, c->metrics().TupleTransfers());
  }
  return out;
}

Result<ParallelOutcome> RunParallelAlgorithm6(
    sim::HostStore* host, const MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& base_options,
    const ParallelAlgorithm6Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (parallelism == 0) {
    return Status::InvalidArgument("parallelism must be >= 1");
  }
  const std::uint64_t m = base_options.memory_tuples;
  if (m == 0) {
    return Status::CapacityExceeded("parallel Algorithm 6 needs M >= 1");
  }
  PPJ_SPAN("parallel-algorithm6");

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  // Coordinator: screening pass for S, then the segment-size solve.
  sim::Coprocessor coordinator(host, base_options);
  PPJ_ASSIGN_OR_RETURN(const std::uint64_t s,
                       ScreenResultSize(coordinator, join));
  std::uint64_t l = 1;
  for (const auto* t : join.tables) l *= t->size();

  ParallelOutcome out;
  out.result_size = s;
  if (s == 0) {
    out.output_region = host->CreateRegion("par6-output", slot, 0);
    Accumulate(out, coordinator);
    return out;
  }
  const std::uint64_t n_star =
      analysis::OptimalSegmentSize(l, s, m, options.epsilon);
  const std::uint64_t segments = CeilDiv(l, n_star);
  const sim::RegionId staging =
      host->CreateRegion("par6-staging", slot, segments * m);
  out.output_region = host->CreateRegion("par6-output", slot, s);

  // Workers own contiguous segment ranges of the *shared* MLFSR order
  // (identical seed everywhere, Section 5.3.5): no coordination needed to
  // agree which iTuple belongs to which segment.
  std::vector<std::unique_ptr<sim::Coprocessor>> copros;
  for (unsigned p = 0; p < parallelism; ++p) {
    sim::CoprocessorOptions opt = base_options;
    opt.seed = base_options.seed + 3000 + p;
    copros.push_back(std::make_unique<sim::Coprocessor>(host, opt));
  }
  const std::uint64_t segs_per_worker = CeilDiv(segments, parallelism);
  std::vector<Status> statuses(copros.size(), Status::OK());
  std::vector<std::uint8_t> blemishes(copros.size(), 0);
  {
    const telemetry::SpanHandle tparent = telemetry::CurrentSpan();
    std::vector<std::thread> threads;
    for (std::size_t p = 0; p < copros.size(); ++p) {
      threads.emplace_back([&, p] {
        sim::Coprocessor& copro = *copros[p];
        telemetry::ScopedContext tctx(tparent, &copro);
        const std::string wname = "worker-" + std::to_string(p);
        PPJ_SPAN(wname);
        PPJ_SPAN("main");
        const std::uint64_t seg_lo =
            std::min<std::uint64_t>(segments, p * segs_per_worker);
        const std::uint64_t seg_hi =
            std::min<std::uint64_t>(segments, (p + 1) * segs_per_worker);
        if (seg_lo >= seg_hi) return;
        auto order = crypto::RandomOrder::Create(l, options.order_seed);
        if (!order.ok()) {
          statuses[p] = order.status();
          return;
        }
        // Advance the shared order to this worker's first position —
        // internal computation, no transfers.
        for (std::uint64_t skip = 0; skip < seg_lo * n_star; ++skip) {
          order->Next();
        }
        auto buffer = sim::SecureBuffer::Allocate(copro, m);
        if (!buffer.ok()) {
          statuses[p] = buffer.status();
          return;
        }
        ITupleReader reader(&copro, join.tables);
        const std::uint64_t pos_hi = std::min(seg_hi * n_star, l);
        std::uint64_t seg = seg_lo;
        std::uint64_t in_segment = 0;
        for (std::uint64_t pos = seg_lo * n_star; pos < pos_hi; ++pos) {
          const std::uint64_t idx = order->Next();
          auto fetched = reader.Fetch(idx);
          if (!fetched.ok()) {
            statuses[p] = fetched.status();
            return;
          }
          const bool hit = fetched->real &&
                           join.predicate->Satisfy(*fetched->components);
          copro.NoteMatchEvaluation(hit);
          if (hit) {
            if (buffer->full()) {
              blemishes[p] = 1;
            } else {
              Status st = buffer->Push(relation::wire::MakeReal(
                  ITupleReader::JoinedPayload(*fetched->components)));
              if (!st.ok()) {
                statuses[p] = st;
                return;
              }
            }
          }
          ++in_segment;
          if (in_segment == n_star || pos + 1 == pos_hi) {
            // One scatter per fixed-size segment flush; the staging region
            // is only read by the filter, after all workers join.
            auto flush =
                copro.PutSealedRange(staging, seg * m, m, join.output_key);
            if (!flush.ok()) {
              statuses[p] = flush.status();
              return;
            }
            for (std::uint64_t k = 0; k < m; ++k) {
              Status st = flush->Append(k < buffer->size() ? buffer->At(k)
                                                           : decoy);
              if (!st.ok()) {
                statuses[p] = st;
                return;
              }
            }
            Status st = flush->Flush();
            if (!st.ok()) {
              statuses[p] = st;
              return;
            }
            buffer->Clear();
            in_segment = 0;
            ++seg;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  for (const Status& st : statuses) PPJ_RETURN_NOT_OK(st);
  bool blemish = false;
  for (std::uint8_t b : blemishes) blemish = blemish || b != 0;

  if (blemish) {
    // Sequential salvage by the coordinator — same semantics as the
    // single-device Algorithm 6 (epsilon-probability privacy loss).
    PPJ_SPAN("salvage");
    PPJ_ASSIGN_OR_RETURN(Ch5Outcome salvage,
                         RunAlgorithm5(coordinator, join));
    out.output_region = salvage.output_region;
    out.result_size = salvage.result_size;
    Accumulate(out, coordinator);
    for (const auto& c : copros) Accumulate(out, *c);
    return out;
  }

  std::vector<sim::Coprocessor*> views;
  views.reserve(copros.size());
  for (auto& c : copros) views.push_back(c.get());
  PPJ_RETURN_NOT_OK(ParallelDecoyFilter(views, staging, segments * m, s,
                                        *join.output_key, out.output_region,
                                        payload));
  Accumulate(out, coordinator);
  for (const auto& c : copros) Accumulate(out, *c);
  return out;
}

namespace {

/// One device's share [lo, hi) of the compare-exchange sources of bitonic
/// stage (k, j). Blocks of 2j slots fully owned by this device move through
/// the batched range layer (their slots are touched by no other device this
/// stage); boundary blocks fall back to scalar transfers. Per comparator
/// the accounting is scalar-identical and in scalar order either way.
Status SortStageRange(sim::Coprocessor& copro, sim::RegionId region,
                      std::uint64_t k, std::uint64_t j, std::uint64_t lo,
                      std::uint64_t hi, const crypto::Ocb& key,
                      const oblivious::SortKey& less) {
  const std::uint64_t block = 2 * j;
  const std::uint64_t limit =
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 2));
  const oblivious::SimdTier tier = oblivious::ActiveSimdTier();
  std::vector<std::uint8_t> pi;
  std::vector<std::uint8_t> pj;
  std::uint64_t i = lo;
  while (i < hi) {
    const std::uint64_t base = i & ~(block - 1);
    if (block <= limit && i == base && base + j <= hi) {
      PPJ_ASSIGN_OR_RETURN(sim::ReadRun in,
                           copro.GetOpenRange(region, base, block, &key));
      PPJ_RETURN_NOT_OK(in.PrefetchOpen());
      PPJ_ASSIGN_OR_RETURN(sim::WriteRun out,
                           copro.PutSealedRange(region, base, block, &key));
      std::uint8_t* arena = in.MutablePlainArena();
      if (arena != nullptr && less.Vectorizable()) {
        // Vector swap pass then scalar accounting replay — identical
        // observable effect to the loop below; see ObliviousSort for the
        // argument. Direction is per-block constant (block aligned to 2j,
        // k >= 2j).
        const bool ascending = (base & k) == 0;
        oblivious::CompareExchangeBlock(arena, in.PlainSlotSize(), j,
                                        ascending, less, tier);
        for (std::uint64_t c = base; c < base + j; ++c) {
          const std::uint64_t l_idx = c ^ j;  // == c + j within the block
          PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> si,
                               in.OpenAt(c));
          PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> sl,
                               in.OpenAt(l_idx));
          copro.NoteComparison();
          PPJ_RETURN_NOT_OK(out.SealAt(c, si));
          PPJ_RETURN_NOT_OK(out.SealAt(l_idx, sl));
        }
        PPJ_RETURN_NOT_OK(out.Flush());
        i = base + block;
        continue;
      }
      for (std::uint64_t c = base; c < base + j; ++c) {
        const std::uint64_t l_idx = c ^ j;  // == c + j within the block
        PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> si, in.OpenAt(c));
        pi.assign(si.begin(), si.end());
        PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> sl,
                             in.OpenAt(l_idx));
        pj.assign(sl.begin(), sl.end());
        copro.NoteComparison();
        const bool ascending = (c & k) == 0;
        const bool out_of_order = ascending ? less(pj, pi) : less(pi, pj);
        if (out_of_order) std::swap(pi, pj);
        PPJ_RETURN_NOT_OK(out.SealAt(c, pi));
        PPJ_RETURN_NOT_OK(out.SealAt(l_idx, pj));
      }
      PPJ_RETURN_NOT_OK(out.Flush());
      i = base + block;  // sources in [base+j, base+2j) are skips anyway
      continue;
    }
    const std::uint64_t l_idx = i ^ j;
    if (l_idx > i) {
      PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> x,
                           copro.GetOpen(region, i, key));
      PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> y,
                           copro.GetOpen(region, l_idx, key));
      copro.NoteComparison();
      const bool ascending = (i & k) == 0;
      const bool out_of_order = ascending ? less(y, x) : less(x, y);
      if (out_of_order) std::swap(x, y);
      PPJ_RETURN_NOT_OK(copro.PutSealed(region, i, x, key));
      PPJ_RETURN_NOT_OK(copro.PutSealed(region, l_idx, y, key));
    }
    ++i;
  }
  return Status::OK();
}

}  // namespace

Status ParallelObliviousSort(std::vector<sim::Coprocessor*>& copros,
                             sim::RegionId region, std::uint64_t n,
                             const crypto::Ocb& key,
                             const oblivious::SortKey& less) {
  if (copros.empty()) {
    return Status::InvalidArgument("need at least one coprocessor");
  }
  if (n <= 1) return Status::OK();
  if (!IsPowerOfTwo(n)) {
    return Status::InvalidArgument("parallel bitonic needs power-of-two n");
  }
  const std::size_t p_count = copros.size();
  const telemetry::SpanHandle tparent = telemetry::CurrentSpan();
  for (std::uint64_t k = 2; k <= n; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      // All compare-exchanges of a stage are independent: partition the
      // index range across devices, barrier at stage end.
      std::vector<Status> statuses(p_count, Status::OK());
      std::vector<std::thread> threads;
      const std::uint64_t chunk = CeilDiv(n, p_count);
      for (std::size_t p = 0; p < p_count; ++p) {
        threads.emplace_back([&, p] {
          // Same name every stage: the span tree aggregates all of this
          // device's stage shares into one "sort-worker-<p>" node.
          telemetry::ScopedContext tctx(tparent, copros[p]);
          const std::string wname = "sort-worker-" + std::to_string(p);
          PPJ_SPAN(wname);
          const std::uint64_t lo = std::min<std::uint64_t>(n, p * chunk);
          const std::uint64_t hi =
              std::min<std::uint64_t>(n, (p + 1) * chunk);
          statuses[p] =
              SortStageRange(*copros[p], region, k, j, lo, hi, key, less);
        });
      }
      for (auto& t : threads) t.join();
      for (const Status& st : statuses) PPJ_RETURN_NOT_OK(st);
    }
  }
  return Status::OK();
}

}  // namespace ppj::core
