#include "core/algorithm1.h"

#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"

// Algorithms 1 and 1v as thin plan builders: the bodies live in the
// operator layer (plan/ops_ch4.cc — ResolveNOp + ScratchRotateOp in
// kRolling resp. kFullSort mode). These wrappers are the stable public
// compatibility surface; fingerprints are bit-identical to the former
// monolithic drivers (tests/test_plan_goldens.cc).

namespace ppj::core {

Result<Ch4Outcome> RunAlgorithm1(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm1Options& options) {
  plan::JoinPlanOptions popts;
  popts.n = options.n;
  PPJ_ASSIGN_OR_RETURN(
      plan::PhysicalPlan physical,
      plan::BuildJoinPlan(Algorithm::kAlgorithm1, &join, nullptr, popts));
  plan::PlanContext ctx(&join, nullptr);
  PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
  return plan::TakeCh4Outcome(ctx);
}

Result<Ch4Outcome> RunAlgorithm1Variant(sim::Coprocessor& copro,
                                        const TwoWayJoin& join,
                                        const Algorithm1Options& options) {
  plan::JoinPlanOptions popts;
  popts.n = options.n;
  PPJ_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                       plan::BuildJoinPlan(Algorithm::kAlgorithm1Variant,
                                           &join, nullptr, popts));
  plan::PlanContext ctx(&join, nullptr);
  PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
  return plan::TakeCh4Outcome(ctx);
}

}  // namespace ppj::core
