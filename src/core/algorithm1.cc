#include "core/algorithm1.h"

#include "common/math.h"
#include "common/telemetry.h"
#include "core/host_retry.h"
#include "oblivious/bitonic_sort.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

namespace {

/// N as configured or computed by the safe preprocessing scan; never 0.
Result<std::uint64_t> ResolveN(sim::Coprocessor& copro,
                               const TwoWayJoin& join, std::uint64_t n) {
  if (n == 0) {
    PPJ_ASSIGN_OR_RETURN(n, ComputeMaxMatches(copro, join));
  }
  return std::max<std::uint64_t>(n, 1);
}

/// H copies `count` sealed slots from `src` to `dst` at dst_base and
/// persists them — the paper's "Request H to write first N of scratch[] to
/// disk". A host-side move of ciphertext T already produced: no transfers,
/// one observable disk event per slot. H retries its own transient I/O
/// (bounded, untraced) like any storage client.
Status HostFlushToOutput(sim::Coprocessor& copro, sim::RegionId src,
                         std::uint64_t count, sim::RegionId dst,
                         std::uint64_t dst_base) {
  for (std::uint64_t k = 0; k < count; ++k) {
    PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> sealed,
                         ReadSlotWithRetry(*copro.host(), src, k));
    PPJ_RETURN_NOT_OK(
        WriteSlotWithRetry(*copro.host(), dst, dst_base + k, sealed));
    PPJ_RETURN_NOT_OK(copro.DiskWrite(dst, dst_base + k));
  }
  return Status::OK();
}

}  // namespace

Result<Ch4Outcome> RunAlgorithm1(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm1Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "algorithm1");
  PPJ_ASSIGN_OR_RETURN(const std::uint64_t n,
                       ResolveN(copro, join, options.n));

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  // Scratch of 2N oTuples in host memory, padded to a power of two for the
  // bitonic network (exactly 2N when N is a power of two).
  const std::uint64_t scratch_slots = NextPowerOfTwo(2 * n);
  const sim::RegionId scratch =
      copro.host()->CreateRegion("alg1-scratch", slot, scratch_slots);
  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId output =
      copro.host()->CreateRegion("alg1-output", slot, size_a * n);

  const oblivious::PlainLess real_first = oblivious::RealFirstLess();

  // Batched sequential scans of the inputs and a windowed writer for the
  // scratch: per slot the accounting is scalar-identical, only the physical
  // transfer granularity changes. The writer is flushed before every
  // ObliviousSort (which reads the scratch region) and the sort itself
  // leaves no writes pending.
  BatchedScan ascan(&copro, join.a);
  BatchedScan bscan(&copro, join.b);
  BatchedSealWriter writer(&copro, scratch, join.output_key);
  relation::Tuple a, b;
  bool a_real = false, b_real = false;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    {
      PPJ_SPAN("reset");
      // Reset the scratch with fresh indistinguishable decoys.
      for (std::uint64_t k = 0; k < scratch_slots; ++k) {
        PPJ_RETURN_NOT_OK(writer.Put(k, decoy));
      }
      PPJ_RETURN_NOT_OK(writer.Flush());
    }
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    {
      PPJ_SPAN("mix");
      std::uint64_t i = 0;
      for (std::uint64_t bi = 0; bi < size_b; ++bi) {
        PPJ_RETURN_NOT_OK(bscan.FetchInto(bi, &b, &b_real));
        const bool hit = a_real && b_real && join.predicate->Match(a, b);
        copro.NoteMatchEvaluation(hit);
        // Exactly one oTuple out per comparison, always to the same rolling
        // slot — the fixed-size principle of Section 3.4.3.
        const std::uint64_t pos = n + (i % n);
        if (hit) {
          // Joined payload = a bytes || b bytes.
          std::vector<std::uint8_t> bytes = a.Serialize();
          const std::vector<std::uint8_t> bb = b.Serialize();
          bytes.insert(bytes.end(), bb.begin(), bb.end());
          PPJ_RETURN_NOT_OK(writer.Put(pos, relation::wire::MakeReal(bytes)));
        } else {
          PPJ_RETURN_NOT_OK(writer.Put(pos, decoy));
        }
        ++i;
        if (i % n == 0) {
          PPJ_RETURN_NOT_OK(writer.Flush());
          PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
              copro, scratch, scratch_slots, *join.output_key, real_first));
        }
      }
      if (i % n != 0) {
        PPJ_RETURN_NOT_OK(writer.Flush());
        PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
            copro, scratch, scratch_slots, *join.output_key, real_first));
      }
    }
    PPJ_SPAN("output");
    PPJ_RETURN_NOT_OK(HostFlushToOutput(copro, scratch, n, output, ai * n));
  }

  return Ch4Outcome{output, size_a * n, n};
}

Result<Ch4Outcome> RunAlgorithm1Variant(sim::Coprocessor& copro,
                                        const TwoWayJoin& join,
                                        const Algorithm1Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "algorithm1-variant");
  PPJ_ASSIGN_OR_RETURN(const std::uint64_t n,
                       ResolveN(copro, join, options.n));

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const std::uint64_t buffer_slots = NextPowerOfTwo(size_b);
  const sim::RegionId buffer =
      copro.host()->CreateRegion("alg1v-buffer", slot, buffer_slots);
  const sim::RegionId output =
      copro.host()->CreateRegion("alg1v-output", slot, size_a * n);

  const oblivious::PlainLess real_first = oblivious::RealFirstLess();

  // Same batching discipline as Algorithm 1: windowed input scans, windowed
  // buffer writes, flush before the sort reads the buffer.
  BatchedScan ascan(&copro, join.a);
  BatchedScan bscan(&copro, join.b);
  BatchedSealWriter writer(&copro, buffer, join.output_key);
  relation::Tuple a, b;
  bool a_real = false, b_real = false;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    {
      PPJ_SPAN("mix");
      for (std::uint64_t bi = 0; bi < size_b; ++bi) {
        PPJ_RETURN_NOT_OK(bscan.FetchInto(bi, &b, &b_real));
        const bool hit = a_real && b_real && join.predicate->Match(a, b);
        copro.NoteMatchEvaluation(hit);
        if (hit) {
          std::vector<std::uint8_t> bytes = a.Serialize();
          const std::vector<std::uint8_t> bb = b.Serialize();
          bytes.insert(bytes.end(), bb.begin(), bb.end());
          PPJ_RETURN_NOT_OK(writer.Put(bi, relation::wire::MakeReal(bytes)));
        } else {
          PPJ_RETURN_NOT_OK(writer.Put(bi, decoy));
        }
      }
      for (std::uint64_t k = size_b; k < buffer_slots; ++k) {
        PPJ_RETURN_NOT_OK(writer.Put(k, decoy));
      }
      PPJ_RETURN_NOT_OK(writer.Flush());
    }
    PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(copro, buffer, buffer_slots,
                                               *join.output_key, real_first));
    PPJ_SPAN("output");
    PPJ_RETURN_NOT_OK(HostFlushToOutput(copro, buffer, n, output, ai * n));
  }

  return Ch4Outcome{output, size_a * n, n};
}

}  // namespace ppj::core
