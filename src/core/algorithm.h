#ifndef PPJ_CORE_ALGORITHM_H_
#define PPJ_CORE_ALGORITHM_H_

#include <string>

#include "common/result.h"

namespace ppj::core {

/// The paper's join algorithms (Chapters 4 and 5) — the single enum shared
/// by the planner, the service layer and the tools. Service-level "let the
/// planner pick" is not an algorithm and is therefore not a value here; the
/// service expresses it as an absent std::optional<Algorithm> (see
/// service::kAuto).
enum class Algorithm {
  kAlgorithm1,         ///< Ch.4 general join, small memory
  kAlgorithm1Variant,  ///< Ch.4 variant (Section 4.4.2)
  kAlgorithm2,         ///< Ch.4 general join, large memory
  kAlgorithm3,         ///< Ch.4 sort-based equijoin
  kAlgorithm4,         ///< Ch.5 exact join, small memory
  kAlgorithm5,         ///< Ch.5 exact join, large memory
  kAlgorithm6,         ///< Ch.5 (1 - epsilon)-privacy join
};

std::string ToString(Algorithm algorithm);

/// Parses the command-line spelling: "1", "1v", "2", "3", "4", "5", "6".
Result<Algorithm> ParseAlgorithm(const std::string& s);

/// Chapter 4 family: N|A|-shaped output, two-way joins, sequential only.
bool IsChapter4(Algorithm algorithm);

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM_H_
