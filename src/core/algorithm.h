#ifndef PPJ_CORE_ALGORITHM_H_
#define PPJ_CORE_ALGORITHM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace ppj::sim {
class HostStore;
struct CoprocessorOptions;
}  // namespace ppj::sim

namespace ppj::plan {
struct JoinPlanOptions;
struct PhysicalPlan;
}  // namespace ppj::plan

namespace ppj::core {

struct TwoWayJoin;
struct MultiwayJoin;
struct ParallelOutcome;

/// The paper's join algorithms (Chapters 4 and 5) — the single enum shared
/// by the planner, the service layer and the tools. Service-level "let the
/// planner pick" is not an algorithm and is therefore not a value here; the
/// service expresses it as an absent std::optional<Algorithm> (see
/// service::kAuto).
enum class Algorithm {
  kAlgorithm1,         ///< Ch.4 general join, small memory
  kAlgorithm1Variant,  ///< Ch.4 variant (Section 4.4.2)
  kAlgorithm2,         ///< Ch.4 general join, large memory
  kAlgorithm3,         ///< Ch.4 sort-based equijoin
  kAlgorithm4,         ///< Ch.5 exact join, small memory
  kAlgorithm5,         ///< Ch.5 exact join, large memory
  kAlgorithm6,         ///< Ch.5 (1 - epsilon)-privacy join
};

/// Algorithm-independent knobs of the parallel engines (Section 5.3.5).
struct ParallelRunOptions {
  double epsilon = 1e-20;             ///< Algorithm 6 privacy slack.
  std::uint64_t order_seed = 0x5eed;  ///< Algorithm 6 visiting order.
};

/// Builds the algorithm's physical plan (plan/builder.h signatures).
using PlanBuilderFn = Result<plan::PhysicalPlan> (*)(
    const TwoWayJoin* two_way, const MultiwayJoin* multiway,
    const plan::JoinPlanOptions& options);

/// Runs the algorithm's multi-coprocessor engine.
using ParallelRunnerFn = Result<ParallelOutcome> (*)(
    sim::HostStore* host, const MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& copro_options,
    const ParallelRunOptions& run_options);

/// One registry row per paper algorithm: naming, chapter, capability
/// flags, and the plan-builder / parallel-engine entry points. This is the
/// single dispatch table — the service layer, the parallel engine lookup
/// and ppjctl all resolve algorithms here, so adding an operator-built
/// plan needs exactly one registration.
struct AlgorithmInfo {
  Algorithm algorithm = Algorithm::kAlgorithm5;
  const char* name = "";       ///< Display name ("Algorithm 1 (variant)").
  const char* spelling = "";   ///< Command-line spelling ("1v").
  const char* root_span = "";  ///< Device span the plan executes under.
  int chapter = 5;             ///< Paper chapter: 4 or 5.
  bool requires_equality = false;  ///< Needs an EqualityPredicate.
  bool requires_pow2_b = false;    ///< Needs |B| padded to a power of two.
  bool requires_epsilon = false;   ///< Needs epsilon > 0.
  bool exact_output = false;  ///< Emits exactly S results (Definition 3).
  /// Has a registered service-level parallel engine (Section 5.3.5).
  /// Algorithm 2's Section 4.4.4 executor exists but returns the Chapter 4
  /// outcome shape and stays a core-level API (RunParallelAlgorithm2).
  bool supports_parallel = false;
  const char* summary = "";  ///< One-line planner-style characterization.
  PlanBuilderFn build = nullptr;
  ParallelRunnerFn parallel = nullptr;
};

/// All algorithms, in enum order.
const std::vector<AlgorithmInfo>& AlgorithmRegistry();

/// The registry row for `algorithm`.
const AlgorithmInfo& GetAlgorithmInfo(Algorithm algorithm);

std::string ToString(Algorithm algorithm);

/// Parses the command-line spelling: "1", "1v", "2", "3", "4", "5", "6".
Result<Algorithm> ParseAlgorithm(const std::string& s);

/// Chapter 4 family: N|A|-shaped output, two-way joins, sequential only.
bool IsChapter4(Algorithm algorithm);

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM_H_
