#ifndef PPJ_CORE_ALGORITHM2_H_
#define PPJ_CORE_ALGORITHM2_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::core {

struct Algorithm2Options {
  /// N — maximum matches per A tuple; 0 = compute via the safe scan.
  std::uint64_t n = 0;
  /// delta — tuple slots reserved for bookkeeping data structures
  /// (Section 4.4.3); subtracted from the coprocessor's free memory before
  /// sizing the result buffer.
  std::uint64_t bookkeeping_slots = 1;
};

/// Algorithm 2 (Section 4.4.3) — general join for secure coprocessors with
/// *larger* memories. For every A tuple, T makes gamma = ceil(N/(M - delta))
/// passes over B; pass i collects the i-th block of ceil(N/gamma) matches in
/// coprocessor memory and flushes a fixed-size block (padded with decoys) at
/// the end of the pass. The `last` cursor resumes matching where the
/// previous pass stopped, exactly as in the paper's pseudocode.
///
/// Transfer cost: |A| + gamma |A||B| + blk*gamma*|A| outputs
/// (= N|A| when gamma divides N).
Result<Ch4Outcome> RunAlgorithm2(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm2Options& options = {});

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM2_H_
