#include "core/algorithm6.h"

#include <algorithm>
#include <optional>

#include "analysis/optimizer.h"
#include "common/math.h"
#include "common/telemetry.h"
#include "core/algorithm5.h"
#include "core/cartesian.h"
#include "crypto/mlfsr.h"
#include "oblivious/windowed_filter.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

namespace {

/// Screening pass that also opportunistically buffers results: if all S
/// results fit in memory, Algorithm 6 is done after this single pass
/// (footnote 1 of Section 5.3.3).
struct ScreenResult {
  std::uint64_t s = 0;
  bool buffered_all = false;
};

Result<ScreenResult> ScreenAndMaybeBuffer(sim::Coprocessor& copro,
                                          const MultiwayJoin& join,
                                          ITupleReader& reader,
                                          sim::SecureBuffer& buffer) {
  ScreenResult out;
  bool overflow = false;
  const std::uint64_t l = reader.index().size();
  for (std::uint64_t idx = 0; idx < l; ++idx) {
    PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
    const bool hit =
        fetched.real && join.predicate->Satisfy(*fetched.components);
    copro.NoteMatchEvaluation(hit);
    if (hit) {
      ++out.s;
      if (!overflow && !buffer.full()) {
        PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
            ITupleReader::JoinedPayload(*fetched.components))));
      } else {
        overflow = true;
      }
    }
  }
  out.buffered_all = !overflow;
  return out;
}

}  // namespace

Result<Ch5Outcome> RunAlgorithm6(sim::Coprocessor& copro,
                                 const MultiwayJoin& join,
                                 const Algorithm6Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  PPJ_DEVICE_SPAN(&copro, "algorithm6");
  const std::uint64_t m = copro.memory_tuples();
  if (m == 0) {
    return Status::CapacityExceeded(
        "Algorithm 6 needs at least one result slot; use Algorithm 4");
  }
  PPJ_ASSIGN_OR_RETURN(sim::SecureBuffer buffer_holder,
                       sim::SecureBuffer::Allocate(copro, m));
  std::optional<sim::SecureBuffer> buffer_opt(std::move(buffer_holder));
  sim::SecureBuffer& buffer = *buffer_opt;

  ITupleReader reader(&copro, join.tables);
  const std::uint64_t l = reader.index().size();
  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  // --- Screening pass: learn S (and buffer results opportunistically). ---
  // The screening scan is sequential, so it moves through the batched
  // transfer layer; the hint is withdrawn afterwards because the main pass
  // visits iTuples in MLFSR-random order, where staged runs would go to
  // waste (a staged-but-unconsumed slot is never traced or charged, but the
  // physical gather still costs wall clock).
  reader.set_batch_hint(
      copro.BatchLimit(std::max<std::uint64_t>(buffer.capacity(), 1)));
  ScreenResult screened;
  {
    PPJ_SPAN("screen");
    PPJ_ASSIGN_OR_RETURN(screened,
                         ScreenAndMaybeBuffer(copro, join, reader, buffer));
  }
  reader.set_batch_hint(1);
  const std::uint64_t s = screened.s;

  Ch5Outcome out;
  out.result_size = s;
  if (s == 0) {
    out.output_region = copro.host()->CreateRegion("alg6-output", slot, 0);
    return out;
  }
  if (screened.buffered_all) {
    // M >= S case: flush straight from memory; total cost L + S.
    PPJ_SPAN("output");
    out.n_star = l;
    out.output_region = copro.host()->CreateRegion("alg6-output", slot, s);
    PPJ_ASSIGN_OR_RETURN(
        sim::WriteRun flush,
        copro.PutSealedRange(out.output_region, 0, buffer.size(),
                             join.output_key));
    for (std::size_t k = 0; k < buffer.size(); ++k) {
      PPJ_RETURN_NOT_OK(flush.Append(buffer.At(k)));
      PPJ_RETURN_NOT_OK(copro.DiskWrite(out.output_region, k));
    }
    PPJ_RETURN_NOT_OK(flush.Flush());
    return out;
  }

  // --- Segment size n* (Eqn 5.6, maximized; see DESIGN.md). ---
  const std::uint64_t n_star =
      options.forced_segment_size > 0
          ? options.forced_segment_size
          : analysis::OptimalSegmentSize(l, s, m, options.epsilon);
  out.n_star = n_star;
  const std::uint64_t segments = CeilDiv(l, n_star);
  const std::uint64_t staging_slots = segments * m;
  out.staging_slots = staging_slots;

  const sim::RegionId staging =
      copro.host()->CreateRegion("alg6-staging", slot, staging_slots);

  // --- Main pass in MLFSR-random order, flushing M oTuples per segment. ---
  PPJ_ASSIGN_OR_RETURN(crypto::RandomOrder order,
                       crypto::RandomOrder::Create(l, options.order_seed));
  bool blemish = false;
  buffer.Clear();
  std::uint64_t seg = 0;
  std::uint64_t in_segment = 0;
  {
    PPJ_SPAN("main");
    for (std::uint64_t visited = 0; visited < l; ++visited) {
      const std::uint64_t idx = order.Next();
      PPJ_ASSIGN_OR_RETURN(ITupleReader::Fetched fetched, reader.Fetch(idx));
      const bool hit =
          fetched.real && join.predicate->Satisfy(*fetched.components);
      copro.NoteMatchEvaluation(hit);
      if (hit) {
        if (buffer.full()) {
          blemish = true;  // segment overflow: the epsilon-probability event
        } else {
          PPJ_RETURN_NOT_OK(buffer.Push(relation::wire::MakeReal(
              ITupleReader::JoinedPayload(*fetched.components))));
        }
      }
      ++in_segment;
      if (in_segment == n_star || visited + 1 == l) {
        // Fixed-size flush: exactly M oTuples, decoy padded, landing on the
        // host in one scatter. Nothing reads the staging region before the
        // final filter pass, which starts after every segment has flushed.
        PPJ_ASSIGN_OR_RETURN(
            sim::WriteRun flush,
            copro.PutSealedRange(staging, seg * m, m, join.output_key));
        for (std::uint64_t k = 0; k < m; ++k) {
          PPJ_RETURN_NOT_OK(
              flush.Append(k < buffer.size() ? buffer.At(k) : decoy));
        }
        PPJ_RETURN_NOT_OK(flush.Flush());
        buffer.Clear();
        in_segment = 0;
        ++seg;
      }
    }
  }
  out.blemish = blemish;

  if (blemish) {
    // Salvage action (Section 5.3.3): re-output everything with an
    // Algorithm 5 sweep. Correct, but the extra scans' existence depends on
    // the data — the privacy loss the epsilon bound budgets for.
    PPJ_SPAN("salvage");
    buffer_opt.reset();  // hand the memory back for Algorithm 5's buffer
    PPJ_ASSIGN_OR_RETURN(Ch5Outcome salvage, RunAlgorithm5(copro, join));
    salvage.blemish = true;
    salvage.n_star = n_star;
    salvage.staging_slots = staging_slots;
    return salvage;
  }

  // --- Final pass: oblivious decoy filtering, ceil(L/n*) M -> S. ---
  const std::uint64_t delta =
      options.filter_delta > 0
          ? options.filter_delta
          : analysis::OptimalSwapInteger(staging_slots, s);
  out.output_region = copro.host()->CreateRegion("alg6-output", slot, s);
  PPJ_ASSIGN_OR_RETURN(oblivious::FilterStats stats,
                       oblivious::WindowedObliviousFilter(
                           copro, staging, staging_slots, s, delta,
                           *join.output_key, out.output_region));
  (void)stats;
  PPJ_SPAN("output");
  for (std::uint64_t k = 0; k < s; ++k) {
    PPJ_RETURN_NOT_OK(copro.DiskWrite(out.output_region, k));
  }
  return out;
}

}  // namespace ppj::core
