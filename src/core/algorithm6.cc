#include "core/algorithm6.h"

#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"

// Algorithm 6 as a thin plan builder: the body lives in the operator layer
// (plan/ops_ch5.cc — ScreenOp + EpsilonPartitionOp + SalvageOp +
// WindowedFilterOp + EmitOutputOp; the salvage operator re-enters
// RunAlgorithm5 exactly like the former monolithic driver).

namespace ppj::core {

Result<Ch5Outcome> RunAlgorithm6(sim::Coprocessor& copro,
                                 const MultiwayJoin& join,
                                 const Algorithm6Options& options) {
  plan::JoinPlanOptions popts;
  popts.epsilon = options.epsilon;
  popts.order_seed = options.order_seed;
  popts.forced_segment_size = options.forced_segment_size;
  popts.filter_delta = options.filter_delta;
  PPJ_ASSIGN_OR_RETURN(
      plan::PhysicalPlan physical,
      plan::BuildJoinPlan(Algorithm::kAlgorithm6, nullptr, &join, popts));
  plan::PlanContext ctx(nullptr, &join);
  PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
  return plan::TakeCh5Outcome(ctx);
}

}  // namespace ppj::core
