#ifndef PPJ_CORE_ALGORITHM3_H_
#define PPJ_CORE_ALGORITHM3_H_

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"

namespace ppj::core {

struct Algorithm3Options {
  /// N — maximum matches per A tuple; 0 = compute via the safe scan.
  std::uint64_t n = 0;
  /// Skip the oblivious sort of B when the provider shipped it pre-sorted
  /// on the join attribute (Section 4.5.2's cost note).
  bool provider_sorted = false;
};

/// Algorithm 3 (Section 4.5.2) — the safe sort-based *equijoin*. After B is
/// obliviously sorted on the join attribute, the matches for any A tuple
/// occupy at most N consecutive positions of B, so a circular scratch of
/// only N slots suffices: for the i-th B tuple, T reads scratch[i mod N]
/// and writes back either a re-encryption of what it read or the joined
/// tuple. Real results are never overwritten because consecutive match
/// positions map to distinct slots mod N.
///
/// Requires an equality predicate (EqualityPredicate); B must be sealed
/// into a power-of-two padded region so the bitonic sort applies.
///
/// NOTE: sorts B's region in place (re-sealed under B's own key); callers
/// that need B's original order must re-seal.
///
/// Transfer cost: |A| + N|A| + |B| log2(|B|)^2 + 3|A||B|.
Result<Ch4Outcome> RunAlgorithm3(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm3Options& options = {});

}  // namespace ppj::core

#endif  // PPJ_CORE_ALGORITHM3_H_
