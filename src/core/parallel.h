#ifndef PPJ_CORE_PARALLEL_H_
#define PPJ_CORE_PARALLEL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/join_result.h"
#include "core/join_spec.h"
#include "oblivious/bitonic_sort.h"
#include "sim/coprocessor.h"

namespace ppj::core {

/// Result of a multi-coprocessor execution (Sections 4.4.4 and 5.3.5). The
/// simulation runs one coprocessor per thread against the shared host; the
/// speedup claim is evaluated on the transfer counters, whose per-device
/// maximum is the parallel makespan in the paper's cost metric.
struct ParallelOutcome {
  sim::RegionId output_region = 0;
  std::uint64_t result_size = 0;
  std::vector<sim::TransferMetrics> per_coprocessor;
  /// max over devices of (gets + puts): the parallel completion time.
  std::uint64_t makespan_transfers = 0;
  /// sum over devices: total work, for efficiency = total / (P * makespan).
  std::uint64_t total_transfers = 0;
};

/// Parallel Algorithm 5 (Section 5.3.5): a coordinator screening pass
/// computes S, then P workers each emit their rank range of blk = ceil(S/P)
/// results via Algorithm 5's scan-and-flush loop restricted to their range.
/// Linear speedup: each worker reads ceil(blk/M) L iTuples.
Result<ParallelOutcome> RunParallelAlgorithm5(
    sim::HostStore* host, const MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& base_options);

/// Parallel Algorithm 4 (Section 5.3.5): the L iTuples are partitioned into
/// P contiguous ranges, each worker emits one oTuple per assigned iTuple
/// into the shared staging region; the decoy filter then runs as a parallel
/// bitonic sweep (compare-exchanges of each stage split across devices).
Result<ParallelOutcome> RunParallelAlgorithm4(
    sim::HostStore* host, const MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& base_options);

/// Parallel Algorithm 2 (Section 4.4.4): Chapter 4's general join is
/// "easy to parallelize with a linear speed-up" — the outer loop over A is
/// partitioned across devices, each producing the N-padded output blocks
/// for its A range into the shared output region. Returns the Chapter 4
/// outcome shape (output_slots = |A| * gamma * blk).
struct ParallelCh4Outcome {
  sim::RegionId output_region = 0;
  std::uint64_t output_slots = 0;
  std::uint64_t n_used = 0;
  std::vector<sim::TransferMetrics> per_coprocessor;
  std::uint64_t makespan_transfers = 0;
};
Result<ParallelCh4Outcome> RunParallelAlgorithm2(
    sim::HostStore* host, const TwoWayJoin& join, std::uint64_t n,
    unsigned parallelism, const sim::CoprocessorOptions& base_options);

/// Parallel Algorithm 6 (Section 5.3.5): all coprocessors seed the same
/// maximal LFSR, so they agree on the random visiting order without
/// communicating; each worker owns a contiguous range of segments of that
/// order, buffers matches in its own memory and flushes M oTuples per
/// segment into its staging slice. The decoy filter then runs as a
/// parallel bitonic sweep. A blemish in any worker triggers the sequential
/// salvage (Algorithm 5) by the coordinator.
struct ParallelAlgorithm6Options {
  double epsilon = 1e-20;
  std::uint64_t order_seed = 0x5eed;
};
Result<ParallelOutcome> RunParallelAlgorithm6(
    sim::HostStore* host, const MultiwayJoin& join, unsigned parallelism,
    const sim::CoprocessorOptions& base_options,
    const ParallelAlgorithm6Options& options = {});

/// Parallel bitonic sort (Section 5.3.5): the fixed sorting network is
/// executed stage by stage, with the independent compare-exchanges of each
/// stage partitioned across the given coprocessors (threads join at stage
/// boundaries — the synchronization the paper's conclusions discuss).
Status ParallelObliviousSort(std::vector<sim::Coprocessor*>& copros,
                             sim::RegionId region, std::uint64_t n,
                             const crypto::Ocb& key,
                             const oblivious::SortKey& less);

}  // namespace ppj::core

#endif  // PPJ_CORE_PARALLEL_H_
