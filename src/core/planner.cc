#include "core/planner.h"

#include <limits>

#include "analysis/chapter4_costs.h"
#include "analysis/chapter5_costs.h"

namespace ppj::core {

Plan PlanJoin(const PlannerInput& input) {
  const double a = static_cast<double>(input.size_a);
  const double b = static_cast<double>(input.size_b);
  const std::uint64_t l = input.size_a * input.size_b;
  const std::uint64_t s = input.s > 0 ? input.s : l;  // worst case
  const std::uint64_t m = std::max<std::uint64_t>(input.m, 1);

  Plan best;
  best.predicted_transfers = std::numeric_limits<double>::infinity();
  auto consider = [&](Algorithm alg, double cost,
                      const std::string& why) {
    if (cost < best.predicted_transfers) {
      best.algorithm = alg;
      best.predicted_transfers = cost;
      best.rationale = why;
    }
  };

  // Chapter 5 family: always admissible (arbitrary predicates, exact
  // output, no N assumption).
  consider(Algorithm::kAlgorithm4,
           analysis::CostAlgorithm4(l, s),
           "exact output, minimal memory (2 slots)");
  consider(Algorithm::kAlgorithm5,
           analysis::CostAlgorithm5(l, s, m),
           "exact output, no oblivious sort, needs M slots");
  if (input.epsilon > 0.0) {
    consider(Algorithm::kAlgorithm6,
             analysis::CostAlgorithm6(l, s, m, input.epsilon).total,
             "exact output, privacy level 1 - epsilon");
  }

  if (!input.exact_output_required) {
    // Chapter 4 family: output shaped N|A|, so N must be known or
    // computed via the safe preprocessing scan (cost |A| + |A||B|).
    const double n_scan = input.n > 0 ? 0.0 : a + a * b;
    const double n = static_cast<double>(
        input.n > 0 ? input.n : std::max<std::uint64_t>(1, s / input.size_a));
    consider(Algorithm::kAlgorithm1,
             n_scan + analysis::CostAlgorithm1(a, b, n),
             "N-padded output, tiny memory, rolling oblivious scratch");
    consider(Algorithm::kAlgorithm1Variant,
             n_scan + analysis::CostAlgorithm1Variant(a, b),
             "N-padded output, one full-size oblivious sort per A tuple");
    consider(Algorithm::kAlgorithm2,
             n_scan + analysis::CostAlgorithm2(a, b, n,
                                               static_cast<double>(m)),
             "N-padded output, gamma passes, no oblivious sort");
    if (input.equality_predicate) {
      consider(Algorithm::kAlgorithm3,
               n_scan + analysis::CostAlgorithm3(a, b, n),
               "equijoin specialization with sorted B and circular scratch");
    }
  }
  return best;
}

}  // namespace ppj::core
