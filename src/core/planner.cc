#include "core/planner.h"

#include <limits>

#include "analysis/chapter4_costs.h"
#include "analysis/chapter5_costs.h"
#include "analysis/optimizer.h"
#include "common/math.h"

namespace ppj::core {

namespace {

/// The planner sizes the cartesian product |A||B| in uint64; at paper-scale
/// extremes (each relation near 2^32) the product overflows and silently
/// wraps to a tiny cost, steering the planner to the most expensive
/// algorithm. Saturate instead: every cost model is monotone in L, so the
/// saturated value keeps the comparisons ordered correctly.
std::uint64_t SaturatingMul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t out = 0;
  if (__builtin_mul_overflow(a, b, &out)) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return out;
}

/// Workload parameters every cost model shares, derived once so PlanJoin
/// and DescribeAlgorithm price identically.
struct Derived {
  double a = 0;
  double b = 0;
  std::uint64_t l = 0;
  std::uint64_t s = 0;
  std::uint64_t m = 1;
  double n = 1;        ///< N used by the Chapter 4 family.
  double n_scan = 0;   ///< Preprocessing charge when N is unknown.
};

Derived DeriveParameters(const PlannerInput& input) {
  Derived d;
  d.a = static_cast<double>(input.size_a);
  d.b = static_cast<double>(input.size_b);
  d.l = SaturatingMul(input.size_a, input.size_b);
  d.s = input.s > 0 ? input.s : d.l;  // worst case
  d.m = std::max<std::uint64_t>(input.m, 1);
  d.n_scan = input.n > 0 ? 0.0 : d.a + d.a * d.b;
  const std::uint64_t s_per_a =
      input.size_a > 0 ? d.s / input.size_a : d.s;
  d.n = static_cast<double>(
      input.n > 0 ? input.n : std::max<std::uint64_t>(1, s_per_a));
  return d;
}

PlannedOp Leaf(std::string name, std::string formula, double transfers) {
  PlannedOp op;
  op.name = std::move(name);
  op.formula = std::move(formula);
  op.predicted_transfers = transfers;
  return op;
}

PlannedOp Node(std::string name, std::string formula,
               std::vector<PlannedOp> children) {
  PlannedOp op;
  op.name = std::move(name);
  op.formula = std::move(formula);
  op.children = std::move(children);
  for (const PlannedOp& child : op.children) {
    op.predicted_transfers += child.predicted_transfers;
  }
  return op;
}

PlannedOp ResolveNLeaf(const Derived& d) {
  return Leaf("resolve-n",
              "|A| + |A||B| preprocessing scan when N is unknown, else 0",
              d.n_scan);
}

PlannedOp Ch4OpNode(const char* op_name, const analysis::Ch4Terms& terms,
                    bool include_sort) {
  std::vector<PlannedOp> children;
  children.push_back(Leaf("mix", "input scan + scratch mixing traffic",
                          terms.mix));
  if (include_sort) {
    children.push_back(
        Leaf("sort", "oblivious bitonic-sort transfers", terms.sort));
  }
  children.push_back(
      Leaf("output", "N-padded result emission", terms.output));
  return Node(op_name, "per-phase attribution of the Section 4.6 cost",
              std::move(children));
}

/// Cost trees of the sharded Chapter 5 plans (plan/sharded.h): the
/// shard-local operators plus the `exchange` op whose cost is the channel
/// traffic in sealed slots. Per-scan terms are priced as the *makespan* —
/// the maximum any single shard transfers — so the totals are parallel
/// completion times and comparable across shard counts (the
/// bench_parallelism speedup gate divides exactly these). Leaf names match
/// the sharded op/span names, so `ppjctl explain --shards=N` joins against
/// measured telemetry node-for-node, like the serial trees.
PlannedOp DescribeSharded(Algorithm algorithm, const PlannerInput& input,
                          const Derived& d) {
  const AlgorithmInfo& info = GetAlgorithmInfo(algorithm);
  const double p = static_cast<double>(input.shards);
  const std::uint64_t pu = input.shards;
  const double ld = static_cast<double>(d.l);
  const double sd = static_cast<double>(d.s);
  std::vector<PlannedOp> ops;
  switch (algorithm) {
    case Algorithm::kAlgorithm4: {
      const std::uint64_t l_slice = CeilDiv(d.l, pu);
      ops.push_back(Leaf("shard-ituple-scan",
                         "2 ceil(L/P): each shard reads + stages its "
                         "iTuple window",
                         2.0 * static_cast<double>(l_slice)));
      ops.push_back(Leaf("exchange",
                         "L - ceil(L/P) gathered staging slots + P-1 "
                         "count envelopes",
                         static_cast<double>(d.l - l_slice) + (p - 1.0)));
      ops.push_back(Leaf("filter",
                         "windowed oblivious decoy filter on the lead "
                         "(Section 5.2.2)",
                         analysis::FilterCost(ld, sd)));
      ops.push_back(Leaf("output",
                         "host-side disk writes of the S result slots",
                         0.0));
      break;
    }
    case Algorithm::kAlgorithm5: {
      const std::uint64_t s_slice = CeilDiv(d.s, pu);
      ops.push_back(Leaf("shard-screen",
                         "L: the lead sizes the result, then broadcasts S",
                         ld));
      ops.push_back(Leaf(
          "shard-rank-emit",
          "ceil(ceil(S/P)/M) L scans + ceil(S/P) output per shard",
          static_cast<double>(CeilDiv(s_slice, d.m)) * ld +
              static_cast<double>(s_slice)));
      ops.push_back(Leaf("exchange",
                         "S - ceil(S/P) gathered output slots",
                         static_cast<double>(d.s - s_slice)));
      break;
    }
    case Algorithm::kAlgorithm6: {
      const double eps = input.epsilon > 0.0 ? input.epsilon : 1e-20;
      const std::uint64_t n_star =
          analysis::OptimalSegmentSize(d.l, d.s, d.m, eps);
      const std::uint64_t segments = CeilDiv(d.l, n_star);
      const std::uint64_t seg_slice = CeilDiv(segments, pu);
      ops.push_back(Leaf("shard-screen",
                         "L: the lead sizes the result, then broadcasts S",
                         ld));
      ops.push_back(Leaf(
          "shard-segment-emit",
          "ceil(L/P) random-order reads + ceil(segments/P) M flushes",
          static_cast<double>(CeilDiv(d.l, pu)) +
              static_cast<double>(seg_slice * d.m)));
      ops.push_back(Leaf(
          "exchange",
          "(segments - ceil(segments/P)) M gathered slots + P-1 blemish "
          "envelopes",
          static_cast<double>((segments - seg_slice) * d.m) + (p - 1.0)));
      ops.push_back(Leaf("salvage",
                         "re-run as Algorithm 5 only on a blemished pass",
                         0.0));
      ops.push_back(Leaf(
          "filter",
          "windowed oblivious decoy filter on the lead (Section 5.2.2)",
          analysis::FilterCost(static_cast<double>(segments * d.m), sd)));
      ops.push_back(Leaf("output",
                         "host-side disk writes of the S result slots",
                         0.0));
      break;
    }
    default:
      ops.push_back(Leaf("unsupported",
                         "no sharded plan for this algorithm", 0.0));
      break;
  }
  return Node(std::string(info.root_span), std::string(info.summary),
              std::move(ops));
}

}  // namespace

PlannedOp DescribeAlgorithm(Algorithm algorithm, const PlannerInput& input) {
  const Derived d = DeriveParameters(input);
  const AlgorithmInfo& info = GetAlgorithmInfo(algorithm);
  if (input.shards > 1 && !IsChapter4(algorithm)) {
    return DescribeSharded(algorithm, input, d);
  }
  const double ld = static_cast<double>(d.l);
  const double sd = static_cast<double>(d.s);
  std::vector<PlannedOp> ops;
  switch (algorithm) {
    case Algorithm::kAlgorithm1: {
      ops.push_back(ResolveNLeaf(d));
      ops.push_back(Ch4OpNode("scratch-rotate",
                              analysis::TermsAlgorithm1(d.a, d.b, d.n),
                              /*include_sort=*/true));
      break;
    }
    case Algorithm::kAlgorithm1Variant: {
      ops.push_back(ResolveNLeaf(d));
      ops.push_back(Ch4OpNode("scratch-rotate",
                              analysis::TermsAlgorithm1Variant(d.a, d.b),
                              /*include_sort=*/true));
      break;
    }
    case Algorithm::kAlgorithm2: {
      ops.push_back(ResolveNLeaf(d));
      ops.push_back(Ch4OpNode(
          "multi-pass-scan",
          analysis::TermsAlgorithm2(d.a, d.b, d.n,
                                    static_cast<double>(d.m)),
          /*include_sort=*/false));
      break;
    }
    case Algorithm::kAlgorithm3: {
      const analysis::Ch4Terms terms =
          analysis::TermsAlgorithm3(d.a, d.b, d.n);
      ops.push_back(ResolveNLeaf(d));
      ops.push_back(Leaf("sort-b", "|B| log2(|B|)^2 oblivious pre-sort of B",
                         terms.sort));
      ops.push_back(Ch4OpNode("scratch-rotate", terms,
                              /*include_sort=*/false));
      break;
    }
    case Algorithm::kAlgorithm4: {
      ops.push_back(Leaf("ituple-scan",
                         "2L: read every iTuple, write one oTuple each",
                         2.0 * ld));
      ops.push_back(Leaf("filter",
                         "windowed oblivious decoy filter (Section 5.2.2)",
                         analysis::FilterCost(ld, sd)));
      ops.push_back(Leaf("output",
                         "host-side disk writes of the S result slots",
                         0.0));
      break;
    }
    case Algorithm::kAlgorithm5: {
      ops.push_back(Node(
          "buffered-emit", "S + ceil(S/M) L repeated scans",
          {Leaf("scan", "ceil(S/M) full passes over the iTuples",
                static_cast<double>(CeilDiv(d.s, d.m)) * ld),
           Leaf("output", "S result tuples flushed at scan boundaries",
                sd)}));
      break;
    }
    case Algorithm::kAlgorithm6: {
      const analysis::Alg6Cost c =
          analysis::CostAlgorithm6(d.l, d.s, d.m, input.epsilon);
      // The partition term is whatever the closed form charges beyond the
      // screening pass and the final filter; this residual stays correct
      // across all three regimes of CostAlgorithm6 (M >= S single pass,
      // epsilon = 0 collapse to Algorithm 4, and the general case).
      const double partition = c.total - ld - c.filter;
      ops.push_back(Leaf("screen",
                         "L: screening pass sizing the result (S)", ld));
      ops.push_back(Leaf(
          "epsilon-partition",
          "processing pass + ceil(L/n*) M staged oTuples (Eqn 5.7)",
          partition));
      ops.push_back(Leaf("salvage",
                         "re-run as Algorithm 5 only on a blemished pass",
                         0.0));
      ops.push_back(Leaf("filter",
                         "windowed oblivious decoy filter (Section 5.2.2)",
                         c.filter));
      ops.push_back(Leaf("output",
                         "host-side disk writes of the S result slots",
                         0.0));
      break;
    }
  }
  return Node(std::string(info.root_span), std::string(info.summary),
              std::move(ops));
}

Plan PlanJoin(const PlannerInput& input) {
  const Derived d = DeriveParameters(input);
  const double a = d.a;
  const double b = d.b;
  const std::uint64_t l = d.l;
  const std::uint64_t s = d.s;
  const std::uint64_t m = d.m;

  Plan best;
  best.predicted_transfers = std::numeric_limits<double>::infinity();
  auto consider = [&](Algorithm alg, double cost,
                      const std::string& why) {
    if (cost < best.predicted_transfers) {
      best.algorithm = alg;
      best.predicted_transfers = cost;
      best.rationale = why;
    }
  };

  if (input.shards > 1) {
    // Sharded execution: Chapter 5 family only (the Chapter 4 plans have
    // no shard-local variants), priced by the makespan-based sharded cost
    // trees so the comparison reflects parallel completion time.
    consider(Algorithm::kAlgorithm4,
             DescribeSharded(Algorithm::kAlgorithm4, input, d)
                 .predicted_transfers,
             "exact output, sharded scan, lead-side filter");
    consider(Algorithm::kAlgorithm5,
             DescribeSharded(Algorithm::kAlgorithm5, input, d)
                 .predicted_transfers,
             "exact output, rank-partitioned sharded scans");
    if (input.epsilon > 0.0) {
      consider(Algorithm::kAlgorithm6,
               DescribeSharded(Algorithm::kAlgorithm6, input, d)
                   .predicted_transfers,
               "privacy level 1 - epsilon, segment-partitioned shards");
    }
    best.root = DescribeAlgorithm(best.algorithm, input);
    return best;
  }

  // Chapter 5 family: always admissible (arbitrary predicates, exact
  // output, no N assumption).
  consider(Algorithm::kAlgorithm4,
           analysis::CostAlgorithm4(l, s),
           "exact output, minimal memory (2 slots)");
  consider(Algorithm::kAlgorithm5,
           analysis::CostAlgorithm5(l, s, m),
           "exact output, no oblivious sort, needs M slots");
  if (input.epsilon > 0.0) {
    consider(Algorithm::kAlgorithm6,
             analysis::CostAlgorithm6(l, s, m, input.epsilon).total,
             "exact output, privacy level 1 - epsilon");
  }

  if (!input.exact_output_required) {
    // Chapter 4 family: output shaped N|A|, so N must be known or
    // computed via the safe preprocessing scan (cost |A| + |A||B|).
    const double n_scan = d.n_scan;
    const double n = d.n;
    consider(Algorithm::kAlgorithm1,
             n_scan + analysis::CostAlgorithm1(a, b, n),
             "N-padded output, tiny memory, rolling oblivious scratch");
    consider(Algorithm::kAlgorithm1Variant,
             n_scan + analysis::CostAlgorithm1Variant(a, b),
             "N-padded output, one full-size oblivious sort per A tuple");
    consider(Algorithm::kAlgorithm2,
             n_scan + analysis::CostAlgorithm2(a, b, n,
                                               static_cast<double>(m)),
             "N-padded output, gamma passes, no oblivious sort");
    if (input.equality_predicate) {
      consider(Algorithm::kAlgorithm3,
               n_scan + analysis::CostAlgorithm3(a, b, n),
               "equijoin specialization with sorted B and circular scratch");
    }
  }
  best.root = DescribeAlgorithm(best.algorithm, input);
  return best;
}

}  // namespace ppj::core
