#include "core/algorithm3.h"

#include <algorithm>
#include <span>

#include "common/math.h"
#include "common/telemetry.h"
#include "core/host_retry.h"
#include "oblivious/bitonic_sort.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

Result<Ch4Outcome> RunAlgorithm3(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm3Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (!join.predicate->is_equality()) {
    return Status::InvalidArgument(
        "Algorithm 3 is the sort-based equijoin; it needs an "
        "EqualityPredicate (use Algorithm 1/2 for general predicates)");
  }
  const auto* eq =
      dynamic_cast<const relation::EqualityPredicate*>(join.predicate);
  if (eq == nullptr) {
    return Status::InvalidArgument(
        "equality predicate must be an EqualityPredicate instance");
  }
  if (!IsPowerOfTwo(join.b->padded_size())) {
    return Status::InvalidArgument(
        "Algorithm 3 needs B sealed into a power-of-two padded region for "
        "the oblivious sort");
  }

  PPJ_DEVICE_SPAN(&copro, "algorithm3");
  std::uint64_t n = options.n;
  if (n == 0) {
    PPJ_ASSIGN_OR_RETURN(n, ComputeMaxMatches(copro, join));
  }
  n = std::max<std::uint64_t>(n, 1);

  // Oblivious sort of B on the join attribute (padding last). In-place:
  // every compare-exchange re-seals under B's key with fresh nonces.
  if (!options.provider_sorted) {
    PPJ_SPAN("sort-b");
    PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
        copro, join.b->region(), join.b->padded_size(), *join.b->key(),
        oblivious::ColumnLess(join.b->schema(), eq->col_b())));
  }

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId scratch =
      copro.host()->CreateRegion("alg3-scratch", slot, n);
  const sim::RegionId output =
      copro.host()->CreateRegion("alg3-output", slot, size_a * n);

  // Windowed input scans and chunked read/write windows over the rolling
  // scratch ring. A chunk covers [p, p+c) with c <= n - p, so it never
  // crosses the ring's wrap: within a chunk each slot is read exactly once
  // and only then rewritten, which makes the pre-chunk staged copies the
  // values the scalar loop would have read. Per slot the accounting — Get B,
  // Get scratch, Put scratch — is scalar-identical and in scalar order; the
  // deferred writes are flushed before the next chunk restages.
  BatchedScan ascan(&copro, join.a);
  BatchedScan bscan(&copro, join.b);
  BatchedSealWriter reset(&copro, scratch, join.output_key);
  const std::uint64_t limit =
      copro.BatchLimit(std::max<std::uint64_t>(copro.memory_tuples(), 1));
  relation::Tuple a, b;
  bool a_real = false, b_real = false;
  std::vector<std::uint8_t> t;

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    PPJ_RETURN_NOT_OK(ascan.FetchInto(ai, &a, &a_real));
    {
      PPJ_SPAN("reset");
      for (std::uint64_t k = 0; k < n; ++k) {
        PPJ_RETURN_NOT_OK(reset.Put(k, decoy));
      }
      PPJ_RETURN_NOT_OK(reset.Flush());
    }
    {
      PPJ_SPAN("mix");
      std::uint64_t i = 0;
      while (i < size_b) {
        const std::uint64_t p = i % n;
        const std::uint64_t c =
            std::min({limit, n - p, size_b - i});
        PPJ_ASSIGN_OR_RETURN(
            sim::ReadRun in,
            copro.GetOpenRange(scratch, p, c, join.output_key));
        PPJ_RETURN_NOT_OK(in.PrefetchOpen());
        PPJ_ASSIGN_OR_RETURN(
            sim::WriteRun out_run,
            copro.PutSealedRange(scratch, p, c, join.output_key));
        for (std::uint64_t e = 0; e < c; ++e, ++i) {
          PPJ_RETURN_NOT_OK(bscan.FetchInto(i, &b, &b_real));
          PPJ_ASSIGN_OR_RETURN(std::span<const std::uint8_t> s, in.NextOpen());
          t.assign(s.begin(), s.end());
          const bool hit = a_real && b_real && join.predicate->Match(a, b);
          copro.NoteMatchEvaluation(hit);
          if (hit) {
            std::vector<std::uint8_t> bytes = a.Serialize();
            const std::vector<std::uint8_t> bb = b.Serialize();
            bytes.insert(bytes.end(), bb.begin(), bb.end());
            PPJ_RETURN_NOT_OK(out_run.Append(relation::wire::MakeReal(bytes)));
          } else {
            // Write back what was read, re-encrypted: indistinguishable from
            // a fresh result to the host.
            PPJ_RETURN_NOT_OK(out_run.Append(t));
          }
        }
        PPJ_RETURN_NOT_OK(out_run.Flush());
      }
    }
    PPJ_SPAN("output");
    // H persists the N scratch slots for this A tuple, retrying its own
    // transient I/O (bounded, untraced) like any storage client.
    for (std::uint64_t k = 0; k < n; ++k) {
      PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> sealed,
                           ReadSlotWithRetry(*copro.host(), scratch, k));
      PPJ_RETURN_NOT_OK(
          WriteSlotWithRetry(*copro.host(), output, ai * n + k, sealed));
      PPJ_RETURN_NOT_OK(copro.DiskWrite(output, ai * n + k));
    }
  }

  return Ch4Outcome{output, size_a * n, n};
}

}  // namespace ppj::core
