#include "core/algorithm3.h"

#include "common/math.h"
#include "oblivious/bitonic_sort.h"
#include "relation/encrypted_relation.h"

namespace ppj::core {

Result<Ch4Outcome> RunAlgorithm3(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm3Options& options) {
  PPJ_RETURN_NOT_OK(join.Validate());
  if (!join.predicate->is_equality()) {
    return Status::InvalidArgument(
        "Algorithm 3 is the sort-based equijoin; it needs an "
        "EqualityPredicate (use Algorithm 1/2 for general predicates)");
  }
  const auto* eq =
      dynamic_cast<const relation::EqualityPredicate*>(join.predicate);
  if (eq == nullptr) {
    return Status::InvalidArgument(
        "equality predicate must be an EqualityPredicate instance");
  }
  if (!IsPowerOfTwo(join.b->padded_size())) {
    return Status::InvalidArgument(
        "Algorithm 3 needs B sealed into a power-of-two padded region for "
        "the oblivious sort");
  }

  std::uint64_t n = options.n;
  if (n == 0) {
    PPJ_ASSIGN_OR_RETURN(n, ComputeMaxMatches(copro, join));
  }
  n = std::max<std::uint64_t>(n, 1);

  // Oblivious sort of B on the join attribute (padding last). In-place:
  // every compare-exchange re-seals under B's key with fresh nonces.
  if (!options.provider_sorted) {
    PPJ_RETURN_NOT_OK(oblivious::ObliviousSort(
        copro, join.b->region(), join.b->padded_size(), *join.b->key(),
        oblivious::ColumnLess(join.b->schema(), eq->col_b())));
  }

  const std::size_t payload = join.JoinedPayloadSize();
  const std::size_t slot = sim::Coprocessor::SealedSize(
      relation::wire::PlainSize(payload));
  const std::vector<std::uint8_t> decoy = relation::wire::MakeDecoy(payload);

  const std::uint64_t size_a = join.a->size();
  const std::uint64_t size_b = join.b->padded_size();
  const sim::RegionId scratch =
      copro.host()->CreateRegion("alg3-scratch", slot, n);
  const sim::RegionId output =
      copro.host()->CreateRegion("alg3-output", slot, size_a * n);

  for (std::uint64_t ai = 0; ai < size_a; ++ai) {
    PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple a,
                         join.a->Fetch(copro, ai));
    for (std::uint64_t k = 0; k < n; ++k) {
      PPJ_RETURN_NOT_OK(copro.PutSealed(scratch, k, decoy, *join.output_key));
    }
    std::uint64_t i = 0;
    for (std::uint64_t bi = 0; bi < size_b; ++bi) {
      PPJ_ASSIGN_OR_RETURN(relation::EncryptedRelation::FetchedTuple b,
                           join.b->Fetch(copro, bi));
      PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> t,
                           copro.GetOpen(scratch, i % n, *join.output_key));
      const bool hit =
          a.real && b.real && join.predicate->Match(a.tuple, b.tuple);
      copro.NoteMatchEvaluation(hit);
      if (hit) {
        std::vector<std::uint8_t> bytes = a.tuple.Serialize();
        const std::vector<std::uint8_t> bb = b.tuple.Serialize();
        bytes.insert(bytes.end(), bb.begin(), bb.end());
        PPJ_RETURN_NOT_OK(copro.PutSealed(scratch, i % n,
                                          relation::wire::MakeReal(bytes),
                                          *join.output_key));
      } else {
        // Write back what was read, re-encrypted: indistinguishable from a
        // fresh result to the host.
        PPJ_RETURN_NOT_OK(copro.PutSealed(scratch, i % n, t,
                                          *join.output_key));
      }
      ++i;
    }
    // H persists the N scratch slots for this A tuple.
    for (std::uint64_t k = 0; k < n; ++k) {
      PPJ_ASSIGN_OR_RETURN(std::vector<std::uint8_t> sealed,
                           copro.host()->ReadSlot(scratch, k));
      PPJ_RETURN_NOT_OK(copro.host()->WriteSlot(output, ai * n + k, sealed));
      PPJ_RETURN_NOT_OK(copro.DiskWrite(output, ai * n + k));
    }
  }

  return Ch4Outcome{output, size_a * n, n};
}

}  // namespace ppj::core
