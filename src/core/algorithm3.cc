#include "core/algorithm3.h"

#include "plan/builder.h"
#include "plan/context.h"
#include "plan/executor.h"

// Algorithm 3 as a thin plan builder: the body lives in the operator layer
// (plan/ops_ch4.cc — ResolveNOp + ObliviousSortOp("sort-b") +
// ScratchRotateOp in kRing mode). The equijoin/power-of-two validation
// happens at plan-build time, before any device span opens.

namespace ppj::core {

Result<Ch4Outcome> RunAlgorithm3(sim::Coprocessor& copro,
                                 const TwoWayJoin& join,
                                 const Algorithm3Options& options) {
  plan::JoinPlanOptions popts;
  popts.n = options.n;
  popts.provider_sorted = options.provider_sorted;
  PPJ_ASSIGN_OR_RETURN(
      plan::PhysicalPlan physical,
      plan::BuildJoinPlan(Algorithm::kAlgorithm3, &join, nullptr, popts));
  plan::PlanContext ctx(&join, nullptr);
  PPJ_RETURN_NOT_OK(plan::PlanExecutor().Run(copro, physical, ctx));
  return plan::TakeCh4Outcome(ctx);
}

}  // namespace ppj::core
