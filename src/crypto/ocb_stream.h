#ifndef PPJ_CRYPTO_OCB_STREAM_H_
#define PPJ_CRYPTO_OCB_STREAM_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "crypto/aes128.h"

namespace ppj::crypto {

/// Streaming OCB as the paper actually uses it for relation transfer
/// (Section 3.3.3): an entire relation is one message; block i is
/// encrypted with offset Z[i] derived from the nonce, a running checksum
/// accumulates the plaintexts, and a single tag authenticates the whole
/// stream. Because every block's offset encodes its sequence position,
/// truncation, reordering, and splicing of the stream are all caught by
/// the final tag — the property our per-slot position-bound nonces
/// emulate for random-access regions.
///
/// Encryptor and decryptor process one 16-byte block per call so a
/// provider can pipeline sealing with network transfer, exactly like the
/// incremental description in Section 3.3.3 (Z[0] = E_k(I xor E_k(0)),
/// Z[i] = f(Z[i-1], i)).
class OcbStreamEncryptor {
 public:
  OcbStreamEncryptor(const Block& key, const Block& nonce);

  /// Encrypts the next plaintext block of the stream.
  Block NextBlock(const Block& plaintext);

  /// Encrypts the next `nblocks` 16-byte blocks from `in` to `out` in lane
  /// groups through the pipelined multi-block AES kernels. Byte-identical to
  /// nblocks sequential NextBlock calls. `in`/`out` equal or non-overlapping.
  void NextBlocks(const std::uint8_t* in, std::uint8_t* out,
                  std::size_t nblocks);

  /// Finalizes the stream: returns the authentication tag over everything
  /// encrypted so far. The encryptor must not be used afterwards.
  Block Finalize();

  std::uint64_t blocks_processed() const { return index_; }

 private:
  Aes128 aes_;
  Block offset_;
  Block checksum_;
  Block l_star_;
  Block l_dollar_;
  std::vector<Block> l_;
  std::uint64_t index_ = 0;
  bool finalized_ = false;
};

/// Decrypting side; Verify() must be called after the last block and
/// returns kTampered when the stream was modified in any way (including
/// block reorderings that per-block MACs would miss).
class OcbStreamDecryptor {
 public:
  OcbStreamDecryptor(const Block& key, const Block& nonce);

  /// Decrypts the next ciphertext block of the stream.
  Block NextBlock(const Block& ciphertext);

  /// Multi-block counterpart of NextBlock; same contract as the encryptor's
  /// NextBlocks.
  void NextBlocks(const std::uint8_t* in, std::uint8_t* out,
                  std::size_t nblocks);

  /// Checks the received tag against the processed stream.
  Status Verify(const Block& tag);

  std::uint64_t blocks_processed() const { return index_; }

 private:
  Aes128 aes_;
  Block offset_;
  Block checksum_;
  Block l_star_;
  Block l_dollar_;
  std::vector<Block> l_;
  std::uint64_t index_ = 0;
};

/// Convenience wrappers: seal / open a whole multi-block buffer (size must
/// be a multiple of 16) as one stream.
std::vector<std::uint8_t> SealStream(const Block& key, const Block& nonce,
                                     const std::vector<std::uint8_t>& data);
Result<std::vector<std::uint8_t>> OpenStream(
    const Block& key, const Block& nonce,
    const std::vector<std::uint8_t>& sealed);

}  // namespace ppj::crypto

#endif  // PPJ_CRYPTO_OCB_STREAM_H_
