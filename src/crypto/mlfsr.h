#ifndef PPJ_CRYPTO_MLFSR_H_
#define PPJ_CRYPTO_MLFSR_H_

#include <cstdint>

#include "common/result.h"
#include "common/status.h"

namespace ppj::crypto {

/// Maximal-length Linear Feedback Shift Register (Section 5.2.3).
///
/// An MLFSR with l internal state bits and a primitive feedback polynomial
/// cycles through every value in {1, ..., 2^l - 1} exactly once before
/// repeating. Algorithm 6 uses this to visit the L elements of the cartesian
/// space D = X_1 x ... x X_J in a pseudo-random order *without materializing
/// a permutation* — the coprocessor has nowhere near enough memory to store
/// one. Values outside the target index range are simply skipped.
class Mlfsr {
 public:
  /// Creates a register with `bits` state bits (2 <= bits <= 63) seeded with
  /// a nonzero state. Seeds are reduced mod 2^bits; a zero reduction is
  /// mapped to 1 (the all-zero state is a fixed point and must be avoided).
  static Result<Mlfsr> Create(unsigned bits, std::uint64_t seed);

  /// Smallest register width whose period 2^l - 1 covers `count` values.
  static unsigned BitsForCount(std::uint64_t count);

  /// Advances the register and returns the next state in {1, ..., 2^l - 1}.
  std::uint64_t Next();

  /// Full period of this register: 2^bits - 1.
  std::uint64_t period() const { return (std::uint64_t{1} << bits_) - 1; }

  unsigned bits() const { return bits_; }

 private:
  Mlfsr(unsigned bits, std::uint64_t taps, std::uint64_t state)
      : bits_(bits), taps_(taps), state_(state) {}

  unsigned bits_;
  std::uint64_t taps_;   // Feedback tap mask of a primitive polynomial.
  std::uint64_t state_;
};

/// Streams the indices {0, ..., count-1} in the pseudo-random order induced
/// by an MLFSR, skipping out-of-range register values. This is the iteration
/// order Algorithm 6 reads iTuples in.
class RandomOrder {
 public:
  static Result<RandomOrder> Create(std::uint64_t count, std::uint64_t seed);

  /// Next index in [0, count); valid exactly `count` times per cycle.
  std::uint64_t Next();

  std::uint64_t count() const { return count_; }

 private:
  RandomOrder(Mlfsr reg, std::uint64_t count)
      : reg_(reg), count_(count) {}

  Mlfsr reg_;
  std::uint64_t count_;
};

}  // namespace ppj::crypto

#endif  // PPJ_CRYPTO_MLFSR_H_
