#ifndef PPJ_CRYPTO_KEY_H_
#define PPJ_CRYPTO_KEY_H_

#include <cstdint>
#include <string>

#include "crypto/aes128.h"

namespace ppj::crypto {

/// Derives a 128-bit key from a seed and a domain-separation label. In the
/// real system each party establishes a fresh symmetric key with the secure
/// coprocessor after outbound authentication (Section 3.3.3); the simulation
/// derives keys deterministically so test runs are reproducible.
Block DeriveKey(std::uint64_t seed, const std::string& label);

/// Hex rendering for logs and error messages.
std::string BlockToHex(const Block& block);

}  // namespace ppj::crypto

#endif  // PPJ_CRYPTO_KEY_H_
