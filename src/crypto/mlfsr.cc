#include "crypto/mlfsr.h"

namespace ppj::crypto {

namespace {

// Galois-form tap masks of maximal-length LFSRs, one per register width.
// The tap positions follow the Xilinx XAPP 052 table of maximal LFSR taps;
// a tap set {t_1, ..., t_k} (1-indexed, including the width itself) maps to
// the mask sum(1 << (t_i - 1)) applied after a right shift whenever the
// shifted-out bit was 1. Maximality of widths up to 24 is verified
// exhaustively by the unit tests; wider entries come from the same
// published table.
constexpr std::uint64_t kTaps[64] = {
    0, 0,
    0x3,                  // 2: taps 2,1
    0x6,                  // 3: taps 3,2
    0xC,                  // 4: taps 4,3
    0x14,                 // 5: taps 5,3
    0x30,                 // 6: taps 6,5
    0x60,                 // 7: taps 7,6
    0xB8,                 // 8: taps 8,6,5,4
    0x110,                // 9: taps 9,5
    0x240,                // 10: taps 10,7
    0x500,                // 11: taps 11,9
    0x829,                // 12: taps 12,6,4,1
    0x100D,               // 13: taps 13,4,3,1
    0x2015,               // 14: taps 14,5,3,1
    0x6000,               // 15: taps 15,14
    0xD008,               // 16: taps 16,15,13,4
    0x12000,              // 17: taps 17,14
    0x20400,              // 18: taps 18,11
    0x40023,              // 19: taps 19,6,2,1
    0x90000,              // 20: taps 20,17
    0x140000,             // 21: taps 21,19
    0x300000,             // 22: taps 22,21
    0x420000,             // 23: taps 23,18
    0xE10000,             // 24: taps 24,23,22,17
    0x1200000,            // 25: taps 25,22
    0x2000023,            // 26: taps 26,6,2,1
    0x4000013,            // 27: taps 27,5,2,1
    0x9000000,            // 28: taps 28,25
    0x14000000,           // 29: taps 29,27
    0x20000029,           // 30: taps 30,6,4,1
    0x48000000,           // 31: taps 31,28
    0x80200003,           // 32: taps 32,22,2,1
    0x100080000,          // 33: taps 33,20
    0x204000003,          // 34: taps 34,27,2,1
    0x500000000,          // 35: taps 35,33
    0x801000000,          // 36: taps 36,25
    0x100000001F,         // 37: taps 37,5,4,3,2,1
    0x2000000031,         // 38: taps 38,6,5,1
    0x4400000000,         // 39: taps 39,35
    0xA000140000,         // 40: taps 40,38,21,19
    0x12000000000,        // 41: taps 41,38
    0x300000C0000,        // 42: taps 42,41,20,19
    0x63000000000,        // 43: taps 43,42,38,37
    0xC0000030000,        // 44: taps 44,43,18,17
    0x1B0000000000,       // 45: taps 45,44,42,41
    0x300003000000,       // 46: taps 46,45,26,25
    0x420000000000,       // 47: taps 47,42
    0xC00000180000,       // 48: taps 48,47,21,20
    0x1008000000000,      // 49: taps 49,40
    0x3000000C00000,      // 50: taps 50,49,24,23
    0x6000C00000000,      // 51: taps 51,50,36,35
    0x9000000000000,      // 52: taps 52,49
    0x18003000000000,     // 53: taps 53,52,38,37
    0x30000000030000,     // 54: taps 54,53,18,17
    0x40000040000000,     // 55: taps 55,31
    0xC0000600000000,     // 56: taps 56,55,35,34
    0x102000000000000,    // 57: taps 57,50
    0x200004000000000,    // 58: taps 58,39
    0x600003000000000,    // 59: taps 59,58,38,37
    0xC00000000000000,    // 60: taps 60,59
    0x1800300000000000,   // 61: taps 61,60,46,45
    0x3000000000000030,   // 62: taps 62,61,6,5
    0x6000000000000000,   // 63: taps 63,62
};

}  // namespace

Result<Mlfsr> Mlfsr::Create(unsigned bits, std::uint64_t seed) {
  if (bits < 2 || bits > 63) {
    return Status::InvalidArgument("MLFSR width must be in [2, 63]");
  }
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::uint64_t state = seed & mask;
  if (state == 0) state = 1;
  return Mlfsr(bits, kTaps[bits], state);
}

unsigned Mlfsr::BitsForCount(std::uint64_t count) {
  unsigned l = 2;
  while (((std::uint64_t{1} << l) - 1) < count && l < 63) ++l;
  return l;
}

std::uint64_t Mlfsr::Next() {
  // Galois form: shift right; if the bit that fell off was set, XOR taps.
  const std::uint64_t lsb = state_ & 1;
  state_ >>= 1;
  if (lsb) state_ ^= taps_;
  return state_;
}

Result<RandomOrder> RandomOrder::Create(std::uint64_t count,
                                        std::uint64_t seed) {
  if (count == 0) {
    return Status::InvalidArgument("RandomOrder over an empty index set");
  }
  const unsigned bits = Mlfsr::BitsForCount(count);
  PPJ_ASSIGN_OR_RETURN(Mlfsr reg, Mlfsr::Create(bits, seed));
  return RandomOrder(reg, count);
}

std::uint64_t RandomOrder::Next() {
  // Register states are in {1, .., 2^l - 1}; map to {0, .., count-1} by
  // discarding out-of-range values (Section 5.2.3).
  for (;;) {
    const std::uint64_t v = reg_.Next();
    if (v <= count_) return v - 1;
  }
}

}  // namespace ppj::crypto
