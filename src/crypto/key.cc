#include "crypto/key.h"

#include "common/hash.h"

namespace ppj::crypto {

Block DeriveKey(std::uint64_t seed, const std::string& label) {
  // Two FNV-1a passes with different salts feed a fixed-key AES permutation
  // to spread entropy across the block. This is a KDF for *simulation
  // reproducibility*, not a production KDF.
  RunningHash h1;
  h1.UpdateU64(seed);
  h1.Update(label.data(), label.size());
  RunningHash h2;
  h2.UpdateU64(~seed);
  h2.Update(label.data(), label.size());
  h2.UpdateU64(0x5a5a5a5a5a5a5a5aULL);

  Block raw{};
  const std::uint64_t a = h1.digest();
  const std::uint64_t b = h2.digest();
  for (int i = 0; i < 8; ++i) {
    raw[i] = static_cast<std::uint8_t>(a >> (8 * i));
    raw[8 + i] = static_cast<std::uint8_t>(b >> (8 * i));
  }
  static const Block kMixKey = {0x50, 0x50, 0x4a, 0x21, 0x6b, 0x64, 0x66,
                                0x21, 0x76, 0x31, 0x2e, 0x30, 0x00, 0x00,
                                0x00, 0x01};
  const Aes128 mixer(kMixKey);
  return XorBlocks(mixer.Encrypt(raw), raw);
}

std::string BlockToHex(const Block& block) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint8_t byte : block) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xf]);
  }
  return out;
}

}  // namespace ppj::crypto
